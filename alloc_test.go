package uss_test

import (
	"fmt"
	"testing"

	uss "repro"
)

// Allocation regression tests for the ingest and read hot paths. The
// slab-backed Stream-Summary, the inlined shard hash and the pooled batch
// scratch make steady-state ingest allocation-free; the columnar query
// engine and the versioned snapshot cache make repeated reads against an
// unchanged sketch allocation-free. These tests pin both properties so a
// future change that reintroduces a per-row or per-query allocation fails
// loudly instead of silently costing throughput.

// allocTestStream returns a skewed row stream drawn from a fixed label
// pool, so updates exercise hits, random-min increments and label
// replacements without allocating the row strings inside the measured loop.
func allocTestStream(n int) []string {
	rows := make([]string, n)
	for i := range rows {
		// A mix of hot keys (small residues) and a long tail.
		rows[i] = fmt.Sprintf("item-%d", (i*i+i/3)%2048)
	}
	return rows
}

func TestUpdateZeroAllocsSteadyState(t *testing.T) {
	rows := allocTestStream(1 << 14)
	sk := uss.New(256, uss.WithSeed(11))
	// Warm past the fill phase into steady state: capacity reached, bucket
	// free-list populated, index map at its final size.
	for _, r := range rows {
		sk.Update(r)
	}
	var i int
	if avg := testing.AllocsPerRun(100, func() {
		for j := 0; j < 256; j++ {
			sk.Update(rows[i&(len(rows)-1)])
			i++
		}
	}); avg != 0 {
		t.Errorf("steady-state Sketch.Update allocates %v per 256-row run, want 0", avg)
	}
}

func TestUpdateAllZeroAllocsSteadyState(t *testing.T) {
	rows := allocTestStream(1 << 14)
	sk := uss.New(256, uss.WithSeed(12))
	sk.UpdateAll(rows)
	if avg := testing.AllocsPerRun(100, func() {
		sk.UpdateAll(rows[:512])
	}); avg != 0 {
		t.Errorf("steady-state Sketch.UpdateAll allocates %v/run, want 0", avg)
	}
}

func TestShardedUpdateZeroAllocsSteadyState(t *testing.T) {
	rows := allocTestStream(1 << 14)
	s := uss.NewSharded(8, 64, uss.WithSeed(13))
	for _, r := range rows {
		s.Update(r)
	}
	var i int
	if avg := testing.AllocsPerRun(100, func() {
		for j := 0; j < 256; j++ {
			s.Update(rows[i&(len(rows)-1)])
			i++
		}
	}); avg != 0 {
		t.Errorf("steady-state ShardedSketch.Update allocates %v per 256-row run, want 0", avg)
	}
}

func TestUpdateBatchZeroAllocsSteadyState(t *testing.T) {
	rows := allocTestStream(1 << 14)
	s := uss.NewSharded(8, 64, uss.WithSeed(14))
	// Warm the shards and the pooled batch scratch at the measured batch
	// size so the measured runs only reuse.
	s.UpdateBatch(rows[:1024])
	s.UpdateBatch(rows[1024:2048])
	var off int
	if avg := testing.AllocsPerRun(100, func() {
		lo := off & (len(rows) - 1)
		s.UpdateBatch(rows[lo : lo+1024])
		off += 1024
	}); avg != 0 {
		t.Errorf("steady-state UpdateBatch allocates %v per 1024-row batch, want 0", avg)
	}
}

// dimLabelStream returns rows whose labels parse as dimension tuples, for
// the query-path allocation tests.
func dimLabelStream(n int) []string {
	rows := make([]string, n)
	for i := range rows {
		rows[i] = fmt.Sprintf("country=c%d|device=d%d|ad=a%d", i%11, i%3, i%457)
	}
	return rows
}

func queryAllocSpec() uss.QuerySpec {
	return uss.QuerySpec{
		Where:   []uss.QueryFilter{{Dim: "device", In: []string{"d0", "d1"}}},
		GroupBy: []string{"country"},
	}
}

// TestPreparedQueryZeroAllocs: repeated evaluation of a prepared query
// against an unchanged sketch must be allocation-free — the columnar
// index, the compiled program, the group render cache and the output
// buffers are all reused.
func TestPreparedQueryZeroAllocs(t *testing.T) {
	sk := uss.New(512, uss.WithSeed(15))
	sk.UpdateAll(dimLabelStream(1 << 14))
	p := sk.QueryEngine().Prepare(queryAllocSpec())
	for i := 0; i < 2; i++ {
		if groups, _, err := p.Run(); err != nil || len(groups) == 0 {
			t.Fatalf("warm run: groups=%v err=%v", groups, err)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		if groups, _, _ := p.Run(); len(groups) == 0 {
			t.Fatal("empty result")
		}
	}); avg != 0 {
		t.Errorf("repeat PreparedQuery.Run allocates %v/op, want 0", avg)
	}
}

// TestShardedPreparedQueryZeroAllocs: the same guarantee through the
// sharded sketch's cached snapshot and shared label index.
func TestShardedPreparedQueryZeroAllocs(t *testing.T) {
	s := uss.NewSharded(8, 128, uss.WithSeed(16))
	s.UpdateBatch(dimLabelStream(1 << 14))
	p := s.QueryEngine().Prepare(queryAllocSpec())
	for i := 0; i < 2; i++ {
		if groups, _, err := p.Run(); err != nil || len(groups) == 0 {
			t.Fatalf("warm run: groups=%v err=%v", groups, err)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		if groups, _, _ := p.Run(); len(groups) == 0 {
			t.Fatal("empty result")
		}
	}); avg != 0 {
		t.Errorf("repeat sharded PreparedQuery.Run allocates %v/op, want 0", avg)
	}
}

// TestShardedTopKZeroAllocsQuiescent: TopK against an unchanged sharded
// sketch must serve the cached descending order with no locks taken and
// no allocations — and must still see new data once a shard moves.
func TestShardedTopKZeroAllocsQuiescent(t *testing.T) {
	s := uss.NewSharded(8, 64, uss.WithSeed(17))
	s.UpdateBatch(allocTestStream(1 << 14))
	if top := s.TopK(10); len(top) != 10 {
		t.Fatalf("warm TopK returned %d bins", len(top))
	}
	if avg := testing.AllocsPerRun(100, func() {
		if top := s.TopK(10); len(top) != 10 {
			t.Fatal("short TopK")
		}
	}); avg != 0 {
		t.Errorf("quiescent ShardedSketch.TopK allocates %v/op, want 0", avg)
	}
	// Mutation invalidates: an item pushed far past the current leader
	// must surface immediately.
	for i := 0; i < 1<<15; i++ {
		s.Update("usurper")
	}
	if top := s.TopK(1); len(top) != 1 || top[0].Item != "usurper" {
		t.Fatalf("cache served stale TopK after updates: %v", top)
	}
}

// TestShardedTopKZeroAllocsParallelRefill: the quiescent zero-alloc
// contract must hold regardless of merge parallelism — the parallel
// refill only runs when a shard moved, and its output (and therefore
// the cached snapshot reads serve) is bit-identical to the sequential
// merge's.
func TestShardedTopKZeroAllocsParallelRefill(t *testing.T) {
	old := uss.MergeParallelism()
	uss.SetMergeParallelism(8)
	defer uss.SetMergeParallelism(old)

	build := func() *uss.ShardedSketch {
		s := uss.NewSharded(8, 64, uss.WithSeed(17))
		s.UpdateBatch(allocTestStream(1 << 14))
		return s
	}
	par := build()
	if top := par.TopK(10); len(top) != 10 { // refill through the parallel merge
		t.Fatalf("warm TopK returned %d bins", len(top))
	}
	if avg := testing.AllocsPerRun(100, func() {
		if top := par.TopK(10); len(top) != 10 {
			t.Fatal("short TopK")
		}
	}); avg != 0 {
		t.Errorf("quiescent TopK with parallel refill allocates %v/op, want 0", avg)
	}

	// Same data merged at parallelism 1 must read back bit-identically.
	uss.SetMergeParallelism(1)
	seqTop := build().TopK(64 * 8)
	uss.SetMergeParallelism(8)
	parTop := par.TopK(64 * 8)
	if len(seqTop) != len(parTop) {
		t.Fatalf("top-k lengths diverge: sequential %d, parallel %d", len(seqTop), len(parTop))
	}
	for i := range seqTop {
		if seqTop[i] != parTop[i] {
			t.Fatalf("top-k[%d]: sequential (%q, %v) != parallel (%q, %v)",
				i, seqTop[i].Item, seqTop[i].Count, parTop[i].Item, parTop[i].Count)
		}
	}
}

// TestUpdateBatchMatchesUpdate: batched ingest must land every row in the
// same shard as per-row ingest and preserve per-shard row order, so with a
// fixed seed the resulting sketch state is identical.
func TestUpdateBatchMatchesUpdate(t *testing.T) {
	rows := allocTestStream(1 << 12)
	a := uss.NewSharded(4, 128, uss.WithSeed(21))
	b := uss.NewSharded(4, 128, uss.WithSeed(21))
	for _, r := range rows {
		a.Update(r)
	}
	for lo := 0; lo < len(rows); lo += 100 {
		hi := lo + 100
		if hi > len(rows) {
			hi = len(rows)
		}
		b.UpdateBatch(rows[lo:hi])
	}
	if a.Rows() != b.Rows() {
		t.Fatalf("Rows: per-row %d, batched %d", a.Rows(), b.Rows())
	}
	ta, tb := a.TopK(50), b.TopK(50)
	if len(ta) != len(tb) {
		t.Fatalf("TopK lengths differ: %d vs %d", len(ta), len(tb))
	}
	sa := a.SubsetSum(func(string) bool { return true })
	sb := b.SubsetSum(func(string) bool { return true })
	if sa.Value != sb.Value {
		t.Errorf("total mass: per-row %v, batched %v", sa.Value, sb.Value)
	}
	// Per-item agreement on every tracked item of the per-row sketch: same
	// seed + same per-shard row order ⇒ identical shard states.
	for _, bin := range ta {
		if got := b.Estimate(bin.Item); got != bin.Count {
			t.Errorf("estimate for %q: per-row %v, batched %v", bin.Item, bin.Count, got)
		}
	}
}
