// Package uss provides Unbiased Space Saving, a data sketch for
// disaggregated subset sum estimation and frequent item identification,
// implementing "Data Sketches for Disaggregated Subset Sum and Frequent
// Item Estimation" (Daniel Ting, SIGMOD 2018).
//
// A Sketch ingests a stream of rows — one item label per row, e.g. one ad
// click per row keyed by (user, ad) — using a fixed budget of m bins, and
// afterwards answers:
//
//   - SubsetSum: an unbiased estimate of the number of rows whose item
//     satisfies an arbitrary predicate, with a variance estimate and
//     conservative normal confidence intervals, even though the per-item
//     totals were never materialized;
//   - TopK / FrequentItems: the heavy hitters, with estimated counts that
//     are unbiased (unlike classic frequent-item sketches) and, on i.i.d.
//     streams, strongly consistent.
//
// The sketch is a one-line randomization of the Space Saving sketch of
// Metwally et al.: when a row's item is untracked, the minimum bin is
// incremented and its label is replaced with probability 1/(Nmin+1) rather
// than always. That single change makes every count estimate an unbiased
// martingale while the frequent-item behaviour is preserved.
//
// WeightedSketch generalizes to real-valued row weights, DecayedSketch to
// time-decayed aggregation, and Merge combines sketches built on disjoint
// shards of data (distributed ingestion, or rollups across time windows)
// without losing unbiasedness.
//
// For concurrent ingestion use ShardedSketch (batched locking on the
// write side, a lock-free cached snapshot on the read side); for windowed
// data use Rollup (per-window sketches with incremental range queries);
// for shipping sketch state between processes use the binary snapshot
// codec (MarshalBinary, AppendBinary, DecodeBins, MergeBins). RunQuery
// and the QueryEngine family evaluate SQL-template queries over labels
// that encode dimension tuples. cmd/ussd serves all of this over HTTP as
// a multi-tenant sketch service.
//
// Quick start:
//
//	sk := uss.New(1024, uss.WithSeed(42))
//	for _, click := range clicks {
//	    sk.Update(click.UserID)
//	}
//	est := sk.SubsetSum(func(user string) bool { return inCohort(user) })
//	lo, hi := est.ConfidenceInterval(0.95)
package uss

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/query"
)

// Bin is one (item, estimated count) pair held by a sketch.
type Bin = core.Bin

// Estimate is a subset-sum estimate with attached standard error; see
// (Estimate).ConfidenceInterval.
type Estimate = core.Estimate

// config collects construction options.
type config struct {
	rng           *rand.Rand
	deterministic bool
}

// Option configures sketch construction.
type Option func(*config)

// WithSeed seeds the sketch's private random source. Two sketches built
// with the same seed and fed the same stream are identical; use distinct
// seeds (or WithRand) in production.
func WithSeed(seed int64) Option {
	return func(c *config) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithRand supplies a random source directly. The sketch assumes sole
// ownership; do not share one *rand.Rand across goroutines.
func WithRand(r *rand.Rand) Option {
	return func(c *config) { c.rng = r }
}

// WithDeterministic switches the sketch to classic (biased) Space Saving —
// always steal the minimum bin's label. Useful for comparisons and for
// pure heavy-hitter workloads with i.i.d. data; subset sums from a
// deterministic sketch can be arbitrarily wrong on non-i.i.d. streams (see
// the paper's §6.3).
func WithDeterministic() Option {
	return func(c *config) { c.deterministic = true }
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(rand.Int63()))
	}
	return c
}

// Sketch is an Unbiased (or, optionally, Deterministic) Space Saving sketch
// over unit-weight rows. Updates are O(1). Not safe for concurrent use:
// writes need external synchronization, and only the read paths documented
// as such (RunQuery) serialize internally. For concurrent ingestion use
// ShardedSketch, or shard streams across sketches and Merge them.
type Sketch struct {
	core *core.Sketch
	// qe lazily caches RunQuery's columnar engine; it revalidates
	// against the core sketch's version counter, so it never serves
	// stale results and is dropped whenever core is replaced. queryMu
	// serializes RunQuery so concurrent read-only querying stays safe
	// even though the engine mutates its caches.
	queryMu sync.Mutex
	qe      *query.Engine
	// enc is AppendBinary's reused bin scratch, so steady-state encoding
	// into a caller-owned buffer allocates nothing.
	enc []core.Bin
}

// New returns a sketch with m bins. Memory use is Θ(m); estimation error
// for subset sums scales as roughly Total/m·√|S∩sketch| (see
// Estimate.StdErr).
func New(m int, opts ...Option) *Sketch {
	c := buildConfig(opts)
	mode := core.Unbiased
	if c.deterministic {
		mode = core.Deterministic
	}
	return &Sketch{core: core.New(m, mode, c.rng)}
}

// Update processes one row whose unit of analysis is item.
func (s *Sketch) Update(item string) { s.core.Update(item) }

// UpdateAll processes rows in order.
func (s *Sketch) UpdateAll(items []string) { s.core.UpdateAll(items) }

// Estimate returns the estimated count for item (0 when untracked). For an
// Unbiased sketch this is unbiased for every item, tracked or not.
func (s *Sketch) Estimate(item string) float64 { return s.core.Estimate(item) }

// EstimateWithSE returns item's estimate with its standard error.
func (s *Sketch) EstimateWithSE(item string) Estimate { return s.core.EstimateWithSE(item) }

// SubsetSum estimates the number of rows whose item satisfies pred.
func (s *Sketch) SubsetSum(pred func(item string) bool) Estimate { return s.core.SubsetSum(pred) }

// Contains reports whether item currently labels a bin.
func (s *Sketch) Contains(item string) bool { return s.core.Contains(item) }

// TopK returns the k largest bins in descending count order.
func (s *Sketch) TopK(k int) []Bin { return s.core.TopK(k) }

// FrequentItems returns bins with estimated frequency above phi.
func (s *Sketch) FrequentItems(phi float64) []Bin { return s.core.FrequentItems(phi) }

// Bins returns all bins in ascending count order.
func (s *Sketch) Bins() []Bin { return s.core.Bins() }

// Bounds returns deterministic bounds for item's true count (tight for
// Deterministic mode; diagnostic for Unbiased mode).
func (s *Sketch) Bounds(item string) (lo, hi float64) { return s.core.Bounds(item) }

// Size returns the number of occupied bins; Capacity returns m.
func (s *Sketch) Size() int { return s.core.Size() }

// Capacity returns the bin budget m.
func (s *Sketch) Capacity() int { return s.core.Capacity() }

// Rows returns the number of rows processed.
func (s *Sketch) Rows() int64 { return s.core.Rows() }

// Total returns the total mass in the sketch (== Rows for unit updates).
func (s *Sketch) Total() float64 { return s.core.Total() }

// MinCount returns the smallest bin count N̂min, which drives both the
// replacement probability and the variance estimate.
func (s *Sketch) MinCount() float64 { return s.core.MinCount() }

// Deterministic reports whether the sketch runs classic Space Saving.
func (s *Sketch) Deterministic() bool { return s.core.Mode() == core.Deterministic }

// ToWeighted converts the sketch into an independent WeightedSketch with
// the same bins — the gateway to weighted updates, Shrink/Grow resizing
// and decayed scaling on history accumulated through unit updates.
func (s *Sketch) ToWeighted() *WeightedSketch {
	return &WeightedSketch{core: s.core.ToWeighted()}
}

// WeightedSketch is the real-valued-weight generalization (paper §5.3):
// rows carry arbitrary positive weights (bytes per packet, revenue per
// event). Updates are O(log m).
type WeightedSketch struct {
	core *core.WeightedSketch
	// qe lazily caches RunQueryWeighted's columnar engine; see Sketch.qe.
	queryMu sync.Mutex
	qe      *query.Engine
	// enc is AppendBinary's reused bin scratch; see Sketch.enc.
	enc []core.Bin
}

// NewWeighted returns a weighted Unbiased Space Saving sketch with m bins.
func NewWeighted(m int, opts ...Option) *WeightedSketch {
	c := buildConfig(opts)
	return &WeightedSketch{core: core.NewWeighted(m, c.rng)}
}

// NewWeightedFromBins builds a WeightedSketch of capacity m directly from a
// bin list — the load half of the DecodeBins → MergeBins pipeline, for
// callers (such as a sketch server) that aggregate shipped bins and then
// need a queryable sketch. The load is direct-state, not an Update replay:
// no randomness is drawn, zero-count bins keep their identity, and the
// result is exactly the sketch a snapshot restore of the same bins would
// produce. Counts must be non-negative and finite, items distinct, and
// len(bins) ≤ m. The bins slice is not retained; the item strings are.
func NewWeightedFromBins(m int, bins []Bin, opts ...Option) (*WeightedSketch, error) {
	c := buildConfig(opts)
	w := core.NewWeighted(m, c.rng)
	if err := core.RestoreWeighted(w, bins, 0); err != nil {
		return nil, fmt.Errorf("uss: sketch from bins: %w", err)
	}
	return &WeightedSketch{core: w}, nil
}

// Update processes a row carrying weight w > 0 for item.
func (s *WeightedSketch) Update(item string, w float64) { s.core.Update(item, w) }

// UpdateSigned applies a signed weight; see the paper's signed-update
// extension. It reports false (no-op) for a negative update to an
// untracked item.
func (s *WeightedSketch) UpdateSigned(item string, w float64) bool {
	return s.core.UpdateSigned(item, w)
}

// Estimate returns item's estimated total weight.
func (s *WeightedSketch) Estimate(item string) float64 { return s.core.Estimate(item) }

// SubsetSum estimates the total weight of items satisfying pred.
func (s *WeightedSketch) SubsetSum(pred func(item string) bool) Estimate {
	return s.core.SubsetSum(pred)
}

// Contains reports whether item labels a bin.
func (s *WeightedSketch) Contains(item string) bool { return s.core.Contains(item) }

// Bins returns the bins (arbitrary order).
func (s *WeightedSketch) Bins() []Bin { return s.core.Bins() }

// TopK returns the k largest bins in descending count order (ties broken
// by ascending item label), selected with the shared O(n log k) heap used
// by every other top-k path. The returned slice is freshly allocated and
// caller-owned.
func (s *WeightedSketch) TopK(k int) []Bin { return core.SelectTop(s.core.Bins(), k) }

// Size returns the number of occupied bins; Capacity returns m.
func (s *WeightedSketch) Size() int { return s.core.Size() }

// Capacity returns the bin budget m.
func (s *WeightedSketch) Capacity() int { return s.core.Capacity() }

// Total returns the total weight ingested.
func (s *WeightedSketch) Total() float64 { return s.core.Total() }

// MinCount returns the smallest bin count.
func (s *WeightedSketch) MinCount() float64 { return s.core.MinCount() }

// Shrink reduces the sketch in place to at most m bins with the given
// reduction and lowers its capacity (paper §5.3: adaptively varying the
// sketch size). With Pairwise or Pivotal, post-shrink estimates remain
// unbiased.
func (s *WeightedSketch) Shrink(m int, red Reduction) { s.core.Shrink(m, red.kind()) }

// Grow raises the sketch's capacity (no-op when m is not larger); existing
// bins are untouched and future reductions simply start later.
func (s *WeightedSketch) Grow(m int) { s.core.Grow(m) }

// DecayedSketch maintains forward-exponentially-decayed counts: a row at
// time a contributes weight exp(−λ(t−a)) to queries at time t. See paper
// §5.3 and Cormode et al. (2009).
type DecayedSketch struct {
	core *core.DecayedSketch
}

// NewDecayed returns a decayed sketch with m bins and decay rate lambda per
// unit time.
func NewDecayed(m int, lambda float64, opts ...Option) *DecayedSketch {
	c := buildConfig(opts)
	return &DecayedSketch{core: core.NewDecayed(m, lambda, c.rng)}
}

// Update processes a row for item at the given arrival time with undecayed
// weight w (1 for plain counting).
func (s *DecayedSketch) Update(item string, at, w float64) { s.core.Update(item, at, w) }

// Estimate returns item's decayed weight as of the latest arrival.
func (s *DecayedSketch) Estimate(item string) float64 { return s.core.Estimate(item) }

// SubsetSum estimates the decayed weight of items satisfying pred.
func (s *DecayedSketch) SubsetSum(pred func(item string) bool) Estimate {
	return s.core.SubsetSum(pred)
}

// Bins returns the bins with decayed counts.
func (s *DecayedSketch) Bins() []Bin { return s.core.Bins() }

// Total returns the decayed total mass.
func (s *DecayedSketch) Total() float64 { return s.core.Total() }

// Size returns the number of occupied bins.
func (s *DecayedSketch) Size() int { return s.core.Size() }
