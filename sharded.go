package uss

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
)

// ShardedSketch ingests rows concurrently: items hash to one of S shards,
// each an independent Unbiased Space Saving sketch behind its own mutex,
// and queries merge the shards unbiasedly on demand. This is the paper's
// recommended concurrency story (§5.5) — a single sketch is inherently
// sequential, but merges compose — packaged for in-process use.
//
// Because sharding is by item hash, each item's rows all land in one
// shard, so per-shard estimates are unbiased for the items routed there
// and the merged estimate is unbiased overall.
type ShardedSketch struct {
	shards []shard
	m      int
}

type shard struct {
	mu sync.Mutex
	sk *Sketch
}

// NewSharded returns a sketch with the given number of shards, each with
// binsPerShard bins. Total memory is shards × binsPerShard bins; merged
// query results use shards × binsPerShard bins as well, so accuracy is
// comparable to a single sketch of that total size.
func NewSharded(shards, binsPerShard int, opts ...Option) *ShardedSketch {
	if shards <= 0 {
		panic(fmt.Sprintf("uss: %d shards", shards))
	}
	s := &ShardedSketch{shards: make([]shard, shards), m: shards * binsPerShard}
	c := buildConfig(opts)
	for i := range s.shards {
		// Derive independent per-shard seeds from the configured source
		// so WithSeed still yields reproducible behaviour.
		s.shards[i].sk = New(binsPerShard, WithRand(rand.New(rand.NewSource(c.rng.Int63()))))
	}
	return s
}

func (s *ShardedSketch) shardFor(item string) *shard {
	h := fnv.New32a()
	h.Write([]byte(item))
	return &s.shards[int(h.Sum32())%len(s.shards)]
}

// Update routes one row to its item's shard. Safe for concurrent use.
func (s *ShardedSketch) Update(item string) {
	sh := s.shardFor(item)
	sh.mu.Lock()
	sh.sk.Update(item)
	sh.mu.Unlock()
}

// Rows returns the total rows ingested across shards.
func (s *ShardedSketch) Rows() int64 {
	var n int64
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += s.shards[i].sk.Rows()
		s.shards[i].mu.Unlock()
	}
	return n
}

// Estimate returns the item's estimate from its shard (no merge needed —
// all of an item's mass lives in one shard).
func (s *ShardedSketch) Estimate(item string) float64 {
	sh := s.shardFor(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sk.Estimate(item)
}

// SubsetSum estimates the subset sum across all shards. Per-shard sums are
// independent unbiased estimates of the per-shard truths, so their sum is
// unbiased for the total; the standard errors combine in quadrature.
func (s *ShardedSketch) SubsetSum(pred func(string) bool) Estimate {
	var value, variance float64
	var bins int
	for i := range s.shards {
		s.shards[i].mu.Lock()
		e := s.shards[i].sk.SubsetSum(pred)
		s.shards[i].mu.Unlock()
		value += e.Value
		variance += e.Variance()
		bins += e.SampleBins
	}
	return Estimate{Value: value, StdErr: math.Sqrt(variance), SampleBins: bins}
}

// Snapshot merges the shards into one weighted sketch of m bins (defaults
// to the sharded sketch's total bin budget when m ≤ 0) for top-k queries,
// serialization or further merging. Concurrent updates during Snapshot are
// serialized per shard; the snapshot is a consistent-enough view for
// monitoring use (each shard is copied atomically, shards at slightly
// different times).
func (s *ShardedSketch) Snapshot(m int) *WeightedSketch {
	if m <= 0 {
		m = s.m
	}
	lists := make([][]Bin, len(s.shards))
	for i := range s.shards {
		s.shards[i].mu.Lock()
		// Bins() copies, so the shard keeps moving after unlock.
		lists[i] = s.shards[i].sk.Bins()
		s.shards[i].mu.Unlock()
	}
	merged := MergeBins(m, Pairwise, lists...)
	w := NewWeighted(m)
	for _, b := range merged {
		if b.Count > 0 {
			w.Update(b.Item, b.Count)
		}
	}
	return w
}

// TopK returns the k heaviest items across shards via a snapshot merge.
func (s *ShardedSketch) TopK(k int) []Bin {
	snap := s.Snapshot(0)
	bins := snap.Bins()
	if k > len(bins) {
		k = len(bins)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(bins); j++ {
			if bins[j].Count > bins[best].Count {
				best = j
			}
		}
		bins[i], bins[best] = bins[best], bins[i]
	}
	return bins[:k]
}

// Shards returns the shard count.
func (s *ShardedSketch) Shards() int { return len(s.shards) }
