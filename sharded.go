package uss

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/hashx"
)

// ShardedSketch ingests rows concurrently: items hash to one of S shards,
// each an independent Unbiased Space Saving sketch behind its own mutex,
// and queries merge the shards unbiasedly on demand. This is the paper's
// recommended concurrency story (§5.5) — a single sketch is inherently
// sequential, but merges compose — packaged for in-process use.
//
// Because sharding is by item hash, each item's rows all land in one
// shard, so per-shard estimates are unbiased for the items routed there
// and the merged estimate is unbiased overall.
//
// Update takes the destination shard's lock for every row. Under heavy
// concurrent traffic prefer UpdateBatch, which groups a caller-side batch
// of rows by destination shard and takes each shard's lock once per batch,
// amortizing the lock protocol over the batch (see DESIGN.md).
type ShardedSketch struct {
	shards []shard
	m      int
}

type shard struct {
	mu sync.Mutex
	sk *Sketch
}

// NewSharded returns a sketch with the given number of shards, each with
// binsPerShard bins. Total memory is shards × binsPerShard bins; merged
// query results use shards × binsPerShard bins as well, so accuracy is
// comparable to a single sketch of that total size.
func NewSharded(shards, binsPerShard int, opts ...Option) *ShardedSketch {
	if shards <= 0 {
		panic(fmt.Sprintf("uss: %d shards", shards))
	}
	s := &ShardedSketch{shards: make([]shard, shards), m: shards * binsPerShard}
	c := buildConfig(opts)
	for i := range s.shards {
		// Derive independent per-shard seeds from the configured source
		// so WithSeed still yields reproducible behaviour.
		s.shards[i].sk = New(binsPerShard, WithRand(rand.New(rand.NewSource(c.rng.Int63()))))
	}
	return s
}

// shardIndex routes an item to its shard with an inlined, allocation-free
// FNV-1a (bit-identical to the hash/fnv digest, so routing is unchanged
// from earlier versions that paid one hasher allocation per row). The
// modulo is taken in uint32 so the index stays in range even where int is
// 32 bits.
func (s *ShardedSketch) shardIndex(item string) int {
	return int(hashx.Sum32a(item) % uint32(len(s.shards)))
}

func (s *ShardedSketch) shardFor(item string) *shard {
	return &s.shards[s.shardIndex(item)]
}

// Update routes one row to its item's shard. Safe for concurrent use.
func (s *ShardedSketch) Update(item string) {
	sh := s.shardFor(item)
	sh.mu.Lock()
	sh.sk.Update(item)
	sh.mu.Unlock()
}

// batchScratch holds the reusable buffers UpdateBatch needs to group a
// batch by destination shard: per-row shard ids, per-shard cursors, and
// the index permutation the rows are regrouped through (indices rather
// than string headers: a quarter of the write traffic, and nothing that
// pins caller memory between batches). Pooled so concurrent batches each
// get their own scratch without per-batch allocation.
type batchScratch struct {
	shardOf []int32
	cursor  []int32
	idx     []int32
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (sc *batchScratch) grow(rows, shards int) {
	if cap(sc.shardOf) < rows {
		sc.shardOf = make([]int32, rows)
		sc.idx = make([]int32, rows)
	}
	sc.shardOf = sc.shardOf[:rows]
	sc.idx = sc.idx[:rows]
	if cap(sc.cursor) < shards {
		sc.cursor = make([]int32, shards)
	}
	sc.cursor = sc.cursor[:shards]
	for i := range sc.cursor {
		sc.cursor[i] = 0
	}
}

// UpdateBatch ingests a batch of rows. Rows are hashed once, regrouped by
// destination shard (a stable counting sort, so each shard sees its rows
// in original stream order), and each shard's rows are applied through the
// same batched core path as (*Sketch).UpdateAll under a single
// lock/unlock per shard per batch — instead of one mutex round-trip per
// row. Safe for concurrent use with Update, UpdateBatch and all queries;
// allocation-free in steady state.
//
// The resulting sketch state is distributionally identical to calling
// Update row by row: an item's rows all land in one shard, and each shard
// processes its subsequence in order.
func (s *ShardedSketch) UpdateBatch(items []string) {
	if len(items) == 0 {
		return
	}
	ns := len(s.shards)
	if ns == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		sh.sk.UpdateAll(items)
		sh.mu.Unlock()
		return
	}
	sc := batchPool.Get().(*batchScratch)
	sc.grow(len(items), ns)
	// Pass 1: hash every row once, counting rows per shard.
	for i, it := range items {
		sh := int32(s.shardIndex(it))
		sc.shardOf[i] = sh
		sc.cursor[sh]++
	}
	// Turn counts into starting offsets of each shard's segment.
	var off int32
	for sh := range sc.cursor {
		n := sc.cursor[sh]
		sc.cursor[sh] = off
		off += n
	}
	// Pass 2: stable scatter of row indices into contiguous per-shard
	// segments. After the pass each cursor has advanced to the end of its
	// shard's segment.
	for i := range items {
		sh := sc.shardOf[i]
		sc.idx[sc.cursor[sh]] = int32(i)
		sc.cursor[sh]++
	}
	// Pass 3: one lock round-trip per non-empty shard, each segment fed
	// through the same per-row core loop as (*Sketch).UpdateAll.
	start := int32(0)
	for sh := 0; sh < ns; sh++ {
		end := sc.cursor[sh]
		if end > start {
			shd := &s.shards[sh]
			shd.mu.Lock()
			shd.sk.core.UpdateGather(items, sc.idx[start:end])
			shd.mu.Unlock()
		}
		start = end
	}
	batchPool.Put(sc)
}

// Rows returns the total rows ingested across shards.
func (s *ShardedSketch) Rows() int64 {
	var n int64
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += s.shards[i].sk.Rows()
		s.shards[i].mu.Unlock()
	}
	return n
}

// Estimate returns the item's estimate from its shard (no merge needed —
// all of an item's mass lives in one shard).
func (s *ShardedSketch) Estimate(item string) float64 {
	sh := s.shardFor(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sk.Estimate(item)
}

// SubsetSum estimates the subset sum across all shards. Per-shard sums are
// independent unbiased estimates of the per-shard truths, so their sum is
// unbiased for the total; the standard errors combine in quadrature.
func (s *ShardedSketch) SubsetSum(pred func(string) bool) Estimate {
	var value, variance float64
	var bins int
	for i := range s.shards {
		s.shards[i].mu.Lock()
		e := s.shards[i].sk.SubsetSum(pred)
		s.shards[i].mu.Unlock()
		value += e.Value
		variance += e.Variance()
		bins += e.SampleBins
	}
	return Estimate{Value: value, StdErr: math.Sqrt(variance), SampleBins: bins}
}

// Snapshot merges the shards into one weighted sketch of m bins (defaults
// to the sharded sketch's total bin budget when m ≤ 0) for top-k queries,
// serialization or further merging. Concurrent updates during Snapshot are
// serialized per shard; the snapshot is a consistent-enough view for
// monitoring use (each shard is copied atomically, shards at slightly
// different times).
func (s *ShardedSketch) Snapshot(m int) *WeightedSketch {
	if m <= 0 {
		m = s.m
	}
	lists := make([][]Bin, len(s.shards))
	for i := range s.shards {
		s.shards[i].mu.Lock()
		// Bins() copies, so the shard keeps moving after unlock.
		lists[i] = s.shards[i].sk.Bins()
		s.shards[i].mu.Unlock()
	}
	merged := MergeBins(m, Pairwise, lists...)
	w := NewWeighted(m)
	for _, b := range merged {
		if b.Count > 0 {
			w.Update(b.Item, b.Count)
		}
	}
	return w
}

// TopK returns the k heaviest items across shards via a snapshot merge,
// selected with the shared O(n log k) partial heap select (the same
// implementation backing the single-sketch TopK).
func (s *ShardedSketch) TopK(k int) []Bin {
	snap := s.Snapshot(0)
	return core.SelectTop(snap.Bins(), k)
}

// Shards returns the shard count.
func (s *ShardedSketch) Shards() int { return len(s.shards) }
