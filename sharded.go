package uss

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hashx"
	"repro/internal/labelidx"
	"repro/internal/query"
	"repro/internal/wire"
)

// ShardedSketch ingests rows concurrently: items hash to one of S shards,
// each an independent Unbiased Space Saving sketch behind its own mutex,
// and queries merge the shards unbiasedly on demand. This is the paper's
// recommended concurrency story (§5.5) — a single sketch is inherently
// sequential, but merges compose — packaged for in-process use.
//
// Because sharding is by item hash, each item's rows all land in one
// shard, so per-shard estimates are unbiased for the items routed there
// and the merged estimate is unbiased overall.
//
// Update takes the destination shard's lock for every row. Under heavy
// concurrent traffic prefer UpdateBatch, which groups a caller-side batch
// of rows by destination shard and takes each shard's lock once per batch,
// amortizing the lock protocol over the batch (see DESIGN.md).
type ShardedSketch struct {
	shards []shard
	m      int

	// snap caches the merged snapshot of all shards (bins, top-k order,
	// label index), stamped with the per-shard versions it was built
	// from. Readers validate it against the live version counters with
	// atomic loads only — repeated TopK / RunQuery / Snapshot against a
	// quiescent sketch touch no shard locks and allocate nothing (TopK)
	// or defer all work to the shared cache (queries, snapshots).
	snap atomic.Pointer[shardSnapshot]

	// queryMu serializes the convenience RunQuery path's lazily built
	// engine; see RunQuery.
	queryMu sync.Mutex
	qe      *query.Engine
}

type shard struct {
	mu sync.Mutex
	sk *Sketch
	// version advances on every mutation of this shard. Written under
	// mu, read without it by snapshot-cache validation.
	version atomic.Uint64
}

// NewSharded returns a sketch with the given number of shards, each with
// binsPerShard bins. Total memory is shards × binsPerShard bins; merged
// query results use shards × binsPerShard bins as well, so accuracy is
// comparable to a single sketch of that total size.
func NewSharded(shards, binsPerShard int, opts ...Option) *ShardedSketch {
	if shards <= 0 {
		panic(fmt.Sprintf("uss: %d shards", shards))
	}
	s := &ShardedSketch{shards: make([]shard, shards), m: shards * binsPerShard}
	c := buildConfig(opts)
	for i := range s.shards {
		// Derive independent per-shard seeds from the configured source
		// so WithSeed still yields reproducible behaviour.
		s.shards[i].sk = New(binsPerShard, WithRand(rand.New(rand.NewSource(c.rng.Int63()))))
	}
	return s
}

// shardIndex routes an item to its shard with an inlined, allocation-free
// FNV-1a (bit-identical to the hash/fnv digest, so routing is unchanged
// from earlier versions that paid one hasher allocation per row). The
// modulo is taken in uint32 so the index stays in range even where int is
// 32 bits.
func (s *ShardedSketch) shardIndex(item string) int {
	return int(hashx.Sum32a(item) % uint32(len(s.shards)))
}

func (s *ShardedSketch) shardFor(item string) *shard {
	return &s.shards[s.shardIndex(item)]
}

// Update routes one row to its item's shard. Safe for concurrent use.
func (s *ShardedSketch) Update(item string) {
	sh := s.shardFor(item)
	sh.mu.Lock()
	sh.sk.Update(item)
	sh.version.Add(1)
	sh.mu.Unlock()
}

// batchScratch holds the reusable buffers UpdateBatch needs to group a
// batch by destination shard: per-row shard ids, per-shard cursors, and
// the index permutation the rows are regrouped through (indices rather
// than string headers: a quarter of the write traffic, and nothing that
// pins caller memory between batches). Pooled so concurrent batches each
// get their own scratch without per-batch allocation.
type batchScratch struct {
	shardOf []int32
	cursor  []int32
	idx     []int32
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (sc *batchScratch) grow(rows, shards int) {
	if cap(sc.shardOf) < rows {
		sc.shardOf = make([]int32, rows)
		sc.idx = make([]int32, rows)
	}
	sc.shardOf = sc.shardOf[:rows]
	sc.idx = sc.idx[:rows]
	if cap(sc.cursor) < shards {
		sc.cursor = make([]int32, shards)
	}
	sc.cursor = sc.cursor[:shards]
	for i := range sc.cursor {
		sc.cursor[i] = 0
	}
}

// UpdateBatch ingests a batch of rows. Rows are hashed once, regrouped by
// destination shard (a stable counting sort, so each shard sees its rows
// in original stream order), and each shard's rows are applied through the
// same batched core path as (*Sketch).UpdateAll under a single
// lock/unlock per shard per batch — instead of one mutex round-trip per
// row. Safe for concurrent use with Update, UpdateBatch and all queries;
// allocation-free in steady state.
//
// The resulting sketch state is distributionally identical to calling
// Update row by row: an item's rows all land in one shard, and each shard
// processes its subsequence in order.
func (s *ShardedSketch) UpdateBatch(items []string) {
	if len(items) == 0 {
		return
	}
	ns := len(s.shards)
	if ns == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		sh.sk.UpdateAll(items)
		sh.version.Add(1)
		sh.mu.Unlock()
		return
	}
	sc := batchPool.Get().(*batchScratch)
	sc.grow(len(items), ns)
	// Pass 1: hash every row once, counting rows per shard.
	for i, it := range items {
		sh := int32(s.shardIndex(it))
		sc.shardOf[i] = sh
		sc.cursor[sh]++
	}
	// Turn counts into starting offsets of each shard's segment.
	var off int32
	for sh := range sc.cursor {
		n := sc.cursor[sh]
		sc.cursor[sh] = off
		off += n
	}
	// Pass 2: stable scatter of row indices into contiguous per-shard
	// segments. After the pass each cursor has advanced to the end of its
	// shard's segment.
	for i := range items {
		sh := sc.shardOf[i]
		sc.idx[sc.cursor[sh]] = int32(i)
		sc.cursor[sh]++
	}
	// Pass 3: one lock round-trip per non-empty shard, each segment fed
	// through the same per-row core loop as (*Sketch).UpdateAll.
	start := int32(0)
	for sh := 0; sh < ns; sh++ {
		end := sc.cursor[sh]
		if end > start {
			shd := &s.shards[sh]
			shd.mu.Lock()
			shd.sk.core.UpdateGather(items, sc.idx[start:end])
			shd.version.Add(1)
			shd.mu.Unlock()
		}
		start = end
	}
	batchPool.Put(sc)
}

// Capacity returns the total bin budget across shards
// (shards × binsPerShard).
func (s *ShardedSketch) Capacity() int { return s.m }

// Size returns the number of occupied bins across shards, served from the
// cached merged snapshot (items are disjoint across shards, so the merged
// bin count is the sum of per-shard sizes).
func (s *ShardedSketch) Size() int { return len(s.snapshot().bins) }

// Total returns the total mass ingested across shards (== Rows for unit
// updates).
func (s *ShardedSketch) Total() float64 {
	var t float64
	for i := range s.shards {
		s.shards[i].mu.Lock()
		t += s.shards[i].sk.Total()
		s.shards[i].mu.Unlock()
	}
	return t
}

// Rows returns the total rows ingested across shards.
func (s *ShardedSketch) Rows() int64 {
	var n int64
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += s.shards[i].sk.Rows()
		s.shards[i].mu.Unlock()
	}
	return n
}

// Estimate returns the item's estimate from its shard (no merge needed —
// all of an item's mass lives in one shard).
func (s *ShardedSketch) Estimate(item string) float64 {
	sh := s.shardFor(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sk.Estimate(item)
}

// SubsetSum estimates the subset sum across all shards. Per-shard sums are
// independent unbiased estimates of the per-shard truths, so their sum is
// unbiased for the total; the standard errors combine in quadrature.
func (s *ShardedSketch) SubsetSum(pred func(string) bool) Estimate {
	var value, variance float64
	var bins int
	for i := range s.shards {
		s.shards[i].mu.Lock()
		e := s.shards[i].sk.SubsetSum(pred)
		s.shards[i].mu.Unlock()
		value += e.Value
		variance += e.Variance()
		bins += e.SampleBins
	}
	return Estimate{Value: value, StdErr: math.Sqrt(variance), SampleBins: bins}
}

// shardSnapshot is one immutable merged view of all shards. bins is the
// exact item-wise sum of the shard bin lists (ascending count order; no
// reduction — items are disjoint across shards, so the merged list never
// exceeds the total bin budget). sorted and idx are derived lazily and
// published through atomic pointers so that concurrent readers never
// lock and repeat reads never allocate.
type shardSnapshot struct {
	versions []uint64                       // per-shard versions the snapshot was built from
	bins     []Bin                          // ascending count order
	minCount float64                        // MinCount of the equivalent Snapshot(s.m)
	sorted   atomic.Pointer[[]Bin]          // descending rank, for TopK
	idx      atomic.Pointer[labelidx.Index] // columnar label index
}

// snapshot returns a merged view of the shards that is current with
// respect to the per-shard version counters: the cached one when no shard
// has moved (validated with atomic loads only — no locks), a freshly
// built one otherwise.
func (s *ShardedSketch) snapshot() *shardSnapshot {
	if c := s.snap.Load(); c != nil && s.upToDate(c) {
		return c
	}
	return s.rebuildSnapshot()
}

func (s *ShardedSketch) upToDate(c *shardSnapshot) bool {
	for i := range s.shards {
		if s.shards[i].version.Load() != c.versions[i] {
			return false
		}
	}
	return true
}

// rebuildSnapshot copies each shard's bins under its lock (recording the
// version the copy corresponds to), k-way merges the item-disjoint lists
// outside any lock, and publishes the result. Shards are copied at
// slightly different times, the same consistency the uncached Snapshot
// always had; concurrent rebuilds may race benignly, each publishing a
// snapshot valid for the versions it recorded. Large merges fan out
// across MergeParallelism goroutines; the parallel kernel is
// bit-identical to the sequential one (disjoint items make the merged
// order unique), so snapshots don't depend on the fan-out.
func (s *ShardedSketch) rebuildSnapshot() *shardSnapshot {
	c := &shardSnapshot{versions: make([]uint64, len(s.shards))}
	lists := make([][]Bin, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		c.versions[i] = sh.version.Load()
		// Bins() copies, so the shard keeps moving after unlock.
		lists[i] = sh.sk.Bins()
		sh.mu.Unlock()
	}
	c.bins = core.SumDisjointParallel(MergeParallelism(), lists...)
	if len(c.bins) >= s.m && len(c.bins) > 0 {
		c.minCount = c.bins[0].Count
	}
	s.snap.Store(c)
	return c
}

// topSorted returns the snapshot's bins in descending rank order (count
// descending, ties by item), building them at most once per snapshot.
func (c *shardSnapshot) topSorted() []Bin {
	if p := c.sorted.Load(); p != nil {
		return *p
	}
	sorted := core.SelectTop(c.bins, len(c.bins))
	c.sorted.CompareAndSwap(nil, &sorted)
	return *c.sorted.Load()
}

// labelIndex returns the snapshot's columnar label index, building it at
// most once per snapshot.
func (c *shardSnapshot) labelIndex() *labelidx.Index {
	if p := c.idx.Load(); p != nil {
		return p
	}
	idx := labelidx.New(c.bins)
	c.idx.CompareAndSwap(nil, idx)
	return c.idx.Load()
}

// shardedBinner adapts the cached snapshot to the query engine's source
// interface. QuerySnapshot hands the engine one snapshot's bins, label
// index and min count together, so a query never mixes epochs even while
// shards ingest concurrently; the engine revalidates by label-index
// identity, which changes exactly when a shard version moves.
type shardedBinner struct{ s *ShardedSketch }

func (b shardedBinner) Bins() []Bin       { return b.s.snapshot().bins }
func (b shardedBinner) MinCount() float64 { return b.s.snapshot().minCount }

func (b shardedBinner) QuerySnapshot() ([]Bin, *labelidx.Index, float64) {
	c := b.s.snapshot()
	return c.bins, c.labelIndex(), c.minCount
}

// Snapshot merges the shards into one weighted sketch of m bins (defaults
// to the sharded sketch's total bin budget when m ≤ 0) for top-k queries,
// serialization or further merging, reducing with Pairwise when m is
// below the merged size. The merge itself is served from the versioned
// snapshot cache: on a quiescent sketch only the returned sketch is
// built, with no shard locking or re-merging.
func (s *ShardedSketch) Snapshot(m int) *WeightedSketch {
	return s.SnapshotWith(m, Pairwise)
}

// SnapshotWith is Snapshot with an explicit reduction for the case where
// the merged bins must shrink to m (Pairwise and Pivotal keep the
// snapshot unbiased; MisraGries trades bias for the deterministic bound).
func (s *ShardedSketch) SnapshotWith(m int, red Reduction) *WeightedSketch {
	if m <= 0 {
		m = s.m
	}
	bins := s.snapshot().bins
	cfg := buildConfig(nil)
	if len(bins) > m {
		switch red {
		case Pivotal:
			bins = core.ReducePivotal(bins, m, cfg.rng)
		case MisraGries:
			bins = core.ReduceMisraGries(bins, m)
		default:
			bins = core.ReducePairwise(bins, m, cfg.rng)
		}
	}
	return &WeightedSketch{core: core.SketchFromBins(m, cfg.rng, bins)}
}

// TopK returns the k heaviest items across shards in descending count
// order (ties by item), served from the cached snapshot: on a quiescent
// sketch repeat calls take no locks and allocate nothing. The returned
// slice is a read-only view into the cache, valid indefinitely (snapshots
// are immutable; later updates publish new ones) — callers that want to
// mutate the bins must copy.
func (s *ShardedSketch) TopK(k int) []Bin {
	sorted := s.snapshot().topSorted()
	if k > len(sorted) {
		k = len(sorted)
	}
	if k < 0 {
		k = 0
	}
	return sorted[:k:k]
}

// RunQuery evaluates the §2 query template against the merged snapshot,
// exactly as RunQuery(sketch.Snapshot(0), q) would, but served from the
// versioned snapshot cache: on a quiescent sketch no shard is locked and
// no label is re-parsed. Safe for concurrent use (queries serialize on an
// internal mutex; the heavy state is the shared immutable snapshot). For
// lock-free concurrent querying, give each goroutine its own QueryEngine.
func (s *ShardedSketch) RunQuery(q QuerySpec) (groups []QueryGroup, skipped int, err error) {
	s.queryMu.Lock()
	defer s.queryMu.Unlock()
	if s.qe == nil {
		s.qe = query.NewEngine(shardedBinner{s})
	}
	g, skipped, err := s.qe.Run(q)
	return copyGroups(g), skipped, err
}

// QueryEngine returns a fresh engine over the sharded sketch's cached
// snapshot for repeated or prepared queries. Engines are single-goroutine
// owners of their buffers, but any number of them share the underlying
// snapshot and label index, so per-goroutine engines are cheap.
func (s *ShardedSketch) QueryEngine() *QueryEngine {
	return &QueryEngine{eng: query.NewEngine(shardedBinner{s})}
}

// Shards returns the shard count.
func (s *ShardedSketch) Shards() int { return len(s.shards) }

// AppendShards appends every shard's exact state to dst as one wire-v2
// frame per shard, in shard order, and returns the extended buffer —
// the durability checkpoint encoding. Unlike Snapshot, nothing is merged
// or reduced: RestoreShards rebuilds a sketch with identical per-shard
// state, so item routing and every count round-trip bit for bit. Each
// shard is encoded under its own lock; callers that need the frames to
// be one consistent cut across shards must quiesce writers for the call.
func (s *ShardedSketch) AppendShards(dst []byte) ([]byte, error) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		var err error
		dst, err = sh.sk.AppendBinary(dst)
		sh.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("uss: encode shard %d: %w", i, err)
		}
	}
	return dst, nil
}

// RestoreShards replaces every shard's state from an AppendShards
// encoding. The frame count must match the shard count and each frame's
// capacity must match the shard's bin budget — restoring into a sketch
// with different geometry would silently re-route items. All frames are
// decoded before any shard is touched, so a decode error leaves the
// sketch unchanged. Safe for concurrent use; the cached merged snapshot
// is invalidated.
func (s *ShardedSketch) RestoreShards(data []byte) error {
	restored := make([]*Sketch, 0, len(s.shards))
	for len(data) > 0 {
		n, err := wire.FrameLen(data)
		if err != nil {
			return fmt.Errorf("uss: restore shards: frame %d: %w", len(restored), err)
		}
		if n > len(data) {
			return fmt.Errorf("uss: restore shards: frame %d truncated (%d of %d bytes)", len(restored), len(data), n)
		}
		if len(restored) >= len(s.shards) {
			return fmt.Errorf("uss: restore shards: more frames than the %d shards", len(s.shards))
		}
		var sk Sketch
		if err := sk.UnmarshalBinary(data[:n]); err != nil {
			return fmt.Errorf("uss: restore shard %d: %w", len(restored), err)
		}
		if want := s.shards[len(restored)].sk.Capacity(); sk.Capacity() != want {
			return fmt.Errorf("uss: restore shard %d: capacity %d, want %d", len(restored), sk.Capacity(), want)
		}
		restored = append(restored, &sk)
		data = data[n:]
	}
	if len(restored) != len(s.shards) {
		return fmt.Errorf("uss: restore shards: %d frames for %d shards", len(restored), len(s.shards))
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.sk = restored[i]
		sh.version.Add(1)
		sh.mu.Unlock()
	}
	return nil
}
