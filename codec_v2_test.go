package uss_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"testing"

	uss "repro"
)

// v1Snapshot mirrors the legacy gob wire format field for field; gob
// matches by field name, so encoding one produces a byte stream
// indistinguishable from what the v1 codec wrote. The compat tests use it
// to synthesize old snapshots.
type v1Snapshot struct {
	Version       int
	Capacity      int
	Deterministic bool
	Weighted      bool
	Rows          int64
	Bins          []uss.Bin
}

func gobEncodeV1(t testing.TB, snap v1Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sortedBins(bins []uss.Bin) []uss.Bin {
	out := append([]uss.Bin(nil), bins...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count < out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// TestCodecV1GobFallback: legacy gob snapshots (the format every pre-v2
// sketch file on disk is in) must keep decoding through UnmarshalBinary.
func TestCodecV1GobFallback(t *testing.T) {
	blob := gobEncodeV1(t, v1Snapshot{
		Version:  1,
		Capacity: 8,
		Rows:     6,
		Bins:     []uss.Bin{{Item: "a", Count: 1}, {Item: "b", Count: 2}, {Item: "c", Count: 3}},
	})
	var sk uss.Sketch
	if err := sk.UnmarshalBinary(blob); err != nil {
		t.Fatalf("v1 unit snapshot no longer decodes: %v", err)
	}
	if sk.Rows() != 6 || sk.Capacity() != 8 || sk.Estimate("b") != 2 {
		t.Fatalf("v1 restore wrong: rows=%d cap=%d b=%v", sk.Rows(), sk.Capacity(), sk.Estimate("b"))
	}
	info, err := uss.InspectSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Weighted || info.NumBins != 3 {
		t.Fatalf("InspectSnapshot(v1) = %+v", info)
	}
	bins, err := uss.DecodeBins(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 3 {
		t.Fatalf("DecodeBins(v1) returned %d bins", len(bins))
	}

	// Deterministic flag survives the fallback.
	dblob := gobEncodeV1(t, v1Snapshot{
		Version: 1, Capacity: 4, Deterministic: true, Rows: 1,
		Bins: []uss.Bin{{Item: "x", Count: 1}},
	})
	var dsk uss.Sketch
	if err := dsk.UnmarshalBinary(dblob); err != nil {
		t.Fatal(err)
	}
	if !dsk.Deterministic() {
		t.Fatal("v1 deterministic flag lost")
	}

	// Weighted v1 snapshot into WeightedSketch; zero-count bins now keep
	// their identity instead of being dropped by the Update replay.
	wblob := gobEncodeV1(t, v1Snapshot{
		Version: 1, Capacity: 4, Weighted: true,
		Bins: []uss.Bin{{Item: "ghost", Count: 0}, {Item: "w", Count: 2.5}},
	})
	var wsk uss.WeightedSketch
	if err := wsk.UnmarshalBinary(wblob); err != nil {
		t.Fatal(err)
	}
	if !wsk.Contains("ghost") {
		t.Fatal("v1 weighted restore dropped zero-count bin identity")
	}
	if wsk.Estimate("w") != 2.5 || wsk.Size() != 2 {
		t.Fatalf("v1 weighted restore wrong: w=%v size=%d", wsk.Estimate("w"), wsk.Size())
	}

	// Invalid counts in a v1 snapshot are now rejected, not replayed.
	bad := gobEncodeV1(t, v1Snapshot{
		Version: 1, Capacity: 4, Weighted: true,
		Bins: []uss.Bin{{Item: "n", Count: -3}},
	})
	var bsk uss.WeightedSketch
	if err := bsk.UnmarshalBinary(bad); err == nil {
		t.Fatal("negative v1 count accepted")
	}
	if _, err := uss.DecodeBins(bad); err == nil {
		t.Fatal("DecodeBins accepted negative v1 count")
	}

	// Weighted v1 snapshots must still refuse to load into a unit Sketch.
	var cross uss.Sketch
	if err := cross.UnmarshalBinary(wblob); err == nil {
		t.Fatal("weighted v1 snapshot loaded into unit sketch")
	}
}

// TestCodecV2WeightedRowsPreserved: v1 never carried the weighted row
// count; v2 does.
func TestCodecV2WeightedRowsPreserved(t *testing.T) {
	w := uss.NewWeighted(8, uss.WithSeed(5))
	for i := 0; i < 100; i++ {
		w.Update(fmt.Sprintf("i%d", i%12), 1.5)
	}
	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	info, err := uss.InspectSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || !info.Weighted || info.Rows != 100 {
		t.Fatalf("InspectSnapshot = %+v, want v2 weighted with 100 rows", info)
	}
}

// TestCodecAppendBinary: encode appends after existing bytes and the result
// decodes to the same sketch; repeated encodes of a quiescent sketch are
// byte-identical.
func TestCodecAppendBinary(t *testing.T) {
	sk := uss.New(32, uss.WithSeed(6))
	for i := 0; i < 5000; i++ {
		sk.Update(fmt.Sprintf("i%d", i%80))
	}
	a, err := sk.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sk.AppendBinary(make([]byte, 0, len(a)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("repeated encode of quiescent sketch differs")
	}
	prefixed, err := sk.AppendBinary([]byte("head"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(prefixed, []byte("head")) || !bytes.Equal(prefixed[4:], a) {
		t.Fatal("AppendBinary did not append cleanly after existing bytes")
	}
	var back uss.Sketch
	if err := back.UnmarshalBinary(a); err != nil {
		t.Fatal(err)
	}
	if back.Rows() != sk.Rows() {
		t.Fatalf("rows = %d, want %d", back.Rows(), sk.Rows())
	}
}

// TestEncodeZeroAllocsSteadyState pins the headline encode property: once
// the sketch's bin scratch and the caller's buffer are warm, AppendBinary
// allocates nothing.
func TestEncodeZeroAllocsSteadyState(t *testing.T) {
	sk := uss.New(256, uss.WithSeed(7))
	sk.UpdateAll(allocTestStream(1 << 14))
	buf, err := sk.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = sk.AppendBinary(buf[:0])
		if err != nil || len(buf) == 0 {
			t.Fatal("encode failed")
		}
	}); avg != 0 {
		t.Errorf("steady-state AppendBinary allocates %v/op, want 0", avg)
	}

	w := uss.NewWeighted(256, uss.WithSeed(8))
	for _, r := range allocTestStream(1 << 12) {
		w.Update(r, 1.25)
	}
	wbuf, err := w.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		var err error
		wbuf, err = w.AppendBinary(wbuf[:0])
		if err != nil || len(wbuf) == 0 {
			t.Fatal("encode failed")
		}
	}); avg != 0 {
		t.Errorf("steady-state weighted AppendBinary allocates %v/op, want 0", avg)
	}
}

// TestEncodeBins: the sketch-free reduce-and-ship path — decoded bins,
// merged and re-encoded, restore into a weighted sketch with nothing
// dropped.
func TestEncodeBins(t *testing.T) {
	bins := []uss.Bin{{Item: "ghost", Count: 0}, {Item: "a", Count: 1.5}, {Item: "b", Count: 4}}
	blob, err := uss.EncodeBins(8, bins)
	if err != nil {
		t.Fatal(err)
	}
	info, err := uss.InspectSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || !info.Weighted || info.Capacity != 8 || info.NumBins != 3 {
		t.Fatalf("InspectSnapshot = %+v", info)
	}
	var w uss.WeightedSketch
	if err := w.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 3 || !w.Contains("ghost") || w.Estimate("a") != 1.5 {
		t.Fatalf("restored: size=%d ghost=%v a=%v", w.Size(), w.Contains("ghost"), w.Estimate("a"))
	}
	if _, err := uss.EncodeBins(2, bins); err == nil {
		t.Fatal("over-capacity EncodeBins accepted")
	}
	if _, err := uss.EncodeBins(8, []uss.Bin{{Item: "n", Count: -1}}); err == nil {
		t.Fatal("negative count accepted")
	}
}

// TestDecodeBinsMatchesSketchBins: the merge-from-wire path must see
// exactly the bins a full restore would.
func TestDecodeBinsMatchesSketchBins(t *testing.T) {
	sk := uss.New(64, uss.WithSeed(9))
	for i := 0; i < 9000; i++ {
		sk.Update(fmt.Sprintf("k%d", i%200))
	}
	blob, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bins, err := uss.DecodeBins(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedBins(sk.Bins())
	got := sortedBins(bins)
	if len(got) != len(want) {
		t.Fatalf("DecodeBins returned %d bins, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// Merging straight from decoded bins matches merging from sketches.
	mergedBins := uss.MergeBins(64, uss.Pairwise, bins)
	if len(mergedBins) != len(want) {
		t.Fatalf("MergeBins over decoded bins: %d bins, want %d", len(mergedBins), len(want))
	}
}
