package main

// ussbench -bench server: load-drives an in-process ussd over real
// loopback HTTP and reports ingest throughput (async batches, then a
// drain barrier) and query latency percentiles for the cached read
// paths. -scale multiplies the workload.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// serverClient wraps the load driver's HTTP plumbing.
type serverClient struct {
	base string
	hc   *http.Client
}

func (c *serverClient) post(path, ct string, body []byte) ([]byte, error) {
	resp, err := c.hc.Post(c.base+path, ct, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, data)
	}
	return data, nil
}

func (c *serverClient) get(path string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, data)
	}
	return data, nil
}

// percentile reads the p-th percentile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// perfServer runs the service workload: async text ingest to a sharded
// sketch, a drain barrier, then repeated top-k and group-by queries.
func perfServer(w io.Writer, rec *benchRecorder, scale float64) error {
	batches := int(100 * scale)
	if batches < 4 {
		batches = 4
	}
	const rowsPerBatch = 2000
	queryReps := int(300 * scale)
	if queryReps < 20 {
		queryReps = 20
	}

	s := server.New(server.Config{IngestWorkers: 4, QueueDepth: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	defer func() {
		_ = s.Shutdown(context.Background())
		<-done
	}()
	c := &serverClient{base: "http://" + ln.Addr().String(), hc: &http.Client{}}

	if _, err := c.post("/v1/sketches", "application/json",
		[]byte(`{"name":"bench","kind":"sharded","bins":1024,"shards":8,"seed":20180614}`)); err != nil {
		return err
	}

	// Pre-render the batch bodies so the driver measures the server, not
	// fmt.Sprintf.
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, 20000)
	countries := []string{"us", "de", "jp", "br", "in", "fr"}
	bodies := make([][]byte, batches)
	for b := range bodies {
		var buf bytes.Buffer
		for i := 0; i < rowsPerBatch; i++ {
			fmt.Fprintf(&buf, "country=%s|ad=ad-%d\n", countries[rng.Intn(len(countries))], zipf.Uint64())
		}
		bodies[b] = buf.Bytes()
	}

	totalRows := int64(batches * rowsPerBatch)
	fmt.Fprintf(w, "# server: %d async batches × %d rows into sharded 8×1024, then %d reps/query\n",
		batches, rowsPerBatch, queryReps)

	ingestStart := time.Now()
	for _, body := range bodies {
		if _, err := c.post("/v1/sketches/bench/ingest", "text/plain", body); err != nil {
			return err
		}
	}
	// Drain barrier: poll until every accepted row is applied.
	for {
		data, err := c.get("/v1/sketches/bench")
		if err != nil {
			return err
		}
		var info struct {
			Rows int64 `json:"rows"`
		}
		if err := json.Unmarshal(data, &info); err != nil {
			return err
		}
		if info.Rows >= totalRows {
			break
		}
	}
	ingestD := time.Since(ingestStart)
	fmt.Fprintf(w, "%-34s %14v %14.0f rows/s\n", "ingest (accept + apply)", ingestD,
		float64(totalRows)/ingestD.Seconds())
	rec.set("ingest_rows", totalRows)
	rec.set("ingest_total", ingestD)
	rec.set("ingest_rows_per_second", float64(totalRows)/ingestD.Seconds())

	queries := []struct {
		name string
		key  string
		run  func() error
	}{
		{"topk k=10", "topk", func() error {
			_, err := c.get("/v1/sketches/bench/topk?k=10")
			return err
		}},
		{"query group_by country", "groupby", func() error {
			_, err := c.post("/v1/sketches/bench/query", "application/json",
				[]byte(`{"where":[{"dim":"country","in":["us","de"]}],"group_by":["country"]}`))
			return err
		}},
		{"sum prefix", "sum", func() error {
			_, err := c.get("/v1/sketches/bench/sum?prefix=country=jp")
			return err
		}},
	}
	fmt.Fprintf(w, "%-34s %14s %14s %14s\n", "query (quiescent sketch)", "p50", "p99", "max")
	for _, q := range queries {
		if err := q.run(); err != nil { // warm: build snapshot + prepared query
			return err
		}
		lat := make([]time.Duration, queryReps)
		for i := range lat {
			t0 := time.Now()
			if err := q.run(); err != nil {
				return err
			}
			lat[i] = time.Since(t0)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Fprintf(w, "%-34s %14v %14v %14v\n", q.name,
			percentile(lat, 0.50), percentile(lat, 0.99), lat[len(lat)-1])
		rec.set(q.key+"_p50", percentile(lat, 0.50))
		rec.set(q.key+"_p99", percentile(lat, 0.99))
	}

	return perfServerDurable(w, rec, bodies, totalRows)
}

// perfServerDurable re-runs the ingest phase against a WAL-backed server
// in group-commit mode: every 202 is withheld until a shared interval
// fsync covers the batch, so the reported rate is durable rows/s — rows
// that would survive a kill -9 the instant the ack was read.
func perfServerDurable(w io.Writer, rec *benchRecorder, bodies [][]byte, totalRows int64) error {
	dir, err := os.MkdirTemp("", "ussbench-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(store.Options{
		Dir: dir, Sync: store.SyncInterval, SyncEvery: 2 * time.Millisecond, GroupCommit: true,
	})
	if err != nil {
		return err
	}
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		return err
	}
	s := server.New(server.Config{IngestWorkers: 4, QueueDepth: 64})
	if err := s.AttachStore(st, rebuilt, 0); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	defer func() {
		_ = s.Shutdown(context.Background())
		<-done
	}()
	c := &serverClient{base: "http://" + ln.Addr().String(), hc: &http.Client{}}
	if _, err := c.post("/v1/sketches", "application/json",
		[]byte(`{"name":"bench","kind":"sharded","bins":1024,"shards":8,"seed":20180614}`)); err != nil {
		return err
	}

	start := time.Now()
	for _, body := range bodies {
		if _, err := c.post("/v1/sketches/bench/ingest", "text/plain", body); err != nil {
			return err
		}
	}
	for {
		data, err := c.get("/v1/sketches/bench")
		if err != nil {
			return err
		}
		var info struct {
			Rows int64 `json:"rows"`
		}
		if err := json.Unmarshal(data, &info); err != nil {
			return err
		}
		if info.Rows >= totalRows {
			break
		}
	}
	d := time.Since(start)
	syncs := st.Metrics().Syncs.Load()
	fmt.Fprintf(w, "%-34s %14v %14.0f rows/s (%d fsyncs, group-committed)\n",
		"durable ingest (ack after fsync)", d, float64(totalRows)/d.Seconds(), syncs)
	rec.set("durable_ingest_total", d)
	rec.set("durable_ingest_rows_per_second", float64(totalRows)/d.Seconds())
	rec.set("durable_ingest_fsyncs", syncs)
	return nil
}
