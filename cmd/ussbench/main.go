// Command ussbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	ussbench -list
//	ussbench -experiment figure-3
//	ussbench -all -scale 1 -reps 1 -out results.txt
//	ussbench -bench codec
//	ussbench -bench rollup-range
//	ussbench -bench server
//	ussbench -bench wal
//	ussbench -bench repl
//	ussbench -bench cluster
//	ussbench -bench soak
//	ussbench -bench merge
//	ussbench -bench obs
//	ussbench -check -baseline-dir bench/baselines
//
// Each experiment prints the same rows/series the corresponding paper
// figure plots, plus a note stating the qualitative shape to expect. See
// internal/experiments for the per-figure drivers and DESIGN.md for the
// engineering notes behind the perf modes. Every -bench run also emits
// its headline numbers as BENCH_<mode>.json (see -json-dir) for CI and
// tooling.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		name  = flag.String("experiment", "", "experiment to run (e.g. figure-3)")
		all   = flag.Bool("all", false, "run every experiment in paper order")
		bench = flag.String("bench", "", "run a perf comparison instead: codec | rollup-range | server | wal | repl | cluster | soak | merge | obs")
		check = flag.Bool("check", false, "re-run every bench with a committed baseline and fail on perf regressions")
		bdir  = flag.String("baseline-dir", "bench/baselines", "directory of committed BENCH_<mode>.json baselines for -check")
		tol   = flag.Float64("tolerance", 0.15, "-check regression tolerance (0.15 = 15%)")
		scale = flag.Float64("scale", 1, "workload size multiplier")
		reps  = flag.Float64("reps", 1, "replicate count multiplier")
		seed  = flag.Int64("seed", 20180614, "random seed")
		out   = flag.String("out", "", "also write results to this file")
		jdir  = flag.String("json-dir", ".", "directory for the machine-readable BENCH_<mode>.json a -bench run emits")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-16s %s\n", r.Name, r.Description)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		w = io.MultiWriter(os.Stdout, fh)
	}

	if *check {
		if err := runCheck(w, *bdir, *scale, *tol); err != nil {
			fatal(err)
		}
		return
	}

	if *bench != "" {
		if err := runPerf(w, *bench, *scale, *jdir); err != nil {
			fatal(err)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Reps: *reps, Seed: *seed}
	var runners []experiments.Runner
	switch {
	case *all:
		for _, r := range experiments.Registry() {
			// The combined runner duplicates figures 8–10; skip the
			// individual ones in -all mode to avoid re-running the
			// epoch experiment three times.
			if r.Name == "figure-8" || r.Name == "figure-9" || r.Name == "figure-10" {
				continue
			}
			runners = append(runners, r)
		}
	case *name != "":
		r, err := experiments.Lookup(*name)
		if err != nil {
			fatal(err)
		}
		runners = []experiments.Runner{r}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, r := range runners {
		start := time.Now()
		fmt.Fprintf(w, "# %s — %s\n", r.Name, r.Description)
		for _, tab := range r.Run(cfg) {
			fmt.Fprintln(w, tab.Render())
		}
		fmt.Fprintf(w, "# %s completed in %v\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ussbench:", err)
	os.Exit(1)
}
