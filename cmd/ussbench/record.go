package main

// Machine-readable bench output: every -bench mode records its headline
// numbers into a flat key→value map that lands next to the text table
// as BENCH_<mode>.json, so CI and tooling can track perf without
// scraping the human tables.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// benchRecorder accumulates one -bench run's machine-readable results.
type benchRecorder struct {
	mode    string
	results map[string]any
}

func newRecorder(mode string) *benchRecorder {
	return &benchRecorder{mode: mode, results: make(map[string]any)}
}

// set records one result. Durations are stored as float seconds under
// key and as a human string under key_human.
func (r *benchRecorder) set(key string, v any) {
	if d, ok := v.(time.Duration); ok {
		r.results[key+"_seconds"] = d.Seconds()
		r.results[key+"_human"] = d.String()
		return
	}
	r.results[key] = v
}

// write dumps the run as BENCH_<mode>.json in dir.
func (r *benchRecorder) write(dir string) (string, error) {
	doc := map[string]any{
		"bench":   r.mode,
		"results": r.results,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", sanitizeMode(r.mode)))
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sanitizeMode keeps bench filenames flat ("rollup-range" → "rollup-range").
func sanitizeMode(mode string) string {
	out := make([]rune, 0, len(mode))
	for _, c := range mode {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
