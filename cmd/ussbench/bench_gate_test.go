package main

// The perf regression gate (satellite of the hardware-limit kernels PR):
// unit tests pin the compare logic — which keys are gated, in which
// direction, at what tolerance — and an env-gated test runs the real
// `-check` against the committed baselines (USS_BENCH_GATE=1; too slow
// and machine-dependent for the default test run).

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareBenchGatesThroughputDrops(t *testing.T) {
	base := map[string]float64{
		"ingest_rows_per_second":         1_000_000,
		"durable_ingest_rows_per_second": 500_000,
		"topk_p99_seconds":               0.010,
		"scale":                          1, // not a gated suffix: ignored
	}
	// Within tolerance on every gated key: no findings.
	ok := map[string]float64{
		"ingest_rows_per_second":         900_000, // -10%
		"durable_ingest_rows_per_second": 460_000, // -8%
		"topk_p99_seconds":               0.011,   // +10%
		"scale":                          99,      // wildly off but ungated
	}
	if bad := compareBench("server", base, ok, 0.15); len(bad) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", bad)
	}
	// Throughput 20% down: flagged.
	slow := map[string]float64{
		"ingest_rows_per_second":         800_000,
		"durable_ingest_rows_per_second": 500_000,
		"topk_p99_seconds":               0.010,
	}
	bad := compareBench("server", base, slow, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "ingest_rows_per_second") {
		t.Fatalf("20%% throughput drop not flagged correctly: %v", bad)
	}
	// p99 gates the other direction: 20% slower tail is flagged, 20%
	// faster is not.
	tail := map[string]float64{
		"ingest_rows_per_second":         1_000_000,
		"durable_ingest_rows_per_second": 500_000,
		"topk_p99_seconds":               0.012,
	}
	if bad := compareBench("server", base, tail, 0.15); len(bad) != 1 || !strings.Contains(bad[0], "topk_p99_seconds") {
		t.Fatalf("20%% p99 regression not flagged correctly: %v", bad)
	}
	tail["topk_p99_seconds"] = 0.008
	if bad := compareBench("server", base, tail, 0.15); len(bad) != 0 {
		t.Fatalf("faster p99 flagged as a regression: %v", bad)
	}
}

func TestCompareBenchSkipsMissingAndZeroKeys(t *testing.T) {
	base := map[string]float64{
		"old_rows_per_second":  100,
		"zero_rows_per_second": 0,
	}
	fresh := map[string]float64{
		"new_rows_per_second": 5, // only in fresh: ignored
	}
	if bad := compareBench("m", base, fresh, 0.15); len(bad) != 0 {
		t.Fatalf("missing/zero keys flagged: %v", bad)
	}
}

func TestLoadBenchDocKeepsNumbersOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	blob := []byte(`{"bench":"x","results":{"a_rows_per_second":12.5,"b_human":"3ms","c":7}}`)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := loadBenchDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "x" {
		t.Fatalf("bench = %q", doc.Bench)
	}
	if doc.Results["a_rows_per_second"] != 12.5 || doc.Results["c"] != 7 {
		t.Fatalf("numeric results lost: %v", doc.Results)
	}
	if _, ok := doc.Results["b_human"]; ok {
		t.Fatal("non-numeric result leaked into the gated map")
	}
}

// TestBenchGateAgainstBaselines runs the real `-check` against the
// committed baselines. Perf numbers are machine-dependent, so this only
// runs when explicitly requested: USS_BENCH_GATE=1 go test -run BenchGate.
func TestBenchGateAgainstBaselines(t *testing.T) {
	if os.Getenv("USS_BENCH_GATE") != "1" {
		t.Skip("set USS_BENCH_GATE=1 to run the perf gate against committed baselines")
	}
	baselineDir := filepath.Join("..", "..", "bench", "baselines")
	if _, err := os.Stat(baselineDir); err != nil {
		t.Fatalf("no committed baselines: %v", err)
	}
	var out bytes.Buffer
	if err := runCheck(&out, baselineDir, 1, 0.15); err != nil {
		t.Fatalf("perf gate failed:\n%s\n%v", out.String(), err)
	}
	t.Logf("perf gate:\n%s", out.String())
}

// TestObsOverheadGate runs the tracing-overhead comparison and fails if
// tracing costs more than its 5% rows/s budget. Machine-dependent, so
// env-gated like the baseline check: USS_BENCH_GATE=1 go test -run ObsOverhead.
func TestObsOverheadGate(t *testing.T) {
	if os.Getenv("USS_BENCH_GATE") != "1" {
		t.Skip("set USS_BENCH_GATE=1 to run the tracing-overhead gate")
	}
	var out bytes.Buffer
	if err := runPerf(&out, "obs", 1, t.TempDir()); err != nil {
		t.Fatalf("obs overhead gate failed:\n%s\n%v", out.String(), err)
	}
	t.Logf("obs overhead:\n%s", out.String())
}
