package main

// -bench soak: the chaos soak harness. A 3-node durable cluster runs a
// seeded read/write workload while a fault schedule walks through disk
// exhaustion (disk.enospc), slow peers (cluster.slow-peer), fan losses
// (cluster.drop-fan) and a dead node, then releases every fault and
// checks the invariants the resilience layer promises:
//
//   - the process never dies: every phase runs to completion in-process;
//   - reads never answer 5xx while a read quorum holds — degraded,
//     hedged, but 200;
//   - a read-only store refuses mutations with 503 + Retry-After on the
//     direct node path;
//   - every acked write survives: after the faults lift, the cluster
//     top-k is bit-identical to a ground truth accumulated from exactly
//     the batches that were acknowledged 200.
//
// Exactness under partial fan failures is arranged, not hoped for: each
// workload batch is pre-partitioned by the same item-hash slot the
// proxy uses, so every POST maps to exactly one fan task and an ack is
// all-or-nothing. Weights are small integers, the item universe is far
// smaller than the bin budget, and sums stay below 2^53 — so the sketch
// holds every item exactly and float equality is meaningful.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/hashx"
	"repro/internal/server"
	"repro/internal/store"
)

// soakPhase is one slice of the fault schedule.
type soakPhase struct {
	name      string
	spec      string // faultpoint spec for faultinject.Enable ("" = none)
	pressured bool   // latencies bucket: healthy vs pressured
	nodeDown  bool   // node 2's listener is closed for this phase
}

// soakStats accumulates the workload's outcome counters.
type soakStats struct {
	acked, shed  int // write batches acknowledged / refused
	reads        int
	readFailures []string
	healthyLat   []time.Duration
	pressuredLat []time.Duration
}

// perfSoak runs the chaos soak against a 3-node durable in-process
// cluster and fails on any invariant violation.
func perfSoak(w io.Writer, rec *benchRecorder, scale float64) error {
	faultinject.Reset()
	defer faultinject.Reset()

	phaseDur := time.Duration(float64(1500*time.Millisecond) * scale)
	if phaseDur < 500*time.Millisecond {
		phaseDur = 500 * time.Millisecond
	}
	const (
		n           = 3
		universe    = 1200
		rowsPerTick = 60
		sketch      = "soak"
	)

	sc, err := newSoakCluster(n)
	if err != nil {
		return err
	}
	defer sc.teardown()

	if err := sc.post(0, "/v1/sketches", "application/json",
		`{"name":"soak","kind":"weighted","bins":4096,"seed":20180614}`, nil); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(20180614))
	truth := make(map[string]float64, universe)
	var st soakStats

	// One workload tick: a batch of skewed rows, pre-partitioned so each
	// POST is a single fan task (all-or-nothing), then one gathered read.
	tick := func(liveNodes []int, pressured bool) error {
		parts := make([]strings.Builder, n)
		weights := make([]map[string]float64, n)
		for i := range weights {
			weights[i] = make(map[string]float64)
		}
		for i := 0; i < rowsPerTick; i++ {
			idx := rng.Intn(universe)
			if i < 10 {
				idx = rng.Intn(16) // a persistent hot set keeps top-k contested
			}
			item := fmt.Sprintf("item-%04d", idx)
			wgt := float64(1 + idx%5)
			slot := int(hashx.Sum64a(item) % uint64(n))
			fmt.Fprintf(&parts[slot], "%s\t%.0f\n", item, wgt)
			weights[slot][item] += wgt
		}
		for slot := range parts {
			if parts[slot].Len() == 0 {
				continue
			}
			node := liveNodes[rng.Intn(len(liveNodes))]
			code, err := sc.postStatus(node, "/v1/sketches/"+sketch+"/ingest?sync=1",
				"text/plain", parts[slot].String())
			switch {
			case err == nil && code == http.StatusOK:
				st.acked++
				for item, wgt := range weights[slot] {
					truth[item] += wgt
				}
			default:
				// Refused or failed before any delivery: the batch was a
				// single fan task, so none of its rows were applied.
				st.shed++
			}
		}
		node := liveNodes[rng.Intn(len(liveNodes))]
		t0 := time.Now()
		code, err := sc.getStatus(node, "/v1/sketches/"+sketch+"/topk?k=10")
		lat := time.Since(t0)
		st.reads++
		if err != nil || code != http.StatusOK {
			st.readFailures = append(st.readFailures,
				fmt.Sprintf("node %d: code %d err %v", node, code, err))
		}
		if pressured {
			st.pressuredLat = append(st.pressuredLat, lat)
		} else {
			st.healthyLat = append(st.healthyLat, lat)
		}
		return nil
	}

	phases := []soakPhase{
		{name: "healthy", spec: ""},
		{name: "enospc", spec: "disk.enospc", pressured: true},
		{name: "slow-peer", spec: "cluster.slow-peer:0.4", pressured: true},
		{name: "drop-fan", spec: "cluster.drop-fan:0.3", pressured: true},
		{name: "node-down", spec: "", pressured: true, nodeDown: true},
		{name: "released", spec: ""},
	}
	for _, ph := range phases {
		if ph.spec != "" {
			if err := faultinject.Enable(ph.spec); err != nil {
				return err
			}
		}
		live := []int{0, 1, 2}
		if ph.nodeDown {
			sc.stopListener(2)
			live = []int{0, 1}
		}
		ticks := 0
		for end := time.Now().Add(phaseDur); time.Now().Before(end); {
			if err := tick(live, ph.pressured); err != nil {
				return fmt.Errorf("phase %s: %w", ph.name, err)
			}
			ticks++
		}
		fmt.Fprintf(w, "# soak phase %-10s %4d ticks, %d acked, %d shed so far\n",
			ph.name, ticks, st.acked, st.shed)

		if ph.name == "enospc" {
			// Invariant: the direct node path refuses read-only mutations
			// with 503 + Retry-After (the fan does not forward headers, so
			// this is checked against the wrapped server itself).
			code, hdr, err := sc.postWithHeader(0,
				"/v1/cluster/sketches/"+sketch+"/ingest?sync=1", "text/plain", "item-0000\t1\n")
			if err != nil {
				return fmt.Errorf("read-only probe: %w", err)
			}
			if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
				return fmt.Errorf("read-only mutation answered %d with Retry-After %q; want 503 with a hint",
					code, hdr.Get("Retry-After"))
			}
		}
		if ph.name == "healthy" {
			// Seed anti-entropy copies so later phases can hedge dead and
			// slow owners from co-owner state.
			for i := 0; i < n; i++ {
				if err := sc.post(i, "/v1/cluster/antientropy", "", "", nil); err != nil {
					return err
				}
			}
		}
		if ph.nodeDown {
			if err := sc.restartListener(2); err != nil {
				return err
			}
		}
		faultinject.Reset()
	}

	// Invariant: reads never answered 5xx (quorum held in every phase).
	if len(st.readFailures) > 0 {
		return fmt.Errorf("%d of %d reads failed under fault schedule: %s",
			len(st.readFailures), st.reads, strings.Join(st.readFailures, "; "))
	}

	// Post-release writes must land: retry a final batch until acked.
	landed := false
	for attempt := 0; attempt < 50; attempt++ {
		code, err := sc.postStatus(0, "/v1/sketches/"+sketch+"/ingest?sync=1",
			"text/plain", "item-0001\t2\n")
		if err == nil && code == http.StatusOK {
			truth["item-0001"] += 2
			landed = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !landed {
		return fmt.Errorf("post-release ingest never acked: the cluster did not heal")
	}
	for i := 0; i < n; i++ {
		if err := sc.post(i, "/v1/cluster/antientropy", "", "", nil); err != nil {
			return err
		}
	}

	// Invariant: the reconciled top-k is bit-identical to ground truth.
	const k = 15
	for node := 0; node < n; node++ {
		if err := sc.checkTopK(node, sketch, k, truth); err != nil {
			return fmt.Errorf("post-release top-k on node %d: %w", node, err)
		}
	}
	fmt.Fprintf(w, "# soak: top-%d bit-identical to ground truth on all %d nodes (%d items acked)\n",
		k, n, len(truth))

	trips, counters := sc.collectCounters()
	sort.Slice(st.healthyLat, func(i, j int) bool { return st.healthyLat[i] < st.healthyLat[j] })
	sort.Slice(st.pressuredLat, func(i, j int) bool { return st.pressuredLat[i] < st.pressuredLat[j] })
	shedRate := 0.0
	if st.acked+st.shed > 0 {
		shedRate = float64(st.shed) / float64(st.acked+st.shed)
	}
	fmt.Fprintf(w, "%-34s %14s %14s\n", "read latency", "p50", "p99")
	fmt.Fprintf(w, "%-34s %14v %14v\n", "healthy phases",
		percentile(st.healthyLat, 0.50), percentile(st.healthyLat, 0.99))
	fmt.Fprintf(w, "%-34s %14v %14v\n", "pressured phases",
		percentile(st.pressuredLat, 0.50), percentile(st.pressuredLat, 0.99))
	fmt.Fprintf(w, "%-34s %14d acked %8d shed (%.1f%%), %d breaker trips\n",
		"writes", st.acked, st.shed, 100*shedRate, trips)

	rec.set("writes_acked", st.acked)
	rec.set("writes_shed", st.shed)
	rec.set("shed_rate", shedRate)
	rec.set("reads_total", st.reads)
	rec.set("read_failures", len(st.readFailures))
	rec.set("breaker_trips", trips)
	rec.set("read_healthy_p50", percentile(st.healthyLat, 0.50))
	rec.set("read_healthy_p99", percentile(st.healthyLat, 0.99))
	rec.set("read_pressured_p50", percentile(st.pressuredLat, 0.50))
	rec.set("read_pressured_p99", percentile(st.pressuredLat, 0.99))
	rec.set("topk_exact", true)
	for key, v := range counters {
		rec.set("cluster_"+key, v)
	}
	return nil
}

// checkTopK fetches a gathered top-k and verifies exactness against the
// acked ground truth: every returned count equals the truth count bit
// for bit, and no excluded item outweighs the returned tail.
func (sc *soakCluster) checkTopK(node int, name string, k int, truth map[string]float64) error {
	var out struct {
		Items []struct {
			Item  string  `json:"item"`
			Count float64 `json:"count"`
		} `json:"items"`
	}
	if err := sc.getJSON(node, fmt.Sprintf("/v1/sketches/%s/topk?k=%d", name, k), &out); err != nil {
		return err
	}
	if len(out.Items) == 0 {
		return fmt.Errorf("empty top-%d", k)
	}
	returned := make(map[string]bool, len(out.Items))
	minReturned := out.Items[0].Count
	for _, it := range out.Items {
		if want, ok := truth[it.Item]; !ok || want != it.Count {
			return fmt.Errorf("item %s: count %v, ground truth %v", it.Item, it.Count, truth[it.Item])
		}
		returned[it.Item] = true
		if it.Count < minReturned {
			minReturned = it.Count
		}
	}
	for item, wgt := range truth {
		if !returned[item] && wgt > minReturned {
			return fmt.Errorf("item %s (weight %v) missing from top-%d whose tail is %v",
				item, wgt, k, minReturned)
		}
	}
	return nil
}

// soakNode is one durable cluster member with a restartable listener.
type soakNode struct {
	*benchNode
	addr string
	dir  string
}

// soakCluster is the 3-node durable in-process cluster the soak drives.
type soakCluster struct {
	nodes []*soakNode
	urls  []string
}

// newSoakCluster boots n durable nodes (each with its own WAL dir and a
// per-append disk probe, so disk.enospc bites immediately) wired into
// one rf=n cluster with aggressive hedge and breaker settings.
func newSoakCluster(n int) (*soakCluster, error) {
	sc := &soakCluster{}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			sc.teardown()
			return nil, err
		}
		lns[i] = ln
		sc.urls = append(sc.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "soak-node-")
		if err != nil {
			sc.teardown()
			return nil, err
		}
		rebuilt, err := store.Rebuild(dir)
		if err != nil {
			sc.teardown()
			return nil, err
		}
		st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever, DiskCheckEvery: 1})
		if err != nil {
			sc.teardown()
			return nil, err
		}
		srv := server.New(server.Config{IngestWorkers: 2, QueueDepth: 64, MaxInflightBytes: 1 << 20})
		if err := srv.AttachStore(st, rebuilt, 0); err != nil {
			sc.teardown()
			return nil, err
		}
		ag, err := cluster.New(cluster.Config{
			Self:              sc.urls[i],
			Peers:             append([]string(nil), sc.urls...),
			ReplicationFactor: n,
			ReadQuorum:        n/2 + 1,
			HedgeDelay:        20 * time.Millisecond,
			DownFor:           300 * time.Millisecond,
			BreakerThreshold:  3,
			BreakerCooldown:   200 * time.Millisecond,
			Client:            &http.Client{Timeout: 5 * time.Second},
		}, srv)
		if err != nil {
			sc.teardown()
			return nil, err
		}
		ag.Start()
		hs := &http.Server{Handler: ag.Handler()}
		go hs.Serve(lns[i])
		sc.nodes = append(sc.nodes, &soakNode{
			benchNode: &benchNode{srv: srv, agent: ag, hs: hs, ln: lns[i]},
			addr:      lns[i].Addr().String(),
			dir:       dir,
		})
	}
	return sc, nil
}

// stopListener kills node i's HTTP front end (the node "crashes"); the
// server and agent keep running so a restart is just a new listener.
func (sc *soakCluster) stopListener(i int) {
	sc.nodes[i].hs.Close()
}

// restartListener brings node i's front end back on its original
// address, retrying briefly while the OS releases the port.
func (sc *soakCluster) restartListener(i int) error {
	nd := sc.nodes[i]
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", nd.addr)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("rebind %s: %w", nd.addr, err)
	}
	nd.ln = ln
	nd.hs = &http.Server{Handler: nd.agent.Handler()}
	go nd.hs.Serve(ln)
	return nil
}

// teardown stops every node and removes the WAL dirs.
func (sc *soakCluster) teardown() {
	for _, nd := range sc.nodes {
		nd.hs.Close()
		_ = nd.agent.Shutdown(context.Background())
		_ = nd.srv.Shutdown(context.Background())
		if nd.dir != "" {
			os.RemoveAll(nd.dir)
		}
	}
}

// postStatus POSTs and reports just the status code.
func (sc *soakCluster) postStatus(node int, path, ctype, body string) (int, error) {
	resp, err := http.Post(sc.urls[node]+path, ctype, strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// postWithHeader POSTs and returns the status code plus response headers.
func (sc *soakCluster) postWithHeader(node int, path, ctype, body string) (int, http.Header, error) {
	resp, err := http.Post(sc.urls[node]+path, ctype, strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header, nil
}

// post POSTs and fails on any non-2xx; when out is non-nil the JSON
// response is decoded into it.
func (sc *soakCluster) post(node int, path, ctype, body string, out any) error {
	resp, err := http.Post(sc.urls[node]+path, ctype, strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, truncateStr(data, 160))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// getStatus GETs and reports just the status code.
func (sc *soakCluster) getStatus(node int, path string) (int, error) {
	resp, err := http.Get(sc.urls[node] + path)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// getJSON GETs and decodes a 200 JSON response into out.
func (sc *soakCluster) getJSON(node int, path string, out any) error {
	resp, err := http.Get(sc.urls[node] + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, truncateStr(data, 160))
	}
	return json.Unmarshal(data, out)
}

// collectCounters sums breaker trips across the cluster and folds every
// node's agent counters into one map for the bench record.
func (sc *soakCluster) collectCounters() (trips int64, counters map[string]int64) {
	counters = make(map[string]int64)
	for node := range sc.nodes {
		var st struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := sc.getJSON(node, "/v1/cluster/status", &st); err != nil {
			continue
		}
		for k, v := range st.Counters {
			counters[k] += v
		}
	}
	return counters["breaker_trips"], counters
}

// truncateStr clips a response body for error messages.
func truncateStr(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
