package main

// ussbench -check: the perf regression gate. For every committed
// BENCH_<mode>.json baseline it re-runs that bench mode fresh and
// compares the headline numbers:
//
//   - keys ending _rows_per_second fail when fresh < baseline × (1-tol)
//     (throughput regressed);
//   - keys ending _p99_seconds fail when fresh > baseline × (1+tol)
//     (tail latency regressed).
//
// Everything else in the baselines is informational. The default
// tolerance is 15% — wide enough to absorb scheduler noise on shared CI
// machines, tight enough that a dropped fast path (a merge running
// sequentially, a batch encode re-serialized under the lock) trips it.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// benchDoc mirrors the BENCH_<mode>.json layout.
type benchDoc struct {
	Bench   string             `json:"bench"`
	Results map[string]float64 `json:"-"`
	Raw     map[string]any     `json:"results"`
}

// loadBenchDoc reads one BENCH_<mode>.json, keeping only numeric results.
func loadBenchDoc(path string) (*benchDoc, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	doc.Results = make(map[string]float64, len(doc.Raw))
	for k, v := range doc.Raw {
		if f, ok := v.(float64); ok {
			doc.Results[k] = f
		}
	}
	return &doc, nil
}

// compareBench diffs fresh numbers against a baseline and returns one
// human-readable line per regression (empty means the gate passes).
// Gated keys present in only one side are skipped — new benches may add
// keys without invalidating old baselines.
func compareBench(mode string, baseline, fresh map[string]float64, tol float64) []string {
	var bad []string
	keys := make([]string, 0, len(baseline))
	for k := range baseline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		base := baseline[k]
		got, ok := fresh[k]
		if !ok || base <= 0 {
			continue
		}
		switch {
		case strings.HasSuffix(k, "_rows_per_second"):
			if got < base*(1-tol) {
				bad = append(bad, fmt.Sprintf("%s/%s: %.0f rows/s, baseline %.0f (-%.0f%% > %.0f%% tolerance)",
					mode, k, got, base, 100*(1-got/base), 100*tol))
			}
		case strings.HasSuffix(k, "_p99_seconds"):
			if got > base*(1+tol) {
				bad = append(bad, fmt.Sprintf("%s/%s: p99 %.6fs, baseline %.6fs (+%.0f%% > %.0f%% tolerance)",
					mode, k, got, base, 100*(got/base-1), 100*tol))
			}
		}
	}
	return bad
}

// runCheck re-runs every bench mode that has a committed baseline in
// baselineDir and fails (non-nil error) on any regression past tol.
func runCheck(w io.Writer, baselineDir string, scale, tol float64) error {
	matches, err := filepath.Glob(filepath.Join(baselineDir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(matches) == 0 {
		return fmt.Errorf("no BENCH_*.json baselines in %s", baselineDir)
	}
	sort.Strings(matches)

	freshDir, err := os.MkdirTemp("", "ussbench-check-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(freshDir)

	var regressions []string
	for _, path := range matches {
		base, err := loadBenchDoc(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## check %s (baseline %s)\n", base.Bench, path)
		if err := runPerf(w, base.Bench, scale, freshDir); err != nil {
			return fmt.Errorf("re-run -bench %s: %w", base.Bench, err)
		}
		fresh, err := loadBenchDoc(filepath.Join(freshDir, fmt.Sprintf("BENCH_%s.json", sanitizeMode(base.Bench))))
		if err != nil {
			return err
		}
		bad := compareBench(base.Bench, base.Results, fresh.Results, tol)
		if len(bad) == 0 {
			fmt.Fprintf(w, "# %s: OK (within %.0f%% of baseline)\n\n", base.Bench, 100*tol)
		} else {
			for _, line := range bad {
				fmt.Fprintf(w, "# REGRESSION %s\n", line)
			}
			fmt.Fprintln(w)
			regressions = append(regressions, bad...)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d perf regression(s) past the %.0f%% gate:\n  %s",
			len(regressions), 100*tol, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "# check: all %d baseline(s) within tolerance\n", len(matches))
	return nil
}
