package main

// ussbench -bench obs: the observability overhead budget. Drives the
// same async text-ingest workload as -bench server against two
// in-process servers — one with tracing/histograms enabled (the
// default) and one with Config.TraceDisabled — and reports the rows/s
// delta. The tracing fast path (span ring write + striped histogram
// record + hot-view sample) is designed to cost <5% of ingest
// throughput; the gate hard-fails on that budget under USS_BENCH_GATE=1
// (best-of-rounds keeps scheduler noise from flapping the default run).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/server"
)

// obsOverheadBudget is the acceptable tracing-on throughput loss.
const obsOverheadBudget = 0.05

// obsIngestRun starts a fresh server with the given trace setting,
// pushes every batch, waits for the drain barrier, and returns applied
// rows/s.
func obsIngestRun(bodies [][]byte, totalRows int64, traceDisabled bool) (float64, error) {
	s := server.New(server.Config{IngestWorkers: 4, QueueDepth: 64, TraceDisabled: traceDisabled})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	defer func() {
		_ = s.Shutdown(context.Background())
		<-done
	}()
	c := &serverClient{base: "http://" + ln.Addr().String(), hc: &http.Client{}}
	if _, err := c.post("/v1/sketches", "application/json",
		[]byte(`{"name":"bench","kind":"sharded","bins":1024,"shards":8,"seed":20180614}`)); err != nil {
		return 0, err
	}
	start := time.Now()
	for _, body := range bodies {
		if _, err := c.post("/v1/sketches/bench/ingest", "text/plain", body); err != nil {
			return 0, err
		}
	}
	for {
		data, err := c.get("/v1/sketches/bench")
		if err != nil {
			return 0, err
		}
		var info struct {
			Rows int64 `json:"rows"`
		}
		if err := json.Unmarshal(data, &info); err != nil {
			return 0, err
		}
		if info.Rows >= totalRows {
			break
		}
	}
	return float64(totalRows) / time.Since(start).Seconds(), nil
}

// perfObs measures tracing-on vs tracing-off ingest throughput.
func perfObs(w io.Writer, rec *benchRecorder, scale float64) error {
	batches := int(60 * scale)
	if batches < 4 {
		batches = 4
	}
	const rowsPerBatch = 2000
	const rounds = 3

	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, 20000)
	countries := []string{"us", "de", "jp", "br", "in", "fr"}
	bodies := make([][]byte, batches)
	for b := range bodies {
		var buf bytes.Buffer
		for i := 0; i < rowsPerBatch; i++ {
			fmt.Fprintf(&buf, "country=%s|ad=ad-%d\n", countries[rng.Intn(len(countries))], zipf.Uint64())
		}
		bodies[b] = buf.Bytes()
	}
	totalRows := int64(batches * rowsPerBatch)

	fmt.Fprintf(w, "# obs: %d async batches × %d rows, tracing on vs off, best of %d rounds\n",
		batches, rowsPerBatch, rounds)

	// Alternate the two configurations round by round so thermal or
	// background drift hits both sides evenly; keep each side's best.
	var onBest, offBest float64
	for r := 0; r < rounds; r++ {
		on, err := obsIngestRun(bodies, totalRows, false)
		if err != nil {
			return err
		}
		off, err := obsIngestRun(bodies, totalRows, true)
		if err != nil {
			return err
		}
		if on > onBest {
			onBest = on
		}
		if off > offBest {
			offBest = off
		}
	}

	overhead := (offBest - onBest) / offBest
	fmt.Fprintf(w, "%-34s %14.0f rows/s\n", "tracing off (TraceDisabled)", offBest)
	fmt.Fprintf(w, "%-34s %14.0f rows/s\n", "tracing on (default)", onBest)
	fmt.Fprintf(w, "%-34s %13.2f%% (budget %.0f%%)\n", "tracing overhead", overhead*100, obsOverheadBudget*100)
	rec.set("ingest_rows", totalRows)
	rec.set("rounds", rounds)
	rec.set("traced_rows_per_second", onBest)
	rec.set("untraced_rows_per_second", offBest)
	rec.set("overhead_fraction", overhead)
	rec.set("overhead_budget", obsOverheadBudget)

	if overhead > obsOverheadBudget {
		msg := fmt.Errorf("tracing overhead %.2f%% exceeds the %.0f%% budget",
			overhead*100, obsOverheadBudget*100)
		if os.Getenv("USS_BENCH_GATE") == "1" {
			return msg
		}
		fmt.Fprintf(w, "# WARNING: %v (non-fatal without USS_BENCH_GATE=1)\n", msg)
	}
	return nil
}
