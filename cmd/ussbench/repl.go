package main

// -bench repl: what failover robustness costs — a follower's catch-up
// rate when it joins a primary holding a populated WAL, measured through
// the real HTTP stream and the real replicated-apply path.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/store"
)

// perfRepl populates a primary's log over HTTP, then times a cold
// follower catching up from LSN 1 to the log end.
func perfRepl(w io.Writer, rec *benchRecorder, scale float64) error {
	rowsPerBatch := int(256 * scale)
	if rowsPerBatch < 8 {
		rowsPerBatch = 8
	}
	const batches = 200

	pdir, err := os.MkdirTemp("", "ussbench-repl-p")
	if err != nil {
		return err
	}
	defer os.RemoveAll(pdir)
	prim, primBase, err := durableNode(pdir)
	if err != nil {
		return err
	}
	defer prim.Shutdown(context.Background())

	if err := prim.CreateSketch(server.SketchConfig{Name: "bench", Kind: "unit", Bins: 4096, Seed: 7}); err != nil {
		return err
	}
	var rows strings.Builder
	for i := 0; i < rowsPerBatch; i++ {
		fmt.Fprintf(&rows, "item-%06d\n", i%997)
	}
	for i := 0; i < batches; i++ {
		resp, err := http.Post(primBase+"/v1/sketches/bench/ingest?sync=1", "text/plain", strings.NewReader(rows.String()))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("repl bench: ingest status %d", resp.StatusCode)
		}
	}
	total := rowsPerBatch * batches
	target := prim.WALNextLSN()

	fdir, err := os.MkdirTemp("", "ussbench-repl-f")
	if err != nil {
		return err
	}
	defer os.RemoveAll(fdir)
	if err := replica.PrepareDataDir(context.Background(), replica.Options{Primary: primBase, DataDir: fdir}); err != nil {
		return err
	}
	foll, _, err := durableNode(fdir)
	if err != nil {
		return err
	}
	defer foll.Shutdown(context.Background())
	foll.SetRole(server.RoleFollower)
	foll.SetReady(false)

	start := time.Now()
	fol, err := replica.Start(replica.Options{Primary: primBase, Server: foll, DataDir: fdir, Poll: 50 * time.Millisecond})
	if err != nil {
		return err
	}
	defer fol.Stop()
	for foll.WALNextLSN() < target {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	fmt.Fprintf(w, "# repl: cold follower catch-up over HTTP, %d-row batches\n", rowsPerBatch)
	fmt.Fprintf(w, "%-34s %14s %14s\n", "catch-up", "total", "rows/s")
	fmt.Fprintf(w, "%-34s %14v %14.0f\n",
		fmt.Sprintf("%7d rows (%d records)", total, target-1), elapsed, float64(total)/elapsed.Seconds())
	rec.set("catchup_rows", total)
	rec.set("catchup_total", elapsed)
	rec.set("catchup_rows_per_second", float64(total)/elapsed.Seconds())
	return nil
}

// durableNode boots a durable server over dir on a loopback listener.
func durableNode(dir string) (*server.Server, string, error) {
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		return nil, "", err
	}
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever})
	if err != nil {
		return nil, "", err
	}
	s := server.New(server.Config{IngestWorkers: 2, QueueDepth: 64})
	if err := s.AttachStore(st, rebuilt, 0); err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go s.Serve(ln)
	return s, "http://" + ln.Addr().String(), nil
}
