package main

// Perf comparison modes (-bench) for the distributed-aggregation fast
// path, separate from the paper-figure experiments:
//
//	ussbench -bench codec        gob (legacy v1) vs binary v2 encode/decode
//	ussbench -bench rollup-range cold re-merge vs incremental cached ranges
//	ussbench -bench server       load-drive an in-process ussd over HTTP
//	ussbench -bench wal          WAL append throughput + recovery vs log size
//	ussbench -bench repl         follower catch-up rate over the WAL stream
//	ussbench -bench merge        k-way shard merge, sequential vs parallel
//
// Each mode prints a small table of wall-clock per-op times and the
// speedup, sized to the acceptance scenarios (a 64Ki-bin sketch; a
// 90-window rollup; a 200k-row service workload). -scale multiplies the
// workload.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	uss "repro"
	"repro/internal/rollup"
)

// runPerf dispatches a -bench mode, then drops the mode's
// machine-readable results as BENCH_<mode>.json in jsonDir.
func runPerf(w io.Writer, mode string, scale float64, jsonDir string) error {
	rec := newRecorder(mode)
	rec.set("scale", scale)
	var err error
	switch mode {
	case "codec":
		err = perfCodec(w, rec, scale)
	case "rollup-range":
		err = perfRollupRange(w, rec, scale)
	case "server":
		err = perfServer(w, rec, scale)
	case "wal":
		err = perfWAL(w, rec, scale)
	case "repl":
		err = perfRepl(w, rec, scale)
	case "cluster":
		err = perfCluster(w, rec, scale)
	case "soak":
		err = perfSoak(w, rec, scale)
	case "merge":
		err = perfMerge(w, rec, scale)
	case "obs":
		err = perfObs(w, rec, scale)
	default:
		return fmt.Errorf("unknown -bench mode %q (want codec, rollup-range, server, wal, repl, cluster, soak, merge or obs)", mode)
	}
	if err != nil {
		return err
	}
	path, err := rec.write(jsonDir)
	if err != nil {
		return fmt.Errorf("write bench json: %w", err)
	}
	fmt.Fprintf(w, "# results → %s\n", path)
	return nil
}

// timeOp measures fn's per-op wall time, running it for at least minTime.
func timeOp(fn func()) time.Duration {
	const minTime = 300 * time.Millisecond
	fn() // warm
	reps := 0
	start := time.Now()
	for {
		fn()
		reps++
		if d := time.Since(start); d >= minTime {
			return d / time.Duration(reps)
		}
	}
}

// v1GobSnapshot mirrors the legacy gob wire format for the baseline side
// of the codec comparison (the live codec no longer emits it).
type v1GobSnapshot struct {
	Version       int
	Capacity      int
	Deterministic bool
	Weighted      bool
	Rows          int64
	Bins          []uss.Bin
}

func perfCodec(w io.Writer, rec *benchRecorder, scale float64) error {
	bins := int(65536 * scale)
	if bins < 16 {
		bins = 16
	}
	sk := uss.New(bins, uss.WithSeed(20180614))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < bins*4; i++ {
		sk.Update(fmt.Sprintf("item-%08d", rng.Intn(bins*2)))
	}
	fmt.Fprintf(w, "# codec: %d-bin unit sketch (%d occupied), gob v1 vs binary v2\n", bins, sk.Size())

	gobEncode := func() []byte {
		var buf bytes.Buffer
		snap := v1GobSnapshot{Version: 1, Capacity: sk.Capacity(), Rows: sk.Rows(), Bins: sk.Bins()}
		if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	gobBlob := gobEncode()
	v2Blob, err := sk.MarshalBinary()
	if err != nil {
		return err
	}

	tGobEnc := timeOp(func() { gobEncode() })
	var reuse []byte
	tV2Enc := timeOp(func() {
		var err error
		reuse, err = sk.AppendBinary(reuse[:0])
		if err != nil {
			panic(err)
		}
	})
	tGobDec := timeOp(func() {
		var back uss.Sketch
		if err := back.UnmarshalBinary(gobBlob); err != nil {
			panic(err)
		}
	})
	tV2Dec := timeOp(func() {
		var back uss.Sketch
		if err := back.UnmarshalBinary(v2Blob); err != nil {
			panic(err)
		}
	})
	tV2DecBins := timeOp(func() {
		if _, err := uss.DecodeBins(v2Blob); err != nil {
			panic(err)
		}
	})

	fmt.Fprintf(w, "%-34s %14s %14s %8s\n", "operation", "gob v1", "binary v2", "speedup")
	row := func(name string, gob, v2 time.Duration) {
		fmt.Fprintf(w, "%-34s %14v %14v %7.1fx\n", name, gob, v2, float64(gob)/float64(v2))
	}
	row("encode (reused buffer for v2)", tGobEnc, tV2Enc)
	row("decode to sketch", tGobDec, tV2Dec)
	row("decode bins only (merge path)", tGobDec, tV2DecBins)
	fmt.Fprintf(w, "%-34s %13dB %13dB %7.2fx\n", "snapshot size", len(gobBlob), len(v2Blob),
		float64(len(gobBlob))/float64(len(v2Blob)))
	rec.set("bins", bins)
	rec.set("encode_gob", tGobEnc)
	rec.set("encode_v2", tV2Enc)
	rec.set("decode_gob", tGobDec)
	rec.set("decode_v2", tV2Dec)
	rec.set("decode_v2_bins_only", tV2DecBins)
	rec.set("size_gob_bytes", len(gobBlob))
	rec.set("size_v2_bytes", len(v2Blob))
	return nil
}

func perfRollupRange(w io.Writer, rec *benchRecorder, scale float64) error {
	const windows = 90
	rows := int(2000 * scale)
	if rows < 10 {
		rows = 10
	}
	build := func(noCache bool) *rollup.Rollup {
		r, err := rollup.New(rollup.Config{
			Bins: 256, WindowLength: 10, Retain: windows, Seed: 42, NoCache: noCache,
		})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(7))
		zipf := rand.NewZipf(rng, 1.2, 1, 4096)
		for day := 0; day < windows; day++ {
			for i := 0; i < rows; i++ {
				r.Update(fmt.Sprintf("item-%d", zipf.Uint64()), int64(day*10+i%10))
			}
		}
		return r
	}
	pred := func(s string) bool { return strings.HasSuffix(s, "3") }
	hi := int64(windows*10 - 1)

	cold := build(true)
	cached := build(false)
	fmt.Fprintf(w, "# rollup-range: %d windows × %d rows, full-span SubsetSumRange\n", windows, rows)

	tCold := timeOp(func() {
		if _, ok := cold.SubsetSumRange(0, hi, pred); !ok {
			panic("empty range")
		}
	})
	tQuiescent := timeOp(func() {
		if _, ok := cached.SubsetSumRange(0, hi, pred); !ok {
			panic("empty range")
		}
	})
	tLiveDelta := timeOp(func() {
		cached.Update("fresh-row", hi-4)
		if _, ok := cached.SubsetSumRange(0, hi, pred); !ok {
			panic("empty range")
		}
	})

	fmt.Fprintf(w, "%-34s %14s %8s\n", "query mode", "per op", "vs cold")
	fmt.Fprintf(w, "%-34s %14v %7.1fx\n", "cold (re-merge all windows)", tCold, 1.0)
	fmt.Fprintf(w, "%-34s %14v %7.1fx\n", "cached, quiescent windows", tQuiescent, float64(tCold)/float64(tQuiescent))
	fmt.Fprintf(w, "%-34s %14v %7.1fx\n", "cached, live-window delta", tLiveDelta, float64(tCold)/float64(tLiveDelta))
	rec.set("windows", windows)
	rec.set("rows_per_window", rows)
	rec.set("cold", tCold)
	rec.set("cached_quiescent", tQuiescent)
	rec.set("cached_live_delta", tLiveDelta)
	return nil
}
