package main

// ussbench -bench merge: the k-way shard-merge kernel, sequential vs
// parallel tree-reduce. Synthesizes item-disjoint ascending shard runs
// (the exact shape ShardedSketch.Snapshot feeds SumDisjointAscending)
// plus overlapping gather lists (the cluster path through SumBins), and
// reports merged bins/s at each parallelism. The parallel results are
// asserted bit-identical to the sequential ones on every rep — this
// bench doubles as a live equivalence check on realistic sizes.
//
// Only the sequential rates carry the gated _rows_per_second suffix:
// per-parallelism rates on few-core machines are scheduler noise (on
// 1 CPU the "parallel" runs are the same work plus goroutine churn),
// so they are recorded informationally as _bins_per_second and the
// -check gate ignores them.

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/core"
)

// synthShardRuns builds `shards` item-disjoint, ascending bin lists of
// `per` bins each — the post-snapshot shape of a sharded sketch.
func synthShardRuns(rng *rand.Rand, shards, per int) [][]core.Bin {
	lists := make([][]core.Bin, shards)
	for s := range lists {
		bins := make([]core.Bin, per)
		for i := range bins {
			bins[i] = core.Bin{
				Item:  fmt.Sprintf("s%02d-item-%07d", s, i),
				Count: float64(rng.Intn(1_000_000)) + rng.Float64(),
			}
		}
		sort.Slice(bins, func(i, j int) bool {
			if bins[i].Count != bins[j].Count {
				return bins[i].Count < bins[j].Count
			}
			return bins[i].Item < bins[j].Item
		})
		lists[s] = bins
	}
	return lists
}

// synthOverlapLists builds gather-shaped lists: same item universe in
// every list, so SumBins has real folding to do.
func synthOverlapLists(rng *rand.Rand, n, per int) [][]core.Bin {
	lists := make([][]core.Bin, n)
	for s := range lists {
		bins := make([]core.Bin, per)
		for i := range bins {
			bins[i] = core.Bin{
				Item:  fmt.Sprintf("item-%07d", rng.Intn(per*2)),
				Count: float64(rng.Intn(10_000)) + rng.Float64(),
			}
		}
		lists[s] = bins
	}
	return lists
}

// binsIdentical reports bit-for-bit equality of two bin lists.
func binsIdentical(a, b []core.Bin) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// perfMerge benchmarks SumDisjointAscending against SumDisjointParallel
// (and SumBins against SumBinsParallel) across parallelism levels.
func perfMerge(w io.Writer, rec *benchRecorder, scale float64) error {
	shards := 16
	per := int(32768 * scale)
	if per < 256 {
		per = 256
	}
	rng := rand.New(rand.NewSource(20180614))
	runs := synthShardRuns(rng, shards, per)
	overlap := synthOverlapLists(rng, 8, per/2)
	totalBins := shards * per

	fmt.Fprintf(w, "# merge: %d disjoint shard runs × %d bins (%d total), GOMAXPROCS=%d\n",
		shards, per, totalBins, runtime.GOMAXPROCS(0))
	rec.set("shards", shards)
	rec.set("bins_per_shard", per)
	rec.set("gomaxprocs", runtime.GOMAXPROCS(0))

	seq := core.SumDisjointAscending(runs...)
	tSeq := timeOp(func() { core.SumDisjointAscending(runs...) })
	seqRate := float64(totalBins) / tSeq.Seconds()
	fmt.Fprintf(w, "%-34s %14v %14.0f bins/s %8s\n", "disjoint k-way, sequential", tSeq, seqRate, "1.0x")
	rec.set("disjoint_seq", tSeq)
	rec.set("disjoint_seq_rows_per_second", seqRate)

	pars := []int{2, 4, 8}
	for _, par := range pars {
		got := core.SumDisjointParallel(par, runs...)
		if !binsIdentical(seq, got) {
			return fmt.Errorf("SumDisjointParallel(par=%d) diverged from sequential merge", par)
		}
		t := timeOp(func() { core.SumDisjointParallel(par, runs...) })
		rate := float64(totalBins) / t.Seconds()
		fmt.Fprintf(w, "%-34s %14v %14.0f bins/s %7.1fx\n",
			fmt.Sprintf("disjoint k-way, parallel=%d", par), t, rate, float64(tSeq)/float64(t))
		rec.set(fmt.Sprintf("disjoint_par%d", par), t)
		rec.set(fmt.Sprintf("disjoint_par%d_bins_per_second", par), rate)
		rec.set(fmt.Sprintf("disjoint_par%d_speedup", par), float64(tSeq)/float64(t))
	}

	overlapBins := 0
	for _, l := range overlap {
		overlapBins += len(l)
	}
	seqO := core.SumBins(overlap...)
	tSeqO := timeOp(func() { core.SumBins(overlap...) })
	fmt.Fprintf(w, "%-34s %14v %14.0f bins/s %8s\n", "overlapping sum, sequential", tSeqO,
		float64(overlapBins)/tSeqO.Seconds(), "1.0x")
	rec.set("overlap_seq", tSeqO)
	rec.set("overlap_seq_rows_per_second", float64(overlapBins)/tSeqO.Seconds())
	for _, par := range pars {
		got := core.SumBinsParallel(par, overlap...)
		if !binsIdentical(seqO, got) {
			return fmt.Errorf("SumBinsParallel(par=%d) diverged from sequential merge", par)
		}
		t := timeOp(func() { core.SumBinsParallel(par, overlap...) })
		fmt.Fprintf(w, "%-34s %14v %14.0f bins/s %7.1fx\n",
			fmt.Sprintf("overlapping sum, parallel=%d", par), t,
			float64(overlapBins)/t.Seconds(), float64(tSeqO)/float64(t))
		rec.set(fmt.Sprintf("overlap_par%d", par), t)
		rec.set(fmt.Sprintf("overlap_par%d_bins_per_second", par), float64(overlapBins)/t.Seconds())
	}
	return nil
}
