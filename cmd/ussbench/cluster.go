package main

// -bench cluster: what the fault-tolerant cluster mode costs over a
// single node — fan-out ingest throughput through real loopback HTTP,
// scatter-gather read latency against three owners, and the degraded
// path (one node stopped, reads hedged from anti-entropy copies).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// benchNode is one in-process cluster member.
type benchNode struct {
	srv   *server.Server
	agent *cluster.Agent
	hs    *http.Server
	ln    net.Listener
}

// perfCluster boots a 3-node in-process cluster on loopback listeners
// and measures fan ingest, gathered top-k latency, and the degraded
// read path.
func perfCluster(w io.Writer, rec *benchRecorder, scale float64) error {
	batches := int(40 * scale)
	if batches < 4 {
		batches = 4
	}
	const rowsPerBatch = 500
	queryReps := int(200 * scale)
	if queryReps < 20 {
		queryReps = 20
	}

	const n = 3
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*benchNode, n)
	for i := range nodes {
		srv := server.New(server.Config{IngestWorkers: 2, QueueDepth: 64})
		ag, err := cluster.New(cluster.Config{
			Self:              urls[i],
			Peers:             append([]string(nil), urls...),
			ReplicationFactor: 3,
			ReadQuorum:        2,
			HedgeDelay:        20 * time.Millisecond,
		}, srv)
		if err != nil {
			return err
		}
		ag.Start()
		hs := &http.Server{Handler: ag.Handler()}
		go hs.Serve(lns[i])
		nodes[i] = &benchNode{srv: srv, agent: ag, hs: hs, ln: lns[i]}
	}
	defer func() {
		for _, nd := range nodes {
			nd.hs.Close()
			_ = nd.agent.Shutdown(context.Background())
			_ = nd.srv.Shutdown(context.Background())
		}
	}()

	post := func(url, ctype string, body []byte) error {
		resp, err := http.Post(url, ctype, bytes.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
		}
		return nil
	}
	get := func(url string) error {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
		}
		return nil
	}

	if err := post(urls[0]+"/v1/sketches", "application/json",
		[]byte(`{"name":"bench","kind":"weighted","bins":1024,"seed":20180614}`)); err != nil {
		return err
	}

	// Pre-render batch bodies so the driver measures the fan, not fmt.
	bodies := make([][]byte, batches)
	for b := range bodies {
		var buf strings.Builder
		for i := 0; i < rowsPerBatch; i++ {
			fmt.Fprintf(&buf, "item-%05d\t%d\n", (b*rowsPerBatch+i)%2000, 1+i%5)
		}
		bodies[b] = []byte(buf.String())
	}
	totalRows := batches * rowsPerBatch
	fmt.Fprintf(w, "# cluster: 3 nodes rf=3, %d sync batches × %d rows fanned by partition, then %d reps/query\n",
		batches, rowsPerBatch, queryReps)

	ingestStart := time.Now()
	for b, body := range bodies {
		if err := post(urls[b%n]+"/v1/sketches/bench/ingest?sync=1", "text/plain", body); err != nil {
			return err
		}
	}
	ingestD := time.Since(ingestStart)
	fmt.Fprintf(w, "%-34s %14v %14.0f rows/s\n", "sync fan ingest", ingestD,
		float64(totalRows)/ingestD.Seconds())
	rec.set("ingest_rows", totalRows)
	rec.set("ingest_total", ingestD)
	rec.set("ingest_rows_per_second", float64(totalRows)/ingestD.Seconds())

	measure := func(label, key string, run func() error) error {
		if err := run(); err != nil { // warm
			return err
		}
		lat := make([]time.Duration, queryReps)
		for i := range lat {
			t0 := time.Now()
			if err := run(); err != nil {
				return err
			}
			lat[i] = time.Since(t0)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Fprintf(w, "%-34s %14v %14v %14v\n", label,
			percentile(lat, 0.50), percentile(lat, 0.99), lat[len(lat)-1])
		rec.set(key+"_p50", percentile(lat, 0.50))
		rec.set(key+"_p99", percentile(lat, 0.99))
		return nil
	}

	fmt.Fprintf(w, "%-34s %14s %14s %14s\n", "read (scatter-gather)", "p50", "p99", "max")
	if err := measure("topk k=10, all owners up", "topk_healthy",
		func() error { return get(urls[0] + "/v1/sketches/bench/topk?k=10") }); err != nil {
		return err
	}

	// Anti-entropy copies, then stop one node: the degraded path hedges
	// the dead owner's partial from a co-owner copy.
	for _, u := range urls {
		if err := post(u+"/v1/cluster/antientropy", "", nil); err != nil {
			return err
		}
	}
	nodes[2].hs.Close()
	if err := measure("topk k=10, one node down (hedged)", "topk_degraded",
		func() error { return get(urls[0] + "/v1/sketches/bench/topk?k=10") }); err != nil {
		return err
	}
	return nil
}
