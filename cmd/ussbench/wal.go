package main

// -bench wal: the durability subsystem's two costs — what an ingest
// batch pays to be logged (per fsync policy) and what a restart pays to
// replay the log back into sketches (per log size).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/store"
)

// perfWAL drives append throughput across the fsync policies and
// recovery (checkpoint-free Rebuild) across log sizes.
func perfWAL(w io.Writer, rec *benchRecorder, scale float64) error {
	rows := int(256 * scale)
	if rows < 8 {
		rows = 8
	}
	items := make([]string, rows)
	for i := range items {
		items[i] = fmt.Sprintf("item-%06d", i%997)
	}

	fmt.Fprintf(w, "# wal: %d-row ingest batches, append per policy then recovery vs log size\n", rows)
	fmt.Fprintf(w, "%-34s %14s %14s\n", "append policy", "per batch", "rows/s")
	for _, policy := range []store.SyncPolicy{store.SyncNever, store.SyncInterval, store.SyncAlways} {
		dir, err := os.MkdirTemp("", "ussbench-wal")
		if err != nil {
			return err
		}
		st, err := store.Open(store.Options{Dir: dir, Sync: policy})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		per := timeOp(func() {
			if _, err := st.AppendIngest("bench", items, nil, nil); err != nil {
				panic(err)
			}
		})
		st.Close()
		os.RemoveAll(dir)
		fmt.Fprintf(w, "%-34s %14v %14.0f\n", "fsync="+policy.String(), per,
			float64(rows)/per.Seconds())
		rec.set("append_"+policy.String(), per)
		rec.set("append_"+policy.String()+"_rows_per_second", float64(rows)/per.Seconds())
	}

	fmt.Fprintf(w, "\n%-34s %14s %14s\n", "recovery (replay, no checkpoint)", "total", "rows/s")
	for _, batches := range []int{32, 256, 1024} {
		dir, err := os.MkdirTemp("", "ussbench-wal")
		if err != nil {
			return err
		}
		st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		spec, _ := json.Marshal(store.SketchSpec{Name: "bench", Kind: "unit", Bins: 4096, Seed: 7})
		if _, err := st.AppendCreate(spec); err != nil {
			os.RemoveAll(dir)
			return err
		}
		for i := 0; i < batches; i++ {
			if _, err := st.AppendIngest("bench", items, nil, nil); err != nil {
				os.RemoveAll(dir)
				return err
			}
		}
		st.Close()
		total := rows * batches
		start := time.Now()
		res, err := store.Rebuild(dir)
		elapsed := time.Since(start)
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
		if res.Sketches["bench"].Rows != int64(total) {
			return fmt.Errorf("wal bench: replay found %d rows, want %d", res.Sketches["bench"].Rows, total)
		}
		fmt.Fprintf(w, "%-34s %14v %14.0f\n", fmt.Sprintf("%7d rows (%d batches)", total, batches),
			elapsed, float64(total)/elapsed.Seconds())
		rec.set(fmt.Sprintf("recovery_%d_batches", batches), elapsed)
		rec.set(fmt.Sprintf("recovery_%d_batches_rows_per_second", batches), float64(total)/elapsed.Seconds())
	}
	return nil
}
