package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePorts reserves n distinct loopback ports: cluster nodes need
// their peer URLs fixed before any of them starts listening.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	lns := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

// startClusterNode launches one ussd cluster node and waits for it to
// answer /healthz on its fixed address.
func startClusterNode(t *testing.T, bin string, env []string, addr string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	if len(env) > 0 {
		cmd.Env = append(cmd.Environ(), env...)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	for i := 0; i < 250; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			return cmd
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("cluster node at %s never became healthy", base)
	return nil
}

// clusterTopK fetches a cluster top-k without asserting on the status.
func clusterTopK(t *testing.T, base, name string, k int) (int, []struct {
	Item  string  `json:"item"`
	Count float64 `json:"count"`
}, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/sketches/%s/topk?k=%d", base, name, k))
	if err != nil {
		t.Fatalf("topk: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		Items []struct {
			Item  string  `json:"item"`
			Count float64 `json:"count"`
		} `json:"items"`
		Degraded bool `json:"degraded"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out.Items, out.Degraded
}

// sortBins orders a top-k deterministically for comparison: count
// descending, item ascending on ties.
func sortBins(bins []struct {
	Item  string  `json:"item"`
	Count float64 `json:"count"`
}) {
	sort.Slice(bins, func(i, j int) bool {
		if bins[i].Count != bins[j].Count {
			return bins[i].Count > bins[j].Count
		}
		return bins[i].Item < bins[j].Item
	})
}

// TestClusterKillNodeE2E is the cluster acceptance scenario against
// real processes with cluster faultpoints armed: a 3-node cluster takes
// acknowledged traffic through fan drops and slow peers; one node is
// SIGKILLed mid-life and its disk wiped; while it is down every read
// answers 200 with degraded=true (never a 5xx); after restart, boot
// repair pulls its partitions back from co-owner copies and the cluster
// top-k must match the exact single-node merge of everything ever
// acknowledged, item for item.
func TestClusterKillNodeE2E(t *testing.T) {
	bin := buildUssd(t)
	ports := freePorts(t, 3)
	addrs := make([]string, 3)
	urls := make([]string, 3)
	dirs := make([]string, 3)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", ports[i])
		urls[i] = "http://" + addrs[i]
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("node%d", i))
	}
	peers := strings.Join(urls, ",")
	nodeArgs := func(i int) []string {
		return []string{
			"-data-dir", dirs[i], "-fsync", "always", "-checkpoint-interval", "0",
			"-cluster", "-cluster-self", urls[i], "-peers", peers,
			"-replication-factor", "3", "-read-quorum", "2",
			"-anti-entropy-interval", "300ms", "-hedge-delay", "30ms",
		}
	}
	// Fan drops and slow peers armed on every node: retries and hedging
	// must absorb both without a single failed acknowledgement.
	faults := "USS_FAULTPOINTS=cluster.drop-fan:0.1,cluster.slow-peer:0.05"
	nodes := make([]*exec.Cmd, 3)
	for i := range nodes {
		nodes[i] = startClusterNode(t, bin, []string{faults}, addrs[i], nodeArgs(i)...)
	}
	defer func() {
		for _, n := range nodes {
			if n != nil && n.Process != nil {
				n.Process.Signal(syscall.SIGTERM)
				n.Wait()
			}
		}
	}()

	mustPost(t, urls[0]+"/v1/sketches", "application/json",
		[]byte(`{"name":"flows","kind":"weighted","bins":512,"seed":33}`))

	// Phase 1: acknowledged traffic, spread across all three proxies.
	// Every row is tracked in truth — capacity far exceeds the distinct
	// items, so the exact single-node merge is the per-item sum.
	truth := make(map[string]float64)
	ingest := func(node, rows, salt int) {
		var buf strings.Builder
		for i := 0; i < rows; i++ {
			item := fmt.Sprintf("flow-%02d", (i+salt)%37)
			w := float64(1 + (i+salt)%9)
			truth[item] += w
			fmt.Fprintf(&buf, "%s\t%g\n", item, w)
		}
		mustPost(t, urls[node]+"/v1/sketches/flows/ingest?sync=1", "text/plain", []byte(buf.String()))
	}
	for b := 0; b < 9; b++ {
		ingest(b%3, 120, b*1000)
	}

	// Anti-entropy pass on every node so each co-owner holds copies of
	// the others' partials before the kill.
	for _, u := range urls {
		mustPost(t, u+"/v1/cluster/antientropy", "", nil)
	}

	// SIGKILL node 2 — no drain, no checkpoint — and wipe its disk: the
	// rejoin below must rebuild purely from its co-owners' copies.
	if err := nodes[2].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	nodes[2].Wait()
	nodes[2] = nil
	if err := os.RemoveAll(dirs[2]); err != nil {
		t.Fatal(err)
	}

	// While the node is down: reads answer, degraded, never 5xx — and
	// thanks to the copies they are still the exact answer.
	sawDegraded := false
	for round := 0; round < 4; round++ {
		for _, u := range urls[:2] {
			code, items, degraded := clusterTopK(t, u, "flows", 50)
			if code >= 500 {
				t.Fatalf("read via %s answered %d with a node down", u, code)
			}
			if code != http.StatusOK {
				t.Fatalf("read via %s: status %d", u, code)
			}
			if degraded {
				sawDegraded = true
			}
			checkTruth(t, truth, items)
		}
	}
	if !sawDegraded {
		t.Fatal("no read reported degraded while a node was down")
	}

	// Phase 2: more acknowledged traffic with the node still dead — its
	// partitions fail over to the surviving owners.
	for b := 0; b < 6; b++ {
		ingest(b%2, 120, 50000+b*1000)
	}

	// Restart the wiped node: boot repair pulls its partitions from the
	// co-owners' copies before it serves, anti-entropy keeps converging.
	nodes[2] = startClusterNode(t, bin, []string{faults}, addrs[2], nodeArgs(2)...)

	// After rejoin the cluster answer must converge to the exact
	// single-node merge of every acknowledged row, from every node, with
	// no degradation.
	waitFor(t, "post-rejoin convergence", 20*time.Second, func() bool {
		for _, u := range urls {
			code, items, degraded := clusterTopK(t, u, "flows", 50)
			if code != http.StatusOK || degraded || !truthMatches(truth, items) {
				return false
			}
		}
		return true
	})
	for _, u := range urls {
		code, items, degraded := clusterTopK(t, u, "flows", 50)
		if code != http.StatusOK || degraded {
			t.Fatalf("final read via %s: status %d degraded %v", u, code, degraded)
		}
		checkTruth(t, truth, items)
	}
}

// truthMatches reports whether a served top-k equals the exact merge.
func truthMatches(truth map[string]float64, items []struct {
	Item  string  `json:"item"`
	Count float64 `json:"count"`
}) bool {
	if len(items) != len(truth) {
		return false
	}
	for _, it := range items {
		if truth[it.Item] != it.Count {
			return false
		}
	}
	return true
}

// checkTruth asserts a served top-k equals the exact single-node merge
// item for item (sorted identically first — ties carry no canonical
// order across nodes).
func checkTruth(t *testing.T, truth map[string]float64, items []struct {
	Item  string  `json:"item"`
	Count float64 `json:"count"`
}) {
	t.Helper()
	want := make([]struct {
		Item  string  `json:"item"`
		Count float64 `json:"count"`
	}, 0, len(truth))
	for item, c := range truth {
		want = append(want, struct {
			Item  string  `json:"item"`
			Count float64 `json:"count"`
		}{item, c})
	}
	sortBins(want)
	got := append(items[:0:0], items...)
	sortBins(got)
	if len(got) != len(want) {
		t.Fatalf("top-k has %d items, exact merge %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("top-k[%d]: cluster (%q, %v) != exact merge (%q, %v)",
				i, got[i].Item, got[i].Count, want[i].Item, want[i].Count)
		}
	}
}
