// Command ussd serves Unbiased Space Saving sketches over HTTP: a
// multi-tenant registry of named sketches (unit, weighted, sharded,
// rollup) with batched async ingest, wire-format-v2 snapshot push/pull
// for distributed aggregation, and query endpoints riding the cached
// read paths. See internal/server for the endpoint table and DESIGN.md
// §10 for the architecture.
//
// With -data-dir the service is durable: every create, delete, ingest
// batch and pushed snapshot is written to a segmented write-ahead log
// before it is acknowledged, the live sketches are checkpointed on an
// interval (and on drain), and a restart — graceful or kill -9 —
// recovers the latest checkpoint plus the log tail. See internal/store
// and DESIGN.md §11.
//
// Usage:
//
//	ussd -addr :8632
//	ussd -addr :8632 -create '{"name":"clicks","kind":"sharded","bins":4096,"shards":8}'
//	ussd -addr :8632 -data-dir /var/lib/ussd -fsync always -checkpoint-interval 1m
//
// A quick session against a running server:
//
//	curl -X POST localhost:8632/v1/sketches -d '{"name":"clicks","kind":"sharded","bins":1024}'
//	printf 'country=us|ad=1\ncountry=de|ad=2\n' | curl --data-binary @- localhost:8632/v1/sketches/clicks/ingest
//	curl localhost:8632/v1/sketches/clicks/topk?k=5
//
// With -follow the server boots as a replication follower: it catches
// up from the primary's newest checkpoint, tails its WAL stream, applies
// every record through the same paths recovery uses, and — with
// -auto-promote — promotes itself to primary when the primary has been
// unreachable past -heartbeat-timeout. A former primary restarted with
// -follow reconciles the acknowledged-but-unreplicated tail of its old
// timeline by merging it into the new primary. See DESIGN.md §12.
//
//	ussd -addr :8633 -data-dir /var/lib/ussd-b -follow http://primary:8632 -auto-promote
//
// With -cluster the node joins a consistent-hash cluster instead: every
// node serves the full public API, routes each ingested row to its
// partition's owner, answers reads by scatter-gather merge across the
// owner set (degraded, never 5xx, while a quorum answers), and runs
// periodic snapshot anti-entropy so a rejoining node converges. A node
// restarted after losing its disk pulls its partitions back from its
// co-owners' copies before serving. See internal/cluster and DESIGN.md
// §13.
//
//	ussd -addr :8632 -data-dir /var/lib/ussd-a -cluster \
//	  -cluster-self http://a:8632 -peers http://a:8632,http://b:8633,http://c:8634
//
// ussd shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// finish, every ingest batch acknowledged with 202 is applied, and a
// durable server takes a final checkpoint before exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/store"
)

// multiFlag collects repeated -create flags.
type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint(*m) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// fatal logs at error level and exits — slog's replacement for
// log.Fatalf in this command.
func fatal(l *slog.Logger, msg string, args ...any) {
	l.Error(msg, args...)
	os.Exit(1)
}

// serveDebug mounts net/http/pprof on its own listener so profiling
// never rides the public port (and can be firewalled separately).
func serveDebug(addr string, l *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(l, "debug listener failed", "addr", addr, "err", err)
	}
	l.Info("pprof listening", "addr", ln.Addr().String())
	go func() {
		hs := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			l.Error("debug listener failed", "err", err)
		}
	}()
}

func main() {
	var (
		addr    = flag.String("addr", ":8632", "listen address")
		workers = flag.Int("ingest-workers", 4, "async ingest worker goroutines")
		queue   = flag.Int("queue-depth", 256, "async ingest queue depth (batches)")
		maxBody = flag.Int64("max-body-bytes", 32<<20, "request body size limit")
		drain   = flag.Duration("shutdown-timeout", 10*time.Second, "connection drain deadline on shutdown")
		dataDir = flag.String("data-dir", "", "durability directory: WAL + checkpoints (empty = in-memory only)")
		fsync   = flag.String("fsync", "always", "WAL fsync policy: always | interval | never")
		fsEvery = flag.Duration("fsync-every", 100*time.Millisecond, "with -fsync interval: flush period (one fsync per period covers every append in it)")
		grpCmt  = flag.Bool("group-commit", false, "with -fsync interval: acknowledge writes only after a covering fsync — SyncAlways durability at one fsync per -fsync-every")
		ckptInt = flag.Duration("checkpoint-interval", time.Minute, "periodic checkpoint interval (0 disables; drain always checkpoints)")
		reqTO   = flag.Duration("request-timeout", time.Minute, "per-request deadline on every handler (0 = default, negative disables)")
		follow  = flag.String("follow", "", "boot as a replication follower of this primary URL (requires -data-dir)")
		autoPro = flag.Bool("auto-promote", false, "with -follow: promote to primary when the primary is unreachable past -heartbeat-timeout")
		hbTO    = flag.Duration("heartbeat-timeout", 10*time.Second, "with -follow: primary-unreachable window before auto-promotion")
		clMode  = flag.Bool("cluster", false, "join a consistent-hash cluster (requires -cluster-self and -peers)")
		clSelf  = flag.String("cluster-self", "", "with -cluster: this node's base URL exactly as listed in -peers")
		clPeers = flag.String("peers", "", "with -cluster: comma-separated base URLs of every cluster member, including this node")
		clRF    = flag.Int("replication-factor", 2, "with -cluster: owner-set size per sketch")
		clRQ    = flag.Int("read-quorum", 0, "with -cluster: owner partials needed to answer a read (0 = majority of the replication factor)")
		clHedge = flag.Duration("hedge-delay", 75*time.Millisecond, "with -cluster: wait on an owner before racing a co-owner copy")
		clAE    = flag.Duration("anti-entropy-interval", 5*time.Second, "with -cluster: periodic anti-entropy interval (0 = manual only)")
		clVN    = flag.Int("vnodes", 64, "with -cluster: virtual ring points per node")
		inRate  = flag.Float64("ingest-rate-rows", 0, "per-sketch ingest rate limit in rows/second (0 = unlimited)")
		inBurst = flag.Float64("ingest-burst-rows", 0, "per-sketch ingest burst capacity in rows (0 = 2× -ingest-rate-rows)")
		maxInfl = flag.Int64("max-inflight-bytes", 0, "global in-flight mutation-body budget; breaches shed 503 + Retry-After (0 = unlimited)")
		memSoft = flag.Int64("memory-soft-bytes", 0, "resident sketch-memory watermark: above it idle sketches demote to cold blobs (0 = never; needs -data-dir)")
		coldAft = flag.Duration("cold-after", 5*time.Minute, "idle time before a sketch is a demotion candidate (keep above -request-timeout)")
		logFmt  = flag.String("log-format", "text", "structured log format: text | json")
		logLvl  = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
		dbgAddr = flag.String("debug-addr", "", "separate listener for /debug/pprof/* (empty = profiling disabled)")
		slowReq = flag.Duration("slow-request", 0, "log a warning for requests slower than this (0 = disabled)")
		creates multiFlag
	)
	flag.Var(&creates, "create", "pre-create a sketch from a SketchConfig JSON object (repeatable)")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logFmt, *logLvl)
	l := logger.With("component", "ussd")

	if *follow != "" && *dataDir == "" {
		fatal(l, "-follow requires -data-dir (the follower keeps a full replica of the primary's log)")
	}
	if *clMode && *follow != "" {
		fatal(l, "-cluster and -follow are mutually exclusive (a cluster node converges by anti-entropy, not WAL streaming)")
	}
	if *clMode && (*clSelf == "" || *clPeers == "") {
		fatal(l, "-cluster requires -cluster-self and -peers")
	}
	if *dbgAddr != "" {
		serveDebug(*dbgAddr, l)
	}

	node := *addr
	if *clMode {
		node = *clSelf
	}
	s := server.New(server.Config{
		Addr:             *addr,
		Node:             node,
		IngestWorkers:    *workers,
		QueueDepth:       *queue,
		MaxBodyBytes:     *maxBody,
		RequestTimeout:   *reqTO,
		IngestRateRows:   *inRate,
		IngestBurstRows:  *inBurst,
		MaxInflightBytes: *maxInfl,
		MemorySoftBytes:  *memSoft,
		ColdAfter:        *coldAft,
		Log:              logger,
		SlowRequest:      *slowReq,
	})

	if *follow != "" {
		// Catch up / reconcile the data dir against the primary before the
		// store opens, so recovery below replays a log the stream can
		// extend.
		if err := replica.PrepareDataDir(context.Background(), replica.Options{
			Primary: *follow,
			Server:  s,
			DataDir: *dataDir,
			Log:     logger,
		}); err != nil {
			fatal(l, "prepare follower data dir failed", "err", err)
		}
		s.SetRole(server.RoleFollower)
		s.SetReady(false)
	}

	if *dataDir != "" {
		policy, err := store.ParseSyncPolicy(*fsync)
		if err != nil {
			fatal(l, "bad -fsync flag", "err", err)
		}
		if *grpCmt && policy != store.SyncInterval {
			fatal(l, "-group-commit requires -fsync interval (always already acks after fsync; never has nothing to wait for)")
		}
		rebuilt, err := store.Rebuild(*dataDir)
		if err != nil {
			fatal(l, "recovery failed", "dir", *dataDir, "err", err)
		}
		st, err := store.Open(store.Options{Dir: *dataDir, Sync: policy, SyncEvery: *fsEvery, GroupCommit: *grpCmt, Log: logger})
		if err != nil {
			fatal(l, "open store failed", "err", err)
		}
		if err := s.AttachStore(st, rebuilt, *ckptInt); err != nil {
			fatal(l, "attach store failed", "err", err)
		}
		l.Info("durable mode",
			"dir", *dataDir, "fsync", policy.String(), "sketches", len(rebuilt.Sketches),
			"checkpoint_gen", rebuilt.Stats.CheckpointGen, "log_records", rebuilt.Stats.Applied,
			"last_lsn", rebuilt.Stats.LastLSN)
		for _, warn := range rebuilt.Stats.Warnings {
			l.Warn("recovery warning", "detail", warn)
		}
		if rebuilt.Stats.TornTail {
			l.Warn("recovery truncated a torn record at the log tail (crash artifact)")
		}
	}

	if *follow != "" && len(creates) > 0 {
		l.Warn("ignoring -create flags on a follower (sketches replicate from the primary)")
		creates = nil
	}
	for _, spec := range creates {
		var cfg server.SketchConfig
		if err := json.Unmarshal([]byte(spec), &cfg); err != nil {
			fatal(l, "bad -create flag", "spec", spec, "err", err)
		}
		switch err := s.CreateSketch(cfg); {
		case err == nil:
			l.Info("created sketch", "name", cfg.Name, "kind", string(cfg.Kind))
		case errors.Is(err, server.ErrExists):
			l.Info("sketch already exists (recovered); keeping its state", "name", cfg.Name)
		default:
			fatal(l, "-create failed", "err", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(l, "listen failed", "addr", *addr, "err", err)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)

	var agent *cluster.Agent
	var clusterHS *http.Server
	if *clMode {
		agent, err = cluster.New(cluster.Config{
			Self:                *clSelf,
			Peers:               strings.Split(*clPeers, ","),
			ReplicationFactor:   *clRF,
			ReadQuorum:          *clRQ,
			VirtualNodes:        *clVN,
			HedgeDelay:          *clHedge,
			AntiEntropyInterval: *clAE,
			MaxBodyBytes:        *maxBody,
		}, s)
		if err != nil {
			fatal(l, "cluster setup failed", "err", err)
		}
		// Pull this node's partitions back from co-owner copies before
		// serving: a node that lost its disk converges here, a node with
		// intact state is a no-op (its digests already cover the copies).
		rs := agent.BootRepair(context.Background())
		l.Info("cluster boot repair",
			"restored", rs.Restored, "created", rs.Created, "errors", len(rs.Errors))
		for _, e := range rs.Errors {
			l.Warn("boot repair error", "detail", e)
		}
		agent.Start()
		clusterHS = &http.Server{Handler: agent.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			err := clusterHS.Serve(ln)
			if err == http.ErrServerClosed {
				err = nil
			}
			errc <- err
		}()
		l.Info("cluster node listening",
			"self", *clSelf, "peers", len(agent.Peers()), "rf", *clRF,
			"anti_entropy", clAE.String(), "addr", ln.Addr().String())
	} else {
		go func() { errc <- s.Serve(ln) }()
		l.Info("listening", "addr", ln.Addr().String())
	}

	var fol *replica.Follower
	if *follow != "" {
		fol, err = replica.Start(replica.Options{
			Primary:          *follow,
			Server:           s,
			DataDir:          *dataDir,
			AutoPromote:      *autoPro,
			HeartbeatTimeout: *hbTO,
			Log:              logger,
		})
		if err != nil {
			fatal(l, "start follower failed", "err", err)
		}
		l.Info("following primary", "primary", *follow, "auto_promote", *autoPro, "heartbeat_timeout", hbTO.String())
	}

	select {
	case sig := <-stop:
		l.Info("signal received, draining", "signal", sig.String())
		if fol != nil {
			fol.Stop()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if clusterHS != nil {
			if err := clusterHS.Shutdown(ctx); err != nil {
				l.Warn("cluster listener shutdown", "err", err)
			}
			if err := agent.Shutdown(ctx); err != nil {
				l.Warn("cluster agent shutdown", "err", err)
			}
		}
		if err := s.Shutdown(ctx); err != nil {
			fatal(l, "shutdown failed", "err", err)
		}
		l.Info("drained, bye")
	case err := <-errc:
		if err != nil {
			fatal(l, "serve failed", "err", err)
		}
	}
}
