// Command ussd serves Unbiased Space Saving sketches over HTTP: a
// multi-tenant registry of named sketches (unit, weighted, sharded,
// rollup) with batched async ingest, wire-format-v2 snapshot push/pull
// for distributed aggregation, and query endpoints riding the cached
// read paths. See internal/server for the endpoint table and DESIGN.md
// §10 for the architecture.
//
// Usage:
//
//	ussd -addr :8632
//	ussd -addr :8632 -create '{"name":"clicks","kind":"sharded","bins":4096,"shards":8}'
//
// A quick session against a running server:
//
//	curl -X POST localhost:8632/v1/sketches -d '{"name":"clicks","kind":"sharded","bins":1024}'
//	printf 'country=us|ad=1\ncountry=de|ad=2\n' | curl --data-binary @- localhost:8632/v1/sketches/clicks/ingest
//	curl localhost:8632/v1/sketches/clicks/topk?k=5
//
// ussd shuts down gracefully on SIGINT/SIGTERM: in-flight requests finish
// and every ingest batch acknowledged with 202 is applied before exit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

// multiFlag collects repeated -create flags.
type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint(*m) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var (
		addr    = flag.String("addr", ":8632", "listen address")
		workers = flag.Int("ingest-workers", 4, "async ingest worker goroutines")
		queue   = flag.Int("queue-depth", 256, "async ingest queue depth (batches)")
		maxBody = flag.Int64("max-body-bytes", 32<<20, "request body size limit")
		drain   = flag.Duration("shutdown-timeout", 10*time.Second, "connection drain deadline on shutdown")
		creates multiFlag
	)
	flag.Var(&creates, "create", "pre-create a sketch from a SketchConfig JSON object (repeatable)")
	flag.Parse()

	s := server.New(server.Config{
		Addr:          *addr,
		IngestWorkers: *workers,
		QueueDepth:    *queue,
		MaxBodyBytes:  *maxBody,
	})
	for _, spec := range creates {
		var cfg server.SketchConfig
		if err := json.Unmarshal([]byte(spec), &cfg); err != nil {
			log.Fatalf("ussd: -create %q: %v", spec, err)
		}
		if _, err := s.Registry().Create(cfg); err != nil {
			log.Fatalf("ussd: -create: %v", err)
		}
		log.Printf("ussd: created sketch %q (%s)", cfg.Name, cfg.Kind)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	log.Printf("ussd: listening on %s", *addr)

	select {
	case sig := <-stop:
		log.Printf("ussd: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Fatalf("ussd: shutdown: %v", err)
		}
		log.Printf("ussd: drained, bye")
	case err := <-errc:
		if err != nil {
			log.Fatalf("ussd: %v", err)
		}
	}
}
