package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	uss "repro"
	"repro/internal/server"
	"repro/internal/store"
)

// startServer runs a Server on a loopback listener and returns its base
// URL, shutting everything down with the test.
func startServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	s := server.New(server.Config{IngestWorkers: 2, QueueDepth: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s, "http://" + ln.Addr().String()
}

func mustPost(t *testing.T, url, contentType string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	return data
}

func mustGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// agentStream builds one agent's row stream: a skewed draw over a window
// of the shared item universe, so the two agents overlap on part of it.
func agentStream(seed int64, lo, hi int, rows int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, rows)
	for i := range out {
		// Quadratic skew keeps a heavy head without needing Zipf state.
		span := hi - lo
		v := rng.Intn(span) * rng.Intn(span) / span
		out[i] = fmt.Sprintf("item-%04d", lo+v)
	}
	return out
}

// TestEndToEndPushMergeTopK is the acceptance scenario: two simulated
// agents sketch disjoint shards of a stream locally, ship wire-v2
// snapshots to ussd, the server merges them with MergeBins, and a top-k
// query over HTTP matches the same merge done in-process bit-for-bit
// (the accumulator is sized so the merge is the exact item-wise sum,
// which draws no randomness).
func TestEndToEndPushMergeTopK(t *testing.T) {
	_, base := startServer(t)

	const m = 2048 // accumulator capacity: > total agent bins, merge stays exact
	mustPost(t, base+"/v1/sketches", "application/json",
		[]byte(`{"name":"agg","kind":"weighted","bins":2048,"seed":5}`))

	// Two agents over overlapping item ranges, each small enough that its
	// sketch tracks every item exactly.
	streams := [][]string{
		agentStream(101, 0, 400, 30000),
		agentStream(202, 250, 650, 30000),
	}
	blobs := make([][]byte, len(streams))
	for i, rows := range streams {
		sk := uss.New(512, uss.WithSeed(int64(1000+i)))
		sk.UpdateAll(rows)
		var err error
		blobs[i], err = sk.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		reply := mustPost(t, base+"/v1/sketches/agg/snapshot", "application/octet-stream", blobs[i])
		var pr struct {
			MergedBins int `json:"merged_bins"`
		}
		if err := json.Unmarshal(reply, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.MergedBins == 0 {
			t.Fatalf("push %d merged no bins: %s", i, reply)
		}
	}

	// The same merge in-process: decode both shipped snapshots' bins and
	// reduce them with the same kernel and capacity the server used.
	lists := make([][]uss.Bin, len(blobs))
	for i, blob := range blobs {
		var err error
		lists[i], err = uss.DecodeBins(blob)
		if err != nil {
			t.Fatal(err)
		}
	}
	merged := uss.MergeBins(m, uss.Pairwise, lists...)
	local, err := uss.NewWeightedFromBins(m, merged)
	if err != nil {
		t.Fatal(err)
	}

	const k = 100
	want := local.TopK(k)

	var got struct {
		Items []struct {
			Item  string  `json:"item"`
			Count float64 `json:"count"`
		} `json:"items"`
	}
	if err := json.Unmarshal(mustGet(t, fmt.Sprintf("%s/v1/sketches/agg/topk?k=%d", base, k)), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(want) {
		t.Fatalf("HTTP top-k returned %d items, in-process %d", len(got.Items), len(want))
	}
	for i := range want {
		if got.Items[i].Item != want[i].Item || got.Items[i].Count != want[i].Count {
			t.Fatalf("top-k[%d]: HTTP (%q, %v) != in-process (%q, %v)",
				i, got.Items[i].Item, got.Items[i].Count, want[i].Item, want[i].Count)
		}
	}

	// The served total must be the exact mass of both streams.
	var info struct {
		Total float64 `json:"total"`
	}
	if err := json.Unmarshal(mustGet(t, base+"/v1/sketches/agg"), &info); err != nil {
		t.Fatal(err)
	}
	if wantTotal := float64(len(streams[0]) + len(streams[1])); info.Total != wantTotal {
		t.Fatalf("merged total %v, want %v", info.Total, wantTotal)
	}

	// Pull the merged snapshot back and cross-check a few estimates.
	pulled := mustGet(t, base+"/v1/sketches/agg/snapshot")
	var back uss.WeightedSketch
	if err := back.UnmarshalBinary(pulled); err != nil {
		t.Fatal(err)
	}
	for _, b := range want[:5] {
		if got := back.Estimate(b.Item); got != b.Count {
			t.Fatalf("pulled estimate %q = %v, want %v", b.Item, got, b.Count)
		}
	}
}

// buildUssd compiles the real ussd binary for process-level tests.
func buildUssd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ussd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build ussd: %v\n%s", err, out)
	}
	return bin
}

// startUssd launches the binary and waits for its "listening on" line,
// returning the process and base URL.
func startUssd(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	return startUssdEnv(t, bin, nil, args...)
}

// startUssdEnv is startUssd with extra environment entries (the
// fault-injection tests arm USS_FAULTPOINTS this way).
func startUssdEnv(t *testing.T, bin string, env []string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	if len(env) > 0 {
		cmd.Env = append(cmd.Environ(), env...)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("ussd: %s", line)
			// The slog text handler renders the startup line as
			// `msg=listening ... addr=HOST:PORT` (quoted msg for the
			// cluster variant); grab the addr field.
			if !strings.Contains(line, "msg=listening") &&
				!strings.Contains(line, `msg="cluster node listening"`) {
				continue
			}
			if _, rest, ok := strings.Cut(line, "addr="); ok {
				if f := strings.Fields(rest); len(f) > 0 {
					select {
					case addrc <- strings.Trim(f[0], `"`):
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		base := "http://" + addr
		for i := 0; i < 100; i++ {
			if resp, err := http.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				return cmd, base
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("ussd at %s never became healthy", base)
	case <-time.After(10 * time.Second):
		t.Fatal("ussd never logged its listen address")
	}
	return nil, ""
}

// TestKillDashNineRecovery is the durability acceptance scenario against
// the real binary: sync-ingest rows and push a snapshot with -fsync
// always, SIGKILL the process mid-flight, restart on the same data dir,
// and require the recovered top-k to match both the pre-kill answers and
// an in-process replay of the same WAL records, bit for bit.
func TestKillDashNineRecovery(t *testing.T) {
	bin := buildUssd(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-data-dir", dataDir, "-fsync", "always", "-checkpoint-interval", "0",
		"-create", `{"name":"agg","kind":"weighted","bins":1024,"seed":21}`,
		"-create", `{"name":"clicks","kind":"unit","bins":128,"seed":22}`,
	}
	cmd, base := startUssd(t, bin, args...)

	// Acknowledged synchronous ingest: on disk before the 200.
	var rows strings.Builder
	for i := 0; i < 900; i++ {
		fmt.Fprintf(&rows, "click-%03d\n", i%57)
	}
	mustPost(t, base+"/v1/sketches/clicks/ingest?sync=1", "text/plain", []byte(rows.String()))

	// Acknowledged snapshot push: on disk before the 200.
	agent := uss.New(256, uss.WithSeed(77))
	for i := 0; i < 5000; i++ {
		agent.Update(fmt.Sprintf("pushed-%04d", i%111))
	}
	blob, err := agent.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	mustPost(t, base+"/v1/sketches/agg/snapshot", "application/octet-stream", blob)

	var preKill, preKillAgg struct {
		Items []struct {
			Item  string  `json:"item"`
			Count float64 `json:"count"`
		} `json:"items"`
	}
	if err := json.Unmarshal(mustGet(t, base+"/v1/sketches/clicks/topk?k=20"), &preKill); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mustGet(t, base+"/v1/sketches/agg/topk?k=20"), &preKillAgg); err != nil {
		t.Fatal(err)
	}

	// kill -9: no drain, no checkpoint, no goodbye.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// In-process replay of the same records — the ground truth the
	// recovered server must match bit for bit.
	replay, err := store.Rebuild(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	replayTopK := replay.Sketches["clicks"].Unit.TopK(20)
	replayAggTopK := replay.Sketches["agg"].Weighted.TopK(20)

	cmd2, base2 := startUssd(t, bin, args...)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	var got, gotAgg struct {
		Items []struct {
			Item  string  `json:"item"`
			Count float64 `json:"count"`
		} `json:"items"`
	}
	if err := json.Unmarshal(mustGet(t, base2+"/v1/sketches/clicks/topk?k=20"), &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mustGet(t, base2+"/v1/sketches/agg/topk?k=20"), &gotAgg); err != nil {
		t.Fatal(err)
	}
	check := func(label string, got []struct {
		Item  string  `json:"item"`
		Count float64 `json:"count"`
	}, pre []struct {
		Item  string  `json:"item"`
		Count float64 `json:"count"`
	}, replay []uss.Bin) {
		t.Helper()
		if len(got) != len(pre) || len(got) != len(replay) {
			t.Fatalf("%s: top-k sizes diverge: got %d, pre-kill %d, replay %d", label, len(got), len(pre), len(replay))
		}
		for i := range got {
			if got[i] != pre[i] {
				t.Fatalf("%s[%d]: recovered (%q, %v) != pre-kill (%q, %v)",
					label, i, got[i].Item, got[i].Count, pre[i].Item, pre[i].Count)
			}
			if got[i].Item != replay[i].Item || got[i].Count != replay[i].Count {
				t.Fatalf("%s[%d]: recovered (%q, %v) != in-process replay (%q, %v)",
					label, i, got[i].Item, got[i].Count, replay[i].Item, replay[i].Count)
			}
		}
	}
	check("clicks", got.Items, preKill.Items, replayTopK)
	check("agg", gotAgg.Items, preKillAgg.Items, replayAggTopK)

	// Row counters and totals survived too.
	var info struct {
		Rows  int64   `json:"rows"`
		Total float64 `json:"total"`
	}
	if err := json.Unmarshal(mustGet(t, base2+"/v1/sketches/clicks"), &info); err != nil {
		t.Fatal(err)
	}
	if info.Rows != 900 || info.Total != 900 {
		t.Fatalf("recovered clicks rows=%d total=%v, want 900", info.Rows, info.Total)
	}
}

// TestKillDashNineRecoveryGroupCommit is the same SIGKILL scenario under
// group commit: `-fsync interval -group-commit` amortizes one fsync over
// many appends but still withholds every ack until a covering fsync ran,
// so a kill -9 straight after the last 200 must lose nothing. The
// recovered top-k has to match the pre-kill answers and an in-process
// replay bit for bit — group commit may batch durability, not weaken it.
func TestKillDashNineRecoveryGroupCommit(t *testing.T) {
	bin := buildUssd(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	args := []string{"-data-dir", dataDir,
		"-fsync", "interval", "-fsync-every", "10ms", "-group-commit",
		"-checkpoint-interval", "0",
		"-create", `{"name":"clicks","kind":"unit","bins":128,"seed":31}`,
	}
	cmd, base := startUssd(t, bin, args...)

	// Acknowledged synchronous ingests: each 200 means a shared interval
	// fsync covered the batch before the ack left the server.
	for batch := 0; batch < 8; batch++ {
		var rows strings.Builder
		for i := 0; i < 120; i++ {
			fmt.Fprintf(&rows, "gc-click-%03d\n", (batch*120+i)%43)
		}
		mustPost(t, base+"/v1/sketches/clicks/ingest?sync=1", "text/plain", []byte(rows.String()))
	}

	var preKill struct {
		Items []struct {
			Item  string  `json:"item"`
			Count float64 `json:"count"`
		} `json:"items"`
	}
	if err := json.Unmarshal(mustGet(t, base+"/v1/sketches/clicks/topk?k=20"), &preKill); err != nil {
		t.Fatal(err)
	}

	// kill -9 immediately after the last ack: the group's fsync already
	// happened, so nothing acknowledged may be missing.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	replay, err := store.Rebuild(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	replayTopK := replay.Sketches["clicks"].Unit.TopK(20)

	cmd2, base2 := startUssd(t, bin, args...)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	var got struct {
		Items []struct {
			Item  string  `json:"item"`
			Count float64 `json:"count"`
		} `json:"items"`
	}
	if err := json.Unmarshal(mustGet(t, base2+"/v1/sketches/clicks/topk?k=20"), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(preKill.Items) || len(got.Items) != len(replayTopK) {
		t.Fatalf("top-k sizes diverge: got %d, pre-kill %d, replay %d",
			len(got.Items), len(preKill.Items), len(replayTopK))
	}
	for i := range got.Items {
		if got.Items[i] != preKill.Items[i] {
			t.Fatalf("[%d]: recovered (%q, %v) != pre-kill (%q, %v)",
				i, got.Items[i].Item, got.Items[i].Count, preKill.Items[i].Item, preKill.Items[i].Count)
		}
		if got.Items[i].Item != replayTopK[i].Item || got.Items[i].Count != replayTopK[i].Count {
			t.Fatalf("[%d]: recovered (%q, %v) != in-process replay (%q, %v)",
				i, got.Items[i].Item, got.Items[i].Count, replayTopK[i].Item, replayTopK[i].Count)
		}
	}

	var info struct {
		Rows  int64   `json:"rows"`
		Total float64 `json:"total"`
	}
	if err := json.Unmarshal(mustGet(t, base2+"/v1/sketches/clicks"), &info); err != nil {
		t.Fatal(err)
	}
	if info.Rows != 960 || info.Total != 960 {
		t.Fatalf("recovered clicks rows=%d total=%v, want 960 (8 acked batches × 120)", info.Rows, info.Total)
	}
}

// TestServerSmokeIngestQueryShutdown drives the CLI-shaped path: create a
// sharded sketch, async-ingest text batches, query, then shut down and
// confirm the drain applied everything.
func TestServerSmokeIngestQueryShutdown(t *testing.T) {
	s, base := startServer(t)
	mustPost(t, base+"/v1/sketches", "application/json",
		[]byte(`{"name":"clicks","kind":"sharded","bins":256,"shards":4,"seed":9}`))

	var rows strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&rows, "country=%s|ad=ad-%d\n", []string{"us", "de", "jp", "br"}[i%4], i%50)
	}
	for batch := 0; batch < 5; batch++ {
		mustPost(t, base+"/v1/sketches/clicks/ingest", "text/plain", []byte(rows.String()))
	}
	// Sync barrier: one empty-bodied sync ingest doesn't flush the queue,
	// so issue a sync batch and then poll info until the rows land.
	mustPost(t, base+"/v1/sketches/clicks/ingest?sync=1", "text/plain", []byte("country=us|ad=ad-0\n"))

	deadline := 0
	for {
		var info struct {
			Rows int64 `json:"rows"`
		}
		if err := json.Unmarshal(mustGet(t, base+"/v1/sketches/clicks"), &info); err != nil {
			t.Fatal(err)
		}
		if info.Rows == 10001 {
			break
		}
		if deadline++; deadline > 500 {
			t.Fatalf("ingest never drained: %d rows applied", info.Rows)
		}
	}

	var qr struct {
		Groups []struct {
			KeyString string  `json:"key_string"`
			Value     float64 `json:"value"`
		} `json:"groups"`
	}
	reply := mustPost(t, base+"/v1/sketches/clicks/query", "application/json",
		[]byte(`{"group_by":["country"]}`))
	if err := json.Unmarshal(reply, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Groups) != 4 {
		t.Fatalf("group-by country: %d groups, want 4: %s", len(qr.Groups), reply)
	}
	var total float64
	for _, g := range qr.Groups {
		total += g.Value
	}
	if total != 10001 {
		t.Fatalf("group sums total %v, want 10001", total)
	}

	// Cleanup's Shutdown asserts the drain; double-shutdown must be safe.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
