package main

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/store"
)

// replStatus polls GET /v1/replication/status.
func replStatus(t *testing.T, base string) (role string, ready bool, lag int64) {
	t.Helper()
	var st struct {
		Role    string `json:"role"`
		Ready   bool   `json:"ready"`
		LagLSNs int64  `json:"lag_lsns"`
	}
	if err := json.Unmarshal(mustGet(t, base+"/v1/replication/status"), &st); err != nil {
		t.Fatal(err)
	}
	return st.Role, st.Ready, st.LagLSNs
}

// waitFor polls cond every 20ms until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// topkItems fetches a top-k as decoded items.
func topkItems(t *testing.T, base, name string, k int) []struct {
	Item  string  `json:"item"`
	Count float64 `json:"count"`
} {
	t.Helper()
	var out struct {
		Items []struct {
			Item  string  `json:"item"`
			Count float64 `json:"count"`
		} `json:"items"`
	}
	if err := json.Unmarshal(mustGet(t, fmt.Sprintf("%s/v1/sketches/%s/topk?k=%d", base, name, k)), &out); err != nil {
		t.Fatal(err)
	}
	return out.Items
}

// TestFailoverKillPrimary is the replication acceptance scenario against
// real processes with stream faults armed: a primary takes acknowledged
// traffic while a follower tails its WAL through dropped, duplicated and
// delayed frames; the primary is SIGKILLed; the follower auto-promotes
// and its state must be bit-identical to an in-process replay of its own
// log; the old primary then rejoins as a follower, merging the
// acknowledged-but-unreplicated tail so row totals reconcile exactly.
func TestFailoverKillPrimary(t *testing.T) {
	bin := buildUssd(t)
	primDir := filepath.Join(t.TempDir(), "primary")
	follDir := filepath.Join(t.TempDir(), "follower")

	// Checkpoint interval 0: nothing gets truncated, so the divergence
	// window survives on disk in full and reconciliation is exact.
	primArgs := []string{"-data-dir", primDir, "-fsync", "always", "-checkpoint-interval", "0",
		"-create", `{"name":"clicks","kind":"unit","bins":128,"seed":22}`}
	// Stream faults arm on the serving side: the primary drops,
	// duplicates and delays frames; the follower must detect and recover
	// from all three.
	faults := "USS_FAULTPOINTS=repl.drop-frame:0.1,repl.dup-frame:0.1,repl.delay-frame:0.05"
	prim, primBase := startUssdEnv(t, bin, []string{faults}, primArgs...)
	defer func() {
		prim.Process.Kill()
		prim.Wait()
	}()

	foll, follBase := startUssd(t, bin,
		"-data-dir", follDir, "-fsync", "always", "-checkpoint-interval", "0",
		"-follow", primBase, "-auto-promote", "-heartbeat-timeout", "500ms")
	defer func() {
		foll.Process.Signal(syscall.SIGTERM)
		foll.Wait()
	}()

	// Phase 1: acknowledged traffic while the follower tails through the
	// armed faults.
	var rows strings.Builder
	for i := 0; i < 900; i++ {
		fmt.Fprintf(&rows, "click-%03d\n", i%57)
	}
	mustPost(t, primBase+"/v1/sketches/clicks/ingest?sync=1", "text/plain", []byte(rows.String()))
	waitFor(t, "follower catch-up", 15*time.Second, func() bool {
		role, ready, lag := replStatus(t, follBase)
		return role == "follower" && ready && lag == 0
	})

	// Phase 2: freeze the follower (SIGSTOP), then keep acking batches on
	// the primary — rows only the primary's log knows about — and SIGKILL
	// it. This pins the worst 202/ack window deterministically: the
	// follower must promote without these rows and recover them later
	// from the rejoining primary.
	if err := syscall.Kill(foll.Process.Pid, syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var late strings.Builder
		for j := 0; j < 30; j++ {
			fmt.Fprintf(&late, "late-%02d\n", j%11)
		}
		mustPost(t, primBase+"/v1/sketches/clicks/ingest?sync=1", "text/plain", []byte(late.String()))
	}
	const total = 900 + 10*30

	if err := prim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	prim.Wait()
	if err := syscall.Kill(foll.Process.Pid, syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}

	// The follower must notice the dead primary and promote itself.
	waitFor(t, "auto-promotion", 20*time.Second, func() bool {
		role, ready, _ := replStatus(t, follBase)
		return role == "primary" && ready
	})

	// Bit-identical check: the promoted follower's served top-k against
	// an in-process replay of its own (live, read-only-scanned) log.
	replay, err := store.Rebuild(follDir)
	if err != nil {
		t.Fatal(err)
	}
	replayTopK := replay.Sketches["clicks"].Unit.TopK(70)
	got := topkItems(t, follBase, "clicks", 70)
	if len(got) != len(replayTopK) {
		t.Fatalf("promoted top-k has %d items, replay %d", len(got), len(replayTopK))
	}
	for i := range got {
		if got[i].Item != replayTopK[i].Item || got[i].Count != replayTopK[i].Count {
			t.Fatalf("promoted top-k[%d] (%q, %v) != replay (%q, %v)",
				i, got[i].Item, got[i].Count, replayTopK[i].Item, replayTopK[i].Count)
		}
	}

	// The promoted follower takes writes now.
	mustPost(t, follBase+"/v1/sketches/clicks/ingest?sync=1", "text/plain",
		[]byte(strings.Repeat("fresh-after-failover\n", 40)))

	// The old primary rejoins as a follower of the new one. Its log holds
	// acknowledged records the follower never received; rejoin must merge
	// them, not drop them.
	prim2, prim2Base := startUssd(t, bin, "-data-dir", primDir, "-fsync", "always", "-checkpoint-interval", "0",
		"-follow", follBase, "-heartbeat-timeout", "500ms")
	defer func() {
		prim2.Process.Signal(syscall.SIGTERM)
		prim2.Wait()
	}()
	waitFor(t, "old primary re-sync", 20*time.Second, func() bool {
		role, ready, lag := replStatus(t, prim2Base)
		return role == "follower" && ready && lag == 0
	})

	// Row totals reconcile exactly: everything acked anywhere, once.
	var info struct {
		Total float64 `json:"total"`
	}
	if err := json.Unmarshal(mustGet(t, follBase+"/v1/sketches/clicks"), &info); err != nil {
		t.Fatal(err)
	}
	if want := float64(total + 40); info.Total != want {
		t.Fatalf("new primary total %v after rejoin, want %v", info.Total, want)
	}

	// And both nodes serve the same answers again.
	newPrim := topkItems(t, follBase, "clicks", 70)
	rejoined := topkItems(t, prim2Base, "clicks", 70)
	if len(newPrim) != len(rejoined) {
		t.Fatalf("top-k sizes diverge after rejoin: primary %d, follower %d", len(newPrim), len(rejoined))
	}
	for i := range newPrim {
		if newPrim[i] != rejoined[i] {
			t.Fatalf("top-k[%d] diverges after rejoin: primary (%q, %v), follower (%q, %v)",
				i, newPrim[i].Item, newPrim[i].Count, rejoined[i].Item, rejoined[i].Count)
		}
	}
}
