// Command uss is a streaming sketch tool: it builds Unbiased Space Saving
// sketches from delimited row streams, answers subset-sum and top-k queries
// with confidence intervals, and merges sketch files.
//
// Usage:
//
//	uss build -m 4096 -field 0 -out clicks.sketch  < clicks.tsv
//	uss query -sketch clicks.sketch -top 20
//	uss query -sketch clicks.sketch -item user-42
//	uss query -sketch clicks.sketch -prefix "us-east|" -level 0.95
//	uss merge -m 4096 -out week.sketch day1.sketch day2.sketch ...
//	uss roundtrip -sketch old.sketch -out new.sketch
//	uss wal inspect -dir /var/lib/ussd
//	uss wal replay -dir /var/lib/ussd -top 10
//	uss repl status -url http://127.0.0.1:8632
//	uss repl promote -url http://follower:8633
//	uss cluster status -url http://node-a:8632 -name clicks
//	uss cluster antientropy -url http://node-a:8632
//	uss trace -url http://node-a:8632 -url http://node-b:8632 4bf92f3577b34da6a3ce929d0e0e4736
//	uss top -url http://127.0.0.1:8632 -k 10
//
// Rows are read one per line; -field selects a tab-separated column as the
// item key (-1 uses the whole line).
//
// merge decodes only each input's bin list (no sketch is rebuilt per
// input) and reduces the lists directly. roundtrip inspects a snapshot in
// either wire format (v2 binary or legacy v1 gob), re-encodes it as v2,
// verifies the round trip bin for bin, and optionally writes the upgraded
// snapshot — the migration path for pre-v2 sketch files.
//
// wal debugs a ussd durability directory offline, read-only: inspect
// lists the checkpoint, segment health (torn tails, corruption) and
// records; replay runs the full recovery path — checkpoint restore plus
// log-tail replay — and reports each sketch's recovered state, its top-k,
// and optionally writes recovered snapshots to files.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	uss "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "merge":
		err = runMerge(os.Args[2:])
	case "roundtrip":
		err = runRoundTrip(os.Args[2:])
	case "wal":
		err = runWAL(os.Args[2:])
	case "repl":
		err = runRepl(os.Args[2:])
	case "cluster":
		err = runCluster(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	case "top":
		err = runTop(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uss:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  uss build -m <bins> [-field N] [-seed S] [-deterministic] -out FILE  < rows
  uss query -sketch FILE [-top K] [-item X] [-prefix P] [-contains S] [-level L]
  uss merge -m <bins> [-reduction pairwise|pivotal|misra-gries] -out FILE IN...
  uss roundtrip -sketch FILE [-out FILE]
  uss wal inspect -dir DATADIR [-records]
  uss wal replay -dir DATADIR [-top K] [-out-dir DIR]
  uss repl status [-url URL]
  uss repl promote -url URL
  uss cluster status [-url URL] [-name SKETCH]
  uss cluster antientropy -url URL
  uss trace [-url URL]... [-json] TRACEID
  uss top [-url URL] [-k K]`)
	os.Exit(2)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	m := fs.Int("m", 4096, "number of bins")
	field := fs.Int("field", -1, "tab-separated field to use as item key (-1 = whole line)")
	seed := fs.Int64("seed", 0, "random seed (0 = random)")
	det := fs.Bool("deterministic", false, "use classic (biased) Space Saving")
	out := fs.String("out", "", "output sketch file (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("build: -out is required")
	}
	var opts []uss.Option
	if *seed != 0 {
		opts = append(opts, uss.WithSeed(*seed))
	}
	if *det {
		opts = append(opts, uss.WithDeterministic())
	}
	sk := uss.New(*m, opts...)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rows := int64(0)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		key := line
		if *field >= 0 {
			parts := strings.Split(line, "\t")
			if *field >= len(parts) {
				continue
			}
			key = parts[*field]
		}
		sk.Update(key)
		rows++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("build: reading stdin: %w", err)
	}
	if err := writeSketch(*out, sk); err != nil {
		return err
	}
	fmt.Printf("built sketch: %d rows, %d/%d bins, min count %.0f → %s\n",
		rows, sk.Size(), sk.Capacity(), sk.MinCount(), *out)
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	path := fs.String("sketch", "", "sketch file (required)")
	top := fs.Int("top", 0, "print the top-K items")
	item := fs.String("item", "", "estimate one item's count")
	prefix := fs.String("prefix", "", "subset sum over items with this prefix")
	contains := fs.String("contains", "", "subset sum over items containing this substring")
	level := fs.Float64("level", 0.95, "confidence level for intervals")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("query: -sketch is required")
	}
	sk, err := readSketch(*path)
	if err != nil {
		return err
	}
	fmt.Printf("sketch: %d rows, %d/%d bins, total %.0f, min count %.0f\n",
		sk.Rows(), sk.Size(), sk.Capacity(), sk.Total(), sk.MinCount())

	printEst := func(label string, e uss.Estimate) {
		lo, hi := e.ConfidenceInterval(*level)
		fmt.Printf("%s: %.1f ± %.1f  (%.0f%% CI [%.1f, %.1f], %d matching bins)\n",
			label, e.Value, e.StdErr, *level*100, lo, hi, e.SampleBins)
	}
	ran := false
	if *item != "" {
		printEst("item "+*item, sk.EstimateWithSE(*item))
		ran = true
	}
	if *prefix != "" {
		printEst("prefix "+*prefix, sk.SubsetSum(func(s string) bool { return strings.HasPrefix(s, *prefix) }))
		ran = true
	}
	if *contains != "" {
		printEst("contains "+*contains, sk.SubsetSum(func(s string) bool { return strings.Contains(s, *contains) }))
		ran = true
	}
	if *top > 0 {
		for i, b := range sk.TopK(*top) {
			fmt.Printf("%3d. %-40s %12.1f\n", i+1, b.Item, b.Count)
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("query: give one of -top, -item, -prefix, -contains")
	}
	return nil
}

func runMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	m := fs.Int("m", 4096, "bins in the merged sketch")
	red := fs.String("reduction", "pairwise", "pairwise | pivotal | misra-gries")
	out := fs.String("out", "", "output sketch file (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() == 0 {
		return fmt.Errorf("merge: need -out and at least one input sketch")
	}
	var reduction uss.Reduction
	switch *red {
	case "pairwise":
		reduction = uss.Pairwise
	case "pivotal":
		reduction = uss.Pivotal
	case "misra-gries":
		reduction = uss.MisraGries
	default:
		return fmt.Errorf("merge: unknown reduction %q", *red)
	}
	// Decode each input's bins directly off the wire — no per-input sketch
	// is materialized; the lists feed the reduction as-is.
	lists := make([][]uss.Bin, 0, fs.NArg())
	for _, p := range fs.Args() {
		blob, err := os.ReadFile(p)
		if err != nil {
			return fmt.Errorf("reading %s: %w", p, err)
		}
		bins, err := uss.DecodeBins(blob)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		lists = append(lists, bins)
	}
	bins := uss.MergeBins(*m, reduction, lists...)
	var total float64
	for _, b := range bins {
		total += b.Count
	}
	// The reduced bins ship directly as a weighted snapshot — the whole
	// merge ran without materializing a single sketch.
	blob, err := uss.EncodeBins(*m, bins)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	fmt.Printf("merged %d sketches: %d bins, total %.1f → %s\n", fs.NArg(), len(bins), total, *out)
	return nil
}

func runRoundTrip(args []string) error {
	fs := flag.NewFlagSet("roundtrip", flag.ExitOnError)
	path := fs.String("sketch", "", "sketch file (required)")
	out := fs.String("out", "", "write the re-encoded v2 snapshot here (optional)")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("roundtrip: -sketch is required")
	}
	blob, err := os.ReadFile(*path)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *path, err)
	}
	info, err := uss.InspectSnapshot(blob)
	if err != nil {
		return fmt.Errorf("%s: %w", *path, err)
	}
	kind := "unit"
	if info.Weighted {
		kind = "weighted"
	}
	mode := "unbiased"
	if info.Deterministic {
		mode = "deterministic"
	}
	fmt.Printf("%s: format v%d, %s %s sketch, %d/%d bins, %d rows, %d bytes\n",
		*path, info.Version, mode, kind, info.NumBins, info.Capacity, info.Rows, len(blob))

	// Restore through the full unmarshal path, re-encode as v2, and verify
	// the round trip by comparing decoded bin lists item for item.
	var re []byte
	if info.Weighted {
		var sk uss.WeightedSketch
		if err := sk.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("%s: %w", *path, err)
		}
		if re, err = sk.MarshalBinary(); err != nil {
			return err
		}
	} else {
		var sk uss.Sketch
		if err := sk.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("%s: %w", *path, err)
		}
		if re, err = sk.MarshalBinary(); err != nil {
			return err
		}
	}
	if err := verifySameBins(blob, re); err != nil {
		return fmt.Errorf("roundtrip verification failed: %w", err)
	}
	fmt.Printf("re-encoded v%d: %d bytes (%.2fx input), round trip verified\n",
		2, len(re), float64(len(re))/float64(len(blob)))
	if *out != "" {
		if err := os.WriteFile(*out, re, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

// verifySameBins checks that two snapshots carry the same bins.
func verifySameBins(a, b []byte) error {
	ab, err := uss.DecodeBins(a)
	if err != nil {
		return err
	}
	bb, err := uss.DecodeBins(b)
	if err != nil {
		return err
	}
	if len(ab) != len(bb) {
		return fmt.Errorf("bin counts differ: %d vs %d", len(ab), len(bb))
	}
	canon := func(bins []uss.Bin) {
		sort.Slice(bins, func(i, j int) bool {
			if bins[i].Item != bins[j].Item {
				return bins[i].Item < bins[j].Item
			}
			return bins[i].Count < bins[j].Count
		})
	}
	canon(ab)
	canon(bb)
	for i := range ab {
		if ab[i] != bb[i] {
			return fmt.Errorf("bin %d differs: %+v vs %+v", i, ab[i], bb[i])
		}
	}
	return nil
}

func writeSketch(path string, sk *uss.Sketch) error {
	blob, err := sk.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

func readSketch(path string) (*uss.Sketch, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	var sk uss.Sketch
	if err := sk.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &sk, nil
}
