package main

// uss repl — operator commands against a running ussd's replication
// endpoints: status prints a node's role, timeline and lag; promote
// turns a follower into the primary (supervised failover).

import (
	"context"
	"flag"
	"fmt"
	"time"

	"repro/internal/replica"
)

// runRepl dispatches the repl subcommands.
func runRepl(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("repl: need a subcommand: status or promote")
	}
	switch args[0] {
	case "status":
		return runReplStatus(args[1:])
	case "promote":
		return runReplPromote(args[1:])
	default:
		return fmt.Errorf("repl: unknown subcommand %q (want status or promote)", args[0])
	}
}

func runReplStatus(args []string) error {
	fs := flag.NewFlagSet("repl status", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8632", "ussd base URL")
	timeout := fs.Duration("timeout", 5*time.Second, "request deadline")
	fs.Parse(args)

	cli := replica.NewClient(*url, *timeout)
	st, err := cli.Status(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", *url)
	fmt.Printf("  role        %s\n", st.Role)
	fmt.Printf("  ready       %v\n", st.Ready)
	fmt.Printf("  epoch       %d (promote lsn %d)\n", st.Epoch, st.PromoteLSN)
	if !st.Durable {
		fmt.Printf("  durable     no (in-memory only; replication unavailable)\n")
		return nil
	}
	fmt.Printf("  log         last lsn %d, next %d\n", st.LastLSN, st.NextLSN)
	fmt.Printf("  checkpoint  gen %d\n", st.CheckpointGen)
	if st.Role == "follower" {
		fmt.Printf("  lag         %d lsns, %.3fs\n", st.LagLSNs, st.LagSeconds)
	}
	return nil
}

func runReplPromote(args []string) error {
	fs := flag.NewFlagSet("repl promote", flag.ExitOnError)
	url := fs.String("url", "", "follower base URL (required)")
	timeout := fs.Duration("timeout", 5*time.Second, "request deadline")
	fs.Parse(args)
	if *url == "" {
		return fmt.Errorf("repl promote: -url is required")
	}

	cli := replica.NewClient(*url, *timeout)
	if err := cli.Promote(context.Background()); err != nil {
		return err
	}
	st, err := cli.Status(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("promoted %s: role=%s epoch=%d promote_lsn=%d\n", *url, st.Role, st.Epoch, st.PromoteLSN)
	return nil
}
