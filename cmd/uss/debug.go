package main

// uss trace / uss top — operator views over a running node's
// observability endpoints: trace fetches the spans recorded for one
// trace ID from the node's span ring (/debug/traces) and renders them
// as an indented tree; top prints the node's self-instrumented
// heavy-hitters view (/v1/introspect/hot) — the hottest tenants, item
// keys, and endpoints as estimated by the server's own sketches.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"
)

// traceSpan mirrors one span in the /debug/traces response.
type traceSpan struct {
	Trace      string  `json:"trace"`
	Span       string  `json:"span"`
	Parent     string  `json:"parent"`
	Name       string  `json:"name"`
	Node       string  `json:"node"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Status     string  `json:"status"`
}

// tracePage mirrors the /debug/traces response shape.
type tracePage struct {
	Node  string      `json:"node"`
	Drops uint64      `json:"drops"`
	Spans []traceSpan `json:"spans"`
}

// runTrace implements `uss trace <id>`: fetch the spans for one trace
// from each -url node's ring and render them as a tree rooted at the
// span(s) with no in-ring parent. Multiple -url flags gather one
// trace's spans scattered across a cluster.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	var urls stringList
	fs.Var(&urls, "url", "node base URL (repeatable; default http://127.0.0.1:8632)")
	timeout := fs.Duration("timeout", 5*time.Second, "request deadline")
	raw := fs.Bool("json", false, "dump raw span JSON instead of the tree view")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("trace: need exactly one trace ID (32 hex digits)")
	}
	id := fs.Arg(0)
	if len(urls) == 0 {
		urls = stringList{"http://127.0.0.1:8632"}
	}

	cli := &http.Client{Timeout: *timeout}
	var spans []traceSpan
	var fetchErrs []string
	for _, base := range urls {
		u := strings.TrimSuffix(base, "/") + "/debug/traces?trace=" + url.QueryEscape(id)
		resp, err := cli.Get(u)
		if err != nil {
			fetchErrs = append(fetchErrs, err.Error())
			continue
		}
		var page tracePage
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fetchErrs = append(fetchErrs, fmt.Sprintf("GET %s: status %d", u, resp.StatusCode))
			continue
		}
		if err != nil {
			fetchErrs = append(fetchErrs, err.Error())
			continue
		}
		spans = append(spans, page.Spans...)
	}
	if len(spans) == 0 && len(fetchErrs) > 0 {
		return fmt.Errorf("trace: %s", strings.Join(fetchErrs, "; "))
	}
	for _, e := range fetchErrs {
		fmt.Printf("warning: %s\n", e)
	}
	if len(spans) == 0 {
		fmt.Printf("trace %s: no spans found (ring may have wrapped)\n", id)
		return nil
	}
	if *raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(spans)
	}

	// Dedup (the same node may be queried twice) and index by span ID.
	seen := make(map[string]bool, len(spans))
	byID := make(map[string]traceSpan, len(spans))
	kids := make(map[string][]traceSpan)
	var roots []traceSpan
	uniq := spans[:0]
	for _, sp := range spans {
		if seen[sp.Node+"/"+sp.Span] {
			continue
		}
		seen[sp.Node+"/"+sp.Span] = true
		uniq = append(uniq, sp)
		byID[sp.Span] = sp
	}
	for _, sp := range uniq {
		if sp.Parent != "" {
			if _, ok := byID[sp.Parent]; ok {
				kids[sp.Parent] = append(kids[sp.Parent], sp)
				continue
			}
		}
		roots = append(roots, sp)
	}
	byStart := func(s []traceSpan) {
		sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	}
	byStart(roots)
	for _, c := range kids {
		byStart(c)
	}
	fmt.Printf("trace %s: %d spans\n", spans[0].Trace, len(uniq))
	var walk func(sp traceSpan, depth int)
	walk = func(sp traceSpan, depth int) {
		fmt.Printf("  %s%-*s %9.3fms  %-9s node=%s\n",
			strings.Repeat("  ", depth), 32-2*depth, sp.Name, sp.DurationMS, sp.Status, sp.Node)
		for _, c := range kids[sp.Span] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return nil
}

// hotEntry / hotPage mirror the /v1/introspect/hot response shape.
type hotEntry struct {
	Sketch string  `json:"sketch"`
	Item   string  `json:"item"`
	Count  float64 `json:"count"`
}

type hotPage struct {
	RowsObserved     int64      `json:"rows_observed"`
	RequestsObserved int64      `json:"requests_observed"`
	ItemSampleEvery  int        `json:"item_sample_every"`
	Tenants          []hotEntry `json:"tenants"`
	Items            []hotEntry `json:"items"`
	Requests         []hotEntry `json:"requests"`
}

// runTop implements `uss top`: the node's self-instrumented
// heavy-hitters view, estimated by the same unbiased space-saving
// sketches the server serves to clients.
func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	base := fs.String("url", "http://127.0.0.1:8632", "node base URL")
	k := fs.Int("k", 10, "rows per section")
	timeout := fs.Duration("timeout", 5*time.Second, "request deadline")
	fs.Parse(args)

	u := strings.TrimSuffix(*base, "/") + fmt.Sprintf("/v1/introspect/hot?k=%d", *k)
	cli := &http.Client{Timeout: *timeout}
	resp, err := cli.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", u, resp.StatusCode)
	}
	var page hotPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return err
	}
	fmt.Printf("%s: %d rows, %d requests observed\n", *base, page.RowsObserved, page.RequestsObserved)
	section := func(title string, entries []hotEntry, item bool) {
		if len(entries) == 0 {
			return
		}
		fmt.Printf("  %s\n", title)
		for _, e := range entries {
			label := e.Sketch
			if item && e.Item != "" {
				label = e.Sketch + "/" + e.Item
			}
			fmt.Printf("    %-40s %12.1f\n", label, e.Count)
		}
	}
	section("hot tenants (rows ingested per sketch)", page.Tenants, false)
	if page.ItemSampleEvery > 1 {
		section(fmt.Sprintf("hot items (1-in-%d row sample)", page.ItemSampleEvery), page.Items, true)
	} else {
		section("hot items", page.Items, true)
	}
	section("hot endpoints (requests)", page.Requests, false)
	return nil
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}
