package main

// uss wal — offline, read-only debugging of a ussd durability directory
// (internal/store layout): inspect prints the checkpoint, per-segment
// health and optionally every record; replay runs the real recovery path
// and summarizes (or exports) the recovered sketches.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	uss "repro"
	"repro/internal/store"
)

// runWAL dispatches the wal subcommands.
func runWAL(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("wal: need a subcommand: inspect or replay")
	}
	switch args[0] {
	case "inspect":
		return runWALInspect(args[1:])
	case "replay":
		return runWALReplay(args[1:])
	default:
		return fmt.Errorf("wal: unknown subcommand %q (want inspect or replay)", args[0])
	}
}

func runWALInspect(args []string) error {
	fs := flag.NewFlagSet("wal inspect", flag.ExitOnError)
	dir := fs.String("dir", "", "ussd data directory (required)")
	records := fs.Bool("records", false, "list every log record")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("wal inspect: -dir is required")
	}

	var each func(rec *store.Record)
	if *records {
		each = func(rec *store.Record) {
			switch rec.TypeName() {
			case "ingest":
				fmt.Printf("  lsn %6d  ingest    %-20s %d rows\n", rec.LSN, rec.Name, len(rec.Items))
			case "snapshot":
				fmt.Printf("  lsn %6d  snapshot  %-20s %d bytes (reduction %d)\n", rec.LSN, rec.Name, len(rec.Blob), rec.Reduction)
			case "create":
				fmt.Printf("  lsn %6d  create    %-20s kind=%s bins=%d\n", rec.LSN, rec.Name, rec.Spec.Kind, rec.Spec.Bins)
			default:
				fmt.Printf("  lsn %6d  %-9s %s\n", rec.LSN, rec.TypeName(), rec.Name)
			}
		}
	}
	rep, err := store.Inspect(*dir, each)
	if err != nil {
		return err
	}
	if rep.CheckpointGen == 0 {
		fmt.Printf("%s: no checkpoint\n", *dir)
	} else {
		fmt.Printf("%s: checkpoint gen %d, cutoff lsn %d, %d sketches\n",
			*dir, rep.CheckpointGen, rep.Cutoff, len(rep.Checkpoint))
		for _, cs := range rep.Checkpoint {
			fmt.Printf("  %-20s %-9s lsn %6d  %8d rows  %8d bytes\n", cs.Name, cs.Kind, cs.LSN, cs.Rows, cs.Bytes)
		}
	}
	fmt.Printf("log: %d segments, last lsn %d\n", len(rep.Segments), rep.LastLSN)
	for _, seg := range rep.Segments {
		status := "ok"
		if seg.Torn {
			status = "TORN: " + seg.TornErr
		}
		fmt.Printf("  %-28s lsn %6d..%-6d %5d records %9dB  %s\n",
			filepath.Base(seg.Path), seg.FirstLSN, seg.LastLSN, seg.Records, seg.Size, status)
	}
	return nil
}

func runWALReplay(args []string) error {
	fs := flag.NewFlagSet("wal replay", flag.ExitOnError)
	dir := fs.String("dir", "", "ussd data directory (required)")
	top := fs.Int("top", 0, "print each sketch's top-K after replay")
	outDir := fs.String("out-dir", "", "write recovered snapshots here (one .sketch per sketch)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("wal replay: -dir is required")
	}
	res, err := store.Rebuild(*dir)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("%s: replayed %d records (skipped %d) over checkpoint gen %d; %d sketches, last lsn %d\n",
		*dir, st.Applied, st.Skipped, st.CheckpointGen, len(res.Sketches), st.LastLSN)
	if st.TornTail {
		fmt.Printf("warning: replay stopped at a torn/corrupt record; earlier state was salvaged\n")
	}
	for _, warn := range st.Warnings {
		fmt.Printf("warning: %s\n", warn)
	}

	names := make([]string, 0, len(res.Sketches))
	for name := range res.Sketches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rb := res.Sketches[name]
		fmt.Printf("%-20s %-9s lsn %6d  %8d rows", name, rb.Spec.Kind, rb.LSN, rb.Rows)
		if rb.Pushes > 0 {
			fmt.Printf("  %d pushes", rb.Pushes)
		}
		if rb.Dropped > 0 {
			fmt.Printf("  %d dropped", rb.Dropped)
		}
		fmt.Println()
		if *top > 0 {
			for i, b := range replayTopK(rb, *top) {
				fmt.Printf("  %3d. %-40s %12.1f\n", i+1, b.Item, b.Count)
			}
		}
		if *outDir != "" {
			blob, ok, err := replaySnapshot(rb)
			if err != nil {
				return fmt.Errorf("encode %q: %w", name, err)
			}
			if !ok {
				fmt.Printf("  (rollup state is windowed; not exported as a flat snapshot)\n")
				continue
			}
			path := filepath.Join(*outDir, name+".sketch")
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				return err
			}
			fmt.Printf("  wrote %s (%d bytes)\n", path, len(blob))
		}
	}
	return nil
}

// replayTopK answers top-k for any recovered sketch kind (rollups over
// their full retained range).
func replayTopK(rb *store.RebuiltSketch, k int) []uss.Bin {
	switch {
	case rb.Unit != nil:
		return rb.Unit.TopK(k)
	case rb.Weighted != nil:
		return rb.Weighted.TopK(k)
	case rb.Sharded != nil:
		return rb.Sharded.TopK(k)
	case rb.Rollup != nil:
		if ws := rb.Rollup.Windows(); len(ws) > 0 {
			return rb.Rollup.TopKRange(ws[0], ws[len(ws)-1], k)
		}
	}
	return nil
}

// replaySnapshot encodes a recovered sketch as a standalone wire-v2
// snapshot (merged, for sharded). Rollups report ok=false: their state
// is windowed and has no flat snapshot form.
func replaySnapshot(rb *store.RebuiltSketch) (blob []byte, ok bool, err error) {
	switch {
	case rb.Unit != nil:
		blob, err = rb.Unit.MarshalBinary()
		return blob, true, err
	case rb.Weighted != nil:
		blob, err = rb.Weighted.MarshalBinary()
		return blob, true, err
	case rb.Sharded != nil:
		blob, err = rb.Sharded.Snapshot(0).MarshalBinary()
		return blob, true, err
	}
	return nil, false, nil
}
