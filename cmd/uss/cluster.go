package main

// uss cluster — operator commands against a running cluster node's
// /v1/cluster endpoints: status prints the node's view of the ring
// (peer health, held copies, fan/read counters) and, with -name, a
// sketch's owner set; antientropy triggers an immediate round.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// runCluster dispatches the cluster subcommands.
func runCluster(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("cluster: need a subcommand: status or antientropy")
	}
	switch args[0] {
	case "status":
		return runClusterStatus(args[1:])
	case "antientropy":
		return runClusterAE(args[1:])
	default:
		return fmt.Errorf("cluster: unknown subcommand %q (want status or antientropy)", args[0])
	}
}

// clusterStatus mirrors the /v1/cluster/status response shape.
type clusterStatus struct {
	Self              string            `json:"self"`
	Peers             map[string]string `json:"peers"`
	ReplicationFactor int               `json:"replication_factor"`
	ReadQuorum        int               `json:"read_quorum"`
	Owners            []string          `json:"owners,omitempty"`
	Copies            []struct {
		Name  string `json:"name"`
		Owner string `json:"owner"`
		Stats struct {
			Rows   int64 `json:"rows"`
			Pushes int64 `json:"pushes"`
		} `json:"stats"`
		Total float64 `json:"total"`
	} `json:"copies"`
	Breakers map[string]string `json:"breakers"`
	Counters map[string]int64  `json:"counters"`
}

func runClusterStatus(args []string) error {
	fs := flag.NewFlagSet("cluster status", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8632", "cluster node base URL")
	name := fs.String("name", "", "also print this sketch's owner set")
	timeout := fs.Duration("timeout", 5*time.Second, "request deadline")
	fs.Parse(args)

	u := strings.TrimSuffix(*url, "/") + "/v1/cluster/status"
	if *name != "" {
		u += "?name=" + *name
	}
	cli := &http.Client{Timeout: *timeout}
	resp, err := cli.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", u, resp.StatusCode)
	}
	var st clusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("%s\n", st.Self)
	fmt.Printf("  replication %d, read quorum %d\n", st.ReplicationFactor, st.ReadQuorum)
	if line := pressureLine(cli, strings.TrimSuffix(*url, "/")); line != "" {
		fmt.Printf("  pressure    %s\n", line)
	}
	peers := make([]string, 0, len(st.Peers))
	for p := range st.Peers {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		breaker := st.Breakers[p]
		if breaker == "" {
			breaker = "closed"
		}
		fmt.Printf("  peer        %-32s %-5s breaker %s\n", p, st.Peers[p], breaker)
	}
	if len(st.Owners) > 0 {
		fmt.Printf("  owners(%s)  %s\n", *name, strings.Join(st.Owners, ", "))
	}
	for _, c := range st.Copies {
		fmt.Printf("  copy        %s of %s: %d rows, %d pushes, total %.1f\n",
			c.Name, c.Owner, c.Stats.Rows, c.Stats.Pushes, c.Total)
	}
	keys := make([]string, 0, len(st.Counters))
	for k := range st.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-18s%d\n", k, st.Counters[k])
	}
	return nil
}

// pressureLine summarizes the node's /readyz pressure fields: disk
// pressure, read-only and shedding flags. Empty when the probe is
// unreachable or predates the pressure report.
func pressureLine(cli *http.Client, base string) string {
	resp, err := cli.Get(base + "/readyz")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var rz struct {
		Pressure string `json:"pressure"`
		ReadOnly bool   `json:"read_only"`
		Shedding bool   `json:"shedding"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		return ""
	}
	parts := []string{}
	if rz.Pressure != "" {
		parts = append(parts, "disk "+rz.Pressure)
	}
	if rz.ReadOnly {
		parts = append(parts, "READ-ONLY")
	}
	if rz.Shedding {
		parts = append(parts, "SHEDDING")
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, ", ")
}

func runClusterAE(args []string) error {
	fs := flag.NewFlagSet("cluster antientropy", flag.ExitOnError)
	url := fs.String("url", "", "cluster node base URL (required)")
	timeout := fs.Duration("timeout", 30*time.Second, "request deadline")
	fs.Parse(args)
	if *url == "" {
		return fmt.Errorf("cluster antientropy: -url is required")
	}
	cli := &http.Client{Timeout: *timeout}
	resp, err := cli.Post(strings.TrimSuffix(*url, "/")+"/v1/cluster/antientropy", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st struct {
		Peers   int      `json:"peers"`
		Pulled  int      `json:"pulled"`
		Created int      `json:"created"`
		Dropped int      `json:"dropped"`
		Errors  []string `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("anti-entropy round on %s: %d peers, pulled %d, created %d, dropped %d\n",
		*url, st.Peers, st.Pulled, st.Created, st.Dropped)
	for _, e := range st.Errors {
		fmt.Printf("  error: %s\n", e)
	}
	return nil
}
