package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/server"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	ferr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// TestTraceAndTopCommands exercises `uss trace` and `uss top` against
// a live server: a request sent with an explicit trace header must be
// retrievable by that trace ID, and the hot view must reflect ingested
// rows.
func TestTraceAndTopCommands(t *testing.T) {
	srv := server.New(server.Config{IngestWorkers: 2, QueueDepth: 64, Node: "test-node"})
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cli := ts.Client()
	mkReq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sketches",
		strings.NewReader(`{"name":"clicks","kind":"unit","bins":64}`))
	if err != nil {
		t.Fatal(err)
	}
	mkReq.Header.Set("Content-Type", "application/json")
	if resp, err := cli.Do(mkReq); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create sketch: %v status=%v", err, resp)
	} else {
		resp.Body.Close()
	}

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sketches/clicks/ingest?sync=1",
		strings.NewReader("a\nb\na\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-USS-Trace", traceID+"-00f067aa0ba902b7")
	resp, err := cli.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	out := captureStdout(t, func() error {
		return runTrace([]string{"-url", ts.URL, traceID})
	})
	if !strings.Contains(out, traceID) {
		t.Errorf("trace output missing trace ID:\n%s", out)
	}
	if !strings.Contains(out, "node=test-node") {
		t.Errorf("trace output missing node:\n%s", out)
	}

	out = captureStdout(t, func() error {
		return runTrace([]string{"-url", ts.URL, "-json", traceID})
	})
	if !strings.Contains(out, `"trace"`) {
		t.Errorf("trace -json output not JSON:\n%s", out)
	}

	out = captureStdout(t, func() error {
		return runTop([]string{"-url", ts.URL, "-k", "5"})
	})
	if !strings.Contains(out, "clicks") {
		t.Errorf("top output missing hot tenant:\n%s", out)
	}
	if !strings.Contains(out, "rows") {
		t.Errorf("top output missing rows header:\n%s", out)
	}

	if err := runTrace([]string{"-url", ts.URL}); err == nil {
		t.Error("trace with no ID should fail")
	}
	if err := runTrace([]string{"-url", ts.URL, "not-hex"}); err == nil {
		t.Error("trace with malformed ID should fail")
	}
}
