package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	uss "repro"
	"repro/internal/store"
)

// withStdin points os.Stdin at a temp file holding content for the
// duration of fn.
func withStdin(t *testing.T, content string, fn func()) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "stdin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(content); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = f
	defer func() {
		os.Stdin = old
		f.Close()
	}()
	fn()
}

func TestBuildAndQuery(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.sketch")
	var rows strings.Builder
	for i := 0; i < 50; i++ {
		for j := 0; j <= i%5; j++ {
			fmt.Fprintf(&rows, "key-%d\n", i)
		}
	}
	withStdin(t, rows.String(), func() {
		if err := runBuild([]string{"-m", "100", "-seed", "3", "-out", out}); err != nil {
			t.Fatal(err)
		}
	})
	sk, err := readSketch(out)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Rows() != 150 { // Σ (i%5+1) over 50 = 10·15
		t.Errorf("rows = %d, want 150", sk.Rows())
	}
	if sk.Estimate("key-4") != 5 {
		t.Errorf("Estimate(key-4) = %v, want 5 (under capacity = exact)", sk.Estimate("key-4"))
	}
	for _, args := range [][]string{
		{"-sketch", out, "-top", "3"},
		{"-sketch", out, "-item", "key-4"},
		{"-sketch", out, "-prefix", "key-1"},
		{"-sketch", out, "-contains", "ey-2", "-level", "0.9"},
	} {
		if err := runQuery(args); err != nil {
			t.Errorf("query %v: %v", args, err)
		}
	}
}

func TestBuildFieldSelection(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "f.sketch")
	input := "u1\tclick\nu1\tview\nu2\tclick\n\nshort\n"
	withStdin(t, input, func() {
		if err := runBuild([]string{"-m", "10", "-field", "1", "-seed", "1", "-out", out}); err != nil {
			t.Fatal(err)
		}
	})
	sk, err := readSketch(out)
	if err != nil {
		t.Fatal(err)
	}
	// "short" has no field 1 and is skipped; blank line skipped.
	if sk.Rows() != 3 {
		t.Errorf("rows = %d, want 3", sk.Rows())
	}
	if sk.Estimate("click") != 2 || sk.Estimate("view") != 1 {
		t.Errorf("field counts wrong: click=%v view=%v", sk.Estimate("click"), sk.Estimate("view"))
	}
}

func TestBuildDeterministicFlag(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.sketch")
	withStdin(t, "a\nb\n", func() {
		if err := runBuild([]string{"-m", "4", "-deterministic", "-out", out}); err != nil {
			t.Fatal(err)
		}
	})
	sk, err := readSketch(out)
	if err != nil {
		t.Fatal(err)
	}
	if !sk.Deterministic() {
		t.Error("deterministic flag not persisted")
	}
}

func TestBuildRequiresOut(t *testing.T) {
	withStdin(t, "a\n", func() {
		if err := runBuild([]string{"-m", "4"}); err == nil {
			t.Error("missing -out accepted")
		}
	})
}

func TestQueryErrors(t *testing.T) {
	if err := runQuery([]string{"-top", "3"}); err == nil {
		t.Error("missing -sketch accepted")
	}
	if err := runQuery([]string{"-sketch", "/nonexistent/x.sketch", "-top", "3"}); err == nil {
		t.Error("missing file accepted")
	}
	// A sketch with no query selector.
	dir := t.TempDir()
	out := filepath.Join(dir, "q.sketch")
	withStdin(t, "a\n", func() {
		if err := runBuild([]string{"-m", "4", "-out", out}); err != nil {
			t.Fatal(err)
		}
	})
	if err := runQuery([]string{"-sketch", out}); err == nil {
		t.Error("query without selector accepted")
	}
}

func TestMergeCommand(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.sketch")
	b := filepath.Join(dir, "b.sketch")
	out := filepath.Join(dir, "m.sketch")
	withStdin(t, "x\nx\ny\n", func() {
		if err := runBuild([]string{"-m", "8", "-seed", "1", "-out", a}); err != nil {
			t.Fatal(err)
		}
	})
	withStdin(t, "x\nz\n", func() {
		if err := runBuild([]string{"-m", "8", "-seed", "2", "-out", b}); err != nil {
			t.Fatal(err)
		}
	})
	for _, red := range []string{"pairwise", "pivotal", "misra-gries"} {
		if err := runMerge([]string{"-m", "8", "-reduction", red, "-out", out, a, b}); err != nil {
			t.Fatalf("merge %s: %v", red, err)
		}
	}
	// Verify the pairwise-merged content (last loop wrote misra-gries;
	// redo pairwise for the content check).
	if err := runMerge([]string{"-m", "8", "-out", out, a, b}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var merged uss.WeightedSketch
	if err := merged.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got := merged.Estimate("x"); got != 3 {
		t.Errorf("merged x = %v, want 3", got)
	}
	if got := merged.Total(); got != 5 {
		t.Errorf("merged total = %v, want 5", got)
	}
}

func TestRoundTripCommand(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.sketch")
	out := filepath.Join(dir, "out.sketch")
	withStdin(t, "x\nx\ny\nz\nz\nz\n", func() {
		if err := runBuild([]string{"-m", "8", "-seed", "4", "-out", in}); err != nil {
			t.Fatal(err)
		}
	})
	if err := runRoundTrip([]string{"-sketch", in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	sk, err := readSketch(out)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Rows() != 6 || sk.Estimate("z") != 3 {
		t.Errorf("round-tripped sketch wrong: rows=%d z=%v", sk.Rows(), sk.Estimate("z"))
	}
	// A legacy v1 gob snapshot upgrades through the same path.
	v1 := filepath.Join(dir, "v1.sketch")
	blob := gobEncodeV1Snapshot(t, 8, 3, []uss.Bin{{Item: "a", Count: 1}, {Item: "b", Count: 2}})
	if err := os.WriteFile(v1, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	up := filepath.Join(dir, "v1-upgraded.sketch")
	if err := runRoundTrip([]string{"-sketch", v1, "-out", up}); err != nil {
		t.Fatalf("v1 roundtrip: %v", err)
	}
	upsk, err := readSketch(up)
	if err != nil {
		t.Fatal(err)
	}
	if upsk.Rows() != 3 || upsk.Estimate("b") != 2 {
		t.Errorf("upgraded v1 sketch wrong: rows=%d b=%v", upsk.Rows(), upsk.Estimate("b"))
	}
	if info, err := uss.InspectSnapshot(mustRead(t, up)); err != nil || info.Version != 2 {
		t.Errorf("upgraded snapshot version = %+v, %v", info, err)
	}
}

func TestRoundTripErrors(t *testing.T) {
	if err := runRoundTrip([]string{}); err == nil {
		t.Error("missing -sketch accepted")
	}
	if err := runRoundTrip([]string{"-sketch", "/nonexistent/x.sketch"}); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not a sketch"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runRoundTrip([]string{"-sketch", junk}); err == nil {
		t.Error("garbage input accepted")
	}
}

// gobEncodeV1Snapshot synthesizes a legacy v1 snapshot (gob matches struct
// fields by name).
func gobEncodeV1Snapshot(t *testing.T, capacity int, rows int64, bins []uss.Bin) []byte {
	t.Helper()
	var buf bytes.Buffer
	snap := struct {
		Version       int
		Capacity      int
		Deterministic bool
		Weighted      bool
		Rows          int64
		Bins          []uss.Bin
	}{Version: 1, Capacity: capacity, Rows: rows, Bins: bins}
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMergeErrors(t *testing.T) {
	if err := runMerge([]string{"-out", ""}); err == nil {
		t.Error("missing -out accepted")
	}
	if err := runMerge([]string{"-out", "/tmp/x.sketch"}); err == nil {
		t.Error("no inputs accepted")
	}
	if err := runMerge([]string{"-reduction", "bogus", "-out", "/tmp/x.sketch", "/tmp/y"}); err == nil {
		t.Error("bad reduction accepted")
	}
	if err := runMerge([]string{"-out", "/tmp/x.sketch", "/nonexistent.sketch"}); err == nil {
		t.Error("missing input accepted")
	}
}

// TestWALInspectAndReplay drives the wal subcommands over a real store
// directory: replay must reconstruct the logged state and export a
// queryable snapshot; inspect must run clean on the same dir.
func TestWALInspectAndReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"name":"clicks","kind":"unit","bins":64,"seed":7}`)
	if _, err := st.AppendCreate(spec); err != nil {
		t.Fatal(err)
	}
	items := []string{"a", "a", "a", "b", "b", "c"}
	if _, err := st.AppendIngest("clicks", items, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if err := runWAL([]string{"inspect", "-dir", dir, "-records"}); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(t.TempDir(), "out")
	if err := runWAL([]string{"replay", "-dir", dir, "-top", "3", "-out-dir", outDir}); err != nil {
		t.Fatal(err)
	}
	sk, err := readSketch(filepath.Join(outDir, "clicks.sketch"))
	if err != nil {
		t.Fatal(err)
	}
	if sk.Estimate("a") != 3 || sk.Estimate("b") != 2 || sk.Rows() != 6 {
		t.Fatalf("replayed snapshot wrong: a=%v b=%v rows=%d", sk.Estimate("a"), sk.Estimate("b"), sk.Rows())
	}

	if err := runWAL([]string{"inspect"}); err == nil {
		t.Error("inspect without -dir accepted")
	}
	if err := runWAL([]string{"bogus"}); err == nil {
		t.Error("unknown wal subcommand accepted")
	}
	if err := runWAL(nil); err == nil {
		t.Error("bare wal accepted")
	}
}
