package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	uss "repro"
)

// withStdin points os.Stdin at a temp file holding content for the
// duration of fn.
func withStdin(t *testing.T, content string, fn func()) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "stdin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(content); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = f
	defer func() {
		os.Stdin = old
		f.Close()
	}()
	fn()
}

func TestBuildAndQuery(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.sketch")
	var rows strings.Builder
	for i := 0; i < 50; i++ {
		for j := 0; j <= i%5; j++ {
			fmt.Fprintf(&rows, "key-%d\n", i)
		}
	}
	withStdin(t, rows.String(), func() {
		if err := runBuild([]string{"-m", "100", "-seed", "3", "-out", out}); err != nil {
			t.Fatal(err)
		}
	})
	sk, err := readSketch(out)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Rows() != 150 { // Σ (i%5+1) over 50 = 10·15
		t.Errorf("rows = %d, want 150", sk.Rows())
	}
	if sk.Estimate("key-4") != 5 {
		t.Errorf("Estimate(key-4) = %v, want 5 (under capacity = exact)", sk.Estimate("key-4"))
	}
	for _, args := range [][]string{
		{"-sketch", out, "-top", "3"},
		{"-sketch", out, "-item", "key-4"},
		{"-sketch", out, "-prefix", "key-1"},
		{"-sketch", out, "-contains", "ey-2", "-level", "0.9"},
	} {
		if err := runQuery(args); err != nil {
			t.Errorf("query %v: %v", args, err)
		}
	}
}

func TestBuildFieldSelection(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "f.sketch")
	input := "u1\tclick\nu1\tview\nu2\tclick\n\nshort\n"
	withStdin(t, input, func() {
		if err := runBuild([]string{"-m", "10", "-field", "1", "-seed", "1", "-out", out}); err != nil {
			t.Fatal(err)
		}
	})
	sk, err := readSketch(out)
	if err != nil {
		t.Fatal(err)
	}
	// "short" has no field 1 and is skipped; blank line skipped.
	if sk.Rows() != 3 {
		t.Errorf("rows = %d, want 3", sk.Rows())
	}
	if sk.Estimate("click") != 2 || sk.Estimate("view") != 1 {
		t.Errorf("field counts wrong: click=%v view=%v", sk.Estimate("click"), sk.Estimate("view"))
	}
}

func TestBuildDeterministicFlag(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.sketch")
	withStdin(t, "a\nb\n", func() {
		if err := runBuild([]string{"-m", "4", "-deterministic", "-out", out}); err != nil {
			t.Fatal(err)
		}
	})
	sk, err := readSketch(out)
	if err != nil {
		t.Fatal(err)
	}
	if !sk.Deterministic() {
		t.Error("deterministic flag not persisted")
	}
}

func TestBuildRequiresOut(t *testing.T) {
	withStdin(t, "a\n", func() {
		if err := runBuild([]string{"-m", "4"}); err == nil {
			t.Error("missing -out accepted")
		}
	})
}

func TestQueryErrors(t *testing.T) {
	if err := runQuery([]string{"-top", "3"}); err == nil {
		t.Error("missing -sketch accepted")
	}
	if err := runQuery([]string{"-sketch", "/nonexistent/x.sketch", "-top", "3"}); err == nil {
		t.Error("missing file accepted")
	}
	// A sketch with no query selector.
	dir := t.TempDir()
	out := filepath.Join(dir, "q.sketch")
	withStdin(t, "a\n", func() {
		if err := runBuild([]string{"-m", "4", "-out", out}); err != nil {
			t.Fatal(err)
		}
	})
	if err := runQuery([]string{"-sketch", out}); err == nil {
		t.Error("query without selector accepted")
	}
}

func TestMergeCommand(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.sketch")
	b := filepath.Join(dir, "b.sketch")
	out := filepath.Join(dir, "m.sketch")
	withStdin(t, "x\nx\ny\n", func() {
		if err := runBuild([]string{"-m", "8", "-seed", "1", "-out", a}); err != nil {
			t.Fatal(err)
		}
	})
	withStdin(t, "x\nz\n", func() {
		if err := runBuild([]string{"-m", "8", "-seed", "2", "-out", b}); err != nil {
			t.Fatal(err)
		}
	})
	for _, red := range []string{"pairwise", "pivotal", "misra-gries"} {
		if err := runMerge([]string{"-m", "8", "-reduction", red, "-out", out, a, b}); err != nil {
			t.Fatalf("merge %s: %v", red, err)
		}
	}
	// Verify the pairwise-merged content (last loop wrote misra-gries;
	// redo pairwise for the content check).
	if err := runMerge([]string{"-m", "8", "-out", out, a, b}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var merged uss.WeightedSketch
	if err := merged.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got := merged.Estimate("x"); got != 3 {
		t.Errorf("merged x = %v, want 3", got)
	}
	if got := merged.Total(); got != 5 {
		t.Errorf("merged total = %v, want 5", got)
	}
}

func TestMergeErrors(t *testing.T) {
	if err := runMerge([]string{"-out", ""}); err == nil {
		t.Error("missing -out accepted")
	}
	if err := runMerge([]string{"-out", "/tmp/x.sketch"}); err == nil {
		t.Error("no inputs accepted")
	}
	if err := runMerge([]string{"-reduction", "bogus", "-out", "/tmp/x.sketch", "/tmp/y"}); err == nil {
		t.Error("bad reduction accepted")
	}
	if err := runMerge([]string{"-out", "/tmp/x.sketch", "/nonexistent.sketch"}); err == nil {
		t.Error("missing input accepted")
	}
}
