// Command ussgen writes synthetic disaggregated row streams to stdout, one
// item label per line, for feeding into `uss build` or other tools.
//
// Usage:
//
//	ussgen -dist weibull -n 1000 -scale 350 -shape 0.32 -order shuffled | uss build -m 1000 -out s.sketch
//	ussgen -dist geometric -p 0.03 -order sorted
//	ussgen -dist zipf -zipf-s 1.1 -max 10000 -order twohalves
//	ussgen -ads -rows 100000 -features 0,3,8
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/workload"
)

func main() {
	var (
		dist     = flag.String("dist", "weibull", "count distribution: weibull | geometric | zipf | uniform")
		n        = flag.Int("n", 1000, "number of distinct items")
		scale    = flag.Float64("scale", 350, "weibull scale")
		shape    = flag.Float64("shape", 0.32, "weibull shape")
		p        = flag.Float64("p", 0.03, "geometric success probability")
		zipfS    = flag.Float64("zipf-s", 1.1, "zipf exponent")
		maxCount = flag.Int64("max", 10000, "zipf/uniform max count")
		order    = flag.String("order", "shuffled", "arrival order: shuffled | sorted | sorted-desc | twohalves | adversarial | bursts")
		seed     = flag.Int64("seed", 1, "random seed")
		ads      = flag.Bool("ads", false, "emit the synthetic ad impression stream instead")
		rows     = flag.Int64("rows", 100000, "ad impressions to generate (with -ads)")
		features = flag.String("features", "0,1,2,3,4,5,6,7,8", "feature positions for the ad unit key (with -ads)")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *ads {
		if err := emitAds(w, *rows, *features, *seed); err != nil {
			fatal(err)
		}
		return
	}

	var pop workload.Population
	switch *dist {
	case "weibull":
		pop = workload.DiscretizedWeibull(*n, *scale, *shape)
	case "geometric":
		pop = workload.DiscretizedGeometric(*n, *p)
	case "zipf":
		pop = workload.Zipf(*n, *zipfS, *maxCount)
	case "uniform":
		pop = workload.Uniform(*n, *maxCount)
	default:
		fatal(fmt.Errorf("unknown distribution %q", *dist))
	}

	rng := rand.New(rand.NewSource(*seed))
	var stream workload.Stream
	switch *order {
	case "shuffled":
		stream = workload.Shuffled(pop, rng)
	case "sorted":
		stream = workload.SortedAscending(pop)
	case "sorted-desc":
		stream = workload.SortedDescending(pop)
	case "twohalves":
		stream = workload.TwoHalves(pop, *n/2, rng)
	case "adversarial":
		stream = workload.AdversarialDistinct(pop)
	case "bursts":
		stream = workload.PeriodicBursts(pop, 100, 10, rng)
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}
	for {
		item, ok := stream.Next()
		if !ok {
			break
		}
		fmt.Fprintln(w, item)
	}
}

func emitAds(w *bufio.Writer, rows int64, featureSpec string, seed int64) error {
	var feats []int
	for _, part := range strings.Split(featureSpec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -features %q: %w", featureSpec, err)
		}
		feats = append(feats, v)
	}
	cfg := workload.DefaultAdConfig(rows)
	ads, err := workload.NewAdStream(cfg, seed)
	if err != nil {
		return err
	}
	for {
		im, ok := ads.Next()
		if !ok {
			return nil
		}
		clicked := 0
		if im.Clicked {
			clicked = 1
		}
		fmt.Fprintf(w, "%s\t%d\n", im.Key(feats...), clicked)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ussgen:", err)
	os.Exit(1)
}
