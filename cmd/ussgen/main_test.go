package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestEmitAds(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := emitAds(w, 200, "0,3,8", 7); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 200 {
		t.Fatalf("emitted %d lines", len(lines))
	}
	for i, l := range lines {
		parts := strings.Split(l, "\t")
		if len(parts) != 2 {
			t.Fatalf("line %d: %q", i, l)
		}
		if parts[1] != "0" && parts[1] != "1" {
			t.Fatalf("line %d label %q", i, parts[1])
		}
		kv := strings.Split(parts[0], "|")
		if len(kv) != 3 {
			t.Fatalf("line %d key %q has %d features", i, parts[0], len(kv))
		}
		for _, pair := range kv {
			if !strings.Contains(pair, "=") {
				t.Fatalf("bad key component %q", pair)
			}
		}
	}
}

func TestEmitAdsDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := emitAds(w, 50, "1,2", 42); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		return buf.String()
	}
	if run() != run() {
		t.Error("same seed produced different ad streams")
	}
}

func TestEmitAdsBadFeatures(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := emitAds(w, 10, "0,notanumber", 1); err == nil {
		t.Error("bad feature spec accepted")
	}
}
