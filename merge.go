package uss

import (
	"repro/internal/core"
)

// Reduction selects the bin-reduction strategy used when merging sketches
// (paper §5.3, §5.5).
type Reduction int

const (
	// Pairwise repeatedly collapses the two smallest bins, keeping the
	// larger label with probability proportional to its count. Unbiased;
	// preserves the exact total; keeps integer counts integral.
	Pairwise Reduction = iota
	// Pivotal draws a fixed-size PPS sample over all bins (splitting
	// method) with Horvitz–Thompson adjustment. Unbiased; adds less
	// quadratic variation than Pairwise but produces real-valued counts
	// and preserves the total only in expectation.
	Pivotal
	// MisraGries soft-thresholds by the (m+1)-th largest count. Biased
	// downward but preserves the deterministic heavy-hitter guarantee;
	// included for comparison with the classic merge.
	MisraGries
)

func (r Reduction) kind() core.ReduceKind {
	switch r {
	case Pairwise:
		return core.PairwiseReduction
	case Pivotal:
		return core.PivotalReduction
	case MisraGries:
		return core.MisraGriesReduction
	default:
		return core.PairwiseReduction
	}
}

// Merge combines sketches built on disjoint data into a fresh
// WeightedSketch with m bins: counts are summed exactly item-wise and then
// reduced back to m bins. With Pairwise or Pivotal the merged sketch
// remains unbiased for every subset sum over the union of the inputs'
// data (Theorem 2 of the paper).
func Merge(m int, red Reduction, sketches ...*Sketch) *WeightedSketch {
	c := buildConfig(nil)
	inner := make([]*core.Sketch, len(sketches))
	for i, s := range sketches {
		inner[i] = s.core
	}
	return &WeightedSketch{core: core.MergeSketches(m, red.kind(), c.rng, inner...)}
}

// MergeWeighted combines weighted sketches the same way.
func MergeWeighted(m int, red Reduction, sketches ...*WeightedSketch) *WeightedSketch {
	c := buildConfig(nil)
	inner := make([]*core.WeightedSketch, len(sketches))
	for i, s := range sketches {
		inner[i] = s.core
	}
	return &WeightedSketch{core: core.MergeWeighted(m, red.kind(), c.rng, inner...)}
}

// MergeBins exposes the raw reduction: sum the bin lists exactly, then
// reduce to at most m bins. It is the merge step of the wire pipeline —
// DecodeBins each shipped snapshot, MergeBins the lists, then EncodeBins
// the result onward (or NewWeightedFromBins it into a queryable sketch) —
// transporting sketch state between processes without ever materializing
// a per-snapshot Sketch. When the summed lists already fit in m bins the
// merge is the exact item-wise sum and draws no randomness; only a
// reduction below the merged size randomizes.
func MergeBins(m int, red Reduction, lists ...[]Bin) []Bin {
	c := buildConfig(nil)
	return core.MergeBins(m, red.kind(), c.rng, lists...)
}
