package uss

import (
	"runtime"
	"sync/atomic"

	"repro/internal/core"
)

// mergeParallelism holds the package-wide merge fan-out; 0 means "track
// GOMAXPROCS".
var mergeParallelism atomic.Int32

// MergeParallelism reports the goroutine fan-out the parallel merge
// paths (ShardedSketch snapshot refill, MergeBinsParallel) use. It
// defaults to GOMAXPROCS and can be pinned with SetMergeParallelism.
func MergeParallelism() int {
	if p := mergeParallelism.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// SetMergeParallelism pins the merge fan-out to n goroutines; n <= 0
// restores the GOMAXPROCS default and 1 forces the sequential kernels.
// Regardless of the setting, merges below the size cutoff
// (core.ParallelMergeCutoff bins) run sequentially, and parallel output
// is bit-identical to sequential output, so the knob trades only CPU
// width, never results.
func SetMergeParallelism(n int) {
	if n < 0 {
		n = 0
	}
	mergeParallelism.Store(int32(n))
}

// Reduction selects the bin-reduction strategy used when merging sketches
// (paper §5.3, §5.5).
type Reduction int

const (
	// Pairwise repeatedly collapses the two smallest bins, keeping the
	// larger label with probability proportional to its count. Unbiased;
	// preserves the exact total; keeps integer counts integral.
	Pairwise Reduction = iota
	// Pivotal draws a fixed-size PPS sample over all bins (splitting
	// method) with Horvitz–Thompson adjustment. Unbiased; adds less
	// quadratic variation than Pairwise but produces real-valued counts
	// and preserves the total only in expectation.
	Pivotal
	// MisraGries soft-thresholds by the (m+1)-th largest count. Biased
	// downward but preserves the deterministic heavy-hitter guarantee;
	// included for comparison with the classic merge.
	MisraGries
)

func (r Reduction) kind() core.ReduceKind {
	switch r {
	case Pairwise:
		return core.PairwiseReduction
	case Pivotal:
		return core.PivotalReduction
	case MisraGries:
		return core.MisraGriesReduction
	default:
		return core.PairwiseReduction
	}
}

// Merge combines sketches built on disjoint data into a fresh
// WeightedSketch with m bins: counts are summed exactly item-wise and then
// reduced back to m bins. With Pairwise or Pivotal the merged sketch
// remains unbiased for every subset sum over the union of the inputs'
// data (Theorem 2 of the paper).
func Merge(m int, red Reduction, sketches ...*Sketch) *WeightedSketch {
	c := buildConfig(nil)
	inner := make([]*core.Sketch, len(sketches))
	for i, s := range sketches {
		inner[i] = s.core
	}
	return &WeightedSketch{core: core.MergeSketches(m, red.kind(), c.rng, inner...)}
}

// MergeWeighted combines weighted sketches the same way.
func MergeWeighted(m int, red Reduction, sketches ...*WeightedSketch) *WeightedSketch {
	c := buildConfig(nil)
	inner := make([]*core.WeightedSketch, len(sketches))
	for i, s := range sketches {
		inner[i] = s.core
	}
	return &WeightedSketch{core: core.MergeWeighted(m, red.kind(), c.rng, inner...)}
}

// MergeBins exposes the raw reduction: sum the bin lists exactly, then
// reduce to at most m bins. It is the merge step of the wire pipeline —
// DecodeBins each shipped snapshot, MergeBins the lists, then EncodeBins
// the result onward (or NewWeightedFromBins it into a queryable sketch) —
// transporting sketch state between processes without ever materializing
// a per-snapshot Sketch. When the summed lists already fit in m bins the
// merge is the exact item-wise sum and draws no randomness; only a
// reduction below the merged size randomizes.
func MergeBins(m int, red Reduction, lists ...[]Bin) []Bin {
	c := buildConfig(nil)
	return core.MergeBins(m, red.kind(), c.rng, lists...)
}

// MergeBinsParallel is MergeBins with the exact summing half fanned out
// over MergeParallelism goroutines (paper §5.5 run wide: leaf runs merged
// concurrently, then a pairwise tree reduction). Output is bit-identical
// to MergeBins for the same random state — only the deterministic sum is
// parallelized; the reduction draws its randomness sequentially — so the
// two are interchangeable wherever a merge is hot, e.g. the cluster
// gather path collapsing per-node partials.
func MergeBinsParallel(m int, red Reduction, lists ...[]Bin) []Bin {
	c := buildConfig(nil)
	return core.MergeBinsParallel(m, red.kind(), c.rng, MergeParallelism(), lists...)
}
