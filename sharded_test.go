package uss_test

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	uss "repro"
)

func TestShardedBasic(t *testing.T) {
	s := uss.NewSharded(4, 64, uss.WithSeed(5))
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d", s.Shards())
	}
	for i := 0; i < 1000; i++ {
		s.Update(fmt.Sprintf("k%d", i%50))
	}
	if s.Rows() != 1000 {
		t.Fatalf("Rows = %d", s.Rows())
	}
	// Under capacity everywhere: exact estimates.
	if got := s.Estimate("k7"); got != 20 {
		t.Errorf("Estimate(k7) = %v, want 20", got)
	}
	all := s.SubsetSum(func(string) bool { return true })
	if all.Value != 1000 {
		t.Errorf("SubsetSum(all) = %v", all.Value)
	}
	if got := s.Estimate("missing"); got != 0 {
		t.Errorf("Estimate(missing) = %v", got)
	}
}

func TestShardedPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded(0, ...) did not panic")
		}
	}()
	uss.NewSharded(0, 8)
}

func TestShardedConcurrentIngestion(t *testing.T) {
	s := uss.NewSharded(8, 128, uss.WithSeed(6))
	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Update(fmt.Sprintf("user-%d", (i*7+w)%500))
			}
		}(w)
	}
	wg.Wait()
	if got := s.Rows(); got != workers*perWorker {
		t.Fatalf("Rows = %d, want %d", got, workers*perWorker)
	}
	est := s.SubsetSum(func(k string) bool { return strings.HasSuffix(k, "3") })
	if est.Value <= 0 || est.StdErr < 0 {
		t.Fatalf("subset estimate %+v", est)
	}
	// 500 distinct users in 8×128 = 1024 bins: everything exact, so the
	// subset sum equals the truth exactly.
	truth := 0.0
	for u := 0; u < 500; u++ {
		if strings.HasSuffix(fmt.Sprintf("user-%d", u), "3") {
			// Each user appears workers·perWorker/500 times (i*7 mod 500
			// is a bijection per worker cycle of 500).
			truth += float64(workers * perWorker / 500)
		}
	}
	if math.Abs(est.Value-truth) > 1e-9 {
		t.Errorf("concurrent subset sum %v, want exact %v", est.Value, truth)
	}
}

func TestShardedSnapshotAndTopK(t *testing.T) {
	s := uss.NewSharded(4, 64, uss.WithSeed(7))
	for i := 0; i < 5000; i++ {
		s.Update("hot")
	}
	for i := 0; i < 5000; i++ {
		s.Update(fmt.Sprintf("cold-%d", i%2000))
	}
	snap := s.Snapshot(0)
	if snap.Capacity() != 4*64 {
		t.Errorf("snapshot capacity %d", snap.Capacity())
	}
	if math.Abs(snap.Total()-10000) > 1e-9 {
		t.Errorf("snapshot total %v", snap.Total())
	}
	top := s.TopK(3)
	if len(top) != 3 || top[0].Item != "hot" {
		t.Fatalf("TopK = %v", top)
	}
	if top[0].Count < 4500 || top[0].Count > 5500 {
		t.Errorf("hot count %v", top[0].Count)
	}
	// Custom snapshot size.
	small := s.Snapshot(16)
	if small.Size() > 16 {
		t.Errorf("Snapshot(16) holds %d bins", small.Size())
	}
	if math.Abs(small.Total()-10000) > 1e-9 {
		t.Errorf("reduced snapshot lost mass: %v", small.Total())
	}
}

// TestShardedUnbiased: merged estimates across shards stay unbiased under
// sketch overflow.
func TestShardedUnbiased(t *testing.T) {
	var rows []string
	truth := map[string]float64{}
	for i := 0; i < 200; i++ {
		item := fmt.Sprintf("i%d", i)
		for j := 0; j <= i%15; j++ {
			rows = append(rows, item)
			truth[item]++
		}
	}
	pred := func(k string) bool { return strings.HasSuffix(k, "9") }
	var want float64
	for k, c := range truth {
		if pred(k) {
			want += c
		}
	}
	const reps = 800
	var sum float64
	for r := 0; r < reps; r++ {
		s := uss.NewSharded(4, 8, uss.WithSeed(int64(r+1)))
		for _, row := range rows {
			s.Update(row)
		}
		sum += s.SubsetSum(pred).Value
	}
	mean := sum / reps
	if math.Abs(mean-want) > 0.15*want {
		t.Errorf("sharded subset mean %v, truth %v", mean, want)
	}
}
