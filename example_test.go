package uss_test

import (
	"fmt"
	"strings"

	uss "repro"
)

// The examples below are deterministic (fixed seeds) so their output is
// verified by `go test`.

func ExampleSketch_SubsetSum() {
	sk := uss.New(8, uss.WithSeed(1))
	// Five users' clicks, disaggregated: one row per click.
	for user, clicks := range map[string]int{"u1": 3, "u2": 1, "u3": 4, "u4": 2, "u5": 5} {
		for i := 0; i < clicks; i++ {
			sk.Update(user)
		}
	}
	// Under capacity the sketch is exact; filters are arbitrary.
	est := sk.SubsetSum(func(u string) bool { return u == "u1" || u == "u3" })
	fmt.Printf("clicks from u1+u3: %.0f\n", est.Value)
	// Output: clicks from u1+u3: 7
}

func ExampleSketch_TopK() {
	sk := uss.New(4, uss.WithSeed(1))
	for i := 0; i < 90; i++ {
		sk.Update("whale")
	}
	for i := 0; i < 10; i++ {
		sk.Update(fmt.Sprintf("minnow-%d", i))
	}
	top := sk.TopK(1)
	fmt.Printf("%s ≈ %.0f of %.0f rows\n", top[0].Item, top[0].Count, sk.Total())
	// Output: whale ≈ 90 of 100 rows
}

func ExampleMerge() {
	east := uss.New(8, uss.WithSeed(2))
	west := uss.New(8, uss.WithSeed(3))
	for i := 0; i < 6; i++ {
		east.Update("checkout")
	}
	for i := 0; i < 4; i++ {
		west.Update("checkout")
	}
	west.Update("search")
	merged := uss.Merge(8, uss.Pairwise, east, west)
	fmt.Printf("checkout events across regions: %.0f\n", merged.Estimate("checkout"))
	// Output: checkout events across regions: 10
}

func ExampleWeightedSketch_Update() {
	sk := uss.NewWeighted(8, uss.WithSeed(4))
	sk.Update("flow-a", 1500) // bytes
	sk.Update("flow-b", 40)
	sk.Update("flow-a", 9000)
	fmt.Printf("flow-a bytes: %.0f\n", sk.Estimate("flow-a"))
	// Output: flow-a bytes: 10500
}

func ExampleRunQuery() {
	sk := uss.New(16, uss.WithSeed(5))
	sk.UpdateAll([]string{
		"country=us|device=ios",
		"country=us|device=ios",
		"country=us|device=android",
		"country=de|device=ios",
	})
	groups, _, _ := uss.RunQuery(sk, uss.QuerySpec{
		Where:   []uss.QueryFilter{uss.WhereEq("device", "ios")},
		GroupBy: []string{"country"},
	})
	for _, g := range groups {
		fmt.Printf("%s: %.0f\n", g.KeyString(), g.Sum.Value)
	}
	// Output:
	// country=us: 2
	// country=de: 1
}

func ExampleHierarchicalHeavyHitters() {
	sk := uss.New(32, uss.WithSeed(6))
	// One subnet is hot only in aggregate.
	for i := 0; i < 6; i++ {
		sk.Update(fmt.Sprintf("10.1.0.%d", i))
	}
	sk.Update("10.2.0.9")
	for _, n := range uss.HierarchicalHeavyHitters(sk, ".", 0.5) {
		fmt.Printf("%s (discounted %.0f)\n", n.Prefix, n.Discounted)
	}
	// Output: 10.1.0 (discounted 6)
}

func ExampleEstimate_ConfidenceInterval() {
	sk := uss.New(64, uss.WithSeed(7))
	for i := 0; i < 50000; i++ {
		sk.Update(fmt.Sprintf("key-%d", i%1000))
	}
	est := sk.SubsetSum(func(k string) bool { return strings.HasPrefix(k, "key-1") })
	lo, hi := est.ConfidenceInterval(0.95)
	fmt.Printf("interval brackets the estimate: %v\n", lo <= est.Value && est.Value <= hi)
	// Output: interval brackets the estimate: true
}
