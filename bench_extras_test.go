// Benchmarks for the extension subsystems: concurrent sharded ingestion,
// windowed rollup range queries, hierarchical heavy hitters and the SQL
// group-by evaluator.
package uss_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	uss "repro"
)

func BenchmarkShardedUpdateParallel(b *testing.B) {
	s := uss.NewSharded(16, 512, uss.WithSeed(1))
	rows := benchStream(1 << 14)
	var cursor int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&cursor, 1)
			s.Update(rows[int(i)&(len(rows)-1)])
		}
	})
}

// BenchmarkShardedUpdateBatch compares per-row against batched ingest of
// one shared stream: workers claim work off a shared atomic cursor — the
// per-row side one row at a time (per-row coordination is inherent to
// per-row ingest of a shared feed), the batched side one 512-row span at
// a time — and apply it via Update respectively UpdateBatch. Each side
// thus pays its whole per-row protocol (work claim + shard lock vs
// amortized claim + amortized lock) and nothing else differs: same
// stream, an item universe that fits capacity (4096 items over 16×512
// bins, the tracked regime a long-running sketch converges to) and
// spreads evenly across shards, so per-row sketch work is constant. One
// iteration is one row in both, making their ns/op directly comparable.
// (BenchmarkShardedUpdateParallel above keeps the historical skewed
// open-universe workload, where heavier per-row sketch work and the hot
// item's home shard dilute the protocol difference.)
func BenchmarkShardedUpdateBatch(b *testing.B) {
	rows := make([]string, 1<<14)
	for i := range rows {
		rows[i] = fmt.Sprintf("item-%d", i&4095)
	}
	mask := len(rows) - 1
	b.Run("PerRowLocked", func(b *testing.B) {
		s := uss.NewSharded(16, 512, uss.WithSeed(1))
		var cursor int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := atomic.AddInt64(&cursor, 1)
				s.Update(rows[int(i)&mask])
			}
		})
	})
	b.Run("Batched", func(b *testing.B) {
		const batch = 512
		s := uss.NewSharded(16, 512, uss.WithSeed(1))
		var cursor int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			buf := make([]string, 0, batch)
			base := 0
			for pb.Next() {
				if len(buf) == 0 {
					// Claim the next batch-sized span of the shared stream.
					base = int(atomic.AddInt64(&cursor, batch)) - batch
				}
				buf = append(buf, rows[(base+len(buf))&mask])
				if len(buf) == batch {
					s.UpdateBatch(buf)
					buf = buf[:0]
				}
			}
			s.UpdateBatch(buf)
		})
	})
}

func BenchmarkShardedSnapshot(b *testing.B) {
	s := uss.NewSharded(8, 512, uss.WithSeed(2))
	for _, r := range benchStream(1 << 16) {
		s.Update(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Snapshot(1024).Size() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkRollupUpdate(b *testing.B) {
	r, err := uss.NewRollup(uss.RollupConfig{Bins: 1024, WindowLength: 86400, Retain: 7, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	rows := benchStream(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := int64(i) * 7 % (7 * 86400)
		r.Update(rows[i&(len(rows)-1)], at)
	}
}

func BenchmarkRollupRangeQuery(b *testing.B) {
	const day = 86400
	r, err := uss.NewRollup(uss.RollupConfig{Bins: 512, WindowLength: day, Retain: 7, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	rows := benchStream(1 << 16)
	for i, row := range rows {
		r.Update(row, int64(i%(7*day)))
	}
	pred := func(s string) bool { return len(s)%2 == 0 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.SubsetSumRange(0, 7*day, pred); !ok {
			b.Fatal("range query failed")
		}
	}
}

func BenchmarkHierarchicalHeavyHitters(b *testing.B) {
	sk := uss.New(4096, uss.WithSeed(5))
	rows := benchStream(1 << 17)
	for i, r := range rows {
		// Path-structured relabeling: item-X → a.b.X hierarchy.
		sk.Update(fmt.Sprintf("net%d.host%d.%s", i%8, i%64, r))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uss.HierarchicalHeavyHitters(sk, ".", 0.01)
	}
}

func BenchmarkQueryGroupBy(b *testing.B) {
	sk := uss.New(4096, uss.WithSeed(6))
	for i := 0; i < 1<<17; i++ {
		sk.Update(fmt.Sprintf("country=c%d|device=d%d|ad=a%d", i%20, i%3, i%997))
	}
	spec := uss.QuerySpec{
		Where:   []uss.QueryFilter{{Dim: "device", In: []string{"d0", "d1"}}},
		GroupBy: []string{"country"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, _, err := uss.RunQuery(sk, spec)
		if err != nil || len(groups) == 0 {
			b.Fatal("query failed")
		}
	}
}

// BenchmarkPreparedQuery is the amortized read path: index built once,
// query compiled once, every iteration pure columnar evaluation
// (0 allocs/op, pinned by TestPreparedQueryZeroAllocs).
func BenchmarkPreparedQuery(b *testing.B) {
	sk := uss.New(4096, uss.WithSeed(6))
	for i := 0; i < 1<<17; i++ {
		sk.Update(fmt.Sprintf("country=c%d|device=d%d|ad=a%d", i%20, i%3, i%997))
	}
	p := sk.QueryEngine().Prepare(uss.QuerySpec{
		Where:   []uss.QueryFilter{{Dim: "device", In: []string{"d0", "d1"}}},
		GroupBy: []string{"country"},
	})
	if _, _, err := p.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, _, err := p.Run()
		if err != nil || len(groups) == 0 {
			b.Fatal("query failed")
		}
	}
}

// BenchmarkShardedTopK contrasts the cold path (a shard moved since the
// last read: re-merge, re-sort) against the cached path (quiescent
// sketch: version check plus a bounds-checked subslice).
func BenchmarkShardedTopK(b *testing.B) {
	build := func() *uss.ShardedSketch {
		s := uss.NewSharded(8, 512, uss.WithSeed(2))
		for _, r := range benchStream(1 << 16) {
			s.Update(r)
		}
		return s
	}
	b.Run("Cold", func(b *testing.B) {
		s := build()
		rows := benchStream(1 << 10)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Update(rows[i&(len(rows)-1)]) // bust the snapshot cache
			if len(s.TopK(100)) == 0 {
				b.Fatal("empty TopK")
			}
		}
	})
	b.Run("Cached", func(b *testing.B) {
		s := build()
		s.TopK(100) // warm the snapshot cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(s.TopK(100)) == 0 {
				b.Fatal("empty TopK")
			}
		}
	})
}

func BenchmarkDecayedUpdate(b *testing.B) {
	sk := uss.NewDecayed(1024, 0.001, uss.WithSeed(7))
	rows := benchStream(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Update(rows[i&(len(rows)-1)], float64(i)*0.01, 1)
	}
}
