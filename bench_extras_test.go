// Benchmarks for the extension subsystems: concurrent sharded ingestion,
// windowed rollup range queries, hierarchical heavy hitters and the SQL
// group-by evaluator.
package uss_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	uss "repro"
)

func BenchmarkShardedUpdateParallel(b *testing.B) {
	s := uss.NewSharded(16, 512, uss.WithSeed(1))
	rows := benchStream(1 << 14)
	var cursor int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&cursor, 1)
			s.Update(rows[int(i)&(len(rows)-1)])
		}
	})
}

func BenchmarkShardedSnapshot(b *testing.B) {
	s := uss.NewSharded(8, 512, uss.WithSeed(2))
	for _, r := range benchStream(1 << 16) {
		s.Update(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Snapshot(1024).Size() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkRollupUpdate(b *testing.B) {
	r, err := uss.NewRollup(uss.RollupConfig{Bins: 1024, WindowLength: 86400, Retain: 7, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	rows := benchStream(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := int64(i) * 7 % (7 * 86400)
		r.Update(rows[i&(len(rows)-1)], at)
	}
}

func BenchmarkRollupRangeQuery(b *testing.B) {
	const day = 86400
	r, err := uss.NewRollup(uss.RollupConfig{Bins: 512, WindowLength: day, Retain: 7, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	rows := benchStream(1 << 16)
	for i, row := range rows {
		r.Update(row, int64(i%(7*day)))
	}
	pred := func(s string) bool { return len(s)%2 == 0 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.SubsetSumRange(0, 7*day, pred); !ok {
			b.Fatal("range query failed")
		}
	}
}

func BenchmarkHierarchicalHeavyHitters(b *testing.B) {
	sk := uss.New(4096, uss.WithSeed(5))
	rows := benchStream(1 << 17)
	for i, r := range rows {
		// Path-structured relabeling: item-X → a.b.X hierarchy.
		sk.Update(fmt.Sprintf("net%d.host%d.%s", i%8, i%64, r))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uss.HierarchicalHeavyHitters(sk, ".", 0.01)
	}
}

func BenchmarkQueryGroupBy(b *testing.B) {
	sk := uss.New(4096, uss.WithSeed(6))
	for i := 0; i < 1<<17; i++ {
		sk.Update(fmt.Sprintf("country=c%d|device=d%d|ad=a%d", i%20, i%3, i%997))
	}
	spec := uss.QuerySpec{
		Where:   []uss.QueryFilter{{Dim: "device", In: []string{"d0", "d1"}}},
		GroupBy: []string{"country"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, _, err := uss.RunQuery(sk, spec)
		if err != nil || len(groups) == 0 {
			b.Fatal("query failed")
		}
	}
}

func BenchmarkDecayedUpdate(b *testing.B) {
	sk := uss.NewDecayed(1024, 0.001, uss.WithSeed(7))
	rows := benchStream(1 << 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Update(rows[i&(len(rows)-1)], float64(i)*0.01, 1)
	}
}
