package uss

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/rollup"
	"repro/internal/wire"
)

// RollupConfig parameterizes a windowed rollup; see NewRollup.
type RollupConfig struct {
	// Bins is the sketch size per window and for merged range queries.
	Bins int
	// WindowLength is one window's duration in the caller's time unit
	// (86400 for daily windows over Unix-second timestamps).
	WindowLength int64
	// Retain keeps only the most recent windows (0 = keep all).
	Retain int
	// Seed fixes the randomness (0 = random).
	Seed int64
}

// Rollup maintains one Unbiased Space Saving sketch per time window and
// answers subset sums over arbitrary ranges of recent windows by merging
// them unbiasedly — the paper's §5.5 use case ("sketches for clicks may be
// computed per day, but the final machine learning feature may combine the
// last 7 days"). Range queries are maintained incrementally: closed
// windows are merged once into cached segments and revalidated by version,
// so polling a trailing-window feature between row arrivals re-merges only
// the live window's delta instead of every window (see internal/rollup).
// Not safe for concurrent use.
type Rollup struct {
	inner *rollup.Rollup
	cfg   RollupConfig
}

// NewRollup validates cfg and returns an empty rollup.
func NewRollup(cfg RollupConfig) (*Rollup, error) {
	inner, err := rollup.New(rollup.Config{
		Bins:         cfg.Bins,
		WindowLength: cfg.WindowLength,
		Retain:       cfg.Retain,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Rollup{inner: inner, cfg: cfg}, nil
}

// Config returns the configuration the rollup was built with, as passed to
// NewRollup — window geometry for callers (such as a sketch server's info
// endpoint) that need to describe the rollup without tracking its
// construction parameters themselves.
func (r *Rollup) Config() RollupConfig { return r.cfg }

// Update routes one row with timestamp at into its window. It reports
// false when the row's window has already been evicted (late data past the
// retention horizon is dropped).
func (r *Rollup) Update(item string, at int64) bool { return r.inner.Update(item, at) }

// SubsetSumRange estimates the subset sum over rows in windows
// intersecting [from, to]; ok is false when no retained window intersects.
func (r *Rollup) SubsetSumRange(from, to int64, pred func(string) bool) (est Estimate, ok bool) {
	return r.inner.SubsetSumRange(from, to, pred)
}

// TopKRange returns the k heaviest items over the merged range in
// descending count order (ties broken by item label), selected with the
// shared O(n log k) heap used by every other top-k path.
func (r *Rollup) TopKRange(from, to int64, k int) []Bin {
	return r.inner.TopKRange(from, to, k)
}

// TotalRange returns the exact row count over the covered windows.
func (r *Rollup) TotalRange(from, to int64) float64 { return r.inner.TotalRange(from, to) }

// Windows returns the retained window start times, ascending.
func (r *Rollup) Windows() []int64 { return r.inner.Windows() }

// DroppedRows counts rows that arrived for already-evicted windows.
func (r *Rollup) DroppedRows() int64 { return r.inner.DroppedRows() }

// AppendWindows appends every retained window's exact state to dst — a
// varint window start followed by a wire-v2 frame of the window's bins,
// in ascending window order — and returns the extended buffer. It is the
// durability checkpoint encoding: RestoreWindows rebuilds a rollup with
// identical per-window state, so range queries over the restored rollup
// answer bit for bit. Like every Rollup method, not safe for concurrent
// use with updates.
func (r *Rollup) AppendWindows(dst []byte) ([]byte, error) {
	var scratch []core.Bin
	for _, start := range r.inner.Windows() {
		sk := r.inner.Window(start)
		scratch = sk.AppendBins(scratch[:0])
		dst = binary.AppendVarint(dst, start)
		var err error
		dst, err = wire.AppendSnapshot(dst, wire.Header{
			Capacity: sk.Capacity(),
			Rows:     sk.Rows(),
		}, scratch)
		if err != nil {
			return nil, fmt.Errorf("uss: encode rollup window %d: %w", start, err)
		}
	}
	return dst, nil
}

// RestoreWindows loads an AppendWindows encoding into an empty rollup
// (one with no retained windows). Window starts must align to the
// rollup's window length and frame capacities must match its per-window
// bin budget; windows past the configured retention are evicted exactly
// as live rows for them would be.
func (r *Rollup) RestoreWindows(data []byte) error {
	if len(r.inner.Windows()) != 0 {
		return fmt.Errorf("uss: restore windows into a non-empty rollup")
	}
	for len(data) > 0 {
		start, w := binary.Varint(data)
		if w <= 0 {
			return fmt.Errorf("uss: restore windows: bad window start varint")
		}
		data = data[w:]
		n, err := wire.FrameLen(data)
		if err != nil {
			return fmt.Errorf("uss: restore window %d: %w", start, err)
		}
		if n > len(data) {
			return fmt.Errorf("uss: restore window %d: frame truncated (%d of %d bytes)", start, len(data), n)
		}
		h, bins, err := wire.Decode(data[:n])
		if err != nil {
			return fmt.Errorf("uss: restore window %d: %w", start, err)
		}
		if h.Weighted {
			return fmt.Errorf("uss: restore window %d: weighted frame in a rollup checkpoint", start)
		}
		if h.Capacity != r.cfg.Bins {
			return fmt.Errorf("uss: restore window %d: capacity %d, want %d", start, h.Capacity, r.cfg.Bins)
		}
		if err := r.inner.RestoreWindow(start, bins, h.Rows); err != nil {
			return fmt.Errorf("uss: %w", err)
		}
		data = data[n:]
	}
	return nil
}
