package uss

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/wire"
)

// Serialization speaks two formats:
//
//   - v2 (current): the length-prefixed binary format of internal/wire —
//     fixed-width header, varint counts, all item strings in one arena.
//     MarshalBinary/AppendBinary always emit v2; it is what the
//     distributed pre-aggregation pipeline (sketch per shard per day,
//     shipped and merged at query time) runs on.
//   - v1 (legacy): the gob-based format earlier releases wrote.
//     UnmarshalBinary and DecodeBins detect it by the missing v2 magic and
//     still decode it, so snapshots on disk keep loading.
//
// Restores go through the direct-state constructors (core.RestoreUnit,
// core.RestoreWeighted) rather than replaying Update per bin: no randomness
// is drawn, zero-count bins keep their identity, and counts are validated
// as non-negative and finite on the way in.

// snapshot is the legacy v1 gob wire format shared by Sketch and
// WeightedSketch, kept only for decode fallback.
type snapshot struct {
	Version       int
	Capacity      int
	Deterministic bool
	Weighted      bool
	Rows          int64
	Bins          []Bin
}

const gobCodecVersion = 1

// SnapshotInfo describes a serialized sketch without restoring it.
type SnapshotInfo struct {
	// Version is the snapshot's wire format: 1 (legacy gob) or 2 (binary).
	Version int
	// Weighted marks a WeightedSketch snapshot.
	Weighted bool
	// Deterministic marks classic (biased) Space Saving mode.
	Deterministic bool
	// Capacity is the sketch's bin budget m.
	Capacity int
	// Rows is the recorded row count (0 in v1 weighted snapshots, which
	// never carried it, and in bare-bins snapshots from EncodeBins).
	Rows int64
	// NumBins is the number of serialized bins.
	NumBins int
}

// MarshalBinary serializes the sketch (bins, capacity, mode) in the v2
// binary format. The random source is not serialized; a restored sketch
// draws fresh randomness. It reads only sketch state, so concurrent
// snapshots of a quiescent sketch stay safe; for a steady-state encoder
// that wants the allocation-free path, use AppendBinary with a reused
// buffer.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	return s.encodeSnapshot(nil, s.core.AppendBins(nil))
}

// AppendBinary appends the v2 serialization of the sketch to dst and
// returns the extended buffer. Encoding into a caller-reused buffer is
// allocation-free in steady state: the bin scratch is owned by the sketch
// and reused, which — unlike MarshalBinary — makes this a mutating call.
// Like the sketch itself, not safe for concurrent use.
func (s *Sketch) AppendBinary(dst []byte) ([]byte, error) {
	s.enc = s.core.AppendBins(s.enc[:0])
	return s.encodeSnapshot(dst, s.enc)
}

func (s *Sketch) encodeSnapshot(dst []byte, bins []core.Bin) ([]byte, error) {
	out, err := wire.AppendSnapshot(dst, wire.Header{
		Deterministic: s.Deterministic(),
		Capacity:      s.Capacity(),
		Rows:          s.Rows(),
	}, bins)
	if err != nil {
		return nil, fmt.Errorf("uss: encode sketch: %w", err)
	}
	return out, nil
}

// decodeAny decodes either wire format into the v2 header shape plus the
// bin list — the one dispatch every decode entry point shares. Errors are
// unprefixed; callers add their context.
func decodeAny(data []byte) (wire.Header, []Bin, error) {
	if wire.IsWire(data) {
		return wire.Decode(data)
	}
	snap, err := decodeGobSnapshot(data)
	if err != nil {
		return wire.Header{}, nil, err
	}
	return wire.Header{
		Weighted:      snap.Weighted,
		Deterministic: snap.Deterministic,
		Capacity:      snap.Capacity,
		Rows:          snap.Rows,
		NumBins:       len(snap.Bins),
	}, snap.Bins, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary, replacing
// the receiver's state. Both the current v2 binary format and legacy v1
// gob snapshots decode; the restored sketch draws fresh randomness.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	h, bins, err := decodeAny(data)
	if err != nil {
		return fmt.Errorf("uss: decode sketch: %w", err)
	}
	if h.Weighted {
		return fmt.Errorf("uss: snapshot holds a weighted sketch; unmarshal into WeightedSketch")
	}
	mode := core.Unbiased
	if h.Deterministic {
		mode = core.Deterministic
	}
	rng := rand.New(rand.NewSource(rand.Int63()))
	restored := core.New(h.Capacity, mode, rng)
	if err := core.RestoreUnit(restored, bins, h.Rows); err != nil {
		return fmt.Errorf("uss: restore sketch: %w", err)
	}
	s.core = restored
	s.qe = nil // any cached query engine is bound to the old core
	return nil
}

// MarshalBinary serializes the weighted sketch in the v2 binary format.
// Read-only, like (*Sketch).MarshalBinary.
func (s *WeightedSketch) MarshalBinary() ([]byte, error) {
	return s.encodeSnapshot(nil, s.core.AppendBins(nil))
}

// AppendBinary appends the v2 serialization of the weighted sketch to dst
// and returns the extended buffer; see (*Sketch).AppendBinary (mutating:
// it reuses the sketch-owned bin scratch). Counts must be non-negative and
// finite — a sketch driven negative through UpdateSigned does not
// serialize.
func (s *WeightedSketch) AppendBinary(dst []byte) ([]byte, error) {
	s.enc = s.core.AppendBins(s.enc[:0])
	return s.encodeSnapshot(dst, s.enc)
}

func (s *WeightedSketch) encodeSnapshot(dst []byte, bins []core.Bin) ([]byte, error) {
	out, err := wire.AppendSnapshot(dst, wire.Header{
		Weighted: true,
		Capacity: s.Capacity(),
		Rows:     s.core.Rows(),
	}, bins)
	if err != nil {
		return nil, fmt.Errorf("uss: encode weighted sketch: %w", err)
	}
	return out, nil
}

// UnmarshalBinary restores a weighted sketch from a v2 or legacy v1
// snapshot. Unit-sketch snapshots load fine (their integral counts become
// weights). The restore loads bin state directly — zero-count bins keep
// their identity rather than being dropped by an Update replay — and
// rejects negative or non-finite counts.
func (s *WeightedSketch) UnmarshalBinary(data []byte) error {
	h, bins, err := decodeAny(data)
	if err != nil {
		return fmt.Errorf("uss: decode weighted sketch: %w", err)
	}
	rng := rand.New(rand.NewSource(rand.Int63()))
	w := core.NewWeighted(h.Capacity, rng)
	if err := core.RestoreWeighted(w, bins, h.Rows); err != nil {
		return fmt.Errorf("uss: restore weighted sketch: %w", err)
	}
	s.core = w
	s.qe = nil // any cached query engine is bound to the old core
	return nil
}

// DecodeBins extracts just the bin list from a serialized sketch (v2 or
// legacy v1), skipping sketch materialization entirely. It is the decode
// half of the merge-from-wire fast path: decode each shipped snapshot's
// bins and hand the lists straight to MergeBins — no heap rebuild, no
// Update replay, no per-snapshot sketch. Counts are validated non-negative
// and finite.
//
// Arena-backed strings: for a v2 snapshot every returned bin's Item is a
// zero-copy slice of one shared arena string (that is what makes the
// decode two allocations total). Retaining any single bin therefore pins
// the whole arena — all item bytes of the snapshot — in memory. That is
// the right trade for the merge pipeline, which consumes every bin anyway;
// callers that keep only a few bins long-term should clone the items they
// retain. The returned bins never alias the input data slice, which may be
// reused immediately.
func DecodeBins(data []byte) ([]Bin, error) {
	_, bins, err := decodeAny(data)
	if err != nil {
		return nil, fmt.Errorf("uss: decode bins: %w", err)
	}
	// The v2 decoder validates counts inline; the gob path does not, so
	// check here — the cost is trivial next to the decode.
	for _, b := range bins {
		if b.Count < 0 || math.IsNaN(b.Count) || math.IsInf(b.Count, 0) {
			return nil, fmt.Errorf("uss: decode bins: bin %q has invalid count %v", b.Item, b.Count)
		}
	}
	return bins, nil
}

// EncodeBins serializes a bare bin list as a v2 weighted snapshot of
// capacity m — the encode half of the merge-from-wire fast path: reduce k
// decoded snapshots with MergeBins and ship the result without ever
// materializing a sketch. The snapshot restores into a WeightedSketch
// (merged counts need not stay integral); zero-count bins keep their
// identity. Counts must be non-negative and finite, len(bins) ≤ m. The
// header's row count is 0 — bare bins carry no processed-rows history, and
// fabricating one would misreport what InspectSnapshot shows.
func EncodeBins(m int, bins []Bin) ([]byte, error) {
	out, err := wire.AppendSnapshot(nil, wire.Header{
		Weighted: true,
		Capacity: m,
	}, bins)
	if err != nil {
		return nil, fmt.Errorf("uss: encode bins: %w", err)
	}
	return out, nil
}

// InspectSnapshot reports a serialized sketch's format version and header
// metadata without restoring it. v2 headers decode in constant time and
// touch no payload; v1 gob snapshots are fully decoded to read their
// fields.
func InspectSnapshot(data []byte) (SnapshotInfo, error) {
	if wire.IsWire(data) {
		h, err := wire.DecodeHeader(data)
		if err != nil {
			return SnapshotInfo{}, fmt.Errorf("uss: inspect snapshot: %w", err)
		}
		return SnapshotInfo{
			Version:       wire.Version,
			Weighted:      h.Weighted,
			Deterministic: h.Deterministic,
			Capacity:      h.Capacity,
			Rows:          h.Rows,
			NumBins:       h.NumBins,
		}, nil
	}
	snap, err := decodeGobSnapshot(data)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("uss: inspect snapshot: %w", err)
	}
	return SnapshotInfo{
		Version:       snap.Version,
		Weighted:      snap.Weighted,
		Deterministic: snap.Deterministic,
		Capacity:      snap.Capacity,
		Rows:          snap.Rows,
		NumBins:       len(snap.Bins),
	}, nil
}

// decodeGobSnapshot parses a legacy v1 gob snapshot. Errors carry no
// "uss:" prefix; the public entry points add their own context.
func decodeGobSnapshot(data []byte) (snapshot, error) {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decode v1 snapshot: %w", err)
	}
	if snap.Version != gobCodecVersion {
		return snap, fmt.Errorf("snapshot version %d, want %d", snap.Version, gobCodecVersion)
	}
	if snap.Capacity <= 0 {
		return snap, fmt.Errorf("snapshot capacity %d", snap.Capacity)
	}
	return snap, nil
}
