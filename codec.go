package uss

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// snapshot is the wire format shared by Sketch and WeightedSketch. Version
// guards future layout changes.
type snapshot struct {
	Version       int
	Capacity      int
	Deterministic bool
	Weighted      bool
	Rows          int64
	Bins          []Bin
}

const codecVersion = 1

// MarshalBinary serializes the sketch (bins, capacity, mode). The random
// source is not serialized; a restored sketch draws fresh randomness.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	snap := snapshot{
		Version:       codecVersion,
		Capacity:      s.Capacity(),
		Deterministic: s.Deterministic(),
		Rows:          s.Rows(),
		Bins:          s.Bins(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("uss: encode sketch: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary, replacing
// the receiver's state. Options on the receiver (its random source) are
// kept.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	snap, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	if snap.Weighted {
		return fmt.Errorf("uss: snapshot holds a weighted sketch; unmarshal into WeightedSketch")
	}
	mode := core.Unbiased
	if snap.Deterministic {
		mode = core.Deterministic
	}
	rng := rand.New(rand.NewSource(rand.Int63()))
	restored := core.New(snap.Capacity, mode, rng)
	if err := core.RestoreUnit(restored, snap.Bins, snap.Rows); err != nil {
		return fmt.Errorf("uss: restore sketch: %w", err)
	}
	s.core = restored
	s.qe = nil // any cached query engine is bound to the old core
	return nil
}

// MarshalBinary serializes the weighted sketch.
func (s *WeightedSketch) MarshalBinary() ([]byte, error) {
	snap := snapshot{
		Version:  codecVersion,
		Capacity: s.Capacity(),
		Weighted: true,
		Bins:     s.Bins(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("uss: encode weighted sketch: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a weighted sketch. Unit-sketch snapshots load
// fine (their integral counts become weights).
func (s *WeightedSketch) UnmarshalBinary(data []byte) error {
	snap, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(rand.Int63()))
	w := core.NewWeighted(snap.Capacity, rng)
	for _, b := range snap.Bins {
		if b.Count > 0 {
			w.Update(b.Item, b.Count)
		}
	}
	s.core = w
	s.qe = nil // any cached query engine is bound to the old core
	return nil
}

func decodeSnapshot(data []byte) (snapshot, error) {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return snap, fmt.Errorf("uss: decode sketch: %w", err)
	}
	if snap.Version != codecVersion {
		return snap, fmt.Errorf("uss: snapshot version %d, want %d", snap.Version, codecVersion)
	}
	if snap.Capacity <= 0 {
		return snap, fmt.Errorf("uss: snapshot capacity %d", snap.Capacity)
	}
	return snap, nil
}
