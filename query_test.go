package uss_test

import (
	"fmt"
	"testing"

	uss "repro"
)

func TestRunQueryPublic(t *testing.T) {
	sk := uss.New(256, uss.WithSeed(2))
	for i := 0; i < 3000; i++ {
		country := []string{"us", "de", "jp"}[i%3]
		device := []string{"ios", "android"}[i%2]
		sk.Update(fmt.Sprintf("country=%s|device=%s", country, device))
	}
	groups, skipped, err := uss.RunQuery(sk, uss.QuerySpec{
		Where:   []uss.QueryFilter{uss.WhereEq("device", "ios")},
		GroupBy: []string{"country"},
	})
	if err != nil || skipped != 0 {
		t.Fatalf("err=%v skipped=%d", err, skipped)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	var total float64
	for _, g := range groups {
		total += g.Sum.Value
	}
	if total != 1500 { // half the rows are ios
		t.Errorf("ios total = %v, want 1500", total)
	}
	lo, hi := groups[0].Sum.ConfidenceInterval(0.95)
	if lo > groups[0].Sum.Value || hi < groups[0].Sum.Value {
		t.Error("CI does not bracket the estimate")
	}
}

func TestRunQueryWeightedPublic(t *testing.T) {
	sk := uss.NewWeighted(64, uss.WithSeed(3))
	sk.Update("region=eu|tier=gold", 10)
	sk.Update("region=eu|tier=basic", 4)
	sk.Update("region=us|tier=gold", 7)
	groups, _, err := uss.RunQueryWeighted(sk, uss.QuerySpec{GroupBy: []string{"region"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || groups[0].Sum.Value != 14 || groups[1].Sum.Value != 7 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestGuaranteedFrequentPublic(t *testing.T) {
	sk := uss.New(16, uss.WithSeed(4))
	for i := 0; i < 5000; i++ {
		sk.Update("dominant")
	}
	for i := 0; i < 5000; i++ {
		sk.Update(fmt.Sprintf("tail-%d", i%2000))
	}
	g := sk.GuaranteedFrequent(0.3)
	if len(g) != 1 || g[0].Item != "dominant" {
		t.Fatalf("GuaranteedFrequent = %v", g)
	}
	// Guaranteed set is a subset of FrequentItems at the same threshold.
	fi := map[string]bool{}
	for _, b := range sk.FrequentItems(0.3) {
		fi[b.Item] = true
	}
	for _, b := range g {
		if !fi[b.Item] {
			t.Errorf("guaranteed item %s missing from FrequentItems", b.Item)
		}
	}
	if got := sk.GuaranteedFrequent(0.99); len(got) != 0 {
		t.Errorf("GuaranteedFrequent(0.99) = %v", got)
	}
	empty := uss.New(4, uss.WithSeed(1))
	if got := empty.GuaranteedFrequent(0.1); got != nil {
		t.Errorf("empty sketch → %v", got)
	}
}
