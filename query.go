package uss

import (
	"repro/internal/query"
)

// This file exposes the SQL-template evaluator of §2 of the paper:
//
//	SELECT sum(1), dimensions FROM sketch WHERE filters GROUP BY dimensions
//
// over sketches whose item labels encode dimension tuples as
// "dim=value|dim=value" (the natural encoding for composite units of
// analysis such as (advertiser, ad) or (src, dst)).

// QueryFilter is one WHERE condition: the dimension must take one of the
// listed values. Filters AND together; values within a filter OR.
type QueryFilter = query.Filter

// QueryGroup is one output row of RunQuery.
type QueryGroup = query.Group

// QuerySpec describes a query: optional filters and optional group-by
// dimensions (empty group-by returns one global aggregate).
type QuerySpec = query.Query

// WhereEq builds a single-value equality filter.
func WhereEq(dim, value string) QueryFilter { return query.Eq(dim, value) }

// RunQuery evaluates the query against a unit sketch. Labels that do not
// parse as dimension tuples are skipped and tallied in skipped. Groups
// carry unbiased estimated sums with equation-5 standard errors and are
// sorted by descending estimate.
func RunQuery(s *Sketch, q QuerySpec) (groups []QueryGroup, skipped int, err error) {
	return query.Run(s.core, q)
}

// RunQueryWeighted evaluates the query against a weighted sketch.
func RunQueryWeighted(s *WeightedSketch, q QuerySpec) (groups []QueryGroup, skipped int, err error) {
	return query.Run(s.core, q)
}

// GuaranteedFrequent returns the bins certainly above frequency phi: their
// deterministic lower bound count − MinCount exceeds phi·Total. See
// FrequentItems for the inclusive (recall-oriented) variant.
func (s *Sketch) GuaranteedFrequent(phi float64) []Bin { return s.core.GuaranteedFrequent(phi) }
