package uss

import (
	"maps"

	"repro/internal/query"
)

// This file exposes the SQL-template evaluator of §2 of the paper:
//
//	SELECT sum(1), dimensions FROM sketch WHERE filters GROUP BY dimensions
//
// over sketches whose item labels encode dimension tuples as
// "dim=value|dim=value" (the natural encoding for composite units of
// analysis such as (advertiser, ad) or (src, dst)).
//
// Evaluation is columnar (internal/labelidx): labels are parsed once per
// sketch epoch into dictionary-encoded integer columns, revalidated by
// sketch version counters, so repeated queries against an unchanged
// sketch never re-parse. One-shot helpers (RunQuery, RunQueryWeighted,
// ShardedSketch.RunQuery) return fresh result slices; the QueryEngine /
// PreparedQuery API additionally amortizes per-query compilation and
// output buffers, making repeat evaluation allocation-free.

// QueryFilter is one WHERE condition: the dimension must take one of the
// listed values. Filters AND together; values within a filter OR.
type QueryFilter = query.Filter

// QueryGroup is one output row of RunQuery.
type QueryGroup = query.Group

// QuerySpec describes a query: optional filters and optional group-by
// dimensions (empty group-by returns one global aggregate).
type QuerySpec = query.Query

// WhereEq builds a single-value equality filter.
func WhereEq(dim, value string) QueryFilter { return query.Eq(dim, value) }

// copyGroups detaches engine-owned result buffers — the slice and each
// group's Key map — before they cross an API boundary whose callers may
// retain or mutate results across queries.
func copyGroups(groups []QueryGroup) []QueryGroup {
	if len(groups) == 0 {
		return nil
	}
	out := append([]QueryGroup(nil), groups...)
	for i := range out {
		out[i].Key = maps.Clone(out[i].Key)
	}
	return out
}

// RunQuery evaluates the query against a unit sketch. Labels that do not
// parse as dimension tuples are skipped and tallied in skipped. Groups
// carry unbiased estimated sums with equation-5 standard errors and are
// sorted by descending estimate.
//
// The sketch's label index is cached and revalidated by version, so
// repeated queries against an unchanged sketch skip all label parsing.
// Concurrent RunQuery calls on one sketch serialize on an internal mutex
// and are safe with each other (though not with concurrent updates —
// the sketch itself is single-writer).
func RunQuery(s *Sketch, q QuerySpec) (groups []QueryGroup, skipped int, err error) {
	s.queryMu.Lock()
	defer s.queryMu.Unlock()
	if s.qe == nil {
		s.qe = query.NewEngine(s.core)
	}
	g, skipped, err := s.qe.Run(q)
	return copyGroups(g), skipped, err
}

// RunQueryWeighted evaluates the query against a weighted sketch, with
// the same caching and concurrency behaviour as RunQuery.
func RunQueryWeighted(s *WeightedSketch, q QuerySpec) (groups []QueryGroup, skipped int, err error) {
	s.queryMu.Lock()
	defer s.queryMu.Unlock()
	if s.qe == nil {
		s.qe = query.NewEngine(s.core)
	}
	g, skipped, err := s.qe.Run(q)
	return copyGroups(g), skipped, err
}

// QueryEngine amortizes the columnar label index over many queries
// against one sketch. The index rebuilds only when the sketch's version
// counter moves (for ShardedSketch, when a shard mutates); on a quiescent
// sketch every query runs on already-parsed integer columns.
//
// A QueryEngine is owned by one goroutine at a time. Concurrent readers
// of a ShardedSketch should each hold their own engine — the underlying
// snapshot and index are shared, so extra engines cost almost nothing.
type QueryEngine struct {
	eng *query.Engine
}

// QueryEngine returns an engine over this sketch. The engine reads the
// sketch's live state on every query (revalidated by version); it must
// only be used by one goroutine at a time, like the sketch itself.
func (s *Sketch) QueryEngine() *QueryEngine {
	return &QueryEngine{eng: query.NewEngine(s.core)}
}

// QueryEngine returns an engine over this weighted sketch.
func (s *WeightedSketch) QueryEngine() *QueryEngine {
	return &QueryEngine{eng: query.NewEngine(s.core)}
}

// Run evaluates q through the engine, returning a fresh result slice.
func (e *QueryEngine) Run(q QuerySpec) (groups []QueryGroup, skipped int, err error) {
	g, skipped, err := e.eng.Run(q)
	return copyGroups(g), skipped, err
}

// Prepare compiles q against the engine for repeated evaluation. The
// compilation (filter bitmaps, packed group-by layout, output buffers) is
// reused across runs and recompiled automatically if the sketch changes.
func (e *QueryEngine) Prepare(q QuerySpec) *PreparedQuery {
	return &PreparedQuery{p: e.eng.Prepare(q)}
}

// PreparedQuery is a compiled query bound to one engine. Repeated Run
// calls against an unchanged sketch are allocation-free: the result slice
// and its Key maps are owned by the PreparedQuery and reused by the next
// Run, so callers that retain results across runs must copy them.
type PreparedQuery struct {
	p *query.Prepared
}

// Run evaluates the prepared query against the sketch's current state.
func (p *PreparedQuery) Run() (groups []QueryGroup, skipped int, err error) {
	return p.p.Run()
}

// GuaranteedFrequent returns the bins certainly above frequency phi: their
// deterministic lower bound count − MinCount exceeds phi·Total. See
// FrequentItems for the inclusive (recall-oriented) variant.
func (s *Sketch) GuaranteedFrequent(phi float64) []Bin { return s.core.GuaranteedFrequent(phi) }
