package uss_test

import (
	"fmt"
	"math"
	"testing"

	uss "repro"
)

// Tests for the PR-2 read path: the columnar query engine, the versioned
// sharded snapshot cache and the SnapshotWith variant.

func readPathSketch() *uss.ShardedSketch {
	s := uss.NewSharded(4, 128, uss.WithSeed(23))
	for i := 0; i < 3000; i++ {
		country := []string{"us", "de", "jp"}[i%3]
		device := []string{"ios", "android"}[i%2]
		s.Update(fmt.Sprintf("country=%s|device=%s", country, device))
	}
	return s
}

func TestShardedRunQuery(t *testing.T) {
	s := readPathSketch()
	groups, skipped, err := s.RunQuery(uss.QuerySpec{
		Where:   []uss.QueryFilter{uss.WhereEq("device", "ios")},
		GroupBy: []string{"country"},
	})
	if err != nil || skipped != 0 {
		t.Fatalf("err=%v skipped=%d", err, skipped)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	var total float64
	for _, g := range groups {
		total += g.Sum.Value
	}
	// 6 distinct tuples in 512 bins: everything tracked exactly.
	if total != 1500 {
		t.Errorf("ios total = %v, want 1500", total)
	}
	// The sharded result must agree with querying a snapshot the long way.
	long, _, err := uss.RunQueryWeighted(s.Snapshot(0), uss.QuerySpec{
		Where:   []uss.QueryFilter{uss.WhereEq("device", "ios")},
		GroupBy: []string{"country"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(long) != len(groups) {
		t.Fatalf("snapshot query %d groups, sharded %d", len(long), len(groups))
	}
	for i := range long {
		if long[i].KeyString() != groups[i].KeyString() || long[i].Sum.Value != groups[i].Sum.Value {
			t.Errorf("group %d: sharded %q=%v, snapshot %q=%v",
				i, groups[i].KeyString(), groups[i].Sum.Value, long[i].KeyString(), long[i].Sum.Value)
		}
	}
}

// TestShardedRunQuerySeesUpdates: the cached snapshot must be invalidated
// by any shard mutation, through every read entry point.
func TestShardedRunQuerySeesUpdates(t *testing.T) {
	s := readPathSketch()
	spec := uss.QuerySpec{GroupBy: []string{"country"}}
	before, _, _ := s.RunQuery(spec)
	for i := 0; i < 600; i++ {
		s.Update("country=br|device=ios")
	}
	after, _, _ := s.RunQuery(spec)
	if len(after) != len(before)+1 {
		t.Fatalf("new group not visible: before %d, after %d groups", len(before), len(after))
	}
	found := false
	for _, g := range after {
		if g.KeyString() == "country=br" && g.Sum.Value == 600 {
			found = true
		}
	}
	if !found {
		t.Errorf("country=br missing or wrong: %v", after)
	}
	if snap := s.Snapshot(0); math.Abs(snap.Total()-3600) > 1e-9 {
		t.Errorf("snapshot total %v, want 3600", snap.Total())
	}
}

// TestPreparedQueryTracksSketch: a prepared query is a live view, not a
// point-in-time copy.
func TestPreparedQueryTracksSketch(t *testing.T) {
	sk := uss.New(256, uss.WithSeed(29))
	sk.Update("k=a")
	p := sk.QueryEngine().Prepare(uss.QuerySpec{GroupBy: []string{"k"}})
	groups, _, _ := p.Run()
	if len(groups) != 1 || groups[0].Sum.Value != 1 {
		t.Fatalf("first run: %v", groups)
	}
	sk.Update("k=a")
	sk.Update("k=b")
	groups, _, _ = p.Run()
	if len(groups) != 2 || groups[0].Sum.Value != 2 || groups[0].KeyString() != "k=a" {
		t.Fatalf("post-update run: %v", groups)
	}
}

func TestSnapshotWithReductions(t *testing.T) {
	s := uss.NewSharded(4, 64, uss.WithSeed(31))
	for i := 0; i < 20000; i++ {
		s.Update(fmt.Sprintf("item-%d", i%1000))
	}
	for _, red := range []uss.Reduction{uss.Pairwise, uss.Pivotal} {
		snap := s.SnapshotWith(16, red)
		if snap.Size() > 16 || snap.Capacity() != 16 {
			t.Errorf("%v: size %d capacity %d", red, snap.Size(), snap.Capacity())
		}
		// Unbiased reductions preserve the total exactly (pairwise) or to
		// floating-point error (pivotal's HT adjustment).
		if math.Abs(snap.Total()-20000) > 1e-6 {
			t.Errorf("%v: total %v, want 20000", red, snap.Total())
		}
	}
	mg := s.SnapshotWith(16, uss.MisraGries)
	if mg.Size() > 16 {
		t.Errorf("misra-gries: size %d", mg.Size())
	}
	if mg.Total() > 20000 {
		t.Errorf("misra-gries total %v exceeds input mass", mg.Total())
	}
	// A full-size snapshot is exact regardless of reduction.
	if full := s.SnapshotWith(0, uss.Pairwise); math.Abs(full.Total()-20000) > 1e-9 {
		t.Errorf("full snapshot total %v", full.Total())
	}
}

// TestSnapshotIndependent: mutating a returned snapshot must not corrupt
// the shared cache serving later reads.
func TestSnapshotIndependent(t *testing.T) {
	s := readPathSketch()
	snap := s.Snapshot(0)
	for i := 0; i < 5000; i++ {
		snap.Update("country=zz|device=tv", 1)
	}
	top := s.TopK(6)
	for _, b := range top {
		if b.Item == "country=zz|device=tv" {
			t.Fatal("snapshot mutation leaked into the sharded sketch's cache")
		}
	}
	if s.Rows() != 3000 {
		t.Errorf("Rows = %d", s.Rows())
	}
}
