package uss_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	uss "repro"
)

func TestHierarchicalHeavyHittersPublic(t *testing.T) {
	sk := uss.New(128, uss.WithSeed(6))
	rng := rand.New(rand.NewSource(6))
	// One hot host plus one subnet that is only hot in aggregate.
	for i := 0; i < 30000; i++ {
		switch {
		case i%10 < 3:
			sk.Update("10.9.0.1")
		case i%10 < 6:
			sk.Update(fmt.Sprintf("172.16.4.%d", rng.Intn(200)))
		default:
			sk.Update(fmt.Sprintf("10.%d.%d.%d", rng.Intn(30), rng.Intn(30), rng.Intn(30)))
		}
	}
	hhh := uss.HierarchicalHeavyHitters(sk, ".", 0.1)
	var gotHost, gotSubnet bool
	for _, n := range hhh {
		if n.Prefix == "10.9.0.1" {
			gotHost = true
			if n.Count < 0.25*sk.Total() || n.Count > 0.35*sk.Total() {
				t.Errorf("hot host count %v of total %v", n.Count, sk.Total())
			}
		}
		if strings.HasPrefix(n.Prefix, "172.16.4") && n.Depth <= 3 {
			gotSubnet = true
		}
	}
	if !gotHost || !gotSubnet {
		t.Errorf("HHH missing host(%v)/subnet(%v): %v", gotHost, gotSubnet, hhh)
	}

	lvl := uss.HierarchyLevel(sk, ".", 1)
	if len(lvl) < 2 {
		t.Fatalf("level-1 nodes: %v", lvl)
	}
	var sum float64
	for _, n := range lvl {
		sum += n.Count
	}
	if diff := sum - sk.Total(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("level-1 sums to %v, total %v", sum, sk.Total())
	}
}

func TestWeightedHierarchicalHeavyHitters(t *testing.T) {
	sk := uss.NewWeighted(64, uss.WithSeed(7))
	for i := 0; i < 500; i++ {
		sk.Update("a.b", 10)
		sk.Update(fmt.Sprintf("c.%d", i%40), 1)
	}
	hhh := uss.WeightedHierarchicalHeavyHitters(sk, ".", 0.3)
	found := false
	for _, n := range hhh {
		if n.Prefix == "a.b" {
			found = true
		}
	}
	if !found {
		t.Errorf("weighted HHH missed a.b: %v", hhh)
	}
}

func TestRollupPublicFlow(t *testing.T) {
	const day = 86400
	r, err := uss.NewRollup(uss.RollupConfig{Bins: 128, WindowLength: day, Retain: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	truth := map[string]float64{}
	for d := 0; d < 9; d++ {
		for i := 0; i < 2000; i++ {
			item := fmt.Sprintf("ad-%d", rng.Intn(80))
			at := int64(d*day + rng.Intn(day))
			r.Update(item, at)
			if d >= 2 {
				truth[item]++
			}
		}
	}
	if got := len(r.Windows()); got != 7 {
		t.Fatalf("retained %d windows", got)
	}
	// Range over days 2..8 (everything retained).
	pred := func(s string) bool { return strings.HasSuffix(s, "3") }
	var want float64
	for k, v := range truth {
		if pred(k) {
			want += v
		}
	}
	est, ok := r.SubsetSumRange(2*day, 9*day-1, pred)
	if !ok {
		t.Fatal("range query failed")
	}
	if est.Value < 0.5*want || est.Value > 1.5*want {
		t.Errorf("range estimate %v, truth %v", est.Value, want)
	}
	if tot := r.TotalRange(2*day, 9*day-1); tot != 14000 {
		t.Errorf("TotalRange = %v, want 14000", tot)
	}
	top := r.TopKRange(2*day, 9*day-1, 5)
	if len(top) != 5 {
		t.Fatalf("TopKRange = %d bins", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("TopKRange not descending: %v", top)
		}
	}
	// Late row for an evicted window.
	if r.Update("late", 0) {
		t.Error("late row accepted")
	}
	if r.DroppedRows() != 1 {
		t.Errorf("DroppedRows = %d", r.DroppedRows())
	}
	// Empty range.
	if _, ok := r.SubsetSumRange(100*day, 101*day, pred); ok {
		t.Error("empty range reported ok")
	}
	if got := r.TopKRange(100*day, 101*day, 3); got != nil {
		t.Errorf("TopKRange over empty span = %v", got)
	}
}

func TestRollupConfigValidation(t *testing.T) {
	if _, err := uss.NewRollup(uss.RollupConfig{Bins: 0, WindowLength: 1}); err == nil {
		t.Error("bad config accepted")
	}
}
