package uss_test

// The docs gate: a go/ast checker that fails the build when documentation
// regresses. Two rules, enforced by CI through the ordinary test run:
//
//  1. Every exported symbol in the root package — functions, types,
//     methods on exported types, and each exported const/var — carries a
//     doc comment.
//  2. Every package in docsGatePackages carries a package-level doc
//     comment (the package map README.md points into).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// docsGatePackages lists the directories whose package comment is load-
// bearing documentation: the root package plus every internal package
// named in the architecture map.
var docsGatePackages = []string{
	".",
	"internal/core",
	"internal/streamsummary",
	"internal/labelidx",
	"internal/query",
	"internal/rollup",
	"internal/wire",
	"internal/server",
	"internal/store",
	"internal/replica",
	"internal/cluster",
	"internal/obs",
	"internal/faultinject",
	"internal/hierarchy",
	"internal/hashx",
	"internal/leakcheck",
}

// parseDir loads a directory's non-test files with comments attached.
func parseDir(t *testing.T, dir string) map[string]*ast.Package {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	return pkgs
}

func TestDocsGatePackageComments(t *testing.T) {
	for _, dir := range docsGatePackages {
		pkgs := parseDir(t, dir)
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (in %s) has no package-level doc comment", name, dir)
			}
		}
	}
}

func TestDocsGateExportedSymbols(t *testing.T) {
	pkgs := parseDir(t, ".")
	pkg, ok := pkgs["uss"]
	if !ok {
		t.Fatalf("root package uss not found (got %v)", pkgs)
	}
	for file, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				// Methods count when their receiver type is exported.
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
					t.Errorf("%s: exported %s %s has no doc comment", file, declKind(d), symbolName(d))
				}
			case *ast.GenDecl:
				checkGenDecl(t, file, d)
			}
		}
	}
}

// checkGenDecl enforces docs on exported types, consts and vars. A doc
// comment on the grouped decl covers ungrouped specs; within a grouped
// const/var block each exported spec needs its own comment (or a line
// comment) unless the block documents the group as one unit and the spec
// is part of an iota run.
func checkGenDecl(t *testing.T, file string, d *ast.GenDecl) {
	groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if !sp.Name.IsExported() {
				continue
			}
			if !groupDoc && (sp.Doc == nil || strings.TrimSpace(sp.Doc.Text()) == "") {
				t.Errorf("%s: exported type %s has no doc comment", file, sp.Name.Name)
			}
		case *ast.ValueSpec:
			var exported []string
			for _, n := range sp.Names {
				if n.IsExported() {
					exported = append(exported, n.Name)
				}
			}
			if len(exported) == 0 {
				continue
			}
			specDoc := (sp.Doc != nil && strings.TrimSpace(sp.Doc.Text()) != "") ||
				(sp.Comment != nil && strings.TrimSpace(sp.Comment.Text()) != "")
			if !groupDoc && !specDoc {
				t.Errorf("%s: exported value %s has no doc comment", file, strings.Join(exported, ", "))
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func symbolName(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return d.Name.Name
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return "(" + id.Name + ")." + d.Name.Name
	}
	return d.Name.Name
}
