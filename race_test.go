package uss_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	uss "repro"
)

// TestRaceConcurrentIngestAndCachedReads exercises the risky new
// concurrency surface of the versioned snapshot cache: writers mutating
// shards (bumping version counters under shard locks) while readers
// validate and rebuild the shared snapshot, its top-k order and its label
// index through every cached entry point. Run under -race in CI; under
// plain `go test` it still checks basic sanity of concurrently served
// results.
func TestRaceConcurrentIngestAndCachedReads(t *testing.T) {
	s := uss.NewSharded(4, 64, uss.WithSeed(41))
	rows := make([]string, 1<<12)
	for i := range rows {
		rows[i] = fmt.Sprintf("country=c%d|device=d%d", i%17, i%5)
	}
	s.UpdateBatch(rows[:256]) // warm so readers have something to serve

	spec := uss.QuerySpec{
		Where:   []uss.QueryFilter{{Dim: "device", In: []string{"d0", "d1"}}},
		GroupBy: []string{"country"},
	}
	var writersDone atomic.Bool
	var wg, writerWg sync.WaitGroup

	// Writers: one batched, one per-row.
	wg.Add(2)
	writerWg.Add(2)
	go func() {
		defer wg.Done()
		defer writerWg.Done()
		for pass := 0; pass < 20; pass++ {
			for lo := 0; lo < len(rows); lo += 512 {
				s.UpdateBatch(rows[lo : lo+512])
			}
		}
	}()
	go func() {
		defer wg.Done()
		defer writerWg.Done()
		for pass := 0; pass < 10; pass++ {
			for _, r := range rows[:1024] {
				s.Update(r)
			}
		}
	}()
	go func() {
		writerWg.Wait()
		writersDone.Store(true)
	}()

	// Readers: cached TopK, the locked convenience RunQuery, a private
	// prepared engine, and Snapshot (+ a mutation of the returned copy,
	// which must be independent of the shared cache).
	readers := []func(){
		func() {
			if top := s.TopK(8); len(top) == 0 {
				t.Error("empty TopK during concurrent ingest")
			}
		},
		func() {
			if groups, _, err := s.RunQuery(spec); err != nil || len(groups) == 0 {
				t.Errorf("RunQuery groups=%v err=%v", groups, err)
			}
		},
		func() {
			p := s.QueryEngine().Prepare(spec)
			for i := 0; i < 50; i++ {
				if groups, _, err := p.Run(); err != nil || len(groups) == 0 {
					t.Errorf("PreparedQuery groups=%v err=%v", groups, err)
					return
				}
			}
		},
		func() {
			snap := s.Snapshot(0)
			if snap.Total() <= 0 {
				t.Error("empty snapshot during concurrent ingest")
			}
			snap.Update("country=zz|device=zz", 1)
		},
	}
	for _, read := range readers {
		wg.Add(1)
		go func(read func()) {
			defer wg.Done()
			for !writersDone.Load() {
				read()
			}
			read() // one final read over the settled state
		}(read)
	}

	wg.Wait()

	want := int64(256 + 20*len(rows) + 10*1024)
	if got := s.Rows(); got != want {
		t.Fatalf("Rows = %d, want %d", got, want)
	}
	if top := s.TopK(1); len(top) != 1 {
		t.Fatalf("settled TopK = %v", top)
	}
}

// TestRaceConcurrentRunQueryQuiescentSketch: read-only concurrent
// querying of a plain (single-writer) sketch must stay race-free even
// though RunQuery lazily builds and reuses a cached engine internally,
// and every caller must get results it can mutate freely.
func TestRaceConcurrentRunQueryQuiescentSketch(t *testing.T) {
	sk := uss.New(256, uss.WithSeed(43))
	for i := 0; i < 5000; i++ {
		sk.Update(fmt.Sprintf("country=c%d|device=d%d", i%9, i%3))
	}
	spec := uss.QuerySpec{GroupBy: []string{"country"}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				groups, skipped, err := uss.RunQuery(sk, spec)
				if err != nil || skipped != 0 || len(groups) != 9 {
					t.Errorf("groups=%d skipped=%d err=%v", len(groups), skipped, err)
					return
				}
				// Results are caller-owned: scribbling on them must not
				// perturb other callers or later queries.
				groups[0].Key["country"] = "mutated"
			}
		}()
	}
	wg.Wait()
	groups, _, _ := uss.RunQuery(sk, spec)
	for _, g := range groups {
		if g.Key["country"] == "mutated" {
			t.Fatal("caller mutation leaked into the engine's cache")
		}
	}
}

// TestRaceParallelSnapshotRefill: concurrent writers keep invalidating
// the sharded snapshot while concurrent readers trigger parallel cache
// refills (merge parallelism forced above the shard count). The parallel
// k-way merge runs behind the cache's rebuild lock, so -race must stay
// silent and every reader must see a coherent snapshot.
func TestRaceParallelSnapshotRefill(t *testing.T) {
	old := uss.MergeParallelism()
	uss.SetMergeParallelism(8)
	defer uss.SetMergeParallelism(old)

	s := uss.NewSharded(4, 64, uss.WithSeed(47))
	rows := make([]string, 1<<12)
	for i := range rows {
		rows[i] = fmt.Sprintf("item-%d", i%301)
	}
	s.UpdateBatch(rows[:256])

	var wg sync.WaitGroup
	var writersDone atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writersDone.Store(true)
		for pass := 0; pass < 20; pass++ {
			for lo := 0; lo < len(rows); lo += 256 {
				s.UpdateBatch(rows[lo : lo+256])
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !writersDone.Load() {
				if top := s.TopK(10); len(top) == 0 {
					t.Error("empty TopK during concurrent refill")
					return
				}
				if sum := s.SubsetSum(func(string) bool { return true }); sum.Value <= 0 {
					t.Error("non-positive total mass during concurrent refill")
					return
				}
			}
		}()
	}
	wg.Wait()

	if got, want := s.Rows(), int64(256+20*len(rows)); got != want {
		t.Fatalf("Rows = %d, want %d", got, want)
	}
}
