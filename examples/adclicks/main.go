// Ad-click feature computation (the paper's motivating application): build
// historical click and impression counts per (advertiser, ad) unit from a
// disaggregated impression log, then read off the historical-CTR features a
// click-prediction model would consume — including higher-level rollups
// (per advertiser) obtained as subset sums, which is exactly where biased
// frequent-item sketches accumulate error.
package main

import (
	"fmt"
	"strings"

	uss "repro"
	"repro/internal/workload"
)

func main() {
	const rows = 300000
	cfg := workload.DefaultAdConfig(rows)
	ads, err := workload.NewAdStream(cfg, 99)
	if err != nil {
		panic(err)
	}

	// Two sketches over the same stream: impressions and clicks, keyed by
	// the (feature0, feature3) pair standing in for (advertiser, ad).
	// Exact per-unit aggregation would need one counter per pair — up to
	// 50 × 1000 = 50k units here, trillions in the paper's setting.
	impressions := uss.New(2048, uss.WithSeed(1))
	clicks := uss.New(2048, uss.WithSeed(2))
	exactImp := map[string]float64{}
	exactClk := map[string]float64{}
	for {
		im, ok := ads.Next()
		if !ok {
			break
		}
		key := im.Key(0, 3)
		impressions.Update(key)
		exactImp[key]++
		if im.Clicked {
			clicks.Update(key)
			exactClk[key]++
		}
	}
	fmt.Printf("ingested %d impressions over %d distinct (advertiser, ad) units\n\n", rows, len(exactImp))

	// Feature 1: historical CTR for the busiest ad units.
	fmt.Println("historical CTR features for the top ad units (sketch vs exact):")
	for _, b := range impressions.TopK(5) {
		c := clicks.Estimate(b.Item)
		fmt.Printf("  %-12s impressions %7.0f (exact %7.0f)   ctr %.4f (exact %.4f)\n",
			b.Item, b.Count, exactImp[b.Item], c/b.Count, safeDiv(exactClk[b.Item], exactImp[b.Item]))
	}

	// Feature 2: a brand-new ad has no history, so the model backs off to
	// the advertiser-level rollup — a subset sum over all the
	// advertiser's ads. The unbiased sketch answers it with a CI.
	advertiser := "0=0|" // feature0 value 0, the most common advertiser
	advImp := impressions.SubsetSum(func(k string) bool { return strings.HasPrefix(k, advertiser) })
	advClk := clicks.SubsetSum(func(k string) bool { return strings.HasPrefix(k, advertiser) })
	var exactAdvImp, exactAdvClk float64
	for k, v := range exactImp {
		if strings.HasPrefix(k, advertiser) {
			exactAdvImp += v
			exactAdvClk += exactClk[k]
		}
	}
	loI, hiI := advImp.ConfidenceInterval(0.95)
	fmt.Printf("\nadvertiser rollup (%s*):\n", advertiser)
	fmt.Printf("  impressions %.0f ± %.0f (95%% CI [%.0f, %.0f]; exact %.0f)\n",
		advImp.Value, advImp.StdErr, loI, hiI, exactAdvImp)
	fmt.Printf("  clicks      %.0f (exact %.0f)\n", advClk.Value, exactAdvClk)
	fmt.Printf("  backoff CTR feature: %.4f (exact %.4f)\n",
		safeDiv(advClk.Value, advImp.Value), safeDiv(exactAdvClk, exactAdvImp))
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
