// Time-decayed aggregation (paper §5.3): a trending-topics feed where
// recent events matter more. The DecayedSketch weights a row arriving at
// time a by exp(−λ(now−a)) at query time, so yesterday's viral topic fades
// as today's takes over — all in one fixed-size sketch, no per-topic state.
package main

import (
	"fmt"
	"math/rand"

	uss "repro"
)

func main() {
	rng := rand.New(rand.NewSource(13))
	// Half-life of ~6 hours: λ = ln2 / 6h (time unit = hours).
	const halfLife = 6.0
	lambda := 0.693147 / halfLife
	sk := uss.NewDecayed(256, lambda, uss.WithSeed(5))

	// Hour 0–24: "election" dominates. Hour 24–48: "storm" takes over
	// while background topics churn constantly.
	background := func(hour float64, n int) {
		for i := 0; i < n; i++ {
			sk.Update(fmt.Sprintf("topic-%d", rng.Intn(5000)), hour+rng.Float64(), 1)
		}
	}
	for h := 0; h < 24; h++ {
		background(float64(h), 2000)
		for i := 0; i < 800; i++ {
			sk.Update("election", float64(h)+rng.Float64(), 1)
		}
	}
	fmt.Println("after day 1 (election dominates):")
	printTop(sk, 3)

	for h := 24; h < 48; h++ {
		background(float64(h), 2000)
		for i := 0; i < 1000; i++ {
			sk.Update("storm", float64(h)+rng.Float64(), 1)
		}
		// The election story dies down but doesn't vanish.
		for i := 0; i < 50; i++ {
			sk.Update("election", float64(h)+rng.Float64(), 1)
		}
	}
	fmt.Println("\nafter day 2 (storm takes over, election decayed):")
	printTop(sk, 3)

	// Decayed subset sums still work: current attention on either story.
	est := sk.SubsetSum(func(t string) bool { return t == "election" || t == "storm" })
	fmt.Printf("\ndecayed attention on the two stories combined: %.0f (± %.0f)\n",
		est.Value, est.StdErr)
	fmt.Printf("decayed total attention across all topics:      %.0f\n", sk.Total())
}

func printTop(sk *uss.DecayedSketch, k int) {
	bins := sk.Bins()
	for i := 0; i < k; i++ {
		// Simple selection of the k largest decayed bins.
		best := i
		for j := i + 1; j < len(bins); j++ {
			if bins[j].Count > bins[best].Count {
				best = j
			}
		}
		bins[i], bins[best] = bins[best], bins[i]
		fmt.Printf("  %d. %-12s %8.0f (decayed)\n", i+1, bins[i].Item, bins[i].Count)
	}
}
