// Network flow monitoring (the paper's IP-flow application): track
// per-(src, dst) byte volumes from a packet stream with the weighted
// sketch, flag heavy-hitter flows, and aggregate traffic up the address
// hierarchy (per-subnet subset sums), all from one fixed-size sketch.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	uss "repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Simulate a packet stream: a handful of elephant flows, a large tail
	// of mice, plus a simulated scan burst from one subnet. Packets carry
	// byte weights, so this exercises the real-valued update path.
	sk := uss.NewWeighted(512, uss.WithSeed(11))
	exact := map[string]float64{}
	flow := func(src, dst string) string { return src + ">" + dst }

	emit := func(key string, bytes float64) {
		sk.Update(key, bytes)
		exact[key] += bytes
	}
	for pkt := 0; pkt < 200000; pkt++ {
		switch {
		case pkt%10 < 3: // elephants: 5 flows carry most bytes
			e := pkt % 5
			emit(flow(fmt.Sprintf("10.0.%d.7", e), "192.168.1.10"), 1200+float64(rng.Intn(300)))
		case pkt%10 < 4: // scanner subnet: many small flows from 172.16.9.*
			emit(flow(fmt.Sprintf("172.16.9.%d", rng.Intn(256)), fmt.Sprintf("10.1.%d.%d", rng.Intn(8), rng.Intn(256))), 60)
		default: // mice
			emit(flow(fmt.Sprintf("10.2.%d.%d", rng.Intn(64), rng.Intn(256)), "192.168.1.10"), 80+float64(rng.Intn(1400)))
		}
	}
	var totalBytes float64
	for _, v := range exact {
		totalBytes += v
	}
	fmt.Printf("stream: %d distinct flows, %.1f MB total; sketch holds %d bins\n\n",
		len(exact), totalBytes/1e6, sk.Size())

	// Heavy hitters: flows above 1% of traffic.
	fmt.Println("elephant flows (>1% of bytes):")
	tot := sk.Total()
	for _, b := range sk.Bins() {
		if b.Count/tot > 0.01 {
			fmt.Printf("  %-24s %10.0f bytes (exact %10.0f)\n", b.Item, b.Count, exact[b.Item])
		}
	}

	// Hierarchical rollup: bytes by source /16 subnet — an arbitrary
	// group-by the sketch was never told about in advance.
	fmt.Println("\nbytes by source /16 (sketch vs exact):")
	for _, subnet := range []string{"10.0.", "10.2.", "172.16."} {
		pred := func(k string) bool { return strings.HasPrefix(k, subnet) }
		est := sk.SubsetSum(pred)
		var truth float64
		for k, v := range exact {
			if pred(k) {
				truth += v
			}
		}
		lo, hi := est.ConfidenceInterval(0.95)
		mark := " "
		if truth >= lo && truth <= hi {
			mark = "✓"
		}
		fmt.Printf("  %-9s %12.0f ± %10.0f   exact %12.0f  CI covers %s\n",
			subnet+"*", est.Value, est.StdErr, truth, mark)
	}

	// The scanner subnet carries little volume but many flows — exactly
	// the disaggregated regime: no single flow is frequent, yet the
	// subnet-level subset sum is still estimated unbiasedly.
	scan := sk.SubsetSum(func(k string) bool { return strings.HasPrefix(k, "172.16.9.") })
	fmt.Printf("\nscanner subnet 172.16.9.*: %.0f bytes estimated from %d sampled flows\n",
		scan.Value, scan.SampleBins)
}
