// SQL-style querying (paper §2): the paper's motivating template
//
//	SELECT sum(metric), dimensions FROM table WHERE filters GROUP BY dimensions
//
// answered from one sketch over composite-keyed rows, with filters and
// group-by dimensions chosen only at query time.
package main

import (
	"fmt"

	uss "repro"
	"repro/internal/workload"
)

func main() {
	// Stream synthetic ad impressions keyed by a 3-feature tuple
	// (advertiser-ish, placement-ish, country-ish positions 0, 2, 8).
	ads, err := workload.NewAdStream(workload.DefaultAdConfig(200000), 31)
	if err != nil {
		panic(err)
	}
	sk := uss.New(2048, uss.WithSeed(8))
	for {
		im, ok := ads.Next()
		if !ok {
			break
		}
		sk.Update(im.Key(0, 2, 8))
	}
	fmt.Printf("sketch over %d impressions, %d bins\n\n", int(sk.Total()), sk.Size())

	// SELECT sum(1), f2 FROM impressions WHERE f0 IN (0,1) GROUP BY f2
	groups, skipped, err := uss.RunQuery(sk, uss.QuerySpec{
		Where:   []uss.QueryFilter{{Dim: "0", In: []string{"0", "1"}}},
		GroupBy: []string{"2"},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("SELECT sum(1), f2 WHERE f0 IN (0,1) GROUP BY f2  — top groups:")
	for i, g := range groups {
		if i == 5 {
			break
		}
		lo, hi := g.Sum.ConfidenceInterval(0.95)
		fmt.Printf("  %-6s  %9.0f  (95%% CI [%.0f, %.0f], %d bins)\n",
			g.KeyString(), g.Sum.Value, lo, hi, g.Sum.SampleBins)
	}
	fmt.Printf("  (%d groups total, %d foreign labels skipped)\n\n", len(groups), skipped)

	// SELECT sum(1) WHERE f8 = 0 — a single filtered aggregate.
	global, _, _ := uss.RunQuery(sk, uss.QuerySpec{
		Where: []uss.QueryFilter{uss.WhereEq("8", "0")},
	})
	if len(global) == 1 {
		g := global[0]
		fmt.Printf("SELECT sum(1) WHERE f8=0 → %.0f ± %.0f\n", g.Sum.Value, g.Sum.StdErr)
	}
}
