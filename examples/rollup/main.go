// Windowed rollups (paper §5.5): per-day sketches of a click stream merged
// on demand into trailing-window features — "sketches for clicks may be
// computed per day, but the final machine learning feature may combine the
// last 7 days" — with old windows evicted automatically.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	uss "repro"
)

const day = 86400

func main() {
	r, err := uss.NewRollup(uss.RollupConfig{
		Bins:         1024,
		WindowLength: day,
		Retain:       7, // keep one week
		Seed:         17,
	})
	if err != nil {
		panic(err)
	}

	// Ten days of clicks: ad volume is skewed, and ad-77 ramps up over
	// time (a growing campaign).
	rng := rand.New(rand.NewSource(17))
	zipf := rand.NewZipf(rng, 1.2, 1, 500)
	exactByDay := make([]map[string]float64, 10)
	for d := 0; d < 10; d++ {
		exactByDay[d] = map[string]float64{}
		for i := 0; i < 50000; i++ {
			var ad string
			if rng.Intn(100) < d { // ramping campaign
				ad = "ad-77"
			} else {
				ad = fmt.Sprintf("ad-%d", zipf.Uint64())
			}
			at := int64(d*day) + int64(rng.Intn(day))
			r.Update(ad, at)
			exactByDay[d][ad]++
		}
	}
	fmt.Printf("ingested 10 days × 50k clicks; retained windows: %d (days 3..9)\n\n", len(r.Windows()))

	// Trailing-7-day click feature for the ramping campaign, as of day 9.
	pred := func(s string) bool { return s == "ad-77" }
	est, _ := r.SubsetSumRange(3*day, 10*day-1, pred)
	var truth float64
	for d := 3; d < 10; d++ {
		truth += exactByDay[d]["ad-77"]
	}
	lo, hi := est.ConfidenceInterval(0.95)
	fmt.Printf("ad-77 clicks, trailing 7d: %.0f ± %.0f (95%% CI [%.0f, %.0f]; exact %.0f)\n",
		est.Value, est.StdErr, lo, hi, truth)

	// Same feature over just the last 2 days — the window boundaries are
	// free to move, no re-ingestion needed.
	est2, _ := r.SubsetSumRange(8*day, 10*day-1, pred)
	var truth2 float64
	for d := 8; d < 10; d++ {
		truth2 += exactByDay[d]["ad-77"]
	}
	fmt.Printf("ad-77 clicks, trailing 2d: %.0f (exact %.0f)\n\n", est2.Value, truth2)

	// Top ads over the retained week.
	fmt.Println("top 5 ads, trailing 7d:")
	for i, b := range r.TopKRange(3*day, 10*day-1, 5) {
		marker := ""
		if strings.HasPrefix(b.Item, "ad-77") {
			marker = "  ← ramping campaign"
		}
		fmt.Printf("  %d. %-8s %9.0f%s\n", i+1, b.Item, b.Count, marker)
	}
	fmt.Printf("\nrows dropped for evicted windows: %d\n", r.DroppedRows())
}
