// Distributed counting (paper §5.5): shard a stream across workers — as a
// map-reduce mapper or per-region collector would — sketch each shard
// independently and in parallel, then merge the small sketches with the
// unbiased reduction. The merged sketch answers subset sums over the union
// of all shards' data as if one sketch had seen everything, and the
// serialization round-trip stands in for the network hop.
package main

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	uss "repro"
)

const (
	workers = 8
	bins    = 512
)

func main() {
	// Global event stream partitioned by hash across 8 workers: sales
	// events keyed by (country, product).
	rng := rand.New(rand.NewSource(21))
	zipf := rand.NewZipf(rng, 1.2, 1, 5000)
	countries := []string{"de", "fr", "jp", "br", "us", "in"}
	shards := make([][]string, workers)
	exact := map[string]float64{}
	for ev := 0; ev < 400000; ev++ {
		c := countries[rng.Intn(len(countries))]
		key := fmt.Sprintf("%s/product-%d", c, zipf.Uint64())
		exact[key]++
		h := hash(key) % workers
		shards[h] = append(shards[h], key)
	}

	// Each worker sketches its shard concurrently.
	var wg sync.WaitGroup
	blobs := make([][]byte, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sk := uss.New(bins, uss.WithSeed(int64(1000+w)))
			for _, key := range shards[w] {
				sk.Update(key)
			}
			blob, err := sk.MarshalBinary()
			if err != nil {
				panic(err)
			}
			blobs[w] = blob // "send over the network"
		}(w)
	}
	wg.Wait()

	// The reducer deserializes and merges.
	sketches := make([]*uss.Sketch, workers)
	var wireBytes int
	for w, blob := range blobs {
		wireBytes += len(blob)
		var sk uss.Sketch
		if err := sk.UnmarshalBinary(blob); err != nil {
			panic(err)
		}
		sketches[w] = &sk
	}
	merged := uss.Merge(bins, uss.Pairwise, sketches...)
	fmt.Printf("merged %d worker sketches (%d KB on the wire) into %d bins; total mass %.0f\n\n",
		workers, wireBytes/1024, merged.Size(), merged.Total())

	// Cross-shard queries on the merged sketch.
	for _, country := range []string{"jp", "de"} {
		pred := func(k string) bool { return strings.HasPrefix(k, country+"/") }
		est := merged.SubsetSum(pred)
		var truth float64
		for k, v := range exact {
			if pred(k) {
				truth += v
			}
		}
		lo, hi := est.ConfidenceInterval(0.95)
		fmt.Printf("sales in %s: %.0f ± %.0f (95%% CI [%.0f, %.0f]; exact %.0f)\n",
			country, est.Value, est.StdErr, lo, hi, truth)
	}
}

// hash is a tiny FNV-1a for shard routing.
func hash(s string) int {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return int(h & 0x7fffffff)
}
