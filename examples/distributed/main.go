// Distributed counting through ussd (paper §5.5): shard a stream across
// workers — as a map-reduce mapper or per-region collector would — sketch
// each shard independently and in parallel, then ship each worker's
// wire-format-v2 snapshot to a ussd sketch service over HTTP, where the
// snapshots merge into one weighted accumulator with the unbiased
// reduction. Cross-shard top-k and subset-sum queries are then served by
// the service as if one sketch had seen everything.
//
// The example runs the real server on a loopback listener, so the bytes
// genuinely cross HTTP: POST /snapshot pushes, GET /topk and /sum query.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	uss "repro"
	"repro/internal/replica"
	"repro/internal/server"
)

const (
	workers = 8
	bins    = 512 // per worker sketch
	accBins = 2048
)

func main() {
	// Start a ussd instance on a loopback port.
	srv := server.New(server.Config{IngestWorkers: 2, QueueDepth: 16})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			panic(err)
		}
		<-done
	}()

	// One weighted accumulator on the server collects all pushes.
	mustPost(base+"/v1/sketches", "application/json",
		[]byte(fmt.Sprintf(`{"name":"sales","kind":"weighted","bins":%d}`, accBins)))

	// Global event stream partitioned by hash across 8 workers: sales
	// events keyed by (country, product).
	rng := rand.New(rand.NewSource(21))
	zipf := rand.NewZipf(rng, 1.2, 1, 5000)
	countries := []string{"de", "fr", "jp", "br", "us", "in"}
	shards := make([][]string, workers)
	exact := map[string]float64{}
	for ev := 0; ev < 400000; ev++ {
		c := countries[rng.Intn(len(countries))]
		key := fmt.Sprintf("%s/product-%d", c, zipf.Uint64())
		exact[key]++
		h := hash(key) % workers
		shards[h] = append(shards[h], key)
	}

	// Each worker sketches its shard concurrently and pushes its snapshot
	// to the service — bins, not raw rows, cross the network.
	var wg sync.WaitGroup
	var wireBytes int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sk := uss.New(bins, uss.WithSeed(int64(1000+w)))
			sk.UpdateAll(shards[w])
			blob, err := sk.AppendBinary(nil)
			if err != nil {
				panic(err)
			}
			// Real collectors push over a flaky network: retry transient
			// push failures with jittered exponential backoff. Safe here
			// because a push only acks after the merge is applied — a
			// retried request that never got its 2xx re-sends bins the
			// server may merge twice only if the ack itself was lost,
			// the usual at-least-once trade.
			err = replica.Retry(context.Background(), 5, 100*time.Millisecond, 2*time.Second, func() error {
				return tryPost(base+"/v1/sketches/sales/snapshot", "application/octet-stream", blob)
			})
			if err != nil {
				panic(err)
			}
			mu.Lock()
			wireBytes += int64(len(blob))
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	var info struct {
		Size  int     `json:"size"`
		Total float64 `json:"total"`
	}
	mustDecode(mustGet(base+"/v1/sketches/sales"), &info)
	fmt.Printf("pushed %d worker snapshots (%d KB on the wire); server merged to %d bins, total mass %.0f\n\n",
		workers, wireBytes/1024, info.Size, info.Total)

	// Cross-shard top sellers, served over HTTP.
	var tk struct {
		Items []struct {
			Item  string  `json:"item"`
			Count float64 `json:"count"`
		} `json:"items"`
	}
	mustDecode(mustGet(base+"/v1/sketches/sales/topk?k=5"), &tk)
	fmt.Println("top sellers across all shards:")
	for i, b := range tk.Items {
		fmt.Printf("  %d. %-18s est %8.0f  (exact %8.0f)\n", i+1, b.Item, b.Count, exact[b.Item])
	}
	fmt.Println()

	// Cross-shard subset sums with confidence intervals, also over HTTP.
	for _, country := range []string{"jp", "de"} {
		var est struct {
			Value  float64    `json:"value"`
			StdErr float64    `json:"std_err"`
			CI95   [2]float64 `json:"ci95"`
		}
		mustDecode(mustGet(base+"/v1/sketches/sales/sum?prefix="+country+"/"), &est)
		var truth float64
		for k, v := range exact {
			if strings.HasPrefix(k, country+"/") {
				truth += v
			}
		}
		fmt.Printf("sales in %s: %.0f ± %.0f (95%% CI [%.0f, %.0f]; exact %.0f)\n",
			country, est.Value, est.StdErr, est.CI95[0], est.CI95[1], truth)
	}
}

// mustPost posts body and panics on any failure — example-grade error
// handling.
func mustPost(url, ct string, body []byte) []byte {
	resp, err := http.Post(url, ct, bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(err)
	}
	if resp.StatusCode/100 != 2 {
		panic(fmt.Sprintf("POST %s: status %d: %s", url, resp.StatusCode, data))
	}
	return data
}

// tryPost posts body and returns an error instead of panicking — the
// retried snapshot-push path. A refusal carrying Retry-After (the
// server shedding load or running read-only) is surfaced as a
// RetryAfterError so replica.Retry waits out the server's hint instead
// of its own fixed backoff.
func tryPost(url, ct string, body []byte) error {
	resp, err := http.Post(url, ct, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		err := fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, data)
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
			return &replica.RetryAfterError{After: time.Duration(secs) * time.Second, Err: err}
		}
		return err
	}
	return nil
}

func mustGet(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(err)
	}
	if resp.StatusCode/100 != 2 {
		panic(fmt.Sprintf("GET %s: status %d: %s", url, resp.StatusCode, data))
	}
	return data
}

func mustDecode(data []byte, v any) {
	if err := json.Unmarshal(data, v); err != nil {
		panic(fmt.Sprintf("decode %q: %v", data, err))
	}
}

// hash is a tiny FNV-1a for shard routing.
func hash(s string) int {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return int(h & 0x7fffffff)
}
