// Quickstart: build an Unbiased Space Saving sketch over a click stream,
// then answer the two questions the paper targets — an arbitrary filtered
// subset sum (with a confidence interval) and the frequent items — from one
// small sketch, without ever pre-aggregating per-user counts.
package main

import (
	"fmt"
	"math/rand"
	"strings"

	uss "repro"
)

func main() {
	// Simulate a disaggregated click stream: one row per click, keyed by
	// user. User i clicks roughly i/20+1 times, so user IDs near 2000
	// are the heavy users.
	rng := rand.New(rand.NewSource(7))
	var clicks []string
	for user := 0; user < 2000; user++ {
		region := []string{"us", "eu", "apac"}[user%3]
		id := fmt.Sprintf("%s/user-%04d", region, user)
		for c := 0; c < user/20+1; c++ {
			clicks = append(clicks, id)
		}
	}
	// A few bot accounts dominate the stream — the frequent items.
	for bot := 0; bot < 4; bot++ {
		id := fmt.Sprintf("us/bot-%d", bot)
		for c := 0; c < 4000+bot*1500; c++ {
			clicks = append(clicks, id)
		}
	}
	rng.Shuffle(len(clicks), func(i, j int) { clicks[i], clicks[j] = clicks[j], clicks[i] })
	fmt.Printf("stream: %d clicks from 2004 users\n", len(clicks))

	// One pass, 256 bins. O(1) per row.
	sk := uss.New(256, uss.WithSeed(42))
	for _, row := range clicks {
		sk.Update(row)
	}
	fmt.Printf("sketch: %d bins, %d rows ingested, min bin %.0f\n\n",
		sk.Size(), sk.Rows(), sk.MinCount())

	// 1) Disaggregated subset sum with arbitrary filters: total clicks
	// from EU users. The estimate is unbiased no matter how skewed the
	// data or how the rows arrived.
	var truth float64
	for _, row := range clicks {
		if strings.HasPrefix(row, "eu/") {
			truth++
		}
	}
	est := sk.SubsetSum(func(user string) bool { return strings.HasPrefix(user, "eu/") })
	lo, hi := est.ConfidenceInterval(0.95)
	fmt.Printf("EU clicks: estimate %.0f ± %.0f  (95%% CI [%.0f, %.0f])\n", est.Value, est.StdErr, lo, hi)
	fmt.Printf("           truth    %.0f  (covered: %v)\n\n", truth, truth >= lo && truth <= hi)

	// 2) Frequent items: the heaviest users, with unbiased counts.
	fmt.Println("top 5 users by estimated clicks:")
	for i, b := range sk.TopK(5) {
		fmt.Printf("  %d. %-18s %.0f\n", i+1, b.Item, b.Count)
	}
}
