package uss

import (
	"repro/internal/hierarchy"
)

// HierarchyNode is one prefix in a key hierarchy with its aggregated
// estimate; see HierarchicalHeavyHitters.
type HierarchyNode = hierarchy.Node

// HierarchicalHeavyHitters extracts the hierarchical heavy hitters from a
// sketch whose item labels are separator-delimited paths (IP octets, domain
// components, category paths): prefixes whose estimated count, after
// discounting the mass of heavy-hitter prefixes below them, is at least
// phi times the sketch's total. This realizes the paper's §3.1 observation
// that a disaggregated subset-sum sketch "can compute the next level in a
// hierarchy" — a subnet can be flagged even when no single flow in it is
// frequent.
//
// Results are most-specific-first. phi·Total should sit comfortably above
// the sketch's noise floor (a few multiples of MinCount) for reliable
// discovery; counts inherit the sketch's unbiasedness.
func HierarchicalHeavyHitters(s *Sketch, sep string, phi float64) []HierarchyNode {
	return hierarchy.HeavyHitters(s.Bins(), sep, phi)
}

// WeightedHierarchicalHeavyHitters is HierarchicalHeavyHitters for a
// weighted sketch.
func WeightedHierarchicalHeavyHitters(s *WeightedSketch, sep string, phi float64) []HierarchyNode {
	return hierarchy.HeavyHitters(s.Bins(), sep, phi)
}

// HierarchyLevel returns the estimated totals at one level of the key
// hierarchy (depth = number of path components; 0 is the grand total),
// sorted by descending count — e.g. per-/8 traffic from a sketch of
// per-flow rows.
func HierarchyLevel(s *Sketch, sep string, depth int) []HierarchyNode {
	return hierarchy.Level(s.Bins(), sep, depth)
}
