package uss_test

import (
	"testing"

	uss "repro"
)

// Fuzz targets run their seed corpus under plain `go test`; use
// `go test -fuzz FuzzX .` for open-ended exploration.

func FuzzSketchUpdate(f *testing.F) {
	f.Add([]byte("abcabcddd"), int64(1))
	f.Add([]byte(""), int64(2))
	f.Add([]byte{0, 1, 2, 3, 255, 254, 0, 0, 7}, int64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		sk := uss.New(4, uss.WithSeed(seed))
		for _, b := range data {
			sk.Update(string([]byte{b}))
		}
		if sk.Total() != float64(len(data)) {
			t.Fatalf("Total = %v after %d rows", sk.Total(), len(data))
		}
		if sk.Size() > sk.Capacity() {
			t.Fatalf("Size %d > Capacity %d", sk.Size(), sk.Capacity())
		}
		var mass float64
		for _, bin := range sk.Bins() {
			if bin.Count < 0 {
				t.Fatalf("negative bin %v", bin)
			}
			mass += bin.Count
		}
		if mass != sk.Total() {
			t.Fatalf("bin mass %v != total %v", mass, sk.Total())
		}
	})
}

func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte("hello world hello"), int64(5))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		sk := uss.New(8, uss.WithSeed(seed))
		for i := 0; i+2 <= len(data); i += 2 {
			sk.Update(string(data[i : i+2]))
		}
		blob, err := sk.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back uss.Sketch
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		if back.Total() != sk.Total() || back.Size() != sk.Size() {
			t.Fatalf("round trip changed totals: %v/%d vs %v/%d",
				back.Total(), back.Size(), sk.Total(), sk.Size())
		}
		for _, b := range sk.Bins() {
			if got := back.Estimate(b.Item); got != b.Count {
				t.Fatalf("round trip changed %q: %v vs %v", b.Item, got, b.Count)
			}
		}
	})
}

func FuzzUnmarshalGarbage(f *testing.F) {
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	// A valid snapshot as a seed so mutations explore near-valid inputs.
	sk := uss.New(4, uss.WithSeed(1))
	sk.Update("x")
	if blob, err := sk.MarshalBinary(); err == nil {
		f.Add(blob)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var back uss.Sketch
		// Must never panic; errors are fine. A successful decode must
		// yield a structurally sound sketch.
		if err := back.UnmarshalBinary(data); err == nil {
			if back.Size() > back.Capacity() {
				t.Fatalf("decoded sketch overfull: %d > %d", back.Size(), back.Capacity())
			}
			back.Update("post")
			if back.Estimate("post") < 0 {
				t.Fatal("decoded sketch broken")
			}
		}
	})
}
