package uss_test

import (
	"fmt"
	"math/rand"
	"testing"

	uss "repro"
	"repro/internal/streamsummary"
)

// Fuzz targets run their seed corpus under plain `go test`; use
// `go test -fuzz FuzzX .` for open-ended exploration.

func FuzzSketchUpdate(f *testing.F) {
	f.Add([]byte("abcabcddd"), int64(1))
	f.Add([]byte(""), int64(2))
	f.Add([]byte{0, 1, 2, 3, 255, 254, 0, 0, 7}, int64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		sk := uss.New(4, uss.WithSeed(seed))
		for _, b := range data {
			sk.Update(string([]byte{b}))
		}
		if sk.Total() != float64(len(data)) {
			t.Fatalf("Total = %v after %d rows", sk.Total(), len(data))
		}
		if sk.Size() > sk.Capacity() {
			t.Fatalf("Size %d > Capacity %d", sk.Size(), sk.Capacity())
		}
		var mass float64
		for _, bin := range sk.Bins() {
			if bin.Count < 0 {
				t.Fatalf("negative bin %v", bin)
			}
			mass += bin.Count
		}
		if mass != sk.Total() {
			t.Fatalf("bin mass %v != total %v", mass, sk.Total())
		}
	})
}

// FuzzStreamSummaryOps drives the slab-backed Stream-Summary through
// arbitrary insert / increment / replace / remove sequences — the full
// free-list churn surface — validating CheckInvariants (which audits slab
// accounting, free-list integrity and mass conservation) after every
// operation, and spot-checking counts against a map model at the end.
func FuzzStreamSummaryOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 0, 4}, int64(1))
	f.Add([]byte{0, 1, 0, 1, 0, 1, 3, 3, 3, 2, 2, 2}, int64(2))
	f.Add([]byte{4, 4, 4, 0, 0, 4, 4, 1, 2, 3, 4}, int64(3))
	f.Fuzz(func(t *testing.T, ops []byte, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		s := streamsummary.New(8)
		model := map[string]int64{}
		// live mirrors the model's keys as a slice so "a random live item"
		// is drawn from rng, not from runtime-randomized map iteration —
		// crashing inputs must replay deterministically.
		var live []string
		resync := func() {
			model = map[string]int64{}
			live = live[:0]
			s.Each(func(item string, count int64) bool {
				model[item] = count
				live = append(live, item)
				return true
			})
		}
		nextID := 0
		for step, op := range ops {
			switch op % 5 {
			case 0: // insert a fresh item at a small count
				item := fmt.Sprintf("n%d", nextID)
				nextID++
				c := int64(op / 5 % 4)
				s.Insert(item, c)
				model[item] = c
				live = append(live, item)
			case 1: // increment a random live item
				if len(live) > 0 {
					item := live[rng.Intn(len(live))]
					s.Increment(item)
					model[item]++
				}
			case 2: // increment a random minimum bin
				if _, ok := s.IncrementRandomMin(rng); ok != (len(model) > 0) {
					t.Fatalf("step %d: IncrementRandomMin ok=%v with %d live", step, ok, len(model))
				}
				resync()
			case 3: // replace a random minimum bin's label
				item := fmt.Sprintf("r%d", nextID)
				nextID++
				if _, evicted, ok := s.ReplaceRandomMin(item, rng); ok {
					if _, had := model[evicted]; !had {
						t.Fatalf("step %d: evicted unknown item %q", step, evicted)
					}
				}
				resync()
			case 4: // remove a random live item, churning the node free-list
				if len(live) > 0 {
					j := rng.Intn(len(live))
					item := live[j]
					if _, ok := s.Remove(item); !ok {
						t.Fatalf("step %d: Remove(%q) failed on live item", step, item)
					}
					delete(model, item)
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d (op %d): %v", step, op%5, err)
			}
		}
		if s.Len() != len(model) {
			t.Fatalf("Len %d, model %d", s.Len(), len(model))
		}
		for item, want := range model {
			if got, ok := s.Count(item); !ok || got != want {
				t.Fatalf("Count(%q) = %d,%v, want %d", item, got, ok, want)
			}
		}
	})
}

func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte("hello world hello"), int64(5))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		sk := uss.New(8, uss.WithSeed(seed))
		for i := 0; i+2 <= len(data); i += 2 {
			sk.Update(string(data[i : i+2]))
		}
		blob, err := sk.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back uss.Sketch
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		if back.Total() != sk.Total() || back.Size() != sk.Size() {
			t.Fatalf("round trip changed totals: %v/%d vs %v/%d",
				back.Total(), back.Size(), sk.Total(), sk.Size())
		}
		for _, b := range sk.Bins() {
			if got := back.Estimate(b.Item); got != b.Count {
				t.Fatalf("round trip changed %q: %v vs %v", b.Item, got, b.Count)
			}
		}
		// v2 encode → decode → re-encode is a fixed point: the restored
		// sketch re-encodes to bytes that decode to the same bins, and a
		// quiescent sketch marshals identically every time.
		re1, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		re2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(re1) != string(re2) {
			t.Fatal("re-encode of quiescent restored sketch not byte-stable")
		}
		b1, err := uss.DecodeBins(blob)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := uss.DecodeBins(re1)
		if err != nil {
			t.Fatal(err)
		}
		s1, s2 := sortedBins(b1), sortedBins(b2)
		if len(s1) != len(s2) {
			t.Fatalf("re-encode changed bin count: %d vs %d", len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("re-encode changed bin %d: %+v vs %+v", i, s1[i], s2[i])
			}
		}
		// A v1 gob snapshot of the same state must still decode and agree
		// with the v2 restore.
		v1 := gobEncodeV1(t, v1Snapshot{
			Version: 1, Capacity: sk.Capacity(), Deterministic: sk.Deterministic(),
			Rows: sk.Rows(), Bins: sk.Bins(),
		})
		var old uss.Sketch
		if err := old.UnmarshalBinary(v1); err != nil {
			t.Fatalf("v1 gob snapshot no longer decodes: %v", err)
		}
		if old.Total() != sk.Total() || old.Size() != sk.Size() {
			t.Fatalf("v1 decode changed totals: %v/%d vs %v/%d",
				old.Total(), old.Size(), sk.Total(), sk.Size())
		}
		for _, b := range sk.Bins() {
			if got := old.Estimate(b.Item); got != b.Count {
				t.Fatalf("v1 decode changed %q: %v vs %v", b.Item, got, b.Count)
			}
		}
	})
}

func FuzzUnmarshalGarbage(f *testing.F) {
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	// Valid snapshots in both formats as seeds so mutations explore
	// near-valid inputs on the v2 and the legacy gob decode paths.
	sk := uss.New(4, uss.WithSeed(1))
	sk.Update("x")
	if blob, err := sk.MarshalBinary(); err == nil {
		f.Add(blob)
	}
	f.Add(gobEncodeV1(f, v1Snapshot{
		Version: 1, Capacity: 4, Rows: 1, Bins: []uss.Bin{{Item: "x", Count: 1}},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		var back uss.Sketch
		// Must never panic; errors are fine. A successful decode must
		// yield a structurally sound sketch.
		if err := back.UnmarshalBinary(data); err == nil {
			if back.Size() > back.Capacity() {
				t.Fatalf("decoded sketch overfull: %d > %d", back.Size(), back.Capacity())
			}
			back.Update("post")
			if back.Estimate("post") < 0 {
				t.Fatal("decoded sketch broken")
			}
		}
	})
}
