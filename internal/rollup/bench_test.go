package rollup

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// benchRollup builds a 90-window rollup (the paper's daily-sketch
// pre-aggregation shape at a quarterly retention) with skewed traffic:
// heavy items recur across windows, the tail is per-window.
func benchRollup(b *testing.B, noCache bool) *Rollup {
	b.Helper()
	r, err := New(Config{Bins: 256, WindowLength: 10, Retain: 90, Seed: 42, NoCache: noCache})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, 4096)
	for day := 0; day < 90; day++ {
		for i := 0; i < 2000; i++ {
			r.Update(fmt.Sprintf("item-%d", zipf.Uint64()), int64(day*10+i%10))
		}
	}
	return r
}

var benchPred = func(s string) bool { return strings.HasSuffix(s, "3") }

// BenchmarkRollupRange contrasts the from-scratch merge with the
// incremental path: Cold re-merges all 90 windows per query; the cached
// variants revalidate versions and reuse segments/memos, re-merging only
// what changed (nothing when quiescent, the live window's bins after a
// live update).
func BenchmarkRollupRange(b *testing.B) {
	b.Run("Cold", func(b *testing.B) {
		r := benchRollup(b, true)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := r.SubsetSumRange(0, 899, benchPred); !ok {
				b.Fatal("empty range")
			}
		}
	})
	b.Run("CachedQuiescent", func(b *testing.B) {
		r := benchRollup(b, false)
		if _, ok := r.SubsetSumRange(0, 899, benchPred); !ok {
			b.Fatal("empty range")
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := r.SubsetSumRange(0, 899, benchPred); !ok {
				b.Fatal("empty range")
			}
		}
	})
	b.Run("CachedLiveDelta", func(b *testing.B) {
		r := benchRollup(b, false)
		if _, ok := r.SubsetSumRange(0, 899, benchPred); !ok {
			b.Fatal("empty range")
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Update("fresh-row", 895) // live window: memo invalid, segments hit
			if _, ok := r.SubsetSumRange(0, 899, benchPred); !ok {
				b.Fatal("empty range")
			}
		}
	})
}

// BenchmarkRollupTopKRange measures the top-k read on both paths.
func BenchmarkRollupTopKRange(b *testing.B) {
	b.Run("Cold", func(b *testing.B) {
		r := benchRollup(b, true)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if top := r.TopKRange(0, 899, 20); len(top) != 20 {
				b.Fatal("short top-k")
			}
		}
	})
	b.Run("Cached", func(b *testing.B) {
		r := benchRollup(b, false)
		r.TopKRange(0, 899, 20)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if top := r.TopKRange(0, 899, 20); len(top) != 20 {
				b.Fatal("short top-k")
			}
		}
	})
}
