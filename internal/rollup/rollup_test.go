package rollup

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

func mustNew(t *testing.T, cfg Config) *Rollup {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Bins: 0, WindowLength: 10},
		{Bins: 10, WindowLength: 0},
		{Bins: 10, WindowLength: 10, Retain: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestWindowRouting(t *testing.T) {
	r := mustNew(t, Config{Bins: 16, WindowLength: 100, Seed: 1})
	r.Update("a", 0)
	r.Update("a", 99)
	r.Update("a", 100)
	r.Update("b", 250)
	if got := r.Windows(); len(got) != 3 || got[0] != 0 || got[1] != 100 || got[2] != 200 {
		t.Fatalf("Windows = %v", got)
	}
	if got := r.Window(50).Estimate("a"); got != 2 {
		t.Errorf("window[0] a = %v, want 2", got)
	}
	if got := r.Window(150).Estimate("a"); got != 1 {
		t.Errorf("window[100] a = %v, want 1", got)
	}
	if r.Window(9999) != nil {
		t.Error("Window for untouched time not nil")
	}
}

func TestNegativeTimestamps(t *testing.T) {
	r := mustNew(t, Config{Bins: 4, WindowLength: 100, Seed: 1})
	r.Update("x", -1)   // window [-100, 0)
	r.Update("x", -100) // same window
	r.Update("x", 0)    // window [0, 100)
	ws := r.Windows()
	if len(ws) != 2 || ws[0] != -100 || ws[1] != 0 {
		t.Fatalf("Windows = %v", ws)
	}
	if got := r.Window(-50).Estimate("x"); got != 2 {
		t.Errorf("negative window count = %v, want 2", got)
	}
}

func TestEviction(t *testing.T) {
	r := mustNew(t, Config{Bins: 8, WindowLength: 10, Retain: 3, Seed: 2})
	for day := 0; day < 6; day++ {
		r.Update(fmt.Sprintf("d%d", day), int64(day*10))
	}
	ws := r.Windows()
	if len(ws) != 3 || ws[0] != 30 {
		t.Fatalf("Windows after eviction = %v", ws)
	}
	// Late row for an evicted window is dropped and counted.
	if r.Update("late", 5) {
		t.Error("late row for evicted window accepted")
	}
	if r.DroppedRows() != 1 {
		t.Errorf("DroppedRows = %d", r.DroppedRows())
	}
	// Row in a retained window still works.
	if !r.Update("ok", 45) {
		t.Error("row for live window rejected")
	}
}

func TestRangeMergeExactWhenSmall(t *testing.T) {
	r := mustNew(t, Config{Bins: 64, WindowLength: 10, Seed: 3})
	truth := map[string]float64{}
	for day := 0; day < 5; day++ {
		for i := 0; i < 20; i++ {
			item := fmt.Sprintf("u%d", i%10)
			r.Update(item, int64(day*10+i%10))
			if day >= 1 && day <= 3 {
				truth[item]++
			}
		}
	}
	m := r.Range(10, 39)
	if m == nil {
		t.Fatal("Range returned nil")
	}
	// Under capacity everywhere, the merge is exact.
	for item, want := range truth {
		if got := m.Estimate(item); got != want {
			t.Errorf("merged Estimate(%s) = %v, want %v", item, got, want)
		}
	}
	if got := r.TotalRange(10, 39); got != 60 {
		t.Errorf("TotalRange = %v, want 60", got)
	}
	est, ok := r.SubsetSumRange(10, 39, func(s string) bool { return s == "u3" })
	if !ok || est.Value != truth["u3"] {
		t.Errorf("SubsetSumRange = %v,%v", est.Value, ok)
	}
}

func TestRangeEdges(t *testing.T) {
	r := mustNew(t, Config{Bins: 8, WindowLength: 10, Seed: 4})
	r.Update("a", 15)
	if r.Range(30, 40) != nil {
		t.Error("Range over empty span not nil")
	}
	if r.Range(20, 10) != nil {
		t.Error("inverted Range not nil")
	}
	if _, ok := r.SubsetSumRange(30, 40, func(string) bool { return true }); ok {
		t.Error("SubsetSumRange over empty span reported ok")
	}
	if got := r.TotalRange(20, 10); got != 0 {
		t.Errorf("inverted TotalRange = %v", got)
	}
	// A range starting mid-window still includes that window.
	if m := r.Range(17, 18); m == nil || m.Estimate("a") != 1 {
		t.Error("mid-window range missed the row")
	}
}

// TestSevenDayFeature reproduces the paper's use case: daily sketches
// merged into a trailing-7-day feature, checked for unbiasedness across
// replicates.
func TestSevenDayFeature(t *testing.T) {
	const day = 86400
	rng := rand.New(rand.NewSource(5))

	// 10 days of traffic; the feature is clicks per advertiser over days
	// 3..9. Advertisers have skewed volumes.
	type row struct {
		item string
		at   int64
	}
	var rows []row
	truth := map[string]float64{}
	for d := 0; d < 10; d++ {
		for i := 0; i < 3000; i++ {
			adv := int(math.Sqrt(float64(rng.Intn(400))))
			item := fmt.Sprintf("adv%d/ad%d", adv, rng.Intn(5))
			at := int64(d*day + rng.Intn(day))
			rows = append(rows, row{item, at})
			if d >= 3 {
				truth[item]++
			}
		}
	}
	pred := func(s string) bool { return strings.HasPrefix(s, "adv7/") }
	var want float64
	for k, v := range truth {
		if pred(k) {
			want += v
		}
	}

	const reps = 60
	var sum float64
	for rep := 0; rep < reps; rep++ {
		r := mustNew(t, Config{Bins: 256, WindowLength: day, Retain: 7, Seed: int64(rep + 1)})
		for _, rw := range rows {
			r.Update(rw.item, rw.at)
		}
		// Retention keeps days 3..9 (7 windows).
		if got := len(r.Windows()); got != 7 {
			t.Fatalf("retained %d windows, want 7", got)
		}
		est, ok := r.SubsetSumRange(3*day, 10*day-1, pred)
		if !ok {
			t.Fatal("range query failed")
		}
		sum += est.Value
	}
	mean := sum / reps
	if math.Abs(mean-want) > 0.15*want {
		t.Errorf("7-day feature mean %v, truth %v", mean, want)
	}
}

// binsEqual compares two bin lists exactly, order included.
func binsEqual(a, b []core.Bin) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedSketchBins(w *core.WeightedSketch) []core.Bin {
	bins := w.Bins()
	sort.Slice(bins, func(i, j int) bool {
		if bins[i].Count != bins[j].Count {
			return bins[i].Count < bins[j].Count
		}
		return bins[i].Item < bins[j].Item
	})
	return bins
}

// TestCachedMatchesColdExact: with every merge under capacity the range
// results are deterministic, so the cached and the NoCache rollup must
// agree bit-for-bit across an arbitrary interleaving of updates and
// queries — every layer (window snapshots, segments, memos) must serve
// exactly what a from-scratch merge computes.
func TestCachedMatchesColdExact(t *testing.T) {
	cached := mustNew(t, Config{Bins: 512, WindowLength: 10, Seed: 7})
	cold := mustNew(t, Config{Bins: 512, WindowLength: 10, Seed: 7, NoCache: true})
	update := func(item string, at int64) {
		cached.Update(item, at)
		cold.Update(item, at)
	}
	check := func(from, to int64) {
		t.Helper()
		ce, cok := cached.SubsetSumRange(from, to, func(s string) bool { return strings.HasPrefix(s, "u1") })
		de, dok := cold.SubsetSumRange(from, to, func(s string) bool { return strings.HasPrefix(s, "u1") })
		if cok != dok || ce != de {
			t.Fatalf("SubsetSumRange(%d,%d): cached %+v,%v cold %+v,%v", from, to, ce, cok, de, dok)
		}
		ct := cached.TopKRange(from, to, 7)
		dt := cold.TopKRange(from, to, 7)
		if !binsEqual(ct, dt) {
			t.Fatalf("TopKRange(%d,%d): cached %v, cold %v", from, to, ct, dt)
		}
		cr, dr := cached.Range(from, to), cold.Range(from, to)
		if (cr == nil) != (dr == nil) {
			t.Fatalf("Range(%d,%d): nil mismatch", from, to)
		}
		if cr != nil && !binsEqual(sortedSketchBins(cr), sortedSketchBins(dr)) {
			t.Fatalf("Range(%d,%d): cached %v, cold %v", from, to, sortedSketchBins(cr), sortedSketchBins(dr))
		}
	}
	// 12 windows, repeated + shifting queries + late data interleaved.
	for day := 0; day < 12; day++ {
		for i := 0; i < 30; i++ {
			update(fmt.Sprintf("u%d", i%17), int64(day*10+i%10))
		}
		if day >= 2 {
			check(0, int64(day*10+9))                 // full prefix, repeated often
			check(int64((day-2)*10), int64(day*10+9)) // trailing 3 windows
			check(0, int64(day*10+9))                 // immediate repeat → memo hit
		}
		if day == 7 {
			// Late rows into two old windows invalidate their snapshots,
			// any segment containing them, and every covering memo.
			update("late-burst", 15)
			update("late-burst", 35)
			check(0, 79)
			check(10, 39)
		}
	}
}

// TestCachedMatchesColdReduced: over capacity the merge draws randomness
// for the reduction, but the cached path feeds the reduction an identical
// exact sum and draws in the same order, so two rollups with the same seed
// and row stream — one cached, one NoCache — produce bit-identical results
// query for query. Repeats then serve the memo without drawing randomness
// and must reproduce the first answer exactly.
func TestCachedMatchesColdReduced(t *testing.T) {
	const bins = 32 // far under the ~600 distinct items → every merge reduces
	cached := mustNew(t, Config{Bins: bins, WindowLength: 10, Seed: 11})
	cold := mustNew(t, Config{Bins: bins, WindowLength: 10, Seed: 11, NoCache: true})
	rng := rand.New(rand.NewSource(99))
	for day := 0; day < 8; day++ {
		for i := 0; i < 400; i++ {
			item := fmt.Sprintf("u%d", rng.Intn(600))
			at := int64(day*10 + i%10)
			cached.Update(item, at)
			cold.Update(item, at)
		}
	}
	pred := func(s string) bool { return strings.HasSuffix(s, "7") }
	type result struct {
		est core.Estimate
		top []core.Bin
	}
	ranges := [][2]int64{{0, 79}, {20, 59}, {40, 79}, {0, 9}}
	first := make([]result, len(ranges))
	for i, rg := range ranges {
		ce, _ := cached.SubsetSumRange(rg[0], rg[1], pred)
		de, _ := cold.SubsetSumRange(rg[0], rg[1], pred)
		if ce != de {
			t.Fatalf("range %v: cached %+v, cold %+v", rg, ce, de)
		}
		top := cached.TopKRange(rg[0], rg[1], 10)
		first[i] = result{est: ce, top: top}
	}
	// Repeats over unchanged windows: memo hits, bit-identical to the
	// first (cold-equivalent) answers, in any order.
	for rep := 0; rep < 3; rep++ {
		for i := len(ranges) - 1; i >= 0; i-- {
			rg := ranges[i]
			ce, _ := cached.SubsetSumRange(rg[0], rg[1], pred)
			if ce != first[i].est {
				t.Fatalf("repeat %d range %v: %+v, want %+v", rep, rg, ce, first[i].est)
			}
			if top := cached.TopKRange(rg[0], rg[1], 10); !binsEqual(top, first[i].top) {
				t.Fatalf("repeat %d range %v: top-k drifted", rep, rg)
			}
		}
	}
}

// TestCacheInvalidationLiveWindow: new rows into the live window must show
// up in the next range query — the memo is version-stamped, not timed.
func TestCacheInvalidationLiveWindow(t *testing.T) {
	r := mustNew(t, Config{Bins: 128, WindowLength: 10, Seed: 13})
	for day := 0; day < 5; day++ {
		for i := 0; i < 20; i++ {
			r.Update(fmt.Sprintf("u%d", i%9), int64(day*10+i%10))
		}
	}
	pred := func(s string) bool { return s == "hot" }
	if est, _ := r.SubsetSumRange(0, 49, pred); est.Value != 0 {
		t.Fatalf("pre-update estimate = %v", est.Value)
	}
	for i := 0; i < 7; i++ {
		r.Update("hot", 45) // live window
	}
	if est, _ := r.SubsetSumRange(0, 49, pred); est.Value != 7 {
		t.Fatalf("post-update estimate = %v, want 7 (stale memo served?)", est.Value)
	}
	// And again with only the closed windows covered: their memo is
	// untouched by live-window rows.
	if est, _ := r.SubsetSumRange(0, 39, pred); est.Value != 0 {
		t.Fatalf("closed-range estimate = %v, want 0", est.Value)
	}
}

// TestCacheInvalidationLateData: a late row into a *closed* window must
// invalidate the segments and memos built over it.
func TestCacheInvalidationLateData(t *testing.T) {
	r := mustNew(t, Config{Bins: 128, WindowLength: 10, Seed: 17})
	for day := 0; day < 6; day++ {
		for i := 0; i < 20; i++ {
			r.Update(fmt.Sprintf("u%d", i%9), int64(day*10+i%10))
		}
	}
	pred := func(s string) bool { return s == "late" }
	if est, _ := r.SubsetSumRange(0, 59, pred); est.Value != 0 {
		t.Fatal("unexpected pre-late mass")
	}
	if !r.Update("late", 25) { // closed middle window, within retention
		t.Fatal("late row within retention rejected")
	}
	if est, _ := r.SubsetSumRange(0, 59, pred); est.Value != 1 {
		t.Fatalf("late row invisible to cached range: %v", est.Value)
	}
	if est, _ := r.SubsetSumRange(20, 29, pred); est.Value != 1 {
		t.Fatalf("late row invisible to single-window range: %v", est.Value)
	}
}

// TestCacheInvalidationGapFill: a late row creating a brand-new window
// *between* existing ones changes which windows a cached span covers; the
// start-list validation must catch it.
func TestCacheInvalidationGapFill(t *testing.T) {
	r := mustNew(t, Config{Bins: 64, WindowLength: 10, Seed: 19})
	r.Update("a", 5)  // window 0
	r.Update("a", 25) // window 20 (window 10 never created)
	r.Update("a", 35) // window 30
	if est, _ := r.SubsetSumRange(0, 39, func(s string) bool { return s == "a" }); est.Value != 3 {
		t.Fatalf("pre-gap estimate = %v", est.Value)
	}
	r.Update("a", 15) // creates window 10 inside the cached span
	if est, _ := r.SubsetSumRange(0, 39, func(s string) bool { return s == "a" }); est.Value != 4 {
		t.Fatalf("gap-filled window invisible: %v, want 4", est.Value)
	}
}

// TestCacheEvictionInteraction: eviction shifts the ring; cached results
// must follow the retained set, and dropped late rows (DroppedRows) must
// not perturb cached answers — a drop mutates no window.
func TestCacheEvictionInteraction(t *testing.T) {
	r := mustNew(t, Config{Bins: 64, WindowLength: 10, Retain: 3, Seed: 23})
	all := func(string) bool { return true }
	for day := 0; day < 3; day++ {
		for i := 0; i < 10; i++ {
			r.Update(fmt.Sprintf("d%d-%d", day, i), int64(day*10+i))
		}
	}
	if est, _ := r.SubsetSumRange(0, 99, all); est.Value != 30 {
		t.Fatalf("pre-eviction total = %v", est.Value)
	}
	// Day 3 evicts day 0.
	for i := 0; i < 10; i++ {
		r.Update(fmt.Sprintf("d3-%d", i), int64(30+i))
	}
	if got := len(r.Windows()); got != 3 {
		t.Fatalf("retained %d windows", got)
	}
	est, _ := r.SubsetSumRange(0, 99, all)
	if est.Value != 30 {
		t.Fatalf("post-eviction total = %v, want 30 (days 1..3)", est.Value)
	}
	// A late row for the evicted window is dropped and must change
	// nothing — not even through a stale cache path.
	if r.Update("ghost", 5) {
		t.Fatal("row for evicted window accepted")
	}
	if r.DroppedRows() != 1 {
		t.Fatalf("DroppedRows = %d", r.DroppedRows())
	}
	if est2, _ := r.SubsetSumRange(0, 99, all); est2 != est {
		t.Fatalf("dropped row changed cached answer: %+v vs %+v", est2, est)
	}
	if est2, _ := r.SubsetSumRange(0, 99, func(s string) bool { return s == "ghost" }); est2.Value != 0 {
		t.Fatal("dropped row visible in range")
	}
}

// TestRangeResultIndependent: the sketch Range returns is a materialized
// copy; updating it must not corrupt the rollup's caches.
func TestRangeResultIndependent(t *testing.T) {
	r := mustNew(t, Config{Bins: 64, WindowLength: 10, Seed: 29})
	for i := 0; i < 40; i++ {
		r.Update(fmt.Sprintf("u%d", i%7), int64(i))
	}
	m := r.Range(0, 39)
	if m == nil {
		t.Fatal("nil range")
	}
	m.Update("intruder", 1000)
	if est, _ := r.SubsetSumRange(0, 39, func(s string) bool { return s == "intruder" }); est.Value != 0 {
		t.Fatal("mutating a Range result leaked into the rollup cache")
	}
	if m2 := r.Range(0, 39); m2.Contains("intruder") {
		t.Fatal("second Range sees the first result's mutation")
	}
}

// TestTopKRangeSelection: TopKRange must agree with a full descending sort
// of the merged bins, both under and over capacity.
func TestTopKRangeSelection(t *testing.T) {
	for _, bins := range []int{8, 256} {
		r := mustNew(t, Config{Bins: bins, WindowLength: 10, Seed: 31})
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 600; i++ {
			r.Update(fmt.Sprintf("u%d", rng.Intn(40)), int64(rng.Intn(50)))
		}
		m := r.Range(0, 49)
		full := m.Bins()
		sort.Slice(full, func(i, j int) bool {
			if full[i].Count != full[j].Count {
				return full[i].Count > full[j].Count
			}
			return full[i].Item < full[j].Item
		})
		for _, k := range []int{0, 1, 3, len(full), len(full) + 5} {
			got := r.TopKRange(0, 49, k)
			want := full
			if k < len(full) {
				want = full[:k]
			}
			if !binsEqual(got, want) {
				t.Fatalf("bins=%d k=%d: TopKRange %v, want %v", bins, k, got, want)
			}
		}
	}
}

func TestRandomSeedWhenZero(t *testing.T) {
	a := mustNew(t, Config{Bins: 4, WindowLength: 10})
	b := mustNew(t, Config{Bins: 4, WindowLength: 10})
	// Just exercise: both work independently.
	a.Update("x", 1)
	b.Update("x", 1)
	if a.Window(1).Estimate("x") != 1 || b.Window(1).Estimate("x") != 1 {
		t.Error("zero-seed rollups broken")
	}
}
