package rollup

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Rollup {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Bins: 0, WindowLength: 10},
		{Bins: 10, WindowLength: 0},
		{Bins: 10, WindowLength: 10, Retain: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestWindowRouting(t *testing.T) {
	r := mustNew(t, Config{Bins: 16, WindowLength: 100, Seed: 1})
	r.Update("a", 0)
	r.Update("a", 99)
	r.Update("a", 100)
	r.Update("b", 250)
	if got := r.Windows(); len(got) != 3 || got[0] != 0 || got[1] != 100 || got[2] != 200 {
		t.Fatalf("Windows = %v", got)
	}
	if got := r.Window(50).Estimate("a"); got != 2 {
		t.Errorf("window[0] a = %v, want 2", got)
	}
	if got := r.Window(150).Estimate("a"); got != 1 {
		t.Errorf("window[100] a = %v, want 1", got)
	}
	if r.Window(9999) != nil {
		t.Error("Window for untouched time not nil")
	}
}

func TestNegativeTimestamps(t *testing.T) {
	r := mustNew(t, Config{Bins: 4, WindowLength: 100, Seed: 1})
	r.Update("x", -1)   // window [-100, 0)
	r.Update("x", -100) // same window
	r.Update("x", 0)    // window [0, 100)
	ws := r.Windows()
	if len(ws) != 2 || ws[0] != -100 || ws[1] != 0 {
		t.Fatalf("Windows = %v", ws)
	}
	if got := r.Window(-50).Estimate("x"); got != 2 {
		t.Errorf("negative window count = %v, want 2", got)
	}
}

func TestEviction(t *testing.T) {
	r := mustNew(t, Config{Bins: 8, WindowLength: 10, Retain: 3, Seed: 2})
	for day := 0; day < 6; day++ {
		r.Update(fmt.Sprintf("d%d", day), int64(day*10))
	}
	ws := r.Windows()
	if len(ws) != 3 || ws[0] != 30 {
		t.Fatalf("Windows after eviction = %v", ws)
	}
	// Late row for an evicted window is dropped and counted.
	if r.Update("late", 5) {
		t.Error("late row for evicted window accepted")
	}
	if r.DroppedRows() != 1 {
		t.Errorf("DroppedRows = %d", r.DroppedRows())
	}
	// Row in a retained window still works.
	if !r.Update("ok", 45) {
		t.Error("row for live window rejected")
	}
}

func TestRangeMergeExactWhenSmall(t *testing.T) {
	r := mustNew(t, Config{Bins: 64, WindowLength: 10, Seed: 3})
	truth := map[string]float64{}
	for day := 0; day < 5; day++ {
		for i := 0; i < 20; i++ {
			item := fmt.Sprintf("u%d", i%10)
			r.Update(item, int64(day*10+i%10))
			if day >= 1 && day <= 3 {
				truth[item]++
			}
		}
	}
	m := r.Range(10, 39)
	if m == nil {
		t.Fatal("Range returned nil")
	}
	// Under capacity everywhere, the merge is exact.
	for item, want := range truth {
		if got := m.Estimate(item); got != want {
			t.Errorf("merged Estimate(%s) = %v, want %v", item, got, want)
		}
	}
	if got := r.TotalRange(10, 39); got != 60 {
		t.Errorf("TotalRange = %v, want 60", got)
	}
	est, ok := r.SubsetSumRange(10, 39, func(s string) bool { return s == "u3" })
	if !ok || est.Value != truth["u3"] {
		t.Errorf("SubsetSumRange = %v,%v", est.Value, ok)
	}
}

func TestRangeEdges(t *testing.T) {
	r := mustNew(t, Config{Bins: 8, WindowLength: 10, Seed: 4})
	r.Update("a", 15)
	if r.Range(30, 40) != nil {
		t.Error("Range over empty span not nil")
	}
	if r.Range(20, 10) != nil {
		t.Error("inverted Range not nil")
	}
	if _, ok := r.SubsetSumRange(30, 40, func(string) bool { return true }); ok {
		t.Error("SubsetSumRange over empty span reported ok")
	}
	if got := r.TotalRange(20, 10); got != 0 {
		t.Errorf("inverted TotalRange = %v", got)
	}
	// A range starting mid-window still includes that window.
	if m := r.Range(17, 18); m == nil || m.Estimate("a") != 1 {
		t.Error("mid-window range missed the row")
	}
}

// TestSevenDayFeature reproduces the paper's use case: daily sketches
// merged into a trailing-7-day feature, checked for unbiasedness across
// replicates.
func TestSevenDayFeature(t *testing.T) {
	const day = 86400
	rng := rand.New(rand.NewSource(5))

	// 10 days of traffic; the feature is clicks per advertiser over days
	// 3..9. Advertisers have skewed volumes.
	type row struct {
		item string
		at   int64
	}
	var rows []row
	truth := map[string]float64{}
	for d := 0; d < 10; d++ {
		for i := 0; i < 3000; i++ {
			adv := int(math.Sqrt(float64(rng.Intn(400))))
			item := fmt.Sprintf("adv%d/ad%d", adv, rng.Intn(5))
			at := int64(d*day + rng.Intn(day))
			rows = append(rows, row{item, at})
			if d >= 3 {
				truth[item]++
			}
		}
	}
	pred := func(s string) bool { return strings.HasPrefix(s, "adv7/") }
	var want float64
	for k, v := range truth {
		if pred(k) {
			want += v
		}
	}

	const reps = 60
	var sum float64
	for rep := 0; rep < reps; rep++ {
		r := mustNew(t, Config{Bins: 256, WindowLength: day, Retain: 7, Seed: int64(rep + 1)})
		for _, rw := range rows {
			r.Update(rw.item, rw.at)
		}
		// Retention keeps days 3..9 (7 windows).
		if got := len(r.Windows()); got != 7 {
			t.Fatalf("retained %d windows, want 7", got)
		}
		est, ok := r.SubsetSumRange(3*day, 10*day-1, pred)
		if !ok {
			t.Fatal("range query failed")
		}
		sum += est.Value
	}
	mean := sum / reps
	if math.Abs(mean-want) > 0.15*want {
		t.Errorf("7-day feature mean %v, truth %v", mean, want)
	}
}

func TestRandomSeedWhenZero(t *testing.T) {
	a := mustNew(t, Config{Bins: 4, WindowLength: 10})
	b := mustNew(t, Config{Bins: 4, WindowLength: 10})
	// Just exercise: both work independently.
	a.Update("x", 1)
	b.Update("x", 1)
	if a.Window(1).Estimate("x") != 1 || b.Window(1).Estimate("x") != 1 {
		t.Error("zero-seed rollups broken")
	}
}
