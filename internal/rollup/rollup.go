// Package rollup maintains per-window Unbiased Space Saving sketches and
// answers queries over arbitrary ranges of recent windows by merging them
// with an unbiased reduction — the paper's §5.5 scenario: "Sketches for
// clicks may be computed per day, but the final machine learning feature
// may combine the last 7 days."
//
// A Rollup owns a ring of at most Retain window sketches. Rows are routed
// to the window of their timestamp; closed windows become immutable; range
// queries merge the covered windows on demand. Because the merge reduction
// preserves expected counts (Theorem 2 of the paper), a range estimate is
// unbiased for the true range total.
package rollup

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
)

// Config parameterizes a Rollup.
type Config struct {
	// Bins is the sketch size per window and for merged query results.
	Bins int
	// WindowLength is the duration of one window in the caller's time
	// unit (e.g. 86400 for daily windows with Unix-second timestamps).
	WindowLength int64
	// Retain is how many most-recent windows are kept; older windows are
	// evicted. Zero means keep everything.
	Retain int
	// Seed drives all sketch randomness; 0 picks a random seed.
	Seed int64
}

// Rollup is a windowed collection of sketches. Not safe for concurrent use.
type Rollup struct {
	cfg     Config
	rng     *rand.Rand
	windows map[int64]*core.Sketch // window start → sketch
	order   []int64                // sorted window starts
	dropped int64                  // rows routed to evicted windows
}

// New validates cfg and returns an empty Rollup.
func New(cfg Config) (*Rollup, error) {
	if cfg.Bins <= 0 {
		return nil, fmt.Errorf("rollup: bins = %d, want > 0", cfg.Bins)
	}
	if cfg.WindowLength <= 0 {
		return nil, fmt.Errorf("rollup: window length = %d, want > 0", cfg.WindowLength)
	}
	if cfg.Retain < 0 {
		return nil, fmt.Errorf("rollup: retain = %d, want >= 0", cfg.Retain)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	return &Rollup{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		windows: make(map[int64]*core.Sketch),
	}, nil
}

// windowStart floors a timestamp to its window's start.
func (r *Rollup) windowStart(at int64) int64 {
	w := at / r.cfg.WindowLength
	if at < 0 && at%r.cfg.WindowLength != 0 {
		w--
	}
	return w * r.cfg.WindowLength
}

// Update routes one row with the given timestamp into its window, creating
// the window if needed and evicting the oldest windows beyond Retain. It
// reports false if the row's window was already evicted (late data beyond
// the retention horizon is dropped, and counted in DroppedRows).
func (r *Rollup) Update(item string, at int64) bool {
	start := r.windowStart(at)
	sk, ok := r.windows[start]
	if !ok {
		if len(r.order) > 0 && start < r.order[0] && r.retained() {
			r.dropped++
			return false
		}
		sk = core.New(r.cfg.Bins, core.Unbiased, r.rng)
		r.windows[start] = sk
		r.order = insertSorted(r.order, start)
		r.evict()
		if _, still := r.windows[start]; !still {
			// The new window itself was beyond retention (possible
			// when a very old timestamp creates then loses it).
			r.dropped++
			return false
		}
	}
	sk.Update(item)
	return true
}

func (r *Rollup) retained() bool {
	return r.cfg.Retain > 0 && len(r.order) >= r.cfg.Retain
}

func insertSorted(xs []int64, v int64) []int64 {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= v })
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

func (r *Rollup) evict() {
	if r.cfg.Retain <= 0 {
		return
	}
	for len(r.order) > r.cfg.Retain {
		oldest := r.order[0]
		r.order = r.order[1:]
		delete(r.windows, oldest)
	}
}

// Windows returns the retained window start times in ascending order.
func (r *Rollup) Windows() []int64 {
	out := make([]int64, len(r.order))
	copy(out, r.order)
	return out
}

// DroppedRows returns how many rows arrived for already-evicted windows.
func (r *Rollup) DroppedRows() int64 { return r.dropped }

// Window returns the sketch for the window containing at, or nil.
func (r *Rollup) Window(at int64) *core.Sketch {
	return r.windows[r.windowStart(at)]
}

// Range merges all windows intersecting [from, to] (inclusive timestamps)
// into one weighted sketch of Bins bins. The result is unbiased for subset
// sums over the rows in those windows. Returns nil when no window
// intersects the range.
func (r *Rollup) Range(from, to int64) *core.WeightedSketch {
	if from > to {
		return nil
	}
	lo := r.windowStart(from)
	var picked []*core.Sketch
	for _, start := range r.order {
		if start >= lo && start <= to {
			picked = append(picked, r.windows[start])
		}
	}
	if len(picked) == 0 {
		return nil
	}
	return core.MergeSketches(r.cfg.Bins, core.PairwiseReduction, r.rng, picked...)
}

// SubsetSumRange is a convenience wrapper: estimate the subset sum over the
// rows in windows intersecting [from, to].
func (r *Rollup) SubsetSumRange(from, to int64, pred func(string) bool) (core.Estimate, bool) {
	m := r.Range(from, to)
	if m == nil {
		return core.Estimate{}, false
	}
	return m.SubsetSum(pred), true
}

// TotalRange returns the exact total number of rows in the covered windows
// (Space Saving preserves totals exactly, so this is not an estimate).
func (r *Rollup) TotalRange(from, to int64) float64 {
	if from > to {
		return 0
	}
	lo := r.windowStart(from)
	var tot float64
	for _, start := range r.order {
		if start >= lo && start <= to {
			tot += r.windows[start].Total()
		}
	}
	return tot
}
