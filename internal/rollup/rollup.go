// Package rollup maintains per-window Unbiased Space Saving sketches and
// answers queries over arbitrary ranges of recent windows by merging them
// with an unbiased reduction — the paper's §5.5 scenario: "Sketches for
// clicks may be computed per day, but the final machine learning feature
// may combine the last 7 days."
//
// A Rollup owns a ring of at most Retain window sketches. Rows are routed
// to the window of their timestamp; range queries merge the covered
// windows. Because the merge reduction preserves expected counts (Theorem
// 2 of the paper), a range estimate is unbiased for the true range total.
//
// A Rollup is single-owner: updates and queries are unsynchronized, and
// the caches below are mutated by queries too, so even read-only use from
// multiple goroutines needs external locking. Results (TopKRange bins,
// Range sketches) are caller-owned copies; cached segment bins are shared
// internally but never escape.
//
// # Incremental range merging
//
// Merging every covered window from scratch on every query is the
// re-merge disease: a trailing-90-day feature polled between row arrivals
// pays an O(windows · bins) sort-and-fold per poll even though at most one
// window — the live one — has changed. Queries instead run on three layers
// of caching, maintaining the answer under updates instead of recomputing
// it:
//
//  1. Window snapshots: each window caches its sorted bin list, stamped
//     with the sketch's mutation version (core.Sketch.Version). Closed
//     windows are quiescent, so their snapshots are taken once and never
//     rebuilt; a window that takes late rows re-snapshots on next use.
//  2. A binary-lifting merge tree: a level-l segment is the exact
//     item-wise sum (core.SumBins) of 2^l consecutive closed windows'
//     snapshots, built lazily from two level-(l-1) halves and memoized
//     keyed by (first window start, level). SumBins is associative with a
//     canonical result and window counts are integral, so summing cached
//     segment sums is bit-identical to summing the raw window lists. A
//     closed span of w windows decomposes greedily into O(log w) segments.
//  3. A range memo: the final reduced bin list per (first, last) covered
//     window pair, revalidated against every covered window's current
//     version. A repeated query over unchanged windows is O(w) integer
//     compares — no merging at all, and no randomness drawn.
//
// Every cache entry records the window starts and versions it was built
// from and is revalidated against the live ring on each use, so evictions,
// late rows into old windows, and windows created out of order all
// invalidate exactly the entries they affect. When a query's range covers
// the live (newest) window, that window enters the merge as a single
// delta list on top of the cached closed segments — the O(windows)
// re-merge is gone, only the live delta is merged per query.
//
// Not safe for concurrent use.
package rollup

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/core"
)

// Config parameterizes a Rollup.
type Config struct {
	// Bins is the sketch size per window and for merged query results.
	Bins int
	// WindowLength is the duration of one window in the caller's time
	// unit (e.g. 86400 for daily windows with Unix-second timestamps).
	WindowLength int64
	// Retain is how many most-recent windows are kept; older windows are
	// evicted. Zero means keep everything.
	Retain int
	// Seed drives all sketch randomness; 0 picks a random seed.
	Seed int64
	// NoCache disables the snapshot/segment/memo layers: every range
	// query re-merges all covered windows from scratch, reproducing the
	// pre-incremental behavior. Exists for cold-vs-cached benchmarks and
	// equivalence tests.
	NoCache bool
}

// window is one retained time window: its sketch plus a version-stamped
// snapshot of the sketch's bins.
type window struct {
	start int64
	sk    *core.Sketch
	bins  []core.Bin // cached ascending bin snapshot, nil until first use
	binsV uint64     // sk.Version() at snapshot time
}

// snapshot returns the window's bins, refreshing the cached copy when the
// sketch has mutated since it was taken. The returned slice is shared with
// the cache layers and must not be modified.
func (w *window) snapshot() []core.Bin {
	if w.bins == nil || w.binsV != w.sk.Version() {
		w.bins = w.sk.Bins()
		w.binsV = w.sk.Version()
	}
	return w.bins
}

// segKey addresses a merge-tree segment: 2^level consecutive windows
// starting at the window with this start time.
type segKey struct {
	start int64
	level uint8
}

// rangeKey addresses a memoized final range result by the first and last
// covered window's start times.
type rangeKey struct {
	lo, hi int64
}

// cachedMerge is one cached merge result — a merge-tree segment (exact
// item-wise sum of 2^level snapshots) or a range memo (final reduced
// bins) — plus the window starts and versions it was built from. Both
// cache layers share the one revalidation protocol.
type cachedMerge struct {
	starts   []int64
	versions []uint64
	bins     []core.Bin
}

// valid reports whether c still describes the windows at positions
// [i, i+len(c.starts)) — same starts, same versions. Anything else —
// eviction shifts, late rows, windows created inside the span — shows up
// as a mismatch here.
func (c *cachedMerge) valid(r *Rollup, i int) bool {
	if i+len(c.starts) > len(r.order) {
		return false
	}
	for j, start := range c.starts {
		w := r.order[i+j]
		if w.start != start || w.sk.Version() != c.versions[j] {
			return false
		}
	}
	return true
}

// newCachedMerge stamps bins with the (start, version) pairs of the n
// windows at positions [i, i+n).
func (r *Rollup) newCachedMerge(i, n int, bins []core.Bin) *cachedMerge {
	c := &cachedMerge{starts: make([]int64, n), versions: make([]uint64, n), bins: bins}
	for j := 0; j < n; j++ {
		w := r.order[i+j]
		c.starts[j] = w.start
		c.versions[j] = w.sk.Version()
	}
	return c
}

const (
	// maxSegments and maxRangeMemos bound the cache maps; beyond them,
	// arbitrary entries are dropped. Stale entries are also pruned on
	// eviction, so these only bite under adversarial query/eviction
	// churn.
	maxSegments   = 512
	maxRangeMemos = 128
)

// Rollup is a windowed collection of sketches. Not safe for concurrent use.
type Rollup struct {
	cfg     Config
	rng     *rand.Rand
	byStart map[int64]*window // window start → window
	order   []*window         // retained windows, ascending by start
	dropped int64             // rows routed to evicted windows

	segs    map[segKey]*cachedMerge
	memos   map[rangeKey]*cachedMerge
	scratch [][]core.Bin // reusable merge input list
}

// New validates cfg and returns an empty Rollup.
func New(cfg Config) (*Rollup, error) {
	if cfg.Bins <= 0 {
		return nil, fmt.Errorf("rollup: bins = %d, want > 0", cfg.Bins)
	}
	if cfg.WindowLength <= 0 {
		return nil, fmt.Errorf("rollup: window length = %d, want > 0", cfg.WindowLength)
	}
	if cfg.Retain < 0 {
		return nil, fmt.Errorf("rollup: retain = %d, want >= 0", cfg.Retain)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	return &Rollup{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		byStart: make(map[int64]*window),
		segs:    make(map[segKey]*cachedMerge),
		memos:   make(map[rangeKey]*cachedMerge),
	}, nil
}

// windowStart floors a timestamp to its window's start.
func (r *Rollup) windowStart(at int64) int64 {
	w := at / r.cfg.WindowLength
	if at < 0 && at%r.cfg.WindowLength != 0 {
		w--
	}
	return w * r.cfg.WindowLength
}

// Update routes one row with the given timestamp into its window, creating
// the window if needed and evicting the oldest windows beyond Retain. It
// reports false if the row's window was already evicted (late data beyond
// the retention horizon is dropped, and counted in DroppedRows).
func (r *Rollup) Update(item string, at int64) bool {
	start := r.windowStart(at)
	w, ok := r.byStart[start]
	if !ok {
		if len(r.order) > 0 && start < r.order[0].start && r.retained() {
			r.dropped++
			return false
		}
		w = &window{start: start, sk: core.New(r.cfg.Bins, core.Unbiased, r.rng)}
		r.byStart[start] = w
		r.insert(w)
		r.evict()
		if _, still := r.byStart[start]; !still {
			// The new window itself was beyond retention (possible
			// when a very old timestamp creates then loses it).
			r.dropped++
			return false
		}
	}
	w.sk.Update(item)
	return true
}

func (r *Rollup) retained() bool {
	return r.cfg.Retain > 0 && len(r.order) >= r.cfg.Retain
}

func (r *Rollup) insert(w *window) {
	i := sort.Search(len(r.order), func(i int) bool { return r.order[i].start >= w.start })
	r.order = append(r.order, nil)
	copy(r.order[i+1:], r.order[i:])
	r.order[i] = w
}

func (r *Rollup) evict() {
	if r.cfg.Retain <= 0 || len(r.order) <= r.cfg.Retain {
		return
	}
	for len(r.order) > r.cfg.Retain {
		oldest := r.order[0]
		r.order[0] = nil
		r.order = r.order[1:]
		delete(r.byStart, oldest.start)
	}
	// Cache entries anchored before the new horizon can never validate
	// again; drop them now so the maps track the retained ring.
	horizon := r.order[0].start
	for k := range r.segs {
		if k.start < horizon {
			delete(r.segs, k)
		}
	}
	for k := range r.memos {
		if k.lo < horizon {
			delete(r.memos, k)
		}
	}
}

// Windows returns the retained window start times in ascending order.
func (r *Rollup) Windows() []int64 {
	out := make([]int64, len(r.order))
	for i, w := range r.order {
		out[i] = w.start
	}
	return out
}

// DroppedRows returns how many rows arrived for already-evicted windows.
func (r *Rollup) DroppedRows() int64 { return r.dropped }

// RestoreWindow loads one window's serialized bin state — the durability
// restore path. start must be window-aligned and not already retained;
// the window's sketch is rebuilt directly from the bins (core.RestoreUnit
// semantics: integral counts, rows must equal the bin mass, no randomness
// drawn). A restored window past the retention horizon is evicted
// immediately, like a live row for it would be.
func (r *Rollup) RestoreWindow(start int64, bins []core.Bin, rows int64) error {
	if got := r.windowStart(start); got != start {
		return fmt.Errorf("rollup: restore window start %d is not aligned (window start %d)", start, got)
	}
	if _, exists := r.byStart[start]; exists {
		return fmt.Errorf("rollup: restore window %d already exists", start)
	}
	w := &window{start: start, sk: core.New(r.cfg.Bins, core.Unbiased, r.rng)}
	if err := core.RestoreUnit(w.sk, bins, rows); err != nil {
		return fmt.Errorf("rollup: restore window %d: %w", start, err)
	}
	r.byStart[start] = w
	r.insert(w)
	r.evict()
	return nil
}

// Window returns the sketch for the window containing at, or nil.
func (r *Rollup) Window(at int64) *core.Sketch {
	w, ok := r.byStart[r.windowStart(at)]
	if !ok {
		return nil
	}
	return w.sk
}

// span locates the covered window indices [i0, i1] for timestamps
// [from, to]; ok is false when no retained window intersects.
func (r *Rollup) span(from, to int64) (i0, i1 int, ok bool) {
	if from > to || len(r.order) == 0 {
		return 0, 0, false
	}
	lo := r.windowStart(from)
	i0 = sort.Search(len(r.order), func(i int) bool { return r.order[i].start >= lo })
	i1 = sort.Search(len(r.order), func(i int) bool { return r.order[i].start > to }) - 1
	if i0 > i1 || i0 == len(r.order) {
		return 0, 0, false
	}
	return i0, i1, true
}

// segmentBins returns the exact summed bins of the 2^level windows at
// positions [i, i+2^level), serving from the merge tree when the cached
// node still matches the live windows and rebuilding just the stale nodes
// otherwise. By the time a node is stamped, every covered window's
// snapshot has been refreshed in this same query, so the recorded
// versions are exactly the versions of the bins that were summed.
func (r *Rollup) segmentBins(i, level int) []core.Bin {
	if level == 0 {
		return r.order[i].snapshot()
	}
	key := segKey{start: r.order[i].start, level: uint8(level)}
	if s, ok := r.segs[key]; ok && s.valid(r, i) {
		return s.bins
	}
	n := 1 << level
	left := r.segmentBins(i, level-1)
	right := r.segmentBins(i+n/2, level-1)
	s := r.newCachedMerge(i, n, core.SumBins(left, right))
	if len(r.segs) >= maxSegments {
		for k := range r.segs {
			delete(r.segs, k)
			break
		}
	}
	r.segs[key] = s
	return s.bins
}

// rangeBins returns the merged-and-reduced bins over windows intersecting
// [from, to] in canonical ascending (count, item) order, plus ok=false when
// no retained window intersects. The returned slice is owned by the cache
// and must not be modified.
//
// The merge input is identical to concatenating every covered window's bin
// list, so for a fixed RNG state the result is bit-identical to the
// from-scratch merge; on a memo hit no randomness is drawn at all.
func (r *Rollup) rangeBins(from, to int64) ([]core.Bin, bool) {
	i0, i1, ok := r.span(from, to)
	if !ok {
		return nil, false
	}
	if r.cfg.NoCache {
		lists := r.scratch[:0]
		for i := i0; i <= i1; i++ {
			lists = append(lists, r.order[i].sk.Bins())
		}
		bins := core.MergeBins(r.cfg.Bins, core.PairwiseReduction, r.rng, lists...)
		r.releaseScratch(lists)
		return bins, true
	}

	key := rangeKey{lo: r.order[i0].start, hi: r.order[i1].start}
	if m, ok := r.memos[key]; ok && m.valid(r, i0) {
		return m.bins, true
	}

	// The newest window is live — it may take more rows — so it enters as
	// a single delta list; everything older is closed and comes from the
	// merge tree in O(log span) cached segments.
	live := len(r.order) - 1
	closedHi := i1
	if i1 == live {
		closedHi = i1 - 1
	}
	lists := r.scratch[:0]
	for i := i0; i <= closedHi; {
		span := closedHi - i + 1
		level := bits.Len(uint(span)) - 1
		lists = append(lists, r.segmentBins(i, level))
		i += 1 << level
	}
	if i1 == live {
		lists = append(lists, r.order[live].snapshot())
	}
	bins := core.MergeBins(r.cfg.Bins, core.PairwiseReduction, r.rng, lists...)
	r.releaseScratch(lists)

	if len(r.memos) >= maxRangeMemos {
		for k := range r.memos {
			delete(r.memos, k)
			break
		}
	}
	r.memos[key] = r.newCachedMerge(i0, i1-i0+1, bins)
	return bins, true
}

// releaseScratch returns the merge input list for reuse, dropping the bin
// slice references so the scratch pins nothing between queries.
func (r *Rollup) releaseScratch(lists [][]core.Bin) {
	for i := range lists {
		lists[i] = nil
	}
	r.scratch = lists[:0]
}

// Range merges all windows intersecting [from, to] (inclusive timestamps)
// into one weighted sketch of Bins bins. The result is unbiased for subset
// sums over the rows in those windows and is independent of the rollup
// (updating it does not touch rollup state). Returns nil when no window
// intersects the range.
func (r *Rollup) Range(from, to int64) *core.WeightedSketch {
	bins, ok := r.rangeBins(from, to)
	if !ok {
		return nil
	}
	// The materialized sketch gets its own random source (seeded off the
	// rollup's, so fixed-seed runs stay reproducible): sharing r.rng would
	// couple the caller's future updates to rollup randomness — and race
	// if they happen on another goroutine.
	w := core.NewWeighted(r.cfg.Bins, rand.New(rand.NewSource(r.rng.Int63())))
	if err := core.RestoreWeighted(w, bins, 0); err != nil {
		// Merged bins are unique-item, non-negative and finite by
		// construction; a failure here is internal corruption.
		panic(fmt.Sprintf("rollup: materialize range: %v", err))
	}
	return w
}

// SubsetSumRange estimates the subset sum over the rows in windows
// intersecting [from, to], straight off the cached merged bins.
func (r *Rollup) SubsetSumRange(from, to int64, pred func(string) bool) (core.Estimate, bool) {
	bins, ok := r.rangeBins(from, to)
	if !ok {
		return core.Estimate{}, false
	}
	return core.SubsetSumBins(bins, r.cfg.Bins, pred), true
}

// TopKRange returns the k heaviest items over the merged range in
// descending count order (ties broken by item), via the shared O(n log k)
// heap selection.
func (r *Rollup) TopKRange(from, to int64, k int) []core.Bin {
	bins, ok := r.rangeBins(from, to)
	if !ok {
		return nil
	}
	return core.SelectTop(bins, k)
}

// TotalRange returns the exact total number of rows in the covered windows
// (Space Saving preserves totals exactly, so this is not an estimate).
func (r *Rollup) TotalRange(from, to int64) float64 {
	i0, i1, ok := r.span(from, to)
	if !ok {
		return 0
	}
	var tot float64
	for i := i0; i <= i1; i++ {
		tot += r.order[i].sk.Total()
	}
	return tot
}
