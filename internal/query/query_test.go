package query

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func newSketch(t *testing.T, rows []string) *core.Sketch {
	t.Helper()
	sk := core.New(1024, core.Unbiased, rand.New(rand.NewSource(1)))
	for _, r := range rows {
		sk.Update(r)
	}
	return sk
}

func label(country, device string) string {
	return "country=" + country + "|device=" + device
}

func testRows() []string {
	var rows []string
	add := func(c, d string, n int) {
		for i := 0; i < n; i++ {
			rows = append(rows, label(c, d))
		}
	}
	add("us", "ios", 30)
	add("us", "android", 20)
	add("de", "ios", 10)
	add("de", "android", 40)
	add("jp", "ios", 5)
	return rows
}

func TestParseRow(t *testing.T) {
	row, err := ParseRow("a=1|b=two|c=x=y")
	if err != nil {
		t.Fatal(err)
	}
	if row["a"] != "1" || row["b"] != "two" || row["c"] != "x=y" {
		t.Errorf("row = %v", row)
	}
	for _, bad := range []string{"", "noequals", "=value", "a=1|bad"} {
		if _, err := ParseRow(bad); err == nil {
			t.Errorf("ParseRow(%q) succeeded", bad)
		}
	}
}

func TestGlobalAggregate(t *testing.T) {
	sk := newSketch(t, testRows())
	groups, skipped, err := Run(sk, Query{})
	if err != nil || skipped != 0 {
		t.Fatalf("err=%v skipped=%d", err, skipped)
	}
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0].Sum.Value != 105 {
		t.Errorf("global sum = %v, want 105", groups[0].Sum.Value)
	}
	if groups[0].KeyString() != "*" {
		t.Errorf("global key = %q", groups[0].KeyString())
	}
}

func TestWhereFilter(t *testing.T) {
	sk := newSketch(t, testRows())
	groups, _, _ := Run(sk, Query{Where: []Filter{Eq("country", "us")}})
	if len(groups) != 1 || groups[0].Sum.Value != 50 {
		t.Fatalf("us sum = %v", groups)
	}
	// OR within a filter.
	groups, _, _ = Run(sk, Query{Where: []Filter{{Dim: "country", In: []string{"us", "jp"}}}})
	if groups[0].Sum.Value != 55 {
		t.Errorf("us|jp sum = %v, want 55", groups[0].Sum.Value)
	}
	// AND across filters.
	groups, _, _ = Run(sk, Query{Where: []Filter{Eq("country", "de"), Eq("device", "ios")}})
	if groups[0].Sum.Value != 10 {
		t.Errorf("de∧ios sum = %v, want 10", groups[0].Sum.Value)
	}
	// Filter on a missing dimension matches nothing: the single global
	// group exists with sum 0... actually no bins pass, so no groups.
	groups, _, _ = Run(sk, Query{Where: []Filter{Eq("browser", "ff")}})
	if len(groups) != 0 {
		t.Errorf("missing-dim filter produced %v", groups)
	}
}

func TestGroupBy(t *testing.T) {
	sk := newSketch(t, testRows())
	groups, _, _ := Run(sk, Query{GroupBy: []string{"country"}})
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	want := map[string]float64{"country=us": 50, "country=de": 50, "country=jp": 5}
	for _, g := range groups {
		if got := want[g.KeyString()]; g.Sum.Value != got {
			t.Errorf("%s = %v, want %v", g.KeyString(), g.Sum.Value, got)
		}
	}
	// Descending order.
	for i := 1; i < len(groups); i++ {
		if groups[i].Sum.Value > groups[i-1].Sum.Value {
			t.Errorf("groups not descending")
		}
	}
}

func TestGroupByTwoDims(t *testing.T) {
	sk := newSketch(t, testRows())
	groups, _, _ := Run(sk, Query{
		Where:   []Filter{{Dim: "device", In: []string{"ios", "android"}}},
		GroupBy: []string{"country", "device"},
	})
	if len(groups) != 5 {
		t.Fatalf("%d groups", len(groups))
	}
	if groups[0].KeyString() != "country=de|device=android" || groups[0].Sum.Value != 40 {
		t.Errorf("top group = %s %v", groups[0].KeyString(), groups[0].Sum.Value)
	}
}

func TestSkippedForeignLabels(t *testing.T) {
	rows := append(testRows(), "rawlabel", "rawlabel")
	sk := newSketch(t, rows)
	groups, skipped, err := Run(sk, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 { // one bin holds "rawlabel"
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if groups[0].Sum.Value != 105 {
		t.Errorf("sum = %v", groups[0].Sum.Value)
	}
}

func TestStdErrUsesEquationFive(t *testing.T) {
	// Saturated sketch so MinCount > 0, then check StdErr = Nmin·√C_S.
	var rows []string
	for i := 0; i < 5000; i++ {
		rows = append(rows, fmt.Sprintf("k=%d", i%300))
	}
	sk := core.New(64, core.Unbiased, rand.New(rand.NewSource(2)))
	for _, r := range rows {
		sk.Update(r)
	}
	groups, _, _ := Run(sk, Query{})
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	g := groups[0]
	want := sk.MinCount() * math.Sqrt(float64(g.Sum.SampleBins))
	if math.Abs(g.Sum.StdErr-want) > 1e-9 {
		t.Errorf("StdErr = %v, want %v", g.Sum.StdErr, want)
	}
	if g.Sum.SampleBins != sk.Size() {
		t.Errorf("SampleBins = %d, want %d", g.Sum.SampleBins, sk.Size())
	}
}

// TestGroupByUnbiased checks end-to-end unbiasedness of grouped sums under
// sketch randomness on an overflowing sketch.
func TestGroupByUnbiased(t *testing.T) {
	var rows []string
	truth := map[string]float64{}
	for i := 0; i < 120; i++ {
		c := fmt.Sprintf("c%d", i%6)
		n := 1 + i%13
		for j := 0; j < n; j++ {
			rows = append(rows, "country="+c+"|user="+fmt.Sprintf("u%d", i))
		}
		truth["country="+c] += float64(n)
	}
	rng := rand.New(rand.NewSource(3))
	const reps = 3000
	sums := map[string]float64{}
	for r := 0; r < reps; r++ {
		sk := core.New(16, core.Unbiased, rng)
		perm := rng.Perm(len(rows))
		for _, i := range perm {
			sk.Update(rows[i])
		}
		groups, _, _ := Run(sk, Query{GroupBy: []string{"country"}})
		for _, g := range groups {
			sums[g.KeyString()] += g.Sum.Value
		}
	}
	for key, want := range truth {
		mean := sums[key] / reps
		if math.Abs(mean-want) > 0.15*want {
			t.Errorf("%s: mean %v, truth %v", key, mean, want)
		}
	}
}

func TestWeightedSketchSatisfiesBinner(t *testing.T) {
	sk := core.NewWeighted(16, rand.New(rand.NewSource(4)))
	sk.Update("k=a", 2.5)
	sk.Update("k=b", 1.5)
	groups, _, err := Run(sk, Query{GroupBy: []string{"k"}})
	if err != nil || len(groups) != 2 {
		t.Fatalf("groups=%v err=%v", groups, err)
	}
	if groups[0].Sum.Value != 2.5 {
		t.Errorf("weighted group sum = %v", groups[0].Sum.Value)
	}
}
