package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

// engineRows builds a deterministic 3-dim stream with an overflowing
// sketch so MinCount > 0 and the equation-5 errors are non-trivial.
func engineRows(n int) []string {
	rows := make([]string, n)
	for i := range rows {
		rows[i] = fmt.Sprintf("country=c%d|device=d%d|ad=a%d", i%7, i%3, i%211)
	}
	return rows
}

func engineQueries() []Query {
	return []Query{
		{},
		{GroupBy: []string{"country"}},
		{GroupBy: []string{"country", "device"}},
		{Where: []Filter{Eq("device", "d1")}, GroupBy: []string{"country"}},
		{Where: []Filter{{Dim: "device", In: []string{"d0", "d2"}}}, GroupBy: []string{"ad"}},
		{Where: []Filter{Eq("nosuchdim", "x")}, GroupBy: []string{"country"}},
		{Where: []Filter{Eq("device", "nosuchvalue")}},
		{GroupBy: []string{"nosuchdim"}},
		{GroupBy: []string{"device", "country"}}, // non-alphabetical order
	}
}

// TestEngineMatchesRun pins the columnar engine to the one-shot Run
// evaluation: identical groups, order, key strings, estimates and skip
// tallies for a spread of query shapes.
func TestEngineMatchesRun(t *testing.T) {
	sk := core.New(256, core.Unbiased, rand.New(rand.NewSource(17)))
	for _, r := range engineRows(20000) {
		sk.Update(r)
	}
	sk.Update("foreignlabel") // exercise the skip tally

	eng := NewEngine(sk)
	for qi, q := range engineQueries() {
		want, wantSkip, err := Run(sk, q)
		if err != nil {
			t.Fatal(err)
		}
		p := eng.Prepare(q)
		for rep := 0; rep < 3; rep++ {
			got, gotSkip, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			if gotSkip != wantSkip {
				t.Errorf("q%d rep%d: skipped %d, want %d", qi, rep, gotSkip, wantSkip)
			}
			if len(got) != len(want) {
				t.Fatalf("q%d rep%d: %d groups, want %d", qi, rep, len(got), len(want))
			}
			for i := range got {
				if got[i].KeyString() != want[i].KeyString() {
					t.Errorf("q%d rep%d group %d: key %q, want %q", qi, rep, i, got[i].KeyString(), want[i].KeyString())
				}
				if got[i].Sum != want[i].Sum {
					t.Errorf("q%d rep%d group %q: %+v, want %+v", qi, rep, got[i].KeyString(), got[i].Sum, want[i].Sum)
				}
				if !reflect.DeepEqual(got[i].Key, want[i].Key) && len(got[i].Key)+len(want[i].Key) > 0 {
					t.Errorf("q%d rep%d group %d: Key %v, want %v", qi, rep, i, got[i].Key, want[i].Key)
				}
			}
		}
	}
}

// TestEngineInvalidation: updating the sketch between runs must be
// reflected in the next result — version revalidation, not staleness.
func TestEngineInvalidation(t *testing.T) {
	sk := core.New(64, core.Unbiased, rand.New(rand.NewSource(5)))
	sk.Update("k=a")
	eng := NewEngine(sk)
	p := eng.Prepare(Query{GroupBy: []string{"k"}})
	got, _, _ := p.Run()
	if len(got) != 1 || got[0].Sum.Value != 1 {
		t.Fatalf("first run = %+v", got)
	}
	sk.Update("k=a")
	sk.Update("k=b")
	got, _, _ = p.Run()
	if len(got) != 2 || got[0].Sum.Value != 2 {
		t.Fatalf("post-update run = %+v", got)
	}
	// The same via Engine.Run's spec-identity fast path.
	sk.Update("k=b")
	got, _, _ = eng.Run(Query{GroupBy: []string{"k"}})
	if len(got) != 2 || got[0].Sum.Value != 2 || got[1].Sum.Value != 2 {
		t.Fatalf("Engine.Run post-update = %+v", got)
	}
}

// TestEngineFallbackWideGroupBy: a group-by whose packed key exceeds 64
// bits falls back to the map evaluator and still matches Run.
func TestEngineFallbackWideGroupBy(t *testing.T) {
	sk := core.NewWeighted(1<<14, rand.New(rand.NewSource(6)))
	for i := 0; i < 9000; i++ {
		sk.Update(fmt.Sprintf("a=v%d|b=v%d|c=v%d|d=v%d|e=v%d", i, i, i, i, i%4), 1)
	}
	q := Query{GroupBy: []string{"a", "b", "c", "d", "e"}}
	want, _, _ := Run(sk, q)
	eng := NewEngine(sk)
	p := eng.Prepare(q)
	got, _, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fallback: %d groups, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].KeyString() != want[i].KeyString() || got[i].Sum != want[i].Sum {
			t.Fatalf("fallback group %d: %q %+v, want %q %+v",
				i, got[i].KeyString(), got[i].Sum, want[i].KeyString(), want[i].Sum)
		}
	}
}

// TestKeyStringFallback: Groups built by hand (no evaluator) still render
// sorted-dimension key strings.
func TestKeyStringFallback(t *testing.T) {
	g := Group{Key: map[string]string{"b": "2", "a": "1"}}
	if got := g.KeyString(); got != "a=1|b=2" {
		t.Errorf("KeyString = %q", got)
	}
	if got := (Group{}).KeyString(); got != "*" {
		t.Errorf("empty KeyString = %q", got)
	}
}

// TestPreparedSpecIsolation: mutating the caller's spec slices after
// Prepare must not affect the compiled query.
func TestPreparedSpecIsolation(t *testing.T) {
	sk := core.New(64, core.Unbiased, rand.New(rand.NewSource(7)))
	sk.Update("k=a|j=x")
	sk.Update("k=b|j=x")
	where := []Filter{Eq("k", "a")}
	eng := NewEngine(sk)
	p := eng.Prepare(Query{Where: where})
	where[0].In[0] = "b"
	got, _, _ := p.Run()
	if len(got) != 1 || got[0].Sum.SampleBins != 1 || got[0].Sum.Value != 1 {
		t.Fatalf("spec mutated after Prepare leaked: %+v", got)
	}
}
