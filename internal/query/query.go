// Package query evaluates the paper's motivating query template (§2)
//
//	SELECT sum(metric), dimensions
//	FROM table
//	WHERE filters
//	GROUP BY dimensions
//
// against a Space-Saving sketch instead of the raw table. Item labels are
// expected to encode dimension tuples as "dim=value" pairs joined by "|"
// (the encoding produced by workload.Impression.Key and common for
// composite units of analysis). Filters are arbitrary equality or set
// conditions on dimensions, chosen at query time; group-by emits one
// unbiased estimated sum per observed group, each with the equation-5
// standard error.
//
// Evaluation is columnar: an Engine parses a snapshot's labels once into
// a dictionary-encoded index (internal/labelidx) and revalidates it
// against the sketch's version counter, so filters run as integer
// comparisons and group keys pack into a uint64. A Prepared query reuses
// its compiled program and output buffers across runs — repeated
// evaluation against an unchanged sketch allocates nothing.
//
// Ownership: an Engine (and every Prepared compiled from it) is a
// single-goroutine owner of its caches and scratch; concurrent use needs
// one engine per goroutine (the underlying index is immutable and shared
// safely). Run results — the group slice and each Group's Key map — are
// engine-owned buffers reused by the next run on that engine: callers
// that retain results across runs, or hand them across an API boundary,
// must deep-copy them (uss.RunQuery does exactly that).
package query

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/labelidx"
)

// Row is a parsed item label: dimension → value.
type Row map[string]string

// ParseRow splits an item label like "country=us|device=ios" into a Row.
// Malformed components are reported as errors.
func ParseRow(label string) (Row, error) {
	parts := strings.Split(label, "|")
	row := make(Row, len(parts))
	for _, p := range parts {
		eq := strings.IndexByte(p, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("query: malformed label component %q in %q", p, label)
		}
		row[p[:eq]] = p[eq+1:]
	}
	return row, nil
}

// Filter is one WHERE condition.
type Filter struct {
	// Dim is the dimension name.
	Dim string
	// In is the set of accepted values (OR within a filter; filters AND
	// together).
	In []string
}

// matches reports whether row passes the filter. A row lacking the
// dimension fails it.
func (f Filter) matches(row Row) bool {
	v, ok := row[f.Dim]
	if !ok {
		return false
	}
	for _, want := range f.In {
		if v == want {
			return true
		}
	}
	return false
}

// Eq is shorthand for a single-value equality filter.
func Eq(dim, value string) Filter { return Filter{Dim: dim, In: []string{value}} }

// Query is one SELECT over a sketch.
type Query struct {
	// Where filters AND together; empty means all rows.
	Where []Filter
	// GroupBy lists the dimensions to group on; empty means one global
	// aggregate.
	GroupBy []string
}

// Group is one output row.
type Group struct {
	// Key maps group-by dimensions to values; nil for the global group.
	Key map[string]string
	// Sum is the estimated total with its standard error.
	Sum core.Estimate

	// ks is the pre-rendered KeyString (dimensions in sorted order),
	// filled in by the evaluator so KeyString and result ordering are
	// O(1) per call instead of re-sorting dimensions each time.
	ks string
}

// KeyString renders the group key deterministically ("country=us|device=ios",
// dimensions in sorted order). Groups produced by Run or a Prepared query
// return a string rendered once at aggregation time; hand-built Groups
// fall back to rendering from the Key map.
func (g Group) KeyString() string {
	if g.ks != "" {
		return g.ks
	}
	if len(g.Key) == 0 {
		return "*"
	}
	return renderKeySorted(g.Key)
}

// renderKeySorted is the fallback KeyString path for Groups not built by
// the evaluator: dimensions sorted, one pass to render.
func renderKeySorted(key map[string]string) string {
	dims := make([]string, 0, len(key))
	for d := range key {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	var b strings.Builder
	for i, d := range dims {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(d)
		b.WriteByte('=')
		b.WriteString(key[d])
	}
	return b.String()
}

// Binner is the sketch-side interface the evaluator needs; both
// core.Sketch and core.WeightedSketch satisfy it.
type Binner interface {
	Bins() []core.Bin
	MinCount() float64
}

// Versioned is implemented by sources whose mutations advance a counter
// (core.Sketch, core.WeightedSketch). An Engine over a Versioned source
// reuses its label index as long as the version stands still.
type Versioned interface {
	Version() uint64
}

// Snapshotter is implemented by sources that maintain an immutable cached
// snapshot of their state (the sharded sketch's versioned merge). One call
// returns a mutually consistent triple — bins, columnar index and min
// count all from the same snapshot — so a query can never mix counts from
// one epoch with the standard-error scale of another, even while the
// source ingests concurrently. An Engine over a Snapshotter adopts the
// index by pointer identity instead of building and versioning its own.
type Snapshotter interface {
	QuerySnapshot() (bins []core.Bin, idx *labelidx.Index, minCount float64)
}

// Run evaluates q against the sketch's bins. Labels that fail to parse are
// skipped and counted in the returned skipped tally (foreign labels in a
// mixed sketch are not an error). Groups are returned sorted by descending
// estimate, ties broken by key.
//
// Run builds a fresh columnar index per call; callers issuing repeated
// queries against the same sketch should hold an Engine, which amortizes
// the index across queries and revalidates it by sketch version.
func Run(s Binner, q Query) (groups []Group, skipped int, err error) {
	return NewEngine(s).Run(q)
}

// Engine amortizes the columnar label index across queries against one
// sketch. The index is rebuilt lazily whenever the source's version moves
// (or adopted from the source itself when it maintains one); against a
// quiescent sketch every query runs on the already-parsed columns. An
// Engine is not safe for concurrent use — concurrent readers should each
// hold their own engine (cheap when the source is Indexed, since the
// underlying index is shared).
type Engine struct {
	src   Binner
	idx   *labelidx.Index
	ver   uint64
	gen   uint64 // bumped whenever idx is replaced; Prepared recompiles
	built bool
	last  *Prepared // Run's cache for back-to-back identical specs

	// Snapshotter sources: bins and min count of the snapshot e.idx was
	// adopted from, refreshed together by ensure so every evaluation
	// reads one consistent epoch.
	snapshotted bool
	snapBins    []core.Bin
	snapNmin    float64
}

// NewEngine returns an engine over the sketch. The index is built on
// first use.
func NewEngine(src Binner) *Engine { return &Engine{src: src} }

// ensure makes e.idx current, rebuilding (or re-adopting) it when the
// source has moved. Allocation-free when the source is unchanged.
func (e *Engine) ensure() {
	if ss, ok := e.src.(Snapshotter); ok {
		bins, idx, nmin := ss.QuerySnapshot()
		e.snapshotted = true
		e.snapBins, e.snapNmin = bins, nmin
		if idx != e.idx {
			e.idx = idx
			e.gen++
		}
		e.built = true
		return
	}
	if v, ok := e.src.(Versioned); ok {
		// Read the version before the bins: if a mutation lands between
		// the two reads the index is stamped with the older version and
		// simply rebuilds on the next query.
		ver := v.Version()
		if e.built && ver == e.ver {
			return
		}
		e.ver = ver
	}
	e.idx = labelidx.New(e.src.Bins())
	e.built = true
	e.gen++
}

// Run evaluates q, preparing it on the fly. Back-to-back calls with an
// identical spec reuse the previous compilation, so a caller looping on
// one query gets Prepared-level performance without holding a Prepared.
func (e *Engine) Run(q Query) ([]Group, int, error) {
	if e.last == nil || !specEqual(e.last.q, q) {
		e.last = e.Prepare(q)
	}
	return e.last.Run()
}

// Prepare compiles q against the engine's index. The returned Prepared
// revalidates (and recompiles) automatically when the engine's source
// moves; repeated Runs against an unchanged source allocate nothing.
func (e *Engine) Prepare(q Query) *Prepared {
	p := &Prepared{e: e, q: copySpec(q)}
	// Render-order: group dimensions sorted once here, so each group's
	// KeyString is a single pass at aggregation time. Duplicate group-by
	// dimensions collapse, matching the map semantics of the legacy path.
	seen := make(map[string]bool, len(p.q.GroupBy))
	for i, d := range p.q.GroupBy {
		if !seen[d] {
			seen[d] = true
			p.renderIdx = append(p.renderIdx, i)
		}
	}
	slices.SortFunc(p.renderIdx, func(a, b int) int {
		return strings.Compare(p.q.GroupBy[a], p.q.GroupBy[b])
	})
	return p
}

// copySpec deep-copies a query spec so later caller-side mutation of the
// slices cannot desynchronize a compiled program from its spec.
func copySpec(q Query) Query {
	out := Query{GroupBy: slices.Clone(q.GroupBy)}
	if q.Where != nil {
		out.Where = make([]Filter, len(q.Where))
		for i, f := range q.Where {
			out.Where[i] = Filter{Dim: f.Dim, In: slices.Clone(f.In)}
		}
	}
	return out
}

// specEqual reports whether two query specs are semantically identical.
func specEqual(a, b Query) bool {
	if !slices.Equal(a.GroupBy, b.GroupBy) || len(a.Where) != len(b.Where) {
		return false
	}
	for i := range a.Where {
		if a.Where[i].Dim != b.Where[i].Dim || !slices.Equal(a.Where[i].In, b.Where[i].In) {
			return false
		}
	}
	return true
}

// Prepared is a query compiled against an Engine's index, carrying its
// own output buffers and per-group render cache. Not safe for concurrent
// use. The slice returned by Run is reused by the next Run on the same
// Prepared; callers that retain results across runs must copy.
type Prepared struct {
	e   *Engine
	q   Query
	gen uint64

	prog     *labelidx.Program
	fallback bool // group key exceeds 64 packed bits: evaluate via maps

	renderIdx []int // indices into q.GroupBy, name-sorted, deduped
	cache     map[uint64]groupEntry
	out       []Group
	sb        []byte
}

// groupEntry is the per-distinct-group render cache: the Key map and the
// sorted-order key string are built once per group, then reused by every
// subsequent Run.
type groupEntry struct {
	key map[string]string
	ks  string
}

// compile (re)compiles the prepared query against the engine's current
// index and resets caches that depend on the old dictionaries.
func (p *Prepared) compile() {
	p.gen = p.e.gen
	p.cache = make(map[uint64]groupEntry)
	var filters []labelidx.Filter
	if len(p.q.Where) > 0 {
		filters = make([]labelidx.Filter, len(p.q.Where))
		for i, f := range p.q.Where {
			filters[i] = labelidx.Filter{Dim: f.Dim, In: f.In}
		}
	}
	prog, ok := p.e.idx.Compile(filters, p.q.GroupBy)
	if !ok {
		p.fallback = true
		p.prog = nil
		return
	}
	p.fallback = false
	p.prog = prog
}

// Run evaluates the prepared query against the engine's source, first
// revalidating the index and compilation. Groups are sorted by descending
// estimate, ties broken by KeyString. The returned slice and its Key maps
// are reused across Runs of this Prepared; they are valid until the next
// Run.
func (p *Prepared) Run() ([]Group, int, error) {
	p.e.ensure()
	if p.gen != p.e.gen {
		p.compile()
	}
	if p.fallback {
		return runMaps(p.e.evalBins(), p.e.evalMinCount(), p.q, p.e.idx.Skipped())
	}
	aggs := p.prog.Run()
	nmin := p.e.evalMinCount()
	out := p.out[:0]
	for i := range aggs {
		a := &aggs[i]
		ent, ok := p.cache[a.Key]
		if !ok {
			ent = p.newEntry(a.Key)
			p.cache[a.Key] = ent
		}
		out = append(out, Group{
			Key: ent.key,
			ks:  ent.ks,
			Sum: core.Estimate{
				Value:      a.Sum,
				StdErr:     nmin * math.Sqrt(float64(a.Hits)),
				SampleBins: int(a.Hits),
			},
		})
	}
	sortGroups(out)
	p.out = out
	if len(out) == 0 {
		return nil, p.e.idx.Skipped(), nil
	}
	return out, p.e.idx.Skipped(), nil
}

// evalMinCount and evalBins return the state to evaluate against: the
// epoch captured by ensure for Snapshotter sources (so counts, min count
// and bins all come from one snapshot even under concurrent ingest), the
// live source for plain single-owner sources.
func (e *Engine) evalMinCount() float64 {
	if e.snapshotted {
		return e.snapNmin
	}
	return e.src.MinCount()
}

func (e *Engine) evalBins() []core.Bin {
	if e.snapshotted {
		return e.snapBins
	}
	return e.src.Bins()
}

// newEntry materializes the Key map and sorted-order key string for one
// packed group key — once per distinct group, cached thereafter.
func (p *Prepared) newEntry(key uint64) groupEntry {
	if len(p.q.GroupBy) == 0 {
		return groupEntry{ks: "*"}
	}
	m := make(map[string]string, len(p.q.GroupBy))
	for gi, dim := range p.q.GroupBy {
		m[dim] = p.prog.GroupValue(key, gi)
	}
	buf := p.sb[:0]
	for i, gi := range p.renderIdx {
		if i > 0 {
			buf = append(buf, '|')
		}
		dim := p.q.GroupBy[gi]
		buf = append(buf, dim...)
		buf = append(buf, '=')
		buf = append(buf, m[dim]...)
	}
	p.sb = buf
	return groupEntry{key: m, ks: string(buf)}
}

// sortGroups orders results by descending estimate, ties by key string.
func sortGroups(groups []Group) {
	slices.SortFunc(groups, func(a, b Group) int {
		if a.Sum.Value != b.Sum.Value {
			if a.Sum.Value > b.Sum.Value {
				return -1
			}
			return 1
		}
		return strings.Compare(a.ks, b.ks)
	})
}

// runMaps is the row-at-a-time fallback evaluator, used only when a
// group-by key cannot be packed into 64 bits (astronomically wide
// group-bys). It re-parses every label per call. bins may be nil, in
// which case they come straight from the engine's source.
func runMaps(bins []core.Bin, nmin float64, q Query, skipped int) ([]Group, int, error) {
	type agg struct {
		sum  float64
		hits int
		key  map[string]string
	}
	byKey := map[string]*agg{}

bins:
	for _, b := range bins {
		row, perr := ParseRow(b.Item)
		if perr != nil {
			continue
		}
		for _, f := range q.Where {
			if !f.matches(row) {
				continue bins
			}
		}
		key := make(map[string]string, len(q.GroupBy))
		var sb strings.Builder
		for _, d := range q.GroupBy {
			v, ok := row[d]
			if !ok {
				continue bins
			}
			key[d] = v
			sb.WriteString(d)
			sb.WriteByte('=')
			sb.WriteString(v)
			sb.WriteByte('|')
		}
		ks := sb.String()
		a, ok := byKey[ks]
		if !ok {
			a = &agg{key: key}
			byKey[ks] = a
		}
		a.sum += b.Count
		a.hits++
	}

	var groups []Group
	for _, a := range byKey {
		ks := "*"
		if len(a.key) > 0 {
			ks = renderKeySorted(a.key)
		}
		groups = append(groups, Group{
			Key: a.key,
			ks:  ks,
			Sum: core.Estimate{
				Value:      a.sum,
				StdErr:     nmin * math.Sqrt(float64(a.hits)),
				SampleBins: a.hits,
			},
		})
	}
	sortGroups(groups)
	return groups, skipped, nil
}
