// Package query evaluates the paper's motivating query template (§2)
//
//	SELECT sum(metric), dimensions
//	FROM table
//	WHERE filters
//	GROUP BY dimensions
//
// against a Space-Saving sketch instead of the raw table. Item labels are
// expected to encode dimension tuples as "dim=value" pairs joined by "|"
// (the encoding produced by workload.Impression.Key and common for
// composite units of analysis). Filters are arbitrary equality or set
// conditions on dimensions, chosen at query time; group-by emits one
// unbiased estimated sum per observed group, each with the equation-5
// standard error.
package query

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
)

// Row is a parsed item label: dimension → value.
type Row map[string]string

// ParseRow splits an item label like "country=us|device=ios" into a Row.
// Malformed components are reported as errors.
func ParseRow(label string) (Row, error) {
	parts := strings.Split(label, "|")
	row := make(Row, len(parts))
	for _, p := range parts {
		eq := strings.IndexByte(p, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("query: malformed label component %q in %q", p, label)
		}
		row[p[:eq]] = p[eq+1:]
	}
	return row, nil
}

// Filter is one WHERE condition.
type Filter struct {
	// Dim is the dimension name.
	Dim string
	// In is the set of accepted values (OR within a filter; filters AND
	// together).
	In []string
}

// matches reports whether row passes the filter. A row lacking the
// dimension fails it.
func (f Filter) matches(row Row) bool {
	v, ok := row[f.Dim]
	if !ok {
		return false
	}
	for _, want := range f.In {
		if v == want {
			return true
		}
	}
	return false
}

// Eq is shorthand for a single-value equality filter.
func Eq(dim, value string) Filter { return Filter{Dim: dim, In: []string{value}} }

// Query is one SELECT over a sketch.
type Query struct {
	// Where filters AND together; empty means all rows.
	Where []Filter
	// GroupBy lists the dimensions to group on; empty means one global
	// aggregate.
	GroupBy []string
}

// Group is one output row.
type Group struct {
	// Key maps group-by dimensions to values; nil for the global group.
	Key map[string]string
	// Sum is the estimated total with its standard error.
	Sum core.Estimate
}

// KeyString renders the group key deterministically ("country=us|device=ios").
func (g Group) KeyString() string {
	if len(g.Key) == 0 {
		return "*"
	}
	dims := make([]string, 0, len(g.Key))
	for d := range g.Key {
		dims = append(dims, d)
	}
	sort.Strings(dims)
	var b strings.Builder
	for i, d := range dims {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(d)
		b.WriteByte('=')
		b.WriteString(g.Key[d])
	}
	return b.String()
}

// Binner is the sketch-side interface the evaluator needs; both
// core.Sketch and core.WeightedSketch satisfy it.
type Binner interface {
	Bins() []core.Bin
	MinCount() float64
}

// Run evaluates q against the sketch's bins. Labels that fail to parse are
// skipped and counted in the returned skipped tally (foreign labels in a
// mixed sketch are not an error). Groups are returned sorted by descending
// estimate, ties broken by key.
func Run(s Binner, q Query) (groups []Group, skipped int, err error) {
	type agg struct {
		sum  float64
		hits int
		key  map[string]string
	}
	byKey := map[string]*agg{}
	nmin := s.MinCount()

bins:
	for _, b := range s.Bins() {
		row, perr := ParseRow(b.Item)
		if perr != nil {
			skipped++
			continue
		}
		for _, f := range q.Where {
			if !f.matches(row) {
				continue bins
			}
		}
		key := make(map[string]string, len(q.GroupBy))
		var sb strings.Builder
		for _, d := range q.GroupBy {
			v, ok := row[d]
			if !ok {
				// Rows lacking a group-by dimension fall out of the
				// result, mirroring SQL semantics for missing columns
				// in strict mode.
				continue bins
			}
			key[d] = v
			sb.WriteString(d)
			sb.WriteByte('=')
			sb.WriteString(v)
			sb.WriteByte('|')
		}
		ks := sb.String()
		a, ok := byKey[ks]
		if !ok {
			a = &agg{key: key}
			byKey[ks] = a
		}
		a.sum += b.Count
		a.hits++
	}

	for _, a := range byKey {
		cs := a.hits
		if cs < 1 {
			cs = 1
		}
		groups = append(groups, Group{
			Key: a.key,
			Sum: core.Estimate{
				Value:      a.sum,
				StdErr:     nmin * math.Sqrt(float64(cs)),
				SampleBins: a.hits,
			},
		})
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Sum.Value != groups[j].Sum.Value {
			return groups[i].Sum.Value > groups[j].Sum.Value
		}
		return groups[i].KeyString() < groups[j].KeyString()
	})
	return groups, skipped, nil
}
