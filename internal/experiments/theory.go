package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/samplehold"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Theorem3 validates the frequent-item consistency results (Theorem 3,
// Corollaries 4–5): on an i.i.d. stream, items with frequency above the
// 1/m-style threshold become "sticky" — their inclusion probability climbs
// to 1 as the stream grows and their estimated proportion converges to the
// truth — while items below the threshold keep PPS-like fractional
// inclusion. The table tracks, at increasing stream lengths t, the
// inclusion probability and the relative error of p̂ᵢ = N̂ᵢ/t for one item
// above and one item below the threshold.
func Theorem3(cfg Config) []Table {
	rng := cfg.rng()
	m := 10
	reps := cfg.reps(300)
	// Frequencies: "heavy" at 3/m (above 1/m), "light" at 0.2/m, the
	// rest of the mass spread over a large tail.
	pHeavy := 3.0 / float64(m)
	pLight := 0.2 / float64(m)
	const tailItems = 3000

	lengths := []int64{200, 1000, 5000, 25000, 100000}
	maxLen := lengths[len(lengths)-1]

	type track struct {
		included  []int64   // per length: replicates including the item
		propErr   []float64 // per length: Σ |p̂−p|/p
		propErrSq []float64
	}
	heavy := track{make([]int64, len(lengths)), make([]float64, len(lengths)), make([]float64, len(lengths))}
	light := track{make([]int64, len(lengths)), make([]float64, len(lengths)), make([]float64, len(lengths))}

	for r := 0; r < reps; r++ {
		sk := core.New(m, core.Unbiased, rng)
		next := 0
		for t := int64(1); t <= maxLen; t++ {
			u := rng.Float64()
			switch {
			case u < pHeavy:
				sk.Update("heavy")
			case u < pHeavy+pLight:
				sk.Update("light")
			default:
				sk.Update(workload.Label(rng.Intn(tailItems)))
			}
			if next < len(lengths) && t == lengths[next] {
				record := func(tr *track, item string, p float64) {
					if sk.Contains(item) {
						tr.included[next]++
					}
					rel := math.Abs(sk.Estimate(item)/float64(t)-p) / p
					tr.propErr[next] += rel
					tr.propErrSq[next] += rel * rel
				}
				record(&heavy, "heavy", pHeavy)
				record(&light, "light", pLight)
				next++
			}
		}
	}

	t := Table{
		ID:    "theorem-3",
		Title: "Frequent-item stickiness: inclusion and proportion error vs stream length (m=10)",
		Columns: []string{"stream length", "heavy(p=3/m) inclusion", "heavy rel err of p-hat",
			"light(p=0.2/m) inclusion", "light rel err of p-hat"},
		Notes: "expect: heavy inclusion → 1 and its proportion error → 0 (strong consistency); " +
			"light inclusion stays fractional ≈ PPS level",
	}
	for i, L := range lengths {
		fr := float64(reps)
		t.Rows = append(t.Rows, []string{
			itoa(int(L)),
			f(float64(heavy.included[i]) / fr), f(heavy.propErr[i] / fr),
			f(float64(light.included[i]) / fr), f(light.propErr[i] / fr),
		})
	}
	return []Table{t}
}

// SampleHoldComparison quantifies §5.4's claim that Unbiased Space Saving
// dominates the sample-and-hold family on the disaggregated subset sum
// problem: same stream, same counter budget, same subsets — compare RRMSE
// of USS, adaptive sample & hold, step sample & hold, streaming bottom-k
// (uniform item sampling) and, as the pre-aggregated reference, priority
// sampling.
func SampleHoldComparison(cfg Config) []Table {
	rng := cfg.rng()
	m := cfg.scaled(200)
	reps := cfg.reps(60)
	pop := workload.DiscretizedWeibull(1000, 120*cfg.Scale+1, 0.32)
	items := populationItems(pop)

	const numSubsets = 80
	type subset struct {
		lpred func(string) bool
		truth float64
	}
	subsets := make([]subset, numSubsets)
	for s := range subsets {
		pred, _ := workload.RandomSubset(pop, 100, rng)
		subsets[s] = subset{lpred: workload.LabelPred(pred), truth: float64(pop.SubsetSum(pred))}
	}

	methods := []string{"unbiased-space-saving", "adaptive-sample-hold", "step-sample-hold",
		"streaming-bottom-k", "priority (pre-aggregated)"}
	accs := make([][]*stats.Accumulator, len(methods))
	for mi := range methods {
		accs[mi] = make([]*stats.Accumulator, numSubsets)
		for s := range subsets {
			accs[mi][s] = stats.NewAccumulator(subsets[s].truth)
		}
	}

	rows := materialize(pop)
	for r := 0; r < reps; r++ {
		shuffleInPlace(rows, rng)
		uss := core.New(m, core.Unbiased, rng)
		ash := samplehold.NewAdaptive(m, 0.9, rng)
		ssh := samplehold.NewStep(m, 0.9, rng)
		sbk := sampling.NewStreamingBottomK(m, uint64(rng.Int63())|1)
		for _, it := range rows {
			uss.Update(it)
			ash.Update(it)
			ssh.Update(it)
			sbk.Update(it)
		}
		prio := sampling.Priority(items, m, rng)
		for s, sub := range subsets {
			accs[0][s].Add(uss.SubsetSum(sub.lpred).Value)
			accs[1][s].Add(ash.SubsetSum(sub.lpred))
			accs[2][s].Add(ssh.SubsetSum(sub.lpred))
			accs[3][s].Add(sbk.SubsetSum(sub.lpred))
			pv, _ := prio.SubsetSum(sub.lpred)
			accs[4][s].Add(pv)
		}
	}

	t := Table{
		ID:    "comparison-samplehold",
		Title: "Disaggregated subset-sum RRMSE: USS vs the sample-and-hold family (equal budgets)",
		Columns: []string{"method", "mean rrmse", "median rrmse", "p90 rrmse",
			"mean |bias|/truth", "rrmse vs USS"},
		Notes: "expect: USS ≤ sample-and-hold variants ≤ uniform; USS ≈ priority despite " +
			"priority consuming pre-aggregated data (§5.4, §7)",
	}
	var ussMean float64
	rowVals := make([][]float64, len(methods))
	for mi := range methods {
		var rr []float64
		var biasSum float64
		for s := range subsets {
			rr = append(rr, accs[mi][s].RRMSE())
			biasSum += math.Abs(accs[mi][s].Bias()) / accs[mi][s].Truth()
		}
		mean := stats.Mean(rr)
		if mi == 0 {
			ussMean = mean
		}
		rowVals[mi] = []float64{mean, stats.Quantile(rr, 0.5), stats.Quantile(rr, 0.9),
			biasSum / float64(numSubsets)}
	}
	for mi, name := range methods {
		v := rowVals[mi]
		t.Rows = append(t.Rows, []string{
			name, f(v[0]), f(v[1]), f(v[2]), f(v[3]), f(v[0] / ussMean),
		})
	}
	return []Table{t}
}
