package experiments

import "testing"

func TestTheorem3Stickiness(t *testing.T) {
	cfg := smallCfg()
	cfg.Reps = 0.4
	tabs := Theorem3(cfg)
	if len(tabs) != 1 {
		t.Fatalf("%d tables", len(tabs))
	}
	tab := tabs[0]
	n := len(tab.Rows)
	if n < 4 {
		t.Fatalf("rows = %d", n)
	}
	// Heavy item: inclusion climbs to ≈1 and proportion error shrinks.
	firstInc := cellF(t, tab, 0, "heavy(p=3/m) inclusion")
	lastInc := cellF(t, tab, n-1, "heavy(p=3/m) inclusion")
	if lastInc < 0.99 {
		t.Errorf("heavy item inclusion %.3f at the longest stream, want → 1", lastInc)
	}
	if lastInc < firstInc-0.01 {
		t.Errorf("heavy inclusion decreased: %.3f → %.3f", firstInc, lastInc)
	}
	firstErr := cellF(t, tab, 0, "heavy rel err of p-hat")
	lastErr := cellF(t, tab, n-1, "heavy rel err of p-hat")
	if lastErr > firstErr/2 || lastErr > 0.1 {
		t.Errorf("heavy proportion error not shrinking: %.4f → %.4f", firstErr, lastErr)
	}
	// Light item: inclusion stays fractional (well below 1).
	lightInc := cellF(t, tab, n-1, "light(p=0.2/m) inclusion")
	if lightInc > 0.8 {
		t.Errorf("light item inclusion %.3f, want fractional (below threshold)", lightInc)
	}
}

func TestSampleHoldComparison(t *testing.T) {
	cfg := smallCfg()
	cfg.Reps = 0.25
	tabs := SampleHoldComparison(cfg)
	tab := tabs[0]
	means := map[string]float64{}
	bias := map[string]float64{}
	for r := range tab.Rows {
		name := cell(t, tab, r, "method")
		means[name] = cellF(t, tab, r, "mean rrmse")
		bias[name] = cellF(t, tab, r, "mean |bias|/truth")
	}
	uss := means["unbiased-space-saving"]
	if uss <= 0 {
		t.Fatalf("means = %v", means)
	}
	// §5.4/§7 ordering: USS beats both sample-and-hold variants and
	// uniform sampling, and is within noise of pre-aggregated priority.
	if means["adaptive-sample-hold"] < uss*0.9 {
		t.Errorf("adaptive S&H (%.4f) beats USS (%.4f)", means["adaptive-sample-hold"], uss)
	}
	if means["streaming-bottom-k"] < uss {
		t.Errorf("uniform sampling (%.4f) beats USS (%.4f)", means["streaming-bottom-k"], uss)
	}
	if p := means["priority (pre-aggregated)"]; uss > 2.5*p {
		t.Errorf("USS (%.4f) far worse than priority (%.4f)", uss, p)
	}
	// All unbiased methods: small relative bias.
	for _, name := range []string{"unbiased-space-saving", "adaptive-sample-hold", "step-sample-hold"} {
		if bias[name] > 0.25 {
			t.Errorf("%s relative bias %.3f", name, bias[name])
		}
	}
}
