package experiments

import (
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/workload"
)

// subsetErrorResult holds per-subset accumulators for one estimation method.
type subsetErrorResult struct {
	name string
	accs []*stats.Accumulator // parallel to subsets
}

// runSubsetErrorExperiment measures subset-sum error for Unbiased Space
// Saving (streamed, disaggregated) against pre-aggregated sampling designs.
// It draws numSubsets random subsets of subsetSize items once, then runs
// reps replicates; in each replicate it rebuilds every estimator with fresh
// randomness and records each subset's estimate.
func runSubsetErrorExperiment(pop workload.Population, m int, reps, numSubsets, subsetSize int,
	includeBottomK bool, rng *rand.Rand) []subsetErrorResult {

	items := populationItems(pop)

	type subset struct {
		pred  func(i int) bool
		lpred func(string) bool
		truth float64
	}
	subsets := make([]subset, numSubsets)
	for s := range subsets {
		pred, _ := workload.RandomSubset(pop, subsetSize, rng)
		subsets[s] = subset{
			pred:  pred,
			lpred: workload.LabelPred(pred),
			truth: float64(pop.SubsetSum(pred)),
		}
	}

	methods := []string{"unbiased-space-saving", "priority"}
	if includeBottomK {
		methods = append(methods, "bottom-k")
	}
	results := make([]subsetErrorResult, len(methods))
	for i, name := range methods {
		results[i] = subsetErrorResult{name: name, accs: make([]*stats.Accumulator, numSubsets)}
		for s := range subsets {
			results[i].accs[s] = stats.NewAccumulator(subsets[s].truth)
		}
	}

	rows := materialize(pop)
	for r := 0; r < reps; r++ {
		shuffleInPlace(rows, rng)
		sk := core.New(m, core.Unbiased, rng)
		feedRows(sk, rows)
		prio := sampling.Priority(items, m, rng)
		var bk sampling.Sample
		if includeBottomK {
			bk = sampling.BottomK(items, m, rng)
		}
		for s, sub := range subsets {
			e := sk.SubsetSum(sub.lpred)
			results[0].accs[s].Add(e.Value)
			lo, hi := e.ConfidenceInterval(0.95)
			results[0].accs[s].AddCI(lo, hi)
			pv, _ := prio.SubsetSum(sub.lpred)
			results[1].accs[s].Add(pv)
			if includeBottomK {
				bv, _ := bk.SubsetSum(sub.lpred)
				results[2].accs[s].Add(bv)
			}
		}
	}
	return results
}

// errorCurveTable turns per-subset accumulators into the paper's smoothed
// relative-error-versus-true-count series.
func errorCurveTable(id, title string, results []subsetErrorResult, notes string) Table {
	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"method", "true count (bin mean)", "rrmse", "subsets"},
		Notes:   notes,
	}
	for _, res := range results {
		var xs, ys []float64
		for _, a := range res.accs {
			if a.Truth() > 0 {
				xs = append(xs, a.Truth())
				ys = append(ys, a.RRMSE())
			}
		}
		for _, p := range stats.BinnedCurve(xs, ys, 8) {
			t.Rows = append(t.Rows, []string{res.name, f(p.X), f(p.Y), itoa(p.N)})
		}
	}
	return t
}

// figure34Distributions are the three §7 count distributions in increasing
// skew order, scaled to laptop row totals.
func figure34Distributions(cfg Config) []struct {
	name string
	pop  workload.Population
} {
	return []struct {
		name string
		pop  workload.Population
	}{
		{"weibull(scale,0.32)", workload.DiscretizedWeibull(1000, 350*cfg.Scale, 0.32)},
		{"geometric(0.03)", workload.DiscretizedGeometric(1000, 0.03)},
		{"weibull(scale,0.15)", workload.DiscretizedWeibull(1000, 0.5*cfg.Scale+0.5, 0.15)},
	}
}

// Figure3 reproduces the 200-bin error curves: relative error versus true
// subset count for Unbiased Space Saving (disaggregated input) against
// priority sampling (pre-aggregated input) on three distributions of
// increasing skew. Expectation: the curves track each other closely, error
// falls with the true count, and both improve with skew.
func Figure3(cfg Config) []Table {
	rng := cfg.rng()
	m := cfg.scaled(200)
	reps := cfg.reps(40)
	var tables []Table
	for _, d := range figure34Distributions(cfg) {
		res := runSubsetErrorExperiment(d.pop, m, reps, 150, 100, false, rng)
		tables = append(tables, errorCurveTable(
			"figure-3/"+d.name,
			"Relative error vs true count, m=200: "+d.name,
			res,
			"expect: USS matches or beats priority sampling at every count",
		))
	}
	return tables
}

// Figure4 repeats Figure 3 with m=100 bins and adds the bottom-k uniform
// item sampler. Expectation: USS and priority remain close while bottom-k
// is orders of magnitude worse on the skewed distributions.
func Figure4(cfg Config) []Table {
	rng := cfg.rng()
	m := cfg.scaled(100)
	reps := cfg.reps(40)
	var tables []Table
	for _, d := range figure34Distributions(cfg) {
		res := runSubsetErrorExperiment(d.pop, m, reps, 150, 100, true, rng)
		tables = append(tables, errorCurveTable(
			"figure-4/"+d.name,
			"Relative error vs true count, m=100, with uniform baseline: "+d.name,
			res,
			"expect: bottom-k orders of magnitude worse than USS/priority on skewed data",
		))
	}
	return tables
}

// Figure5 reproduces the per-subset scatter of relative MSE for Unbiased
// Space Saving versus priority sampling, plus the relative-efficiency
// summary Var(priority)/Var(USS). The paper finds USS slightly better
// (efficiency mostly in [0.9, 1.5]) despite priority sampling consuming
// pre-aggregated data.
func Figure5(cfg Config) []Table {
	rng := cfg.rng()
	m := cfg.scaled(200)
	reps := cfg.reps(60)
	pop := workload.DiscretizedWeibull(1000, 350*cfg.Scale, 0.32)
	res := runSubsetErrorExperiment(pop, m, reps, 250, 100, false, rng)
	uss, prio := res[0], res[1]

	scatter := Table{
		ID:      "figure-5-scatter",
		Title:   "Per-subset relative MSE: USS vs priority sampling (sample of subsets)",
		Columns: []string{"true count", "relMSE USS", "relMSE priority"},
		Notes:   "expect: points straddle the diagonal with USS slightly ahead",
	}
	for s := 0; s < len(uss.accs); s += 10 {
		scatter.Rows = append(scatter.Rows, []string{
			f(uss.accs[s].Truth()), f(uss.accs[s].RelativeMSE()), f(prio.accs[s].RelativeMSE()),
		})
	}

	var ratios []float64
	ussWins := 0
	for s := range uss.accs {
		vu, vp := uss.accs[s].MSE(), prio.accs[s].MSE()
		if vu > 0 {
			ratios = append(ratios, vp/vu)
		}
		if vu <= vp {
			ussWins++
		}
	}
	sort.Float64s(ratios)
	eff := Table{
		ID:      "figure-5-efficiency",
		Title:   "Relative efficiency Var(priority)/Var(USS) across subsets",
		Columns: []string{"statistic", "value"},
		Notes:   "paper: efficiency concentrated in ≈[0.9, 1.5], median slightly above 1",
	}
	eff.Rows = append(eff.Rows,
		[]string{"subsets", itoa(len(uss.accs))},
		[]string{"USS wins (MSE ≤ priority)", f(float64(ussWins) / float64(len(uss.accs)))},
		[]string{"efficiency p10", f(stats.Quantile(ratios, 0.10))},
		[]string{"efficiency p25", f(stats.Quantile(ratios, 0.25))},
		[]string{"efficiency median", f(stats.Quantile(ratios, 0.50))},
		[]string{"efficiency p75", f(stats.Quantile(ratios, 0.75))},
		[]string{"efficiency p90", f(stats.Quantile(ratios, 0.90))},
		[]string{"efficiency geometric mean", f(stats.GeometricMean(ratios))},
	)
	// Coverage of the 95% CIs recorded for USS along the way (paper §6.5).
	var covs []float64
	for _, a := range uss.accs {
		covs = append(covs, a.Coverage())
	}
	eff.Rows = append(eff.Rows, []string{"USS 95% CI mean coverage", f(stats.Mean(covs))})
	return []Table{scatter, eff}
}
