package experiments

import (
	"fmt"
	"sort"
)

// Runner is one registered experiment driver.
type Runner struct {
	// Name is the CLI identifier, e.g. "figure-3".
	Name string
	// Description summarizes what the driver reproduces.
	Description string
	// Run executes the experiment.
	Run func(Config) []Table
}

// Registry lists every reproducible figure/table in paper order.
func Registry() []Runner {
	return []Runner{
		{"figure-1", "merge reductions: Misra–Gries truncation vs unbiased mass movement", Figure1},
		{"figure-2", "empirical inclusion probabilities vs theoretical PPS on i.i.d. streams", Figure2},
		{"figure-3", "relative error vs true count, m=200, USS vs priority, three distributions", Figure3},
		{"figure-4", "relative error vs true count, m=100, adding the bottom-k uniform baseline", Figure4},
		{"figure-5", "per-subset relative MSE scatter and relative efficiency vs priority sampling", Figure5},
		{"figure-6", "1-way and 2-way marginal estimation on synthetic ad impression data", Figure6},
		{"figure-7", "two-half pathological stream: inclusion probabilities and first-half error", Figure7},
		{"figure-8", "sorted-stream epochs: confidence interval width and coverage", func(c Config) []Table { return Figure8(c, nil) }},
		{"figure-9", "sorted-stream epochs: variance estimate vs empirical and PPS variance", func(c Config) []Table { return Figure9(c, nil) }},
		{"figure-10", "sorted-stream epochs: %RRMSE of Deterministic vs Unbiased Space Saving", func(c Config) []Table { return Figure10(c, nil) }},
		{"figures-8-9-10", "all three epoch figures from one shared run", Figures8910},
		{"theorem-11", "adversarial robustness: noise suffix zeroes Deterministic Space Saving", Theorem11},
		{"ablation-reductions", "merge-reduction ablation: pairwise vs pivotal vs Misra–Gries", AblationReductions},
		{"theorem-3", "frequent-item stickiness transition on i.i.d. streams", Theorem3},
		{"comparison-samplehold", "USS vs sample-and-hold family at equal counter budgets", SampleHoldComparison},
	}
}

// Lookup finds a runner by name.
func Lookup(name string) (Runner, error) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, nil
		}
	}
	names := make([]string, 0)
	for _, r := range Registry() {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, names)
}
