package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure2 reproduces the inclusion-probability experiment: on an
// exchangeable (shuffled) stream from a heavily skewed discretized-Weibull
// count distribution, the empirical probability that each item ends up in
// the Unbiased Space Saving sketch should match the theoretical inclusion
// probability of a probability-proportional-to-size sample, πᵢ = min(1,
// α·nᵢ) (paper §6.2, Figure 2).
//
// The first returned table is the left panel (per-item series over the head
// of the distribution); the second is the right panel (observed vs
// theoretical across the fractional range), summarized per theoretical-π
// bucket together with the max absolute deviation.
func Figure2(cfg Config) []Table {
	rng := cfg.rng()
	const nItems = 1000
	m := cfg.scaled(100)
	reps := cfg.reps(300)
	// Shape 0.15 gives the paper's ≈30× sd/mean skew; the scale is chosen
	// so the head reaches a few 10⁵ rows at Scale=1 while most of the
	// grid rounds to small counts.
	pop := workload.DiscretizedWeibull(nItems, 0.5*cfg.Scale+0.5, 0.15)

	pi := sampling.Probabilities(populationItems(pop), m)
	// Map back: populationItems drops zero-count items, so rebuild a full
	// per-index theoretical vector.
	theo := make([]float64, nItems)
	{
		j := 0
		for i, c := range pop.Counts {
			if c > 0 {
				theo[i] = pi[j]
				j++
			}
		}
	}

	tracker := stats.NewInclusionTracker()
	rows := materialize(pop)
	for r := 0; r < reps; r++ {
		shuffleInPlace(rows, rng)
		sk := core.New(m, core.Unbiased, rng)
		feedRows(sk, rows)
		var included []string
		for _, b := range sk.Bins() {
			included = append(included, b.Item)
		}
		tracker.Record(included)
	}

	left := Table{
		ID:      "figure-2-left",
		Title:   "Per-item inclusion probability: theoretical PPS vs observed",
		Columns: []string{"item", "true count", "theoretical-pps", "observed"},
		Notes:   "expect: observed tracks theoretical across the rise from 0 to 1",
	}
	for i := 880; i < nItems; i += 5 {
		left.Rows = append(left.Rows, []string{
			workload.Label(i), itoa(int(pop.Counts[i])),
			f(theo[i]), f(tracker.Probability(workload.Label(i))),
		})
	}

	right := Table{
		ID:      "figure-2-right",
		Title:   "Observed vs theoretical inclusion probability (bucketed)",
		Columns: []string{"theoretical bucket", "mean theoretical", "mean observed", "items"},
	}
	const nb = 10
	sumT := make([]float64, nb)
	sumO := make([]float64, nb)
	cnt := make([]int, nb)
	var maxDev float64
	for i := 0; i < nItems; i++ {
		if theo[i] <= 0 || theo[i] >= 1 {
			continue
		}
		obs := tracker.Probability(workload.Label(i))
		if d := math.Abs(obs - theo[i]); d > maxDev {
			maxDev = d
		}
		b := int(theo[i] * nb)
		if b >= nb {
			b = nb - 1
		}
		sumT[b] += theo[i]
		sumO[b] += obs
		cnt[b]++
	}
	for b := 0; b < nb; b++ {
		if cnt[b] == 0 {
			continue
		}
		right.Rows = append(right.Rows, []string{
			f(float64(b)/nb) + "-" + f(float64(b+1)/nb),
			f(sumT[b] / float64(cnt[b])), f(sumO[b] / float64(cnt[b])), itoa(cnt[b]),
		})
	}
	right.Notes = "max |observed − theoretical| over fractional items = " + f(maxDev) +
		"; expect small (Monte-Carlo noise ~1/sqrt(" + itoa(reps) + "))"
	return []Table{left, right}
}
