package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// AblationReductions quantifies the design choice called out in DESIGN.md
// and §5.3/§5.5 of the paper: the merge/shrink reduction can be the simple
// pairwise collapse, the pivotal fixed-size PPS sample, or the biased
// Misra–Gries soft threshold. The table reports, per reduction, the bias
// and RMSE of subset sums computed after merging two sketches, plus
// whether the exact total survives. Expectation: pairwise and pivotal are
// unbiased with pivotal adding slightly less variance; Misra–Gries is
// biased low on every subset — the bias the paper's Figure 1 depicts.
func AblationReductions(cfg Config) []Table {
	rng := cfg.rng()
	m := cfg.scaled(100)
	reps := cfg.reps(400)
	popA := workload.DiscretizedWeibull(800, 40*cfg.Scale+1, 0.32)
	popB := workload.DiscretizedWeibull(800, 40*cfg.Scale+1, 0.32)

	// Subsets over shard A's items (mid-frequency band, where the merge
	// reduction actually matters) and over both shards.
	predMid := func(s string) bool {
		i := workload.ParseLabel(s)
		return i >= 400 && i < 700
	}
	truthMid := float64(popA.SubsetSum(func(i int) bool { return i >= 400 && i < 700 }))
	predAll := func(string) bool { return true }
	truthAll := float64(popA.Total + popB.Total)

	kinds := []core.ReduceKind{core.PairwiseReduction, core.PivotalReduction, core.MisraGriesReduction}
	accMid := make([]*stats.Accumulator, len(kinds))
	accAll := make([]*stats.Accumulator, len(kinds))
	for i := range kinds {
		accMid[i] = stats.NewAccumulator(truthMid)
		accAll[i] = stats.NewAccumulator(truthAll)
	}

	rowsA := materialize(popA)
	rowsB := make([]string, 0, popB.Total)
	for i, c := range popB.Counts {
		lbl := "b-" + workload.Label(i)
		for j := int64(0); j < c; j++ {
			rowsB = append(rowsB, lbl)
		}
	}
	for r := 0; r < reps; r++ {
		shuffleInPlace(rowsA, rng)
		shuffleInPlace(rowsB, rng)
		skA := core.New(m, core.Unbiased, rng)
		skB := core.New(m, core.Unbiased, rng)
		feedRows(skA, rowsA)
		feedRows(skB, rowsB)
		binsA, binsB := skA.Bins(), skB.Bins()
		for i, kind := range kinds {
			merged := core.MergeBins(m, kind, rng, binsA, binsB)
			var mid, all float64
			for _, b := range merged {
				all += b.Count
				if predMid(b.Item) {
					mid += b.Count
				}
			}
			_ = predAll
			accMid[i].Add(mid)
			accAll[i].Add(all)
		}
	}

	t := Table{
		ID:    "ablation-reductions",
		Title: "Merge reduction ablation: bias and error of post-merge subset sums",
		Columns: []string{"reduction", "subset", "truth", "mean estimate",
			"bias", "rrmse", "|bias|/se"},
		Notes: "expect: pairwise and pivotal unbiased (|bias|/se small), pivotal variance ≤ pairwise; misra-gries biased low on both subsets",
	}
	add := func(kind core.ReduceKind, label string, acc *stats.Accumulator) {
		t.Rows = append(t.Rows, []string{
			kind.String(), label, f(acc.Truth()), f(acc.Mean()),
			f(acc.Bias()), f(acc.RRMSE()), f(acc.ZScore()),
		})
	}
	for i, kind := range kinds {
		add(kind, "mid-frequency", accMid[i])
		add(kind, "grand total", accAll[i])
	}

	// Variance comparison row: pivotal vs pairwise on the mid band.
	ratio := math.NaN()
	if v := accMid[1].Variance(); v > 0 {
		ratio = accMid[0].Variance() / v
	}
	t.Rows = append(t.Rows, []string{"(var pairwise)/(var pivotal)", "mid-frequency",
		"", "", "", f(ratio), ""})
	return []Table{t}
}
