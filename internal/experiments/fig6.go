package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure6 reproduces the ad-data marginal experiment: a single sketch is
// built at the finest unit of analysis (the full 9-feature tuple of each
// impression — the disaggregated regime, since no per-tuple aggregate ever
// exists) and then queried for 1-way and 2-way marginal counts, i.e. subset
// sums over all tuples matching feature=value conditions. The baseline is
// priority sampling over the exactly pre-aggregated tuples. Expectation
// (paper Figure 6): relative MSE falls quickly with the marginal's true
// count and USS performs comparably to priority sampling; large marginals
// are estimated to well under 1% error.
func Figure6(cfg Config) []Table {
	rng := cfg.rng()
	rowsN := int64(cfg.scaled(400000))
	m := cfg.scaled(2000)
	reps := cfg.reps(8)
	adCfg := workload.DefaultAdConfig(rowsN)

	// The unit of analysis is the tuple over these feature positions.
	// (The paper's 45M-row dataset supports a 9-feature unit; at laptop
	// row counts a 9-feature unit is almost all singletons, so the scaled
	// reproduction uses a 5-feature unit — still far too many tuples to
	// pre-aggregate in a production setting, which is the regime being
	// modeled.)
	unitFeatures := []int{0, 2, 5, 6, 8}
	nUnit := len(unitFeatures)
	cardOf := func(pos int) int { return adCfg.Cardinalities[unitFeatures[pos]] }

	// Ground truth from one canonical pass (seeded separately from the
	// sketch replicates): exact tuple aggregation plus marginal counts.
	tupleCounts := map[string]int64{}
	{
		ads, err := workload.NewAdStream(adCfg, cfg.Seed)
		if err != nil {
			panic(err)
		}
		for {
			im, ok := ads.Next()
			if !ok {
				break
			}
			tupleCounts[im.Key(unitFeatures...)]++
		}
	}
	items := make([]sampling.Item, 0, len(tupleCounts))
	for k, c := range tupleCounts {
		items = append(items, sampling.Item{Key: k, Value: float64(c)})
	}

	// Marginal query sets. A 1-way query is (feature, value); a 2-way
	// query is a pair. True counts come from the exact tuple aggregation.
	type query struct {
		desc  string
		match func(vals []int) bool
		truth float64
	}
	parse := func(key string) []int {
		parts := strings.Split(key, "|")
		vals := make([]int, len(parts))
		for i, p := range parts {
			eq := strings.IndexByte(p, '=')
			v, _ := strconv.Atoi(p[eq+1:])
			vals[i] = v
		}
		return vals
	}
	truthOf := func(match func([]int) bool) float64 {
		var s int64
		for k, c := range tupleCounts {
			if match(parse(k)) {
				s += c
			}
		}
		return float64(s)
	}

	var oneWay, twoWay []query
	for ft := 0; ft < nUnit; ft++ {
		card := cardOf(ft)
		step := card / 8
		if step < 1 {
			step = 1
		}
		for v := 0; v < card; v += step {
			ft, v := ft, v
			q := query{
				desc:  fmt.Sprintf("f%d=%d", ft, v),
				match: func(vals []int) bool { return vals[ft] == v },
			}
			q.truth = truthOf(q.match)
			if q.truth > 0 {
				oneWay = append(oneWay, q)
			}
		}
	}
	for i := 0; i < 40; i++ {
		f1 := rng.Intn(nUnit)
		f2 := rng.Intn(nUnit)
		for f2 == f1 {
			f2 = rng.Intn(nUnit)
		}
		v1 := rng.Intn(maxInt(1, cardOf(f1)/4))
		v2 := rng.Intn(maxInt(1, cardOf(f2)/4))
		f1c, f2c, v1c, v2c := f1, f2, v1, v2
		q := query{
			desc:  fmt.Sprintf("f%d=%d&f%d=%d", f1, v1, f2, v2),
			match: func(vals []int) bool { return vals[f1c] == v1c && vals[f2c] == v2c },
		}
		q.truth = truthOf(q.match)
		if q.truth > 0 {
			twoWay = append(twoWay, q)
		}
	}

	// Replicated estimation. Each replicate streams the same impression
	// data (arrival order stays partially campaign-sorted — the realistic
	// non-exchangeable order) into a USS sketch with fresh randomness,
	// and draws a fresh priority sample from the pre-aggregated truth.
	newAccs := func(qs []query) []*stats.Accumulator {
		out := make([]*stats.Accumulator, len(qs))
		for i, q := range qs {
			out[i] = stats.NewAccumulator(q.truth)
		}
		return out
	}
	oneAccU := newAccs(oneWay)
	oneAccP := newAccs(oneWay)
	twoAccU := newAccs(twoWay)
	twoAccP := newAccs(twoWay)
	for r := 0; r < reps; r++ {
		ads, err := workload.NewAdStream(adCfg, cfg.Seed) // same data, fresh sketch randomness
		if err != nil {
			panic(err)
		}
		sk := core.New(m, core.Unbiased, rng)
		for {
			im, ok := ads.Next()
			if !ok {
				break
			}
			sk.Update(im.Key(unitFeatures...))
		}
		prio := sampling.Priority(items, m, rng)

		record := func(qs []query, accU, accP []*stats.Accumulator) {
			// One pass per estimator over its bins, testing all queries.
			estU := make([]float64, len(qs))
			for _, b := range sk.Bins() {
				vals := parse(b.Item)
				for qi, q := range qs {
					if q.match(vals) {
						estU[qi] += b.Count
					}
				}
			}
			estP := make([]float64, len(qs))
			for _, it := range prio.Items {
				vals := parse(it.Key)
				for qi, q := range qs {
					if q.match(vals) {
						estP[qi] += it.AdjustedValue
					}
				}
			}
			for qi := range qs {
				accU[qi].Add(estU[qi])
				accP[qi].Add(estP[qi])
			}
		}
		record(oneWay, oneAccU, oneAccP)
		record(twoWay, twoAccU, twoAccP)
	}

	mk := func(id, title string, qs []query, accU, accP []*stats.Accumulator) Table {
		t := Table{
			ID:      id,
			Title:   title,
			Columns: []string{"method", "true count (bin mean)", "relative MSE", "queries"},
			Notes:   "expect: relMSE falls with marginal size; USS ≈ priority sampling",
		}
		curve := func(name string, accs []*stats.Accumulator) {
			var xs, ys []float64
			for _, a := range accs {
				xs = append(xs, a.Truth())
				ys = append(ys, a.RelativeMSE())
			}
			for _, p := range stats.BinnedCurve(xs, ys, 6) {
				t.Rows = append(t.Rows, []string{name, f(p.X), f(p.Y), itoa(p.N)})
			}
		}
		curve("unbiased-space-saving", accU)
		curve("priority", accP)
		return t
	}
	return []Table{
		mk("figure-6-1way", "1-way marginal relative MSE on synthetic ad impressions", oneWay, oneAccU, oneAccP),
		mk("figure-6-2way", "2-way marginal relative MSE on synthetic ad impressions", twoWay, twoAccU, twoAccP),
	}
}
