package experiments

import (
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Theorem11 demonstrates the adversarial robustness separation: appending
// ntot distinct noise rows to a stream whose real items all satisfy
// nᵢ < 2·ntot/m forces every Deterministic Space Saving estimate to zero,
// while Unbiased Space Saving merely behaves as if its sample size were
// halved — subset estimates stay unbiased with roughly √2-inflated error.
func Theorem11(cfg Config) []Table {
	rng := cfg.rng()
	m := cfg.scaled(100)
	// All items equal count keeps every nᵢ < 2·ntot/m comfortably.
	nItems := cfg.scaled(2000)
	per := int64(50)
	pop := workload.Uniform(nItems, per)
	// Note for callers that scale Reps down: the poisoned estimator is
	// unbiased but very noisy — the per-rep std of the smallest subset's
	// estimate is roughly 0.9× its truth, so the mean over r reps has
	// relative standard error ≈ 0.9/√r. Below a few dozen reps the mean
	// column is mostly noise.
	reps := cfg.reps(60)

	// Subsets to estimate: three sizes of random item subsets.
	sizes := []int{50, 200, 800}
	type target struct {
		size  int
		pred  func(string) bool
		truth float64
	}
	targets := make([]target, len(sizes))
	for i, sz := range sizes {
		p, _ := workload.RandomSubset(pop, sz, rng)
		targets[i] = target{size: sz, pred: workload.LabelPred(p), truth: float64(pop.SubsetSum(p))}
	}

	isReal := func(item string) bool { return !strings.HasPrefix(item, "noise-") }

	// Accumulators: [variant][with/without noise][target].
	mkAccs := func() [][]*stats.Accumulator {
		out := make([][]*stats.Accumulator, 2)
		for v := range out {
			out[v] = make([]*stats.Accumulator, len(targets))
			for i, tg := range targets {
				out[v][i] = stats.NewAccumulator(tg.truth)
			}
		}
		return out
	}
	accClean := mkAccs() // [0]=unbiased, [1]=deterministic, no noise suffix
	accNoise := mkAccs()
	var detRealMass float64 // total deterministic mass on real items, noisy stream

	clean := materialize(pop)
	for r := 0; r < reps; r++ {
		shuffleInPlace(clean, rng)
		// Clean stream.
		skU := core.New(m, core.Unbiased, rng)
		skD := core.New(m, core.Deterministic, rng)
		feedRows(skU, clean)
		feedRows(skD, clean)
		for i, tg := range targets {
			accClean[0][i].Add(skU.SubsetSum(tg.pred).Value)
			accClean[1][i].Add(skD.SubsetSum(tg.pred).Value)
		}
		// Adversarial: same rows followed by ntot distinct noise rows
		// (theorem 11's sequence sorts real rows first; shuffled real
		// rows only help the sketch, so sorted-descending is used to
		// match the construction).
		skU2 := core.New(m, core.Unbiased, rng)
		skD2 := core.New(m, core.Deterministic, rng)
		adv := workload.AdversarialDistinct(pop)
		for {
			it, ok := adv.Next()
			if !ok {
				break
			}
			skU2.Update(it)
			skD2.Update(it)
		}
		for i, tg := range targets {
			accNoise[0][i].Add(skU2.SubsetSum(tg.pred).Value)
			accNoise[1][i].Add(skD2.SubsetSum(tg.pred).Value)
		}
		detRealMass += skD2.SubsetSum(isReal).Value
	}

	t := Table{
		ID:    "theorem-11",
		Title: "Adversarial noise suffix: subset estimates before/after poisoning",
		Columns: []string{"variant", "subset size", "true count",
			"clean mean", "clean rrmse", "poisoned mean", "poisoned rrmse"},
		Notes: "expect: deterministic poisoned estimates = 0 exactly " +
			"(mean deterministic mass on real items = " + f(detRealMass/float64(reps)) +
			"); unbiased stays centered with ≈√2 error inflation",
	}
	names := []string{"unbiased", "deterministic"}
	for v, name := range names {
		for i, tg := range targets {
			t.Rows = append(t.Rows, []string{
				name, itoa(tg.size), f(tg.truth),
				f(accClean[v][i].Mean()), f(accClean[v][i].RRMSE()),
				f(accNoise[v][i].Mean()), f(accNoise[v][i].RRMSE()),
			})
		}
	}
	return []Table{t}
}
