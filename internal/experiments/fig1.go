package experiments

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// Figure1 reproduces the merge illustration: merging two Space-Saving
// sketches with the biased Misra–Gries reduction simply truncates the tail,
// while the unbiased (pairwise) reduction moves tail mass onto the labels of
// moderately frequent items. The table reports, per decile of the true item
// rank, how many merged bins land there and how much estimated mass they
// carry, for both reductions — the paper's expectation is that Misra–Gries
// keeps only head deciles while Unbiased Space Saving spreads mass further
// down yet preserves the total.
func Figure1(cfg Config) []Table {
	rng := cfg.rng()
	const nItems = 1000
	m := cfg.scaled(100)
	// Two shards over the same skewed population shape but disjoint item
	// ranges, as in a country-sharded trending-news rollup.
	popA := workload.DiscretizedWeibull(nItems, 60, 0.32)
	popB := workload.DiscretizedWeibull(nItems, 60, 0.32)

	skA := buildSketch(m, core.Unbiased, workload.Shuffled(popA, rng), rng)
	rowsB := make([]string, 0, popB.Total)
	for i, c := range popB.Counts {
		lbl := "shard2-" + workload.Label(i)
		for j := int64(0); j < c; j++ {
			rowsB = append(rowsB, lbl)
		}
	}
	shuffleInPlace(rowsB, rng)
	skB := core.New(m, core.Unbiased, rng)
	feedRows(skB, rowsB)

	totalIn := skA.Total() + skB.Total()
	pairwise := core.MergeBins(m, core.PairwiseReduction, rng, skA.Bins(), skB.Bins())
	mg := core.MergeBins(m, core.MisraGriesReduction, rng, skA.Bins(), skB.Bins())

	// Rank every merged label by its true count percentile within its
	// shard (rank 0 = most frequent). Deciles of rank; foreign labels
	// cannot occur.
	rankDecile := func(label string) int {
		idx := workload.ParseLabel(label)
		pop := popA
		if idx < 0 {
			idx = workload.ParseLabel(label[len("shard2-"):])
			pop = popB
		}
		// Populations are ascending in count; invert so decile 0 is the
		// head.
		_ = pop
		rankFromTop := nItems - 1 - idx
		d := rankFromTop * 10 / nItems
		if d > 9 {
			d = 9
		}
		return d
	}
	type agg struct {
		bins int
		mass float64
	}
	summarize := func(bins []core.Bin) ([10]agg, float64) {
		var out [10]agg
		var tot float64
		for _, b := range bins {
			d := rankDecile(b.Item)
			out[d].bins++
			out[d].mass += b.Count
			tot += b.Count
		}
		return out, tot
	}
	pwAgg, pwTot := summarize(pairwise)
	mgAgg, mgTot := summarize(mg)

	t := Table{
		ID:    "figure-1",
		Title: "Merge reductions: bins and estimated mass by true-rank decile",
		Columns: []string{"rank decile (0=head)", "USS-merge bins", "USS-merge mass",
			"MG-merge bins", "MG-merge mass"},
		Notes: "expect: MG keeps only head deciles and loses total mass (" +
			f(mgTot) + " of " + f(totalIn) + "); unbiased merge preserves the total (" +
			f(pwTot) + ") and places bins beyond the head",
	}
	for d := 0; d < 10; d++ {
		t.Rows = append(t.Rows, []string{
			itoa(d), itoa(pwAgg[d].bins), f(pwAgg[d].mass),
			itoa(mgAgg[d].bins), f(mgAgg[d].mass),
		})
	}
	t.Rows = append(t.Rows, []string{"total", itoa(len(pairwise)), f(pwTot), itoa(len(mg)), f(mgTot)})
	return []Table{t}
}
