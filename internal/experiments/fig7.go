package experiments

import (
	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure7 reproduces the two-half pathological experiment (§7.1): items
// 0..999 appear only in the first half of the stream and items 1000..1999
// only in the second half, each half an independently shuffled skewed
// population. Deterministic Space Saving forgets the entire first half —
// its tail bins always chase the most recent items — while Unbiased Space
// Saving's inclusion probabilities still track a PPS sample over the whole
// stream.
//
// Returned tables: (left panels) inclusion probabilities per count decile
// for first-half and second-half items under both variants; (right panel)
// relative error versus true count for first-half items.
func Figure7(cfg Config) []Table {
	rng := cfg.rng()
	const perHalf = 1000
	m := cfg.scaled(100)
	reps := cfg.reps(150)

	// Two independent halves with identical skewed count shape.
	half := workload.DiscretizedWeibull(perHalf, 20*cfg.Scale+1, 0.32)
	counts := make([]int64, 2*perHalf)
	copy(counts, half.Counts)
	copy(counts[perHalf:], half.Counts)
	pop := workload.NewPopulation(counts)

	trackU := stats.NewInclusionTracker()
	trackD := stats.NewInclusionTracker()
	// Per-item error accumulators for first-half items with nonzero count.
	accU := make([]*stats.Accumulator, 2*perHalf)
	accD := make([]*stats.Accumulator, 2*perHalf)
	for i, c := range pop.Counts {
		accU[i] = stats.NewAccumulator(float64(c))
		accD[i] = stats.NewAccumulator(float64(c))
	}

	for r := 0; r < reps; r++ {
		streamU := workload.TwoHalves(pop, perHalf, rng)
		rows := workload.Collect(streamU)
		skU := core.New(m, core.Unbiased, rng)
		skD := core.New(m, core.Deterministic, rng)
		for _, it := range rows {
			skU.Update(it)
			skD.Update(it)
		}
		var incU, incD []string
		for _, b := range skU.Bins() {
			incU = append(incU, b.Item)
		}
		for _, b := range skD.Bins() {
			incD = append(incD, b.Item)
		}
		trackU.Record(incU)
		trackD.Record(incD)
		for i := range pop.Counts {
			lbl := workload.Label(i)
			accU[i].Add(skU.Estimate(lbl))
			accD[i].Add(skD.Estimate(lbl))
		}
	}

	// Theoretical PPS over the full population for reference.
	pi := sampling.Probabilities(populationItems(pop), m)
	theo := make([]float64, 2*perHalf)
	{
		j := 0
		for i, c := range pop.Counts {
			if c > 0 {
				theo[i] = pi[j]
				j++
			}
		}
	}

	inclusion := Table{
		ID:    "figure-7-inclusion",
		Title: "Inclusion probability by half and count decile: Unbiased vs Deterministic",
		Columns: []string{"half", "count decile (9=head)", "mean true count",
			"theoretical pps", "unbiased observed", "deterministic observed"},
		Notes: "expect: unbiased tracks PPS in both halves; deterministic ≈ 0 for all " +
			"but the largest first-half items and over-includes second-half tail",
	}
	for halfIdx := 0; halfIdx < 2; halfIdx++ {
		base := halfIdx * perHalf
		for d := 0; d < 10; d++ {
			lo, hi := d*perHalf/10, (d+1)*perHalf/10
			var sumC, sumT, sumU, sumD float64
			n := 0
			for i := lo; i < hi; i++ {
				idx := base + i
				if pop.Counts[idx] == 0 {
					continue
				}
				lbl := workload.Label(idx)
				sumC += float64(pop.Counts[idx])
				sumT += theo[idx]
				sumU += trackU.Probability(lbl)
				sumD += trackD.Probability(lbl)
				n++
			}
			if n == 0 {
				continue
			}
			fn := float64(n)
			inclusion.Rows = append(inclusion.Rows, []string{
				itoa(halfIdx + 1), itoa(d), f(sumC / fn), f(sumT / fn), f(sumU / fn), f(sumD / fn),
			})
		}
	}

	errTable := Table{
		ID:      "figure-7-error",
		Title:   "Relative error vs true count for FIRST-half items",
		Columns: []string{"method", "true count (bin mean)", "rrmse", "items"},
		Notes:   "expect: deterministic error ≈ 1 (estimates 0) except at the very head; unbiased orders of magnitude lower",
	}
	curve := func(name string, accs []*stats.Accumulator) {
		var xs, ys []float64
		for i := 0; i < perHalf; i++ {
			if accs[i].Truth() > 0 {
				xs = append(xs, accs[i].Truth())
				ys = append(ys, accs[i].RRMSE())
			}
		}
		for _, p := range stats.BinnedCurve(xs, ys, 7) {
			errTable.Rows = append(errTable.Rows, []string{name, f(p.X), f(p.Y), itoa(p.N)})
		}
	}
	curve("unbiased", accU)
	curve("deterministic", accD)

	return []Table{inclusion, errTable}
}
