package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/stats"
	"repro/internal/workload"
)

// epochExperiment runs the sorted-stream experiment shared by Figures 8, 9
// and 10 (§7.1): items arrive sorted ascending by frequency — the worst
// case for Unbiased Space Saving — partitioned into 10 epochs of equal item
// count, and each epoch's total count is estimated as a subset sum.
type epochExperiment struct {
	nEpochs int
	truth   []float64            // per-epoch true counts
	accU    []*stats.Accumulator // unbiased estimates per epoch
	accD    []*stats.Accumulator // deterministic estimates per epoch
	// varHat accumulates the equation-5 variance estimates (unbiased
	// sketch) so the mean estimated σ can be compared to the empirical σ.
	varHatSum []float64
	widthSum  []float64 // 95% CI halfwidths
	reps      int
	ppsVar    []float64 // per-epoch Poisson-PPS variance benchmark (eq. 1)
}

func runEpochExperiment(cfg Config) *epochExperiment {
	rng := cfg.rng()
	const nItems = 10000
	const nEpochs = 10
	m := cfg.scaled(1000)
	reps := cfg.reps(80)
	pop := workload.DiscretizedWeibull(nItems, 8*cfg.Scale, 0.32)

	// The stream is sorted ascending by count; the populations generated
	// by the grid are already ascending, so epoch e covers item indices
	// [e·1000, (e+1)·1000) in arrival order.
	epochOf := func(item string) int {
		idx := workload.ParseLabel(item)
		if idx < 0 {
			return -1
		}
		return idx / (nItems / nEpochs)
	}

	ex := &epochExperiment{
		nEpochs:   nEpochs,
		truth:     make([]float64, nEpochs),
		accU:      make([]*stats.Accumulator, nEpochs),
		accD:      make([]*stats.Accumulator, nEpochs),
		varHatSum: make([]float64, nEpochs),
		widthSum:  make([]float64, nEpochs),
		reps:      reps,
		ppsVar:    make([]float64, nEpochs),
	}
	for i, c := range pop.Counts {
		ex.truth[i/(nItems/nEpochs)] += float64(c)
	}
	for e := 0; e < nEpochs; e++ {
		ex.accU[e] = stats.NewAccumulator(ex.truth[e])
		ex.accD[e] = stats.NewAccumulator(ex.truth[e])
		e := e
		ex.ppsVar[e] = sampling.PPSVariance(populationItems(pop), m, func(k string) bool {
			return epochOf(k) == e
		})
	}

	rows := workload.Collect(workload.SortedAscending(pop))
	for r := 0; r < reps; r++ {
		skU := core.New(m, core.Unbiased, rng)
		skD := core.New(m, core.Deterministic, rng)
		for _, it := range rows {
			skU.Update(it)
			skD.Update(it)
		}
		// One pass over bins accumulating per-epoch sums and hit counts.
		sumU := make([]float64, nEpochs)
		hitU := make([]int, nEpochs)
		for _, b := range skU.Bins() {
			if e := epochOf(b.Item); e >= 0 {
				sumU[e] += b.Count
				hitU[e]++
			}
		}
		sumD := make([]float64, nEpochs)
		for _, b := range skD.Bins() {
			if e := epochOf(b.Item); e >= 0 {
				sumD[e] += b.Count
			}
		}
		nmin := skU.MinCount()
		z := core.NormalQuantileTwoSided(0.95)
		for e := 0; e < nEpochs; e++ {
			ex.accU[e].Add(sumU[e])
			ex.accD[e].Add(sumD[e])
			cs := hitU[e]
			if cs < 1 {
				cs = 1
			}
			varHat := nmin * nmin * float64(cs)
			ex.varHatSum[e] += varHat
			half := z * math.Sqrt(varHat)
			ex.widthSum[e] += 2 * half
			lo, hi := sumU[e]-half, sumU[e]+half
			if lo < 0 {
				lo = 0
			}
			ex.accU[e].AddCI(lo, hi)
		}
	}
	return ex
}

// Figure8 reports, per epoch of the sorted pathological stream, the true
// count, the mean 95% confidence-interval width, and the achieved coverage.
// Expectation: coverage at or above 95% wherever enough sketch bins land in
// the epoch for the CLT (the paper sees dips only around epochs with ~3-13
// sampled items), with the early (small) epochs over-covered thanks to the
// upward-biased variance estimate.
func Figure8(cfg Config, ex *epochExperiment) []Table {
	if ex == nil {
		ex = runEpochExperiment(cfg)
	}
	t := Table{
		ID:      "figure-8",
		Title:   "Sorted stream: per-epoch truth, mean 95% CI width, and coverage",
		Columns: []string{"epoch", "true count", "mean CI width", "coverage"},
		Notes:   "expect: coverage ≥ 0.95 except possibly mid epochs with few sampled bins",
	}
	for e := 0; e < ex.nEpochs; e++ {
		t.Rows = append(t.Rows, []string{
			itoa(e + 1), f(ex.truth[e]),
			f(ex.widthSum[e] / float64(ex.reps)),
			f(ex.accU[e].Coverage()),
		})
	}
	return []Table{t}
}

// Figure9 reports the variance-estimator calibration per epoch: the ratio
// of the mean estimated σ̂ (equation 5) to the empirical σ of the estimates
// (left panel: expected ≈ 1, drifting up for the tiny early epochs where
// the estimate is deliberately worst-case), and the ratio of the empirical
// σ to the Poisson-PPS benchmark σ (right panel: expected ≈ 1 — even on a
// pathological stream the sketch behaves like a PPS sample).
func Figure9(cfg Config, ex *epochExperiment) []Table {
	if ex == nil {
		ex = runEpochExperiment(cfg)
	}
	t := Table{
		ID:      "figure-9",
		Title:   "Variance estimate calibration per epoch",
		Columns: []string{"epoch", "mean sigma-hat", "empirical sigma", "sigma-hat/sigma", "sigma/sigma-pps"},
		Notes:   "expect: σ̂/σ ≈ 1 (upward-biased for tiny epochs); σ/σ_pps ≈ 1 throughout",
	}
	for e := 0; e < ex.nEpochs; e++ {
		sigmaHat := math.Sqrt(ex.varHatSum[e] / float64(ex.reps))
		sigma := ex.accU[e].StdDev()
		sigmaPPS := math.Sqrt(ex.ppsVar[e])
		ratio1, ratio2 := math.NaN(), math.NaN()
		if sigma > 0 {
			ratio1 = sigmaHat / sigma
		}
		if sigmaPPS > 0 {
			ratio2 = sigma / sigmaPPS
		}
		t.Rows = append(t.Rows, []string{
			itoa(e + 1), f(sigmaHat), f(sigma), f(ratio1), f(ratio2),
		})
	}
	return []Table{t}
}

// Figure10 reports per-epoch percent relative RMSE for Deterministic versus
// Unbiased Space Saving on the sorted stream. Expectation: the
// deterministic sketch is catastrophically wrong on every epoch (it
// estimates 0 for the first nine and the whole stream total for the last),
// roughly 50× worse than Unbiased on the late epochs, with Unbiased only
// losing on the negligible earliest epochs where overestimation beats the
// deterministic 0.
func Figure10(cfg Config, ex *epochExperiment) []Table {
	if ex == nil {
		ex = runEpochExperiment(cfg)
	}
	t := Table{
		ID:      "figure-10",
		Title:   "Percent RRMSE per epoch: Deterministic vs Unbiased Space Saving",
		Columns: []string{"epoch", "true count", "deterministic %rrmse", "unbiased %rrmse", "det/unb"},
		Notes:   "expect: deterministic ≈ 100% on early epochs and ≫ unbiased on late ones",
	}
	for e := 0; e < ex.nEpochs; e++ {
		d := 100 * ex.accD[e].RRMSE()
		u := 100 * ex.accU[e].RRMSE()
		ratio := math.NaN()
		if u > 0 {
			ratio = d / u
		}
		t.Rows = append(t.Rows, []string{
			itoa(e + 1), f(ex.truth[e]), f(d), f(u), f(ratio),
		})
	}
	return []Table{t}
}

// Figures8910 runs the shared epoch experiment once and emits all three
// figures from it.
func Figures8910(cfg Config) []Table {
	ex := runEpochExperiment(cfg)
	var out []Table
	out = append(out, Figure8(cfg, ex)...)
	out = append(out, Figure9(cfg, ex)...)
	out = append(out, Figure10(cfg, ex)...)
	return out
}
