// Package experiments reproduces every figure of the paper's evaluation
// (§7). Each FigureN function is a self-contained driver that generates the
// workload, runs the sketches and baselines, and returns the same rows or
// series the paper plots, formatted as Tables. The cmd/ussbench binary and
// the repository benchmarks are thin wrappers over these drivers.
//
// Scales are laptop-sized by default (the paper used up to 10⁹-row streams;
// see DESIGN.md for the substitution argument) and can be adjusted through
// Config.Scale / Config.Reps.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/workload"
)

// Config controls experiment size.
type Config struct {
	// Scale multiplies stream/population sizes; 1.0 is the default
	// laptop-scale setup described in DESIGN.md. Benchmarks use smaller
	// values.
	Scale float64
	// Reps multiplies replicate counts (1.0 default).
	Reps float64
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultConfig returns the standard laptop-scale configuration.
func DefaultConfig() Config { return Config{Scale: 1, Reps: 1, Seed: 20180614} }

func (c Config) scaled(n int) int {
	if c.Scale <= 0 {
		return n
	}
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

func (c Config) reps(n int) int {
	if c.Reps <= 0 {
		return n
	}
	v := int(float64(n) * c.Reps)
	if v < 2 {
		v = 2
	}
	return v
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// Table is one reproduced figure/table: column headers plus formatted rows,
// ready to print or diff against the paper.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records workload parameters and the paper-shape expectation
	// this table should exhibit.
	Notes string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

// f formats a float compactly for table cells.
func f(v float64) string {
	switch {
	case v != v: // NaN
		return "nan"
	case v == 0:
		return "0"
	case v >= 10000 || v < 0.001 && v > -0.001:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// populationItems converts a workload population into the aggregated
// (item, value) view the pre-aggregated samplers consume.
func populationItems(p workload.Population) []sampling.Item {
	items := make([]sampling.Item, 0, len(p.Counts))
	for i, c := range p.Counts {
		if c > 0 {
			items = append(items, sampling.Item{Key: workload.Label(i), Value: float64(c)})
		}
	}
	return items
}

// buildSketch streams rows into a fresh sketch of the given mode.
func buildSketch(m int, mode core.Mode, s workload.Stream, rng *rand.Rand) *core.Sketch {
	sk := core.New(m, mode, rng)
	for {
		it, ok := s.Next()
		if !ok {
			return sk
		}
		sk.Update(it)
	}
}

// materialize collects a population's shuffled rows once so replicates can
// re-shuffle in place instead of rebuilding.
func materialize(p workload.Population) []string {
	rows := make([]string, 0, p.Total)
	for i, c := range p.Counts {
		lbl := workload.Label(i)
		for j := int64(0); j < c; j++ {
			rows = append(rows, lbl)
		}
	}
	return rows
}

// shuffleInPlace re-randomizes a materialized row list.
func shuffleInPlace(rows []string, rng *rand.Rand) {
	rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
}

// feedRows streams a row slice into a sketch.
func feedRows(sk *core.Sketch, rows []string) {
	for _, r := range rows {
		sk.Update(r)
	}
}
