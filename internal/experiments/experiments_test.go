package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// smallCfg shrinks everything so the full driver suite runs in seconds.
func smallCfg() Config { return Config{Scale: 0.4, Reps: 0.15, Seed: 7} }

func cell(t *testing.T, tab Table, row int, col string) string {
	t.Helper()
	for c, name := range tab.Columns {
		if name == col {
			return tab.Rows[row][c]
		}
	}
	t.Fatalf("table %s has no column %q (have %v)", tab.ID, col, tab.Columns)
	return ""
}

func cellF(t *testing.T, tab Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("table %s row %d col %s: %v", tab.ID, row, col, err)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "x", Title: "T", Columns: []string{"a", "bb"},
		Rows:  [][]string{{"1", "2"}},
		Notes: "note",
	}
	out := tab.Render()
	for _, want := range []string{"== x: T ==", "a", "bb", "-- note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[float64]string{0: "0", 12345678: "1.235e+07", 3.14159: "3.142", 0.0001: "1.000e-04"}
	for in, want := range cases {
		if got := f(in); got != want {
			t.Errorf("f(%v) = %q, want %q", in, got, want)
		}
	}
	if got := itoa(42); got != "42" {
		t.Errorf("itoa(42) = %q", got)
	}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) < 12 {
		t.Fatalf("registry has %d entries", len(reg))
	}
	seen := map[string]bool{}
	for _, r := range reg {
		if seen[r.Name] {
			t.Errorf("duplicate runner %s", r.Name)
		}
		seen[r.Name] = true
		if r.Run == nil || r.Description == "" {
			t.Errorf("runner %s incomplete", r.Name)
		}
	}
	if _, err := Lookup("figure-3"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("figure-99"); err == nil {
		t.Error("Lookup of unknown name succeeded")
	}
}

func TestFigure1MergePreservation(t *testing.T) {
	tabs := Figure1(smallCfg())
	if len(tabs) != 1 {
		t.Fatalf("%d tables", len(tabs))
	}
	tab := tabs[0]
	last := len(tab.Rows) - 1
	if cell(t, tab, last, "rank decile (0=head)") != "total" {
		t.Fatal("missing total row")
	}
	ussMass := cellF(t, tab, last, "USS-merge mass")
	mgMass := cellF(t, tab, last, "MG-merge mass")
	if mgMass >= ussMass {
		t.Errorf("MG merge mass %v not below unbiased merge mass %v", mgMass, ussMass)
	}
	// MG concentrates in the head: its decile-0 bin count should be at
	// least its share in any later decile, and late deciles should be 0.
	var mgLate int
	for r := 5; r < 10; r++ {
		mgLate += int(cellF(t, tab, r, "MG-merge bins"))
	}
	ussLate := 0
	for r := 3; r < 10; r++ {
		ussLate += int(cellF(t, tab, r, "USS-merge bins"))
	}
	if mgLate > ussLate {
		t.Errorf("MG kept more tail bins (%d) than USS (%d)", mgLate, ussLate)
	}
}

func TestFigure2InclusionMatchesPPS(t *testing.T) {
	cfg := smallCfg()
	cfg.Reps = 0.5 // inclusion probabilities need replicates
	tabs := Figure2(cfg)
	if len(tabs) != 2 {
		t.Fatalf("%d tables", len(tabs))
	}
	right := tabs[1]
	if len(right.Rows) == 0 {
		t.Fatal("no bucket rows")
	}
	for r := range right.Rows {
		theo := cellF(t, right, r, "mean theoretical")
		obs := cellF(t, right, r, "mean observed")
		if d := obs - theo; d > 0.12 || d < -0.12 {
			t.Errorf("bucket %d: observed %.3f vs theoretical %.3f", r, obs, theo)
		}
	}
}

// collectCurve extracts method → (truth, value) points from a curve table.
func collectCurve(t *testing.T, tab Table, valueCol string) map[string][][2]float64 {
	t.Helper()
	out := map[string][][2]float64{}
	for r := range tab.Rows {
		m := cell(t, tab, r, "method")
		out[m] = append(out[m], [2]float64{
			cellF(t, tab, r, "true count (bin mean)"),
			cellF(t, tab, r, valueCol),
		})
	}
	return out
}

func TestFigure3USSCompetitiveWithPriority(t *testing.T) {
	tabs := Figure3(smallCfg())
	if len(tabs) != 3 {
		t.Fatalf("%d tables", len(tabs))
	}
	for _, tab := range tabs {
		curves := collectCurve(t, tab, "rrmse")
		uss, prio := curves["unbiased-space-saving"], curves["priority"]
		if len(uss) == 0 || len(prio) == 0 {
			t.Fatalf("%s: missing curves", tab.ID)
		}
		// Aggregate comparison: mean rrmse within 3x of priority (the
		// paper finds USS matches or beats priority; small-scale noise
		// allowed for).
		mean := func(pts [][2]float64) float64 {
			var s float64
			for _, p := range pts {
				s += p[1]
			}
			return s / float64(len(pts))
		}
		if mu, mp := mean(uss), mean(prio); mu > 3*mp+0.02 {
			t.Errorf("%s: USS mean rrmse %.4f vs priority %.4f", tab.ID, mu, mp)
		}
		// Error decreases with count: first-bin rrmse ≥ last-bin rrmse.
		if uss[0][1] < uss[len(uss)-1][1] {
			t.Errorf("%s: USS error grows with count (%.4f → %.4f)", tab.ID, uss[0][1], uss[len(uss)-1][1])
		}
	}
}

func TestFigure4BottomKMuchWorse(t *testing.T) {
	tabs := Figure4(smallCfg())
	// On the most skewed distribution (last table) bottom-k must be far
	// worse than USS in aggregate.
	tab := tabs[len(tabs)-1]
	curves := collectCurve(t, tab, "rrmse")
	mean := func(pts [][2]float64) float64 {
		var s float64
		for _, p := range pts {
			s += p[1]
		}
		return s / float64(len(pts))
	}
	uss, bk := mean(curves["unbiased-space-saving"]), mean(curves["bottom-k"])
	if bk < 3*uss {
		t.Errorf("bottom-k mean rrmse %.4f not ≫ USS %.4f on skewed data", bk, uss)
	}
}

func TestFigure5EfficiencyNearOne(t *testing.T) {
	tabs := Figure5(smallCfg())
	if len(tabs) != 2 {
		t.Fatalf("%d tables", len(tabs))
	}
	eff := tabs[1]
	var median, coverage float64
	var wins float64
	for r := range eff.Rows {
		switch cell(t, eff, r, "statistic") {
		case "efficiency median":
			median = cellF(t, eff, r, "value")
		case "USS 95% CI mean coverage":
			coverage = cellF(t, eff, r, "value")
		case "USS wins (MSE ≤ priority)":
			wins = cellF(t, eff, r, "value")
		}
	}
	if median < 0.4 || median > 6 {
		t.Errorf("efficiency median %v far from 1", median)
	}
	if coverage < 0.85 {
		t.Errorf("USS CI coverage %v below nominal ballpark", coverage)
	}
	if wins < 0.2 {
		t.Errorf("USS wins only %.0f%% of subsets", 100*wins)
	}
}

func TestFigure6MarginalsAccurate(t *testing.T) {
	cfg := smallCfg()
	cfg.Scale = 0.15
	tabs := Figure6(cfg)
	if len(tabs) != 2 {
		t.Fatalf("%d tables", len(tabs))
	}
	// Thresholds at this reduced test scale (m, rows ≪ defaults): 1-way
	// marginals are huge relative to the sketch noise floor; 2-way ones
	// are smaller, so allow proportionally more relative MSE.
	thresholds := map[string]float64{"figure-6-1way": 0.05, "figure-6-2way": 0.15}
	for _, tab := range tabs {
		curves := collectCurve(t, tab, "relative MSE")
		uss := curves["unbiased-space-saving"]
		if len(uss) == 0 {
			t.Fatalf("%s: no USS curve", tab.ID)
		}
		// Largest marginals should be accurately estimated.
		last := uss[len(uss)-1]
		if last[1] > thresholds[tab.ID] {
			t.Errorf("%s: relMSE %.4f for largest marginals (count %.0f), want < %v",
				tab.ID, last[1], last[0], thresholds[tab.ID])
		}
	}
}

func TestFigure7DeterministicForgetsFirstHalf(t *testing.T) {
	tabs := Figure7(smallCfg())
	inclusion, errTab := tabs[0], tabs[1]
	// First-half rows (half == 1): deterministic inclusion must be ≈ 0
	// for all but possibly the head decile; unbiased must track the
	// theoretical PPS within Monte-Carlo noise.
	for r := range inclusion.Rows {
		if cell(t, inclusion, r, "half") != "1" {
			continue
		}
		det := cellF(t, inclusion, r, "deterministic observed")
		unb := cellF(t, inclusion, r, "unbiased observed")
		theo := cellF(t, inclusion, r, "theoretical pps")
		decile := cell(t, inclusion, r, "count decile (9=head)")
		if decile != "9" && det > 0.05 {
			t.Errorf("first-half decile %s: deterministic inclusion %.3f, want ≈ 0", decile, det)
		}
		if d := unb - theo; d > 0.2 || d < -0.2 {
			t.Errorf("first-half decile %s: unbiased %.3f vs theoretical %.3f", decile, unb, theo)
		}
	}
	// Error panel: on the LARGEST first-half items (the paper's plotted
	// range) deterministic rrmse is ≈ 1 — it estimates 0 for items it
	// forgot — while unbiased is clearly lower. (Averaged over tiny
	// items, rrmse is dominated by sampling noise and favours the
	// all-zeros estimator, which is exactly the paper's point about
	// why unbiasedness matters for subsequent aggregation.)
	curves := collectCurve(t, errTab, "rrmse")
	lastOf := func(pts [][2]float64) float64 { return pts[len(pts)-1][1] }
	d, u := lastOf(curves["deterministic"]), lastOf(curves["unbiased"])
	// The paper's panel shows deterministic error in the 0.2–1.0 band on
	// the head counts with unbiased clearly below it.
	if d < 0.2 {
		t.Errorf("deterministic head rrmse %.3f, paper band is 0.2–1.0", d)
	}
	if u >= d {
		t.Errorf("unbiased head rrmse %.3f not below deterministic %.3f", u, d)
	}
}

func TestFigures8910Shapes(t *testing.T) {
	cfg := smallCfg()
	ex := runEpochExperiment(cfg)
	f8 := Figure8(cfg, ex)[0]
	if len(f8.Rows) != 10 {
		t.Fatalf("figure 8 rows = %d", len(f8.Rows))
	}
	// Coverage: average across epochs should be near or above nominal
	// (upward-biased variance ⇒ conservative), allowing CLT failures on
	// sparse epochs.
	var covSum float64
	n := 0
	for r := range f8.Rows {
		c := cellF(t, f8, r, "coverage")
		if c == c { // skip NaN
			covSum += c
			n++
		}
	}
	if avg := covSum / float64(n); avg < 0.85 {
		t.Errorf("mean coverage %.3f, want ≳ 0.9", avg)
	}

	f9 := Figure9(cfg, ex)[0]
	// σ̂/σ should be ≥ ~0.8 (upward bias) on epochs where σ > 0, and
	// σ/σ_pps within an order of magnitude of 1.
	for r := range f9.Rows {
		r1 := cellF(t, f9, r, "sigma-hat/sigma")
		if r1 == r1 && r1 < 0.6 {
			t.Errorf("epoch %d: σ̂/σ = %.3f, variance estimate not conservative", r+1, r1)
		}
		r2 := cellF(t, f9, r, "sigma/sigma-pps")
		if r2 == r2 && (r2 < 0.1 || r2 > 10) {
			t.Errorf("epoch %d: σ/σ_pps = %.3f, not PPS-like", r+1, r2)
		}
	}

	f10 := Figure10(cfg, ex)[0]
	// Deterministic is catastrophically wrong: early epochs ≈ 100%
	// rrmse; late epochs much worse than unbiased.
	if d := cellF(t, f10, 0, "deterministic %rrmse"); d < 99 {
		t.Errorf("epoch 1 deterministic %%rrmse = %.1f, want ≈ 100", d)
	}
	lastRatio := cellF(t, f10, 9, "det/unb")
	if lastRatio == lastRatio && lastRatio < 3 {
		t.Errorf("epoch 10 det/unb ratio %.2f, paper sees ≈ 50×", lastRatio)
	}
}

func TestTheorem11Poisoning(t *testing.T) {
	// Run with more reps than smallCfg: the poisoned estimator's per-rep
	// std is ≈ 0.9× truth (see the note in Theorem11), so the smallCfg rep
	// count (9) puts one standard error of the mean above the ±25% band
	// asserted below and pass/fail would be a seed lottery. ~100 reps puts
	// the band at ≈ 2.9 standard errors. The band itself is unchanged.
	cfg := smallCfg()
	cfg.Reps = 1.7
	tabs := Theorem11(cfg)
	tab := tabs[0]
	for r := range tab.Rows {
		variant := cell(t, tab, r, "variant")
		truth := cellF(t, tab, r, "true count")
		poisoned := cellF(t, tab, r, "poisoned mean")
		clean := cellF(t, tab, r, "clean mean")
		switch variant {
		case "deterministic":
			if poisoned != 0 {
				t.Errorf("deterministic poisoned mean %v, theorem predicts exactly 0", poisoned)
			}
		case "unbiased":
			if rel := (poisoned - truth) / truth; rel > 0.25 || rel < -0.25 {
				t.Errorf("unbiased poisoned mean %v vs truth %v", poisoned, truth)
			}
			if rel := (clean - truth) / truth; rel > 0.25 || rel < -0.25 {
				t.Errorf("unbiased clean mean %v vs truth %v", clean, truth)
			}
		}
	}
}
