package experiments

import "testing"

func TestAblationReductions(t *testing.T) {
	cfg := smallCfg()
	cfg.Reps = 0.3
	tabs := AblationReductions(cfg)
	if len(tabs) != 1 {
		t.Fatalf("%d tables", len(tabs))
	}
	tab := tabs[0]
	for r := range tab.Rows {
		red := cell(t, tab, r, "reduction")
		subset := cell(t, tab, r, "subset")
		switch red {
		case "pairwise", "pivotal":
			// Unbiased: the bias z-score should not be extreme — unless
			// the absolute bias is floating-point dust (pivotal
			// preserves totals to ~1e-10 relative, where the tiny SE
			// makes z meaningless).
			z := cellF(t, tab, r, "|bias|/se")
			bias := cellF(t, tab, r, "bias")
			truth := cellF(t, tab, r, "truth")
			if z > 6 && (bias > 1e-6*truth || bias < -1e-6*truth) {
				t.Errorf("%s/%s: bias %v (z-score %v)", red, subset, bias, z)
			}
			if red == "pairwise" && subset == "grand total" {
				// Pairwise preserves the total exactly.
				if b := cellF(t, tab, r, "bias"); b != 0 {
					t.Errorf("pairwise total bias %v, want 0 exactly", b)
				}
			}
		case "misra-gries":
			// Biased low, decisively.
			if b := cellF(t, tab, r, "bias"); b >= 0 {
				t.Errorf("misra-gries %s bias %v, want < 0", subset, b)
			}
		}
	}
}
