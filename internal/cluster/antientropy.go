package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"slices"
	"strconv"
	"time"

	uss "repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/server"
)

// nodeDigest is one node's anti-entropy gossip payload: a fingerprint
// of every sketch partial it hosts.
type nodeDigest struct {
	// Node is the digesting node's peer URL.
	Node string `json:"node"`
	// Sketches fingerprints each hosted partial.
	Sketches []digestEntry `json:"sketches"`
}

// digestEntry fingerprints one partial: full config (so peers can
// create missing sketches), counters and total mass. Counters are
// monotone per partial, so equality means identical history and any
// divergence is pull-worthy.
type digestEntry struct {
	// Config is the sketch's full configuration.
	Config server.SketchConfig `json:"config"`
	// Stats is the partial's counter snapshot.
	Stats server.SketchStats `json:"stats"`
	// Total is the partial's mass.
	Total float64 `json:"total"`
}

// AEStats summarizes one anti-entropy round.
type AEStats struct {
	// Peers is how many peers were gossiped with.
	Peers int `json:"peers"`
	// Pulled counts state blobs pulled on digest divergence.
	Pulled int `json:"pulled"`
	// Created counts locally-missing sketches created from peer digests.
	Created int `json:"created"`
	// Dropped counts copies garbage-collected for deleted sketches.
	Dropped int `json:"dropped"`
	// Errors lists per-peer failures (an unreachable peer is one line).
	Errors []string `json:"errors,omitempty"`
}

// RepairStats summarizes a BootRepair pass.
type RepairStats struct {
	// Restored counts partials replaced from a peer's copy.
	Restored int `json:"restored"`
	// Created counts locally-missing sketches created from peer digests.
	Created int `json:"created"`
	// Errors lists non-fatal failures (unreachable peers are expected
	// during a rolling start).
	Errors []string `json:"errors,omitempty"`
}

// localDigest fingerprints this node's partials.
func (a *Agent) localDigest() nodeDigest {
	ds := a.srv.Digests()
	out := nodeDigest{Node: a.cfg.Self, Sketches: make([]digestEntry, 0, len(ds))}
	for _, d := range ds {
		cfg, ok := a.srv.SketchConfigOf(d.Name)
		if !ok {
			continue // deleted between listing and lookup
		}
		out.Sketches = append(out.Sketches, digestEntry{
			Config: cfg,
			Stats:  server.SketchStats{Rows: d.Rows, Pushes: d.Pushes},
			Total:  d.Total,
		})
	}
	return out
}

func (a *Agent) handleDigest(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.localDigest())
}

// handleState serves this node's live partial for one sketch: the exact
// checkpoint-encoded state by default, or the flattened mergeable bin
// list with ?format=bins. Config and counters ride the X-Uss-Config and
// X-Uss-Stats headers. The cluster.slow-peer faultpoint delays the
// response here, which is what pushes gatherers over their hedge delay.
func (a *Agent) handleState(w http.ResponseWriter, r *http.Request) {
	faultinject.Sleep("cluster.slow-peer", 250*time.Millisecond)
	name := r.PathValue("name")
	cfg, stats, blob, err := a.srv.SketchState(name)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, server.ErrNotFound) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	if r.URL.Query().Get("format") == "bins" {
		bins, berr := server.StateBins(cfg, blob)
		if berr != nil {
			writeError(w, http.StatusBadRequest, berr)
			return
		}
		m := len(bins)
		if m < 1 {
			m = 1
		}
		if blob, err = uss.EncodeBins(m, bins); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeStateBlob(w, cfg, stats, blob)
}

// handleCopy serves this node's anti-entropy copy of ?owner='s partial
// of {name} — the hedge source for degraded reads and the repair source
// for a rejoining owner.
func (a *Agent) handleCopy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing owner parameter"))
		return
	}
	a.copyMu.Lock()
	c := a.copies[copyKey{name: name, owner: owner}]
	a.copyMu.Unlock()
	if c == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no copy of %q for owner %s", name, owner))
		return
	}
	writeStateBlob(w, c.cfg, c.stats, c.blob)
}

// handleCopies lists the copies this node holds for ?owner= — what a
// rejoining node asks each peer during BootRepair.
func (a *Agent) handleCopies(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	a.copyMu.Lock()
	out := make([]copyDTO, 0, 8)
	for k, c := range a.copies {
		if owner == "" || k.owner == owner {
			out = append(out, copyDTO{Name: k.name, Owner: k.owner, Config: c.cfg, Stats: c.stats, Total: c.total})
		}
	}
	a.copyMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"owner": owner, "copies": out})
}

// handleAntiEntropy runs one round now and reports its stats — the
// manual trigger (uss cluster, tests, operators).
func (a *Agent) handleAntiEntropy(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.AntiEntropyRound(r.Context()))
}

// writeStateBlob writes a state/copy response: binary blob plus the
// X-Uss-Config / X-Uss-Stats JSON sidecar headers.
func writeStateBlob(w http.ResponseWriter, cfg server.SketchConfig, stats server.SketchStats, blob []byte) {
	cfgJSON, _ := json.Marshal(cfg)
	statsJSON, _ := json.Marshal(stats)
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(blob)))
	h.Set("X-Uss-Config", string(cfgJSON))
	h.Set("X-Uss-Stats", string(statsJSON))
	_, _ = w.Write(blob)
}

// fetchDigest pulls one peer's digest.
func (a *Agent) fetchDigest(ctx context.Context, peer string) (nodeDigest, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cluster/digest", nil)
	if err != nil {
		return nodeDigest{}, err
	}
	resp, err := a.doPeer(peer, req)
	if err != nil {
		return nodeDigest{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nodeDigest{}, fmt.Errorf("GET %s/v1/cluster/digest: status %d", peer, resp.StatusCode)
	}
	var dig nodeDigest
	if err := json.NewDecoder(resp.Body).Decode(&dig); err != nil {
		return nodeDigest{}, err
	}
	return dig, nil
}

// fetchCopies pulls the copy listing a peer holds for owner.
func (a *Agent) fetchCopies(ctx context.Context, peer, owner string) ([]copyDTO, error) {
	u := peer + "/v1/cluster/copies?owner=" + url.QueryEscape(owner)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := a.doPeer(peer, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", u, resp.StatusCode)
	}
	var out struct {
		Copies []copyDTO `json:"copies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Copies, nil
}

// AntiEntropyRound gossips with every peer once: pulls fresh copies of
// co-owner partials whose digests diverged from the held copy, creates
// locally-missing sketches found in peer digests (manifest
// convergence), and garbage-collects copies of deleted sketches. Copies
// never regress — a pull that would shorten a copy's history is
// skipped, so a restarted peer serving stale state cannot erase what
// its co-owners already saved.
func (a *Agent) AntiEntropyRound(ctx context.Context) AEStats {
	a.met.aeRounds.Add(1)
	parent, _ := obs.FromContext(ctx)
	sp := a.ob.Tracer().Start(parent, "cluster.antientropy")
	ctx = obs.ContextWith(ctx, sp.Context())
	var st AEStats
	for _, p := range a.cfg.Peers {
		if p == a.cfg.Self {
			continue
		}
		st.Peers++
		dig, err := a.fetchDigest(ctx, p)
		if err != nil {
			st.Errors = append(st.Errors, err.Error())
			continue
		}
		names := make(map[string]bool, len(dig.Sketches))
		for _, ds := range dig.Sketches {
			names[ds.Config.Name] = true
			if _, ok := a.srv.SketchConfigOf(ds.Config.Name); !ok {
				// Manifest convergence: every node hosts every sketch, so
				// a create that missed this node (it was down) lands here.
				if cerr := a.srv.CreateSketch(ds.Config); cerr != nil {
					st.Errors = append(st.Errors, fmt.Sprintf("create %q: %v", ds.Config.Name, cerr))
				} else {
					st.Created++
				}
			}
			owners := a.owners(ds.Config.Name)
			if !slices.Contains(owners, a.cfg.Self) || !slices.Contains(owners, p) {
				continue // copies flow only between co-owners
			}
			key := copyKey{name: ds.Config.Name, owner: p}
			a.copyMu.Lock()
			cur := a.copies[key]
			a.copyMu.Unlock()
			if cur != nil && cur.stats.Rows == ds.Stats.Rows &&
				cur.stats.Pushes == ds.Stats.Pushes && cur.total == ds.Total {
				continue // digests agree; nothing to pull
			}
			if cur != nil && (cur.stats.Rows > ds.Stats.Rows || cur.stats.Pushes > ds.Stats.Pushes) {
				continue // never regress a copy to a shorter history
			}
			cfg, stats, blob, perr := a.pullState(ctx, p, ds.Config.Name)
			if perr != nil {
				st.Errors = append(st.Errors, perr.Error())
				continue
			}
			a.copyMu.Lock()
			cur = a.copies[key]
			if cur == nil || (stats.Rows >= cur.stats.Rows && stats.Pushes >= cur.stats.Pushes) {
				a.copies[key] = &sketchCopy{cfg: cfg, stats: stats, total: ds.Total, blob: blob}
				st.Pulled++
				a.met.aePulls.Add(1)
			}
			a.copyMu.Unlock()
		}
		a.copyMu.Lock()
		for k := range a.copies {
			if k.owner == p && !names[k.name] {
				delete(a.copies, k) // the owner no longer hosts it: deleted
				st.Dropped++
			}
		}
		a.copyMu.Unlock()
	}
	if len(st.Errors) > 0 {
		sp.Finish(obs.StatusError)
		a.log.Warn("anti-entropy round finished with errors",
			"peers", st.Peers, "pulled", st.Pulled, "created", st.Created,
			"dropped", st.Dropped, "errors", len(st.Errors), "first_error", st.Errors[0])
	} else {
		sp.Finish(obs.StatusOK)
		if st.Pulled > 0 || st.Created > 0 || st.Dropped > 0 {
			a.log.Info("anti-entropy round converged state",
				"peers", st.Peers, "pulled", st.Pulled, "created", st.Created, "dropped", st.Dropped)
		}
	}
	return st
}

// antiEntropyLoop runs rounds on the configured interval until
// Shutdown.
func (a *Agent) antiEntropyLoop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.AntiEntropyInterval)
	defer t.Stop()
	for {
		select {
		case <-a.ctx.Done():
			return
		case <-t.C:
			a.AntiEntropyRound(a.ctx)
		}
	}
}

// BootRepair converges a (re)joining node before it serves traffic: it
// asks every reachable peer for the copies they hold of this node's own
// partials and restores each partial whose best copy is ahead of local
// state — a node that lost its disk gets its partitions back without
// operator action. Peer digests are also applied so locally-missing
// sketches exist (empty) before traffic lands. A durable server is
// checkpointed after the last restore so the adopted state becomes the
// recovery baseline. Unreachable peers are recorded, not fatal: a
// lone-started node simply repairs nothing.
func (a *Agent) BootRepair(ctx context.Context) RepairStats {
	var st RepairStats
	type candidate struct {
		peer string
		dto  copyDTO
	}
	best := make(map[string]candidate)
	for _, p := range a.cfg.Peers {
		if p == a.cfg.Self {
			continue
		}
		list, err := a.fetchCopies(ctx, p, a.cfg.Self)
		if err != nil {
			st.Errors = append(st.Errors, err.Error())
			continue
		}
		for _, c := range list {
			cur, ok := best[c.Name]
			if !ok || c.Stats.Rows > cur.dto.Stats.Rows ||
				(c.Stats.Rows == cur.dto.Stats.Rows && c.Stats.Pushes > cur.dto.Stats.Pushes) {
				best[c.Name] = candidate{peer: p, dto: c}
			}
		}
		dig, err := a.fetchDigest(ctx, p)
		if err != nil {
			st.Errors = append(st.Errors, err.Error())
			continue
		}
		for _, ds := range dig.Sketches {
			if _, ok := a.srv.SketchConfigOf(ds.Config.Name); !ok {
				if cerr := a.srv.CreateSketch(ds.Config); cerr != nil {
					st.Errors = append(st.Errors, fmt.Sprintf("create %q: %v", ds.Config.Name, cerr))
				} else {
					st.Created++
				}
			}
		}
	}
	local := make(map[string]server.SketchDigest)
	for _, d := range a.srv.Digests() {
		local[d.Name] = d
	}
	for name, cand := range best {
		if loc, ok := local[name]; ok &&
			loc.Rows >= cand.dto.Stats.Rows && loc.Pushes >= cand.dto.Stats.Pushes {
			continue // local state already covers the copy's history
		}
		cfg, stats, blob, err := a.pullCopy(ctx, cand.peer, name, a.cfg.Self)
		if err != nil {
			st.Errors = append(st.Errors, err.Error())
			continue
		}
		if err := a.srv.RestoreSketch(cfg, stats, blob); err != nil {
			st.Errors = append(st.Errors, fmt.Sprintf("restore %q: %v", name, err))
			continue
		}
		st.Restored++
	}
	if st.Restored > 0 || st.Created > 0 {
		if err := a.srv.Checkpoint(); err != nil {
			st.Errors = append(st.Errors, fmt.Sprintf("checkpoint: %v", err))
		}
		a.log.Info("boot repair adopted peer state",
			"restored", st.Restored, "created", st.Created, "errors", len(st.Errors))
	}
	return st
}
