package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	uss "repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/server"
)

// peerRead reports how one owner's partial was obtained — the per-peer
// detail degraded responses carry.
type peerRead struct {
	// Owner is the partial's owner node.
	Owner string `json:"owner"`
	// Source is where the bins came from: "local" (this node's own
	// partial), "owner" (fetched from the owner), "copy" (hedged from a
	// co-owner's anti-entropy copy), or "miss" (no source answered).
	Source string `json:"source"`
	// Error is the fetch failure, when the partial was missed.
	Error string `json:"error,omitempty"`
	// Bins is the partial's bin count.
	Bins int `json:"bins"`
}

// gathered is one scatter-gather read's raw material: the sketch
// config, every obtained partial's bin list, and the per-peer detail.
type gathered struct {
	cfg      server.SketchConfig
	lists    [][]uss.Bin
	reads    []peerRead
	answered int
	degraded bool
}

// merged collapses the gathered partials into one exact bin list. The
// partials are disjoint substreams, so with the merge budget set to the
// union size nothing reduces and the result is the item-wise sum. Large
// gathers fan the sum out across uss.MergeParallelism goroutines; the
// parallel merge is bit-identical to the sequential one.
func (g *gathered) merged() []uss.Bin {
	m := 0
	for _, l := range g.lists {
		m += len(l)
	}
	if m == 0 {
		return nil
	}
	return uss.MergeBinsParallel(m, uss.Pairwise, g.lists...)
}

// sketch materializes the merged partials as a weighted sketch sized to
// hold them exactly, so cluster reads answer through the same TopK /
// Estimate / SubsetSum / query code single-node reads use.
func (g *gathered) sketch() (*uss.WeightedSketch, error) {
	merged := g.merged()
	m := len(merged)
	if m < 1 {
		m = 1
	}
	return uss.NewWeightedFromBins(m, merged)
}

// gatherBins scatters a read for name to its owner set and gathers the
// partials, hedging each remote owner with a co-owner copy after
// HedgeDelay (or immediately on failure). It returns a non-zero HTTP
// status only when the read cannot be answered at all: 404 for an
// unknown sketch, 503 when fewer than ReadQuorum partials answered.
// Anything gathered at quorum is served — degraded, never 5xx.
func (a *Agent) gatherBins(ctx context.Context, name string) (*gathered, int, error) {
	cfg, ok := a.srv.SketchConfigOf(name)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("sketch %q: %w", name, server.ErrNotFound)
	}
	owners := a.owners(name)
	tr := a.ob.Tracer()
	parent, _ := obs.FromContext(ctx)
	gsp := tr.Start(parent, "cluster.gather")
	start := time.Now()
	ctx = obs.ContextWith(ctx, gsp.Context())
	g := &gathered{cfg: cfg, reads: make([]peerRead, len(owners))}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o string) {
			defer wg.Done()
			bins, src, err := a.fetchPartial(ctx, name, o, owners)
			mu.Lock()
			defer mu.Unlock()
			pr := peerRead{Owner: o, Source: src, Bins: len(bins)}
			if err != nil {
				pr.Error = err.Error()
				g.reads[i] = pr
				return
			}
			g.lists = append(g.lists, bins)
			g.answered++
			g.reads[i] = pr
		}(i, o)
	}
	wg.Wait()
	a.ob.GatherHist.RecordSince(start)
	for _, pr := range g.reads {
		if pr.Error != "" || (pr.Source != "owner" && pr.Source != "local") {
			g.degraded = true
		}
	}
	if g.answered < a.cfg.ReadQuorum {
		gsp.Finish(obs.StatusError)
		return g, http.StatusServiceUnavailable,
			fmt.Errorf("read quorum not met for %q: %d of %d owner partials answered (need %d)",
				name, g.answered, len(owners), a.cfg.ReadQuorum)
	}
	if g.degraded {
		a.met.degraded.Add(1)
	}
	gsp.Finish(obs.StatusOK)
	return g, 0, nil
}

// fetchPartial obtains one owner's partial: locally for self, otherwise
// from the owner with a copy-sourced hedge racing it after HedgeDelay.
// The cluster.partial-read faultpoint forces a whole-partial miss.
func (a *Agent) fetchPartial(ctx context.Context, name, owner string, owners []string) ([]uss.Bin, string, error) {
	if owner == a.cfg.Self {
		bins, err := a.localBins(name)
		if err != nil {
			return nil, "miss", err
		}
		return bins, "local", nil
	}
	if faultinject.Hit("cluster.partial-read") {
		return nil, "miss", fmt.Errorf("faultpoint cluster.partial-read dropped owner %s", owner)
	}
	// The primary and its hedge race; whichever loses must not keep its
	// request (and the goroutine reading the response) alive until the
	// caller's deadline. Cancelling on return reels the loser in. Each
	// racer runs under its own span finished with FinishErr, so the loser
	// shows up in the trace as status "cancelled" — visible, not leaked.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	tr := a.ob.Tracer()
	parent, _ := obs.FromContext(ctx)
	type res struct {
		bins []uss.Bin
		src  string
		err  error
	}
	ch := make(chan res, 2)
	go func() {
		sp := tr.Start(parent, "cluster.fetch-owner")
		bins, err := a.fetchOwnerBins(obs.ContextWith(ctx, sp.Context()), owner, name)
		sp.FinishErr(err)
		ch <- res{bins, "owner", err}
	}()
	inflight := 1
	hedged := false
	hedge := func() {
		if hedged {
			return
		}
		hedged = true
		if a.startHedge(ctx, name, owner, owners, func(bins []uss.Bin, err error) {
			ch <- res{bins, "copy", err}
		}) {
			a.met.hedges.Add(1)
			inflight++
		}
	}
	timer := time.NewTimer(a.cfg.HedgeDelay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.bins, r.src, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			inflight--
			hedge() // a failed primary fires the hedge immediately
			if inflight == 0 {
				return nil, "miss", firstErr
			}
		case <-timer.C:
			hedge()
		case <-ctx.Done():
			return nil, "miss", ctx.Err()
		}
	}
}

// startHedge launches the copy-sourced fallback read for owner's
// partial: this node's own anti-entropy copy when it co-owns the
// sketch, else a live co-owner's copy over HTTP. False means no copy
// source exists.
func (a *Agent) startHedge(ctx context.Context, name, owner string, owners []string, deliver func([]uss.Bin, error)) bool {
	selfOwns := false
	for _, o := range owners {
		if o == a.cfg.Self {
			selfOwns = true
		}
	}
	tr := a.ob.Tracer()
	parent, _ := obs.FromContext(ctx)
	if selfOwns {
		a.copyMu.Lock()
		c := a.copies[copyKey{name: name, owner: owner}]
		a.copyMu.Unlock()
		if c == nil {
			return false
		}
		go func() {
			sp := tr.Start(parent, "cluster.hedge-copy")
			bins, err := server.StateBins(c.cfg, c.blob)
			sp.FinishErr(err)
			deliver(bins, err)
		}()
		return true
	}
	for _, p := range owners {
		if p == owner || p == a.cfg.Self || !a.alive(p) {
			continue
		}
		go func(p string) {
			sp := tr.Start(parent, "cluster.hedge-copy")
			cfg, _, blob, err := a.pullCopy(obs.ContextWith(ctx, sp.Context()), p, name, owner)
			if err != nil {
				sp.FinishErr(err)
				deliver(nil, err)
				return
			}
			bins, err := server.StateBins(cfg, blob)
			sp.FinishErr(err)
			deliver(bins, err)
		}(p)
		return true
	}
	return false
}

// localBins flattens this node's own partial.
func (a *Agent) localBins(name string) ([]uss.Bin, error) {
	cfg, _, blob, err := a.srv.SketchState(name)
	if err != nil {
		return nil, err
	}
	return server.StateBins(cfg, blob)
}

// fetchOwnerBins fetches an owner's partial in bins format.
func (a *Agent) fetchOwnerBins(ctx context.Context, owner, name string) ([]uss.Bin, error) {
	blob, err := a.getBlob(ctx, owner, "/v1/cluster/state/"+name+"?format=bins", nil)
	if err != nil {
		return nil, err
	}
	return uss.DecodeBins(blob)
}

// stateHeaders carries a state/copy response's sidecar metadata.
type stateHeaders struct {
	cfg   server.SketchConfig
	stats server.SketchStats
}

// getBlob issues one GET to peer+path, returning the binary body; when
// hdr is non-nil the X-Uss-* sidecar headers are parsed into it.
func (a *Agent) getBlob(ctx context.Context, peer, path string, hdr *stateHeaders) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := a.doPeer(peer, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, a.cfg.MaxBodyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s%s: status %d: %s", peer, path, resp.StatusCode, truncate(body, 160))
	}
	if hdr != nil {
		if err := json.Unmarshal([]byte(resp.Header.Get("X-Uss-Config")), &hdr.cfg); err != nil {
			return nil, fmt.Errorf("GET %s%s: bad X-Uss-Config: %w", peer, path, err)
		}
		if err := json.Unmarshal([]byte(resp.Header.Get("X-Uss-Stats")), &hdr.stats); err != nil {
			return nil, fmt.Errorf("GET %s%s: bad X-Uss-Stats: %w", peer, path, err)
		}
	}
	return body, nil
}

// pullState fetches a peer's live partial in exact-state format.
func (a *Agent) pullState(ctx context.Context, peer, name string) (server.SketchConfig, server.SketchStats, []byte, error) {
	var hdr stateHeaders
	blob, err := a.getBlob(ctx, peer, "/v1/cluster/state/"+name, &hdr)
	if err != nil {
		return server.SketchConfig{}, server.SketchStats{}, nil, err
	}
	return hdr.cfg, hdr.stats, blob, nil
}

// pullCopy fetches peer's anti-entropy copy of owner's partial.
func (a *Agent) pullCopy(ctx context.Context, peer, name, owner string) (server.SketchConfig, server.SketchStats, []byte, error) {
	var hdr stateHeaders
	blob, err := a.getBlob(ctx, peer, "/v1/cluster/copy/"+name+"?owner="+url.QueryEscape(owner), &hdr)
	if err != nil {
		return server.SketchConfig{}, server.SketchStats{}, nil, err
	}
	return hdr.cfg, hdr.stats, blob, nil
}

// truncate clips b for error messages.
func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}
