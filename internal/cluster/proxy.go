package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	uss "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

// Public proxy handlers: the single-node sketch API re-served with
// cluster semantics. Writes fan to owners, reads scatter-gather, and
// responses carry two extra fields — "degraded" and "peers" — when the
// answer was assembled around a failure.

// binDTO mirrors the single-node (item, count) response pair.
type binDTO struct {
	Item  string  `json:"item"`
	Count float64 `json:"count"`
}

func toBinDTOs(bins []uss.Bin) []binDTO {
	out := make([]binDTO, len(bins))
	for i, b := range bins {
		out[i] = binDTO{Item: b.Item, Count: b.Count}
	}
	return out
}

// estimateDTO mirrors the single-node estimate response.
type estimateDTO struct {
	Value      float64    `json:"value"`
	StdErr     float64    `json:"std_err"`
	SampleBins int        `json:"sample_bins"`
	CI95       [2]float64 `json:"ci95"`
}

func toEstimateDTO(e uss.Estimate) estimateDTO {
	lo, hi := e.ConfidenceInterval(0.95)
	return estimateDTO{Value: e.Value, StdErr: e.StdErr, SampleBins: e.SampleBins, CI95: [2]float64{lo, hi}}
}

// degradedFields appends the cluster read-health fields to a response
// map: degraded is always present, per-peer detail only when degraded.
func (g *gathered) degradedFields(m map[string]any) map[string]any {
	m["degraded"] = g.degraded
	if g.degraded {
		m["peers"] = g.reads
	}
	return m
}

// traceOf extracts the request's span context for attachment to queued
// fan tasks (zero when tracing found no edge span).
func traceOf(r *http.Request) obs.SpanContext {
	sc, _ := obs.FromContext(r.Context())
	return sc
}

// readBody slurps a request body under the configured cap.
func (a *Agent) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, a.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return nil, false
	}
	return body, true
}

// handleCreate creates the sketch on every node: locally first (the
// authoritative answer — 409 for a duplicate, 400 for a bad config),
// then broadcast to the peers. A peer that is down simply misses the
// create; anti-entropy's manifest convergence installs it on rejoin, so
// the response only marks the miss as degraded.
func (a *Agent) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := a.readBody(w, r)
	if !ok {
		return
	}
	var cfg server.SketchConfig
	if err := json.Unmarshal(body, &cfg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode config: %w", err))
		return
	}
	if err := a.srv.CreateSketch(cfg); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, server.ErrExists) {
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	peers, degraded := a.broadcastOthers(r.Context(), http.MethodPost, "/v1/cluster/sketches", "", "application/json", body, http.StatusCreated, http.StatusConflict)
	writeJSON(w, http.StatusCreated, map[string]any{
		"name": cfg.Name, "owners": a.owners(cfg.Name), "peers": peers, "degraded": degraded,
	})
}

// handleDelete drops the sketch cluster-wide: locally, then broadcast.
// Copies of the deleted sketch on nodes that missed the broadcast are
// garbage-collected by anti-entropy.
func (a *Agent) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	existed, err := a.srv.DeleteSketch(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !existed {
		writeError(w, http.StatusNotFound, fmt.Errorf("sketch %q: %w", name, server.ErrNotFound))
		return
	}
	a.dropCopies(name)
	a.broadcastOthers(r.Context(), http.MethodDelete, "/v1/cluster/sketches/"+name, "", "", nil, http.StatusNoContent, http.StatusNotFound)
	w.WriteHeader(http.StatusNoContent)
}

// dropCopies forgets this node's copies of name.
func (a *Agent) dropCopies(name string) {
	a.copyMu.Lock()
	for k := range a.copies {
		if k.name == name {
			delete(a.copies, k)
		}
	}
	a.copyMu.Unlock()
}

// broadcastOthers sends one request to every peer but self and folds
// the results into a per-peer status map; statuses outside okStatuses
// and transport failures mark the broadcast degraded.
func (a *Agent) broadcastOthers(ctx context.Context, method, path, rawQuery, ctype string, body []byte, okStatuses ...int) (map[string]string, bool) {
	trace, _ := obs.FromContext(ctx)
	peers := make(map[string]string, len(a.cfg.Peers))
	degraded := false
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range a.cfg.Peers {
		if p == a.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			t := &fanTask{method: method, path: path, rawQuery: rawQuery, ctype: ctype, body: body, trace: trace}
			status, err := a.send(p, t)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				peers[p] = err.Error()
				degraded = true
				a.markDown(p)
				return
			}
			a.markUp(p)
			peers[p] = strconv.Itoa(status)
			ok := false
			for _, s := range okStatuses {
				if status == s {
					ok = true
				}
			}
			if !ok {
				degraded = true
			}
		}(p)
	}
	wg.Wait()
	return peers, degraded
}

// handleIngest fans an ingest batch to the sketch's owner set: the body
// is parsed once, partitioned by item hash so each item's whole
// substream lands on one owner, and each partition is queued to its
// owner with retries and next-owner failover. ?sync=1 waits for every
// partition to be applied (200); the default acknowledges the fan
// (202). A partition that fails on every owner fails the request — the
// rows were never acknowledged.
func (a *Agent) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cfg, ok := a.srv.SketchConfigOf(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("sketch %q: %w", name, server.ErrNotFound))
		return
	}
	body, ok := a.readBody(w, r)
	if !ok {
		return
	}
	rows, err := server.ParseIngestBody(cfg.Kind, r.Header.Get("Content-Type"), body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n := len(rows.Items)
	if n == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"rows": 0})
		return
	}
	owners := a.owners(name)
	parts := partitionRows(rows, len(owners))
	sync := r.URL.Query().Get("sync") != ""
	rawQuery := ""
	if sync {
		rawQuery = "sync=1"
	}
	var tasks []*fanTask
	for idx, part := range parts {
		if len(part.Items) == 0 {
			continue
		}
		pbody, perr := renderRows(cfg.Kind, part)
		if perr != nil {
			writeError(w, http.StatusInternalServerError, perr)
			return
		}
		t := &fanTask{
			owners: owners, idx: idx, tried: 1,
			method: http.MethodPost, path: "/v1/cluster/sketches/" + name + "/ingest",
			rawQuery: rawQuery, ctype: "application/json", body: pbody,
			trace: traceOf(r), done: make(chan fanResult, 1),
		}
		if !a.fanOut(t) {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("ingest fan queues full"))
			return
		}
		tasks = append(tasks, t)
	}
	if !sync {
		writeJSON(w, http.StatusAccepted, map[string]any{"rows": n, "queued": true, "fanned": len(tasks)})
		return
	}
	peers := make(map[string]string, len(tasks))
	failed := false
	for _, t := range tasks {
		select {
		case res := <-t.done:
			if res.err != nil {
				peers[res.peer] = res.err.Error()
				failed = true
			} else if res.status >= 300 {
				peers[res.peer] = strconv.Itoa(res.status)
				failed = true
			} else {
				peers[res.peer] = "ok"
			}
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("request context done before fan completed (%w)", r.Context().Err()))
			return
		}
	}
	if failed {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "ingest fan failed on some partitions", "peers": peers,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": n, "fanned": len(tasks), "peers": peers})
}

// partitionRows splits a parsed batch into n per-owner column sets by
// item hash.
func partitionRows(rows server.IngestRows, n int) []server.IngestRows {
	parts := make([]server.IngestRows, n)
	for i, item := range rows.Items {
		p := &parts[partitionIdx(item, n)]
		p.Items = append(p.Items, item)
		if len(rows.Weights) > 0 {
			p.Weights = append(p.Weights, rows.Weights[i])
		}
		if len(rows.Ats) > 0 {
			p.Ats = append(p.Ats, rows.Ats[i])
		}
	}
	return parts
}

// renderRows re-encodes one partition as a JSON ingest body.
func renderRows(kind server.Kind, part server.IngestRows) ([]byte, error) {
	switch kind {
	case server.KindUnit, server.KindSharded:
		return json.Marshal(map[string]any{"items": part.Items})
	case server.KindWeighted:
		rows := make([]map[string]any, len(part.Items))
		for i, it := range part.Items {
			w := 1.0
			if i < len(part.Weights) {
				w = part.Weights[i]
			}
			rows[i] = map[string]any{"item": it, "weight": w}
		}
		return json.Marshal(map[string]any{"rows": rows})
	case server.KindRollup:
		rows := make([]map[string]any, len(part.Items))
		for i, it := range part.Items {
			var at int64
			if i < len(part.Ats) {
				at = part.Ats[i]
			}
			rows[i] = map[string]any{"item": it, "at": at}
		}
		return json.Marshal(map[string]any{"rows": rows})
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

// handlePushFan fans a pushed wire snapshot: decode once, partition the
// bins by item hash, re-encode each slice and deliver it to its owner
// like an ingest partition. Pushes are synchronous, as on a single
// node.
func (a *Agent) handlePushFan(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cfg, ok := a.srv.SketchConfigOf(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("sketch %q: %w", name, server.ErrNotFound))
		return
	}
	if cfg.Kind != server.KindWeighted {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is %s; snapshots push into weighted sketches", name, cfg.Kind))
		return
	}
	body, ok := a.readBody(w, r)
	if !ok {
		return
	}
	pushed, err := uss.DecodeBins(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rawQuery := ""
	if red := r.URL.Query().Get("reduction"); red != "" {
		rawQuery = "reduction=" + red
	}
	owners := a.owners(name)
	parts := make([][]uss.Bin, len(owners))
	for _, b := range pushed {
		idx := partitionIdx(b.Item, len(owners))
		parts[idx] = append(parts[idx], b)
	}
	var tasks []*fanTask
	for idx, part := range parts {
		if len(part) == 0 {
			continue
		}
		blob, eerr := uss.EncodeBins(len(part), part)
		if eerr != nil {
			writeError(w, http.StatusBadRequest, eerr)
			return
		}
		t := &fanTask{
			owners: owners, idx: idx, tried: 1,
			method: http.MethodPost, path: "/v1/cluster/sketches/" + name + "/snapshot",
			rawQuery: rawQuery, ctype: "application/octet-stream", body: blob,
			trace: traceOf(r), done: make(chan fanResult, 1),
		}
		if !a.fanOut(t) {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("snapshot fan queues full"))
			return
		}
		tasks = append(tasks, t)
	}
	for _, t := range tasks {
		select {
		case res := <-t.done:
			if res.err != nil || res.status >= 300 {
				writeError(w, http.StatusServiceUnavailable,
					fmt.Errorf("snapshot fan failed on %s: status %d err %v", res.peer, res.status, res.err))
				return
			}
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("request context done before fan completed (%w)", r.Context().Err()))
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"merged_bins": len(pushed), "fanned": len(tasks)})
}

// handlePullGather serves the cluster-wide state of a sketch as one
// wire-v2 snapshot: gather the owner partials, merge exactly, encode.
// Degradation rides the X-Uss-Degraded header since the body is binary.
func (a *Agent) handlePullGather(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if cfg, ok := a.srv.SketchConfigOf(name); ok && cfg.Kind == server.KindRollup {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is a rollup; pull a range with /range endpoints", name))
		return
	}
	g, code, err := a.gatherBins(r.Context(), name)
	if err != nil {
		writeError(w, code, err)
		return
	}
	merged := g.merged()
	m := g.cfg.Bins
	if g.cfg.Kind == server.KindSharded {
		m = g.cfg.Shards * g.cfg.Bins
	}
	if m < len(merged) {
		m = len(merged)
	}
	if m < 1 {
		m = 1
	}
	blob, err := uss.EncodeBins(m, merged)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.Header().Set("X-Uss-Degraded", strconv.FormatBool(g.degraded))
	_, _ = w.Write(blob)
}

// gatherSketch runs the scatter-gather and materializes the merged
// sketch, writing the error response on failure.
func (a *Agent) gatherSketch(w http.ResponseWriter, r *http.Request, name string) (*uss.WeightedSketch, *gathered, bool) {
	cfg, ok := a.srv.SketchConfigOf(name)
	if ok && cfg.Kind == server.KindRollup {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is a rollup; use /range endpoints", name))
		return nil, nil, false
	}
	g, code, err := a.gatherBins(r.Context(), name)
	if err != nil {
		writeError(w, code, err)
		return nil, nil, false
	}
	sk, err := g.sketch()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return nil, nil, false
	}
	return sk, g, true
}

func (a *Agent) handleTopK(w http.ResponseWriter, r *http.Request) {
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k=%q", v))
			return
		}
		k = n
	}
	sk, g, ok := a.gatherSketch(w, r, r.PathValue("name"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, g.degradedFields(map[string]any{"items": toBinDTOs(sk.TopK(k))}))
}

func (a *Agent) handleEstimate(w http.ResponseWriter, r *http.Request) {
	item := r.URL.Query().Get("item")
	if item == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing item parameter"))
		return
	}
	sk, g, ok := a.gatherSketch(w, r, r.PathValue("name"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, g.degradedFields(map[string]any{"item": item, "estimate": sk.Estimate(item)}))
}

func (a *Agent) handleSum(w http.ResponseWriter, r *http.Request) {
	pred, err := server.SumPredicate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sk, g, ok := a.gatherSketch(w, r, r.PathValue("name"))
	if !ok {
		return
	}
	est := toEstimateDTO(sk.SubsetSum(pred))
	writeJSON(w, http.StatusOK, g.degradedFields(map[string]any{
		"value": est.Value, "std_err": est.StdErr, "sample_bins": est.SampleBins, "ci95": est.CI95,
	}))
}

// queryRequest mirrors the single-node POST /query body.
type queryRequest struct {
	Where []struct {
		Dim string   `json:"dim"`
		In  []string `json:"in"`
	} `json:"where"`
	GroupBy []string `json:"group_by"`
}

func (a *Agent) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, ok := a.readBody(w, r)
	if !ok {
		return
	}
	var req queryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	sk, g, ok := a.gatherSketch(w, r, r.PathValue("name"))
	if !ok {
		return
	}
	spec := uss.QuerySpec{GroupBy: req.GroupBy}
	for _, f := range req.Where {
		spec.Where = append(spec.Where, uss.QueryFilter{Dim: f.Dim, In: f.In})
	}
	groups, skipped, err := sk.QueryEngine().Prepare(spec).Run()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]map[string]any, len(groups))
	for i, grp := range groups {
		out[i] = map[string]any{
			"key": grp.Key, "key_string": grp.KeyString(),
			"value": grp.Sum.Value, "std_err": grp.Sum.StdErr, "sample_bins": grp.Sum.SampleBins,
		}
	}
	writeJSON(w, http.StatusOK, g.degradedFields(map[string]any{"groups": out, "skipped": skipped}))
}

// handleInfo aggregates a sketch's stats across its owner set by
// digest: rows, pushes and total are summed over the disjoint partials.
func (a *Agent) handleInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cfg, ok := a.srv.SketchConfigOf(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("sketch %q: %w", name, server.ErrNotFound))
		return
	}
	sums, reads, degraded := a.sumDigests(r, name)
	writeJSON(w, http.StatusOK, map[string]any{
		"name": cfg.Name, "kind": cfg.Kind, "config": cfg,
		"rows": sums.Rows, "pushes": sums.Pushes, "total": sums.total,
		"degraded": degraded, "peers": reads,
	})
}

// digestSums accumulates owner-partial counters.
type digestSums struct {
	server.SketchStats
	total float64
}

// sumDigests folds name's digest across its owner set.
func (a *Agent) sumDigests(r *http.Request, name string) (digestSums, []peerRead, bool) {
	owners := a.owners(name)
	var sums digestSums
	reads := make([]peerRead, 0, len(owners))
	degraded := false
	for _, o := range owners {
		var dig nodeDigest
		var err error
		if o == a.cfg.Self {
			dig = a.localDigest()
		} else {
			dig, err = a.fetchDigest(r.Context(), o)
		}
		if err != nil {
			reads = append(reads, peerRead{Owner: o, Source: "miss", Error: err.Error()})
			degraded = true
			continue
		}
		src := "owner"
		if o == a.cfg.Self {
			src = "local"
		}
		reads = append(reads, peerRead{Owner: o, Source: src})
		for _, ds := range dig.Sketches {
			if ds.Config.Name == name {
				sums.Rows += ds.Stats.Rows
				sums.Pushes += ds.Stats.Pushes
				sums.Dropped += ds.Stats.Dropped
				sums.total += ds.Total
			}
		}
	}
	return sums, reads, degraded
}

// handleList merges every peer's digest into a cluster-wide sketch
// listing: per sketch, stats are summed over its owner partials only.
func (a *Agent) handleList(w http.ResponseWriter, r *http.Request) {
	type listEntry struct {
		Config server.SketchConfig `json:"config"`
		Rows   int64               `json:"rows"`
		Pushes int64               `json:"pushes"`
		Total  float64             `json:"total"`
		Owners []string            `json:"owners"`
	}
	entries := make(map[string]*listEntry)
	degraded := false
	for _, p := range a.cfg.Peers {
		var dig nodeDigest
		var err error
		if p == a.cfg.Self {
			dig = a.localDigest()
		} else {
			dig, err = a.fetchDigest(r.Context(), p)
		}
		if err != nil {
			degraded = true
			continue
		}
		for _, ds := range dig.Sketches {
			le := entries[ds.Config.Name]
			if le == nil {
				le = &listEntry{Config: ds.Config, Owners: a.owners(ds.Config.Name)}
				entries[ds.Config.Name] = le
			}
			if slices := le.Owners; contains(slices, p) {
				le.Rows += ds.Stats.Rows
				le.Pushes += ds.Stats.Pushes
				le.Total += ds.Total
			}
		}
	}
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*listEntry, len(names))
	for i, n := range names {
		out[i] = entries[n]
	}
	writeJSON(w, http.StatusOK, map[string]any{"sketches": out, "degraded": degraded})
}

// contains reports whether list holds s.
func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// handleRange forwards a rollup range query to every owner and merges
// the JSON answers: top-k lists merge bin-wise and re-rank, sums add
// values with root-sum-square errors, totals add. A missed owner marks
// the response degraded; below read quorum the read fails 503.
func (a *Agent) handleRange(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cfg, ok := a.srv.SketchConfigOf(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("sketch %q: %w", name, server.ErrNotFound))
		return
	}
	if cfg.Kind != server.KindRollup {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is %s; /range endpoints need a rollup", name, cfg.Kind))
		return
	}
	op := r.URL.Path[strings.LastIndex(r.URL.Path, "/")+1:]
	owners := a.owners(name)
	type rangeRes struct {
		owner  string
		status int
		body   []byte
		err    error
	}
	results := make([]rangeRes, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i int, o string) {
			defer wg.Done()
			u := o + "/v1/cluster/sketches/" + name + "/range/" + op
			if r.URL.RawQuery != "" {
				u += "?" + r.URL.RawQuery
			}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
			if err != nil {
				results[i] = rangeRes{owner: o, err: err}
				return
			}
			resp, err := a.doPeer(o, req)
			if err != nil {
				results[i] = rangeRes{owner: o, err: err}
				return
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, a.cfg.MaxBodyBytes))
			resp.Body.Close()
			results[i] = rangeRes{owner: o, status: resp.StatusCode, body: body}
		}(i, o)
	}
	wg.Wait()

	reads := make([]peerRead, len(owners))
	answered, missed, notFound := 0, 0, 0
	var bodies [][]byte
	for i, res := range results {
		pr := peerRead{Owner: res.owner, Source: "owner"}
		if res.owner == a.cfg.Self {
			pr.Source = "local"
		}
		switch {
		case res.err != nil:
			pr.Source, pr.Error = "miss", res.err.Error()
			missed++
		case res.status == http.StatusNotFound:
			// No retained window on this owner: a valid empty answer.
			answered++
			notFound++
		case res.status != http.StatusOK:
			pr.Source, pr.Error = "miss", fmt.Sprintf("status %d: %s", res.status, truncate(res.body, 120))
			missed++
		default:
			answered++
			bodies = append(bodies, res.body)
		}
		reads[i] = pr
	}
	if answered < a.cfg.ReadQuorum {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("read quorum not met for %q range/%s: %d of %d answered (need %d)",
				name, op, answered, len(owners), a.cfg.ReadQuorum))
		return
	}
	degraded := missed > 0
	if degraded {
		a.met.degraded.Add(1)
	}
	if len(bodies) == 0 && notFound > 0 {
		// Every answering owner said 404: mirror the single-node answer.
		writeError(w, http.StatusNotFound, fmt.Errorf("no retained window intersects the range"))
		return
	}
	out, err := mergeRange(op, r, bodies)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	out["degraded"] = degraded
	if degraded {
		out["peers"] = reads
	}
	writeJSON(w, http.StatusOK, out)
}

// mergeRange folds per-owner range answers into the cluster answer.
func mergeRange(op string, r *http.Request, bodies [][]byte) (map[string]any, error) {
	switch op {
	case "topk":
		k := 10
		if v := r.URL.Query().Get("k"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				k = n
			}
		}
		var lists [][]uss.Bin
		m := 0
		for _, b := range bodies {
			var resp struct {
				Items []binDTO `json:"items"`
			}
			if err := json.Unmarshal(b, &resp); err != nil {
				return nil, err
			}
			bins := make([]uss.Bin, len(resp.Items))
			for i, it := range resp.Items {
				bins[i] = uss.Bin{Item: it.Item, Count: it.Count}
			}
			lists = append(lists, bins)
			m += len(bins)
		}
		if m < 1 {
			return map[string]any{"items": []binDTO{}}, nil
		}
		merged := uss.MergeBins(m, uss.Pairwise, lists...)
		sk, err := uss.NewWeightedFromBins(max(len(merged), 1), merged)
		if err != nil {
			return nil, err
		}
		return map[string]any{"items": toBinDTOs(sk.TopK(k))}, nil
	case "sum":
		var value, varSum float64
		sampleBins := 0
		for _, b := range bodies {
			var resp estimateDTO
			if err := json.Unmarshal(b, &resp); err != nil {
				return nil, err
			}
			value += resp.Value
			varSum += resp.StdErr * resp.StdErr
			sampleBins += resp.SampleBins
		}
		est := toEstimateDTO(uss.Estimate{Value: value, StdErr: math.Sqrt(varSum), SampleBins: sampleBins})
		return map[string]any{
			"value": est.Value, "std_err": est.StdErr, "sample_bins": est.SampleBins, "ci95": est.CI95,
		}, nil
	case "total":
		var total float64
		for _, b := range bodies {
			var resp struct {
				Total float64 `json:"total"`
			}
			if err := json.Unmarshal(b, &resp); err != nil {
				return nil, err
			}
			total += resp.Total
		}
		return map[string]any{"total": total}, nil
	}
	return nil, fmt.Errorf("unknown range op %q", op)
}
