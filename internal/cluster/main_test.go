package cluster

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: fan workers, the
// anti-entropy loop, hedged partial reads and pooled intra-cluster
// connections must all be gone once every agent is shut down, or the
// leak check dumps their stacks and fails the run.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
