package cluster

import (
	"fmt"
	"testing"
)

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://node%d:86%02d", i, 32+i)
	}
	return nodes
}

func TestRingOwnersDistinct(t *testing.T) {
	ring := NewRing(testNodes(5), 64)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("sketch-%d", i)
		for rf := 1; rf <= 5; rf++ {
			owners := ring.Owners(name, rf)
			if len(owners) != rf {
				t.Fatalf("Owners(%q, %d) returned %d nodes: %v", name, rf, len(owners), owners)
			}
			seen := make(map[string]bool, rf)
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("Owners(%q, %d) repeated %q: %v", name, rf, o, owners)
				}
				seen[o] = true
			}
		}
	}
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing(testNodes(4), 64)
	b := NewRing(testNodes(4), 64)
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("k%d", i)
		ao, bo := a.Owners(name, 3), b.Owners(name, 3)
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("rings disagree for %q: %v vs %v", name, ao, bo)
			}
		}
	}
}

// TestRingPeerOrderIrrelevant pins that every node builds the same ring
// regardless of the order peers were listed — the property that lets
// each proxy route independently.
func TestRingPeerOrderIrrelevant(t *testing.T) {
	nodes := testNodes(4)
	shuffled := []string{nodes[2], nodes[0], nodes[3], nodes[1]}
	a, b := NewRing(nodes, 64), NewRing(shuffled, 64)
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("k%d", i)
		ao, bo := a.Owners(name, 2), b.Owners(name, 2)
		if ao[0] != bo[0] || ao[1] != bo[1] {
			t.Fatalf("peer order changed owners for %q: %v vs %v", name, ao, bo)
		}
	}
}

// TestRingDistribution checks that virtual nodes spread primary
// ownership roughly evenly: no node far below its fair share.
func TestRingDistribution(t *testing.T) {
	nodes := testNodes(3)
	ring := NewRing(nodes, 64)
	counts := make(map[string]int, len(nodes))
	const total = 9000
	for i := 0; i < total; i++ {
		counts[ring.Owners(fmt.Sprintf("sketch-%d", i), 1)[0]]++
	}
	fair := total / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/2 {
			t.Fatalf("node %s owns %d of %d names (fair share %d): %v", n, counts[n], total, fair, counts)
		}
	}
}

// TestRingStability pins the consistent-hashing property: removing one
// node never changes the primary of a name the removed node did not
// own.
func TestRingStability(t *testing.T) {
	nodes := testNodes(4)
	before := NewRing(nodes, 64)
	after := NewRing(nodes[:3], 64) // drop node3
	removed := nodes[3]
	moved := 0
	const total = 2000
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("sketch-%d", i)
		p := before.Owners(name, 1)[0]
		q := after.Owners(name, 1)[0]
		if p == removed {
			moved++
			continue
		}
		if p != q {
			t.Fatalf("primary of %q moved %s -> %s though %s was not its owner", name, p, q, removed)
		}
	}
	if moved == 0 || moved == total {
		t.Fatalf("expected some (not all) names on the removed node, got %d of %d", moved, total)
	}
}
