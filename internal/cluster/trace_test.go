package cluster

// The end-to-end tracing contract: one client request against a
// 3-node cluster produces spans on every owner node sharing the root
// trace ID, retrievable by ID from each node's /debug/traces ring, and
// a forced hedge leaves its losing owner-fetch span recorded as
// "cancelled" — observable, not leaked.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

// spanRow is the slice of the /debug/traces span JSON this test reads.
type spanRow struct {
	Name   string `json:"name"`
	Trace  string `json:"trace"`
	Status string `json:"status"`
}

// tracesOf fetches one node's span ring filtered by trace ID.
func (tc *testCluster) tracesOf(node int, traceID string) []spanRow {
	tc.t.Helper()
	code, b := tc.get(node, "/debug/traces?trace="+traceID)
	if code != http.StatusOK {
		tc.t.Fatalf("GET /debug/traces on node %d: status %d: %s", node, code, b)
	}
	var page struct {
		Spans []spanRow `json:"spans"`
	}
	if err := json.Unmarshal(b, &page); err != nil {
		tc.t.Fatalf("decode traces: %v: %s", err, b)
	}
	return page.Spans
}

func TestClusterTracePropagationAndHedgeLoser(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) {
		c.ReplicationFactor = 3
		c.ReadQuorum = 2
	})
	tc.create(0, server.SketchConfig{Name: "tr", Kind: server.KindWeighted, Bins: 128, Seed: 9})
	tc.ingestWeighted("tr", 200)
	// Seed every node's anti-entropy copies so hedges have a source.
	for _, ag := range tc.agents {
		ag.AntiEntropyRound(t.Context())
	}

	// Delay every remote owner-state read past HedgeDelay (20ms in this
	// harness): each remote owner fetch hedges to the local copy, the
	// copy wins, and the in-flight owner fetch is cancelled.
	if err := faultinject.Enable("cluster.slow-peer"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)

	const traceID = "5a1ad001dead10ad5a1ad001dead10ad"
	req, err := http.NewRequest(http.MethodGet, tc.urls[0]+"/v1/sketches/tr/topk?k=10", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-USS-Trace", traceID+"-00f067aa0ba902b7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged topk: status %d", resp.StatusCode)
	}
	if tc.agents[0].met.hedges.Load() == 0 {
		t.Fatal("slow-peer faultpoint did not force a hedge")
	}

	// Loser spans finish after the winner returns (the remote handler
	// sleeps 250ms before noticing the cancel), so poll each node's ring.
	// Node 0 coordinated the gather; nodes 1 and 2 served (delayed)
	// owner-state reads under the same propagated trace ID.
	deadline := time.Now().Add(5 * time.Second)
	waitFor := func(node int, cond func([]spanRow) bool, desc string) {
		t.Helper()
		for {
			spans := tc.tracesOf(node, traceID)
			for _, sp := range spans {
				if sp.Trace != traceID {
					t.Fatalf("node %d returned span from wrong trace: %+v", node, sp)
				}
			}
			if cond(spans) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d: %s never appeared for trace %s (have %+v)", node, desc, traceID, spans)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	hasName := func(name string) func([]spanRow) bool {
		return func(spans []spanRow) bool {
			for _, sp := range spans {
				if sp.Name == name {
					return true
				}
			}
			return false
		}
	}
	waitFor(0, hasName("cluster.gather"), "cluster.gather span")
	waitFor(1, func(s []spanRow) bool { return len(s) > 0 }, "any span")
	waitFor(2, func(s []spanRow) bool { return len(s) > 0 }, "any span")

	// The hedge losers: cancelled owner fetches on the coordinating
	// node, visible in the ring rather than leaked.
	for {
		var cancelled, hedges int
		for _, sp := range tc.tracesOf(0, traceID) {
			if sp.Name == "cluster.fetch-owner" && sp.Status == "cancelled" {
				cancelled++
			}
			if sp.Name == "cluster.hedge-copy" {
				hedges++
			}
		}
		if cancelled >= 1 && hedges >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no cancelled fetch-owner + hedge-copy spans on node 0: %s",
				fmt.Sprintf("%+v", tc.tracesOf(0, traceID)))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
