package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/replica"
)

// errDropFan is the injected delivery failure of the cluster.drop-fan
// faultpoint: the task is "dropped on the wire" before the request is
// sent, so a retry is always safe.
var errDropFan = errors.New("faultpoint cluster.drop-fan dropped the send")

// fanTask is one unit of fan-out work bound for an owner set: a request
// to deliver to owners[idx], with fallback to the next owners in the
// set when delivery fails terminally. done (when non-nil, buffered 1)
// receives exactly one final result. trace carries the originating
// request's span context across the queue hop, so deliveries made long
// after the proxy handler returned still join its trace.
type fanTask struct {
	owners []string
	idx    int // current target's position in owners
	tried  int // owners attempted so far (including current)

	method   string
	path     string // target path, e.g. /v1/cluster/sketches/x/ingest
	rawQuery string
	ctype    string
	body     []byte
	trace    obs.SpanContext

	done chan fanResult
}

// fanResult is a task's terminal outcome: the last HTTP status (0 when
// no request completed) and the delivery error, nil on success.
type fanResult struct {
	status int
	peer   string
	err    error
}

// finish reports the task's terminal result to a waiting caller.
func (t *fanTask) finish(res fanResult) {
	if t.done != nil {
		t.done <- res
	}
}

// peerQueue is one peer's bounded fan queue; a single worker drains it,
// so per-peer delivery is ordered and a slow peer backpressures only
// its own queue.
type peerQueue struct {
	url string
	ch  chan *fanTask

	mu     sync.Mutex
	closed bool
}

// enqueue offers t without blocking; false means the queue is full or
// closed.
func (q *peerQueue) enqueue(t *fanTask) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.ch <- t:
		return true
	default:
		return false
	}
}

func (q *peerQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// fanWorker drains one peer's queue until shutdown.
func (a *Agent) fanWorker(pq *peerQueue) {
	defer a.wg.Done()
	for t := range pq.ch {
		a.deliver(pq.url, t)
	}
}

// deliver pushes one task at its current target with retries, then
// fails over to the next owner in the set. Retries use replica's
// jittered exponential backoff; the cluster.drop-fan faultpoint injects
// pre-send losses that the retry loop heals.
func (a *Agent) deliver(url string, t *fanTask) {
	var status int
	var peer = url
	first := true
	err := replica.Retry(a.ctx, a.cfg.FanAttempts, a.cfg.FanBackoffMin, a.cfg.FanBackoffMax, func() error {
		if !first {
			a.met.fanRetries.Add(1)
		}
		first = false
		if faultinject.Hit("cluster.drop-fan") {
			return errDropFan
		}
		st, e := a.send(url, t)
		status = st
		return e
	})
	if err == nil {
		a.markUp(url)
		a.met.fanned.Add(1)
		t.finish(fanResult{status: status, peer: peer, err: nil})
		return
	}
	a.markDown(url)
	if a.failover(t) {
		a.met.fanFallbacks.Add(1)
		return
	}
	a.met.fanShed.Add(1)
	a.log.Warn("fan task shed: every owner failed",
		"path", t.path, "owners", len(t.owners), "last_peer", peer, "err", err)
	t.finish(fanResult{status: status, peer: peer, err: err})
}

// failover re-enqueues t to the next untried owner, skipping the ones
// already attempted. False means the set is exhausted.
func (a *Agent) failover(t *fanTask) bool {
	for t.tried < len(t.owners) {
		t.idx = (t.idx + 1) % len(t.owners)
		t.tried++
		if pq := a.queues[t.owners[t.idx]]; pq != nil && pq.enqueue(t) {
			return true
		}
	}
	return false
}

// send issues t's request to url once. Connection errors and 5xx are
// delivery failures (retryable — the cluster holds no non-idempotent
// 5xx); any other status is a delivered outcome, including 4xx. The
// request runs on the agent context (the task outlives its originating
// request) but carries the task's recorded trace, under a fresh
// "cluster.fan" span.
func (a *Agent) send(url string, t *fanTask) (int, error) {
	u := url + t.path
	if t.rawQuery != "" {
		u += "?" + t.rawQuery
	}
	sp := a.ob.Tracer().Start(t.trace, "cluster.fan")
	ctx := obs.ContextWith(a.ctx, sp.Context())
	req, err := http.NewRequestWithContext(ctx, t.method, u, bytes.NewReader(t.body))
	if err != nil {
		sp.FinishErr(err)
		return 0, err
	}
	if t.ctype != "" {
		req.Header.Set("Content-Type", t.ctype)
	}
	resp, err := a.doPeer(url, req)
	if err != nil {
		sp.FinishErr(err)
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 500 {
		sp.Finish(int32(resp.StatusCode))
		return resp.StatusCode, fmt.Errorf("%s %s: status %d", t.method, u, resp.StatusCode)
	}
	sp.Finish(int32(resp.StatusCode))
	return resp.StatusCode, nil
}

// fanOut enqueues a task per owner-set target, preferring the slot's
// owner but starting at the first live owner (dead ones are skipped up
// front rather than waiting out their retry budget; the skipped owner
// stays in the set and is retried by failover if the live ones fail
// too). Returns false when every owner's queue refused the task.
func (a *Agent) fanOut(t *fanTask) bool {
	for t.tried <= len(t.owners) {
		target := t.owners[t.idx]
		if !a.alive(target) && t.tried < len(t.owners) {
			t.idx = (t.idx + 1) % len(t.owners)
			t.tried++
			continue
		}
		if pq := a.queues[target]; pq != nil && pq.enqueue(t) {
			return true
		}
		if t.tried >= len(t.owners) {
			break
		}
		t.idx = (t.idx + 1) % len(t.owners)
		t.tried++
	}
	return false
}
