// Package cluster turns a fleet of ussd nodes into one fault-tolerant
// sketch service, leaning entirely on the paper's mergeability property
// instead of consensus. A consistent-hash ring (virtual nodes,
// rendezvous tiebreak) maps each sketch name to a replication-factor-
// sized owner set; every ingested row is routed to exactly one owner in
// that set by item hash, so the owners hold disjoint substreams whose
// bin lists merge back — via DecodeBins → MergeBins, the wire-v2 merge
// kernel — into exactly the single-node answer. Reads scatter to the
// owner set and gather partials, hedging slow or dead owners from
// co-owner copies and answering with an explicit degraded marker
// (never a 5xx) whenever a read quorum responds. Periodic snapshot
// anti-entropy gossips per-sketch (rows, pushes, total) digests between
// co-owners and pulls exact state blobs on divergence, so a node that
// died and lost its disk converges again without operator action.
//
// Every node runs the same Agent: proxy for public requests, data node
// for its partitions, copy-holder for its co-owners. Internal traffic
// rides /v1/cluster/* on the same listener. See DESIGN.md §13 for the
// ring layout, the hedged partial-read protocol, the anti-entropy
// digest format, and the cluster.* faultpoint spec.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashx"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
)

// Config parameterizes an Agent.
type Config struct {
	// Self is this node's base URL, exactly as it appears in Peers.
	Self string
	// Peers is every cluster member's base URL, including Self.
	Peers []string
	// ReplicationFactor is the owner-set size per sketch (default 2,
	// clamped to the peer count).
	ReplicationFactor int
	// ReadQuorum is the minimum number of owner partials (own or copy)
	// a scatter-gather read needs to answer 200 (default majority of
	// the replication factor).
	ReadQuorum int
	// VirtualNodes is the ring points per node (default 64).
	VirtualNodes int
	// HedgeDelay is how long a partial fetch waits on an owner before
	// racing a co-owner copy against it (default 75ms).
	HedgeDelay time.Duration
	// AntiEntropyInterval runs anti-entropy rounds on a timer; 0 means
	// manual only (POST /v1/cluster/antientropy).
	AntiEntropyInterval time.Duration
	// FanQueueDepth bounds each peer's ingest fan queue in tasks; a full
	// queue fails over to the next owner or sheds with 503 (default 128).
	FanQueueDepth int
	// FanAttempts is the per-owner delivery attempt budget (default 3).
	FanAttempts int
	// FanBackoffMin and FanBackoffMax bound the jittered exponential
	// delay between delivery attempts (defaults 25ms and 250ms).
	FanBackoffMin, FanBackoffMax time.Duration
	// DownFor is how long a peer stays marked down after a terminal
	// delivery failure before fan routing tries it again (default 2s).
	DownFor time.Duration
	// MaxBodyBytes caps proxied request bodies (default 32 MiB).
	MaxBodyBytes int64
	// BreakerThreshold is how many consecutive transport failures open a
	// peer's circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses before
	// admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// Client issues intra-cluster requests (default: a pooled client
	// with a 10s timeout).
	Client *http.Client
}

func (c *Config) defaults() error {
	if c.Self == "" {
		return fmt.Errorf("cluster: Self must be set")
	}
	found := false
	for _, p := range c.Peers {
		if p == c.Self {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("cluster: Self %q must appear in Peers %v", c.Self, c.Peers)
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 2
	}
	if c.ReplicationFactor > len(c.Peers) {
		c.ReplicationFactor = len(c.Peers)
	}
	if c.ReadQuorum <= 0 {
		c.ReadQuorum = c.ReplicationFactor/2 + 1
	}
	if c.ReadQuorum > c.ReplicationFactor {
		return fmt.Errorf("cluster: read quorum %d exceeds replication factor %d", c.ReadQuorum, c.ReplicationFactor)
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 75 * time.Millisecond
	}
	if c.FanQueueDepth <= 0 {
		c.FanQueueDepth = 128
	}
	if c.FanAttempts <= 0 {
		c.FanAttempts = 3
	}
	if c.FanBackoffMin <= 0 {
		c.FanBackoffMin = 25 * time.Millisecond
	}
	if c.FanBackoffMax <= 0 {
		c.FanBackoffMax = 250 * time.Millisecond
	}
	if c.DownFor <= 0 {
		c.DownFor = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Timeout:   10 * time.Second,
			Transport: &http.Transport{MaxIdleConnsPerHost: 16},
		}
	}
	return nil
}

// copyKey identifies one held copy: a sketch name and the owner whose
// partial the copy mirrors.
type copyKey struct {
	name  string
	owner string
}

// sketchCopy is an anti-entropy copy of a co-owner's partial: its exact
// state blob plus the digest the blob was cut at.
type sketchCopy struct {
	cfg   server.SketchConfig
	stats server.SketchStats
	total float64
	blob  []byte
}

// peerHealth tracks one peer's fan-routing liveness: downUntil is the
// unix-nano deadline of its current down mark (0 = up).
type peerHealth struct {
	downUntil atomic.Int64
}

// metrics is the agent's counter set, reported by /v1/cluster/status.
type metrics struct {
	fanned       atomic.Int64 // fan tasks delivered
	fanRetries   atomic.Int64 // delivery attempts past the first
	fanFallbacks atomic.Int64 // tasks re-routed to a fallback owner
	fanShed      atomic.Int64 // tasks failed on every owner
	hedges       atomic.Int64 // hedged copy reads fired
	degraded     atomic.Int64 // reads answered degraded
	aeRounds     atomic.Int64 // anti-entropy rounds run
	aePulls      atomic.Int64 // state blobs pulled by anti-entropy
	breakerFast  atomic.Int64 // requests refused instantly by an open breaker
}

// Agent is one cluster node: the proxy endpoints it serves, the fan
// queues and workers that push ingest to owners, the copies it holds
// for its co-owners, and the anti-entropy loop. Create with New, wire
// Handler into the node's listener, then Start; Shutdown drains the fan
// queues.
type Agent struct {
	cfg   Config
	srv   *server.Server
	inner http.Handler
	ring  *Ring
	mux   *http.ServeMux
	ob    *obs.Observer
	log   *slog.Logger

	queues   map[string]*peerQueue
	health   map[string]*peerHealth
	breakers map[string]*replica.Breaker

	copyMu sync.Mutex
	copies map[copyKey]*sketchCopy

	met metrics

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started atomic.Bool
}

// New builds an Agent for srv with the given cluster config. The agent
// serves nothing until its Handler is mounted and Start is called.
func New(cfg Config, srv *server.Server) (*Agent, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	a := &Agent{
		cfg:      cfg,
		srv:      srv,
		inner:    srv.Handler(),
		ob:       srv.Obs(),
		log:      srv.Log().With("component", "cluster", "self", cfg.Self),
		ring:     NewRing(cfg.Peers, cfg.VirtualNodes),
		mux:      http.NewServeMux(),
		queues:   make(map[string]*peerQueue, len(cfg.Peers)),
		health:   make(map[string]*peerHealth, len(cfg.Peers)),
		breakers: make(map[string]*replica.Breaker, len(cfg.Peers)),
		copies:   make(map[copyKey]*sketchCopy),
		ctx:      ctx,
		cancel:   cancel,
	}
	for _, p := range cfg.Peers {
		a.queues[p] = &peerQueue{url: p, ch: make(chan *fanTask, cfg.FanQueueDepth)}
		a.health[p] = &peerHealth{}
		a.breakers[p] = replica.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	a.routes()
	srv.RegisterMetrics(a.emitMetrics)
	return a, nil
}

// doPeer issues one intra-cluster request through peer's circuit
// breaker: an open breaker refuses instantly with ErrBreakerOpen before
// any dial, a transport failure feeds the breaker, and any HTTP
// response — whatever its status — closes it, because an answering peer
// is alive. A failure caused by our own context (hedge losers are
// cancelled when the winner returns) is not held against the peer.
func (a *Agent) doPeer(peer string, req *http.Request) (*http.Response, error) {
	br := a.breakers[peer]
	if br != nil && !br.Allow() {
		a.met.breakerFast.Add(1)
		return nil, fmt.Errorf("peer %s: %w", peer, replica.ErrBreakerOpen)
	}
	obs.InjectTrace(req.Context(), req.Header)
	resp, err := a.cfg.Client.Do(req)
	if br != nil {
		switch {
		case err == nil:
			br.Success()
		case req.Context().Err() == nil:
			br.Failure()
		}
	}
	return resp, err
}

// breakerTrips sums closed→open transitions across every peer link.
func (a *Agent) breakerTrips() int64 {
	var n int64
	for _, br := range a.breakers {
		n += br.Trips()
	}
	return n
}

// emitMetrics appends the agent's series to the wrapped server's
// /metrics scrape, registered at construction via RegisterMetrics.
func (a *Agent) emitMetrics(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	fam := func(name, typ, help string) {
		p("# HELP %s %s\n", name, help)
		p("# TYPE %s %s\n", name, typ)
	}
	fam("ussd_cluster_fanned_total", "counter", "Ingest fan tasks delivered to owners.")
	p("ussd_cluster_fanned_total %d\n", a.met.fanned.Load())
	fam("ussd_cluster_fan_retries_total", "counter", "Fan delivery attempts past the first.")
	p("ussd_cluster_fan_retries_total %d\n", a.met.fanRetries.Load())
	fam("ussd_cluster_fan_fallbacks_total", "counter", "Fan tasks re-routed to a fallback owner.")
	p("ussd_cluster_fan_fallbacks_total %d\n", a.met.fanFallbacks.Load())
	fam("ussd_cluster_fan_shed_total", "counter", "Fan tasks that failed on every owner.")
	p("ussd_cluster_fan_shed_total %d\n", a.met.fanShed.Load())
	fam("ussd_cluster_hedges_total", "counter", "Hedged copy reads fired by slow or dead owners.")
	p("ussd_cluster_hedges_total %d\n", a.met.hedges.Load())
	fam("ussd_cluster_degraded_reads_total", "counter", "Scatter-gather reads answered with the degraded marker.")
	p("ussd_cluster_degraded_reads_total %d\n", a.met.degraded.Load())
	fam("ussd_cluster_ae_rounds_total", "counter", "Anti-entropy rounds run.")
	p("ussd_cluster_ae_rounds_total %d\n", a.met.aeRounds.Load())
	fam("ussd_cluster_ae_pulls_total", "counter", "Exact-state blobs pulled by anti-entropy on digest divergence.")
	p("ussd_cluster_ae_pulls_total %d\n", a.met.aePulls.Load())
	fam("ussd_cluster_breaker_fastfails_total", "counter", "Peer requests refused instantly by an open circuit breaker.")
	p("ussd_cluster_breaker_fastfails_total %d\n", a.met.breakerFast.Load())
	fam("ussd_cluster_breaker_trips_total", "counter", "Closed-to-open circuit breaker transitions, per peer link.")
	for _, peer := range a.cfg.Peers {
		p("ussd_cluster_breaker_trips_total{peer=%q} %d\n", peer, a.breakers[peer].Trips())
	}
	fam("ussd_cluster_breaker_open", "gauge", "Whether the peer's circuit breaker is currently open or half-open.")
	for _, peer := range a.cfg.Peers {
		open := 0
		if a.breakers[peer].State() != "closed" {
			open = 1
		}
		p("ussd_cluster_breaker_open{peer=%q} %d\n", peer, open)
	}
}

// Handler returns the node's routed handler: proxy semantics for the
// public sketch API, /v1/cluster/* internals, and passthrough to the
// wrapped server for everything else (health, metrics, replication).
// The obs middleware wraps the whole table, so proxied requests get
// their edge span and latency sample here; the wrapped server's own
// middleware recognizes the same observer and records only a child
// span, never a second histogram sample.
func (a *Agent) Handler() http.Handler { return a.ob.Middleware(a.mux) }

// Start launches the fan workers and, when configured, the anti-entropy
// loop. Call after BootRepair and before serving traffic.
func (a *Agent) Start() {
	if !a.started.CompareAndSwap(false, true) {
		return
	}
	for _, pq := range a.queues {
		a.wg.Add(1)
		go a.fanWorker(pq)
	}
	if a.cfg.AntiEntropyInterval > 0 {
		a.wg.Add(1)
		go a.antiEntropyLoop()
	}
}

// Shutdown stops the anti-entropy loop, closes the fan queues and waits
// for in-flight deliveries; queued tasks are still delivered (or failed
// over) before workers exit. ctx is unused today but reserved for a
// drain bound.
func (a *Agent) Shutdown(_ context.Context) error {
	if !a.started.CompareAndSwap(true, false) {
		return nil
	}
	a.cancel()
	for _, pq := range a.queues {
		pq.close()
	}
	a.wg.Wait()
	// Drop pooled keep-alive connections so a stopped agent leaves no
	// idle readers behind (the cluster tests' goroutine leak check
	// depends on this).
	a.cfg.Client.CloseIdleConnections()
	return nil
}

// Peers returns the cluster membership, including self.
func (a *Agent) Peers() []string {
	return append([]string(nil), a.cfg.Peers...)
}

// owners returns name's owner set at the configured replication factor.
func (a *Agent) owners(name string) []string {
	return a.ring.Owners(name, a.cfg.ReplicationFactor)
}

// partitionIdx routes one item to its slot in an owner set: the item
// hash modulo the set size. Every proxy computes the same slot, so an
// item's whole substream lands on one owner and the owner partials stay
// disjoint — the invariant that makes gathered merges exact.
func partitionIdx(item string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(hashx.Sum64a(item) % uint64(n))
}

// alive reports whether fan routing currently considers url up.
func (a *Agent) alive(url string) bool {
	h := a.health[url]
	return h == nil || h.downUntil.Load() <= time.Now().UnixNano()
}

// markDown marks url down for the configured hold-off.
func (a *Agent) markDown(url string) {
	if h := a.health[url]; h != nil {
		h.downUntil.Store(time.Now().Add(a.cfg.DownFor).UnixNano())
	}
}

// markUp clears url's down mark.
func (a *Agent) markUp(url string) {
	if h := a.health[url]; h != nil {
		h.downUntil.Store(0)
	}
}

// routes wires the agent's endpoint table: cluster internals first,
// proxy semantics for the public sketch API, passthrough for the rest.
func (a *Agent) routes() {
	// Internal: exact-state exchange, digests, anti-entropy, status.
	a.mux.HandleFunc("GET /v1/cluster/digest", a.handleDigest)
	a.mux.HandleFunc("GET /v1/cluster/state/{name}", a.handleState)
	a.mux.HandleFunc("GET /v1/cluster/copy/{name}", a.handleCopy)
	a.mux.HandleFunc("GET /v1/cluster/copies", a.handleCopies)
	a.mux.HandleFunc("POST /v1/cluster/antientropy", a.handleAntiEntropy)
	a.mux.HandleFunc("GET /v1/cluster/status", a.handleStatus)
	// Internal: local (non-fanning) sketch operations, delegated to the
	// wrapped server with the /cluster prefix stripped. This is how fan
	// and scatter traffic reaches a node without re-entering the proxy.
	a.mux.HandleFunc("/v1/cluster/sketches", a.handleLocal)
	a.mux.HandleFunc("/v1/cluster/sketches/", a.handleLocal)

	// Public: proxy semantics.
	a.mux.HandleFunc("POST /v1/sketches", a.handleCreate)
	a.mux.HandleFunc("GET /v1/sketches", a.handleList)
	a.mux.HandleFunc("GET /v1/sketches/{name}", a.handleInfo)
	a.mux.HandleFunc("DELETE /v1/sketches/{name}", a.handleDelete)
	a.mux.HandleFunc("POST /v1/sketches/{name}/ingest", a.handleIngest)
	a.mux.HandleFunc("POST /v1/sketches/{name}/snapshot", a.handlePushFan)
	a.mux.HandleFunc("GET /v1/sketches/{name}/snapshot", a.handlePullGather)
	a.mux.HandleFunc("GET /v1/sketches/{name}/topk", a.handleTopK)
	a.mux.HandleFunc("GET /v1/sketches/{name}/estimate", a.handleEstimate)
	a.mux.HandleFunc("GET /v1/sketches/{name}/sum", a.handleSum)
	a.mux.HandleFunc("POST /v1/sketches/{name}/query", a.handleQuery)
	a.mux.HandleFunc("GET /v1/sketches/{name}/range/topk", a.handleRange)
	a.mux.HandleFunc("GET /v1/sketches/{name}/range/sum", a.handleRange)
	a.mux.HandleFunc("GET /v1/sketches/{name}/range/total", a.handleRange)

	// Everything else — health, readiness, metrics, replication — is the
	// wrapped server's business.
	a.mux.Handle("/", a.inner)
}

// handleLocal strips the /cluster path segment and hands the request to
// the wrapped server: /v1/cluster/sketches/x/ingest applies locally
// exactly as /v1/sketches/x/ingest would on a single node.
func (a *Agent) handleLocal(w http.ResponseWriter, r *http.Request) {
	r2 := r.Clone(r.Context())
	r2.URL.Path = strings.Replace(r.URL.Path, "/v1/cluster/sketches", "/v1/sketches", 1)
	a.inner.ServeHTTP(w, r2)
}

// writeJSON serializes v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError reports a failure as {"error": ...}, matching the wrapped
// server's error shape.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// statusDTO is the /v1/cluster/status response.
type statusDTO struct {
	// Self is this node's peer URL.
	Self string `json:"self"`
	// Peers lists every member with its current fan-routing health.
	Peers map[string]string `json:"peers"`
	// ReplicationFactor and ReadQuorum echo the effective config.
	ReplicationFactor int `json:"replication_factor"`
	ReadQuorum        int `json:"read_quorum"`
	// Owners maps the ?name= query to its owner set, when asked.
	Owners []string `json:"owners,omitempty"`
	// Copies lists the co-owner partials this node holds.
	Copies []copyDTO `json:"copies"`
	// Breakers maps each peer to its circuit-breaker state: "closed",
	// "open" or "half-open".
	Breakers map[string]string `json:"breakers"`
	// Counters is the agent metric snapshot.
	Counters map[string]int64 `json:"counters"`
}

// copyDTO describes one held copy in status and copies listings.
type copyDTO struct {
	// Name and Owner key the copy.
	Name  string `json:"name"`
	Owner string `json:"owner"`
	// Config and Stats describe the copied partial.
	Config server.SketchConfig `json:"config"`
	Stats  server.SketchStats  `json:"stats"`
	// Total is the partial's mass at the copy's cut.
	Total float64 `json:"total"`
}

func (a *Agent) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := statusDTO{
		Self:              a.cfg.Self,
		Peers:             make(map[string]string, len(a.cfg.Peers)),
		Breakers:          make(map[string]string, len(a.cfg.Peers)),
		ReplicationFactor: a.cfg.ReplicationFactor,
		ReadQuorum:        a.cfg.ReadQuorum,
		Counters: map[string]int64{
			"fanned":            a.met.fanned.Load(),
			"fan_retries":       a.met.fanRetries.Load(),
			"fan_fallbacks":     a.met.fanFallbacks.Load(),
			"fan_shed":          a.met.fanShed.Load(),
			"hedges":            a.met.hedges.Load(),
			"degraded":          a.met.degraded.Load(),
			"ae_rounds":         a.met.aeRounds.Load(),
			"ae_pulls":          a.met.aePulls.Load(),
			"breaker_trips":     a.breakerTrips(),
			"breaker_fastfails": a.met.breakerFast.Load(),
		},
	}
	for _, p := range a.cfg.Peers {
		if a.alive(p) {
			st.Peers[p] = "up"
		} else {
			st.Peers[p] = "down"
		}
		st.Breakers[p] = a.breakers[p].State()
	}
	if name := r.URL.Query().Get("name"); name != "" {
		st.Owners = a.owners(name)
	}
	a.copyMu.Lock()
	st.Copies = make([]copyDTO, 0, len(a.copies))
	for k, c := range a.copies {
		st.Copies = append(st.Copies, copyDTO{
			Name: k.name, Owner: k.owner, Config: c.cfg, Stats: c.stats, Total: c.total,
		})
	}
	a.copyMu.Unlock()
	writeJSON(w, http.StatusOK, st)
}
