package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// swapHandler lets a test stand up listeners before the agents that
// serve them exist, and later swap a node's agent for a fresh one (the
// boot-repair scenario).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not up", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testCluster is an in-process cluster: n real HTTP listeners, each
// fronting an Agent over its own in-memory server.
type testCluster struct {
	t      *testing.T
	urls   []string
	https  []*httptest.Server
	swaps  []*swapHandler
	agents []*Agent
	srvs   []*server.Server
}

func newTestCluster(t *testing.T, n int, mut func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	for i := 0; i < n; i++ {
		sw := &swapHandler{}
		hs := httptest.NewServer(sw)
		tc.swaps = append(tc.swaps, sw)
		tc.https = append(tc.https, hs)
		tc.urls = append(tc.urls, hs.URL)
	}
	for i := 0; i < n; i++ {
		srv := server.New(server.Config{})
		cfg := Config{
			Self:       tc.urls[i],
			Peers:      append([]string(nil), tc.urls...),
			HedgeDelay: 20 * time.Millisecond,
			DownFor:    200 * time.Millisecond,
			Client:     &http.Client{Timeout: 5 * time.Second},
		}
		if mut != nil {
			mut(&cfg)
		}
		ag, err := New(cfg, srv)
		if err != nil {
			t.Fatalf("New agent %d: %v", i, err)
		}
		ag.Start()
		tc.swaps[i].set(ag.Handler())
		tc.agents = append(tc.agents, ag)
		tc.srvs = append(tc.srvs, srv)
	}
	t.Cleanup(func() {
		for _, ag := range tc.agents {
			_ = ag.Shutdown(context.Background())
		}
		for _, s := range tc.srvs {
			_ = s.Shutdown(context.Background())
		}
		for _, hs := range tc.https {
			hs.Close()
		}
	})
	return tc
}

func (tc *testCluster) post(node int, path, ctype, body string) (int, []byte) {
	tc.t.Helper()
	resp, err := http.Post(tc.urls[node]+path, ctype, strings.NewReader(body))
	if err != nil {
		tc.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func (tc *testCluster) get(node int, path string) (int, []byte) {
	tc.t.Helper()
	resp, err := http.Get(tc.urls[node] + path)
	if err != nil {
		tc.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func (tc *testCluster) create(node int, cfg server.SketchConfig) {
	tc.t.Helper()
	body, _ := json.Marshal(cfg)
	code, b := tc.post(node, "/v1/sketches", "application/json", string(body))
	if code != http.StatusCreated {
		tc.t.Fatalf("create: status %d: %s", code, b)
	}
}

// ingestWeighted pushes rows through the cluster proxy synchronously,
// spreading batches across nodes, and returns the exact per-item truth.
func (tc *testCluster) ingestWeighted(name string, rows int) map[string]float64 {
	tc.t.Helper()
	truth := make(map[string]float64)
	var buf bytes.Buffer
	node := 0
	flush := func() {
		if buf.Len() == 0 {
			return
		}
		code, b := tc.post(node%len(tc.urls), "/v1/sketches/"+name+"/ingest?sync=1", "text/plain", buf.String())
		if code != http.StatusOK {
			tc.t.Fatalf("ingest: status %d: %s", code, b)
		}
		buf.Reset()
		node++
	}
	for i := 0; i < rows; i++ {
		item := fmt.Sprintf("item-%02d", i%23)
		w := float64(1 + i%7)
		truth[item] += w
		fmt.Fprintf(&buf, "%s\t%g\n", item, w)
		if (i+1)%50 == 0 {
			flush()
		}
	}
	flush()
	return truth
}

type topkResp struct {
	Items []struct {
		Item  string  `json:"item"`
		Count float64 `json:"count"`
	} `json:"items"`
	Degraded bool `json:"degraded"`
}

func (tc *testCluster) topk(node int, name string, k int) (int, topkResp, string) {
	tc.t.Helper()
	code, b := tc.get(node, fmt.Sprintf("/v1/sketches/%s/topk?k=%d", name, k))
	var resp topkResp
	if code == http.StatusOK {
		if err := json.Unmarshal(b, &resp); err != nil {
			tc.t.Fatalf("decode topk: %v: %s", err, b)
		}
	}
	return code, resp, string(b)
}

// checkExact asserts a topk answer equals the truth item-for-item.
func checkExact(t *testing.T, truth map[string]float64, resp topkResp) {
	t.Helper()
	if len(resp.Items) != len(truth) {
		t.Fatalf("topk returned %d items, truth has %d", len(resp.Items), len(truth))
	}
	for _, it := range resp.Items {
		want, ok := truth[it.Item]
		if !ok {
			t.Fatalf("topk invented item %q", it.Item)
		}
		if it.Count != want {
			t.Fatalf("item %q: got %g, want %g (exact)", it.Item, it.Count, want)
		}
	}
}

// TestClusterIngestGatherExact proves the tentpole's core claim: rows
// fanned across owner partitions gather back into the bit-identical
// single-node answer, from any node.
func TestClusterIngestGatherExact(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.create(0, server.SketchConfig{Name: "flows", Kind: server.KindWeighted, Bins: 256, Seed: 1})
	truth := tc.ingestWeighted("flows", 400)
	for node := range tc.urls {
		code, resp, raw := tc.topk(node, "flows", 100)
		if code != http.StatusOK {
			t.Fatalf("topk via node %d: status %d: %s", node, code, raw)
		}
		if resp.Degraded {
			t.Fatalf("healthy cluster answered degraded via node %d: %s", node, raw)
		}
		checkExact(t, truth, resp)
	}
}

// TestClusterCreateEverywhereDeleteEverywhere checks the manifest
// broadcast: a create on one node exists on all, a delete removes it
// from all.
func TestClusterCreateEverywhereDeleteEverywhere(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.create(1, server.SketchConfig{Name: "m", Kind: server.KindUnit, Bins: 64, Seed: 7})
	for i, srv := range tc.srvs {
		if _, ok := srv.SketchConfigOf("m"); !ok {
			t.Fatalf("node %d missing sketch after broadcast create", i)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, tc.urls[2]+"/v1/sketches/m", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	for i, srv := range tc.srvs {
		if _, ok := srv.SketchConfigOf("m"); ok {
			t.Fatalf("node %d still has sketch after broadcast delete", i)
		}
	}
	if code, _ := tc.get(0, "/v1/sketches/m/topk"); code != http.StatusNotFound {
		t.Fatalf("read of deleted sketch: status %d, want 404", code)
	}
}

// TestClusterDegradedRead kills one node and checks the contract: reads
// keep answering 200 with degraded true and per-peer detail — never a
// 5xx — as long as a quorum of partials responds.
func TestClusterDegradedRead(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) {
		c.ReplicationFactor = 3
		c.ReadQuorum = 2
	})
	tc.create(0, server.SketchConfig{Name: "deg", Kind: server.KindWeighted, Bins: 256, Seed: 2})
	tc.ingestWeighted("deg", 300)

	tc.swaps[2].set(nil) // node 2 "dies": its listener now 503s everything
	sawDegraded := false
	for node := 0; node < 2; node++ {
		code, resp, raw := tc.topk(node, "deg", 100)
		if code >= 500 {
			t.Fatalf("read via node %d answered %d during node death: %s", node, code, raw)
		}
		if code != http.StatusOK {
			t.Fatalf("read via node %d: status %d: %s", node, code, raw)
		}
		if resp.Degraded {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatalf("no read reported degraded with a node down and no copies")
	}
}

// TestClusterAntiEntropyHedgedExact runs anti-entropy so every co-owner
// holds copies, then kills a node: hedged reads serve the dead node's
// partial from a copy and the merged answer stays exact.
func TestClusterAntiEntropyHedgedExact(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) {
		c.ReplicationFactor = 3
		c.ReadQuorum = 2
	})
	tc.create(0, server.SketchConfig{Name: "ae", Kind: server.KindWeighted, Bins: 256, Seed: 3})
	truth := tc.ingestWeighted("ae", 500)

	ctx := context.Background()
	for i, ag := range tc.agents {
		st := ag.AntiEntropyRound(ctx)
		if len(st.Errors) > 0 {
			t.Fatalf("anti-entropy on node %d: %+v", i, st)
		}
	}
	tc.swaps[1].set(nil) // node 1 dies after copies were taken
	for _, node := range []int{0, 2} {
		code, resp, raw := tc.topk(node, "ae", 100)
		if code != http.StatusOK {
			t.Fatalf("topk via node %d: status %d: %s", node, code, raw)
		}
		if !resp.Degraded {
			t.Fatalf("copy-hedged read via node %d should report degraded: %s", node, raw)
		}
		checkExact(t, truth, resp)
	}
}

// TestClusterBootRepair wipes a node (fresh server, fresh agent, same
// address) and checks BootRepair reconstructs its partitions from the
// copies its co-owners hold, restoring exact cluster answers.
func TestClusterBootRepair(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) {
		c.ReplicationFactor = 3
		c.ReadQuorum = 2
	})
	tc.create(0, server.SketchConfig{Name: "br", Kind: server.KindWeighted, Bins: 256, Seed: 4})
	truth := tc.ingestWeighted("br", 500)
	ctx := context.Background()
	for _, ag := range tc.agents {
		ag.AntiEntropyRound(ctx)
	}

	// Node 0 loses its disk: all local partials gone.
	tc.swaps[0].set(nil)
	_ = tc.agents[0].Shutdown(ctx)
	_ = tc.srvs[0].Shutdown(ctx)
	fresh := server.New(server.Config{})
	ag, err := New(Config{
		Self:              tc.urls[0],
		Peers:             append([]string(nil), tc.urls...),
		ReplicationFactor: 3,
		ReadQuorum:        2,
		HedgeDelay:        20 * time.Millisecond,
		Client:            &http.Client{Timeout: 5 * time.Second},
	}, fresh)
	if err != nil {
		t.Fatal(err)
	}
	rs := ag.BootRepair(ctx)
	if len(rs.Errors) > 0 {
		t.Fatalf("boot repair: %+v", rs)
	}
	if rs.Restored == 0 {
		t.Fatalf("boot repair restored nothing: %+v", rs)
	}
	ag.Start()
	tc.swaps[0].set(ag.Handler())
	tc.agents[0], tc.srvs[0] = ag, fresh

	for node := range tc.urls {
		code, resp, raw := tc.topk(node, "br", 100)
		if code != http.StatusOK {
			t.Fatalf("topk via node %d after repair: status %d: %s", node, code, raw)
		}
		if resp.Degraded {
			t.Fatalf("post-repair read via node %d degraded: %s", node, raw)
		}
		checkExact(t, truth, resp)
	}
}

// TestClusterUnknownSketch404 pins proxy error mapping for reads.
func TestClusterUnknownSketch404(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	if code, b := tc.get(0, "/v1/sketches/nope/topk"); code != http.StatusNotFound {
		t.Fatalf("topk on unknown sketch: status %d: %s", code, b)
	}
	if code, b := tc.post(0, "/v1/sketches/nope/ingest", "text/plain", "x\t1\n"); code != http.StatusNotFound {
		t.Fatalf("ingest on unknown sketch: status %d: %s", code, b)
	}
}
