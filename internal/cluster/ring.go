package cluster

import (
	"sort"
	"strconv"

	"repro/internal/hashx"
)

// Ring is a consistent-hash ring over node URLs: each node projects
// VirtualNodes points onto the 64-bit hash circle, and a name's owner
// set is the first n distinct nodes clockwise from the name's hash.
// Virtual nodes smooth ownership to within a few percent of uniform;
// when two points collide on the same hash value, the winner is chosen
// by rendezvous hashing of (name, node) so the tie resolves per name
// instead of by list position — adding a node can never flip a tie it
// is not part of.
//
// The ring is immutable after construction; membership changes build a
// new one. Lookups allocate only the returned owner slice.
type Ring struct {
	nodes  []string
	points []ringPoint
}

// ringPoint is one virtual node: a position on the circle and the index
// of the node that owns it.
type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds a ring over nodes (deduplicated, order-insensitive)
// with vnodes virtual points per node (minimum 1).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for i, n := range uniq {
		for v := 0; v < vnodes; v++ {
			h := hashx.Sum64a(n + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, node: int32(i)})
		}
	}
	// Sort by position; colliding points keep a deterministic node order
	// here, but Owners re-orders collision runs by rendezvous score.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's member list, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Owners maps a name to its first n distinct owner nodes clockwise from
// the name's hash. n is clamped to the member count. Runs of points
// sharing one hash value are visited in rendezvous order — highest
// hash(name, node) first — so hash collisions between virtual nodes
// break ties per name.
func (r *Ring) Owners(name string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hashx.Sum64a(name)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	taken := make(map[int32]bool, n)
	add := func(node int32) bool {
		if taken[node] {
			return false
		}
		taken[node] = true
		owners = append(owners, r.nodes[node])
		return len(owners) == n
	}
	for scanned := 0; scanned < len(r.points); {
		i := (start + scanned) % len(r.points)
		// Collect the run of points sharing this hash (collisions).
		run := []int32{r.points[i].node}
		j := 1
		for ; scanned+j < len(r.points); j++ {
			k := (start + scanned + j) % len(r.points)
			if r.points[k].hash != r.points[i].hash {
				break
			}
			run = append(run, r.points[k].node)
		}
		scanned += j
		if len(run) > 1 {
			// Rendezvous tiebreak: order the run by hash(name, node).
			sort.Slice(run, func(x, y int) bool {
				hx := hashx.Sum64a(name + "@" + r.nodes[run[x]])
				hy := hashx.Sum64a(name + "@" + r.nodes[run[y]])
				if hx != hy {
					return hx > hy
				}
				return r.nodes[run[x]] < r.nodes[run[y]]
			})
		}
		for _, node := range run {
			if add(node) {
				return owners
			}
		}
	}
	return owners
}
