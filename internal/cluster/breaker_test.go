package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/replica"
)

// TestPeerBreakerOpensOnDeadPeer drives the per-peer circuit breaker
// through its states against a peer whose listener is gone: transport
// failures open the circuit, an open circuit refuses instantly with
// ErrBreakerOpen, and both the status endpoint and the wrapped server's
// /metrics scrape report the transition.
func TestPeerBreakerOpensOnDeadPeer(t *testing.T) {
	tc := newTestCluster(t, 2, func(c *Config) {
		c.BreakerThreshold = 3
		c.BreakerCooldown = 50 * time.Millisecond
	})
	dead := tc.urls[1]
	tc.https[1].Close() // every dial to this peer now fails at transport level
	ag := tc.agents[0]

	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest(http.MethodGet, dead+"/v1/cluster/digest", nil)
		if _, err := ag.doPeer(dead, req); err == nil {
			t.Fatalf("request %d to dead peer succeeded", i)
		}
	}
	if st := ag.breakers[dead].State(); st != "open" {
		t.Fatalf("breaker state after %d failures = %q, want open", 3, st)
	}

	req, _ := http.NewRequest(http.MethodGet, dead+"/v1/cluster/digest", nil)
	if _, err := ag.doPeer(dead, req); !errors.Is(err, replica.ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
	if got := ag.met.breakerFast.Load(); got == 0 {
		t.Fatal("fast-fail counter did not move")
	}

	// Status reports the open link and the trip count.
	code, body := tc.get(0, "/v1/cluster/status")
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	var st statusDTO
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if got := st.Breakers[dead]; got != "open" && got != "half-open" {
		t.Fatalf("status breakers[%s] = %q, want open", dead, got)
	}
	if st.Counters["breaker_trips"] == 0 {
		t.Fatal("status counters report zero breaker trips")
	}

	// The agent's series ride the wrapped server's scrape endpoint.
	code, body = tc.get(0, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if !strings.Contains(string(body), "ussd_cluster_breaker_trips_total") {
		t.Fatal("metrics scrape is missing the cluster breaker series")
	}

	// After the cooldown a probe is admitted; the still-dead peer fails
	// it and the circuit re-opens rather than closing.
	time.Sleep(60 * time.Millisecond)
	req, _ = http.NewRequest(http.MethodGet, dead+"/v1/cluster/digest", nil)
	if _, err := ag.doPeer(dead, req); err == nil {
		t.Fatal("half-open probe to dead peer succeeded")
	}
	if st := ag.breakers[dead].State(); st != "open" {
		t.Fatalf("breaker state after failed probe = %q, want open", st)
	}
}

// TestBreakerIgnoresCancelledRequests pins the hedge-loser contract: a
// request that dies because our own context was cancelled must not be
// held against the peer, or every hedged read would poison a healthy
// link.
func TestBreakerIgnoresCancelledRequests(t *testing.T) {
	tc := newTestCluster(t, 2, func(c *Config) {
		c.BreakerThreshold = 1 // a single counted failure would trip it
	})
	ag, peer := tc.agents[0], tc.urls[1]
	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest(http.MethodGet, peer+"/v1/cluster/digest", nil)
		ctx, cancel := context.WithCancel(req.Context())
		cancel() // cancelled before the dial: Do fails with our error
		if _, err := ag.doPeer(peer, req.WithContext(ctx)); err == nil {
			t.Fatal("cancelled request succeeded")
		}
	}
	if st := ag.breakers[peer].State(); st != "closed" {
		t.Fatalf("breaker state after cancelled requests = %q, want closed", st)
	}
}
