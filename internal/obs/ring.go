package obs

import "sync/atomic"

// Ring is a fixed-size lock-free span buffer. Writers claim a slot with
// one atomic add on a global cursor, then publish through the slot's
// sequence word (a per-slot seqlock): CAS even→odd, write the span,
// store back even+2. A writer that loses the CAS — only possible when
// the ring has wrapped all the way around onto a slot someone else is
// mid-writing — drops its span rather than spin; under that much churn
// the span would be overwritten within microseconds anyway. Readers
// snapshot slots optimistically and discard any whose sequence was odd
// or moved during the copy.
type Ring struct {
	mask  uint64
	next  atomic.Uint64
	drops atomic.Uint64
	slots []ringSlot
}

// ringSlot pairs a span with its seqlock word.
type ringSlot struct {
	seq  atomic.Uint64
	span Span
}

// DefaultRingSize is the span capacity used when NewRing gets n ≤ 0:
// roughly the last few seconds of traffic on a busy node, ~512 KiB.
const DefaultRingSize = 4096

// NewRing returns a ring holding n spans, n rounded up to a power of two.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Ring{mask: uint64(size - 1), slots: make([]ringSlot, size)}
}

// Cap returns the ring's span capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Drops returns how many spans were discarded to wrap contention.
func (r *Ring) Drops() uint64 { return r.drops.Load() }

// Record stores sp, overwriting the oldest span once the ring is full.
// It never blocks and never allocates.
func (r *Ring) Record(sp Span) {
	idx := (r.next.Add(1) - 1) & r.mask
	slot := &r.slots[idx]
	seq := slot.seq.Load()
	if seq&1 != 0 || !slot.seq.CompareAndSwap(seq, seq+1) {
		r.drops.Add(1)
		return
	}
	slot.span = sp
	slot.seq.Store(seq + 2)
}

// Snapshot appends every consistently-readable span to dst and returns
// it. Order is slot order, not time order; callers sort if they care.
func (r *Ring) Snapshot(dst []Span) []Span {
	for i := range r.slots {
		slot := &r.slots[i]
		seq := slot.seq.Load()
		if seq == 0 || seq&1 != 0 {
			continue
		}
		sp := slot.span
		if slot.seq.Load() != seq {
			continue // torn read: writer moved underneath us
		}
		dst = append(dst, sp)
	}
	return dst
}

// ByTrace appends the spans belonging to trace to dst and returns it.
func (r *Ring) ByTrace(trace TraceID, dst []Span) []Span {
	for i := range r.slots {
		slot := &r.slots[i]
		seq := slot.seq.Load()
		if seq == 0 || seq&1 != 0 {
			continue
		}
		sp := slot.span
		if slot.seq.Load() != seq || sp.Trace != trace {
			continue
		}
		dst = append(dst, sp)
	}
	return dst
}
