package obs

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Endpoint classes for the request-latency histogram family. Fixed at
// compile time so the middleware indexes an array instead of a map.
const (
	ClassIngest = iota
	ClassSnapshot
	ClassQuery
	ClassRange
	ClassCluster
	ClassReplication
	ClassAdmin
	ClassOther
	numClasses
)

// classNames maps class indices to their label values and span names.
var classNames = [numClasses]string{
	"ingest", "snapshot", "query", "range", "cluster", "replication", "admin", "other",
}

// classSpanNames pre-renders "http.<class>" span names so the edge
// middleware never concatenates on the hot path.
var classSpanNames = [numClasses]string{
	"http.ingest", "http.snapshot", "http.query", "http.range",
	"http.cluster", "http.replication", "http.admin", "http.other",
}

// classLocalSpanNames name the inner server span when a request already
// passed the same observer's edge middleware (cluster passthrough).
var classLocalSpanNames = [numClasses]string{
	"local.ingest", "local.snapshot", "local.query", "local.range",
	"local.cluster", "local.replication", "local.admin", "local.other",
}

// ClassOf buckets a request path into an endpoint class.
func ClassOf(path string) int {
	switch {
	case strings.HasPrefix(path, "/v1/cluster/"):
		return ClassCluster
	case strings.HasPrefix(path, "/v1/replication/"):
		return ClassReplication
	case strings.HasSuffix(path, "/ingest"):
		return ClassIngest
	case strings.HasSuffix(path, "/snapshot"):
		return ClassSnapshot
	case strings.Contains(path, "/range/"):
		return ClassRange
	case strings.HasSuffix(path, "/topk"), strings.HasSuffix(path, "/estimate"),
		strings.HasSuffix(path, "/sum"), strings.HasSuffix(path, "/query"),
		strings.HasSuffix(path, "/frequent"):
		return ClassQuery
	case path == "/metrics", path == "/healthz", path == "/readyz",
		strings.HasPrefix(path, "/debug/"), strings.HasPrefix(path, "/v1/introspect/"),
		path == "/v1/sketches" || strings.HasPrefix(path, "/v1/sketches/"):
		return ClassAdmin
	default:
		return ClassOther
	}
}

// Options configures an Observer.
type Options struct {
	// Node labels every span this observer records (addr or peer URL).
	Node string
	// RingSize is the span ring capacity (0 → DefaultRingSize).
	RingSize int
	// SlowRequest is the slow-span log threshold (0 disables).
	SlowRequest time.Duration
	// Disabled turns off span recording and histogram updates; trace
	// propagation still works so disabling one node degrades, not breaks.
	Disabled bool
	// Log receives structured events (slow spans); nil discards.
	Log *slog.Logger
	// HotBins sizes each HotTracker sketch (0 → 128).
	HotBins int
}

// Observer bundles one server instance's telemetry: tracer + span ring,
// request/WAL/gather histograms, the hot-traffic tracker, and the
// shared structured logger.
type Observer struct {
	tracer   *Tracer
	log      *slog.Logger
	disabled bool

	reqHist [numClasses]*Histogram

	// FsyncHist times WAL fsyncs (nanoseconds; store wiring).
	FsyncHist *Histogram
	// GroupCommitHist records WAL records covered per fsync.
	GroupCommitHist *Histogram
	// GatherHist times scatter-gather fan-in (cluster wiring).
	GatherHist *Histogram

	// Hot is the self-instrumented heavy-hitters view.
	Hot *HotTracker
}

// New returns an Observer for one server instance.
func New(o Options) *Observer {
	if o.Log == nil {
		o.Log = NopLogger()
	}
	ob := &Observer{
		tracer:          NewTracer(o.Node, o.RingSize),
		log:             o.Log,
		disabled:        o.Disabled,
		FsyncHist:       NewHistogram(""),
		GroupCommitHist: NewHistogram(""),
		GatherHist:      NewHistogram(""),
		Hot:             NewHotTracker(o.HotBins),
	}
	for c := 0; c < numClasses; c++ {
		ob.reqHist[c] = NewHistogram(`class="` + classNames[c] + `"`)
	}
	ob.tracer.SetDisabled(o.Disabled)
	if o.SlowRequest > 0 {
		log := o.Log
		ob.tracer.SetSlowThreshold(o.SlowRequest, func(sp Span) {
			log.Warn("slow span",
				"trace", sp.Trace.String(),
				"span", sp.ID.String(),
				"name", sp.Name,
				"node", sp.Node,
				"duration", time.Duration(sp.Duration),
				"status", StatusString(sp.Status))
		})
	}
	return ob
}

// Tracer returns the observer's tracer.
func (o *Observer) Tracer() *Tracer { return o.tracer }

// Log returns the observer's structured logger.
func (o *Observer) Log() *slog.Logger { return o.log }

// Disabled reports whether recording is off (the overhead benchmark's
// baseline mode).
func (o *Observer) Disabled() bool { return o.disabled }

// handledKey marks a request context as already counted by an observer,
// so the cluster agent's edge middleware and the inner server's
// middleware (same process, same observer) don't double-count latency.
type handledKey struct{}

// responseRecorder captures the status code while forwarding the
// optional ResponseWriter interfaces middleware must not swallow.
type responseRecorder struct {
	http.ResponseWriter
	code int
}

func (r *responseRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so long-poll/streaming
// responses still flush through the middleware.
func (r *responseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (r *responseRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Middleware wraps h with tracing + per-class latency recording. It
// parses or mints the trace context, stores it (and the span) in the
// request context, stamps the response with the trace header so callers
// can find their trace, and records a span at completion. The request
// histogram is recorded only at the outermost middleware of this
// observer (see handledKey).
func (o *Observer) Middleware(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		class := ClassOf(req.URL.Path)
		ctx := req.Context()

		parent, _ := FromContext(ctx)
		if !parent.Valid() {
			if hv := req.Header.Get(TraceHeader); hv != "" {
				if sc, err := ParseHeader(hv); err == nil {
					parent = sc
				}
			}
		}
		edge := ctx.Value(handledKey{}) != o // outermost for this observer?
		name := classSpanNames[class]
		if !edge {
			name = classLocalSpanNames[class]
		}
		sp := o.tracer.Start(parent, name)
		ctx = ContextWith(ctx, sp.Context())
		if edge {
			ctx = context.WithValue(ctx, handledKey{}, o)
		}
		w.Header().Set(TraceHeader, sp.Context().HeaderValue())

		rec := &responseRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(rec, req.WithContext(ctx))

		sp.Finish(int32(rec.code))
		if edge && !o.disabled {
			o.reqHist[class].RecordSince(start)
		}
	})
}

// spanJSON is the /debug/traces wire form of one span.
type spanJSON struct {
	Trace      string  `json:"trace"`
	Span       string  `json:"span"`
	Parent     string  `json:"parent,omitempty"`
	Name       string  `json:"name"`
	Node       string  `json:"node"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Status     string  `json:"status"`
}

// HandleTraces serves GET /debug/traces: the node's span ring as JSON,
// filterable by ?trace=<32 hex> and truncated by ?limit=N (default 256,
// applied after sorting newest-first so the freshest spans survive).
func (o *Observer) HandleTraces(w http.ResponseWriter, req *http.Request) {
	var spans []Span
	if tq := req.URL.Query().Get("trace"); tq != "" {
		sc, err := ParseHeader(tq)
		if err != nil {
			// Accept a bare 32-hex trace ID as well as the full
			// trace-span header form.
			sc, err = ParseHeader(tq + "-0000000000000000")
		}
		if err != nil {
			http.Error(w, `{"error":"trace must be 32 hex digits"}`, http.StatusBadRequest)
			return
		}
		spans = o.tracer.Ring().ByTrace(sc.Trace, nil)
	} else {
		spans = o.tracer.Ring().Snapshot(nil)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start > spans[j].Start })
	limit := 256
	if lq := req.URL.Query().Get("limit"); lq != "" {
		if n, err := strconv.Atoi(lq); err == nil && n > 0 {
			limit = n
		}
	}
	if len(spans) > limit {
		spans = spans[:limit]
	}
	out := struct {
		Node  string     `json:"node"`
		Drops uint64     `json:"drops"`
		Spans []spanJSON `json:"spans"`
	}{Node: o.tracer.Node(), Drops: o.tracer.Ring().Drops(), Spans: make([]spanJSON, 0, len(spans))}
	for _, sp := range spans {
		j := spanJSON{
			Trace:      sp.Trace.String(),
			Span:       sp.ID.String(),
			Name:       sp.Name,
			Node:       sp.Node,
			Start:      time.Unix(0, sp.Start).UTC().Format(time.RFC3339Nano),
			DurationMS: float64(sp.Duration) / 1e6,
			Status:     StatusString(sp.Status),
		}
		if sp.Parent != 0 {
			j.Parent = sp.Parent.String()
		}
		out.Spans = append(out.Spans, j)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// EmitMetrics writes the observer's histogram families and trace-ring
// gauges in Prometheus text exposition format; the server appends it to
// /metrics via RegisterMetrics-style wiring.
func (o *Observer) EmitMetrics(w io.Writer) {
	EmitHistogramFamily(w, "ussd_request_duration_seconds",
		"HTTP request latency by endpoint class.", UnitSeconds, o.reqHist[:]...)
	EmitHistogramFamily(w, "ussd_wal_fsync_duration_seconds",
		"WAL fsync latency.", UnitSeconds, o.FsyncHist)
	EmitHistogramFamily(w, "ussd_wal_group_commit_records",
		"WAL records made durable per fsync (group-commit batch size).", UnitCount, o.GroupCommitHist)
	EmitHistogramFamily(w, "ussd_gather_fanin_duration_seconds",
		"Scatter-gather fan-in latency (cluster reads).", UnitSeconds, o.GatherHist)
	io.WriteString(w, "# HELP ussd_trace_spans_dropped_total Spans dropped by ring wrap contention.\n")
	io.WriteString(w, "# TYPE ussd_trace_spans_dropped_total counter\n")
	io.WriteString(w, "ussd_trace_spans_dropped_total "+strconv.FormatUint(o.tracer.Ring().Drops(), 10)+"\n")
}

// InjectTrace copies the trace context from ctx (if any) onto an
// outbound request header — the one-liner every peer/replica client
// calls to propagate traces.
func InjectTrace(ctx context.Context, h http.Header) {
	if sc, ok := FromContext(ctx); ok {
		h.Set(TraceHeader, sc.HeaderValue())
	}
}
