package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the process logger: format is "text" or "json",
// level one of debug/info/warn/error. Unknown values fall back to text
// at info, so a typo'd flag degrades instead of crashing startup.
func NewLogger(w io.Writer, format, level string) *slog.Logger {
	lv := ParseLevel(level)
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// ParseLevel maps a flag string to a slog.Level, defaulting to Info.
func ParseLevel(level string) slog.Level {
	switch strings.ToLower(level) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// discardHandler drops every record (slog.DiscardHandler arrives in a
// later Go; this is the 1.22 equivalent).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NopLogger returns a logger that discards everything — the default for
// embedded servers (tests, benches) that didn't wire one.
func NopLogger() *slog.Logger { return slog.New(discardHandler{}) }

// Printf adapts a slog.Logger to the printf-style hooks some packages
// still expose (e.g. an embedder that wants replica-style callbacks).
func Printf(l *slog.Logger) func(format string, args ...any) {
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
