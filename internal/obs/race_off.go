//go:build !race

package obs

// raceEnabled reports whether the race detector is compiled in. The
// 0-alloc regression tests consult it: instrumented atomics make
// testing.AllocsPerRun unreliable under -race.
const raceEnabled = false
