//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in. See
// race_off.go.
const raceEnabled = true
