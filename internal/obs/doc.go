// Package obs is the observability spine of ussd: request tracing,
// latency histograms, structured logging, and a self-instrumented
// heavy-hitters view of the server's own traffic.
//
// The package is deliberately dependency-free (stdlib only) and built
// around three hot-path-safe primitives:
//
//   - Tracer / Span: 16-byte trace IDs and 8-byte span IDs minted from a
//     splitmix64 counter, carried across processes in the X-USS-Trace
//     header and across goroutines in a context.Context. Finished spans
//     are recorded into a fixed-size lock-free Ring (seqlock slots,
//     drop-on-contention) served by GET /debug/traces. Start/Finish is
//     allocation-free; spans slower than a configurable threshold are
//     additionally emitted as structured slog events.
//
//   - Histogram: a fixed log2-bucket latency/size histogram whose
//     buckets are striped across cache-line-padded slots (the same trick
//     as the server's striped counters), so Record is a single atomic
//     add on a line private to the calling goroutine's stripe. Families
//     render in the Prometheus text exposition format (cumulative
//     _bucket/_sum/_count).
//
//   - HotTracker: the paper's own unbiased space-saving sketches turned
//     on the server itself — a weighted sketch of rows per tenant
//     sketch, a unit sketch of sampled (sketch, item) pairs, and a unit
//     sketch of per-request tenant touches, served by
//     GET /v1/introspect/hot and the `uss top` CLI.
//
// An Observer bundles one of each per server instance (not per process:
// in-process multi-node cluster tests need distinct rings and node
// labels) plus the slog.Logger all components share.
package obs
