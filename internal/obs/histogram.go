package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
	"unsafe"
)

// histBuckets is the fixed log2 bucket count: bucket i has the upper
// bound 2^i, so 40 buckets span 1ns..~550s for durations and 1..~5e11
// for sizes. Values above the top bound count toward _sum/_count (and
// thus +Inf) only.
const histBuckets = 40

// histStripes spreads concurrent recorders across cache lines, same
// policy as the server's striped counters.
const histStripes = 8

// histStripe is one recorder lane: a bucket vector plus overflow, count
// and sum, padded so adjacent stripes never share a cache line.
type histStripe struct {
	buckets  [histBuckets]atomic.Uint64
	overflow atomic.Uint64
	count    atomic.Uint64
	sum      atomic.Int64
	_        [56]byte
}

// Histogram is a fixed log2-bucket histogram safe for concurrent
// 0-allocation recording. Labels is the pre-rendered Prometheus label
// body for this series within its family (e.g. `class="ingest"`), empty
// for unlabelled families.
type Histogram struct {
	labels  string
	stripes [histStripes]histStripe
}

// NewHistogram returns a histogram whose series carry the given
// pre-rendered label body (may be empty).
func NewHistogram(labels string) *Histogram {
	return &Histogram{labels: labels}
}

// histStripeIndex hashes a stack address to a stripe, like the server's
// stripeIndex: distinct goroutines get distinct stacks, so concurrent
// recorders spread out with no per-goroutine state.
func histStripeIndex() int {
	var pin byte
	p := uintptr(unsafe.Pointer(&pin))
	return int((p>>6)^(p>>14)) & (histStripes - 1)
}

// Record adds one observation. Values < 1 clamp to 1 (bucket 0); values
// above the top bucket bound count only toward _sum/_count. Record is a
// few atomic adds on the caller's stripe — no locks, no allocation. A
// nil receiver records nothing, so optional wiring (the store's
// histograms) needs no call-site guards.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	s := &h.stripes[histStripeIndex()]
	u := uint64(1)
	if v > 1 {
		u = uint64(v)
	}
	if idx := bits.Len64(u - 1); idx < histBuckets {
		s.buckets[idx].Add(1)
	} else {
		s.overflow.Add(1)
	}
	s.count.Add(1)
	s.sum.Add(v)
}

// RecordSince records the elapsed nanoseconds since start.
func (h *Histogram) RecordSince(start time.Time) {
	h.Record(int64(time.Since(start)))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var t uint64
	for i := range h.stripes {
		t += h.stripes[i].count.Load()
	}
	return t
}

// Sum returns the sum of observed values in raw units.
func (h *Histogram) Sum() int64 {
	var t int64
	for i := range h.stripes {
		t += h.stripes[i].sum.Load()
	}
	return t
}

// snapshot sums the stripes into one consistent-enough view (the usual
// metrics caveat: exact only once writers quiesce).
func (h *Histogram) snapshot() (buckets [histBuckets]uint64, count uint64, sum int64) {
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := range s.buckets {
			buckets[b] += s.buckets[b].Load()
		}
		count += s.count.Load()
		sum += s.sum.Load()
	}
	return
}

// HistUnit selects how a histogram family renders bounds and sums.
type HistUnit int

const (
	// UnitSeconds renders nanosecond observations as seconds.
	UnitSeconds HistUnit = iota
	// UnitCount renders raw integer observations.
	UnitCount
)

// bound renders bucket i's upper bound for the unit.
func (u HistUnit) bound(i int) string {
	v := uint64(1) << uint(i)
	if u == UnitSeconds {
		return strconv.FormatFloat(float64(v)/1e9, 'g', -1, 64)
	}
	return strconv.FormatUint(v, 10)
}

// sum renders a raw sum for the unit.
func (u HistUnit) sum(v int64) string {
	if u == UnitSeconds {
		return strconv.FormatFloat(float64(v)/1e9, 'g', -1, 64)
	}
	return strconv.FormatInt(v, 10)
}

// EmitHistogramFamily writes one Prometheus histogram family (# HELP,
// # TYPE, then cumulative _bucket/_sum/_count per member) in text
// exposition format. Empty buckets between the first and last non-empty
// bound are emitted (cumulative counts repeat), leading/trailing empty
// bounds are elided to keep scrapes small.
func EmitHistogramFamily(w io.Writer, name, help string, unit HistUnit, hs ...*Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, h := range hs {
		buckets, count, sum := h.snapshot()
		lo, hi := histBuckets, -1
		for i, c := range buckets {
			if c > 0 {
				if i < lo {
					lo = i
				}
				hi = i
			}
		}
		sep := ""
		if h.labels != "" {
			sep = ","
		}
		var cum uint64
		for i := lo; i <= hi; i++ {
			cum += buckets[i]
			fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, h.labels, sep, unit.bound(i), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, h.labels, sep, count)
		if h.labels != "" {
			fmt.Fprintf(w, "%s_sum{%s} %s\n", name, h.labels, unit.sum(sum))
			fmt.Fprintf(w, "%s_count{%s} %d\n", name, h.labels, count)
		} else {
			fmt.Fprintf(w, "%s_sum %s\n", name, unit.sum(sum))
			fmt.Fprintf(w, "%s_count %d\n", name, count)
		}
	}
}
