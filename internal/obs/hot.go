package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// hotItemSep joins (sketch, item) into one composite key for the item
// sketch; \x1f (ASCII unit separator) cannot appear in sketch names,
// which the server restricts to [a-zA-Z0-9_-].
const hotItemSep = "\x1f"

// hotSampleEvery is the item-level sampling rate: one in every N
// ingested rows feeds the (sketch, item) sketch. Tenant-level row
// counts stay exact (one weighted update per batch); only the per-item
// view is sampled, keeping the ingest overhead well under the 5% budget.
const hotSampleEvery = 64

// HotTracker dogfoods the paper's sketches on the server's own traffic:
// which tenant sketches are ingesting the most rows, which individual
// (sketch, item) pairs are hottest, and which sketches requests touch
// most. All three views are unbiased space-saving sketches, so the
// introspection endpoint answers from ~fixed memory no matter how many
// tenants or items the server sees.
type HotTracker struct {
	mu       sync.Mutex
	tenants  *core.WeightedSketch // rows ingested per sketch name
	items    *core.Sketch         // sampled (sketch \x1f item) pairs
	requests *core.Sketch         // sketch names touched by requests
	tick     atomic.Uint64        // global row counter driving sampling
	rows     atomic.Int64         // total rows observed (pre-sampling)
	reqs     atomic.Int64         // total request touches observed
}

// NewHotTracker returns a tracker with m bins per view.
func NewHotTracker(m int) *HotTracker {
	if m <= 0 {
		m = 128
	}
	return &HotTracker{
		tenants:  core.NewWeighted(m, rand.New(rand.NewSource(1))),
		items:    core.New(m, core.Unbiased, rand.New(rand.NewSource(2))),
		requests: core.New(m, core.Unbiased, rand.New(rand.NewSource(3))),
	}
}

// ObserveIngest records a batch of items ingested into sketch name. The
// tenant view gets the exact row count; the item view gets a 1-in-N
// sample so large batches cost a handful of updates, not len(items).
func (h *HotTracker) ObserveIngest(name string, items []string) {
	n := len(items)
	if n == 0 {
		return
	}
	h.rows.Add(int64(n))
	base := h.tick.Add(uint64(n)) - uint64(n)
	// First sampled offset ≥ base that is ≡ 0 mod hotSampleEvery.
	first := (hotSampleEvery - base%hotSampleEvery) % hotSampleEvery
	h.mu.Lock()
	h.tenants.Update(name, float64(n))
	for i := int(first); i < n; i += hotSampleEvery {
		h.items.Update(name + hotItemSep + items[i])
	}
	h.mu.Unlock()
}

// ObserveRequest records that a request touched sketch name.
func (h *HotTracker) ObserveRequest(name string) {
	h.reqs.Add(1)
	h.mu.Lock()
	h.requests.Update(name)
	h.mu.Unlock()
}

// HotEntry is one ranked row of a hot view.
type HotEntry struct {
	Sketch string  `json:"sketch"`
	Item   string  `json:"item,omitempty"`
	Count  float64 `json:"count"`
}

// HotReport is the full introspection payload served by
// GET /v1/introspect/hot.
type HotReport struct {
	RowsObserved     int64      `json:"rows_observed"`
	RequestsObserved int64      `json:"requests_observed"`
	ItemSampleEvery  int        `json:"item_sample_every"`
	Tenants          []HotEntry `json:"tenants"`
	Items            []HotEntry `json:"items"`
	Requests         []HotEntry `json:"requests"`
}

// Report returns the top-k rows of each view. Item counts are scaled
// back up by the sampling rate so they estimate true row counts.
func (h *HotTracker) Report(k int) HotReport {
	if k <= 0 {
		k = 10
	}
	r := HotReport{
		RowsObserved:     h.rows.Load(),
		RequestsObserved: h.reqs.Load(),
		ItemSampleEvery:  hotSampleEvery,
	}
	h.mu.Lock()
	tenants := h.tenants.Bins()
	items := h.items.TopK(k)
	reqs := h.requests.TopK(k)
	h.mu.Unlock()

	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Count > tenants[j].Count })
	if len(tenants) > k {
		tenants = tenants[:k]
	}
	for _, b := range tenants {
		r.Tenants = append(r.Tenants, HotEntry{Sketch: b.Item, Count: b.Count})
	}
	for _, b := range items {
		sketch, item, _ := strings.Cut(b.Item, hotItemSep)
		r.Items = append(r.Items, HotEntry{Sketch: sketch, Item: item, Count: b.Count * hotSampleEvery})
	}
	for _, b := range reqs {
		r.Requests = append(r.Requests, HotEntry{Sketch: b.Item, Count: b.Count})
	}
	return r
}
