package obs

import "testing"

// TestHistogramRecordZeroAlloc pins the histogram hot path at 0
// allocs/op: Record is a handful of atomic adds on the caller's stripe.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under -race")
	}
	h := NewHistogram(`class="alloc"`)
	n := testing.AllocsPerRun(1000, func() {
		h.Record(12345)
	})
	if n != 0 {
		t.Fatalf("Histogram.Record allocates %.1f/op, want 0", n)
	}
}

// TestSpanStartFinishZeroAlloc pins the span hot path at 0 allocs/op:
// the ActiveSpan lives on the stack and Finish copies it into a
// preallocated ring slot.
func TestSpanStartFinishZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under -race")
	}
	tr := NewTracer("alloc-node", 1024)
	parent := tr.NewRoot()
	n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(parent, "alloc.span")
		sp.Finish(StatusOK)
	})
	if n != 0 {
		t.Fatalf("span Start/Finish allocates %.1f/op, want 0", n)
	}
}

// TestRingRecordZeroAlloc covers the ring on its own (Finish's core).
func TestRingRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are not meaningful under -race")
	}
	r := NewRing(256)
	sp := Span{Name: "x", Node: "n"}
	n := testing.AllocsPerRun(1000, func() {
		r.Record(sp)
	})
	if n != 0 {
		t.Fatalf("Ring.Record allocates %.1f/op, want 0", n)
	}
}
