package obs

import (
	"context"
	"encoding/hex"
	"errors"
	"strings"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that propagates trace context between
// nodes: "<32 hex trace id>-<16 hex span id>". The span half names the
// caller's span so the receiving node can parent its server span under it.
const TraceHeader = "X-USS-Trace"

// TraceID is the 16-byte identifier shared by every span of one request.
type TraceID [16]byte

// IsZero reports whether the trace ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string {
	var b [32]byte
	hex.Encode(b[:], t[:])
	return string(b[:])
}

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string {
	var raw [8]byte
	for i := 0; i < 8; i++ {
		raw[i] = byte(uint64(s) >> (56 - 8*i))
	}
	var b [16]byte
	hex.Encode(b[:], raw[:])
	return string(b[:])
}

// SpanContext is the wire-visible half of a span: enough to propagate a
// trace to another goroutine or node and parent children under it.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a real trace.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() }

// HeaderValue renders the context in X-USS-Trace wire form.
func (sc SpanContext) HeaderValue() string {
	return sc.Trace.String() + "-" + sc.Span.String()
}

// ParseHeader parses an X-USS-Trace value back into a SpanContext.
func ParseHeader(v string) (SpanContext, error) {
	var sc SpanContext
	tr, sp, ok := strings.Cut(v, "-")
	if !ok || len(tr) != 32 || len(sp) != 16 {
		return sc, errors.New("obs: malformed trace header")
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(tr)); err != nil {
		return sc, errors.New("obs: malformed trace id")
	}
	var raw [8]byte
	if _, err := hex.Decode(raw[:], []byte(sp)); err != nil {
		return sc, errors.New("obs: malformed span id")
	}
	var id uint64
	for _, b := range raw {
		id = id<<8 | uint64(b)
	}
	sc.Span = SpanID(id)
	return sc, nil
}

// ctxKey keys the SpanContext stored in a context.Context.
type ctxKey struct{}

// ContextWith returns ctx carrying sc, so downstream code (peer clients,
// child spans) can find the active trace.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the SpanContext stored in ctx, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Span statuses. Non-negative values ≥ 100 are HTTP response codes;
// the named values cover everything else.
const (
	StatusOK        int32 = 0
	StatusCancelled int32 = -1
	StatusError     int32 = -2
)

// StatusString renders a span status for humans and JSON.
func StatusString(s int32) string {
	switch {
	case s == StatusOK:
		return "ok"
	case s == StatusCancelled:
		return "cancelled"
	case s == StatusError:
		return "error"
	case s >= 100:
		return httpStatusText(int(s))
	default:
		return "unknown"
	}
}

// httpStatusText renders an HTTP code status without fmt (keeps the
// trace read path simple); e.g. 200 → "200".
func httpStatusText(code int) string {
	var b [3]byte
	b[0] = byte('0' + code/100%10)
	b[1] = byte('0' + code/10%10)
	b[2] = byte('0' + code%10)
	return string(b[:])
}

// Span is one finished operation, as stored in the ring buffer. Strings
// (Name, Node) are interned constants at every call site, so recording a
// Span copies two pointers — no per-span allocation.
type Span struct {
	Trace    TraceID
	ID       SpanID
	Parent   SpanID
	Name     string
	Node     string
	Start    int64 // unix nanoseconds
	Duration int64 // nanoseconds
	Status   int32
}

// Tracer mints IDs, tracks the node label, and records finished spans
// into its ring. The zero Tracer is unusable; build one with NewTracer.
type Tracer struct {
	node     string
	ring     *Ring
	seq      atomic.Uint64
	seed     uint64
	slow     int64 // slow-span threshold, ns; 0 disables
	disabled bool
	onSlow   func(sp Span) // called outside the hot path for slow spans
}

// NewTracer returns a tracer labelled node recording into a ring of the
// given capacity (rounded up to a power of two; ≤ 0 picks a default).
func NewTracer(node string, ringSize int) *Tracer {
	return &Tracer{
		node: node,
		ring: NewRing(ringSize),
		seed: splitmix64(uint64(time.Now().UnixNano())),
	}
}

// SetSlowThreshold arranges for spans at least d long to be passed to
// onSlow after recording. d ≤ 0 disables the slow-span hook.
func (t *Tracer) SetSlowThreshold(d time.Duration, onSlow func(sp Span)) {
	t.slow = int64(d)
	t.onSlow = onSlow
}

// SetDisabled turns span recording off (ID minting still works, so trace
// propagation headers remain stable); used by the overhead benchmark.
func (t *Tracer) SetDisabled(v bool) { t.disabled = v }

// Node returns the tracer's node label.
func (t *Tracer) Node() string { return t.node }

// Ring exposes the span ring for the /debug/traces handler.
func (t *Tracer) Ring() *Ring { return t.ring }

// splitmix64 is the splitmix64 finalizer: a cheap, well-mixed 64-bit
// permutation, good enough for trace IDs (uniqueness, not secrecy).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nextID returns a fresh non-zero 64-bit ID.
func (t *Tracer) nextID() uint64 {
	for {
		if id := splitmix64(t.seq.Add(1) + t.seed); id != 0 {
			return id
		}
	}
}

// NewRoot mints a fresh root span context (new trace ID, new span ID).
func (t *Tracer) NewRoot() SpanContext {
	var sc SpanContext
	hi, lo := t.nextID(), t.nextID()
	for i := 0; i < 8; i++ {
		sc.Trace[i] = byte(hi >> (56 - 8*i))
		sc.Trace[8+i] = byte(lo >> (56 - 8*i))
	}
	sc.Span = SpanID(t.nextID())
	return sc
}

// ActiveSpan is an in-progress span. It lives on the caller's stack —
// recording happens only at Finish — so a Start/Finish pair allocates
// nothing.
type ActiveSpan struct {
	t      *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	start  int64
}

// Context returns the span's SpanContext for propagation to children.
func (a ActiveSpan) Context() SpanContext { return a.sc }

// Start begins a span named name under parent. If parent is invalid a
// new root trace is minted, so callers never need to special-case the
// edge. name must be a constant (it is retained in the ring).
func (t *Tracer) Start(parent SpanContext, name string) ActiveSpan {
	a := ActiveSpan{t: t, name: name, start: time.Now().UnixNano()}
	if parent.Valid() {
		a.sc.Trace = parent.Trace
		a.parent = parent.Span
	} else {
		root := t.NewRoot()
		a.sc.Trace = root.Trace
	}
	a.sc.Span = SpanID(t.nextID())
	return a
}

// Finish completes the span with the given status and records it.
func (a ActiveSpan) Finish(status int32) {
	t := a.t
	if t == nil || t.disabled {
		return
	}
	dur := time.Now().UnixNano() - a.start
	t.ring.Record(Span{
		Trace:    a.sc.Trace,
		ID:       a.sc.Span,
		Parent:   a.parent,
		Name:     a.name,
		Node:     t.node,
		Start:    a.start,
		Duration: dur,
		Status:   status,
	})
	if t.slow > 0 && dur >= t.slow && t.onSlow != nil {
		t.onSlow(Span{
			Trace: a.sc.Trace, ID: a.sc.Span, Parent: a.parent,
			Name: a.name, Node: t.node, Start: a.start,
			Duration: dur, Status: status,
		})
	}
}

// FinishErr completes the span, deriving the status from err: nil → OK,
// context cancellation → cancelled, anything else → error.
func (a ActiveSpan) FinishErr(err error) {
	switch {
	case err == nil:
		a.Finish(StatusOK)
	case errors.Is(err, context.Canceled):
		a.Finish(StatusCancelled)
	default:
		a.Finish(StatusError)
	}
}
