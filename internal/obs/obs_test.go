package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	tr := NewTracer("node-a", 64)
	sc := tr.NewRoot()
	if !sc.Valid() {
		t.Fatal("NewRoot returned invalid context")
	}
	hv := sc.HeaderValue()
	if len(hv) != 49 || hv[32] != '-' {
		t.Fatalf("header value %q: want 32hex-16hex", hv)
	}
	got, err := ParseHeader(hv)
	if err != nil {
		t.Fatalf("ParseHeader(%q): %v", hv, err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 49), hv[:48], hv + "0"} {
		if _, err := ParseHeader(bad); err == nil {
			t.Errorf("ParseHeader(%q): want error", bad)
		}
	}
}

func TestTracerParenting(t *testing.T) {
	tr := NewTracer("node-a", 64)
	root := tr.Start(SpanContext{}, "root")
	child := tr.Start(root.Context(), "child")
	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child span did not inherit trace ID")
	}
	if child.Context().Span == root.Context().Span {
		t.Fatal("child span reused parent span ID")
	}
	child.Finish(StatusOK)
	root.Finish(StatusOK)

	spans := tr.Ring().ByTrace(root.Context().Trace, nil)
	if len(spans) != 2 {
		t.Fatalf("ring has %d spans for trace, want 2", len(spans))
	}
	var foundChild bool
	for _, sp := range spans {
		if sp.Name == "child" {
			foundChild = true
			if sp.Parent != root.Context().Span {
				t.Fatalf("child parent = %v, want %v", sp.Parent, root.Context().Span)
			}
		}
	}
	if !foundChild {
		t.Fatal("child span not recorded")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer("n", 16)
	sc := tr.NewRoot()
	ctx := ContextWith(context.Background(), sc)
	got, ok := FromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("FromContext = %+v %v, want %+v true", got, ok, sc)
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("FromContext on empty ctx: want false")
	}
	h := http.Header{}
	InjectTrace(ctx, h)
	if h.Get(TraceHeader) != sc.HeaderValue() {
		t.Fatalf("InjectTrace header = %q, want %q", h.Get(TraceHeader), sc.HeaderValue())
	}
}

func TestRingWrapAndConcurrency(t *testing.T) {
	r := NewRing(64)
	if r.Cap() != 64 {
		t.Fatalf("Cap = %d, want 64", r.Cap())
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(Span{Name: "s", Start: int64(i)})
			}
		}()
	}
	wg.Wait()
	spans := r.Snapshot(nil)
	if len(spans)+int(r.Drops()) < 64 {
		t.Fatalf("snapshot %d + drops %d: ring should be full", len(spans), r.Drops())
	}
	for _, sp := range spans {
		if sp.Name != "s" {
			t.Fatalf("torn span read: %+v", sp)
		}
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	h := NewHistogram(`class="test"`)
	for _, v := range []int64{1, 2, 3, 1000, 1_000_000, 0, -5} {
		h.Record(v)
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
	var b strings.Builder
	EmitHistogramFamily(&b, "test_seconds", "help text", UnitSeconds, h)
	out := b.String()
	for _, want := range []string{
		"# HELP test_seconds help text\n",
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{class="test",le="+Inf"} 7`,
		`test_seconds_count{class="test"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing and end at count.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "test_seconds_bucket") {
			continue
		}
		c, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if c < last {
			t.Fatalf("bucket counts decreased: %q after %d", line, last)
		}
		last = c
	}
	if last != 7 {
		t.Fatalf("final cumulative bucket = %d, want 7", last)
	}
}

func TestHistogramOverflowGoesToInfOnly(t *testing.T) {
	h := NewHistogram("")
	h.Record(1 << 45) // above the top bucket bound
	var b strings.Builder
	EmitHistogramFamily(&b, "x", "h", UnitCount, h)
	out := b.String()
	if !strings.Contains(out, `x_bucket{le="+Inf"} 1`) {
		t.Fatalf("overflow not in +Inf:\n%s", out)
	}
	if strings.Contains(out, `le="1"} 1`) {
		t.Fatalf("overflow leaked into a finite bucket:\n%s", out)
	}
	if !strings.Contains(out, "x_count 1") {
		t.Fatalf("missing count:\n%s", out)
	}
}

func TestMiddlewareTraceAndClasses(t *testing.T) {
	o := New(Options{Node: "n1"})
	var sawCtx SpanContext
	h := o.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawCtx, _ = FromContext(r.Context())
		w.WriteHeader(http.StatusTeapot)
	}))

	req := httptest.NewRequest("POST", "/v1/sketches/ad/ingest", nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if !sawCtx.Valid() {
		t.Fatal("handler saw no trace context")
	}
	hv := rw.Header().Get(TraceHeader)
	if hv == "" {
		t.Fatal("response missing trace header")
	}
	sc, err := ParseHeader(hv)
	if err != nil || sc != sawCtx {
		t.Fatalf("response header %q does not match handler context %+v", hv, sawCtx)
	}
	spans := o.Tracer().Ring().ByTrace(sc.Trace, nil)
	if len(spans) != 1 || spans[0].Name != "http.ingest" || spans[0].Status != 418 {
		t.Fatalf("edge span wrong: %+v", spans)
	}

	// Propagated trace: incoming header parents the server span.
	parent := o.Tracer().NewRoot()
	req = httptest.NewRequest("GET", "/v1/sketches/ad/topk", nil)
	req.Header.Set(TraceHeader, parent.HeaderValue())
	h.ServeHTTP(httptest.NewRecorder(), req)
	spans = o.Tracer().Ring().ByTrace(parent.Trace, nil)
	if len(spans) != 1 || spans[0].Parent != parent.Span || spans[0].Name != "http.query" {
		t.Fatalf("propagated span wrong: %+v", spans)
	}
}

func TestMiddlewareDoubleWrapCountsOnce(t *testing.T) {
	o := New(Options{Node: "n1"})
	inner := o.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	outer := o.Middleware(inner)
	outer.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/sketches/a/ingest", nil))
	if c := o.reqHist[ClassIngest].Count(); c != 1 {
		t.Fatalf("double-wrapped request recorded %d histogram samples, want 1", c)
	}
	spans := o.Tracer().Ring().Snapshot(nil)
	var names []string
	for _, sp := range spans {
		names = append(names, sp.Name)
	}
	if len(spans) != 2 {
		t.Fatalf("want edge + local spans, got %v", names)
	}
}

func TestHandleTracesFilterAndJSON(t *testing.T) {
	o := New(Options{Node: "n1"})
	h := o.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/v1/sketches/x/topk", nil))
	sc, _ := ParseHeader(rw.Header().Get(TraceHeader))

	req := httptest.NewRequest("GET", "/debug/traces?trace="+sc.Trace.String(), nil)
	rw = httptest.NewRecorder()
	o.HandleTraces(rw, req)
	var out struct {
		Node  string `json:"node"`
		Spans []struct {
			Trace  string `json:"trace"`
			Name   string `json:"name"`
			Status string `json:"status"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &out); err != nil {
		t.Fatalf("traces JSON: %v\n%s", err, rw.Body.String())
	}
	if out.Node != "n1" || len(out.Spans) != 1 || out.Spans[0].Trace != sc.Trace.String() ||
		out.Spans[0].Name != "http.query" || out.Spans[0].Status != "200" {
		t.Fatalf("traces payload wrong: %+v", out)
	}

	rw = httptest.NewRecorder()
	o.HandleTraces(rw, httptest.NewRequest("GET", "/debug/traces?trace=zzz", nil))
	if rw.Code != http.StatusBadRequest {
		t.Fatalf("bad trace filter: code %d, want 400", rw.Code)
	}
}

func TestSlowRequestLogged(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	log := NewLogger(&syncWriter{mu: &mu, w: &b}, "json", "info")
	o := New(Options{Node: "n1", SlowRequest: time.Nanosecond, Log: log})
	h := o.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(100 * time.Microsecond)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if !strings.Contains(out, "slow span") || !strings.Contains(out, `"trace"`) {
		t.Fatalf("slow request not logged: %q", out)
	}
}

// syncWriter serializes writes for the race detector.
type syncWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestHotTrackerViews(t *testing.T) {
	h := NewHotTracker(16)
	items := make([]string, 640)
	for i := range items {
		items[i] = "item-hot"
	}
	h.ObserveIngest("ads", items)
	h.ObserveIngest("logs", items[:64])
	h.ObserveRequest("ads")
	h.ObserveRequest("ads")
	h.ObserveRequest("logs")

	r := h.Report(5)
	if r.RowsObserved != 704 || r.RequestsObserved != 3 {
		t.Fatalf("observed rows=%d reqs=%d, want 704/3", r.RowsObserved, r.RequestsObserved)
	}
	if len(r.Tenants) == 0 || r.Tenants[0].Sketch != "ads" {
		t.Fatalf("tenants = %+v, want ads first", r.Tenants)
	}
	if len(r.Items) == 0 || r.Items[0].Sketch == "" || r.Items[0].Item != "item-hot" {
		t.Fatalf("items = %+v, want sampled item-hot", r.Items)
	}
	if len(r.Requests) == 0 || r.Requests[0].Sketch != "ads" {
		t.Fatalf("requests = %+v, want ads first", r.Requests)
	}
}

func TestClassOf(t *testing.T) {
	cases := map[string]int{
		"/v1/sketches/a/ingest":       ClassIngest,
		"/v1/sketches/a/snapshot":     ClassSnapshot,
		"/v1/sketches/a/topk":         ClassQuery,
		"/v1/sketches/a/estimate":     ClassQuery,
		"/v1/sketches/a/range/topk":   ClassRange,
		"/v1/cluster/sketches/a/topk": ClassCluster,
		"/v1/replication/wal":         ClassReplication,
		"/metrics":                    ClassAdmin,
		"/healthz":                    ClassAdmin,
		"/debug/traces":               ClassAdmin,
		"/v1/introspect/hot":          ClassAdmin,
		"/v1/sketches":                ClassAdmin,
		"/nonsense":                   ClassOther,
	}
	for path, want := range cases {
		if got := ClassOf(path); got != want {
			t.Errorf("ClassOf(%q) = %s, want %s", path, classNames[got], classNames[want])
		}
	}
}

func TestRecorderFlushAndUnwrap(t *testing.T) {
	rec := &responseRecorder{ResponseWriter: httptest.NewRecorder()}
	var w http.ResponseWriter = rec
	if _, ok := w.(http.Flusher); !ok {
		t.Fatal("responseRecorder must satisfy http.Flusher")
	}
	rec.Flush() // must not panic
	if rec.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
}
