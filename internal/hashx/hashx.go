// Package hashx provides allocation-free string hashing for the ingest hot
// paths. The standard library's hash/fnv returns a heap-allocated
// hash.Hash32/64 per call site, which costs one allocation per row when
// used the obvious way (h := fnv.New32a(); h.Write(...)); these functions
// compute the identical FNV-1a digests as constant-rolled loops over the
// string bytes, so call sites keep their exact hash values (and therefore
// shard routing, sampling order and test expectations) while dropping the
// per-row allocation.
package hashx

const (
	offset32 uint32 = 2166136261
	prime32  uint32 = 16777619
	offset64 uint64 = 14695981039346656037
	prime64  uint64 = 1099511628211
)

// Sum32a returns the 32-bit FNV-1a digest of s, identical to writing s into
// hash/fnv.New32a.
func Sum32a(s string) uint32 {
	h := offset32
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// Sum64a returns the 64-bit FNV-1a digest of s, identical to writing s into
// hash/fnv.New64a.
func Sum64a(s string) uint64 {
	h := offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
