package hashx

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// The whole point of this package is bit-for-bit agreement with hash/fnv —
// shard routing and sampling order across the repo depend on it.

func TestMatchesStdlib(t *testing.T) {
	cases := []string{"", "a", "ab", "item-123", "user-\x00\xff", "日本語",
		string(make([]byte, 1024))}
	for i := 0; i < 100; i++ {
		cases = append(cases, fmt.Sprintf("key-%d-%d", i, i*i))
	}
	for _, s := range cases {
		h32 := fnv.New32a()
		h32.Write([]byte(s))
		if got, want := Sum32a(s), h32.Sum32(); got != want {
			t.Errorf("Sum32a(%q) = %#x, fnv says %#x", s, got, want)
		}
		h64 := fnv.New64a()
		h64.Write([]byte(s))
		if got, want := Sum64a(s), h64.Sum64(); got != want {
			t.Errorf("Sum64a(%q) = %#x, fnv says %#x", s, got, want)
		}
	}
}

func TestZeroAlloc(t *testing.T) {
	s := "some-moderately-long-item-label"
	if avg := testing.AllocsPerRun(100, func() {
		_ = Sum32a(s)
		_ = Sum64a(s)
	}); avg != 0 {
		t.Errorf("hashing allocates %v/run, want 0", avg)
	}
}

func BenchmarkSum32a(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Sum32a("item-1234567890")
	}
}

func BenchmarkFnvNew32a(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := fnv.New32a()
		h.Write([]byte("item-1234567890"))
		_ = h.Sum32()
	}
}
