package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestDisabledNeverFires(t *testing.T) {
	Reset()
	for i := 0; i < 100; i++ {
		if Hit("wal.torn-write") {
			t.Fatal("inactive point fired")
		}
	}
	if Hits("wal.torn-write") != 0 {
		t.Fatal("inactive point counted a hit")
	}
}

func TestAlwaysOnPoint(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("x.always"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !Hit("x.always") {
			t.Fatal("always-on point did not fire")
		}
	}
	if Hit("x.other") {
		t.Fatal("unrelated point fired")
	}
	if Hits("x.always") != 10 {
		t.Fatalf("hits = %d, want 10", Hits("x.always"))
	}
}

func TestLimitedPoint(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("x.limited:1:3"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 50; i++ {
		if Hit("x.limited") {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("limited point fired %d times, want 3", fired)
	}
}

func TestProbabilisticPointFiresSometimes(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("x.half:0.5"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 2000; i++ {
		if Hit("x.half") {
			fired++
		}
	}
	// The rng is deterministic; this bounds it loosely anyway.
	if fired < 700 || fired > 1300 {
		t.Fatalf("p=0.5 point fired %d/2000 times", fired)
	}
}

func TestBadSpecsRejected(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	for _, spec := range []string{"a:2", "a:0", "a:x", "a:0.5:-1", "a:0.5:z", "a:1:2:3"} {
		if err := Enable(spec); err == nil {
			t.Errorf("Enable(%q) accepted a bad spec", spec)
		}
	}
}

func TestEmptyPartsIgnored(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable(" , x.on , "); err != nil {
		t.Fatalf("Enable with stray commas/space: %v", err)
	}
	if !Hit("x.on") {
		t.Fatal("trimmed point did not fire")
	}
}

func TestUnknownNameIgnoredWhileArmed(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("x.armed:1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if Hit("x.unknown") {
			t.Fatal("unknown point fired while another was armed")
		}
	}
	if Hits("x.unknown") != 0 {
		t.Fatalf("Hits(unknown) = %d, want 0", Hits("x.unknown"))
	}
}

func TestZeroLimitNeverFires(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Enable("x.zero:1:0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if Hit("x.zero") {
			t.Fatal("limit-0 point fired")
		}
	}
}

// TestConcurrentArmAndHit races Enable/Reset against firing sites; the
// race detector (CI runs this package with -race) keeps the locking
// honest, and the test itself asserts nothing panics or wedges.
func TestConcurrentArmAndHit(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					Hit("x.contended")
					Hits("x.contended")
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := Enable("x.contended:0.5:10"); err != nil {
			t.Errorf("Enable: %v", err)
		}
		if i%5 == 0 {
			Reset()
		}
	}
	close(stop)
	wg.Wait()
}

func TestSleepOnlyWhenFiring(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	start := time.Now()
	Sleep("x.never", 200*time.Millisecond)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("Sleep stalled on an inactive point")
	}
	if err := Enable("x.nap"); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	Sleep("x.nap", 20*time.Millisecond)
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("Sleep did not stall on an active point")
	}
}
