// Package faultinject is the repo's failpoint layer: named fault sites
// compiled into production code paths (WAL appends, fsync, replication
// stream framing) that stay dormant — one atomic load — until activated
// by the USS_FAULTPOINTS environment variable or programmatically by a
// test. Activated points fire probabilistically (with an optional
// activation budget), so a fault-injection run exercises torn writes,
// dropped/duplicated/delayed stream frames and stalled fsyncs against
// the same binaries production runs.
//
// # Activation
//
// USS_FAULTPOINTS is a comma-separated list of specs:
//
//	name            fire on every hit
//	name:p          fire with probability p in (0, 1]
//	name:p:limit    as above, at most limit activations total
//
// e.g. USS_FAULTPOINTS="repl.drop-frame:0.1,repl.dup-frame:0.1,wal.stall-fsync:0.05:20".
// Tests call Enable/Reset directly; both are safe for concurrent use
// with firing sites.
//
// # Known points
//
//	wal.torn-write        store: write only a prefix of the framed record, then fail
//	wal.stall-fsync       store: sleep before the fsync that acks an append
//	repl.drop-frame       primary stream: skip a frame (follower must re-request)
//	repl.dup-frame        primary stream: send a frame twice (follower must dedupe)
//	repl.delay-frame      primary stream: stall mid-stream before a frame
//	cluster.drop-fan      cluster fan: drop a queued delivery before the send (retries heal)
//	cluster.slow-peer     cluster: stall a node before it serves an exact-state read
//	cluster.partial-read  cluster gather: force one owner partial to miss (degraded path)
//	disk.enospc           store: report zero free disk space to the watermark check
//	wal.fail-fsync        store: fail the fsync call itself (not just the write)
//
// The names are a convention, not a registry: a site fires whatever
// name it asks for, so adding a point is one call at the site.
package faultinject

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar is the environment variable Enable specs are read from at
// first use.
const EnvVar = "USS_FAULTPOINTS"

// point is one activated failpoint.
type point struct {
	prob      float64
	remaining atomic.Int64 // activations left; negative = unlimited
	hits      atomic.Int64 // times the point actually fired
}

var (
	// armed is the global fast-path gate: sites pay one atomic load
	// while no point is active.
	armed atomic.Bool

	mu     sync.Mutex
	points map[string]*point
	rng    = rand.New(rand.NewSource(1)) // deterministic across runs; guarded by mu
	once   sync.Once
)

// initFromEnv arms the layer from USS_FAULTPOINTS exactly once.
func initFromEnv() {
	once.Do(func() {
		if spec := os.Getenv(EnvVar); spec != "" {
			if err := Enable(spec); err != nil {
				fmt.Fprintf(os.Stderr, "faultinject: ignoring %s: %v\n", EnvVar, err)
			}
		}
	})
}

// Enable activates the points named by spec (the USS_FAULTPOINTS
// syntax), adding to whatever is already active.
func Enable(spec string) error {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		p := &point{prob: 1}
		if len(fields) > 3 {
			return fmt.Errorf("faultinject: bad spec %q (want name[:prob[:limit]])", part)
		}
		if len(fields) >= 2 {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || v <= 0 || v > 1 {
				return fmt.Errorf("faultinject: bad probability in %q", part)
			}
			p.prob = v
		}
		p.remaining.Store(-1)
		if len(fields) == 3 {
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("faultinject: bad limit in %q", part)
			}
			p.remaining.Store(n)
		}
		points[fields[0]] = p
	}
	armed.Store(len(points) > 0)
	return nil
}

// Reset deactivates every point (tests clean up with this).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armed.Store(false)
}

// Hit reports whether the named point fires on this call. Inactive
// points (the production case) cost one atomic load.
func Hit(name string) bool {
	initFromEnv()
	if !armed.Load() {
		return false
	}
	mu.Lock()
	p := points[name]
	var roll float64
	if p != nil && p.prob < 1 {
		roll = rng.Float64()
	}
	mu.Unlock()
	if p == nil {
		return false
	}
	if p.prob < 1 && roll >= p.prob {
		return false
	}
	for {
		rem := p.remaining.Load()
		if rem == 0 {
			return false
		}
		if rem < 0 || p.remaining.CompareAndSwap(rem, rem-1) {
			p.hits.Add(1)
			return true
		}
	}
}

// Hits returns how many times the named point has fired (0 when never
// activated) — test assertions that a fault run actually injected.
func Hits(name string) int64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Sleep stalls for d when the named point fires — the delay-flavoured
// sites (stalled fsync, delayed stream frame) share it.
func Sleep(name string, d time.Duration) {
	if Hit(name) {
		time.Sleep(d)
	}
}
