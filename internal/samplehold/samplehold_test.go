package samplehold

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestAdaptiveValidation(t *testing.T) {
	cases := []func(){
		func() { NewAdaptive(0, 0.9, newRng(1)) },
		func() { NewAdaptive(4, 0, newRng(1)) },
		func() { NewAdaptive(4, 1, newRng(1)) },
		func() { NewAdaptive(4, 0.9, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAdaptiveExactUnderCapacity(t *testing.T) {
	a := NewAdaptive(10, 0.9, newRng(1))
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			a.Update(fmt.Sprintf("i%d", i))
		}
	}
	if a.Rate() != 1 {
		t.Fatalf("rate dropped to %v without overflow", a.Rate())
	}
	for i := 0; i < 5; i++ {
		if got := a.Estimate(fmt.Sprintf("i%d", i)); got != float64(i+1) {
			t.Errorf("Estimate(i%d) = %v, want %d", i, got, i+1)
		}
	}
}

func TestAdaptiveSizeBounded(t *testing.T) {
	rng := newRng(2)
	a := NewAdaptive(16, 0.9, rng)
	for i := 0; i < 20000; i++ {
		a.Update(fmt.Sprintf("i%d", rng.Intn(2000)))
		if a.Size() > 16 {
			t.Fatalf("size %d > 16 at row %d", a.Size(), i)
		}
	}
	if a.Rate() >= 1 {
		t.Error("rate never decreased on overflowing stream")
	}
	if a.Rows() != 20000 {
		t.Errorf("Rows = %d", a.Rows())
	}
}

// TestAdaptiveUnbiasedness checks the Theorem-2 property for the geometric
// reduction: subset-sum estimates average to the truth over replicates.
func TestAdaptiveUnbiasedness(t *testing.T) {
	var stream []string
	truth := map[string]float64{}
	for i := 0; i < 30; i++ {
		item := fmt.Sprintf("i%d", i)
		reps := 2 + 3*(i%5)
		for j := 0; j < reps; j++ {
			stream = append(stream, item)
			truth[item]++
		}
	}
	pred := func(s string) bool { return s == "i4" || s == "i14" || s == "i29" }
	want := truth["i4"] + truth["i14"] + truth["i29"]

	rng := newRng(3)
	const reps = 6000
	var sum, sumsq float64
	for r := 0; r < reps; r++ {
		a := NewAdaptive(8, 0.8, rng)
		perm := rng.Perm(len(stream))
		for _, i := range perm {
			a.Update(stream[i])
		}
		e := a.SubsetSum(pred)
		sum += e
		sumsq += e * e
	}
	mean := sum / reps
	varr := sumsq/reps - mean*mean
	se := math.Sqrt(varr / reps)
	if z := math.Abs(mean-want) / se; z > 4.5 {
		t.Errorf("adaptive S&H subset mean %.3f vs truth %.0f, |z| = %.1f", mean, want, z)
	}
}

func TestAdaptiveEntriesSorted(t *testing.T) {
	rng := newRng(4)
	a := NewAdaptive(8, 0.9, rng)
	for i := 0; i < 3000; i++ {
		a.Update(fmt.Sprintf("i%d", rng.Intn(30)))
	}
	es := a.Entries()
	if len(es) == 0 || len(es) > 8 {
		t.Fatalf("Entries len %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Estimate > es[i-1].Estimate {
			t.Fatalf("Entries not descending")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	rng := newRng(5)
	const p = 0.3
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(geometric(p, rng))
	}
	mean := sum / n
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("geometric mean %.4f, want %.4f", mean, want)
	}
	if geometric(1, rng) != 0 {
		t.Error("geometric(1) != 0")
	}
}

func TestStepValidation(t *testing.T) {
	cases := []func(){
		func() { NewStep(0, 0.9, newRng(1)) },
		func() { NewStep(4, 1.5, newRng(1)) },
		func() { NewStep(4, 0.9, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestStepExactUnderCapacity(t *testing.T) {
	s := NewStep(10, 0.9, newRng(1))
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Update(fmt.Sprintf("i%d", i))
		}
	}
	if s.Steps() != 1 {
		t.Fatalf("steps = %d without overflow", s.Steps())
	}
	for i := 0; i < 5; i++ {
		if got := s.Estimate(fmt.Sprintf("i%d", i)); got != float64(i+1) {
			t.Errorf("Estimate(i%d) = %v, want %d", i, got, i+1)
		}
	}
}

func TestStepSizeBoundedAndStorageGrows(t *testing.T) {
	rng := newRng(6)
	s := NewStep(16, 0.8, rng)
	for i := 0; i < 20000; i++ {
		s.Update(fmt.Sprintf("i%d", rng.Intn(1000)))
		if s.Size() > 16 {
			t.Fatalf("size %d > 16", s.Size())
		}
	}
	if s.Steps() < 2 {
		t.Error("no steps created on overflowing stream")
	}
	if s.StorageCells() < s.Size() {
		t.Errorf("storage cells %d < live counters %d", s.StorageCells(), s.Size())
	}
	if s.Rows() != 20000 {
		t.Errorf("Rows = %d", s.Rows())
	}
	if s.Estimate("never-seen") != 0 {
		t.Error("estimate for unseen item")
	}
}

func TestStepUnbiasedness(t *testing.T) {
	// The HT-weighted step estimator is exactly unbiased (every random
	// transition is expectation-preserving); z-test the subset estimate.
	var stream []string
	var want float64
	for i := 0; i < 40; i++ {
		item := fmt.Sprintf("i%d", i)
		reps := 5 + 10*(i%4)
		for j := 0; j < reps; j++ {
			stream = append(stream, item)
		}
		if i%2 == 0 {
			want += float64(reps)
		}
	}
	pred := func(s string) bool {
		var n int
		fmt.Sscanf(s, "i%d", &n)
		return n%2 == 0
	}
	rng := newRng(7)
	const reps = 4000
	var sum, sumsq float64
	for r := 0; r < reps; r++ {
		s := NewStep(10, 0.8, rng)
		perm := rng.Perm(len(stream))
		for _, i := range perm {
			s.Update(stream[i])
		}
		e := s.SubsetSum(pred)
		sum += e
		sumsq += e * e
	}
	mean := sum / reps
	varr := sumsq/reps - mean*mean
	se := math.Sqrt(varr / reps)
	if z := math.Abs(mean-want) / se; z > 4.5 {
		t.Errorf("step S&H subset mean %.2f vs truth %.0f, |z| = %.1f", mean, want, z)
	}
}

// TestAdaptiveVersusTruthVariance documents the paper's §5.4 claim
// qualitatively: on a stream with a dominant frequent item, adaptive S&H's
// estimate of that item is noisier than the near-exact Unbiased Space
// Saving behaviour — its variance must be visibly positive even for the top
// item, because early occurrences are discarded.
func TestAdaptiveFrequentItemVariance(t *testing.T) {
	var stream []string
	for i := 0; i < 500; i++ {
		stream = append(stream, "hot")
	}
	for i := 0; i < 1500; i++ {
		stream = append(stream, fmt.Sprintf("cold%d", i))
	}
	rng := newRng(8)
	const reps = 500
	var sum, sumsq float64
	for r := 0; r < reps; r++ {
		a := NewAdaptive(50, 0.9, rng)
		perm := rng.Perm(len(stream))
		for _, i := range perm {
			a.Update(stream[i])
		}
		e := a.Estimate("hot")
		sum += e
		sumsq += e * e
	}
	mean := sum / reps
	varr := sumsq/reps - mean*mean
	if math.Abs(mean-500) > 50 {
		t.Errorf("adaptive mean for hot item %.1f, want ≈ 500", mean)
	}
	if varr < 1 {
		t.Errorf("adaptive variance %.2f suspiciously low — geometric correction missing?", varr)
	}
}
