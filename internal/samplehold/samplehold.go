// Package samplehold implements the Sample-and-Hold family of disaggregated
// subset-sum sketches (§5.4 of Ting 2018): adaptive sample and hold (Cohen,
// Duffield, Kaplan, Lund & Thorup 2007) with the geometric resampling that
// makes it an unbiased reduction in the sense of Theorem 2, and the simpler
// step sample and hold (Gibbons & Matias 1998; Estan & Varghese 2003).
//
// These are the prior state of the art for the disaggregated subset sum
// problem; the paper shows Unbiased Space Saving strictly dominates them
// because Sample-and-Hold discards the first ~nᵢ(1−p) occurrences of every
// item and replaces them with a high-variance Geometric(p) correction.
package samplehold

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Adaptive is the adaptive sample-and-hold sketch. It holds at most m
// counters; when a row would overflow the sketch the sampling rate p is
// lowered and every counter is resampled: kept unchanged with probability
// p'/p, otherwise decremented by a Geometric(p') variate (dropped if the
// counter is exhausted). Tracked items report count + (1−p)/p, which is
// unbiased for the true count.
type Adaptive struct {
	m        int
	p        float64 // current sampling rate
	shrink   float64 // multiplicative rate decrease per resampling pass
	counters map[string]int64
	rows     int64
	rng      *rand.Rand
}

// NewAdaptive returns an adaptive sample-and-hold sketch with m counters.
// shrink in (0,1) controls how aggressively the rate drops when the sketch
// overflows; 0.9 reproduces the gentle "one item leaves" behaviour the
// paper describes.
func NewAdaptive(m int, shrink float64, rng *rand.Rand) *Adaptive {
	if m <= 0 {
		panic(fmt.Sprintf("samplehold: adaptive with m = %d", m))
	}
	if shrink <= 0 || shrink >= 1 {
		panic(fmt.Sprintf("samplehold: shrink factor %v outside (0,1)", shrink))
	}
	if rng == nil {
		panic("samplehold: adaptive requires a random source")
	}
	return &Adaptive{m: m, p: 1, shrink: shrink, counters: make(map[string]int64, m+1), rng: rng}
}

// geometric draws G ~ Geometric(p) on {0,1,2,...} with mean (1−p)/p.
func geometric(p float64, rng *rand.Rand) int64 {
	if p >= 1 {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return int64(math.Log(u) / math.Log(1-p))
}

// Update processes one row.
func (a *Adaptive) Update(item string) {
	a.rows++
	if _, ok := a.counters[item]; ok {
		a.counters[item]++
		return
	}
	if a.p >= 1 || a.rng.Float64() < a.p {
		a.counters[item] = 1
		if len(a.counters) > a.m {
			a.reduce()
		}
	}
}

// reduce lowers the sampling rate and resamples counters until the sketch
// fits. Each pass keeps a counter with probability p'/p and otherwise
// subtracts a Geometric(p') variate; exhausted counters drop. The paper
// shows this reduction preserves expected estimates (Theorem 2 applies),
// using the memorylessness of the geometric distribution.
func (a *Adaptive) reduce() {
	for len(a.counters) > a.m {
		pNew := a.p * a.shrink
		ratio := pNew / a.p
		for k, c := range a.counters {
			if a.rng.Float64() < ratio {
				continue
			}
			c -= geometric(pNew, a.rng) + 1
			if c <= 0 {
				delete(a.counters, k)
			} else {
				a.counters[k] = c
			}
		}
		a.p = pNew
	}
}

// Estimate returns the unbiased count estimate for item: counter + (1−p)/p
// for tracked items, 0 otherwise.
func (a *Adaptive) Estimate(item string) float64 {
	c, ok := a.counters[item]
	if !ok {
		return 0
	}
	return float64(c) + (1-a.p)/a.p
}

// SubsetSum estimates the total count of items satisfying pred.
func (a *Adaptive) SubsetSum(pred func(string) bool) float64 {
	var s float64
	corr := (1 - a.p) / a.p
	for k, c := range a.counters {
		if pred(k) {
			s += float64(c) + corr
		}
	}
	return s
}

// Rate returns the current sampling rate.
func (a *Adaptive) Rate() float64 { return a.p }

// Rows returns the number of rows processed.
func (a *Adaptive) Rows() int64 { return a.rows }

// Size returns the number of live counters.
func (a *Adaptive) Size() int { return len(a.counters) }

// Entry is one tracked item with its unbiased estimate.
type Entry struct {
	Item     string
	Estimate float64
}

// Entries returns tracked items in descending estimate order.
func (a *Adaptive) Entries() []Entry {
	out := make([]Entry, 0, len(a.counters))
	for k := range a.counters {
		out = append(out, Entry{Item: k, Estimate: a.Estimate(k)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Step is the step sample-and-hold sketch: the sampling rate decreases in
// steps, and each tracked item keeps one exact counter per step in which it
// was held. When the sketch overflows, a new step begins at rate p' and
// every held item survives independently with probability p'/p (no
// geometric re-randomization — the per-step counts carry the information
// instead). Estimation is Horvitz–Thompson over the whole coin history:
// the entering occurrence in step e is worth 1/p_e, each later counted
// occurrence is worth 1, and surviving a step boundary scales the running
// estimate by the inverse survival ratio, so the estimate is exactly the
// unbiased-reduction form of Theorem 2. The paper notes this sketch's
// per-item storage and estimation cost grow with the number of steps Jᵢ
// the item spans, which is why adaptive sample-and-hold (and Unbiased
// Space Saving) supersede it.
type Step struct {
	m      int
	shrink float64
	rates  []float64 // rate per step, rates[0] = 1
	held   map[string]*stepRecord
	rows   int64
	rng    *rand.Rand
}

type stepRecord struct {
	entryStep int
	counts    []int64 // parallel to steps entryStep..current
}

// NewStep returns a step sample-and-hold sketch with m counters.
func NewStep(m int, shrink float64, rng *rand.Rand) *Step {
	if m <= 0 {
		panic(fmt.Sprintf("samplehold: step with m = %d", m))
	}
	if shrink <= 0 || shrink >= 1 {
		panic(fmt.Sprintf("samplehold: shrink factor %v outside (0,1)", shrink))
	}
	if rng == nil {
		panic("samplehold: step requires a random source")
	}
	return &Step{m: m, shrink: shrink, rates: []float64{1}, held: make(map[string]*stepRecord, m+1), rng: rng}
}

func (s *Step) currentStep() int { return len(s.rates) - 1 }
func (s *Step) rate() float64    { return s.rates[s.currentStep()] }
func (s *Step) stepOf(r *stepRecord, step int) *int64 {
	for len(r.counts) <= step-r.entryStep {
		r.counts = append(r.counts, 0)
	}
	return &r.counts[step-r.entryStep]
}

// Update processes one row.
func (s *Step) Update(item string) {
	s.rows++
	if r, ok := s.held[item]; ok {
		*s.stepOf(r, s.currentStep())++
		return
	}
	if p := s.rate(); p >= 1 || s.rng.Float64() < p {
		s.held[item] = &stepRecord{entryStep: s.currentStep(), counts: []int64{1}}
		if len(s.held) > s.m {
			s.advance()
		}
	}
}

// advance starts new steps at geometrically decreasing rates, dropping each
// held item with the complementary survival probability, until the sketch
// fits.
func (s *Step) advance() {
	for len(s.held) > s.m {
		pOld := s.rate()
		pNew := pOld * s.shrink
		s.rates = append(s.rates, pNew)
		ratio := pNew / pOld
		for k := range s.held {
			if s.rng.Float64() >= ratio {
				delete(s.held, k)
			}
		}
	}
}

// Estimate returns the exactly-unbiased Horvitz–Thompson estimate for
// item: Σⱼ (contribution in step j)·(pⱼ/p_now), where the contribution in
// the entry step is 1/p_e + (c_e − 1) (the entering occurrence HT-adjusted
// by its admission probability, the rest counted exactly) and cⱼ in later
// steps. Every randomized transition of the process — admission coins,
// re-admission after a drop, and the per-boundary survival coins — is
// expectation-preserving under this weighting, so the estimator is an
// unbiased martingale by the Theorem-2 argument.
func (s *Step) Estimate(item string) float64 {
	r, ok := s.held[item]
	if !ok {
		return 0
	}
	pNow := s.rate()
	pe := s.rates[r.entryStep]
	est := (1/pe + float64(r.counts[0]) - 1) * pe / pNow
	for d := 1; d < len(r.counts); d++ {
		pj := s.rates[r.entryStep+d]
		est += float64(r.counts[d]) * pj / pNow
	}
	return est
}

// SubsetSum estimates the total count of items satisfying pred.
func (s *Step) SubsetSum(pred func(string) bool) float64 {
	var sum float64
	for k := range s.held {
		if pred(k) {
			sum += s.Estimate(k)
		}
	}
	return sum
}

// Rows returns the number of rows processed.
func (s *Step) Rows() int64 { return s.rows }

// Size returns the number of live counters.
func (s *Step) Size() int { return len(s.held) }

// Steps returns the number of rate steps so far.
func (s *Step) Steps() int { return len(s.rates) }

// StorageCells returns the total number of per-step counters stored, the
// quantity the paper calls out as the sketch's storage cost Σᵢ Jᵢ.
func (s *Step) StorageCells() int {
	n := 0
	for _, r := range s.held {
		n += len(r.counts)
	}
	return n
}
