package freq

import (
	"fmt"
	"sort"
)

// LossyCounting is the (simplified) Lossy Counting sketch of Manku &
// Motwani (2002) as described in §5.2: the same decrement reduction as
// Misra–Gries but on a fixed schedule — after every m rows, all counters
// decrement — independent of the data. Unlike Misra–Gries it does not bound
// the number of live counters by m; the worst case is m·log(N/m).
type LossyCounting struct {
	m        int
	counters map[string]int64
	rows     int64
	epochs   int64 // number of decrement sweeps so far
}

// NewLossyCounting returns a sketch targeting items with frequency > N/m.
func NewLossyCounting(m int) *LossyCounting {
	if m <= 0 {
		panic(fmt.Sprintf("freq: lossy counting with m = %d", m))
	}
	return &LossyCounting{m: m, counters: make(map[string]int64, m)}
}

// Update processes one row.
func (lc *LossyCounting) Update(item string) {
	lc.rows++
	lc.counters[item]++
	if lc.rows%int64(lc.m) == 0 {
		lc.epochs++
		for k, v := range lc.counters {
			if v <= 1 {
				delete(lc.counters, k)
			} else {
				lc.counters[k] = v - 1
			}
		}
	}
}

// Estimate returns the downward-biased count estimate for item.
func (lc *LossyCounting) Estimate(item string) int64 { return lc.counters[item] }

// CorrectedEstimate adds back the number of decrement sweeps for tracked
// items, recovering the original Lossy Counting guarantee
// truth − N/m ≤ estimate ≤ truth + epochs.
func (lc *LossyCounting) CorrectedEstimate(item string) (int64, bool) {
	c, ok := lc.counters[item]
	if !ok {
		return 0, false
	}
	return c + lc.epochs, true
}

// Rows returns the number of rows processed.
func (lc *LossyCounting) Rows() int64 { return lc.rows }

// Size returns the number of live counters (may exceed m transiently).
func (lc *LossyCounting) Size() int { return len(lc.counters) }

// Epochs returns the number of decrement sweeps performed.
func (lc *LossyCounting) Epochs() int64 { return lc.epochs }

// Counters returns live counters in descending count order.
func (lc *LossyCounting) Counters() []Counter {
	out := make([]Counter, 0, len(lc.counters))
	for k, v := range lc.counters {
		out = append(out, Counter{Item: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}
