package freq

import (
	"fmt"
	"math"

	"repro/internal/hashx"
)

// CountMin is the Count-Min sketch of Cormode & Muthukrishnan (2005): a
// d×w array of counters, each row indexed by an independent hash. Point
// queries return the minimum over rows and overestimate by at most
// ε·N with probability 1−δ for w = ⌈e/ε⌉, d = ⌈ln(1/δ)⌉.
//
// The paper cites CountMin as the right tool when filter conditions are
// known in advance (§3); it cannot answer arbitrary subset sums because it
// stores no labels, which is the gap Unbiased Space Saving fills.
type CountMin struct {
	d, w  int
	table [][]uint64
	rows  uint64
	seeds []uint64
}

// NewCountMin returns a sketch with the given depth (number of hash rows)
// and width (counters per row).
func NewCountMin(depth, width int) *CountMin {
	if depth <= 0 || width <= 0 {
		panic(fmt.Sprintf("freq: countmin %dx%d", depth, width))
	}
	t := make([][]uint64, depth)
	seeds := make([]uint64, depth)
	for i := range t {
		t[i] = make([]uint64, width)
		seeds[i] = 0x9e3779b97f4a7c15 * uint64(i+1)
	}
	return &CountMin{d: depth, w: width, table: t, seeds: seeds}
}

// NewCountMinWithError returns a sketch sized for additive error ε·N with
// failure probability δ.
func NewCountMinWithError(epsilon, delta float64) *CountMin {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("freq: countmin eps=%v delta=%v", epsilon, delta))
	}
	w := int(math.Ceil(math.E / epsilon))
	d := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMin(d, w)
}

// hash returns the bucket for item in row r, using FNV-1a mixed with a
// per-row seed.
func (cm *CountMin) hash(item string, r int) int {
	// Inlined FNV-1a (hashx) instead of a heap-allocated fnv.New64a per
	// row; digests are identical, so bucket assignments are unchanged.
	v := hashx.Sum64a(item) ^ cm.seeds[r]
	// Final avalanche (splitmix64 tail) so the per-row seeds decorrelate.
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return int(v % uint64(cm.w))
}

// Update adds weight w (≥ 0) to item's counters.
func (cm *CountMin) Update(item string, w uint64) {
	cm.rows += w
	for r := 0; r < cm.d; r++ {
		cm.table[r][cm.hash(item, r)] += w
	}
}

// Estimate returns the upward-biased point estimate for item.
func (cm *CountMin) Estimate(item string) uint64 {
	min := uint64(math.MaxUint64)
	for r := 0; r < cm.d; r++ {
		if c := cm.table[r][cm.hash(item, r)]; c < min {
			min = c
		}
	}
	return min
}

// Total returns the total weight inserted.
func (cm *CountMin) Total() uint64 { return cm.rows }

// Depth and Width report the table dimensions.
func (cm *CountMin) Depth() int { return cm.d }

// Width reports the number of counters per row.
func (cm *CountMin) Width() int { return cm.w }

// Merge adds other's counters into cm. Panics on dimension mismatch.
func (cm *CountMin) Merge(other *CountMin) {
	if cm.d != other.d || cm.w != other.w {
		panic(fmt.Sprintf("freq: merging countmin %dx%d with %dx%d", cm.d, cm.w, other.d, other.w))
	}
	for r := range cm.table {
		for c := range cm.table[r] {
			cm.table[r][c] += other.table[r][c]
		}
	}
	cm.rows += other.rows
}
