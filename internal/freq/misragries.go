// Package freq implements the deterministic frequent-item sketches the
// paper situates Unbiased Space Saving against (§5.2): Misra–Gries, Lossy
// Counting, Sticky Sampling and CountMin. Misra–Gries is isomorphic to
// Deterministic Space Saving — their estimates differ exactly by the
// minimum-bin count — and that isomorphism is exercised by the test suite.
package freq

import (
	"fmt"
	"sort"
)

// MisraGries is the Misra–Gries (1982) frequent-item summary with m
// counters. Processing an untracked item with all counters occupied
// decrements every counter instead of stealing a label; counters at zero
// free their slot. For any item, truth − ntot/m ≤ estimate ≤ truth.
type MisraGries struct {
	m          int
	counters   map[string]int64
	rows       int64
	decrements int64
}

// NewMisraGries returns a summary with m counters.
func NewMisraGries(m int) *MisraGries {
	if m <= 0 {
		panic(fmt.Sprintf("freq: misra-gries with m = %d", m))
	}
	return &MisraGries{m: m, counters: make(map[string]int64, m)}
}

// Update processes one row.
func (mg *MisraGries) Update(item string) {
	mg.rows++
	if _, ok := mg.counters[item]; ok {
		mg.counters[item]++
		return
	}
	if len(mg.counters) < mg.m {
		mg.counters[item] = 1
		return
	}
	// Decrement-all step. This is O(m); amortized over the ≥m increments
	// needed to refill, updates are O(1) amortized. (The linked-structure
	// O(1) worst-case version is exactly Deterministic Space Saving via
	// the isomorphism, implemented in internal/core.)
	mg.decrements++
	for k, v := range mg.counters {
		if v <= 1 {
			delete(mg.counters, k)
		} else {
			mg.counters[k] = v - 1
		}
	}
}

// Estimate returns the (downward-biased) count estimate for item.
func (mg *MisraGries) Estimate(item string) int64 { return mg.counters[item] }

// Decrements returns the number of decrement-all steps performed; by the
// isomorphism of §5.2 this equals the minimum-bin count of the equivalent
// Deterministic Space Saving sketch.
func (mg *MisraGries) Decrements() int64 { return mg.decrements }

// Rows returns the number of rows processed.
func (mg *MisraGries) Rows() int64 { return mg.rows }

// Size returns the number of live counters.
func (mg *MisraGries) Size() int { return len(mg.counters) }

// Counter is an exported (item, count) pair.
type Counter struct {
	Item  string
	Count int64
}

// Counters returns live counters in descending count order.
func (mg *MisraGries) Counters() []Counter {
	out := make([]Counter, 0, len(mg.counters))
	for k, v := range mg.counters {
		out = append(out, Counter{Item: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// SpaceSavingEstimate returns the estimate the isomorphic Deterministic
// Space Saving sketch would give: counter + decrements for tracked items
// (untracked items have no Space-Saving equivalent estimate here because
// the isomorphism determines only tracked labels up to eviction history).
func (mg *MisraGries) SpaceSavingEstimate(item string) (int64, bool) {
	c, ok := mg.counters[item]
	if !ok {
		return 0, false
	}
	return c + mg.decrements, true
}

// Merge merges other into mg with the soft-threshold merge of Agarwal et
// al. (2013): counts add exactly, then the (m+1)-th largest combined count
// is subtracted from all and non-positive counters drop. The deterministic
// error bound adds across the inputs.
func (mg *MisraGries) Merge(other *MisraGries) {
	for k, v := range other.counters {
		mg.counters[k] += v
	}
	mg.rows += other.rows
	mg.decrements += other.decrements
	if len(mg.counters) <= mg.m {
		return
	}
	counts := make([]int64, 0, len(mg.counters))
	for _, v := range mg.counters {
		counts = append(counts, v)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	thresh := counts[mg.m]
	mg.decrements += thresh
	for k, v := range mg.counters {
		if v <= thresh {
			delete(mg.counters, k)
		} else {
			mg.counters[k] = v - thresh
		}
	}
}
