package freq

import (
	"fmt"
	"math/rand"
	"sort"
)

// StickySampling is the randomized Sticky Sampling sketch of Manku &
// Motwani (2002). Items are admitted by coin flips at a sampling rate that
// halves as the stream grows; admitted ("sticky") items are counted
// exactly from admission onward. The paper dismisses it as dominated by
// the other sketches (§5.2); it is included as a baseline for completeness.
type StickySampling struct {
	rate     float64 // current sampling probability
	window   int64   // rows per rate-halving window
	seen     int64   // rows in the current window
	counters map[string]int64
	rows     int64
	rng      *rand.Rand
}

// NewStickySampling returns a sketch whose initial window is m rows at
// sampling rate 1; each subsequent window doubles in length and halves the
// rate, targeting support thresholds around 1/m.
func NewStickySampling(m int, rng *rand.Rand) *StickySampling {
	if m <= 0 {
		panic(fmt.Sprintf("freq: sticky sampling with m = %d", m))
	}
	if rng == nil {
		panic("freq: sticky sampling requires a random source")
	}
	return &StickySampling{
		rate:     1,
		window:   int64(m),
		counters: make(map[string]int64, m),
		rng:      rng,
	}
}

// Update processes one row.
func (ss *StickySampling) Update(item string) {
	ss.rows++
	ss.seen++
	if ss.seen > ss.window {
		// New window: halve the rate and re-toss every counter with
		// geometric thinning, the original algorithm's correction for
		// items admitted at the old, higher rate.
		ss.window *= 2
		ss.seen = 1
		ss.rate /= 2
		for k := range ss.counters {
			for ss.counters[k] > 0 && ss.rng.Float64() < 0.5 {
				ss.counters[k]--
			}
			if ss.counters[k] <= 0 {
				delete(ss.counters, k)
			}
		}
	}
	if _, ok := ss.counters[item]; ok {
		ss.counters[item]++
		return
	}
	if ss.rng.Float64() < ss.rate {
		ss.counters[item] = 1
	}
}

// Estimate returns the count accumulated since admission (a downward-biased
// estimate of the true count).
func (ss *StickySampling) Estimate(item string) int64 { return ss.counters[item] }

// Rate returns the current sampling rate.
func (ss *StickySampling) Rate() float64 { return ss.rate }

// Rows returns the number of rows processed.
func (ss *StickySampling) Rows() int64 { return ss.rows }

// Size returns the number of live counters.
func (ss *StickySampling) Size() int { return len(ss.counters) }

// Counters returns live counters in descending count order.
func (ss *StickySampling) Counters() []Counter {
	out := make([]Counter, 0, len(ss.counters))
	for k, v := range ss.counters {
		out = append(out, Counter{Item: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}
