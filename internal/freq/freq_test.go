package freq

import (
	"fmt"
	"math/rand"
	"testing"
)

func zipfStream(n int, seed int64) ([]string, map[string]int64) {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, 1000)
	stream := make([]string, n)
	truth := map[string]int64{}
	for i := range stream {
		item := fmt.Sprintf("i%d", z.Uint64())
		stream[i] = item
		truth[item]++
	}
	return stream, truth
}

func TestMisraGriesErrorBound(t *testing.T) {
	const m = 20
	stream, truth := zipfStream(30000, 1)
	mg := NewMisraGries(m)
	for _, it := range stream {
		mg.Update(it)
	}
	bound := mg.Rows() / int64(m)
	for item, tc := range truth {
		est := mg.Estimate(item)
		if est > tc {
			t.Errorf("MG overestimates %s: %d > %d", item, est, tc)
		}
		if tc-est > bound {
			t.Errorf("MG error for %s: %d−%d > %d", item, tc, est, bound)
		}
	}
	if mg.Size() > m {
		t.Errorf("MG size %d > m %d", mg.Size(), m)
	}
	if mg.Decrements() > bound {
		t.Errorf("decrements %d exceed ntot/m %d", mg.Decrements(), bound)
	}
}

func TestMisraGriesExactUnderCapacity(t *testing.T) {
	mg := NewMisraGries(10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			mg.Update(fmt.Sprintf("i%d", i))
		}
	}
	for i := 0; i < 5; i++ {
		if got := mg.Estimate(fmt.Sprintf("i%d", i)); got != int64(i+1) {
			t.Errorf("Estimate(i%d) = %d, want %d", i, got, i+1)
		}
	}
	if mg.Decrements() != 0 {
		t.Errorf("decrements = %d, want 0", mg.Decrements())
	}
}

func TestMisraGriesSpaceSavingEstimate(t *testing.T) {
	stream, truth := zipfStream(20000, 2)
	mg := NewMisraGries(16)
	for _, it := range stream {
		mg.Update(it)
	}
	// The Space-Saving view overestimates: counter + decrements ≥ truth,
	// and counter ≤ truth (MG view underestimates).
	for _, c := range mg.Counters() {
		ss, ok := mg.SpaceSavingEstimate(c.Item)
		if !ok {
			t.Fatalf("tracked item %s missing SS estimate", c.Item)
		}
		if ss < truth[c.Item] {
			t.Errorf("SS view underestimates %s: %d < %d", c.Item, ss, truth[c.Item])
		}
		if c.Count > truth[c.Item] {
			t.Errorf("MG view overestimates %s: %d > %d", c.Item, c.Count, truth[c.Item])
		}
	}
	if _, ok := mg.SpaceSavingEstimate("never-seen"); ok {
		t.Error("SS estimate for untracked item")
	}
}

func TestMisraGriesCountersSorted(t *testing.T) {
	stream, _ := zipfStream(5000, 3)
	mg := NewMisraGries(8)
	for _, it := range stream {
		mg.Update(it)
	}
	cs := mg.Counters()
	for i := 1; i < len(cs); i++ {
		if cs[i].Count > cs[i-1].Count {
			t.Fatalf("Counters not descending: %v", cs)
		}
	}
}

func TestMisraGriesMerge(t *testing.T) {
	const m = 10
	s1, t1 := zipfStream(10000, 4)
	s2, t2 := zipfStream(10000, 5)
	a, b := NewMisraGries(m), NewMisraGries(m)
	for _, it := range s1 {
		a.Update(it)
	}
	for _, it := range s2 {
		b.Update(it)
	}
	a.Merge(b)
	if a.Size() > m {
		t.Fatalf("merged size %d > m", a.Size())
	}
	if a.Rows() != 20000 {
		t.Fatalf("merged rows %d", a.Rows())
	}
	// Combined error bound: 2·ntot/m covers the merged sketch.
	bound := a.Rows() / int64(m) * 2
	truth := map[string]int64{}
	for k, v := range t1 {
		truth[k] += v
	}
	for k, v := range t2 {
		truth[k] += v
	}
	for item, tc := range truth {
		est := a.Estimate(item)
		if est > tc {
			t.Errorf("merged MG overestimates %s: %d > %d", item, est, tc)
		}
		if tc-est > bound {
			t.Errorf("merged MG error for %s: %d−%d > %d", item, tc, est, bound)
		}
	}
}

func TestMisraGriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMisraGries(0) did not panic")
		}
	}()
	NewMisraGries(0)
}

func TestLossyCountingBounds(t *testing.T) {
	const m = 50
	stream, truth := zipfStream(40000, 6)
	lc := NewLossyCounting(m)
	for _, it := range stream {
		lc.Update(it)
	}
	// Raw estimates never overestimate; error ≤ epochs ≤ rows/m.
	if lc.Epochs() > lc.Rows()/int64(m) {
		t.Fatalf("epochs %d > rows/m", lc.Epochs())
	}
	for item, tc := range truth {
		est := lc.Estimate(item)
		if est > tc {
			t.Errorf("lossy overestimates %s: %d > %d", item, est, tc)
		}
		if tc-est > lc.Epochs() {
			t.Errorf("lossy error for %s: %d−%d > %d", item, tc, est, lc.Epochs())
		}
	}
	// Corrected estimates overestimate by at most epochs.
	for _, c := range lc.Counters() {
		corr, ok := lc.CorrectedEstimate(c.Item)
		if !ok {
			t.Fatalf("tracked item %s missing corrected estimate", c.Item)
		}
		if corr < truth[c.Item] {
			t.Errorf("corrected underestimates %s: %d < %d", c.Item, corr, truth[c.Item])
		}
	}
	if _, ok := lc.CorrectedEstimate("never-seen"); ok {
		t.Error("corrected estimate for untracked item")
	}
}

func TestLossyCountingSizeStaysModest(t *testing.T) {
	const m = 100
	stream, _ := zipfStream(100000, 7)
	lc := NewLossyCounting(m)
	maxSize := 0
	for _, it := range stream {
		lc.Update(it)
		if lc.Size() > maxSize {
			maxSize = lc.Size()
		}
	}
	// Worst case m·log(N/m) ≈ 100·10 = 1000; typical zipf far less.
	if maxSize > 1000 {
		t.Errorf("lossy counting grew to %d counters", maxSize)
	}
}

func TestStickySamplingTracksHeavyHitter(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ss := NewStickySampling(64, rng)
	hot := int64(0)
	for i := 0; i < 50000; i++ {
		if rng.Float64() < 0.2 {
			ss.Update("hot")
			hot++
		} else {
			ss.Update(fmt.Sprintf("cold%d", rng.Intn(10000)))
		}
	}
	if ss.Estimate("hot") == 0 {
		t.Fatal("sticky sampling lost the heavy hitter")
	}
	if est := ss.Estimate("hot"); est > hot {
		t.Errorf("sticky estimate %d exceeds truth %d", est, hot)
	}
	if ss.Rate() >= 1 {
		t.Errorf("rate %v never decreased over 50k rows", ss.Rate())
	}
	if ss.Rows() != 50000 {
		t.Errorf("Rows = %d", ss.Rows())
	}
	cs := ss.Counters()
	for i := 1; i < len(cs); i++ {
		if cs[i].Count > cs[i-1].Count {
			t.Fatalf("Counters not descending")
		}
	}
}

func TestStickySamplingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStickySampling(0) did not panic")
		}
	}()
	NewStickySampling(0, rand.New(rand.NewSource(1)))
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	stream, truth := zipfStream(20000, 9)
	cm := NewCountMin(4, 256)
	for _, it := range stream {
		cm.Update(it, 1)
	}
	if cm.Total() != 20000 {
		t.Fatalf("Total = %d", cm.Total())
	}
	for item, tc := range truth {
		if est := cm.Estimate(item); est < uint64(tc) {
			t.Errorf("countmin underestimates %s: %d < %d", item, est, tc)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// ε = e/width; overestimate ≤ ε·N with prob ≥ 1−δ per item. Check
	// that the overwhelming majority of items respect the bound.
	stream, truth := zipfStream(30000, 10)
	const width = 512
	cm := NewCountMin(5, width)
	for _, it := range stream {
		cm.Update(it, 1)
	}
	bound := uint64(float64(cm.Total()) * 2.718281828 / width)
	violations := 0
	for item, tc := range truth {
		if cm.Estimate(item)-uint64(tc) > bound {
			violations++
		}
	}
	if frac := float64(violations) / float64(len(truth)); frac > 0.01 {
		t.Errorf("%.2f%% of items violate the CountMin bound", 100*frac)
	}
}

func TestCountMinWithError(t *testing.T) {
	cm := NewCountMinWithError(0.01, 0.01)
	if cm.Width() < 271 || cm.Depth() < 5 {
		t.Errorf("sizing wrong: %dx%d", cm.Depth(), cm.Width())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad eps did not panic")
			}
		}()
		NewCountMinWithError(0, 0.1)
	}()
}

func TestCountMinMerge(t *testing.T) {
	a := NewCountMin(3, 64)
	b := NewCountMin(3, 64)
	a.Update("x", 5)
	b.Update("x", 7)
	b.Update("y", 2)
	a.Merge(b)
	if got := a.Estimate("x"); got < 12 {
		t.Errorf("merged Estimate(x) = %d, want ≥ 12", got)
	}
	if a.Total() != 14 {
		t.Errorf("merged Total = %d, want 14", a.Total())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dimension mismatch merge did not panic")
			}
		}()
		a.Merge(NewCountMin(2, 64))
	}()
}

func TestCountMinValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCountMin(0, 0) did not panic")
		}
	}()
	NewCountMin(0, 0)
}
