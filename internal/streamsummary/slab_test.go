package streamsummary

import (
	"fmt"
	"math/rand"
	"testing"
)

// Tests for the slab-backed storage layout: free-list recycling, Remove,
// and the zero-allocation guarantee on the steady-state ingest path.

func TestRemove(t *testing.T) {
	s := New(8)
	s.Insert("a", 1)
	s.Insert("b", 2)
	s.Insert("c", 2)
	if c, ok := s.Remove("b"); !ok || c != 2 {
		t.Fatalf("Remove(b) = %d,%v, want 2,true", c, ok)
	}
	if s.Contains("b") {
		t.Error("removed item still present")
	}
	if s.Len() != 2 || s.Total() != 3 {
		t.Errorf("Len/Total = %d/%d, want 2/3", s.Len(), s.Total())
	}
	if _, ok := s.Remove("missing"); ok {
		t.Error("Remove(missing) reported success")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Removing the last member of a bucket retires the bucket too.
	if c, ok := s.Remove("a"); !ok || c != 1 {
		t.Fatalf("Remove(a) = %d,%v, want 1,true", c, ok)
	}
	if s.MinCount() != 2 {
		t.Errorf("MinCount = %d after removing the count-1 bucket, want 2", s.MinCount())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Empty the summary entirely and rebuild on recycled slots.
	if _, ok := s.Remove("c"); !ok {
		t.Fatal("Remove(c) failed")
	}
	if s.Len() != 0 || s.Total() != 0 || s.MinCount() != 0 {
		t.Errorf("summary not empty after removing all: Len=%d Total=%d", s.Len(), s.Total())
	}
	s.Insert("d", 4)
	if c, ok := s.Count("d"); !ok || c != 4 {
		t.Fatalf("Count(d) = %d,%v after rebuild on free-list", c, ok)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNodeFreeListReuse: churn through Remove+Insert and verify the node
// slab does not grow past its high-water mark — vacated slots are reused.
func TestNodeFreeListReuse(t *testing.T) {
	s := New(16)
	for i := 0; i < 16; i++ {
		s.Insert(fmt.Sprintf("i%d", i), int64(i))
	}
	slab := len(s.nodes)
	for round := 0; round < 100; round++ {
		victim := fmt.Sprintf("i%d", round%16)
		if _, ok := s.Remove(victim); !ok {
			t.Fatalf("round %d: Remove(%s) failed", round, victim)
		}
		s.Insert(victim, int64(round))
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if len(s.nodes) != slab {
		t.Errorf("node slab grew from %d to %d under remove/insert churn", slab, len(s.nodes))
	}
}

// TestBucketFreeListReuse: a single item climbing through many counts must
// recycle the one-bucket-per-count transitions rather than growing the
// bucket slab without bound.
func TestBucketFreeListReuse(t *testing.T) {
	s := New(4)
	s.Insert("a", 0)
	s.Insert("b", 0)
	for i := 0; i < 10000; i++ {
		s.Increment("a")
	}
	// Live buckets: {0: b} and {10000: a}. Everything else must have been
	// recycled through the free-list, so the slab stays tiny.
	if len(s.buckets) > 4 {
		t.Errorf("bucket slab holds %d slots after 10k bumps, want ≤ 4", len(s.buckets))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateZeroAlloc is the core guarantee of the slab layout: once
// warm, Increment / IncrementRandomMin / ReplaceRandomMin allocate nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New(256)
	items := make([]string, 256)
	labels := make([]string, 4096)
	for i := range labels {
		labels[i] = fmt.Sprintf("label-%d", i)
	}
	for i := range items {
		items[i] = labels[i]
		s.Insert(items[i], int64(i%7))
	}
	next := len(items)
	// Warm the structure through every transition shape once.
	for i := 0; i < 10000; i++ {
		s.Increment(items[i%len(items)])
		s.IncrementRandomMin(rng)
	}
	if avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 200; i++ {
			s.Increment(items[(i*31)%len(items)])
		}
		s.IncrementRandomMin(rng)
		_, evicted, _ := s.ReplaceRandomMin(labels[next%len(labels)], rng)
		next++
		// Keep items addressable so future Increments hit live labels.
		for j, it := range items {
			if it == evicted {
				items[j] = labels[(next-1)%len(labels)]
				break
			}
		}
	}); avg != 0 {
		t.Errorf("steady-state ingest allocates %v/run, want 0", avg)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
