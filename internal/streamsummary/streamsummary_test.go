package streamsummary

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptySummary(t *testing.T) {
	s := New(8)
	if s.Len() != 0 {
		t.Errorf("Len() = %d, want 0", s.Len())
	}
	if s.Total() != 0 {
		t.Errorf("Total() = %d, want 0", s.Total())
	}
	if s.MinCount() != 0 || s.MaxCount() != 0 {
		t.Errorf("Min/Max = %d/%d, want 0/0", s.MinCount(), s.MaxCount())
	}
	if s.NumMin() != 0 {
		t.Errorf("NumMin() = %d, want 0", s.NumMin())
	}
	if _, ok := s.Count("x"); ok {
		t.Error("Count on empty summary reported presence")
	}
	if _, ok := s.IncrementRandomMin(rand.New(rand.NewSource(1))); ok {
		t.Error("IncrementRandomMin succeeded on empty summary")
	}
	if _, _, ok := s.ReplaceRandomMin("x", rand.New(rand.NewSource(1))); ok {
		t.Error("ReplaceRandomMin succeeded on empty summary")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAndCount(t *testing.T) {
	s := New(4)
	s.Insert("a", 3)
	s.Insert("b", 1)
	s.Insert("c", 3)
	if got := s.Len(); got != 3 {
		t.Fatalf("Len() = %d, want 3", got)
	}
	if got := s.Total(); got != 7 {
		t.Fatalf("Total() = %d, want 7", got)
	}
	if c, ok := s.Count("a"); !ok || c != 3 {
		t.Errorf("Count(a) = %d,%v, want 3,true", c, ok)
	}
	if got := s.MinCount(); got != 1 {
		t.Errorf("MinCount() = %d, want 1", got)
	}
	if got := s.MaxCount(); got != 3 {
		t.Errorf("MaxCount() = %d, want 3", got)
	}
	if got := s.NumMin(); got != 1 {
		t.Errorf("NumMin() = %d, want 1", got)
	}
	if !s.Contains("b") || s.Contains("z") {
		t.Error("Contains wrong")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDescending(t *testing.T) {
	s := New(8)
	bins := []Bin{{"a", 9}, {"b", 5}, {"c", 5}, {"d", 5}, {"e", 2}, {"f", 1}, {"g", 1}}
	if err := s.LoadDescending(bins); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after load: %v", err)
	}
	if s.Len() != 7 || s.Total() != 28 || s.MinCount() != 1 || s.MaxCount() != 9 {
		t.Fatalf("len/total/min/max = %d/%d/%d/%d", s.Len(), s.Total(), s.MinCount(), s.MaxCount())
	}
	if s.NumMin() != 2 {
		t.Fatalf("NumMin = %d, want 2", s.NumMin())
	}
	for _, b := range bins {
		if c, ok := s.Count(b.Item); !ok || c != b.Count {
			t.Fatalf("Count(%s) = %d,%v, want %d", b.Item, c, ok, b.Count)
		}
	}
	// The loaded summary keeps working on the normal mutation paths.
	rng := rand.New(rand.NewSource(1))
	s.Increment("e")
	s.Increment("f")
	s.ReplaceRandomMin("h", rng)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after post-load mutations: %v", err)
	}
}

func TestLoadDescendingRejects(t *testing.T) {
	if err := New(4).LoadDescending([]Bin{{"a", 1}, {"b", 2}}); err == nil {
		t.Error("ascending input accepted")
	}
	if err := New(4).LoadDescending([]Bin{{"a", 2}, {"b", 0}}); err == nil {
		t.Error("zero count accepted")
	}
	if err := New(4).LoadDescending([]Bin{{"a", 2}, {"a", 1}}); err == nil {
		t.Error("duplicate item accepted")
	}
	s := New(4)
	s.Insert("x", 1)
	if err := s.LoadDescending([]Bin{{"a", 2}}); err == nil {
		t.Error("load into non-empty summary accepted")
	}
	// Empty load on an empty summary is fine.
	s2 := New(4)
	if err := s2.LoadDescending(nil); err != nil {
		t.Errorf("empty load: %v", err)
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// MaxInt64 is a legal count and collides with the descending-order
	// sentinel; the first bin must still get its bucket.
	s3 := New(4)
	if err := s3.LoadDescending([]Bin{{"big", 1<<63 - 1}, {"small", 1}}); err != nil {
		t.Fatalf("MaxInt64 load: %v", err)
	}
	if err := s3.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if c, ok := s3.Count("big"); !ok || c != 1<<63-1 {
		t.Errorf("Count(big) = %d,%v", c, ok)
	}
}

func TestInsertDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Insert did not panic")
		}
	}()
	s := New(4)
	s.Insert("a", 1)
	s.Insert("a", 2)
}

func TestInsertMiddleBucket(t *testing.T) {
	s := New(8)
	s.Insert("lo", 1)
	s.Insert("hi", 10)
	s.Insert("mid", 5) // exercises the interior walk
	bins := s.Bins()
	want := []Bin{{"lo", 1}, {"mid", 5}, {"hi", 10}}
	if len(bins) != len(want) {
		t.Fatalf("Bins() = %v", bins)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("bins[%d] = %v, want %v", i, bins[i], want[i])
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementMovesBuckets(t *testing.T) {
	s := New(4)
	s.Insert("a", 1)
	s.Insert("b", 1)
	if !s.Increment("a") {
		t.Fatal("Increment(a) reported absent")
	}
	if c, _ := s.Count("a"); c != 2 {
		t.Errorf("Count(a) = %d, want 2", c)
	}
	if c, _ := s.Count("b"); c != 1 {
		t.Errorf("Count(b) = %d, want 1", c)
	}
	if s.Increment("missing") {
		t.Error("Increment on missing item reported present")
	}
	if got := s.Total(); got != 3 {
		t.Errorf("Total() = %d, want 3", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementMergesIntoExistingBucket(t *testing.T) {
	s := New(4)
	s.Insert("a", 1)
	s.Insert("b", 2)
	s.Increment("a") // a joins b's bucket at count 2
	if s.NumMin() != 2 {
		t.Errorf("NumMin() = %d, want 2", s.NumMin())
	}
	if s.MinCount() != 2 {
		t.Errorf("MinCount() = %d, want 2", s.MinCount())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementRandomMin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(4)
	s.Insert("a", 1)
	s.Insert("b", 1)
	s.Insert("c", 5)
	prev, ok := s.IncrementRandomMin(rng)
	if !ok || prev != 1 {
		t.Fatalf("IncrementRandomMin = %d,%v, want 1,true", prev, ok)
	}
	// Exactly one of a, b moved to 2.
	ca, _ := s.Count("a")
	cb, _ := s.Count("b")
	if ca+cb != 3 {
		t.Errorf("counts a=%d b=%d, want sum 3", ca, cb)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceRandomMin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(4)
	s.Insert("a", 1)
	s.Insert("b", 9)
	prev, evicted, ok := s.ReplaceRandomMin("x", rng)
	if !ok || prev != 1 || evicted != "a" {
		t.Fatalf("ReplaceRandomMin = %d,%q,%v, want 1,a,true", prev, evicted, ok)
	}
	if s.Contains("a") {
		t.Error("evicted item still present")
	}
	if c, ok := s.Count("x"); !ok || c != 2 {
		t.Errorf("Count(x) = %d,%v, want 2,true", c, ok)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceRandomMinDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ReplaceRandomMin with existing item did not panic")
		}
	}()
	rng := rand.New(rand.NewSource(7))
	s := New(4)
	s.Insert("a", 1)
	s.ReplaceRandomMin("a", rng)
}

func TestRandomMinIsUniformAmongTies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const reps = 30000
	hits := map[string]int{}
	for r := 0; r < reps; r++ {
		s := New(4)
		s.Insert("a", 1)
		s.Insert("b", 1)
		s.Insert("c", 1)
		_, evicted, _ := s.ReplaceRandomMin("x", rng)
		hits[evicted]++
	}
	for _, k := range []string{"a", "b", "c"} {
		p := float64(hits[k]) / reps
		if p < 0.30 || p > 0.37 {
			t.Errorf("eviction probability of %s = %.3f, want ≈ 1/3", k, p)
		}
	}
}

func TestEachStopsEarly(t *testing.T) {
	s := New(4)
	s.Insert("a", 1)
	s.Insert("b", 2)
	s.Insert("c", 3)
	var seen []string
	s.Each(func(item string, count int64) bool {
		seen = append(seen, item)
		return len(seen) < 2
	})
	if len(seen) != 2 {
		t.Errorf("Each visited %d items, want 2", len(seen))
	}
	if seen[0] != "a" {
		t.Errorf("Each order starts with %q, want ascending (a)", seen[0])
	}
}

func TestBinsAscendingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(64)
	for i := 0; i < 50; i++ {
		s.Insert(fmt.Sprintf("i%d", i), int64(rng.Intn(20))+1)
	}
	bins := s.Bins()
	for i := 1; i < len(bins); i++ {
		if bins[i].Count < bins[i-1].Count {
			t.Fatalf("Bins not ascending at %d: %v then %v", i, bins[i-1], bins[i])
		}
	}
}

// TestRandomOperationSequence drives a long random mix of operations and
// validates structural invariants throughout, cross-checking counts against
// a naive map model.
func TestRandomOperationSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := New(32)
	model := map[string]int64{}
	nextID := 0
	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 && s.Len() < 64:
			item := fmt.Sprintf("n%d", nextID)
			nextID++
			c := int64(rng.Intn(3)) // 0 allowed at insert
			s.Insert(item, c)
			model[item] = c
		case op == 1 && s.Len() > 0:
			// Increment a random known item.
			for item := range model {
				s.Increment(item)
				model[item]++
				break
			}
		case op == 2 && s.Len() > 0:
			prev, ok := s.IncrementRandomMin(rng)
			if !ok {
				t.Fatal("IncrementRandomMin failed on non-empty summary")
			}
			// Find which model item moved: exactly one count changed.
			// Rebuild model from structure below instead.
			_ = prev
			model = rebuild(s)
		case op == 3 && s.Len() > 0:
			item := fmt.Sprintf("r%d", nextID)
			nextID++
			_, evicted, ok := s.ReplaceRandomMin(item, rng)
			if !ok {
				t.Fatal("ReplaceRandomMin failed on non-empty summary")
			}
			if _, had := model[evicted]; !had {
				t.Fatalf("evicted unknown item %q", evicted)
			}
			model = rebuild(s)
		}
		if step%512 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			verifyAgainstModel(t, s, model)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	verifyAgainstModel(t, s, model)
}

func rebuild(s *Summary) map[string]int64 {
	m := map[string]int64{}
	s.Each(func(item string, count int64) bool {
		m[item] = count
		return true
	})
	return m
}

func verifyAgainstModel(t *testing.T, s *Summary, model map[string]int64) {
	t.Helper()
	if s.Len() != len(model) {
		t.Fatalf("Len() = %d, model has %d", s.Len(), len(model))
	}
	var tot int64
	for item, want := range model {
		got, ok := s.Count(item)
		if !ok || got != want {
			t.Fatalf("Count(%q) = %d,%v, want %d,true", item, got, ok, want)
		}
		tot += want
	}
	if s.Total() != tot {
		t.Fatalf("Total() = %d, model sums to %d", s.Total(), tot)
	}
}

// TestQuickTotalMatchesIncrements property-tests that after any sequence of
// increments the total equals initial mass plus number of increments.
func TestQuickTotalMatchesIncrements(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(8)
		base := int64(0)
		for i := 0; i < 8; i++ {
			c := int64(i % 3)
			s.Insert(fmt.Sprintf("i%d", i), c)
			base += c
		}
		incs := int64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if s.Increment(fmt.Sprintf("i%d", int(op)%8)) {
					incs++
				}
			case 1:
				if _, ok := s.IncrementRandomMin(rng); ok {
					incs++
				}
			case 2:
				if _, _, ok := s.ReplaceRandomMin(fmt.Sprintf("x%d", incs), rng); ok {
					incs++
				}
			}
		}
		return s.Total() == base+incs && s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewNegativeCapacity(t *testing.T) {
	s := New(-5) // must not panic
	s.Insert("a", 1)
	if s.Len() != 1 {
		t.Fatal("insert after New(-5) failed")
	}
}
