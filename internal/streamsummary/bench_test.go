package streamsummary

import (
	"fmt"
	"math/rand"
	"testing"
)

// Microbenchmarks for the O(1) claims: increments and min operations must
// not degrade with the number of bins.

func benchSummary(bins int) (*Summary, []string) {
	s := New(bins)
	items := make([]string, bins)
	for i := range items {
		items[i] = fmt.Sprintf("i%d", i)
		s.Insert(items[i], int64(i%17))
	}
	return s, items
}

func BenchmarkIncrement(b *testing.B) {
	for _, bins := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			s, items := benchSummary(bins)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Increment(items[i%len(items)])
			}
		})
	}
}

func BenchmarkReplaceRandomMin(b *testing.B) {
	for _, bins := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			s, _ := benchSummary(bins)
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ReplaceRandomMin(fmt.Sprintf("n%d", i), rng)
			}
		})
	}
}

func BenchmarkIncrementRandomMin(b *testing.B) {
	s, _ := benchSummary(4096)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.IncrementRandomMin(rng)
	}
}
