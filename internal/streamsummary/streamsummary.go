// Package streamsummary implements the Stream-Summary data structure of
// Metwally, Agrawal and El Abbadi ("Efficient computation of frequent and
// top-k elements in data streams", ICDT 2005).
//
// A Summary maintains a set of (item, integer count) pairs supporting all the
// operations a Space-Saving sketch needs in O(1) time per stream row:
//
//   - test whether an item is present and increment its counter,
//   - find the minimum counter value,
//   - pick a uniformly random bin among those with the minimum value
//     (the random tie-breaking required by the consistency analysis of
//     Unbiased Space Saving, Ting 2018 §6.1),
//   - increment a minimum bin with or without replacing its label.
//
// The structure is a doubly-linked list of buckets in strictly increasing
// count order. Each bucket owns the set of items whose counter equals the
// bucket's count, stored in a slice so that a uniformly random member can be
// chosen in O(1). Incrementing an item moves it from its bucket to the
// adjacent bucket with count+1, creating or deleting buckets as needed; all
// of this is O(1) because counts only ever grow by exactly one.
package streamsummary

import "fmt"

// node is a single (item, count) bin. Its count is implied by the bucket it
// currently belongs to.
type node struct {
	item   string
	bucket *bucket
	idx    int // position of this node in bucket.nodes
}

// bucket groups all bins sharing one counter value.
type bucket struct {
	count      int64
	nodes      []*node
	prev, next *bucket
}

func (b *bucket) add(n *node) {
	n.bucket = b
	n.idx = len(b.nodes)
	b.nodes = append(b.nodes, n)
}

// remove deletes n from the bucket in O(1) by swapping with the last node.
func (b *bucket) remove(n *node) {
	last := len(b.nodes) - 1
	if n.idx != last {
		moved := b.nodes[last]
		b.nodes[n.idx] = moved
		moved.idx = n.idx
	}
	b.nodes[last] = nil
	b.nodes = b.nodes[:last]
}

// Summary is a Stream-Summary structure. The zero value is not usable; call
// New.
type Summary struct {
	index map[string]*node
	head  *bucket // bucket with the minimum count, nil when empty
	tail  *bucket // bucket with the maximum count, nil when empty
	total int64   // sum of all counters
}

// New returns an empty Summary with capacity hint cap (the expected number of
// bins; the structure itself does not enforce a maximum size — the sketch
// layered on top does).
func New(cap int) *Summary {
	if cap < 0 {
		cap = 0
	}
	return &Summary{index: make(map[string]*node, cap)}
}

// Len returns the number of bins currently stored.
func (s *Summary) Len() int { return len(s.index) }

// Total returns the sum of all counters.
func (s *Summary) Total() int64 { return s.total }

// Count returns item's counter and whether the item is present.
func (s *Summary) Count(item string) (int64, bool) {
	n, ok := s.index[item]
	if !ok {
		return 0, false
	}
	return n.bucket.count, true
}

// Contains reports whether item labels one of the bins.
func (s *Summary) Contains(item string) bool {
	_, ok := s.index[item]
	return ok
}

// MinCount returns the smallest counter value, or 0 when the summary is
// empty.
func (s *Summary) MinCount() int64 {
	if s.head == nil {
		return 0
	}
	return s.head.count
}

// MaxCount returns the largest counter value, or 0 when the summary is empty.
func (s *Summary) MaxCount() int64 {
	if s.tail == nil {
		return 0
	}
	return s.tail.count
}

// NumMin returns how many bins share the minimum counter value.
func (s *Summary) NumMin() int {
	if s.head == nil {
		return 0
	}
	return len(s.head.nodes)
}

// Insert adds a new bin (item, count). It panics if the item is already
// present; use Increment for existing items. Insert is O(1) when count is <=
// the current minimum or >= the current maximum (the only cases Space-Saving
// needs: fresh bins start at 0 or at Nmin+1) and O(#buckets) otherwise.
func (s *Summary) Insert(item string, count int64) {
	if _, ok := s.index[item]; ok {
		panic(fmt.Sprintf("streamsummary: duplicate insert of %q", item))
	}
	n := &node{item: item}
	s.index[item] = n
	s.total += count
	b := s.findOrMakeBucket(count)
	b.add(n)
}

// findOrMakeBucket locates the bucket with the given count, creating and
// splicing it into the list if absent.
func (s *Summary) findOrMakeBucket(count int64) *bucket {
	switch {
	case s.head == nil:
		b := &bucket{count: count}
		s.head, s.tail = b, b
		return b
	case count < s.head.count:
		b := &bucket{count: count, next: s.head}
		s.head.prev = b
		s.head = b
		return b
	case count > s.tail.count:
		b := &bucket{count: count, prev: s.tail}
		s.tail.next = b
		s.tail = b
		return b
	}
	// Walk from whichever end is nearer in count value. Fresh Space-Saving
	// bins are always at one of the extremes, so this path is rare.
	cur := s.head
	for cur != nil && cur.count < count {
		cur = cur.next
	}
	if cur != nil && cur.count == count {
		return cur
	}
	// cur is the first bucket with count > target (cur may be nil only if
	// count > tail.count, handled above). Insert before cur.
	b := &bucket{count: count, prev: cur.prev, next: cur}
	cur.prev.next = b
	cur.prev = b
	return b
}

// Increment adds 1 to item's counter, moving it to the adjacent bucket.
// It reports whether the item was present.
func (s *Summary) Increment(item string) bool {
	n, ok := s.index[item]
	if !ok {
		return false
	}
	s.bump(n)
	return true
}

// bump moves n from its bucket to the bucket with count+1, creating it if
// needed and removing the old bucket if it became empty. O(1).
func (s *Summary) bump(n *node) {
	b := n.bucket
	target := b.count + 1
	b.remove(n)
	next := b.next
	if next == nil || next.count != target {
		// Splice a fresh bucket right after b.
		nb := &bucket{count: target, prev: b, next: next}
		b.next = nb
		if next != nil {
			next.prev = nb
		} else {
			s.tail = nb
		}
		next = nb
	}
	next.add(n)
	if len(b.nodes) == 0 {
		s.unlink(b)
	}
	s.total++
}

// unlink removes an empty bucket from the list.
func (s *Summary) unlink(b *bucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		s.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

// IntN is the source of randomness used for tie-breaking: it must return a
// uniform integer in [0, n). math/rand.Rand.Intn satisfies it.
type IntN interface {
	Intn(n int) int
}

// randomMin returns a uniformly random node among the minimum-count bins.
func (s *Summary) randomMin(rng IntN) *node {
	b := s.head
	if b == nil {
		return nil
	}
	if len(b.nodes) == 1 {
		return b.nodes[0]
	}
	return b.nodes[rng.Intn(len(b.nodes))]
}

// IncrementRandomMin picks a uniformly random minimum bin and increments it,
// keeping its current label. It returns the previous minimum count, or false
// when the summary is empty.
func (s *Summary) IncrementRandomMin(rng IntN) (prevMin int64, ok bool) {
	n := s.randomMin(rng)
	if n == nil {
		return 0, false
	}
	prevMin = n.bucket.count
	s.bump(n)
	return prevMin, true
}

// ReplaceRandomMin picks a uniformly random minimum bin, increments it and
// relabels it to newItem. It returns the previous minimum count and the
// evicted label. It panics if newItem is already present.
func (s *Summary) ReplaceRandomMin(newItem string, rng IntN) (prevMin int64, evicted string, ok bool) {
	if _, dup := s.index[newItem]; dup {
		panic(fmt.Sprintf("streamsummary: ReplaceRandomMin with existing item %q", newItem))
	}
	n := s.randomMin(rng)
	if n == nil {
		return 0, "", false
	}
	prevMin = n.bucket.count
	evicted = n.item
	delete(s.index, evicted)
	n.item = newItem
	s.index[newItem] = n
	s.bump(n)
	return prevMin, evicted, true
}

// Bin is one (item, count) pair exported from the summary.
type Bin struct {
	Item  string
	Count int64
}

// Bins returns all bins in ascending count order. The slice is freshly
// allocated.
func (s *Summary) Bins() []Bin {
	out := make([]Bin, 0, len(s.index))
	for b := s.head; b != nil; b = b.next {
		for _, n := range b.nodes {
			out = append(out, Bin{Item: n.item, Count: b.count})
		}
	}
	return out
}

// Each calls fn for every bin in ascending count order; it stops early if fn
// returns false.
func (s *Summary) Each(fn func(item string, count int64) bool) {
	for b := s.head; b != nil; b = b.next {
		for _, n := range b.nodes {
			if !fn(n.item, b.count) {
				return
			}
		}
	}
}

// CheckInvariants validates internal consistency: strictly ascending bucket
// counts, correct back-links, index agreement and total. It is exported for
// tests and returns a descriptive error on the first violation found.
func (s *Summary) CheckInvariants() error {
	seen := 0
	var sum int64
	var prev *bucket
	for b := s.head; b != nil; b = b.next {
		if len(b.nodes) == 0 {
			return fmt.Errorf("empty bucket with count %d", b.count)
		}
		if prev != nil && prev.count >= b.count {
			return fmt.Errorf("bucket counts not strictly ascending: %d then %d", prev.count, b.count)
		}
		if b.prev != prev {
			return fmt.Errorf("bad prev link at bucket count %d", b.count)
		}
		for i, n := range b.nodes {
			if n.bucket != b {
				return fmt.Errorf("node %q has stale bucket pointer", n.item)
			}
			if n.idx != i {
				return fmt.Errorf("node %q has idx %d, want %d", n.item, n.idx, i)
			}
			if s.index[n.item] != n {
				return fmt.Errorf("index disagrees for %q", n.item)
			}
			seen++
			sum += b.count
		}
		prev = b
	}
	if s.tail != prev {
		return fmt.Errorf("tail pointer stale")
	}
	if seen != len(s.index) {
		return fmt.Errorf("list holds %d nodes, index holds %d", seen, len(s.index))
	}
	if sum != s.total {
		return fmt.Errorf("total %d, want %d", s.total, sum)
	}
	return nil
}
