// Package streamsummary implements the Stream-Summary data structure of
// Metwally, Agrawal and El Abbadi ("Efficient computation of frequent and
// top-k elements in data streams", ICDT 2005).
//
// A Summary maintains a set of (item, integer count) pairs supporting all the
// operations a Space-Saving sketch needs in O(1) time per stream row:
//
//   - test whether an item is present and increment its counter,
//   - find the minimum counter value,
//   - pick a uniformly random bin among those with the minimum value
//     (the random tie-breaking required by the consistency analysis of
//     Unbiased Space Saving, Ting 2018 §6.1),
//   - increment a minimum bin with or without replacing its label.
//
// A Summary is single-owner and unsynchronized; the slabs below are
// reused in place across operations, so nothing a caller receives aliases
// them — lookups return values, not slab references.
//
// Logically the structure is the classic one: buckets in strictly
// increasing count order, each owning the set of items whose counter equals
// the bucket's count. Incrementing an item moves it to the adjacent
// count+1 bucket, creating or retiring buckets as needed; all O(1) because
// counts only ever grow by exactly one.
//
// Storage layout (the part that differs from the textbook presentation):
// everything lives in three flat slabs addressed by int32 —
//
//   - nodes:   one (item, bucket, pos) record per bin, with an intrusive
//     free-list threading vacant slots through the bucket field;
//   - perm:    a permutation of the live node indices, grouped by bucket in
//     descending count order (maximum bucket first), so a bucket's members
//     are the contiguous range perm[start:end], the minimum bucket is the
//     final range, and a uniformly random minimum bin is one
//     bounds-checked load away — no pointer chase. Descending order puts
//     new minimums at the array's end, which keeps fill-phase inserts O(1);
//   - buckets: one (count, start, end) range record per distinct count,
//     recycled through an intrusive free-list (linked through the start
//     field) when a count empties.
//
// Incrementing a bin is a swap to its bucket's boundary plus two range
// adjustments; no memory is written outside the three slabs and the index
// map. After the fill phase the ingest path therefore performs zero heap
// allocations per row — there is nothing to allocate: no per-bucket
// slices, no linked-list cells, just fixed-width slab entries — and the GC
// never scans interior pointers.
package streamsummary

import (
	"fmt"
	"math"
)

// none marks an absent slab index (the nil of the int32-indexed layout).
const none = int32(-1)

// node is a single (item, count) bin stored in the node slab. Its count is
// implied by the bucket it currently belongs to. While a node is on the
// free-list, its bucket field holds the index of the next free node.
type node struct {
	item   string
	bucket int32 // owning bucket slab index; free-list link when vacant
	pos    int32 // position of this node in perm
}

// bucket is one distinct counter value: the nodes holding it are
// perm[start:end]; ranges partition perm with counts strictly descending
// left to right. While a bucket is on the free-list, its start field holds
// the index of the next free bucket.
type bucket struct {
	count      int64
	start, end int32
}

// Summary is a Stream-Summary structure. The zero value is not usable; call
// New.
type Summary struct {
	index      map[string]int32 // item -> node slab index
	nodes      []node
	perm       []int32 // live node indices grouped by bucket, counts descending
	buckets    []bucket
	freeNode   int32 // head of the vacant-node free-list, none when empty
	freeBucket int32 // head of the vacant-bucket free-list, none when empty
	total      int64 // sum of all counters
}

// New returns an empty Summary with capacity hint cap (the expected number of
// bins; the structure itself does not enforce a maximum size — the sketch
// layered on top does). All three slabs are pre-sized so a summary that
// stays within the hint reaches steady state without any slab growth: the
// bucket slab gets one extra slot because bump allocates the count+1 bucket
// before retiring the emptied one.
func New(cap int) *Summary {
	if cap < 0 {
		cap = 0
	}
	return &Summary{
		index:      make(map[string]int32, cap),
		nodes:      make([]node, 0, cap),
		perm:       make([]int32, 0, cap),
		buckets:    make([]bucket, 0, cap+1),
		freeNode:   none,
		freeBucket: none,
	}
}

// allocNode pops a vacant slot off the free-list or grows the slab.
func (s *Summary) allocNode(item string) int32 {
	if ni := s.freeNode; ni != none {
		s.freeNode = s.nodes[ni].bucket
		s.nodes[ni] = node{item: item}
		return ni
	}
	s.nodes = append(s.nodes, node{item: item})
	return int32(len(s.nodes) - 1)
}

// LoadDescending bulk-loads (item, count) pairs — counts non-increasing,
// all positive — into an empty summary in one pass: nodes and perm slots
// are appended in order, each run of equal counts becomes one bucket, and
// each item costs exactly one map store. Duplicate items are detected for
// free after the fact (a duplicate leaves the index smaller than the node
// count), so the load path performs a third of the map probes the
// insert-per-bin path pays. On error the summary is left partially
// loaded and must be discarded.
func (s *Summary) LoadDescending(bins []Bin) error {
	if len(s.perm) != 0 || len(s.nodes) != 0 {
		return fmt.Errorf("streamsummary: load into non-empty summary")
	}
	prev := int64(math.MaxInt64)
	bi := none
	for _, b := range bins {
		if b.Count <= 0 {
			return fmt.Errorf("streamsummary: load count %d for %q, want > 0", b.Count, b.Item)
		}
		if b.Count > prev {
			return fmt.Errorf("streamsummary: load input not in descending count order")
		}
		ni := int32(len(s.nodes))
		pos := int32(len(s.perm))
		// bi == none guards the first bin: a count of MaxInt64 collides
		// with prev's sentinel but still needs its bucket.
		if bi == none || b.Count < prev {
			bi = s.allocBucket(b.Count, pos, pos)
			prev = b.Count
		}
		s.nodes = append(s.nodes, node{item: b.Item, bucket: bi, pos: pos})
		s.perm = append(s.perm, ni)
		s.buckets[bi].end++
		s.index[b.Item] = ni
		s.total += b.Count
	}
	if len(s.index) != len(s.perm) {
		// Size mismatch proves a duplicate exists; rescan (error path
		// only) to name it for the caller's diagnostics.
		seen := make(map[string]struct{}, len(bins))
		for _, b := range bins {
			if _, dup := seen[b.Item]; dup {
				return fmt.Errorf("streamsummary: load lists %q twice", b.Item)
			}
			seen[b.Item] = struct{}{}
		}
		return fmt.Errorf("streamsummary: duplicate item in load")
	}
	return nil
}

// releaseNode pushes a node slot onto the free-list, clearing its item so
// the slab does not pin the string.
func (s *Summary) releaseNode(ni int32) {
	s.nodes[ni] = node{bucket: s.freeNode}
	s.freeNode = ni
}

// allocBucket pops a recycled bucket record or grows the bucket slab.
func (s *Summary) allocBucket(count int64, start, end int32) int32 {
	if bi := s.freeBucket; bi != none {
		s.freeBucket = s.buckets[bi].start
		s.buckets[bi] = bucket{count: count, start: start, end: end}
		return bi
	}
	s.buckets = append(s.buckets, bucket{count: count, start: start, end: end})
	return int32(len(s.buckets) - 1)
}

// releaseBucket pushes an empty bucket record onto the free-list, linking
// through the start field.
func (s *Summary) releaseBucket(bi int32) {
	s.buckets[bi] = bucket{start: s.freeBucket}
	s.freeBucket = bi
}

// Len returns the number of bins currently stored.
func (s *Summary) Len() int { return len(s.perm) }

// Total returns the sum of all counters.
func (s *Summary) Total() int64 { return s.total }

// Count returns item's counter and whether the item is present.
func (s *Summary) Count(item string) (int64, bool) {
	ni, ok := s.index[item]
	if !ok {
		return 0, false
	}
	return s.buckets[s.nodes[ni].bucket].count, true
}

// Contains reports whether item labels one of the bins.
func (s *Summary) Contains(item string) bool {
	_, ok := s.index[item]
	return ok
}

// MinCount returns the smallest counter value, or 0 when the summary is
// empty.
func (s *Summary) MinCount() int64 {
	if len(s.perm) == 0 {
		return 0
	}
	return s.buckets[s.nodes[s.perm[len(s.perm)-1]].bucket].count
}

// MaxCount returns the largest counter value, or 0 when the summary is empty.
func (s *Summary) MaxCount() int64 {
	if len(s.perm) == 0 {
		return 0
	}
	return s.buckets[s.nodes[s.perm[0]].bucket].count
}

// NumMin returns how many bins share the minimum counter value.
func (s *Summary) NumMin() int {
	L := int32(len(s.perm))
	if L == 0 {
		return 0
	}
	// The minimum bucket's range always ends at L.
	return int(L - s.buckets[s.nodes[s.perm[L-1]].bucket].start)
}

// Insert adds a new bin (item, count). It panics if the item is already
// present; use Increment for existing items. Insert is O(1) when count is
// <= the current minimum — the only case Space-Saving's fill phase feeds
// (fresh bins start at 0 or 1 while tracked bins are >= 1), and the order
// RestoreUnit feeds (descending) — and O(#buckets with a smaller count)
// otherwise: each such bucket rotates one element to open the slot.
func (s *Summary) Insert(item string, count int64) {
	if _, ok := s.index[item]; ok {
		panic(fmt.Sprintf("streamsummary: duplicate insert of %q", item))
	}
	ni := s.allocNode(item)
	s.index[item] = ni
	s.total += count

	hole := int32(len(s.perm))
	s.perm = append(s.perm, ni)
	// Rotate every bucket with a smaller count one slot right: its first
	// element moves into the hole past its end, and its range shifts.
	// The hole climbs to the insertion point; a new minimum stops at once.
	for hole > 0 {
		gi := s.nodes[s.perm[hole-1]].bucket
		g := &s.buckets[gi]
		if g.count >= count {
			break
		}
		first := s.perm[g.start]
		s.perm[hole] = first
		s.nodes[first].pos = hole
		hole = g.start
		g.start++
		g.end++
	}
	var bi int32
	if hole > 0 {
		if above := s.nodes[s.perm[hole-1]].bucket; s.buckets[above].count == count {
			bi = above
			s.buckets[bi].end++
		} else {
			bi = s.allocBucket(count, hole, hole+1)
		}
	} else {
		bi = s.allocBucket(count, 0, 1)
	}
	s.perm[hole] = ni
	s.nodes[ni].pos = hole
	s.nodes[ni].bucket = bi
}

// Remove deletes item's bin entirely, returning its counter value. The
// vacated node (and bucket, if it emptied) go onto the free-lists for
// reuse. O(#buckets with a smaller count): each rotates one element left
// to close the gap.
//
// Space-Saving itself never removes bins (evictions relabel in place), so
// no sketch path calls this; it exists for dynamic-universe maintenance
// layered on top — expiring decayed bins, dropping blocklisted keys — and
// it is what exercises the node free-list (see FuzzStreamSummaryOps).
func (s *Summary) Remove(item string) (count int64, ok bool) {
	ni, present := s.index[item]
	if !present {
		return 0, false
	}
	bi := s.nodes[ni].bucket
	b := &s.buckets[bi]
	count = b.count
	// Swap the node to the last slot of its bucket's range, shrink the
	// range, then rotate every later bucket one slot left over the hole.
	last := b.end - 1
	if p := s.nodes[ni].pos; p != last {
		other := s.perm[last]
		s.perm[p] = other
		s.nodes[other].pos = p
	}
	hole := last
	b.end--
	emptied := b.start == b.end
	top := int32(len(s.perm)) - 1
	for hole < top {
		gi := s.nodes[s.perm[hole+1]].bucket
		g := &s.buckets[gi]
		moved := s.perm[g.end-1]
		s.perm[hole] = moved
		s.nodes[moved].pos = hole
		hole = g.end - 1
		g.start--
		g.end--
	}
	s.perm = s.perm[:top]
	if emptied {
		s.releaseBucket(bi)
	}
	delete(s.index, item)
	s.releaseNode(ni)
	s.total -= count
	return count, true
}

// Increment adds 1 to item's counter, moving it to the adjacent bucket.
// It reports whether the item was present.
func (s *Summary) Increment(item string) bool {
	ni, ok := s.index[item]
	if !ok {
		return false
	}
	s.bump(ni)
	return true
}

// bump moves ni from its bucket to the count+1 bucket — the adjacent
// range to the left: one swap to the bucket's first slot plus two range
// adjustments. A needed bucket record is recycled off the free-list and
// an emptied one retired to it, so the operation is O(1) and
// allocation-free in steady state.
func (s *Summary) bump(ni int32) {
	// Slab headers don't change during a bump (only allocBucket can grow a
	// slab, and only the bucket one), so hoist them out of the indexing.
	nodes, perm := s.nodes, s.perm
	n := &nodes[ni]
	bi := n.bucket
	b := &s.buckets[bi]
	target := b.count + 1
	first := b.start
	if p := n.pos; p != first {
		other := perm[first]
		perm[p] = other
		nodes[other].pos = p
		perm[first] = ni
		n.pos = first
	}
	if first > 0 {
		if nbi := nodes[perm[first-1]].bucket; s.buckets[nbi].count == target {
			// Adjacent bucket already holds count+1: shift the boundary.
			b.start = first + 1
			s.buckets[nbi].end = first + 1
			n.bucket = nbi
			if b.start == b.end {
				s.releaseBucket(bi)
			}
			s.total++
			return
		}
	}
	// Splice a single-slot bucket at the boundary. allocBucket may grow the
	// bucket slab, so finish all reads/writes through b first.
	b.start = first + 1
	emptied := b.start == b.end
	nbi := s.allocBucket(target, first, first+1)
	n.bucket = nbi
	if emptied {
		s.releaseBucket(bi)
	}
	s.total++
}

// IntN is the source of randomness used for tie-breaking: it must return a
// uniform integer in [0, n). math/rand.Rand.Intn satisfies it.
type IntN interface {
	Intn(n int) int
}

// randomMin returns a uniformly random node index among the minimum-count
// bins, or none when empty. The minimum bucket is the final range
// perm[start:len(perm)], so the pick is a single indexed load.
func (s *Summary) randomMin(rng IntN) int32 {
	L := int32(len(s.perm))
	if L == 0 {
		return none
	}
	start := s.buckets[s.nodes[s.perm[L-1]].bucket].start
	if start == L-1 {
		return s.perm[L-1]
	}
	return s.perm[start+int32(rng.Intn(int(L-start)))]
}

// IncrementRandomMin picks a uniformly random minimum bin and increments it,
// keeping its current label. It returns the previous minimum count, or false
// when the summary is empty.
func (s *Summary) IncrementRandomMin(rng IntN) (prevMin int64, ok bool) {
	ni := s.randomMin(rng)
	if ni == none {
		return 0, false
	}
	prevMin = s.buckets[s.nodes[ni].bucket].count
	s.bump(ni)
	return prevMin, true
}

// ReplaceRandomMin picks a uniformly random minimum bin, increments it and
// relabels it to newItem. It returns the previous minimum count and the
// evicted label. It panics if newItem is already present.
func (s *Summary) ReplaceRandomMin(newItem string, rng IntN) (prevMin int64, evicted string, ok bool) {
	if _, dup := s.index[newItem]; dup {
		panic(fmt.Sprintf("streamsummary: ReplaceRandomMin with existing item %q", newItem))
	}
	ni := s.randomMin(rng)
	if ni == none {
		return 0, "", false
	}
	n := &s.nodes[ni]
	prevMin = s.buckets[n.bucket].count
	evicted = n.item
	delete(s.index, evicted)
	n.item = newItem
	s.index[newItem] = ni
	s.bump(ni)
	return prevMin, evicted, true
}

// Bin is one (item, count) pair exported from the summary.
type Bin struct {
	Item  string
	Count int64
}

// Bins returns all bins in ascending count order (perm stores counts
// descending, so this walks it backward). The slice is freshly allocated.
func (s *Summary) Bins() []Bin {
	out := make([]Bin, 0, len(s.perm))
	for i := len(s.perm) - 1; i >= 0; i-- {
		n := &s.nodes[s.perm[i]]
		out = append(out, Bin{Item: n.item, Count: s.buckets[n.bucket].count})
	}
	return out
}

// Each calls fn for every bin in ascending count order; it stops early if fn
// returns false.
func (s *Summary) Each(fn func(item string, count int64) bool) {
	for i := len(s.perm) - 1; i >= 0; i-- {
		n := &s.nodes[s.perm[i]]
		if !fn(n.item, s.buckets[n.bucket].count) {
			return
		}
	}
}

// CheckInvariants validates internal consistency: the perm array is a
// permutation of the live nodes, partitioned into contiguous bucket ranges
// with strictly ascending counts; positions, back-references, index and
// total mass agree; and every slab slot is either live or on exactly one
// free-list, with free slots properly scrubbed. It is exported for tests
// and returns a descriptive error on the first violation found.
func (s *Summary) CheckInvariants() error {
	L := int32(len(s.perm))
	if int(L) != len(s.index) {
		return fmt.Errorf("perm holds %d nodes, index holds %d", L, len(s.index))
	}
	seenNode := make([]bool, len(s.nodes))
	seenBucket := make([]bool, len(s.buckets))
	liveBuckets := 0
	var sum int64
	cur := none // bucket whose range we are inside
	var curEnd int32
	var prevCount int64
	for i := int32(0); i < L; i++ {
		ni := s.perm[i]
		if ni < 0 || int(ni) >= len(s.nodes) {
			return fmt.Errorf("perm[%d] = %d out of node slab range %d", i, ni, len(s.nodes))
		}
		if seenNode[ni] {
			return fmt.Errorf("node %d appears twice in perm", ni)
		}
		seenNode[ni] = true
		n := &s.nodes[ni]
		if n.pos != i {
			return fmt.Errorf("node %q has pos %d, want %d", n.item, n.pos, i)
		}
		if got, ok := s.index[n.item]; !ok || got != ni {
			return fmt.Errorf("index disagrees for %q", n.item)
		}
		bi := n.bucket
		if bi < 0 || int(bi) >= len(s.buckets) {
			return fmt.Errorf("node %q has bucket %d out of slab range %d", n.item, bi, len(s.buckets))
		}
		if i == curEnd {
			// A new bucket range must begin exactly here.
			b := &s.buckets[bi]
			if seenBucket[bi] {
				return fmt.Errorf("bucket %d owns two ranges", bi)
			}
			seenBucket[bi] = true
			liveBuckets++
			if b.start != i {
				return fmt.Errorf("bucket %d starts at %d, but its range begins at %d", bi, b.start, i)
			}
			if b.end <= b.start || b.end > L {
				return fmt.Errorf("bucket %d has bad range [%d,%d) with %d live", bi, b.start, b.end, L)
			}
			if cur != none && b.count >= prevCount {
				return fmt.Errorf("bucket counts not strictly descending: %d then %d", prevCount, b.count)
			}
			cur, curEnd, prevCount = bi, b.end, b.count
		} else if bi != cur {
			return fmt.Errorf("node %q sits inside bucket %d's range but claims bucket %d", n.item, cur, bi)
		}
		sum += prevCount
	}
	if curEnd != L {
		return fmt.Errorf("last bucket range ends at %d, want %d", curEnd, L)
	}
	if sum != s.total {
		return fmt.Errorf("total %d, want %d", s.total, sum)
	}
	// Free-list accounting: walk each free-list; the seen arrays double as
	// cycle and live/free-overlap detectors.
	freeBuckets := 0
	for bi := s.freeBucket; bi != none; bi = s.buckets[bi].start {
		if bi < 0 || int(bi) >= len(s.buckets) {
			return fmt.Errorf("free bucket index %d out of slab range %d", bi, len(s.buckets))
		}
		if seenBucket[bi] {
			return fmt.Errorf("bucket %d is both live and free (or free-list cycle)", bi)
		}
		seenBucket[bi] = true
		freeBuckets++
	}
	if liveBuckets+freeBuckets != len(s.buckets) {
		return fmt.Errorf("bucket slab holds %d slots, %d live + %d free", len(s.buckets), liveBuckets, freeBuckets)
	}
	freeNodes := 0
	for ni := s.freeNode; ni != none; ni = s.nodes[ni].bucket {
		if ni < 0 || int(ni) >= len(s.nodes) {
			return fmt.Errorf("free node index %d out of slab range %d", ni, len(s.nodes))
		}
		if seenNode[ni] {
			return fmt.Errorf("node %d is both live and free (or free-list cycle)", ni)
		}
		seenNode[ni] = true
		if s.nodes[ni].item != "" {
			return fmt.Errorf("free node %d still pins item %q", ni, s.nodes[ni].item)
		}
		freeNodes++
	}
	if int(L)+freeNodes != len(s.nodes) {
		return fmt.Errorf("node slab holds %d slots, %d live + %d free", len(s.nodes), L, freeNodes)
	}
	return nil
}
