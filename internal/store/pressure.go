package store

// Disk watermarks: the store polls free space on its filesystem and
// degrades instead of crashing when the disk fills. Below the soft
// watermark the store keeps appending but reports pressure so the owner
// can shed load and checkpoint+truncate aggressively; below the hard
// watermark appends are refused with ErrReadOnly (reads, checkpoints and
// recovery stay untouched — a read-only node still answers exactly).
// The disk.enospc faultpoint forces the free-space probe to report zero
// so the whole path is testable without filling a real disk.

import (
	"errors"
	"syscall"

	"repro/internal/faultinject"
)

// ErrReadOnly is returned (wrapped) by appends while the disk is below
// the hard watermark. The store re-probes on later appends and clears
// the condition itself once space is reclaimed — callers should map it
// to 503 + Retry-After, not tear anything down.
var ErrReadOnly = errors.New("store: disk below hard watermark; log is read-only")

// Disk pressure levels reported by Pressure.
const (
	// DiskHealthy: free space above both watermarks.
	DiskHealthy = 0
	// DiskSoft: free space below the soft watermark — keep appending,
	// but checkpoint and shed ahead of the hard stop.
	DiskSoft = 1
	// DiskHard: free space below the hard watermark — appends refuse
	// with ErrReadOnly until space returns.
	DiskHard = 2
)

// PressureString renders a Pressure level for status endpoints.
func PressureString(p int) string {
	switch p {
	case DiskSoft:
		return "soft"
	case DiskHard:
		return "read_only"
	default:
		return "healthy"
	}
}

// Pressure returns the store's current disk-pressure level. It is
// refreshed by the append path (every DiskCheckEvery appends while
// healthy, every append while degraded), so a quiescent store reports
// the level as of its last append attempt.
func (s *Store) Pressure() int { return int(s.pressure.Load()) }

// diskFree reports the bytes available to unprivileged writes on the
// filesystem holding path.
func diskFree(path string) (int64, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil {
		return 0, err
	}
	return int64(st.Bavail) * int64(st.Bsize), nil
}

// checkDisk re-probes free space and moves the pressure state machine,
// counting soft/hard transitions in Metrics. Probe errors keep the
// previous state: a transient statfs failure must not flap a healthy
// node into read-only or mask real pressure.
func (s *Store) checkDisk() {
	free, err := diskFree(s.opts.Dir)
	if err != nil {
		return
	}
	if faultinject.Hit("disk.enospc") {
		free = 0
	}
	var next int32
	switch {
	case free <= s.opts.DiskHardBytes:
		next = DiskHard
	case free <= s.opts.DiskSoftBytes:
		next = DiskSoft
	default:
		next = DiskHealthy
	}
	s.setPressure(next)
}

// setPressure swaps the pressure level in, counting and logging
// transitions.
func (s *Store) setPressure(next int32) {
	prev := s.pressure.Swap(next)
	if next == prev {
		return
	}
	switch next {
	case DiskSoft:
		s.met.DiskSoftTrips.Add(1)
		s.opts.Log.Warn("disk pressure changed",
			"from", PressureString(int(prev)), "to", PressureString(int(next)))
	case DiskHard:
		s.met.DiskHardTrips.Add(1)
		s.opts.Log.Error("disk below hard watermark; log is read-only",
			"from", PressureString(int(prev)))
	default:
		s.opts.Log.Info("disk pressure cleared", "from", PressureString(int(prev)))
	}
}
