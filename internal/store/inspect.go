package store

// SegmentReport describes one log segment for offline inspection.
type SegmentReport struct {
	// Path is the segment file.
	Path string
	// FirstLSN and LastLSN bound the valid records found.
	FirstLSN, LastLSN uint64
	// Records counts valid records; Size is the on-disk byte size.
	Records int
	Size    int64
	// Torn marks a segment whose scan stopped early; TornErr says why.
	Torn    bool
	TornErr string
}

// CheckpointSketch describes one sketch in the loaded checkpoint.
type CheckpointSketch struct {
	// Name and Kind identify the sketch.
	Name, Kind string
	// LSN is the record the checkpoint state covers through; Rows the
	// served-row counter at checkpoint time; Bytes the state blob size.
	LSN   uint64
	Rows  int64
	Bytes int64
}

// Report is Inspect's summary of a data directory.
type Report struct {
	// CheckpointGen is the newest committed checkpoint (0 = none) and
	// Cutoff its truncation LSN.
	CheckpointGen uint64
	Cutoff        uint64
	// Checkpoint lists the checkpointed sketches.
	Checkpoint []CheckpointSketch
	// Segments lists the log segments in LSN order.
	Segments []SegmentReport
	// LastLSN is the highest LSN found.
	LastLSN uint64
}

// Inspect summarizes a data directory read-only: the committed
// checkpoint, every segment's health, and — when each is non-nil — a
// callback per decoded record for detailed listings. Damaged records
// stop the record stream for that and later segments (mirroring
// recovery) but the per-segment reports still describe the damage.
func Inspect(dir string, each func(rec *Record)) (*Report, error) {
	rep := &Report{}
	if gen := latestCheckpointGen(dir); gen != 0 {
		man, err := loadManifest(dir, gen)
		if err != nil {
			return nil, err
		}
		rep.CheckpointGen, rep.Cutoff = gen, man.Cutoff
		for i := range man.Sketches {
			ms := &man.Sketches[i]
			rep.Checkpoint = append(rep.Checkpoint, CheckpointSketch{
				Name: ms.Spec.Name, Kind: ms.Spec.Kind, LSN: ms.LSN, Rows: ms.Rows, Bytes: ms.Size,
			})
		}
	}
	var deliver func(rec *Record) error
	if each != nil {
		deliver = func(rec *Record) error { each(rec); return nil }
	}
	segs, lastLSN, err := scanLog(dir, deliver)
	if err != nil {
		return nil, err
	}
	rep.LastLSN = lastLSN
	for i := range segs {
		sr := SegmentReport{
			Path: segs[i].path, FirstLSN: segs[i].firstLSN, LastLSN: segs[i].lastLSN(),
			Records: segs[i].records, Size: segs[i].size, Torn: segs[i].torn,
		}
		if segs[i].tornErr != nil {
			sr.TornErr = segs[i].tornErr.Error()
		}
		rep.Segments = append(rep.Segments, sr)
	}
	return rep, nil
}

// TypeName renders a record's type for display ("create", "ingest", …).
func (r *Record) TypeName() string { return recordTypeName(r.Type) }
