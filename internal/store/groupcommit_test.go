package store

// Group-commit fault tests: the ack-after-fsync contract under injected
// fsync stalls and failures. The two properties the server leans on:
//
//   - no acked row lost: WaitDurable returns nil only after a successful
//     fsync covered the LSN, so everything acknowledged is on stable
//     storage and replays after kill -9;
//   - un-fsynced acks are never sent: while fsyncs stall or fail, no
//     waiter unblocks — callers time out without acknowledging.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func openGroupCommit(t *testing.T, every time.Duration) *Store {
	t.Helper()
	st, err := Open(Options{Dir: t.TempDir(), Sync: SyncInterval, SyncEvery: every, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestGroupCommitAcksAfterSharedFsync appends a burst of batches and
// waits on each: every wait must resolve with the synced watermark at or
// past its LSN, and the whole burst must share far fewer fsyncs than a
// SyncAlways run would issue (that is the amortization group commit
// exists for).
func TestGroupCommitAcksAfterSharedFsync(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	st := openGroupCommit(t, 5*time.Millisecond)
	if !st.AckAfterFsync() {
		t.Fatal("AckAfterFsync = false on a group-commit store")
	}

	const batches = 64
	lsns := make([]uint64, batches)
	var wg sync.WaitGroup
	errs := make([]error, batches)
	for i := 0; i < batches; i++ {
		lsn, err := st.AppendIngest("clicks", []string{"a", "b", "c"}, nil, nil)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		lsns[i] = lsn
		wg.Add(1)
		go func(i int, lsn uint64) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			errs[i] = st.WaitDurable(ctx, lsn)
		}(i, lsn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("WaitDurable(%d): %v", lsns[i], err)
		}
	}
	if got := st.SyncedLSN(); got < lsns[batches-1] {
		t.Fatalf("SyncedLSN = %d after all waits returned, want >= %d", got, lsns[batches-1])
	}
	if syncs := st.Metrics().Syncs.Load(); syncs >= batches {
		t.Fatalf("group commit issued %d fsyncs for %d batches; wanted amortization", syncs, batches)
	}
	if st.Metrics().DurableWaits.Load() == 0 {
		t.Fatal("no WaitDurable call blocked; the burst never exercised group commit")
	}
}

// TestGroupCommitStallFsyncDelaysAck stalls the interval fsync: the ack
// must arrive only after the stalled flush completes, never before.
func TestGroupCommitStallFsyncDelaysAck(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	st := openGroupCommit(t, time.Millisecond)
	// One stall (50ms) on the next fsync, then clean.
	if err := faultinject.Enable("wal.stall-fsync:1:1"); err != nil {
		t.Fatal(err)
	}
	lsn, err := st.AppendIngest("clicks", []string{"x"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := st.WaitDurable(ctx, lsn); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("ack returned in %v, before the 50ms stalled fsync could have finished", elapsed)
	}
	if st.SyncedLSN() < lsn {
		t.Fatalf("SyncedLSN = %d after ack, want >= %d", st.SyncedLSN(), lsn)
	}
}

// TestGroupCommitFailFsyncNeverAcks makes every fsync fail: the append
// lands on the log, but no ack may be released while the failure lasts —
// the waiter times out. Once fsyncs heal, the retrying flusher covers
// the record and the same wait succeeds.
func TestGroupCommitFailFsyncNeverAcks(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	st := openGroupCommit(t, time.Millisecond)
	if err := faultinject.Enable("wal.fail-fsync"); err != nil {
		t.Fatal(err)
	}
	lsn, err := st.AppendIngest("clicks", []string{"y"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err = st.WaitDurable(ctx, lsn)
	if err == nil {
		t.Fatal("WaitDurable returned nil while every fsync fails: an un-fsynced record was acked")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("WaitDurable error = %v, want a deadline timeout", err)
	}
	if st.SyncedLSN() >= lsn {
		t.Fatalf("SyncedLSN advanced to %d under failing fsyncs", st.SyncedLSN())
	}
	if st.Metrics().SyncErrors.Load() == 0 {
		t.Fatal("SyncErrors did not count the injected failures")
	}

	// Heal the disk: the flusher's retry (dirty stays armed on error)
	// must cover the record without any new append.
	faultinject.Reset()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := st.WaitDurable(ctx2, lsn); err != nil {
		t.Fatalf("WaitDurable after fsyncs healed: %v", err)
	}
}

// TestGroupCommitAckedRowsSurviveCrash proves "no acked row lost": append
// and ack a batch group, abandon the store without closing it (the
// kill -9 analogue — Close would flush), and rebuild the directory. Every
// acked record must come back; the replay is bit-for-bit the log's.
func TestGroupCommitAckedRowsSurviveCrash(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir, Sync: SyncInterval, SyncEvery: time.Millisecond, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendCreate([]byte(`{"name":"clicks","kind":"unit","bins":64}`)); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 10; i++ {
		lsn, err := st.AppendIngest("clicks", []string{"a", "b"}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := st.WaitDurable(ctx, last); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	// "Crash": stop the flusher goroutine so it cannot touch the files
	// again, but skip Close's final sync — everything acked must already
	// be durable.
	close(st.loopDone)
	st.loopWG.Wait()

	rebuilt, err := Rebuild(dir)
	if err != nil {
		t.Fatalf("rebuild after crash: %v", err)
	}
	if rebuilt.Stats.LastLSN < last {
		t.Fatalf("rebuilt log ends at LSN %d, acked through %d — acked records lost", rebuilt.Stats.LastLSN, last)
	}
	sk, ok := rebuilt.Sketches["clicks"]
	if !ok {
		t.Fatal("acked sketch missing after crash recovery")
	}
	if sk.Rows != 20 {
		t.Fatalf("recovered %d rows, want 20 (10 acked batches × 2)", sk.Rows)
	}
}

// TestWaitDurableSyncPolicies pins the policy matrix: SyncAlways acks
// have already synced (fast path), SyncNever opts out entirely, and a
// closed store fails waiters instead of hanging them.
func TestWaitDurableSyncPolicies(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	always, err := Open(Options{Dir: t.TempDir(), Sync: SyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer always.Close()
	lsn, err := always.AppendIngest("s", []string{"a"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := always.WaitDurable(ctx, lsn); err != nil {
		t.Fatalf("SyncAlways WaitDurable: %v", err)
	}
	if always.SyncedLSN() < lsn {
		t.Fatalf("SyncAlways did not advance the durable watermark past %d", lsn)
	}

	never, err := Open(Options{Dir: t.TempDir(), Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer never.Close()
	if never.AckAfterFsync() {
		t.Fatal("AckAfterFsync = true under SyncNever")
	}
	if _, err := never.AppendIngest("s", []string{"a"}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := never.WaitDurable(context.Background(), 99); err != nil {
		t.Fatalf("SyncNever WaitDurable must be a no-op, got %v", err)
	}

	closed := openGroupCommit(t, time.Hour) // flusher will never tick
	lsn, err = closed.AppendIngest("s", []string{"a"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- closed.WaitDurable(context.Background(), lsn)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := closed.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		// Close fsyncs on the way out, so the waiter may legitimately
		// see the record become durable; what it must not do is hang.
		_ = err
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable hung across Close")
	}
}
