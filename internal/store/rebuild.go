package store

import (
	"fmt"

	uss "repro"
)

// RebuiltSketch is one sketch reconstructed by an Applier: its spec, the
// LSN its state reflects, served-row counters, and exactly one non-nil
// sketch field matching Spec.Kind.
type RebuiltSketch struct {
	// Spec is the sketch's configuration.
	Spec SketchSpec
	// LSN is the last log record applied to this sketch.
	LSN uint64
	// Rows is the served-row counter (checkpoint value plus replayed
	// rows).
	Rows int64
	// Dropped counts replayed rollup rows past the retention horizon.
	Dropped int64
	// Pushes counts replayed snapshot merges.
	Pushes int64

	// The reconstructed sketch; one field per kind.
	Unit     *uss.Sketch
	Weighted *uss.WeightedSketch
	Sharded  *uss.ShardedSketch
	Rollup   *uss.Rollup
}

// RecoverStats summarizes one recovery pass.
type RecoverStats struct {
	// CheckpointGen is the loaded checkpoint generation (0 = none).
	CheckpointGen uint64
	// Cutoff is the loaded checkpoint's truncation LSN.
	Cutoff uint64
	// Segments is the number of log segments seen.
	Segments int
	// LastLSN is the highest LSN found in the log.
	LastLSN uint64
	// Applied and Skipped count replayed records: Skipped records were
	// already covered by the checkpoint (LSN at or below their sketch's
	// gate) or targeted a missing sketch.
	Applied, Skipped int
	// TornTail reports whether replay stopped at damage (a torn tail
	// after a crash, or mid-log corruption).
	TornTail bool
	// Warnings lists non-fatal oddities (unknown names, duplicate
	// creates, undecodable snapshots), capped at a few dozen.
	Warnings []string
}

// RebuildResult is Rebuild's output: every live sketch plus the stats.
type RebuildResult struct {
	// Sketches maps sketch name to its reconstructed state.
	Sketches map[string]*RebuiltSketch
	// Stats summarizes the pass.
	Stats RecoverStats
}

const maxWarnings = 32

func (st *RecoverStats) warnf(format string, args ...any) {
	if len(st.Warnings) < maxWarnings {
		st.Warnings = append(st.Warnings, fmt.Sprintf(format, args...))
	}
}

// options renders a spec's seed as sketch construction options.
func (sp *SketchSpec) options() []uss.Option {
	if sp.Seed != 0 {
		return []uss.Option{uss.WithSeed(sp.Seed)}
	}
	return nil
}

// NewRebuilt constructs an empty sketch for a spec — the same
// constructor dispatch boot recovery uses for create records, exported
// so a replication follower builds replicated sketches through one code
// path.
func NewRebuilt(sp SketchSpec) (*RebuiltSketch, error) {
	if sp.Name == "" || sp.Bins <= 0 {
		return nil, fmt.Errorf("store: bad spec %+v", sp)
	}
	rb := &RebuiltSketch{Spec: sp}
	switch sp.Kind {
	case "unit":
		rb.Unit = uss.New(sp.Bins, sp.options()...)
	case "weighted":
		rb.Weighted = uss.NewWeighted(sp.Bins, sp.options()...)
	case "sharded":
		shards := sp.Shards
		if shards == 0 {
			shards = 8
		}
		rb.Sharded = uss.NewSharded(shards, sp.Bins, sp.options()...)
	case "rollup":
		r, err := uss.NewRollup(uss.RollupConfig{
			Bins: sp.Bins, WindowLength: sp.WindowLength, Retain: sp.Retain, Seed: sp.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("store: sketch %q: %w", sp.Name, err)
		}
		rb.Rollup = r
	default:
		return nil, fmt.Errorf("store: sketch %q has unknown kind %q", sp.Name, sp.Kind)
	}
	return rb, nil
}

// RestoreState loads a checkpoint-encoded state blob (AppendBinary for
// unit/weighted, AppendShards for sharded, AppendWindows for rollup)
// into an empty rebuilt sketch. Exported because cluster anti-entropy
// restores a rejoining node's partition from a peer's copy through the
// same per-kind dispatch checkpoint recovery uses.
func (rb *RebuiltSketch) RestoreState(state []byte) error {
	switch {
	case rb.Unit != nil:
		return rb.Unit.UnmarshalBinary(state)
	case rb.Weighted != nil:
		return rb.Weighted.UnmarshalBinary(state)
	case rb.Sharded != nil:
		return rb.Sharded.RestoreShards(state)
	case rb.Rollup != nil:
		return rb.Rollup.RestoreWindows(state)
	}
	return fmt.Errorf("store: restore into unconstructed sketch")
}

// ApplyIngest replays one ingest batch through the same per-kind update
// paths the live server uses. This mirrors internal/server's applyBatch
// (minus its locking and metrics) — the two dispatches must stay in
// lockstep or recovery stops being bit-identical to live ingest; the
// cross-process TestKillDashNineRecovery in cmd/ussd pins the pair. It
// is exported because follower apply runs replicated ingest records
// through it too (under the server's entry lock).
func (rb *RebuiltSketch) ApplyIngest(items []string, ws []float64, ats []int64) {
	switch {
	case rb.Unit != nil:
		rb.Unit.UpdateAll(items)
	case rb.Weighted != nil:
		for i, it := range items {
			w := 1.0
			if i < len(ws) {
				w = ws[i]
			}
			rb.Weighted.Update(it, w)
		}
	case rb.Sharded != nil:
		rb.Sharded.UpdateBatch(items)
	case rb.Rollup != nil:
		for i, it := range items {
			var at int64
			if i < len(ats) {
				at = ats[i]
			}
			if !rb.Rollup.Update(it, at) {
				rb.Dropped++
			}
		}
	}
	rb.Rows += int64(len(items))
}

// ApplySnapshot replays one pushed snapshot through the DecodeBins →
// MergeBins fast path, exactly as the live push handler does (the
// lockstep twin of internal/server's applyPush — keep them identical).
// The weighted sketch is replaced; callers holding a pointer to the old
// one must re-read rb.Weighted after a successful apply.
func (rb *RebuiltSketch) ApplySnapshot(red uss.Reduction, blob []byte) error {
	if rb.Weighted == nil {
		return fmt.Errorf("snapshot pushed into non-weighted sketch %q", rb.Spec.Name)
	}
	pushed, err := uss.DecodeBins(blob)
	if err != nil {
		return err
	}
	m := rb.Spec.Bins
	merged := uss.MergeBins(m, red, rb.Weighted.Bins(), pushed)
	nw, err := uss.NewWeightedFromBins(m, merged, rb.Spec.options()...)
	if err != nil {
		return err
	}
	rb.Weighted = nw
	rb.Pushes++
	return nil
}

// parseReduction validates a snapshot record's reduction byte.
func parseReduction(b byte) (uss.Reduction, error) {
	r := uss.Reduction(b)
	switch r {
	case uss.Pairwise, uss.Pivotal, uss.MisraGries:
		return r, nil
	default:
		return 0, fmt.Errorf("unknown reduction byte %d", b)
	}
}

// Applier is the transport-neutral record applier: a set of rebuilt
// sketches plus per-sketch LSN gates, fed decoded WAL records in LSN
// order from any source — the on-disk log tail (boot recovery, `uss wal
// replay`) or a primary's replication stream (follower apply). Every
// consumer shares the same dispatch, so "replayed" and "replicated"
// state are bit-identical by construction. Not safe for concurrent use;
// callers that serve reads from the same sketches (the follower) apply
// under their own per-sketch locks.
type Applier struct {
	// Sketches maps sketch name to its reconstructed state.
	Sketches map[string]*RebuiltSketch
	// Stats accumulates apply bookkeeping across the Applier's life.
	Stats RecoverStats

	gate map[string]uint64
}

// NewApplier returns an empty Applier: no sketches, no gates.
func NewApplier() *Applier {
	return &Applier{
		Sketches: make(map[string]*RebuiltSketch),
		gate:     make(map[string]uint64),
	}
}

// LoadCheckpoint seeds the applier from dir's newest committed
// checkpoint generation, restoring every sketch's state and setting its
// replay gate to its checkpoint LSN. A dir with no checkpoint is a
// no-op. Call before Apply.
func (a *Applier) LoadCheckpoint(dir string) error {
	gen := latestCheckpointGen(dir)
	if gen == 0 {
		return nil
	}
	man, err := loadManifest(dir, gen)
	if err != nil {
		return err
	}
	a.Stats.CheckpointGen = gen
	a.Stats.Cutoff = man.Cutoff
	for i := range man.Sketches {
		ms := &man.Sketches[i]
		blob, err := loadCheckpointBlob(dir, gen, ms)
		if err != nil {
			return err
		}
		rb, err := NewRebuilt(ms.Spec)
		if err != nil {
			return err
		}
		if err := rb.RestoreState(blob); err != nil {
			return fmt.Errorf("store: restore %q from checkpoint: %w", ms.Spec.Name, err)
		}
		rb.LSN, rb.Rows, rb.Pushes, rb.Dropped = ms.LSN, ms.Rows, ms.Pushes, ms.Dropped
		a.Sketches[ms.Spec.Name] = rb
		a.gate[ms.Spec.Name] = ms.LSN
	}
	return nil
}

// Apply replays one decoded record, honouring the per-sketch LSN gate:
// a record at or below its sketch's gate (already covered by the
// checkpoint, or already applied) is skipped, so double-apply is
// impossible no matter how the record stream resumes or repeats.
// Records for unknown sketches and undecodable snapshots are skipped
// and reported in Stats.Warnings, never fatal — the applier's contract
// is salvage, not veto.
func (a *Applier) Apply(rec *Record) {
	if rec.LSN <= a.gate[rec.Name] {
		a.Stats.Skipped++
		return
	}
	switch rec.Type {
	case TypeCreate:
		if _, taken := a.Sketches[rec.Name]; taken {
			a.Stats.warnf("lsn %d: create %q: already exists, skipped", rec.LSN, rec.Name)
			a.Stats.Skipped++
			return
		}
		rb, err := NewRebuilt(rec.Spec)
		if err != nil {
			a.Stats.warnf("lsn %d: create %q: %v", rec.LSN, rec.Name, err)
			a.Stats.Skipped++
			return
		}
		rb.LSN = rec.LSN
		a.Sketches[rec.Name] = rb
	case TypeDelete:
		if _, ok := a.Sketches[rec.Name]; !ok {
			a.Stats.warnf("lsn %d: delete %q: no such sketch", rec.LSN, rec.Name)
			a.Stats.Skipped++
			return
		}
		delete(a.Sketches, rec.Name)
	case TypeIngest:
		rb, ok := a.Sketches[rec.Name]
		if !ok {
			a.Stats.warnf("lsn %d: ingest into missing sketch %q", rec.LSN, rec.Name)
			a.Stats.Skipped++
			return
		}
		rb.ApplyIngest(rec.Items, rec.Weights, rec.Ats)
		rb.LSN = rec.LSN
	case TypeSnapshot:
		rb, ok := a.Sketches[rec.Name]
		if !ok {
			a.Stats.warnf("lsn %d: snapshot push into missing sketch %q", rec.LSN, rec.Name)
			a.Stats.Skipped++
			return
		}
		red, err := parseReduction(rec.Reduction)
		if err != nil {
			a.Stats.warnf("lsn %d: snapshot push into %q: %v", rec.LSN, rec.Name, err)
			a.Stats.Skipped++
			return
		}
		if err := rb.ApplySnapshot(red, rec.Blob); err != nil {
			a.Stats.warnf("lsn %d: snapshot push into %q: %v", rec.LSN, rec.Name, err)
			a.Stats.Skipped++
			return
		}
		rb.LSN = rec.LSN
	default:
		a.Stats.warnf("lsn %d: unknown record type %d", rec.LSN, rec.Type)
		a.Stats.Skipped++
		return
	}
	a.gate[rec.Name] = rec.LSN
	a.Stats.Applied++
}

// Rebuild reconstructs every sketch from dir's newest checkpoint plus
// the log tail, read-only (nothing is truncated or written — safe on a
// live or foreign data directory, though the result is then a snapshot
// in time). It is the boot-recovery and `uss wal replay` entry point:
// an Applier seeded from the checkpoint, fed the log tail in LSN order.
func Rebuild(dir string) (*RebuildResult, error) {
	a := NewApplier()
	if err := a.LoadCheckpoint(dir); err != nil {
		return nil, err
	}
	segs, lastLSN, err := scanLog(dir, func(rec *Record) error {
		a.Apply(rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	a.Stats.Segments = len(segs)
	a.Stats.LastLSN = lastLSN
	for i := range segs {
		if segs[i].torn {
			a.Stats.TornTail = true
		}
	}
	return &RebuildResult{Sketches: a.Sketches, Stats: a.Stats}, nil
}
