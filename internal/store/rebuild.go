package store

import (
	"fmt"

	uss "repro"
)

// RebuiltSketch is one sketch reconstructed by Rebuild: its spec, the
// LSN its state reflects, served-row counters, and exactly one non-nil
// sketch field matching Spec.Kind.
type RebuiltSketch struct {
	// Spec is the sketch's configuration.
	Spec SketchSpec
	// LSN is the last log record applied to this sketch.
	LSN uint64
	// Rows is the served-row counter (checkpoint value plus replayed
	// rows).
	Rows int64
	// Dropped counts replayed rollup rows past the retention horizon.
	Dropped int64
	// Pushes counts replayed snapshot merges.
	Pushes int64

	// The reconstructed sketch; one field per kind.
	Unit     *uss.Sketch
	Weighted *uss.WeightedSketch
	Sharded  *uss.ShardedSketch
	Rollup   *uss.Rollup
}

// RecoverStats summarizes one recovery pass.
type RecoverStats struct {
	// CheckpointGen is the loaded checkpoint generation (0 = none).
	CheckpointGen uint64
	// Cutoff is the loaded checkpoint's truncation LSN.
	Cutoff uint64
	// Segments is the number of log segments seen.
	Segments int
	// LastLSN is the highest LSN found in the log.
	LastLSN uint64
	// Applied and Skipped count replayed records: Skipped records were
	// already covered by the checkpoint (LSN at or below their sketch's
	// gate) or targeted a missing sketch.
	Applied, Skipped int
	// TornTail reports whether replay stopped at damage (a torn tail
	// after a crash, or mid-log corruption).
	TornTail bool
	// Warnings lists non-fatal oddities (unknown names, duplicate
	// creates, undecodable snapshots), capped at a few dozen.
	Warnings []string
}

// RebuildResult is Rebuild's output: every live sketch plus the stats.
type RebuildResult struct {
	// Sketches maps sketch name to its reconstructed state.
	Sketches map[string]*RebuiltSketch
	// Stats summarizes the pass.
	Stats RecoverStats
}

const maxWarnings = 32

func (st *RecoverStats) warnf(format string, args ...any) {
	if len(st.Warnings) < maxWarnings {
		st.Warnings = append(st.Warnings, fmt.Sprintf(format, args...))
	}
}

// options renders a spec's seed as sketch construction options.
func (sp *SketchSpec) options() []uss.Option {
	if sp.Seed != 0 {
		return []uss.Option{uss.WithSeed(sp.Seed)}
	}
	return nil
}

// newRebuilt constructs an empty sketch for a spec.
func newRebuilt(sp SketchSpec) (*RebuiltSketch, error) {
	if sp.Name == "" || sp.Bins <= 0 {
		return nil, fmt.Errorf("store: bad spec %+v", sp)
	}
	rb := &RebuiltSketch{Spec: sp}
	switch sp.Kind {
	case "unit":
		rb.Unit = uss.New(sp.Bins, sp.options()...)
	case "weighted":
		rb.Weighted = uss.NewWeighted(sp.Bins, sp.options()...)
	case "sharded":
		shards := sp.Shards
		if shards == 0 {
			shards = 8
		}
		rb.Sharded = uss.NewSharded(shards, sp.Bins, sp.options()...)
	case "rollup":
		r, err := uss.NewRollup(uss.RollupConfig{
			Bins: sp.Bins, WindowLength: sp.WindowLength, Retain: sp.Retain, Seed: sp.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("store: sketch %q: %w", sp.Name, err)
		}
		rb.Rollup = r
	default:
		return nil, fmt.Errorf("store: sketch %q has unknown kind %q", sp.Name, sp.Kind)
	}
	return rb, nil
}

// restoreState loads a checkpoint state blob into an empty rebuilt
// sketch.
func (rb *RebuiltSketch) restoreState(state []byte) error {
	switch {
	case rb.Unit != nil:
		return rb.Unit.UnmarshalBinary(state)
	case rb.Weighted != nil:
		return rb.Weighted.UnmarshalBinary(state)
	case rb.Sharded != nil:
		return rb.Sharded.RestoreShards(state)
	case rb.Rollup != nil:
		return rb.Rollup.RestoreWindows(state)
	}
	return fmt.Errorf("store: restore into unconstructed sketch")
}

// applyIngest replays one ingest batch through the same per-kind update
// paths the live server uses. This mirrors internal/server's applyBatch
// (minus its locking and metrics) — the two dispatches must stay in
// lockstep or recovery stops being bit-identical to live ingest; the
// cross-process TestKillDashNineRecovery in cmd/ussd pins the pair.
func (rb *RebuiltSketch) applyIngest(items []string, ws []float64, ats []int64) {
	switch {
	case rb.Unit != nil:
		rb.Unit.UpdateAll(items)
	case rb.Weighted != nil:
		for i, it := range items {
			w := 1.0
			if i < len(ws) {
				w = ws[i]
			}
			rb.Weighted.Update(it, w)
		}
	case rb.Sharded != nil:
		rb.Sharded.UpdateBatch(items)
	case rb.Rollup != nil:
		for i, it := range items {
			var at int64
			if i < len(ats) {
				at = ats[i]
			}
			if !rb.Rollup.Update(it, at) {
				rb.Dropped++
			}
		}
	}
	rb.Rows += int64(len(items))
}

// applySnapshot replays one pushed snapshot through the DecodeBins →
// MergeBins fast path, exactly as the live push handler does (the
// lockstep twin of internal/server's applyPush — keep them identical).
func (rb *RebuiltSketch) applySnapshot(red uss.Reduction, blob []byte) error {
	if rb.Weighted == nil {
		return fmt.Errorf("snapshot pushed into non-weighted sketch %q", rb.Spec.Name)
	}
	pushed, err := uss.DecodeBins(blob)
	if err != nil {
		return err
	}
	m := rb.Spec.Bins
	merged := uss.MergeBins(m, red, rb.Weighted.Bins(), pushed)
	nw, err := uss.NewWeightedFromBins(m, merged, rb.Spec.options()...)
	if err != nil {
		return err
	}
	rb.Weighted = nw
	rb.Pushes++
	return nil
}

// parseReduction validates a snapshot record's reduction byte.
func parseReduction(b byte) (uss.Reduction, error) {
	r := uss.Reduction(b)
	switch r {
	case uss.Pairwise, uss.Pivotal, uss.MisraGries:
		return r, nil
	default:
		return 0, fmt.Errorf("unknown reduction byte %d", b)
	}
}

// Rebuild reconstructs every sketch from dir's newest checkpoint plus
// the log tail, read-only (nothing is truncated or written — safe on a
// live or foreign data directory, though the result is then a snapshot
// in time). Each sketch starts from its checkpoint state (when present)
// and replays exactly the records with LSN above its checkpoint LSN, so
// double-apply is impossible; records for unknown sketches or damaged
// trailing log bytes are skipped and reported in Stats.
func Rebuild(dir string) (*RebuildResult, error) {
	res := &RebuildResult{Sketches: make(map[string]*RebuiltSketch)}
	gate := make(map[string]uint64)

	if gen := latestCheckpointGen(dir); gen != 0 {
		man, err := loadManifest(dir, gen)
		if err != nil {
			return nil, err
		}
		res.Stats.CheckpointGen = gen
		res.Stats.Cutoff = man.Cutoff
		for i := range man.Sketches {
			ms := &man.Sketches[i]
			blob, err := loadCheckpointBlob(dir, gen, ms)
			if err != nil {
				return nil, err
			}
			rb, err := newRebuilt(ms.Spec)
			if err != nil {
				return nil, err
			}
			if err := rb.restoreState(blob); err != nil {
				return nil, fmt.Errorf("store: restore %q from checkpoint: %w", ms.Spec.Name, err)
			}
			rb.LSN, rb.Rows, rb.Pushes, rb.Dropped = ms.LSN, ms.Rows, ms.Pushes, ms.Dropped
			res.Sketches[ms.Spec.Name] = rb
			gate[ms.Spec.Name] = ms.LSN
		}
	}

	segs, lastLSN, err := scanLog(dir, func(rec *Record) error {
		if rec.LSN <= gate[rec.Name] {
			res.Stats.Skipped++
			return nil
		}
		switch rec.Type {
		case recCreate:
			if _, taken := res.Sketches[rec.Name]; taken {
				res.Stats.warnf("lsn %d: create %q: already exists, skipped", rec.LSN, rec.Name)
				res.Stats.Skipped++
				return nil
			}
			rb, err := newRebuilt(rec.Spec)
			if err != nil {
				res.Stats.warnf("lsn %d: create %q: %v", rec.LSN, rec.Name, err)
				res.Stats.Skipped++
				return nil
			}
			rb.LSN = rec.LSN
			res.Sketches[rec.Name] = rb
		case recDelete:
			if _, ok := res.Sketches[rec.Name]; !ok {
				res.Stats.warnf("lsn %d: delete %q: no such sketch", rec.LSN, rec.Name)
				res.Stats.Skipped++
				return nil
			}
			delete(res.Sketches, rec.Name)
		case recIngest:
			rb, ok := res.Sketches[rec.Name]
			if !ok {
				res.Stats.warnf("lsn %d: ingest into missing sketch %q", rec.LSN, rec.Name)
				res.Stats.Skipped++
				return nil
			}
			rb.applyIngest(rec.Items, rec.Weights, rec.Ats)
			rb.LSN = rec.LSN
		case recSnapshot:
			rb, ok := res.Sketches[rec.Name]
			if !ok {
				res.Stats.warnf("lsn %d: snapshot push into missing sketch %q", rec.LSN, rec.Name)
				res.Stats.Skipped++
				return nil
			}
			red, err := parseReduction(rec.Reduction)
			if err != nil {
				res.Stats.warnf("lsn %d: snapshot push into %q: %v", rec.LSN, rec.Name, err)
				res.Stats.Skipped++
				return nil
			}
			if err := rb.applySnapshot(red, rec.Blob); err != nil {
				res.Stats.warnf("lsn %d: snapshot push into %q: %v", rec.LSN, rec.Name, err)
				res.Stats.Skipped++
				return nil
			}
			rb.LSN = rec.LSN
		}
		res.Stats.Applied++
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats.Segments = len(segs)
	res.Stats.LastLSN = lastLSN
	for i := range segs {
		if segs[i].torn {
			res.Stats.TornTail = true
		}
	}
	return res, nil
}
