package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// EncodeCheckpointBundle serializes dir's newest committed checkpoint
// generation for transport: the manifest JSON followed by each sketch's
// state blob (manifest order), every piece framed with the log's
// len|crc32 framing. gen is 0 (with a nil bundle) when the directory has
// no checkpoint — a follower then starts from an empty state and streams
// the log from LSN 1.
func EncodeCheckpointBundle(dir string) (bundle []byte, gen uint64, err error) {
	gen = latestCheckpointGen(dir)
	if gen == 0 {
		return nil, 0, nil
	}
	man, err := loadManifest(dir, gen)
	if err != nil {
		return nil, 0, err
	}
	data, err := json.Marshal(man)
	if err != nil {
		return nil, 0, fmt.Errorf("store: encode bundle manifest: %w", err)
	}
	bundle = AppendFramed(nil, data)
	for i := range man.Sketches {
		blob, err := loadCheckpointBlob(dir, gen, &man.Sketches[i])
		if err != nil {
			return nil, 0, err
		}
		bundle = AppendFramed(bundle, blob)
	}
	return bundle, gen, nil
}

// InstallCheckpointBundle writes a transported checkpoint bundle into dir
// as a committed generation, with the same staging-then-rename discipline
// local checkpoints use (manifest present = generation valid). Blobs are
// CRC-checked against the manifest before anything is installed. The
// caller opens the store afterwards; Open derives the next LSN from the
// installed manifest when the log is empty.
func InstallCheckpointBundle(dir string, bundle []byte) (gen uint64, err error) {
	manData, rest, err := CutFrame(bundle)
	if err != nil || manData == nil {
		return 0, fmt.Errorf("store: bundle manifest frame: %v", err)
	}
	var man manifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return 0, fmt.Errorf("store: parse bundle manifest: %w", err)
	}
	if man.Generation == 0 {
		return 0, fmt.Errorf("store: bundle manifest has generation 0")
	}
	blobs := make([][]byte, 0, len(man.Sketches))
	for i := range man.Sketches {
		ms := &man.Sketches[i]
		var blob []byte
		blob, rest, err = CutFrame(rest)
		if err != nil {
			return 0, fmt.Errorf("store: bundle blob for %q: %w", ms.Spec.Name, err)
		}
		if blob == nil {
			return 0, fmt.Errorf("store: bundle truncated before blob for %q", ms.Spec.Name)
		}
		if int64(len(blob)) != ms.Size || crc32.ChecksumIEEE(blob) != ms.CRC {
			return 0, fmt.Errorf("store: bundle blob for %q fails its CRC", ms.Spec.Name)
		}
		blobs = append(blobs, blob)
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("store: bundle has %d trailing bytes", len(rest))
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(dir, fmt.Sprintf(".tmp-%s", cpDirName(man.Generation)))
	if err := os.RemoveAll(tmp); err != nil {
		return 0, fmt.Errorf("store: clear bundle staging: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return 0, fmt.Errorf("store: bundle staging: %w", err)
	}
	for i := range man.Sketches {
		ms := &man.Sketches[i]
		if err := writeFileSync(filepath.Join(tmp, ms.File), blobs[i]); err != nil {
			return 0, fmt.Errorf("store: write bundle state for %q: %w", ms.Spec.Name, err)
		}
	}
	if err := writeFileSync(filepath.Join(tmp, manifestName), manData); err != nil {
		return 0, fmt.Errorf("store: write bundle manifest: %w", err)
	}
	final := filepath.Join(dir, cpDirName(man.Generation))
	if err := os.RemoveAll(final); err != nil {
		return 0, fmt.Errorf("store: clear bundle target: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("store: install bundle: %w", err)
	}
	if err := fsyncDir(dir); err != nil {
		return 0, fmt.Errorf("store: sync data dir: %w", err)
	}
	return man.Generation, nil
}
