//go:build !race

package store

// raceEnabled reports whether the race detector is compiled in. The
// alloc-bound tests consult it: under -race, sync.Pool intentionally
// drops items at random, so pooled buffers cannot hold a deterministic
// allocs/op bound.
const raceEnabled = false
