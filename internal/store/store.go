package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

// The three fsync policies. SyncAlways fsyncs before every append
// returns — an acknowledged record survives power loss. SyncInterval
// fsyncs on a timer (Options.SyncEvery), bounding loss to one interval.
// SyncNever leaves flushing to the OS page cache.
const (
	SyncAlways SyncPolicy = iota
	SyncInterval
	SyncNever
)

// String renders the policy as its flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -fsync flag values always|interval|never.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// Options parameterizes Open.
type Options struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment past this size (default
	// 64 MiB).
	SegmentBytes int64
	// DiskSoftBytes is the soft free-space watermark: below it the
	// store reports DiskSoft pressure so the owner sheds and
	// checkpoints ahead of the hard stop (default 256 MiB).
	DiskSoftBytes int64
	// DiskHardBytes is the hard free-space watermark: below it appends
	// refuse with ErrReadOnly (default 64 MiB).
	DiskHardBytes int64
	// DiskCheckEvery is how many appends pass between free-space probes
	// while healthy; degraded stores probe on every append so recovery
	// is prompt (default 64).
	DiskCheckEvery int
	// GroupCommit makes the store's owner acknowledge appends only after
	// a covering fsync (gate acks on WaitDurable). Meaningful with
	// SyncInterval, where one interval fsync covers every append since
	// the previous one — the group commit that amortizes the per-batch
	// fsync cost of SyncAlways while keeping its "an acked record
	// survives power loss" guarantee. SyncAlways already acks after
	// fsync; under SyncNever WaitDurable is a no-op.
	GroupCommit bool
	// FsyncHist, when non-nil, receives every active-segment fsync's
	// latency in nanoseconds (exported as a /metrics histogram).
	FsyncHist *obs.Histogram
	// GroupCommitHist, when non-nil, receives the number of records each
	// successful fsync newly covered — the group-commit batch size.
	GroupCommitHist *obs.Histogram
	// Log receives structured warnings — pressure transitions, fsync
	// failures (default: discard).
	Log *slog.Logger
}

func (o *Options) defaults() {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.DiskSoftBytes <= 0 {
		o.DiskSoftBytes = 256 << 20
	}
	if o.DiskHardBytes <= 0 {
		o.DiskHardBytes = 64 << 20
	}
	if o.DiskCheckEvery <= 0 {
		o.DiskCheckEvery = 64
	}
	if o.Log == nil {
		o.Log = obs.NopLogger()
	}
	o.Log = o.Log.With("component", "store")
}

// maxRetainedBuf is the encode buffer's high-water mark: one oversized
// batch must not pin a giant buffer in the store forever.
const maxRetainedBuf = 4 << 20

// Metrics are the store's monotonic counters, safe to read concurrently.
type Metrics struct {
	// Appends counts records appended.
	Appends atomic.Int64
	// Bytes counts framed bytes written to the log.
	Bytes atomic.Int64
	// Syncs counts explicit fsyncs of the active segment.
	Syncs atomic.Int64
	// Rotations counts segment rotations.
	Rotations atomic.Int64
	// Checkpoints counts committed checkpoint generations.
	Checkpoints atomic.Int64
	// SyncErrors counts fsyncs that failed (the interval flusher
	// retries on the next tick; SyncAlways appends report the error).
	SyncErrors atomic.Int64
	// DiskSoftTrips counts transitions into DiskSoft pressure.
	DiskSoftTrips atomic.Int64
	// DiskHardTrips counts transitions into DiskHard (read-only) mode.
	DiskHardTrips atomic.Int64
	// ReadOnlyRejects counts appends refused with ErrReadOnly.
	ReadOnlyRejects atomic.Int64
	// DurableWaits counts WaitDurable calls that actually blocked on an
	// fsync (group-commit acks that waited for the interval flusher).
	DurableWaits atomic.Int64
}

// Store is the append side of the log: it owns the active segment and
// the checkpoint directory. Appends are serialized internally; one Store
// owns its data directory exclusively. Open recovers the torn tail of a
// crashed log before appending continues.
type Store struct {
	opts Options
	met  Metrics

	mu       sync.Mutex
	f        *os.File // active segment
	fsize    int64
	segFirst uint64 // first LSN of the active segment
	segRecs  int    // records in the active segment
	buf      []byte // reused frame encode buffer
	cpGen    uint64 // last committed checkpoint generation
	closed   bool

	notify chan struct{} // closed and replaced on every append (WaitForLSN)

	syncedLSN  atomic.Uint64 // highest LSN covered by a successful fsync
	syncNotify chan struct{} // closed and replaced when syncedLSN advances (WaitDurable)

	pressure   atomic.Int32 // disk pressure level (pressure.go)
	sinceCheck int          // appends since the last free-space probe; guarded by mu

	dirty    atomic.Bool // unsynced appends (SyncInterval)
	loopDone chan struct{}
	loopWG   sync.WaitGroup
}

// Open prepares dir for appending: it creates the directory layout if
// missing, scans the existing log to find the next LSN, truncates a torn
// record off the last segment (the expected crash artifact), and opens a
// fresh or resumed active segment. Open does not replay state — use
// Rebuild (offline) or the server's recovery for that, before appending.
func Open(opts Options) (*Store, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Options.Dir is required")
	}
	if err := os.MkdirAll(walDir(opts.Dir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	segs, lastLSN, err := scanLog(opts.Dir, nil)
	if err != nil {
		return nil, err
	}
	s := &Store{opts: opts, loopDone: make(chan struct{}), notify: make(chan struct{}), syncNotify: make(chan struct{})}
	s.cpGen = latestCheckpointGen(opts.Dir)

	// A data dir with a checkpoint but no log (a follower that just
	// installed a checkpoint bundle, or a log fully truncated by
	// checkpointing and then lost) must not restart LSNs from 1: the
	// checkpoint already covers LSNs up to its high watermark, and reusing
	// them would make the gated replay skip new records. Resume numbering
	// above everything the checkpoint covers.
	if lastLSN == 0 && s.cpGen != 0 {
		if man, err := loadManifest(opts.Dir, s.cpGen); err == nil {
			lastLSN = man.Cutoff
			for i := range man.Sketches {
				if l := man.Sketches[i].LSN; l > lastLSN {
					lastLSN = l
				}
			}
		}
	}

	// Truncate the torn tail of the final segment so appends resume on a
	// clean record boundary. Damage in earlier segments is left in place:
	// replay already stops there, and rewriting history is not the append
	// path's job.
	if n := len(segs); n > 0 && segs[n-1].torn {
		tail := segs[n-1]
		if err := os.Truncate(tail.path, tail.validLen); err != nil {
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
		if tail.validLen == 0 {
			// Not even a magic header survived; rewrite it below by
			// resuming into a fresh file at the same first LSN.
			if err := os.Remove(tail.path); err != nil {
				return nil, fmt.Errorf("store: drop empty torn segment: %w", err)
			}
			segs = segs[:n-1]
			if lastLSN >= tail.firstLSN {
				lastLSN = tail.firstLSN - 1
			}
		}
	}

	next := lastLSN + 1
	if n := len(segs); n > 0 && !segs[n-1].torn && segs[n-1].size < opts.SegmentBytes {
		// Resume appending into the last segment.
		tail := segs[n-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: reopen segment: %w", err)
		}
		s.f, s.fsize, s.segFirst, s.segRecs = f, tail.validLen, tail.firstLSN, tail.records
	} else if err := s.newSegment(next); err != nil {
		return nil, err
	}

	// Seed the pressure state so a store opened on an already-full disk
	// refuses appends from the first call instead of the 65th.
	s.checkDisk()

	if opts.Sync == SyncInterval {
		s.loopWG.Add(1)
		go s.syncLoop()
	}
	return s, nil
}

// newSegment rotates to a fresh segment whose first record will be lsn.
// Caller holds mu (or is Open).
func (s *Store) newSegment(lsn uint64) error {
	if s.f != nil {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: sync rotated segment: %w", err)
		}
		// Everything before the rotation point is on stable storage now.
		s.markSynced(lsn - 1)
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("store: close rotated segment: %w", err)
		}
		s.met.Rotations.Add(1)
	}
	path := filepath.Join(walDir(s.opts.Dir), segName(lsn))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: write segment header: %w", err)
	}
	if err := fsyncDir(walDir(s.opts.Dir)); err != nil {
		f.Close()
		return fmt.Errorf("store: sync wal dir: %w", err)
	}
	s.f, s.fsize, s.segFirst, s.segRecs = f, int64(len(segMagic)), lsn, 0
	return nil
}

// append writes one sealed frame (header already patched by sealFrame)
// and returns the record's LSN. Caller holds mu. The frame arrives as an
// explicit argument so encodes can happen outside the lock: the in-lock
// Append* paths pass the store-owned stage buffer, while AppendIngest
// passes a pooled buffer its caller encoded concurrently with other
// batches (the batch-sharded half of group commit).
func (s *Store) append(frame []byte) (uint64, error) {
	if s.closed {
		return 0, fmt.Errorf("store: append to closed store")
	}
	// Disk watermark gate: probe every DiskCheckEvery appends while
	// healthy, every append while degraded so the read-only condition
	// clears as soon as space returns.
	s.sinceCheck++
	if s.pressure.Load() != DiskHealthy || s.sinceCheck >= s.opts.DiskCheckEvery {
		s.sinceCheck = 0
		s.checkDisk()
	}
	if s.pressure.Load() == DiskHard {
		s.met.ReadOnlyRejects.Add(1)
		return 0, fmt.Errorf("%w (free space under %d bytes)", ErrReadOnly, s.opts.DiskHardBytes)
	}
	lsn := s.segFirst + uint64(s.segRecs)
	if s.fsize >= s.opts.SegmentBytes {
		if err := s.newSegment(lsn); err != nil {
			return 0, err
		}
	}
	if faultinject.Hit("wal.torn-write") {
		// Injected crash artifact: a prefix of the frame reaches the file,
		// then the "process dies" — the store wedges so nothing appends
		// after the tear, exactly like a real power cut mid-write.
		s.f.Write(frame[:len(frame)/2])
		s.f.Sync()
		s.closed = true
		close(s.notify)
		s.notify = make(chan struct{})
		close(s.syncNotify)
		s.syncNotify = make(chan struct{})
		return 0, fmt.Errorf("store: append record: injected torn write")
	}
	if _, err := s.f.Write(frame); err != nil {
		// A failed WAL write is almost always the disk filling under us
		// between probes. Roll the partial frame back so the tail stays
		// a clean record boundary, flip to read-only and report it as
		// such — degrade, don't wedge.
		s.f.Truncate(s.fsize)
		s.setPressure(DiskHard)
		s.met.ReadOnlyRejects.Add(1)
		return 0, fmt.Errorf("store: append record: %w: %v", ErrReadOnly, err)
	}
	s.fsize += int64(len(frame))
	s.segRecs++
	s.met.Appends.Add(1)
	s.met.Bytes.Add(int64(len(frame)))
	switch s.opts.Sync {
	case SyncAlways:
		if err := s.syncActive(); err != nil {
			return 0, fmt.Errorf("store: fsync record: %w", err)
		}
	case SyncInterval:
		s.dirty.Store(true)
	}
	// Wake WAL-stream long-polls blocked in WaitForLSN.
	close(s.notify)
	s.notify = make(chan struct{})
	return lsn, nil
}

// stage resets the reused encode buffer, reserving the 8-byte frame
// header as a placeholder, and returns it for payload appends. sealFrame
// patches the header in once the payload is encoded, so each record is
// staged and written without copying the payload twice.
func (s *Store) stage() []byte {
	if cap(s.buf) > maxRetainedBuf {
		s.buf = nil
	}
	s.buf = append(s.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	return s.buf
}

// AppendCreate logs a sketch creation. cfg is the SketchSpec-shaped JSON
// the sketch was created from.
func (s *Store) AppendCreate(cfg []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload := append(s.stage(), TypeCreate)
	payload = append(payload, cfg...)
	s.sealFrame(payload)
	return s.append(s.buf)
}

// AppendDelete logs a sketch deletion.
func (s *Store) AppendDelete(name string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload := append(s.stage(), TypeDelete)
	payload = append(payload, name...)
	s.sealFrame(payload)
	return s.append(s.buf)
}

// encBuf is a pooled per-batch frame encode buffer; batchEncPool lets
// concurrent ingest handlers frame their batches outside the store lock,
// so under group commit the only serialized work per batch is the buffer
// write itself.
type encBuf struct{ b []byte }

var batchEncPool = sync.Pool{New: func() any { return new(encBuf) }}

// AppendIngest logs one ingest batch for a sketch: the item column plus
// optional weights and timestamps (pass nil for columns the kind does not
// use). The frame is encoded into a pooled buffer before the store lock
// is taken — concurrent callers encode their batches in parallel and
// serialize only on the final buffer write — and steady-state appends
// stay allocation-free.
func (s *Store) AppendIngest(name string, items []string, ws []float64, ats []int64) (uint64, error) {
	eb := batchEncPool.Get().(*encBuf)
	frame := append(eb.b[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	frame = appendIngestPayload(frame, name, items, ws, ats)
	sealFrameHeader(frame)
	s.mu.Lock()
	lsn, err := s.append(frame)
	s.mu.Unlock()
	if cap(frame) <= maxRetainedBuf {
		eb.b = frame
		batchEncPool.Put(eb)
	}
	return lsn, err
}

// AppendSnapshot logs a pushed wire-v2 snapshot and the reduction it was
// merged with.
func (s *Store) AppendSnapshot(name string, reduction byte, blob []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload := append(s.stage(), TypeSnapshot)
	payload = appendLenPrefixed(payload, name)
	payload = append(payload, reduction)
	payload = append(payload, blob...)
	s.sealFrame(payload)
	return s.append(s.buf)
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.f == nil {
		return nil
	}
	return s.syncActive()
}

// syncActive fsyncs the active segment, counting successes and failures,
// honoring the wal.stall-fsync and wal.fail-fsync faultpoints, and
// advancing the durable watermark WaitDurable gates on. Caller holds mu.
func (s *Store) syncActive() error {
	faultinject.Sleep("wal.stall-fsync", 50*time.Millisecond)
	if faultinject.Hit("wal.fail-fsync") {
		s.met.SyncErrors.Add(1)
		s.opts.Log.Warn("fsync failed", "err", "injected failure", "lsn", s.segFirst+uint64(s.segRecs)-1)
		return fmt.Errorf("store: fsync: injected failure")
	}
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		s.met.SyncErrors.Add(1)
		s.opts.Log.Warn("fsync failed", "err", err, "lsn", s.segFirst+uint64(s.segRecs)-1)
		return err
	}
	s.opts.FsyncHist.Record(int64(time.Since(start)))
	s.met.Syncs.Add(1)
	last := s.segFirst + uint64(s.segRecs) - 1
	if covered := int64(last) - int64(s.syncedLSN.Load()); covered > 0 {
		// The batch this fsync made durable — 1 under SyncAlways, the
		// whole inter-tick window under group commit.
		s.opts.GroupCommitHist.Record(covered)
	}
	s.markSynced(last)
	return nil
}

// markSynced records that every LSN up to and including last is on
// stable storage and wakes WaitDurable waiters. Caller holds mu (or is
// single-threaded in Open).
func (s *Store) markSynced(last uint64) {
	if last == 0 || last <= s.syncedLSN.Load() {
		return
	}
	s.syncedLSN.Store(last)
	close(s.syncNotify)
	s.syncNotify = make(chan struct{})
}

// LastLSN returns the highest assigned LSN (0 when the log is empty).
func (s *Store) LastLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segFirst + uint64(s.segRecs) - 1
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.opts.Dir }

// WireObs attaches observability sinks after Open: the fsync-latency and
// group-commit batch histograms plus a structured logger. The server
// calls this from AttachStore, so every embedder that hands its store to
// a server gets wired without touching its Open call. Nil arguments
// leave the current sink in place.
func (s *Store) WireObs(fsync, group *obs.Histogram, log *slog.Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fsync != nil {
		s.opts.FsyncHist = fsync
	}
	if group != nil {
		s.opts.GroupCommitHist = group
	}
	if log != nil {
		s.opts.Log = log.With("component", "store")
	}
}

// Metrics returns the store's counters for scraping.
func (s *Store) Metrics() *Metrics { return &s.met }

// Close flushes and closes the active segment. The store is unusable
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.notify)
	s.notify = make(chan struct{})
	close(s.syncNotify)
	s.syncNotify = make(chan struct{})
	s.mu.Unlock()
	if s.opts.Sync == SyncInterval {
		close(s.loopDone)
		s.loopWG.Wait()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if err == nil {
		s.markSynced(s.segFirst + uint64(s.segRecs) - 1)
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// syncLoop is the SyncInterval flusher.
func (s *Store) syncLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.loopDone:
			return
		case <-t.C:
			if s.dirty.Swap(false) {
				s.mu.Lock()
				if !s.closed && s.f != nil {
					if err := s.syncActive(); err != nil {
						// The appends are still unflushed: re-arm dirty
						// so the next tick retries instead of silently
						// dropping the interval's durability.
						s.dirty.Store(true)
					}
				}
				s.mu.Unlock()
			}
		}
	}
}

// sealFrameHeader writes the length+CRC header into a frame's reserved
// 8-byte placeholder. The buffer need not belong to the store — the
// pooled ingest encode seals outside the lock.
func sealFrameHeader(buf []byte) {
	payload := buf[frameOverhead:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
}

// sealFrame seals the staged record and adopts buf (possibly regrown by
// payload appends) as the store's reusable stage buffer.
func (s *Store) sealFrame(buf []byte) {
	sealFrameHeader(buf)
	s.buf = buf
}

// appendLenPrefixed appends a uvarint-length-prefixed string.
func appendLenPrefixed(dst []byte, v string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}
