// Package store is ussd's durability subsystem: a segmented append-only
// write-ahead log plus periodic per-sketch checkpoints, so the sketch
// state agents pushed and the rows the server acknowledged survive a
// crash. The WAL records the server's mutating operations — sketch
// creation and deletion (manifest records), ingest batches, and pushed
// wire-v2 snapshots — as CRC32-framed, length-prefixed records; a
// checkpoint persists every live sketch's full state (wire-v2 frames)
// together with the log sequence number it covers, after which the
// segments it supersedes are deleted.
//
// # Log layout
//
// A data directory holds the log and the checkpoints:
//
//	<dir>/wal/00000000000000000001.wal    segment: 8-byte magic, then records
//	<dir>/wal/00000000000000002381.wal    next segment (name = first LSN)
//	<dir>/cp-00000000000000000004/        one checkpoint generation
//	    0000.state                        per-sketch state blob (wire v2)
//	    manifest.json                     written last; presence = validity
//
// Every record is framed as
//
//	uint32 LE payload length | uint32 LE CRC32 (IEEE, over the payload) |
//	payload (type byte + body)
//
// and is assigned a log sequence number (LSN) implicitly: a segment file
// is named after its first record's LSN, and records number sequentially
// within it. Segments rotate at Options.SegmentBytes.
//
// # Recovery
//
// Recovery loads the newest checkpoint generation with a valid manifest,
// restores each sketch from its state blob, then replays the log tail:
// every record whose LSN is higher than its sketch's checkpoint LSN is
// re-applied through the same code paths the live server uses (ingest
// batches through the batched update paths, pushed snapshots through
// DecodeBins → MergeBins). A torn record at the log's tail — the expected
// crash artifact — truncates the log there; corruption in the middle of
// the log stops replay at the damage and salvages the prefix, never
// panicking (FuzzWALRecord pins this).
//
// # Durability contract
//
// With Options.Sync == SyncAlways every append returns only after fsync,
// so a record the caller acknowledged is on stable storage. SyncInterval
// bounds loss to Options.SyncEvery; SyncNever leaves flushing to the OS.
// Checkpoint commits always fsync their files and directories and install
// the manifest atomically, so a crash mid-checkpoint leaves the previous
// generation (and the un-truncated log) authoritative.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
)

// Record types. The type byte leads every record payload. Exported so
// transports (the replication follower) can dispatch decoded records
// without round-tripping through display names.
const (
	TypeCreate   = byte(1) // sketch created: body = SketchSpec JSON
	TypeDelete   = byte(2) // sketch deleted: body = name bytes
	TypeIngest   = byte(3) // ingest batch: body = name + row columns
	TypeSnapshot = byte(4) // pushed snapshot: body = name + reduction + wire-v2 blob
)

// frameOverhead is the per-record framing cost: length + CRC.
const frameOverhead = 8

// maxRecordBytes rejects absurd lengths while scanning (a corrupt length
// prefix must not drive a giant allocation).
const maxRecordBytes = 256 << 20

// segMagic opens every segment file.
var segMagic = [8]byte{'U', 'S', 'S', 'W', 'A', 'L', 'v', '1'}

// ingest-record column flags.
const (
	colWeights = 1 << 0
	colAts     = 1 << 1
)

// SketchSpec is the sketch configuration carried by create records and
// checkpoint manifests. Its JSON shape is the server's create-request
// body, so the log stays readable with standard tools.
type SketchSpec struct {
	// Name is the sketch's registry key.
	Name string `json:"name"`
	// Kind is the sketch flavour: unit, weighted, sharded or rollup.
	Kind string `json:"kind"`
	// Bins is the bin budget (per shard for sharded, per window for
	// rollup).
	Bins int `json:"bins"`
	// Shards is the shard count (sharded kind only).
	Shards int `json:"shards,omitempty"`
	// Seed fixes the sketch randomness; a non-zero seed makes recovery
	// replay bit-identical to the live ingest it re-runs.
	Seed int64 `json:"seed,omitempty"`
	// WindowLength is the rollup window duration.
	WindowLength int64 `json:"window_length,omitempty"`
	// Retain bounds retained rollup windows (0 = keep all).
	Retain int `json:"retain,omitempty"`
}

// Record is one decoded WAL record, as delivered by replay and the
// inspect path. Exactly the fields matching Type are populated.
type Record struct {
	// LSN is the record's log sequence number.
	LSN uint64
	// Type is one of the Type* record types.
	Type byte
	// Spec is the created sketch's configuration (create records).
	Spec SketchSpec
	// SpecJSON is the raw configuration body (create records).
	SpecJSON []byte
	// Name is the target sketch (delete, ingest and snapshot records).
	Name string
	// Items, Weights, Ats are the ingest batch's row columns. Weights
	// and Ats are nil when the batch carried none.
	Items   []string
	Weights []float64
	Ats     []int64
	// Reduction is the merge reduction a pushed snapshot was applied
	// with (snapshot records).
	Reduction byte
	// Blob is the pushed wire-v2 snapshot (snapshot records). It aliases
	// the scan buffer and must be copied if retained.
	Blob []byte
}

// appendIngestPayload encodes an ingest record's payload: type byte,
// name, column flags, row count, then the item, weight and timestamp
// columns. It only appends, so a caller-reused buffer makes steady-state
// encoding allocation-free.
func appendIngestPayload(dst []byte, name string, items []string, ws []float64, ats []int64) []byte {
	dst = append(dst, TypeIngest)
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	var flags byte
	if len(ws) > 0 {
		flags |= colWeights
	}
	if len(ats) > 0 {
		flags |= colAts
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for _, it := range items {
		dst = binary.AppendUvarint(dst, uint64(len(it)))
		dst = append(dst, it...)
	}
	if flags&colWeights != 0 {
		for i := range items {
			w := 1.0
			if i < len(ws) {
				w = ws[i]
			}
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(w))
		}
	}
	if flags&colAts != 0 {
		for i := range items {
			var at int64
			if i < len(ats) {
				at = ats[i]
			}
			dst = binary.AppendVarint(dst, at)
		}
	}
	return dst
}

// decodeRecord parses one record payload into r (which keeps its LSN).
// Item strings are copied out of payload; Blob aliases it.
func decodeRecord(payload []byte, r *Record) error {
	if len(payload) == 0 {
		return fmt.Errorf("store: empty record payload")
	}
	r.Type = payload[0]
	body := payload[1:]
	switch r.Type {
	case TypeCreate:
		if err := json.Unmarshal(body, &r.Spec); err != nil {
			return fmt.Errorf("store: create record: %w", err)
		}
		if r.Spec.Name == "" {
			return fmt.Errorf("store: create record without a name")
		}
		r.SpecJSON = body
		r.Name = r.Spec.Name
	case TypeDelete:
		if len(body) == 0 {
			return fmt.Errorf("store: delete record without a name")
		}
		r.Name = string(body)
	case TypeIngest:
		return decodeIngestBody(body, r)
	case TypeSnapshot:
		name, rest, err := cutString(body)
		if err != nil {
			return fmt.Errorf("store: snapshot record: %w", err)
		}
		if len(rest) < 1 {
			return fmt.Errorf("store: snapshot record %q has no payload", name)
		}
		r.Name = name
		r.Reduction = rest[0]
		r.Blob = rest[1:]
	default:
		return fmt.Errorf("store: unknown record type %d", r.Type)
	}
	return nil
}

// decodeIngestBody parses an ingest record's columns.
func decodeIngestBody(body []byte, r *Record) error {
	name, rest, err := cutString(body)
	if err != nil {
		return fmt.Errorf("store: ingest record: %w", err)
	}
	if len(rest) < 1 {
		return fmt.Errorf("store: ingest record %q truncated before flags", name)
	}
	flags := rest[0]
	rest = rest[1:]
	if flags&^byte(colWeights|colAts) != 0 {
		return fmt.Errorf("store: ingest record %q has unknown column flags %#x", name, flags)
	}
	n, w := binary.Uvarint(rest)
	if w <= 0 {
		return fmt.Errorf("store: ingest record %q has a bad row count", name)
	}
	rest = rest[w:]
	if n > uint64(len(rest)) {
		// Every row costs at least one length byte, so this bounds the
		// allocation below before trusting the count.
		return fmt.Errorf("store: ingest record %q claims %d rows in %d bytes", name, n, len(rest))
	}
	r.Name = name
	r.Items = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		it, r2, err := cutString(rest)
		if err != nil {
			return fmt.Errorf("store: ingest record %q item %d: %w", name, i, err)
		}
		rest = r2
		r.Items = append(r.Items, it)
	}
	if flags&colWeights != 0 {
		if uint64(len(rest)) < 8*n {
			return fmt.Errorf("store: ingest record %q truncated in weights", name)
		}
		r.Weights = make([]float64, n)
		for i := range r.Weights {
			r.Weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
			if r.Weights[i] < 0 || math.IsNaN(r.Weights[i]) || math.IsInf(r.Weights[i], 0) {
				return fmt.Errorf("store: ingest record %q has invalid weight %v", name, r.Weights[i])
			}
		}
		rest = rest[8*n:]
	}
	if flags&colAts != 0 {
		r.Ats = make([]int64, n)
		for i := range r.Ats {
			at, w := binary.Varint(rest)
			if w <= 0 {
				return fmt.Errorf("store: ingest record %q truncated in timestamps", name)
			}
			r.Ats[i] = at
			rest = rest[w:]
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("store: ingest record %q has %d trailing bytes", name, len(rest))
	}
	return nil
}

// DecodePayload parses one record payload (type byte + body, without
// the length/CRC frame header) into a Record carrying lsn — the decode
// entry point for records arriving over a transport instead of off the
// local log. Item strings are copied out of payload; Blob aliases it
// and must be copied if retained past the payload's lifetime.
func DecodePayload(lsn uint64, payload []byte) (Record, error) {
	r := Record{LSN: lsn}
	err := decodeRecord(payload, &r)
	return r, err
}

// AppendFramed appends payload to dst framed exactly as the on-disk log
// frames records (uint32 LE length, uint32 LE CRC32, payload), so a
// replication stream carries byte-identical frames and the follower's
// re-append reproduces the primary's log bit for bit.
func AppendFramed(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// CutFrame parses one framed record off the front of b, returning its
// payload (aliasing b) and the remainder. err is non-nil on a torn or
// corrupt frame; a clean empty b returns (nil, nil, nil).
func CutFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) == 0 {
		return nil, nil, nil
	}
	if len(b) < frameOverhead {
		return nil, nil, fmt.Errorf("store: torn frame header (%d bytes)", len(b))
	}
	plen := int64(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if plen == 0 || plen > maxRecordBytes {
		return nil, nil, fmt.Errorf("store: bad frame length %d", plen)
	}
	if int64(len(b))-frameOverhead < plen {
		return nil, nil, fmt.Errorf("store: torn frame (%d of %d payload bytes)", int64(len(b))-frameOverhead, plen)
	}
	payload = b[frameOverhead : frameOverhead+plen]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, nil, fmt.Errorf("store: frame CRC mismatch")
	}
	return payload, b[frameOverhead+plen:], nil
}

// cutString reads a uvarint-length-prefixed string off the front of b.
func cutString(b []byte) (string, []byte, error) {
	l, w := binary.Uvarint(b)
	if w <= 0 || l > uint64(len(b)-w) {
		return "", nil, fmt.Errorf("truncated length-prefixed string")
	}
	return string(b[w : w+int(l)]), b[w+int(l):], nil
}

// recordTypeName renders a record type for inspect output.
func recordTypeName(t byte) string {
	switch t {
	case TypeCreate:
		return "create"
	case TypeDelete:
		return "delete"
	case TypeIngest:
		return "ingest"
	case TypeSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("type-%d", t)
	}
}
