package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzWALRecord feeds arbitrary bytes to the log scanner as a segment
// file: recovery must salvage whatever valid prefix exists and must
// never panic, whatever the framing, CRCs or record payloads claim —
// truncated records, corrupt lengths, duplicated content, garbage JSON
// in create records, hostile row counts. The seeds cover a real segment
// (every record type), its truncations, and bit flips.
func FuzzWALRecord(f *testing.F) {
	// Build a genuine segment holding all four record types.
	seedDir := f.TempDir()
	st, err := Open(Options{Dir: seedDir, Sync: SyncNever})
	if err != nil {
		f.Fatal(err)
	}
	spec, _ := json.Marshal(SketchSpec{Name: "x", Kind: "weighted", Bins: 16, Seed: 5})
	if _, err := st.AppendCreate(spec); err != nil {
		f.Fatal(err)
	}
	if _, err := st.AppendIngest("x", []string{"a", "bb", "ccc"}, []float64{1, 2, 3}, nil); err != nil {
		f.Fatal(err)
	}
	if _, err := st.AppendIngest("x", []string{"t1", "t2"}, nil, []int64{-5, 12}); err != nil {
		f.Fatal(err)
	}
	if _, err := st.AppendSnapshot("x", 0, []byte("not-a-real-snapshot")); err != nil {
		f.Fatal(err)
	}
	if _, err := st.AppendDelete("x"); err != nil {
		f.Fatal(err)
	}
	st.Close()
	segs, err := listSegments(seedDir)
	if err != nil || len(segs) != 1 {
		f.Fatalf("seed segment: %v (%d segments)", err, len(segs))
	}
	valid, err := os.ReadFile(segs[0].path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])             // torn tail
	f.Add(valid[:len(valid)/2])             // torn mid-record
	f.Add(append([]byte{}, segMagic[:]...)) // empty segment
	f.Add([]byte("garbage"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), valid[8:]...)) // duplicated records

	// Group-commit frames: many back-to-back ingest records written under
	// one covering fsync (SyncInterval + GroupCommit). The on-disk shape a
	// crashed commit group leaves behind is a run of whole frames with the
	// last one possibly torn mid-write — recovery must salvage every whole
	// frame of the group.
	gcDir := f.TempDir()
	gst, err := Open(Options{Dir: gcDir, Sync: SyncInterval, SyncEvery: time.Hour, GroupCommit: true})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := gst.AppendCreate(spec); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := gst.AppendIngest("x", []string{"g1", "g22", "g333"}, []float64{1, 2, 3}, nil); err != nil {
			f.Fatal(err)
		}
	}
	gst.Close()
	gsegs, err := listSegments(gcDir)
	if err != nil || len(gsegs) != 1 {
		f.Fatalf("group-commit seed segment: %v (%d segments)", err, len(gsegs))
	}
	group, err := os.ReadFile(gsegs[0].path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(group)                  // whole commit group
	f.Add(group[:len(group)-5])   // last frame of the group torn
	f.Add(group[:2*len(group)/3]) // crash mid-group
	gflip := append([]byte(nil), group...)
	gflip[len(gflip)-10] ^= 0x08 // corrupt a late frame: prefix must survive
	f.Add(gflip)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.MkdirAll(walDir(dir), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(walDir(dir), segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Read-only recovery: must not panic, must not error on record
		// damage (only on I/O failure, which cannot happen here).
		res, err := Rebuild(dir)
		if err != nil {
			t.Fatalf("Rebuild errored on damaged log: %v", err)
		}
		if _, err := Inspect(dir, func(*Record) {}); err != nil {
			t.Fatalf("Inspect errored on damaged log: %v", err)
		}
		// Opening truncates the damage and the log accepts appends; the
		// salvaged prefix must survive unchanged.
		st, err := Open(Options{Dir: dir, Sync: SyncNever})
		if err != nil {
			t.Fatalf("Open errored on damaged log: %v", err)
		}
		if _, err := st.AppendIngest("x", []string{"post"}, nil, nil); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		st.Close()
		res2, err := Rebuild(dir)
		if err != nil {
			t.Fatalf("Rebuild after reopen: %v", err)
		}
		if len(res2.Sketches) < len(res.Sketches) {
			t.Fatalf("reopen lost sketches: %d -> %d", len(res.Sketches), len(res2.Sketches))
		}
	})
}
