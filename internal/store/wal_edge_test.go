package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// scannedSegments scans dir's log and returns the per-segment reports
// with sizes and record counts filled in.
func scannedSegments(t *testing.T, dir string) []segmentInfo {
	t.Helper()
	segs, _, err := scanLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

// ingestRecordSize measures the on-disk size of one fixed-shape ingest
// record by appending it to a scratch store.
func ingestRecordSize(t *testing.T) int64 {
	t.Helper()
	dir := t.TempDir()
	st := mustOpen(t, dir, nil)
	if _, err := st.AppendIngest("x", []string{"aaaaaaaa"}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs := scannedSegments(t, dir)
	if len(segs) != 1 {
		t.Fatalf("probe wrote %d segments, want 1", len(segs))
	}
	return segs[0].size - int64(len(segMagic))
}

// TestRotationAtExactSegmentBoundary pins the rotation edge where a
// record's last byte lands exactly on SegmentBytes mid-batch: the
// exactly-full segment keeps that record (no premature rotation), the
// next append opens a segment named by its first LSN, a reopen refuses
// to resume into the full segment, and recovery sees every record once.
func TestRotationAtExactSegmentBoundary(t *testing.T) {
	d := ingestRecordSize(t)
	dir := t.TempDir()
	// Three fixed-size records fill the segment to the byte.
	st := mustOpen(t, dir, func(o *Options) { o.SegmentBytes = int64(len(segMagic)) + 3*d })

	batch := []string{"aaaaaaaa"}
	for i := 0; i < 3; i++ {
		if _, err := st.AppendIngest("x", batch, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	segs := scannedSegments(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segment filled to the byte rotated early: %d segments", len(segs))
	}
	if segs[0].size != st.opts.SegmentBytes {
		t.Fatalf("full segment is %d bytes, want exactly %d", segs[0].size, st.opts.SegmentBytes)
	}

	// The batch continues: record 4 must land in a fresh segment named by
	// its own LSN.
	if _, err := st.AppendIngest("x", batch, nil, nil); err != nil {
		t.Fatal(err)
	}
	segs = scannedSegments(t, dir)
	if len(segs) != 2 {
		t.Fatalf("append past an exactly-full segment: %d segments, want 2", len(segs))
	}
	if segs[0].records != 3 || segs[1].firstLSN != 4 || segs[1].records != 1 {
		t.Fatalf("rotation split records %d|%d with second firstLSN %d, want 3|1 at 4",
			segs[0].records, segs[1].records, segs[1].firstLSN)
	}
	if st.Metrics().Rotations.Load() != 1 {
		t.Fatalf("rotations counter = %d, want 1", st.Metrics().Rotations.Load())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the boundary cleanly: 4 records, no gaps.
	rep, err := Inspect(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastLSN != 4 {
		t.Fatalf("recovered LastLSN = %d, want 4", rep.LastLSN)
	}
	for _, sr := range rep.Segments {
		if sr.Torn {
			t.Fatalf("segment %s reported torn after clean rotation: %s", sr.Path, sr.TornErr)
		}
	}

	// And a fresh segment exactly at SegmentBytes: reopening must start a
	// new one rather than resume into the full file. Delete the tail
	// segment first so the last segment on disk is the exactly-full one.
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir, func(o *Options) { o.SegmentBytes = int64(len(segMagic)) + 3*d })
	if _, err := st2.AppendIngest("x", batch, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	segs = scannedSegments(t, dir)
	if len(segs) != 2 || segs[0].size != int64(len(segMagic))+3*d {
		t.Fatalf("reopen resumed into an exactly-full segment (%d segments, first %d bytes)",
			len(segs), segs[0].size)
	}
}

// TestSyncIntervalFlushOrdering pins the interval-fsync contract: an
// append acks without waiting for an fsync (Syncs stays flat), the data
// still reaches the OS file (recovery of a live dir sees it), the
// background loop flushes dirty state on its tick, and rotation fsyncs
// the outgoing segment even between ticks.
func TestSyncIntervalFlushOrdering(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, func(o *Options) {
		o.Sync = SyncInterval
		o.SyncEvery = time.Hour // the loop must not fire during the test
	})
	defer st.Close()

	if _, err := st.AppendIngest("x", []string{"one"}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if n := st.Metrics().Syncs.Load(); n != 0 {
		t.Fatalf("interval append fsynced inline (%d syncs): ack must not wait for the flusher", n)
	}
	if !st.dirty.Load() {
		t.Fatal("append did not mark the store dirty for the flusher")
	}
	// The record is in the file (OS cache) before any fsync: a crash of
	// the process — not the machine — loses nothing.
	if rep, err := Inspect(dir, nil); err != nil || rep.LastLSN != 1 {
		t.Fatalf("pre-fsync inspect: LastLSN %d, err %v; want 1", rep.LastLSN, err)
	}

	// An explicit Sync flushes regardless of the interval.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if n := st.Metrics().Syncs.Load(); n != 1 {
		t.Fatalf("explicit Sync: %d syncs, want 1", n)
	}

	// Rotation must fsync the outgoing segment even with the flusher
	// idle: the old segment is immutable history the moment a new one
	// starts, so it cannot sit dirty forever.
	d := ingestRecordSize(t)
	st2 := mustOpen(t, t.TempDir(), func(o *Options) {
		o.Sync = SyncInterval
		o.SyncEvery = time.Hour
		o.SegmentBytes = int64(len(segMagic)) + d // one record fills a segment
	})
	defer st2.Close()
	if _, err := st2.AppendIngest("x", []string{"aaaaaaaa"}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.AppendIngest("x", []string{"aaaaaaaa"}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if st2.Metrics().Rotations.Load() != 1 {
		t.Fatalf("rotations = %d, want 1", st2.Metrics().Rotations.Load())
	}
}

// TestInspectTornAtEveryOffset truncates the final segment at every
// possible byte offset and requires Inspect (and recovery's scan) to
// come back sane at each one: never an error, LastLSN exactly the
// number of records wholly below the cut, and the segment flagged torn
// whenever the cut is off a record boundary.
func TestInspectTornAtEveryOffset(t *testing.T) {
	src := t.TempDir()
	st := mustOpen(t, src, nil)
	appendAll(t, st, "x", [][]string{{"alpha", "beta"}, {"gamma"}, {"delta", "epsilon", "zeta"}})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(src)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	whole, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries: offsets at which a scan of the intact file has
	// delivered k complete records.
	boundaries := map[int64]uint64{int64(len(segMagic)): 0}
	off := int64(len(segMagic))
	var lsn uint64
	for rest := whole[len(segMagic):]; len(rest) > 0; {
		payload, r, err := CutFrame(rest)
		if err != nil || payload == nil {
			t.Fatalf("intact segment does not cut cleanly at %d: %v", off, err)
		}
		off += int64(len(rest) - len(r))
		lsn++
		boundaries[off] = lsn
		rest = r
	}

	dir := t.TempDir()
	if err := os.MkdirAll(walDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(walDir(dir), segName(1))
	for cut := int64(0); cut < int64(len(whole)); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := Inspect(dir, nil)
		if err != nil {
			t.Fatalf("cut at %d: Inspect error: %v", cut, err)
		}
		wantLSN, atBoundary := boundaries[cut]
		if !atBoundary {
			// Find the highest boundary below the cut: those records
			// survive, everything after is the tear.
			for o, l := range boundaries {
				if o <= cut && l > wantLSN {
					wantLSN = l
				}
			}
		}
		if rep.LastLSN != wantLSN {
			t.Fatalf("cut at %d: LastLSN %d, want %d", cut, rep.LastLSN, wantLSN)
		}
		if len(rep.Segments) != 1 {
			t.Fatalf("cut at %d: %d segments reported", cut, len(rep.Segments))
		}
		if torn := rep.Segments[0].Torn; torn == atBoundary && cut >= int64(len(segMagic)) {
			t.Fatalf("cut at %d: torn=%v but boundary=%v", cut, torn, atBoundary)
		}
		// Recovery itself must also accept every tear.
		if _, err := Rebuild(dir); err != nil {
			t.Fatalf("cut at %d: Rebuild error: %v", cut, err)
		}
	}
}
