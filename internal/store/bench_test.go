package store

import (
	"encoding/json"
	"fmt"
	"testing"
)

// benchItems builds one ingest batch's item column.
func benchItems(rows int) []string {
	items := make([]string, rows)
	for i := range items {
		items[i] = fmt.Sprintf("item-%06d", i%997)
	}
	return items
}

// BenchmarkWALAppend measures the append path (SyncNever: the encode +
// write cost without the device's fsync latency).
func BenchmarkWALAppend(b *testing.B) {
	for _, rows := range []int{64, 1024} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			st, err := Open(Options{Dir: b.TempDir(), Sync: SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			items := benchItems(rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.AppendIngest("bench", items, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(rows))
		})
	}
}

// BenchmarkRebuild measures recovery replay time against log size.
func BenchmarkRebuild(b *testing.B) {
	for _, batches := range []int{16, 128} {
		b.Run(fmt.Sprintf("batches=%d", batches), func(b *testing.B) {
			dir := b.TempDir()
			st, err := Open(Options{Dir: dir, Sync: SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			spec, _ := json.Marshal(SketchSpec{Name: "bench", Kind: "unit", Bins: 1024, Seed: 7})
			if _, err := st.AppendCreate(spec); err != nil {
				b.Fatal(err)
			}
			items := benchItems(512)
			for i := 0; i < batches; i++ {
				if _, err := st.AppendIngest("bench", items, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			st.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Rebuild(dir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
