package store

import (
	"context"
	"fmt"
)

// DirNextLSN reports the LSN the log in dir would assign next, without
// opening the store: the last on-disk LSN plus one, or — when the log
// is empty — one past the newest checkpoint's coverage (the same
// derivation Open uses). A follower preparing its data dir uses it to
// pick the stream position before the store exists.
func DirNextLSN(dir string) (uint64, error) {
	_, lastLSN, err := scanLog(dir, nil)
	if err != nil {
		return 0, err
	}
	if lastLSN == 0 {
		if gen := latestCheckpointGen(dir); gen != 0 {
			man, err := loadManifest(dir, gen)
			if err != nil {
				return 0, err
			}
			lastLSN = man.Cutoff
			for i := range man.Sketches {
				if l := man.Sketches[i].LSN; l > lastLSN {
					lastLSN = l
				}
			}
		}
	}
	return lastLSN + 1, nil
}

// NextLSN returns the LSN the next appended record will receive.
func (s *Store) NextLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segFirst + uint64(s.segRecs)
}

// WaitForLSN blocks until the log contains a record at or above lsn, the
// context is done, or the store closes. It returns the current LastLSN
// and whether the wait was satisfied — the WAL-stream long-poll's
// building block.
func (s *Store) WaitForLSN(ctx context.Context, lsn uint64) (uint64, bool) {
	for {
		s.mu.Lock()
		last := s.segFirst + uint64(s.segRecs) - 1
		closed := s.closed
		ch := s.notify
		s.mu.Unlock()
		if last >= lsn {
			return last, true
		}
		if closed {
			return last, false
		}
		select {
		case <-ctx.Done():
			return last, false
		case <-ch:
		}
	}
}

// AppendReplicated appends a record received from a replication stream,
// pinning it to the LSN the primary assigned. The payload is the frame
// payload exactly as the primary logged it (type byte + body), so the
// follower's log is byte-identical to the primary's. A duplicate
// (lsn ≤ LastLSN) is skipped and reported, a gap (lsn > NextLSN) is an
// error — the follower re-requests from its own tail instead of logging
// out of order.
func (s *Store) AppendReplicated(lsn uint64, payload []byte) (applied bool, err error) {
	if len(payload) == 0 || int64(len(payload)) > maxRecordBytes {
		return false, fmt.Errorf("store: replicated record at lsn %d: bad payload length %d", lsn, len(payload))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, fmt.Errorf("store: append to closed store")
	}
	next := s.segFirst + uint64(s.segRecs)
	if lsn < next {
		return false, nil // duplicate frame (resend, dup-frame fault): already logged
	}
	if lsn > next {
		return false, fmt.Errorf("store: replicated record at lsn %d leaves a gap (next is %d)", lsn, next)
	}
	buf := append(s.stage(), payload...)
	s.sealFrame(buf)
	if _, err := s.append(s.buf); err != nil {
		return false, err
	}
	return true, nil
}

// errStreamStop is scanSegment's early-exit sentinel for StreamPayloads.
var errStreamStop = fmt.Errorf("store: stream stop")

// StreamPayloads reads raw record payloads from dir's log in LSN order,
// starting at from, read-only — it is the primary-side source of the
// replication stream and is safe to run against a live store's data dir
// (a torn final record is just the in-flight tail; streaming stops
// there). fn receives each payload exactly as logged; budget bounds the
// total payload bytes delivered per call (≤ 0 means unlimited). oldest
// is the lowest LSN still on disk (0 when the log is empty): when
// from < oldest the records were checkpoint-truncated and the caller
// must fall back to a checkpoint bundle.
func StreamPayloads(dir string, from uint64, budget int64, fn func(lsn uint64, payload []byte) error) (oldest uint64, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, nil
	}
	oldest = segs[0].firstLSN
	var sent int64
	for i := range segs {
		seg := &segs[i]
		// Records of segment i span [firstLSN, next.firstLSN); skip
		// segments wholly below from.
		if i+1 < len(segs) && segs[i+1].firstLSN <= from {
			continue
		}
		scanErr := scanSegment(seg, func(lsn uint64, payload []byte) error {
			if lsn < from {
				return nil
			}
			if budget > 0 && sent > 0 && sent+int64(len(payload)) > budget {
				return errStreamStop
			}
			if err := fn(lsn, payload); err != nil {
				return err
			}
			sent += int64(len(payload))
			return nil
		})
		if scanErr == errStreamStop {
			return oldest, nil
		}
		if scanErr != nil {
			return oldest, scanErr
		}
		if seg.torn {
			// Live tail or damage: either way the stream has no trustworthy
			// records past this point right now.
			return oldest, nil
		}
	}
	return oldest, nil
}
