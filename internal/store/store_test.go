package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	uss "repro"
)

// mustOpen opens a store over a temp dir with the given options applied.
func mustOpen(t *testing.T, dir string, mod func(*Options)) *Store {
	t.Helper()
	opts := Options{Dir: dir, Sync: SyncNever}
	if mod != nil {
		mod(&opts)
	}
	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// appendAll logs a create plus a few ingest batches for a unit sketch.
func appendAll(t *testing.T, st *Store, name string, batches [][]string) {
	t.Helper()
	spec := SketchSpec{Name: name, Kind: "unit", Bins: 64, Seed: 42}
	if _, err := st.AppendCreate(mustJSON(t, spec)); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := st.AppendIngest(name, b, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendRebuildRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, nil)

	// One sketch of every kind, driven the way the server drives them.
	specs := []SketchSpec{
		{Name: "u", Kind: "unit", Bins: 64, Seed: 1},
		{Name: "w", Kind: "weighted", Bins: 64, Seed: 2},
		{Name: "s", Kind: "sharded", Bins: 32, Shards: 4, Seed: 3},
		{Name: "r", Kind: "rollup", Bins: 32, WindowLength: 10, Retain: 4, Seed: 4},
	}
	for _, sp := range specs {
		if _, err := st.AppendCreate(mustJSON(t, sp)); err != nil {
			t.Fatal(err)
		}
	}
	items := make([]string, 100)
	ws := make([]float64, 100)
	ats := make([]int64, 100)
	for i := range items {
		items[i] = fmt.Sprintf("item-%02d", i%17)
		ws[i] = float64(1 + i%3)
		ats[i] = int64(i % 40)
	}
	if _, err := st.AppendIngest("u", items, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendIngest("w", items, ws, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendIngest("s", items, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendIngest("r", items, nil, ats); err != nil {
		t.Fatal(err)
	}

	// Push a snapshot into the weighted sketch.
	agent := uss.New(32, uss.WithSeed(9))
	for i := 0; i < 300; i++ {
		agent.Update(fmt.Sprintf("agent-%d", i%10))
	}
	blob, err := agent.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendSnapshot("w", byte(uss.Pairwise), blob); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sketches) != 4 {
		t.Fatalf("rebuilt %d sketches, want 4", len(res.Sketches))
	}
	if res.Stats.Applied != 9 || res.Stats.Skipped != 0 || len(res.Stats.Warnings) != 0 {
		t.Fatalf("stats %+v, want 9 applied, clean", res.Stats)
	}

	// The rebuilt sketches must match a direct in-process replay.
	u := uss.New(64, uss.WithSeed(1))
	u.UpdateAll(items)
	if got, want := res.Sketches["u"].Unit.TopK(5), u.TopK(5); !equalBins(got, want) {
		t.Fatalf("unit top-k = %v, want %v", got, want)
	}
	w := uss.NewWeighted(64, uss.WithSeed(2))
	for i, it := range items {
		w.Update(it, ws[i])
	}
	pushed, err := uss.DecodeBins(blob)
	if err != nil {
		t.Fatal(err)
	}
	merged := uss.MergeBins(64, uss.Pairwise, w.Bins(), pushed)
	nw, err := uss.NewWeightedFromBins(64, merged, uss.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Sketches["w"].Weighted.TopK(8), nw.TopK(8); !equalBins(got, want) {
		t.Fatalf("weighted top-k = %v, want %v", got, want)
	}
	sh := uss.NewSharded(4, 32, uss.WithSeed(3))
	sh.UpdateBatch(items)
	if got, want := res.Sketches["s"].Sharded.TopK(5), sh.TopK(5); !equalBins(got, want) {
		t.Fatalf("sharded top-k = %v, want %v", got, want)
	}
	ro, err := uss.NewRollup(uss.RollupConfig{Bins: 32, WindowLength: 10, Retain: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		ro.Update(it, ats[i])
	}
	if got, want := res.Sketches["r"].Rollup.TopKRange(0, 39, 5), ro.TopKRange(0, 39, 5); !equalBins(got, want) {
		t.Fatalf("rollup top-k = %v, want %v", got, want)
	}
	if rows := res.Sketches["u"].Rows; rows != 100 {
		t.Fatalf("unit rows = %d, want 100", rows)
	}
}

func equalBins(a, b []uss.Bin) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDeleteAndRecreateReplay(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, nil)
	appendAll(t, st, "x", [][]string{{"a", "a", "b"}})
	if _, err := st.AppendDelete("x"); err != nil {
		t.Fatal(err)
	}
	appendAll(t, st, "x", [][]string{{"c"}})
	st.Close()

	res, err := Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	rb := res.Sketches["x"]
	if rb == nil {
		t.Fatal("sketch x missing after recreate")
	}
	if rb.Rows != 1 || rb.Unit.Estimate("a") != 0 || rb.Unit.Estimate("c") != 1 {
		t.Fatalf("recreated sketch kept old state: rows=%d a=%v c=%v",
			rb.Rows, rb.Unit.Estimate("a"), rb.Unit.Estimate("c"))
	}
}

func TestCheckpointTruncatesAndGates(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so truncation has something to delete.
	st := mustOpen(t, dir, func(o *Options) { o.SegmentBytes = 64 })
	appendAll(t, st, "x", [][]string{{"a", "a", "b"}, {"b", "c"}, {"a"}})

	// Checkpoint at the current applied LSN with the true state.
	sk := uss.New(64, uss.WithSeed(42))
	sk.UpdateAll([]string{"a", "a", "b", "b", "c", "a"})
	state, err := sk.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := st.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	lsn := st.LastLSN()
	if err := cw.Add(SketchSpec{Name: "x", Kind: "unit", Bins: 64, Seed: 42},
		CheckpointMeta{LSN: lsn, Rows: 6}, state); err != nil {
		t.Fatal(err)
	}
	if err := cw.Commit(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 1 || segs[0].firstLSN == 1 {
		t.Fatalf("checkpoint did not truncate: %d segments, first starts at %d", len(segs), segs[0].firstLSN)
	}

	// Tail records after the checkpoint replay on top of it.
	if _, err := st.AppendIngest("x", []string{"d", "d"}, nil, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()
	res, err := Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CheckpointGen == 0 {
		t.Fatal("rebuild ignored the checkpoint")
	}
	rb := res.Sketches["x"]
	if rb == nil {
		t.Fatal("sketch x missing")
	}
	if rb.Rows != 8 || rb.Unit.Estimate("a") != 3 || rb.Unit.Estimate("d") != 2 {
		t.Fatalf("post-checkpoint state wrong: rows=%d a=%v d=%v", rb.Rows, rb.Unit.Estimate("a"), rb.Unit.Estimate("d"))
	}
	// Nothing below the gate may replay twice: counts above prove it, and
	// the skip counter shows the gate was exercised only for tail overlap.
	if res.Stats.Applied == 0 {
		t.Fatal("no records applied from the tail")
	}
}

func TestTornTailRecovery(t *testing.T) {
	for _, cut := range []int{1, 3, 7} {
		dir := t.TempDir()
		st := mustOpen(t, dir, nil)
		appendAll(t, st, "x", [][]string{{"a", "a"}, {"b"}})
		lastGood := st.LastLSN()
		if _, err := st.AppendIngest("x", []string{"torn-away"}, nil, nil); err != nil {
			t.Fatal(err)
		}
		st.Close()

		// Tear bytes off the last record, as a crash mid-write would.
		segs, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		tail := segs[len(segs)-1]
		data, err := os.ReadFile(tail.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tail.path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}

		res, err := Rebuild(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.TornTail {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		rb := res.Sketches["x"]
		if rb == nil || rb.LSN != lastGood || rb.Unit.Estimate("torn-away") != 0 || rb.Unit.Estimate("a") != 2 {
			t.Fatalf("cut %d: salvaged prefix wrong: %+v", cut, rb)
		}

		// Reopening truncates the torn record and new appends replay.
		st2 := mustOpen(t, dir, nil)
		if got := st2.LastLSN(); got != lastGood {
			t.Fatalf("cut %d: reopened LastLSN = %d, want %d", cut, got, lastGood)
		}
		if _, err := st2.AppendIngest("x", []string{"after"}, nil, nil); err != nil {
			t.Fatal(err)
		}
		st2.Close()
		res2, err := Rebuild(dir)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Stats.TornTail || res2.Sketches["x"].Unit.Estimate("after") != 1 {
			t.Fatalf("cut %d: post-truncation append did not replay cleanly: %+v", cut, res2.Stats)
		}
	}
}

func TestCorruptMiddleRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, nil)
	appendAll(t, st, "x", [][]string{{"a"}, {"b"}, {"c"}})
	st.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle of the file.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.TornTail {
		t.Fatal("corruption not reported")
	}
	// Whatever survives is a prefix; later records never applied.
	if rb := res.Sketches["x"]; rb != nil && rb.Unit.Estimate("c") != 0 {
		t.Fatalf("replay ran past the corruption: %+v", rb)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, func(o *Options) { o.SegmentBytes = 128 })
	var batches [][]string
	for i := 0; i < 20; i++ {
		batches = append(batches, []string{fmt.Sprintf("item-%02d", i), fmt.Sprintf("item-%02d", i)})
	}
	appendAll(t, st, "x", batches)
	st.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	res, err := Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rb := res.Sketches["x"]; rb.Rows != 40 || rb.Unit.Estimate("item-07") != 2 {
		t.Fatalf("multi-segment replay wrong: %+v", rb)
	}

	// Resume appending across a reopen: LSNs continue, no overlap.
	st2 := mustOpen(t, dir, func(o *Options) { o.SegmentBytes = 128 })
	if _, err := st2.AppendIngest("x", []string{"resumed"}, nil, nil); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	res2, err := Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rb := res2.Sketches["x"]; rb.Rows != 41 || rb.Unit.Estimate("resumed") != 1 {
		t.Fatalf("resumed append wrong: %+v", rb)
	}
}

func TestInspectReport(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, nil)
	appendAll(t, st, "x", [][]string{{"a", "b"}})
	st.Close()

	var types []string
	rep, err := Inspect(dir, func(rec *Record) { types = append(types, rec.TypeName()) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Segments) != 1 || rep.Segments[0].Records != 2 || rep.LastLSN != 2 {
		t.Fatalf("report %+v", rep)
	}
	if len(types) != 2 || types[0] != "create" || types[1] != "ingest" {
		t.Fatalf("record stream %v", types)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, name := range []string{"always", "interval", "never"} {
		p, err := ParseSyncPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != name {
			t.Fatalf("policy %q round-trips to %q", name, p.String())
		}
		dir := t.TempDir()
		st := mustOpen(t, dir, func(o *Options) { o.Sync = p; o.SyncEvery = 1 })
		appendAll(t, st, "x", [][]string{{"a"}})
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		res, err := Rebuild(dir)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sketches["x"].Rows != 1 {
			t.Fatalf("policy %s: rows = %d", name, res.Sketches["x"].Rows)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestWALAppendAllocs pins the acceptance bound: the WAL append path
// runs at ≤ 2 allocs/op in steady state (it is 0 outside the file
// write), so durability does not reintroduce per-batch garbage.
func TestWALAppendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; the pooled encode buffer cannot hold a deterministic alloc bound")
	}
	dir := t.TempDir()
	st := mustOpen(t, dir, nil)
	defer st.Close()
	items := make([]string, 64)
	for i := range items {
		items[i] = fmt.Sprintf("item-%04d", i)
	}
	if _, err := st.AppendIngest("steady", items, nil, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := st.AppendIngest("steady", items, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("WAL append = %v allocs/op, want <= 2", allocs)
	}
}

// TestStoreBufferHighWaterMark pins that one giant batch does not pin a
// giant encode buffer in the store.
func TestStoreBufferHighWaterMark(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, nil)
	defer st.Close()
	big := []string{string(bytes.Repeat([]byte("x"), maxRetainedBuf+1024))}
	if _, err := st.AppendIngest("x", big, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendIngest("x", []string{"small"}, nil, nil); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if cap(st.buf) > maxRetainedBuf {
		t.Fatalf("store retained a %d-byte encode buffer", cap(st.buf))
	}
}

// TestOpenOwnsLayout pins that Open builds the directory layout and a
// fresh store rebuilds to empty.
func TestOpenOwnsLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	st := mustOpen(t, dir, nil)
	if st.LastLSN() != 0 {
		t.Fatalf("fresh store LastLSN = %d", st.LastLSN())
	}
	st.Close()
	res, err := Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sketches) != 0 || res.Stats.LastLSN != 0 {
		t.Fatalf("fresh rebuild %+v", res.Stats)
	}
}
