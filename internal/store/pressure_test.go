package store

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestHardWatermarkReadOnly arms disk.enospc so the free-space probe
// reports a full disk: appends must refuse with ErrReadOnly (not crash,
// not wedge), and the store must heal itself on the first append after
// space "returns".
func TestHardWatermarkReadOnly(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	st, err := Open(Options{Dir: t.TempDir(), Sync: SyncNever, DiskCheckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.AppendCreate([]byte(`{"name":"a"}`)); err != nil {
		t.Fatalf("healthy append: %v", err)
	}

	if err := faultinject.Enable("disk.enospc"); err != nil {
		t.Fatal(err)
	}
	_, err = st.AppendCreate([]byte(`{"name":"b"}`))
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("append under enospc = %v, want ErrReadOnly", err)
	}
	if st.Pressure() != DiskHard {
		t.Fatalf("Pressure = %d, want DiskHard", st.Pressure())
	}
	if got := st.Metrics().DiskHardTrips.Load(); got != 1 {
		t.Fatalf("DiskHardTrips = %d, want 1", got)
	}
	if got := st.Metrics().ReadOnlyRejects.Load(); got == 0 {
		t.Fatal("ReadOnlyRejects did not count the refusal")
	}
	// Reads of the log state stay exact while read-only.
	if got := st.LastLSN(); got != 1 {
		t.Fatalf("LastLSN while read-only = %d, want 1", got)
	}

	faultinject.Reset()
	if _, err := st.AppendCreate([]byte(`{"name":"b"}`)); err != nil {
		t.Fatalf("append after space returned: %v", err)
	}
	if st.Pressure() != DiskHealthy {
		t.Fatalf("Pressure after recovery = %d, want DiskHealthy", st.Pressure())
	}
}

// TestSoftWatermarkReportsPressure opens a store whose soft watermark is
// absurdly high (any real disk is "below" it): appends keep working but
// the store reports DiskSoft so owners can checkpoint and shed early.
func TestSoftWatermarkReportsPressure(t *testing.T) {
	faultinject.Reset()
	st, err := Open(Options{
		Dir:           t.TempDir(),
		Sync:          SyncNever,
		DiskSoftBytes: 1 << 60,
		DiskHardBytes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Pressure() != DiskSoft {
		t.Fatalf("Pressure = %d, want DiskSoft", st.Pressure())
	}
	if got := st.Metrics().DiskSoftTrips.Load(); got != 1 {
		t.Fatalf("DiskSoftTrips = %d, want 1", got)
	}
	if _, err := st.AppendCreate([]byte(`{"name":"a"}`)); err != nil {
		t.Fatalf("append under soft pressure must still work: %v", err)
	}
}

// TestSyncAlwaysFsyncFailureSurfaces verifies a failed fsync under the
// ack-after-fsync policy surfaces to the caller (the append is NOT
// acknowledged) and is counted.
func TestSyncAlwaysFsyncFailureSurfaces(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	st, err := Open(Options{Dir: t.TempDir(), Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := faultinject.Enable("wal.fail-fsync:1:1"); err != nil {
		t.Fatal(err)
	}
	_, err = st.AppendCreate([]byte(`{"name":"a"}`))
	if err == nil || !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("append with failing fsync = %v, want fsync error", err)
	}
	if got := st.Metrics().SyncErrors.Load(); got != 1 {
		t.Fatalf("SyncErrors = %d, want 1", got)
	}
	// Budget exhausted: the next append fsyncs clean.
	if _, err := st.AppendCreate([]byte(`{"name":"b"}`)); err != nil {
		t.Fatalf("append after fault budget drained: %v", err)
	}
}

// TestIntervalFsyncFailureRetries verifies the SyncInterval flusher does
// not silently drop an interval when fsync fails: the dirty flag is
// re-armed and the next tick retries until one succeeds.
func TestIntervalFsyncFailureRetries(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	st, err := Open(Options{Dir: t.TempDir(), Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := faultinject.Enable("wal.fail-fsync:1:3"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendCreate([]byte(`{"name":"a"}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st.Metrics().Syncs.Load() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := st.Metrics().Syncs.Load(); got == 0 {
		t.Fatal("flusher never recovered from injected fsync failures")
	}
	if got := st.Metrics().SyncErrors.Load(); got != 3 {
		t.Fatalf("SyncErrors = %d, want 3 (the injected budget)", got)
	}
}
