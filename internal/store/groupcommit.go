package store

// Group commit: the ordering rules that let one interval fsync cover many
// sketches' appends without weakening the ack protocol.
//
// The write path splits into three steps with distinct locking:
//
//  1. Encode. Each batch frames itself into a pooled buffer with no lock
//     held (AppendIngest), so concurrent handlers encode in parallel.
//  2. Append. The buffer write and LSN assignment serialize on the store
//     mutex — this is the only per-batch serialized work, and it never
//     blocks on the disk flush.
//  3. Fsync. Under SyncInterval the flusher covers every append since the
//     previous fsync with one fdatasync; syncActive then advances the
//     durable watermark (syncedLSN) past all of them at once.
//
// A group-commit acknowledger appends under whatever higher-level
// ordering lock it already uses (the server's walMu, which also orders
// queue insertion), releases that lock, and only then blocks in
// WaitDurable — so waiting for the flush never serializes the group, and
// ack order stays decoupled from durability order. The invariants:
//
//   - WaitDurable(lsn) returns nil only after a successful fsync covered
//     lsn. An acked record therefore survives kill -9 and power loss.
//   - A failed or stalled fsync (wal.fail-fsync, wal.stall-fsync) keeps
//     the watermark put: no waiter unblocks, so an un-fsynced append is
//     never acknowledged — the caller times out and reports the write
//     unacknowledged, exactly like a SyncAlways fsync failure.
//   - Replication is untouched: frames are byte-identical regardless of
//     when they reach stable storage, so follower logs stay bit-for-bit
//     copies of the leader's (the PR 5/6 protocol).

import (
	"context"
	"fmt"
)

// WaitDurable blocks until every record up to and including lsn is
// covered by a successful fsync, the context is done, or the store
// closes. Under SyncNever it returns immediately (the caller opted out
// of durability); under SyncAlways the append already synced and the
// fast path hits. Call it after releasing any lock that orders appends —
// waiting inside that lock would collapse the commit group to size one.
func (s *Store) WaitDurable(ctx context.Context, lsn uint64) error {
	if s.opts.Sync == SyncNever {
		return nil
	}
	if s.syncedLSN.Load() >= lsn {
		return nil
	}
	s.met.DurableWaits.Add(1)
	for {
		s.mu.Lock()
		if s.syncedLSN.Load() >= lsn {
			s.mu.Unlock()
			return nil
		}
		if s.closed {
			s.mu.Unlock()
			return fmt.Errorf("store: wait durable lsn %d: store closed", lsn)
		}
		ch := s.syncNotify
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return fmt.Errorf("store: wait durable lsn %d: %w", lsn, ctx.Err())
		case <-ch:
		}
	}
}

// SyncedLSN reports the highest LSN covered by a successful fsync (0
// when nothing has been synced).
func (s *Store) SyncedLSN() uint64 { return s.syncedLSN.Load() }

// AckAfterFsync reports whether the store's owner should gate
// acknowledgements on WaitDurable: group commit is enabled and the sync
// policy actually promises durability.
func (s *Store) AckAfterFsync() bool {
	return s.opts.GroupCommit && s.opts.Sync != SyncNever
}
