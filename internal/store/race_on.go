//go:build race

package store

// raceEnabled reports whether the race detector is compiled in. See
// race_off.go.
const raceEnabled = true
