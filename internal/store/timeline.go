package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// timelineName is the timeline file inside a data directory.
const timelineName = "timeline.json"

// Timeline records which replication epoch a data directory's log
// belongs to. Every promotion starts a new epoch: the promoting follower
// bumps Epoch and records PromoteLSN, the last LSN it had when it took
// over. A returning node whose log extends past the new epoch's
// PromoteLSN has diverged — those records were acknowledged by the old
// primary but never replicated — and must reconcile them by merging
// (mergeable-state semantics make this lossless) before resyncing onto
// the new timeline.
type Timeline struct {
	// Epoch counts promotions; 0 is the initial, never-promoted timeline.
	Epoch uint64 `json:"epoch"`
	// PromoteLSN is the last LSN carried over from the previous epoch:
	// records above it on the old timeline were never replicated.
	PromoteLSN uint64 `json:"promote_lsn"`
}

// LoadTimeline reads dir's timeline. A missing file is the zero timeline
// (epoch 0), not an error.
func LoadTimeline(dir string) (Timeline, error) {
	data, err := os.ReadFile(filepath.Join(dir, timelineName))
	if os.IsNotExist(err) {
		return Timeline{}, nil
	}
	if err != nil {
		return Timeline{}, fmt.Errorf("store: read timeline: %w", err)
	}
	var tl Timeline
	if err := json.Unmarshal(data, &tl); err != nil {
		return Timeline{}, fmt.Errorf("store: parse timeline: %w", err)
	}
	return tl, nil
}

// SaveTimeline durably writes dir's timeline (file fsynced, directory
// fsynced) — called on promotion and when a follower adopts a primary's
// epoch.
func SaveTimeline(dir string, tl Timeline) error {
	data, err := json.Marshal(&tl)
	if err != nil {
		return fmt.Errorf("store: encode timeline: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileSync(filepath.Join(dir, timelineName), data); err != nil {
		return fmt.Errorf("store: write timeline: %w", err)
	}
	return fsyncDir(dir)
}
