package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// manifestName is the checkpoint manifest file, written last inside a
// generation directory: its presence marks the generation complete.
const manifestName = "manifest.json"

// cpPrefix prefixes checkpoint generation directories.
const cpPrefix = "cp-"

// manifest is the checkpoint's index: every live sketch's configuration,
// the LSN its state blob covers (all records ≤ LSN are reflected in the
// blob, none after), and the blob's integrity data.
type manifest struct {
	// Generation is the checkpoint's monotonically increasing id.
	Generation uint64 `json:"generation"`
	// CreatedUnix is the commit wall-clock time.
	CreatedUnix int64 `json:"created_unix"`
	// Cutoff is the truncation LSN: every record ≤ Cutoff is covered by
	// this checkpoint, so segments entirely below it were deleted.
	Cutoff uint64 `json:"cutoff"`
	// Sketches lists the checkpointed sketches.
	Sketches []manifestSketch `json:"sketches"`
}

// manifestSketch is one sketch's entry in the manifest.
type manifestSketch struct {
	Spec SketchSpec `json:"spec"`
	// Meta carries the applied-LSN watermark and served counters.
	CheckpointMeta
	// File is the state blob's name inside the generation directory.
	File string `json:"file"`
	// CRC is the blob's CRC32 (IEEE); Size its byte length.
	CRC  uint32 `json:"crc"`
	Size int64  `json:"size"`
}

// CheckpointMeta is the per-sketch bookkeeping a checkpoint persists
// alongside the state blob: the watermark plus the operator-visible
// counters the state itself cannot reproduce. Read every field under
// the same lock the state is encoded under, so state and meta are one
// consistent cut.
type CheckpointMeta struct {
	// LSN is the highest record applied to the state blob; recovery
	// replays exactly the records above it.
	LSN uint64 `json:"lsn"`
	// Rows, Pushes and Dropped are the sketch's served counters at
	// checkpoint time (rows ingested, snapshots merged, rollup rows
	// past retention).
	Rows    int64 `json:"rows"`
	Pushes  int64 `json:"pushes,omitempty"`
	Dropped int64 `json:"dropped,omitempty"`
}

// cpDirName renders a generation's directory name.
func cpDirName(gen uint64) string { return fmt.Sprintf("%s%020d", cpPrefix, gen) }

// listCheckpointGens returns the committed checkpoint generations in dir,
// ascending. Only directories containing a manifest count.
func listCheckpointGens(dir string) []uint64 {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, ent := range ents {
		name := ent.Name()
		if !ent.IsDir() || !strings.HasPrefix(name, cpPrefix) {
			continue
		}
		gen, err := strconv.ParseUint(strings.TrimPrefix(name, cpPrefix), 10, 64)
		if err != nil {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, name, manifestName)); err != nil {
			continue // incomplete generation (crash mid-checkpoint)
		}
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// latestCheckpointGen returns the newest committed generation (0 = none).
func latestCheckpointGen(dir string) uint64 {
	gens := listCheckpointGens(dir)
	if len(gens) == 0 {
		return 0
	}
	return gens[len(gens)-1]
}

// loadManifest reads and parses a generation's manifest.
func loadManifest(dir string, gen uint64) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, cpDirName(gen), manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: parse manifest: %w", err)
	}
	return &m, nil
}

// loadCheckpointBlob reads and CRC-verifies one sketch's state blob.
func loadCheckpointBlob(dir string, gen uint64, ms *manifestSketch) ([]byte, error) {
	blob, err := os.ReadFile(filepath.Join(dir, cpDirName(gen), ms.File))
	if err != nil {
		return nil, fmt.Errorf("store: read checkpoint state for %q: %w", ms.Spec.Name, err)
	}
	if int64(len(blob)) != ms.Size || crc32.ChecksumIEEE(blob) != ms.CRC {
		return nil, fmt.Errorf("store: checkpoint state for %q fails its CRC", ms.Spec.Name)
	}
	return blob, nil
}

// CheckpointWriter stages one checkpoint generation: add every live
// sketch's state, then Commit to install it atomically and truncate the
// log, or Abort to discard. Begin with Store.BeginCheckpoint.
type CheckpointWriter struct {
	s       *Store
	gen     uint64
	baseLSN uint64 // LastLSN at begin: the cutoff when no sketch bounds it
	tmpDir  string
	man     manifest
	done    bool
}

// BaseLSN returns the log position captured when the checkpoint began:
// every record at or below it existed before the checkpoint walk
// started. A sketch with nothing in flight may raise its replay gate to
// this value.
func (c *CheckpointWriter) BaseLSN() uint64 { return c.baseLSN }

// BeginCheckpoint allocates the next generation and its staging
// directory. The returned writer's cutoff starts at the log's current
// LastLSN; each added sketch lowers it to the minimum covered LSN, so
// truncation never outruns the least-caught-up sketch.
func (s *Store) BeginCheckpoint() (*CheckpointWriter, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: checkpoint on closed store")
	}
	s.cpGen++
	gen := s.cpGen
	base := s.segFirst + uint64(s.segRecs) - 1
	s.mu.Unlock()

	tmp := filepath.Join(s.opts.Dir, fmt.Sprintf(".tmp-%s", cpDirName(gen)))
	if err := os.RemoveAll(tmp); err != nil {
		return nil, fmt.Errorf("store: clear checkpoint staging: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, fmt.Errorf("store: checkpoint staging: %w", err)
	}
	return &CheckpointWriter{
		s: s, gen: gen, baseLSN: base, tmpDir: tmp,
		man: manifest{Generation: gen, CreatedUnix: time.Now().Unix()},
	}, nil
}

// Add stages one sketch's state blob with its meta (watermark +
// counters, read under the same lock the state was encoded under).
func (c *CheckpointWriter) Add(spec SketchSpec, meta CheckpointMeta, state []byte) error {
	if c.done {
		return fmt.Errorf("store: add to finished checkpoint")
	}
	file := fmt.Sprintf("%04d.state", len(c.man.Sketches))
	path := filepath.Join(c.tmpDir, file)
	if err := writeFileSync(path, state); err != nil {
		return fmt.Errorf("store: write checkpoint state for %q: %w", spec.Name, err)
	}
	c.man.Sketches = append(c.man.Sketches, manifestSketch{
		Spec: spec, CheckpointMeta: meta, File: file,
		CRC: crc32.ChecksumIEEE(state), Size: int64(len(state)),
	})
	return nil
}

// Commit finalizes the generation: manifest written and fsynced, staging
// directory renamed into place, parent directory fsynced, older
// generations removed, and fully covered log segments deleted. After
// Commit the checkpoint is the recovery baseline.
func (c *CheckpointWriter) Commit() error {
	if c.done {
		return fmt.Errorf("store: double checkpoint commit")
	}
	c.done = true
	cutoff := c.baseLSN
	for i := range c.man.Sketches {
		if l := c.man.Sketches[i].LSN; l < cutoff {
			cutoff = l
		}
	}
	c.man.Cutoff = cutoff
	data, err := json.MarshalIndent(&c.man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := writeFileSync(filepath.Join(c.tmpDir, manifestName), data); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	final := filepath.Join(c.s.opts.Dir, cpDirName(c.gen))
	if err := os.Rename(c.tmpDir, final); err != nil {
		return fmt.Errorf("store: install checkpoint: %w", err)
	}
	if err := fsyncDir(c.s.opts.Dir); err != nil {
		return fmt.Errorf("store: sync data dir: %w", err)
	}
	c.s.met.Checkpoints.Add(1)

	// Older generations are superseded; remove them, then drop every
	// segment whose records all fall at or below the cutoff.
	for _, gen := range listCheckpointGens(c.s.opts.Dir) {
		if gen < c.gen {
			os.RemoveAll(filepath.Join(c.s.opts.Dir, cpDirName(gen)))
		}
	}
	return c.s.truncateThrough(cutoff)
}

// Abort discards the staged generation.
func (c *CheckpointWriter) Abort() {
	if c.done {
		return
	}
	c.done = true
	os.RemoveAll(c.tmpDir)
}

// truncateThrough deletes segments whose every record has LSN ≤ cutoff.
// The active segment always survives.
func (s *Store) truncateThrough(cutoff uint64) error {
	s.mu.Lock()
	activeFirst := s.segFirst
	s.mu.Unlock()
	segs, err := listSegments(s.opts.Dir)
	if err != nil {
		return err
	}
	removed := false
	for i := range segs {
		// A segment's records end where the next one begins; without a
		// successor its extent is unknown from the name alone, and the
		// active segment is still being written — keep both.
		if i+1 >= len(segs) || segs[i].firstLSN >= activeFirst {
			break
		}
		if segs[i+1].firstLSN-1 > cutoff {
			break
		}
		if err := os.Remove(segs[i].path); err != nil {
			return fmt.Errorf("store: truncate segment: %w", err)
		}
		removed = true
	}
	if removed {
		return fsyncDir(walDir(s.opts.Dir))
	}
	return nil
}

// writeFileSync writes data to path and fsyncs the file.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
