package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segmentInfo describes one on-disk WAL segment file.
type segmentInfo struct {
	path     string
	firstLSN uint64 // from the file name
	records  int    // valid records found by scan
	validLen int64  // bytes up to and including the last valid record
	size     int64  // file size on disk
	torn     bool   // file ends in a torn/corrupt record
	tornErr  error  // what stopped the scan, when torn
}

// lastLSN returns the LSN of the segment's last valid record (firstLSN-1
// when empty).
func (s *segmentInfo) lastLSN() uint64 { return s.firstLSN + uint64(s.records) - 1 }

// segName renders a segment file name for its first LSN.
func segName(firstLSN uint64) string { return fmt.Sprintf("%020d.wal", firstLSN) }

// walDir returns the log subdirectory of a data dir.
func walDir(dir string) string { return filepath.Join(dir, "wal") }

// listSegments finds the data dir's segment files, sorted by first LSN.
// A missing wal directory is an empty log, not an error.
func listSegments(dir string) ([]segmentInfo, error) {
	ents, err := os.ReadDir(walDir(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: list segments: %w", err)
	}
	var segs []segmentInfo
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
		if err != nil || first == 0 {
			continue // not a segment file; leave it alone
		}
		segs = append(segs, segmentInfo{path: filepath.Join(walDir(dir), name), firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// scanSegment reads one segment file, validating framing and CRCs. When
// fn is non-nil it is called with each valid record's LSN and payload
// (the payload aliases the read buffer and is only valid for the call).
// A torn or corrupt record stops the scan and marks the segment torn;
// scanning never fails on bad record bytes, only on I/O errors.
func scanSegment(seg *segmentInfo, fn func(lsn uint64, payload []byte) error) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return fmt.Errorf("store: read segment: %w", err)
	}
	seg.size = int64(len(data))
	seg.records = 0
	seg.torn = false
	seg.tornErr = nil
	if len(data) < len(segMagic) || [8]byte(data[:8]) != segMagic {
		seg.validLen = 0
		seg.torn = true
		seg.tornErr = fmt.Errorf("bad segment magic")
		return nil
	}
	off := int64(len(segMagic))
	seg.validLen = off
	for int64(len(data))-off >= frameOverhead {
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if plen == 0 || plen > maxRecordBytes {
			seg.torn, seg.tornErr = true, fmt.Errorf("record at offset %d: bad length %d", off, plen)
			break
		}
		if int64(len(data))-off-frameOverhead < plen {
			seg.torn, seg.tornErr = true, fmt.Errorf("record at offset %d: torn (%d of %d payload bytes)",
				off, int64(len(data))-off-frameOverhead, plen)
			break
		}
		payload := data[off+frameOverhead : off+frameOverhead+plen]
		if crc32.ChecksumIEEE(payload) != sum {
			seg.torn, seg.tornErr = true, fmt.Errorf("record at offset %d: CRC mismatch", off)
			break
		}
		if fn != nil {
			if err := fn(seg.firstLSN+uint64(seg.records), payload); err != nil {
				return err
			}
		}
		seg.records++
		off += frameOverhead + plen
		seg.validLen = off
	}
	if !seg.torn && off != int64(len(data)) {
		// Fewer than frameOverhead trailing bytes: a torn frame header.
		seg.torn = true
		seg.tornErr = fmt.Errorf("record at offset %d: torn frame header (%d bytes)", off, int64(len(data))-off)
	}
	return nil
}

// scanLog scans every segment in order. Replay stops at the first torn or
// corrupt segment (later segments are reported but their records are not
// delivered — after damage the LSN sequence cannot be trusted), matching
// the recovery contract: salvage the valid prefix, never panic. Records
// from overlapping segments (lsn ≤ an already-delivered lsn) are skipped.
func scanLog(dir string, fn func(rec *Record) error) (segs []segmentInfo, lastLSN uint64, err error) {
	segs, err = listSegments(dir)
	if err != nil {
		return nil, 0, err
	}
	stopped := false
	var rec Record
	for i := range segs {
		seg := &segs[i]
		scanErr := scanSegment(seg, func(lsn uint64, payload []byte) error {
			if lsn <= lastLSN && lastLSN != 0 {
				return nil // duplicate/overlapping segment content
			}
			lastLSN = lsn
			if stopped || fn == nil {
				return nil
			}
			rec = Record{LSN: lsn}
			if derr := decodeRecord(payload, &rec); derr != nil {
				// A framed record that fails semantic decode is treated
				// like corruption: stop delivering, keep counting.
				stopped = true
				return nil
			}
			return fn(&rec)
		})
		if scanErr != nil {
			return segs, lastLSN, scanErr
		}
		if seg.lastLSN() > lastLSN {
			lastLSN = seg.lastLSN()
		}
		if seg.torn {
			stopped = true
		}
	}
	return segs, lastLSN, nil
}

// fsyncDir fsyncs a directory so entry creation/removal is durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
