// Package hierarchy computes hierarchical aggregates and hierarchical
// heavy hitters (HHH) from a Space-Saving sketch's bins.
//
// The paper (§3.1) points out that because a disaggregated subset-sum
// sketch answers arbitrary group-by conditions, it "can compute the next
// level in a hierarchy": network administrators want both individual hosts
// with excess traffic and aggregated statistics per subnet (Zhang et al.
// 2004; Mitzenmacher, Steinke & Thaler 2012). This package implements that
// post-processing: given bins whose labels are separator-delimited paths
// (IP octets, domain components, product categories), it aggregates counts
// at every prefix and extracts the classic discounted hierarchical heavy
// hitters.
package hierarchy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Node is one prefix in the hierarchy with its aggregated estimates.
type Node struct {
	// Prefix is the path, e.g. "10.0" for the 10.0.*.* subnet with
	// separator ".". The empty prefix is the root.
	Prefix string
	// Depth is the number of path components (root = 0).
	Depth int
	// Count is the estimated total over all items under the prefix — an
	// unbiased subset sum when the bins come from an Unbiased Space
	// Saving sketch.
	Count float64
	// Discounted is Count minus the mass already covered by
	// hierarchical heavy hitters strictly below this prefix; only
	// populated by HeavyHitters.
	Discounted float64
}

// Aggregate sums bin counts at every prefix of every bin label, including
// the root (empty prefix) and the full labels themselves. Prefixes are in
// map form keyed by path.
func Aggregate(bins []core.Bin, sep string) map[string]float64 {
	agg := make(map[string]float64)
	for _, b := range bins {
		agg[""] += b.Count
		parts := strings.Split(b.Item, sep)
		prefix := ""
		for i, p := range parts {
			if i == 0 {
				prefix = p
			} else {
				prefix = prefix + sep + p
			}
			agg[prefix] += b.Count
		}
	}
	return agg
}

// Level returns the nodes at the given depth (number of components),
// sorted by descending count. Depth 0 returns just the root.
func Level(bins []core.Bin, sep string, depth int) []Node {
	if depth < 0 {
		panic(fmt.Sprintf("hierarchy: depth %d", depth))
	}
	agg := Aggregate(bins, sep)
	var out []Node
	for prefix, c := range agg {
		if depthOf(prefix, sep) == depth {
			out = append(out, Node{Prefix: prefix, Depth: depth, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Prefix < out[j].Prefix
	})
	return out
}

func depthOf(prefix, sep string) int {
	if prefix == "" {
		return 0
	}
	return strings.Count(prefix, sep) + 1
}

func parentOf(prefix, sep string) string {
	i := strings.LastIndex(prefix, sep)
	if i < 0 {
		return ""
	}
	return prefix[:i]
}

// HeavyHitters extracts the hierarchical heavy hitters at threshold phi:
// working bottom-up, a prefix is an HHH when its count, after discounting
// the mass of HHH prefixes strictly below it, is at least phi times the
// total. Results are sorted by depth descending (most specific first),
// then by discounted count descending.
//
// With phi·total above the sketch's noise floor (a few multiples of the
// minimum bin count), the discovered prefixes are reliable; counts inherit
// the sketch's unbiasedness.
func HeavyHitters(bins []core.Bin, sep string, phi float64) []Node {
	if phi <= 0 || phi > 1 {
		panic(fmt.Sprintf("hierarchy: phi = %v outside (0,1]", phi))
	}
	agg := Aggregate(bins, sep)
	total := agg[""]
	if total <= 0 {
		return nil
	}
	threshold := phi * total

	// Group prefixes by depth.
	maxDepth := 0
	byDepth := map[int][]string{}
	for prefix := range agg {
		d := depthOf(prefix, sep)
		byDepth[d] = append(byDepth[d], prefix)
		if d > maxDepth {
			maxDepth = d
		}
	}

	// covered[p] = mass under p already claimed by HHH descendants.
	covered := make(map[string]float64)
	var hhh []Node
	for d := maxDepth; d >= 0; d-- {
		prefixes := byDepth[d]
		sort.Strings(prefixes) // determinism
		for _, p := range prefixes {
			disc := agg[p] - covered[p]
			if disc < 0 {
				disc = 0
			}
			parent := parentOf(p, sep)
			if disc >= threshold {
				hhh = append(hhh, Node{Prefix: p, Depth: d, Count: agg[p], Discounted: disc})
				// p claims its whole subtree: the parent sees all of
				// agg[p] as covered (subsuming anything HHH
				// descendants had claimed).
				if p != "" {
					covered[parent] += agg[p]
				}
			} else if p != "" {
				// Pass through whatever p's descendants claimed.
				covered[parent] += covered[p]
			}
		}
	}
	sort.Slice(hhh, func(i, j int) bool {
		if hhh[i].Depth != hhh[j].Depth {
			return hhh[i].Depth > hhh[j].Depth
		}
		if hhh[i].Discounted != hhh[j].Discounted {
			return hhh[i].Discounted > hhh[j].Discounted
		}
		return hhh[i].Prefix < hhh[j].Prefix
	})
	return hhh
}
