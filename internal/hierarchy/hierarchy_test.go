package hierarchy

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

func bin(item string, c float64) core.Bin { return core.Bin{Item: item, Count: c} }

func TestAggregate(t *testing.T) {
	bins := []core.Bin{
		bin("a.b.c", 3),
		bin("a.b.d", 2),
		bin("a.e", 5),
		bin("f", 1),
	}
	agg := Aggregate(bins, ".")
	want := map[string]float64{
		"": 11, "a": 10, "a.b": 5, "a.b.c": 3, "a.b.d": 2, "a.e": 5, "f": 1,
	}
	if len(agg) != len(want) {
		t.Fatalf("agg = %v", agg)
	}
	for k, v := range want {
		if agg[k] != v {
			t.Errorf("agg[%q] = %v, want %v", k, agg[k], v)
		}
	}
}

func TestLevel(t *testing.T) {
	bins := []core.Bin{bin("a.b", 3), bin("a.c", 2), bin("d.e", 7)}
	l1 := Level(bins, ".", 1)
	if len(l1) != 2 || l1[0].Prefix != "d" || l1[0].Count != 7 || l1[1].Prefix != "a" || l1[1].Count != 5 {
		t.Fatalf("Level 1 = %v", l1)
	}
	l0 := Level(bins, ".", 0)
	if len(l0) != 1 || l0[0].Count != 12 {
		t.Fatalf("Level 0 = %v", l0)
	}
	l2 := Level(bins, ".", 2)
	if len(l2) != 3 {
		t.Fatalf("Level 2 = %v", l2)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative depth did not panic")
		}
	}()
	Level(bins, ".", -1)
}

func TestHeavyHittersBasic(t *testing.T) {
	// One dominant leaf, one dominant subnet made of small leaves.
	bins := []core.Bin{
		bin("10.0.0.1", 500),                                          // individual heavy hitter
		bin("10.1.0.1", 60), bin("10.1.0.2", 70), bin("10.1.1.3", 80), // subnet 10.1 heavy in aggregate
		bin("20.0.0.1", 40),
	}
	hhh := HeavyHitters(bins, ".", 0.25) // threshold = 0.25 × 750 = 187.5
	got := map[string]float64{}
	for _, n := range hhh {
		got[n.Prefix] = n.Discounted
	}
	if _, ok := got["10.0.0.1"]; !ok {
		t.Errorf("leaf heavy hitter missing: %v", hhh)
	}
	// 10.1 has 210 aggregate from leaves each below threshold.
	if d, ok := got["10.1"]; !ok || d != 210 {
		t.Errorf("subnet HHH missing or wrong discount: %v", hhh)
	}
	// 10 should NOT be an HHH: its 710 is covered by 10.0.0.1's chain and
	// 10.1 → discounted 0... (10.0.0.1 covers via its ancestors).
	if _, ok := got["10"]; ok {
		t.Errorf("prefix 10 reported despite full coverage: %v", hhh)
	}
	// Root not an HHH either (750 − 500 − 210 = 40 < 187.5).
	if _, ok := got[""]; ok {
		t.Errorf("root reported: %v", hhh)
	}
}

func TestHeavyHittersDiscounting(t *testing.T) {
	// A chain where every level adds a bit of its own mass.
	bins := []core.Bin{
		bin("a.b.c", 100),
		bin("a.b.x", 30),
		bin("a.y", 30),
		bin("z", 40),
	}
	// total 200, phi 0.5 → threshold 100: only a.b.c qualifies at leaf
	// level; then a.b discounted = 130−100 = 30 < 100; a = 160−100 = 60
	// < 100; root = 200−100 = 100 ≥ 100 → root is an HHH.
	hhh := HeavyHitters(bins, ".", 0.5)
	if len(hhh) != 2 {
		t.Fatalf("hhh = %v", hhh)
	}
	if hhh[0].Prefix != "a.b.c" || hhh[0].Discounted != 100 {
		t.Errorf("first hhh = %+v", hhh[0])
	}
	if hhh[1].Prefix != "" || hhh[1].Discounted != 100 {
		t.Errorf("second hhh = %+v", hhh[1])
	}
}

func TestHeavyHittersOrdering(t *testing.T) {
	bins := []core.Bin{
		bin("a.a", 100), bin("b.b", 150), bin("c", 120),
	}
	hhh := HeavyHitters(bins, ".", 0.2)
	for i := 1; i < len(hhh); i++ {
		if hhh[i].Depth > hhh[i-1].Depth {
			t.Fatalf("not depth-descending: %v", hhh)
		}
		if hhh[i].Depth == hhh[i-1].Depth && hhh[i].Discounted > hhh[i-1].Discounted {
			t.Fatalf("not discount-descending within depth: %v", hhh)
		}
	}
}

func TestHeavyHittersValidation(t *testing.T) {
	if got := HeavyHitters(nil, ".", 0.5); got != nil {
		t.Errorf("empty bins → %v", got)
	}
	for _, phi := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("phi=%v did not panic", phi)
				}
			}()
			HeavyHitters([]core.Bin{bin("a", 1)}, ".", phi)
		}()
	}
}

// TestHeavyHittersDiscountInvariant property-checks the defining HHH
// invariant on random hierarchies: the sum of discounted counts of all HHH
// nodes never exceeds the total, and every reported node meets the
// threshold.
func TestHeavyHittersDiscountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		var bins []core.Bin
		var total float64
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			depth := 1 + rng.Intn(3)
			parts := make([]string, depth)
			for d := range parts {
				parts[d] = fmt.Sprintf("n%d", rng.Intn(3))
			}
			c := float64(1 + rng.Intn(100))
			bins = append(bins, bin(strings.Join(parts, "."), c))
			total += c
		}
		phi := 0.05 + rng.Float64()*0.5
		hhh := HeavyHitters(bins, ".", phi)
		var discSum float64
		for _, node := range hhh {
			if node.Discounted < phi*total-1e-9 {
				t.Fatalf("trial %d: node %q discounted %v below threshold %v",
					trial, node.Prefix, node.Discounted, phi*total)
			}
			if node.Discounted > node.Count+1e-9 {
				t.Fatalf("trial %d: node %q discounted %v exceeds count %v",
					trial, node.Prefix, node.Discounted, node.Count)
			}
			discSum += node.Discounted
		}
		if discSum > total+1e-6 {
			t.Fatalf("trial %d: Σ discounted %v exceeds total %v", trial, discSum, total)
		}
	}
}

// TestEndToEndWithSketch drives the full pipeline: stream → Unbiased Space
// Saving sketch → hierarchy post-processing, verifying the scanner subnet
// is found as an HHH even though no single flow in it is frequent — the
// disaggregated use case from the paper's intro.
func TestEndToEndWithSketch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sk := core.New(256, core.Unbiased, rng)
	// 40% of rows: scanner subnet 172.16.9.* spread over 256 hosts.
	// 10%: one hot flow. 50%: background noise across many subnets.
	for i := 0; i < 60000; i++ {
		switch {
		case i%10 < 4:
			sk.Update(fmt.Sprintf("172.16.9.%d", rng.Intn(256)))
		case i%10 < 5:
			sk.Update("10.0.0.1")
		default:
			sk.Update(fmt.Sprintf("10.%d.%d.%d", rng.Intn(32), rng.Intn(16), rng.Intn(16)))
		}
	}
	hhh := HeavyHitters(sk.Bins(), ".", 0.08)
	foundScanner, foundHot := false, false
	for _, n := range hhh {
		if strings.HasPrefix(n.Prefix, "172.16.9") {
			foundScanner = true
		}
		if n.Prefix == "10.0.0.1" {
			foundHot = true
		}
	}
	if !foundScanner {
		t.Errorf("scanner subnet not detected: %v", hhh)
	}
	if !foundHot {
		t.Errorf("hot flow not detected: %v", hhh)
	}
}
