// Package leakcheck fails a test binary that leaks goroutines. Wiring
// it into a package's TestMain records the goroutine count before any
// test runs and, after a passing run, insists the count settles back to
// that baseline (plus a small slack for the runtime's own workers).
// Goroutines that are merely slow to exit — pooled keep-alive readers,
// timers unwinding — get a grace window with idle-connection sweeps and
// GC nudges between samples; goroutines that never exit fail the run
// with a full stack dump, which is how the hedged-read context leak in
// the cluster gatherer was pinned down. A failing test run is reported
// as-is without the leak gate, so the first error stays the loudest.
package leakcheck

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"
)

// slack is how many goroutines above the baseline a settled process may
// hold: the runtime and the test framework park a few workers that are
// not the tests' fault.
const slack = 5

// settleTimeout bounds how long Main waits for goroutines to drain.
const settleTimeout = 10 * time.Second

// Main runs a package's tests with the leak gate: use it as the body of
// TestMain(m). The gate only arms when the tests themselves passed.
func Main(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if err := settle(base); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// settle polls until the goroutine count returns to base+slack, sweeping
// idle HTTP connections and nudging the GC between samples so pooled
// keep-alive readers and finalizer-driven cleanups get their chance to
// exit. Past the timeout it reports the count and every live stack.
func settle(base int) error {
	deadline := time.Now().Add(settleTimeout)
	for {
		if n := runtime.NumGoroutine(); n <= base+slack {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		http.DefaultClient.CloseIdleConnections()
		if t, ok := http.DefaultTransport.(*http.Transport); ok {
			t.CloseIdleConnections()
		}
		runtime.GC()
		time.Sleep(100 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("%d goroutines still running after %v (baseline %d, slack %d); stacks:\n%s",
		runtime.NumGoroutine(), settleTimeout, base, slack, buf)
}
