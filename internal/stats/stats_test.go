package stats

import (
	"math"
	"testing"
)

func TestAggregate(t *testing.T) {
	got := Aggregate([]string{"a", "b", "a", "a"})
	if got["a"] != 3 || got["b"] != 1 || len(got) != 2 {
		t.Errorf("Aggregate = %v", got)
	}
	if n := Aggregate(nil); len(n) != 0 {
		t.Errorf("Aggregate(nil) = %v", n)
	}
}

func TestAccumulatorMoments(t *testing.T) {
	a := NewAccumulator(10)
	for _, x := range []float64{8, 10, 12} {
		a.Add(x)
	}
	if a.N() != 3 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Truth() != 10 {
		t.Fatalf("Truth = %v", a.Truth())
	}
	if got := a.Mean(); math.Abs(got-10) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := a.Bias(); math.Abs(got) > 1e-12 {
		t.Errorf("Bias = %v", got)
	}
	if got := a.Variance(); math.Abs(got-4) > 1e-12 { // sample var of 8,10,12
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := a.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if got := a.MSE(); math.Abs(got-8.0/3) > 1e-12 {
		t.Errorf("MSE = %v, want 8/3", got)
	}
	if got := a.RMSE(); math.Abs(got-math.Sqrt(8.0/3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := a.RRMSE(); math.Abs(got-math.Sqrt(8.0/3)/10) > 1e-12 {
		t.Errorf("RRMSE = %v", got)
	}
	if got := a.RelativeMSE(); math.Abs(got-8.0/300) > 1e-12 {
		t.Errorf("RelativeMSE = %v", got)
	}
}

func TestAccumulatorBias(t *testing.T) {
	a := NewAccumulator(5)
	a.Add(7)
	a.Add(7)
	if got := a.Bias(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Bias = %v, want 2", got)
	}
	if a.ZScore() == 0 {
		t.Error("ZScore = 0 for biased estimates")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	a := NewAccumulator(5)
	if a.Bias() != 0 || a.MSE() != 0 || a.Variance() != 0 {
		t.Error("empty accumulator nonzero moments")
	}
	if !math.IsNaN(a.Coverage()) {
		t.Error("Coverage without intervals should be NaN")
	}
	if !math.IsInf(a.StandardError(), 1) {
		t.Error("StandardError with n<2 should be +Inf")
	}
}

func TestAccumulatorCoverage(t *testing.T) {
	a := NewAccumulator(10)
	a.AddCI(8, 12)  // covers
	a.AddCI(11, 15) // misses
	a.AddCI(10, 10) // boundary covers
	if got := a.Coverage(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Coverage = %v, want 2/3", got)
	}
}

func TestAccumulatorZScoreDegenerate(t *testing.T) {
	a := NewAccumulator(3)
	a.Add(3)
	a.Add(3)
	a.Add(3)
	// Zero variance, zero bias → z = 0.
	if got := a.ZScore(); got != 0 {
		t.Errorf("ZScore = %v, want 0", got)
	}
	b := NewAccumulator(5)
	b.Add(3)
	b.Add(3)
	if !math.IsInf(b.ZScore(), 1) {
		t.Errorf("ZScore = %v, want +Inf for zero-variance biased", b.ZScore())
	}
}

func TestInclusionTracker(t *testing.T) {
	tr := NewInclusionTracker()
	tr.Record([]string{"a", "b"})
	tr.Record([]string{"a"})
	if got := tr.Probability("a"); got != 1 {
		t.Errorf("P(a) = %v", got)
	}
	if got := tr.Probability("b"); got != 0.5 {
		t.Errorf("P(b) = %v", got)
	}
	if got := tr.Probability("c"); got != 0 {
		t.Errorf("P(c) = %v", got)
	}
	if tr.Replicates() != 2 {
		t.Errorf("Replicates = %d", tr.Replicates())
	}
	empty := NewInclusionTracker()
	if empty.Probability("x") != 0 {
		t.Error("empty tracker probability nonzero")
	}
}

func TestBinnedCurve(t *testing.T) {
	xs := []float64{1, 10, 100, 1000, 1, 10}
	ys := []float64{1, 2, 3, 4, 3, 4}
	pts := BinnedCurve(xs, ys, 4)
	if len(pts) != 4 {
		t.Fatalf("points = %v", pts)
	}
	// First bin holds both x=1 observations: mean y = 2, n = 2.
	if pts[0].N != 2 || math.Abs(pts[0].Y-2) > 1e-12 || math.Abs(pts[0].X-1) > 1e-12 {
		t.Errorf("first bin = %+v", pts[0])
	}
	// X ascending across bins.
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Errorf("bins not ascending: %v", pts)
		}
	}
}

func TestBinnedCurveEdgeCases(t *testing.T) {
	if pts := BinnedCurve(nil, nil, 5); pts != nil {
		t.Errorf("empty input → %v", pts)
	}
	// Non-positive xs dropped.
	pts := BinnedCurve([]float64{-1, 0, 5}, []float64{9, 9, 2}, 3)
	if len(pts) != 1 || pts[0].Y != 2 {
		t.Errorf("pts = %v", pts)
	}
	// Mismatched lengths panic.
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths did not panic")
		}
	}()
	BinnedCurve([]float64{1}, []float64{1, 2}, 2)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile sorted the input in place")
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile(q>1) did not panic")
		}
	}()
	Quantile(xs, 1.5)
}

func TestMeanAndGeometricMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
	if got := GeometricMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeometricMean = %v, want 10", got)
	}
	// Non-positive entries skipped.
	if got := GeometricMean([]float64{-5, 0, 10}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeometricMean with junk = %v, want 10", got)
	}
	if !math.IsNaN(GeometricMean([]float64{0, -1})) {
		t.Error("GeometricMean of non-positive not NaN")
	}
}
