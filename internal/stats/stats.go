// Package stats provides the evaluation machinery behind the paper's
// experiments: exact aggregation for ground truth, error metrics (MSE,
// relative root MSE, relative efficiency), confidence-interval coverage,
// empirical inclusion probabilities over replicates, and binned smoothing
// for error-versus-count curves.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Aggregate computes exact per-item counts for a materialized row stream —
// the expensive pre-aggregation the disaggregated sketches avoid, used here
// for ground truth and to feed the pre-aggregated baselines.
func Aggregate(rows []string) map[string]int64 {
	out := make(map[string]int64)
	for _, r := range rows {
		out[r]++
	}
	return out
}

// Accumulator tracks the moments of repeated estimates of one target.
type Accumulator struct {
	n          int64
	mean, m2   float64 // Welford running mean and sum of squared deviations
	sumSqErr   float64 // Σ (est − truth)²
	sumErr     float64 // Σ (est − truth)
	truth      float64
	covered    int64 // CI coverage successes
	ciAttempts int64
}

// NewAccumulator tracks estimates of the given true value.
func NewAccumulator(truth float64) *Accumulator { return &Accumulator{truth: truth} }

// Add records one estimate.
func (a *Accumulator) Add(est float64) {
	a.n++
	d := est - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (est - a.mean)
	e := est - a.truth
	a.sumErr += e
	a.sumSqErr += e * e
}

// AddCI additionally records whether a confidence interval covered truth.
func (a *Accumulator) AddCI(lo, hi float64) {
	a.ciAttempts++
	if a.truth >= lo && a.truth <= hi {
		a.covered++
	}
}

// N returns the number of estimates recorded.
func (a *Accumulator) N() int64 { return a.n }

// Truth returns the target value.
func (a *Accumulator) Truth() float64 { return a.truth }

// Mean returns the empirical mean estimate.
func (a *Accumulator) Mean() float64 { return a.mean }

// Bias returns mean(est) − truth.
func (a *Accumulator) Bias() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumErr / float64(a.n)
}

// Variance returns the empirical variance of the estimates.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns sqrt(Variance).
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// MSE returns the empirical mean squared error against truth.
func (a *Accumulator) MSE() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumSqErr / float64(a.n)
}

// RMSE returns sqrt(MSE).
func (a *Accumulator) RMSE() float64 { return math.Sqrt(a.MSE()) }

// RRMSE returns the relative root mean squared error RMSE/truth — the
// paper's headline metric (§7). Zero truth yields NaN.
func (a *Accumulator) RRMSE() float64 { return a.RMSE() / a.truth }

// RelativeMSE returns MSE/truth² (the squared RRMSE, as plotted in Figures
// 5 and 6).
func (a *Accumulator) RelativeMSE() float64 { return a.MSE() / (a.truth * a.truth) }

// Coverage returns the fraction of recorded intervals that covered truth.
func (a *Accumulator) Coverage() float64 {
	if a.ciAttempts == 0 {
		return math.NaN()
	}
	return float64(a.covered) / float64(a.ciAttempts)
}

// StandardError returns the Monte-Carlo standard error of the mean.
func (a *Accumulator) StandardError() float64 {
	if a.n < 2 {
		return math.Inf(1)
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// ZScore returns |Bias| / StandardError — the test statistic for the
// unbiasedness property tests.
func (a *Accumulator) ZScore() float64 {
	se := a.StandardError()
	if se == 0 {
		if a.Bias() == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a.Bias()) / se
}

// InclusionTracker estimates per-item inclusion probabilities over
// replicated sketch runs (Figures 2 and 7).
type InclusionTracker struct {
	hits map[string]int64
	reps int64
}

// NewInclusionTracker returns an empty tracker.
func NewInclusionTracker() *InclusionTracker {
	return &InclusionTracker{hits: make(map[string]int64)}
}

// Record marks one replicate's set of included items.
func (t *InclusionTracker) Record(included []string) {
	t.reps++
	for _, it := range included {
		t.hits[it]++
	}
}

// Probability returns the empirical inclusion probability of item.
func (t *InclusionTracker) Probability(item string) float64 {
	if t.reps == 0 {
		return 0
	}
	return float64(t.hits[item]) / float64(t.reps)
}

// Replicates returns the number of recorded runs.
func (t *InclusionTracker) Replicates() int64 { return t.reps }

// CurvePoint is one (x, y) pair on a reported series.
type CurvePoint struct {
	X float64
	Y float64
	N int // observations aggregated into this point
}

// BinnedCurve aggregates scattered (x, y) observations into numBins equal-
// width bins over log10(x) (matching the paper's log-scaled smoothed error
// plots) and returns the per-bin mean y at the mean x. Points with x ≤ 0
// are dropped.
func BinnedCurve(xs, ys []float64, numBins int) []CurvePoint {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: %d xs, %d ys", len(xs), len(ys)))
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		lx := math.Log10(x)
		if lx < lo {
			lo = lx
		}
		if lx > hi {
			hi = lx
		}
	}
	if lo > hi {
		return nil
	}
	if hi == lo {
		hi = lo + 1e-9
	}
	sumX := make([]float64, numBins)
	sumY := make([]float64, numBins)
	n := make([]int, numBins)
	for i, x := range xs {
		if x <= 0 {
			continue
		}
		b := int(float64(numBins) * (math.Log10(x) - lo) / (hi - lo))
		if b >= numBins {
			b = numBins - 1
		}
		sumX[b] += x
		sumY[b] += ys[i]
		n[b]++
	}
	var out []CurvePoint
	for b := 0; b < numBins; b++ {
		if n[b] == 0 {
			continue
		}
		out = append(out, CurvePoint{X: sumX[b] / float64(n[b]), Y: sumY[b] / float64(n[b]), N: n[b]})
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation. It sorts a copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v", q))
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// Mean returns the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeometricMean returns exp(mean(log x)); non-positive entries are skipped.
func GeometricMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}
