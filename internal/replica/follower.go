package replica

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

// Options configures a follower.
type Options struct {
	// Primary is the primary's base URL (e.g. "http://10.0.0.1:8632").
	Primary string
	// Server is the local server the follower applies records into. It
	// must be durable (AttachStore) and in RoleFollower.
	Server *server.Server
	// DataDir is the local store directory (PrepareDataDir operates on
	// it before the store exists).
	DataDir string
	// HeartbeatTimeout is how long the primary may be unreachable before
	// an auto-promoting follower promotes itself (default 10s).
	HeartbeatTimeout time.Duration
	// AutoPromote promotes this follower to primary when the primary has
	// been unreachable for HeartbeatTimeout.
	AutoPromote bool
	// RequestTimeout bounds each replication RPC (default 10s).
	RequestTimeout time.Duration
	// Poll is the WAL stream's long-poll wait — it doubles as the
	// heartbeat interval while caught up (default 1s).
	Poll time.Duration
	// Log receives structured progress and warning events (default:
	// discard). A "component=replica" field is attached automatically.
	Log *slog.Logger
}

// defaults fills zero fields in place.
func (o *Options) defaults() {
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = time.Second
	}
	if o.Log == nil {
		o.Log = obs.NopLogger()
	}
	o.Log = o.Log.With("component", "replica")
}

// PrepareDataDir readies a follower's data dir before the store opens:
// it waits for a reachable primary, reconciles a diverged local tail by
// re-submitting it to the new primary (then wiping the old-timeline
// state), bootstraps from the primary's checkpoint bundle when the local
// position was checkpoint-truncated away, and adopts the primary's
// timeline. On return the dir opens into a store whose next LSN the
// primary's stream can serve.
func PrepareDataDir(ctx context.Context, opts Options) error {
	opts.defaults()
	cli := NewClient(opts.Primary, opts.RequestTimeout)
	log := opts.Log

	// Wait out primary startup: keep retrying until it answers and
	// reports itself primary.
	var st server.ReplStatus
	err := Retry(ctx, 0, 200*time.Millisecond, 5*time.Second, func() error {
		var err error
		st, err = cli.Status(ctx)
		if err != nil {
			log.Info("waiting for primary", "primary", opts.Primary, "err", err)
			return err
		}
		if st.Role != server.RolePrimary.String() {
			return fmt.Errorf("replica: %s reports role %q, not primary", opts.Primary, st.Role)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !st.Durable {
		return fmt.Errorf("replica: primary %s is not durable (no -data-dir); nothing to replicate", opts.Primary)
	}

	tl, err := store.LoadTimeline(opts.DataDir)
	if err != nil {
		return err
	}
	next, err := store.DirNextLSN(opts.DataDir)
	if err != nil {
		return err
	}
	localLast := next - 1

	switch {
	case st.Epoch < tl.Epoch:
		return fmt.Errorf("replica: local timeline epoch %d is newer than primary's %d; refusing to follow %s",
			tl.Epoch, st.Epoch, opts.Primary)
	case st.Epoch > tl.Epoch && localLast > st.PromoteLSN:
		// This node was the old primary (or lagged behind one): its log
		// carries records above the point where the new timeline forked.
		// Those records were acknowledged to clients — merge them into the
		// new primary instead of dropping them, then start over from the
		// new timeline.
		log.Warn("merging diverged tail into new primary",
			"local_last", localLast, "epoch", st.Epoch, "fork_lsn", st.PromoteLSN, "primary", opts.Primary)
		merged, err := mergeTail(ctx, cli, opts.DataDir, st.PromoteLSN, log)
		if err != nil {
			return fmt.Errorf("replica: reconcile diverged tail: %w", err)
		}
		log.Info("merged diverged tail; resetting local state to the new timeline", "records", merged)
		if opts.Server != nil {
			opts.Server.NoteMergedTail(merged)
		}
		if err := wipeDataDir(opts.DataDir); err != nil {
			return err
		}
	}

	// Make sure the primary's stream can serve our position; when it was
	// checkpoint-truncated away, install the checkpoint bundle and try
	// again from the bundle's position.
	for resyncs := 0; ; {
		next, err := store.DirNextLSN(opts.DataDir)
		if err != nil {
			return err
		}
		probe := func() error {
			_, err := cli.StreamWAL(ctx, next, 0)
			if err == nil || errors.Is(err, ErrGone) || errors.Is(err, ErrDiverged) {
				return nil // definitive answer; stop retrying
			}
			return err
		}
		if err := Retry(ctx, 5, 200*time.Millisecond, 2*time.Second, probe); err != nil {
			return fmt.Errorf("replica: probe stream at %d: %w", next, err)
		}
		_, err = cli.StreamWAL(ctx, next, 0)
		if err == nil {
			break
		}
		if errors.Is(err, ErrDiverged) {
			return fmt.Errorf("replica: local log (next %d) is ahead of primary %s on the same epoch: %w",
				next, opts.Primary, err)
		}
		if !errors.Is(err, ErrGone) {
			return err
		}
		if resyncs++; resyncs > 3 {
			return fmt.Errorf("replica: still behind the primary's checkpoint after %d resyncs", resyncs-1)
		}
		bundle, gen, err := cli.Checkpoint(ctx)
		if err != nil {
			return err
		}
		if gen == 0 {
			return fmt.Errorf("replica: primary truncated LSN %d but serves no checkpoint bundle", next)
		}
		if err := wipeDataDir(opts.DataDir); err != nil {
			return err
		}
		if _, err := store.InstallCheckpointBundle(opts.DataDir, bundle); err != nil {
			return err
		}
		if opts.Server != nil {
			opts.Server.NoteResync()
		}
		log.Info("installed checkpoint bundle", "gen", gen, "primary", opts.Primary)
	}

	return store.SaveTimeline(opts.DataDir, store.Timeline{Epoch: st.Epoch, PromoteLSN: st.PromoteLSN})
}

// mergeTail re-submits every local record above promoteLSN to the new
// primary through the ordinary client endpoints: creates tolerate
// "exists", deletes tolerate "missing", ingests go synchronously and
// snapshots keep their original reduction — the sketches are mergeable,
// so re-submission reconciles totals exactly. Records a checkpoint
// already folded in below promoteLSN cannot be separated; mergeTail
// warns when the local log no longer reaches back to the fork point.
func mergeTail(ctx context.Context, cli *Client, dir string, promoteLSN uint64, log *slog.Logger) (int64, error) {
	var merged int64
	submit := func(rec store.Record) error {
		switch rec.Type {
		case store.TypeCreate:
			return cli.CreateSketch(ctx, rec.SpecJSON)
		case store.TypeDelete:
			return cli.DeleteSketch(ctx, rec.Name)
		case store.TypeIngest:
			return cli.IngestSync(ctx, rec.Name, rec.Items, rec.Weights, rec.Ats)
		case store.TypeSnapshot:
			return cli.PushSnapshot(ctx, rec.Name, rec.Reduction, rec.Blob)
		default:
			return nil
		}
	}
	oldest, err := store.StreamPayloads(dir, promoteLSN+1, 0, func(lsn uint64, payload []byte) error {
		rec, err := store.DecodePayload(lsn, payload)
		if err != nil {
			log.Warn("skipping undecodable local record during reconciliation", "lsn", lsn, "err", err)
			return nil
		}
		if err := Retry(ctx, 5, 100*time.Millisecond, 2*time.Second, func() error { return submit(rec) }); err != nil {
			return fmt.Errorf("re-submit record %d (type %d): %w", lsn, rec.Type, err)
		}
		merged++
		return nil
	})
	if err != nil {
		return merged, err
	}
	if oldest > promoteLSN+1 {
		log.Warn("local log starts past the fork point; checkpoint-folded records cannot be re-submitted individually",
			"oldest", oldest, "fork_lsn", promoteLSN+1)
	}
	return merged, nil
}

// wipeDataDir clears dir's durable state (log segments, checkpoints,
// timeline, staging leftovers) so a resync starts clean. The directory
// itself survives.
func wipeDataDir(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case name == "wal", name == "timeline.json",
			strings.HasPrefix(name, "cp-"), strings.HasPrefix(name, ".tmp-"):
			if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Follower is a running replication loop. Stop cancels it and waits;
// Done closes when the loop exits on its own (promotion, fatal error).
type Follower struct {
	opts   Options
	cli    *Client
	cancel context.CancelFunc
	done   chan struct{}

	err error // set before done closes
}

// Start launches the follower loop: tail the primary's WAL stream from
// the local log end, apply every record through the server's replicated
// apply path, track lag, and — when AutoPromote is set — promote after
// HeartbeatTimeout without contact. The server must already be in
// RoleFollower with its store attached.
func Start(opts Options) (*Follower, error) {
	opts.defaults()
	if opts.Server == nil {
		return nil, fmt.Errorf("replica: Start needs a server")
	}
	if opts.Server.Role() != server.RoleFollower {
		return nil, fmt.Errorf("replica: server is %s, not a follower", opts.Server.Role())
	}
	if opts.Server.WALNextLSN() == 0 {
		return nil, fmt.Errorf("replica: server has no attached store")
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		opts:   opts,
		cli:    NewClient(opts.Primary, opts.RequestTimeout),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go f.run(ctx)
	return f, nil
}

// Stop cancels the loop and waits for it to exit.
func (f *Follower) Stop() {
	f.cancel()
	<-f.done
}

// Done closes when the loop has exited.
func (f *Follower) Done() <-chan struct{} { return f.done }

// Err reports why the loop exited (nil for Stop or promotion).
func (f *Follower) Err() error {
	<-f.done
	return f.err
}

// run is the follower loop body.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	srv := f.opts.Server
	log := f.opts.Log
	bo := NewBackoff(100*time.Millisecond, 5*time.Second)
	lastContact := time.Now()

	// The whole streaming session shares one root trace so every
	// StreamWAL request the follower issues (and the primary's matching
	// server spans) can be pulled up together from /debug/traces.
	tracer := srv.Obs().Tracer()
	session := tracer.NewRoot()
	ctx = obs.ContextWith(ctx, session)
	log = log.With("trace", session.Trace.String())

	for ctx.Err() == nil {
		if srv.Role() != server.RoleFollower {
			log.Info("no longer a follower; replication loop exiting")
			return
		}
		from := srv.WALNextLSN()
		sp := tracer.Start(session, "repl.stream")
		res, err := f.cli.StreamWAL(obs.ContextWith(ctx, sp.Context()), from, f.opts.Poll)
		sp.FinishErr(err)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if errors.Is(err, ErrGone) || errors.Is(err, ErrDiverged) {
				// The stream can no longer serve our position; a restart
				// re-runs PrepareDataDir, which resyncs or reconciles.
				srv.SetReady(false)
				f.err = fmt.Errorf("replica: stream at %d unavailable: %w (restart this follower to resync)", from, err)
				log.Error("stream unavailable", "from", from, "err", err)
				return
			}
			if f.opts.AutoPromote && time.Since(lastContact) > f.opts.HeartbeatTimeout {
				log.Warn("primary unreachable; promoting",
					"primary", f.opts.Primary, "silence", time.Since(lastContact).Round(time.Millisecond))
				if perr := srv.Promote(); perr != nil {
					f.err = fmt.Errorf("replica: promote: %w", perr)
					log.Error("promote failed", "err", perr)
					return
				}
				log.Warn("promoted to primary", "epoch", srv.Epoch(), "promote_lsn", srv.PromoteLSN())
				return
			}
			srv.NoteReconnect()
			log.Info("stream failed; reconnecting", "primary", f.opts.Primary, "err", err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(bo.Next()):
			}
			continue
		}
		lastContact = time.Now()
		bo.Reset()

		if res.Epoch > srv.Epoch() {
			// The primary promoted (or restarted onto a newer timeline)
			// while we streamed. Everything we hold is below the fork point
			// iff our log end is at or below its PromoteLSN — then we simply
			// adopt the new epoch and keep tailing.
			if from-1 <= res.PromoteLSN {
				if err := srv.AdoptTimeline(store.Timeline{Epoch: res.Epoch, PromoteLSN: res.PromoteLSN}); err != nil {
					f.err = fmt.Errorf("replica: adopt epoch %d: %w", res.Epoch, err)
					log.Error("adopt timeline failed", "epoch", res.Epoch, "err", err)
					return
				}
				log.Info("primary moved to a new epoch; adopted", "epoch", res.Epoch, "fork_lsn", res.PromoteLSN)
			} else {
				srv.SetReady(false)
				f.err = fmt.Errorf("replica: primary is on epoch %d forked at %d but local log ends at %d; restart this follower to reconcile",
					res.Epoch, res.PromoteLSN, from-1)
				log.Error("epoch conflict; restart this follower to reconcile",
					"epoch", res.Epoch, "fork_lsn", res.PromoteLSN, "local_last", from-1)
				return
			}
		}

		applied := from - 1
		frames := res.Frames
		for len(frames) > 0 {
			lsn, payload, rest, err := server.CutStreamFrame(frames)
			if err != nil {
				log.Warn("bad stream frame; re-requesting", "after", applied, "err", err)
				break
			}
			if payload == nil {
				break
			}
			frames = rest
			if lsn <= applied {
				continue // duplicated frame (dup-frame fault, overlap on resume)
			}
			if lsn > applied+1 {
				log.Warn("stream gap; re-requesting", "have", applied, "got", lsn)
				break
			}
			if err := srv.ApplyReplicated(lsn, payload); err != nil {
				if errors.Is(err, server.ErrNotFollower) {
					log.Info("promoted mid-apply; replication loop exiting")
					return
				}
				log.Warn("apply failed; re-requesting", "lsn", lsn, "err", err)
				break
			}
			applied = lsn
		}

		lag := int64(res.LastLSN) - int64(applied)
		if lag < 0 {
			lag = 0
		}
		srv.SetReplicationLag(lag)
		if lag == 0 && !srv.Ready() {
			srv.SetReady(true)
			log.Info("caught up; ready", "primary", f.opts.Primary, "lsn", applied)
		}
	}
}
