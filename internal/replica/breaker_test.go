package replica

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker still closed after threshold failures")
	}
	if got := b.State(); got != "open" {
		t.Fatalf("State = %q, want open", got)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("Trips = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("success did not reset the consecutive-failure run")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := NewBreaker(1, 10*time.Millisecond)
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker should be open")
	}
	time.Sleep(20 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown lapsed; one probe should be admitted")
	}
	if b.Allow() {
		t.Fatal("second caller admitted while a probe is in flight")
	}
	if got := b.State(); got != "half-open" {
		t.Fatalf("State = %q, want half-open", got)
	}
	// Probe fails: re-open for another cooldown.
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker should re-open after a failed probe")
	}
	time.Sleep(20 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe should be admitted after the re-open lapses")
	}
	// Probe succeeds: closed again for everyone.
	b.Success()
	if !b.Allow() || b.State() != "closed" {
		t.Fatalf("breaker should close after a successful probe (state %q)", b.State())
	}
}

func TestClientBreakerFastFails(t *testing.T) {
	// Nothing listens on this port; every call is a transport failure.
	c := NewClient("http://127.0.0.1:1", 100*time.Millisecond)
	ctx := context.Background()
	var err error
	for i := 0; i < 6; i++ {
		_, err = c.Status(ctx)
		if err == nil {
			t.Fatal("Status against a dead address succeeded")
		}
	}
	if _, err = c.Status(ctx); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after %d transport failures err = %v, want ErrBreakerOpen", 6, err)
	}
	if c.Breaker().Trips() == 0 {
		t.Fatal("breaker never tripped")
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	start := time.Now()
	calls := 0
	err := Retry(context.Background(), 2, time.Millisecond, 2*time.Millisecond, func() error {
		calls++
		return &RetryAfterError{After: 150 * time.Millisecond, Err: errors.New("overloaded")}
	})
	if err == nil || calls != 2 {
		t.Fatalf("err = %v calls = %d, want error after 2 calls", err, calls)
	}
	if elapsed := time.Since(start); elapsed < 140*time.Millisecond {
		t.Fatalf("Retry slept %s; the 150ms Retry-After hint was not honored", elapsed)
	}
	var ra *RetryAfterError
	if !errors.As(err, &ra) || ra.After != 150*time.Millisecond {
		t.Fatalf("returned error lost the hint: %v", err)
	}
}
