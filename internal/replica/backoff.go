// Package replica implements ussd's primary→follower replication: the
// HTTP client for the primary's replication endpoints, the data-dir
// preparation pass a follower runs before opening its store (catch-up
// from a checkpoint bundle, divergence reconciliation by merging), and
// the follower loop that tails the primary's WAL stream, applies
// records through the server's own apply paths, heartbeats, and — when
// enabled — promotes itself on primary death. See DESIGN.md §12 for the
// protocol.
package replica

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Backoff produces jittered exponential delays: Min doubling towards
// Max, each multiplied by a uniform jitter in [0.5, 1.0] so a fleet of
// reconnecting followers never thunders in phase. The zero value is not
// usable; fill Min and Max (NewBackoff applies the defaults).
type Backoff struct {
	// Min and Max bound the un-jittered delay.
	Min, Max time.Duration

	cur time.Duration
}

// NewBackoff returns a Backoff with the given bounds, defaulting to
// 100ms..10s when zero.
func NewBackoff(min, max time.Duration) *Backoff {
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	if max < min {
		max = 10 * time.Second
		if max < min {
			max = min
		}
	}
	return &Backoff{Min: min, Max: max}
}

// Next returns the next jittered delay, doubling the base towards Max.
func (b *Backoff) Next() time.Duration {
	if b.cur == 0 {
		b.cur = b.Min
	} else {
		b.cur *= 2
		if b.cur > b.Max {
			b.cur = b.Max
		}
	}
	half := float64(b.cur) / 2
	return time.Duration(half + rand.Float64()*half)
}

// Reset drops the delay back to Min after a success.
func (b *Backoff) Reset() { b.cur = 0 }

// RetryAfterError wraps an error with the server's Retry-After hint so
// Retry can wait exactly as long as an overloaded or read-only server
// asked instead of guessing with backoff alone.
type RetryAfterError struct {
	// After is the server-provided minimum wait before retrying.
	After time.Duration
	// Err is the underlying failure.
	Err error
}

// Error renders the wrapped failure with its hint.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *RetryAfterError) Unwrap() error { return e.Err }

// Retry runs fn until it succeeds, ctx ends, or attempts are exhausted
// (attempts <= 0 means unlimited), sleeping a jittered exponential
// delay between tries. When fn's error carries a Retry-After hint (a
// *RetryAfterError anywhere in its chain), the sleep honors the hint if
// it is longer than the backoff. It returns the last error on give-up.
// The snapshot-push example and the follower loop share it.
func Retry(ctx context.Context, attempts int, min, max time.Duration, fn func() error) error {
	b := NewBackoff(min, max)
	var err error
	for i := 0; attempts <= 0 || i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		wait := b.Next()
		var ra *RetryAfterError
		if errors.As(err, &ra) && ra.After > wait {
			wait = ra.After
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(wait):
		}
	}
	return err
}
