package replica

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// node is one in-process ussd: a durable server over dir behind an
// httptest listener.
type node struct {
	dir string
	srv *server.Server
	ts  *httptest.Server
}

// boot recovers dir and serves it. follower boots in RoleFollower,
// not ready.
func boot(t *testing.T, dir string, follower bool) *node {
	t.Helper()
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{IngestWorkers: 2, QueueDepth: 8})
	if err := s.AttachStore(st, rebuilt, 0); err != nil {
		t.Fatal(err)
	}
	if follower {
		s.SetRole(server.RoleFollower)
		s.SetReady(false)
	}
	return &node{dir: dir, srv: s, ts: httptest.NewServer(s.Handler())}
}

func (n *node) stop(t *testing.T) {
	t.Helper()
	n.ts.Close()
	if err := n.srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// httpDo runs one request against a node and returns status and body.
func httpDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// mustIngest sync-ingests rows and fails on any non-200.
func mustIngest(t *testing.T, n *node, name, rows string) {
	t.Helper()
	code, body := httpDo(t, "POST", n.ts.URL+"/v1/sketches/"+name+"/ingest?sync=1", rows)
	if code != http.StatusOK {
		t.Fatalf("sync ingest: status %d: %s", code, body)
	}
}

// topkBody fetches a sketch's top-k response body — compared verbatim
// across nodes for the bit-identical-state assertions.
func topkBody(t *testing.T, n *node, name string, k int) string {
	t.Helper()
	code, body := httpDo(t, "GET", fmt.Sprintf("%s/v1/sketches/%s/topk?k=%d", n.ts.URL, name, k), "")
	if code != http.StatusOK {
		t.Fatalf("topk: status %d: %s", code, body)
	}
	return body
}

// waitCaughtUp polls until the follower reports ready with zero lag.
func waitCaughtUp(t *testing.T, n *node, primary *node) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if n.srv.Ready() && n.srv.WALNextLSN() >= primary.srv.WALNextLSN() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never caught up (next %d, primary next %d, ready %v)",
		n.srv.WALNextLSN(), primary.srv.WALNextLSN(), n.srv.Ready())
}

// followerOpts builds fast-cadence Options for tests.
func followerOpts(n *node, primary string) Options {
	return Options{
		Primary:        primary,
		Server:         n.srv,
		DataDir:        n.dir,
		Poll:           50 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	}
}

// TestFollowerCatchUpAndTail boots a primary with history (checkpoint +
// log tail), attaches a fresh follower, and requires: bundle + stream
// catch-up, live tailing of new writes, byte-identical top-k, and the
// follower's mutation endpoints refusing while read endpoints serve.
func TestFollowerCatchUpAndTail(t *testing.T) {
	p := boot(t, t.TempDir(), false)
	defer p.stop(t)

	code, body := httpDo(t, "POST", p.ts.URL+"/v1/sketches", `{"name":"clicks","kind":"unit","bins":64,"seed":7}`)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, body)
	}
	var rows strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&rows, "item-%d\n", i%20)
	}
	mustIngest(t, p, "clicks", rows.String())

	// Checkpoint, then more traffic: catch-up must install the bundle
	// AND replay the tail past it.
	if err := p.srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustIngest(t, p, "clicks", rows.String())

	fdir := t.TempDir()
	if err := PrepareDataDir(context.Background(), Options{Primary: p.ts.URL, DataDir: fdir}); err != nil {
		t.Fatal(err)
	}
	f := boot(t, fdir, true)
	defer f.stop(t)
	fol, err := Start(followerOpts(f, p.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Stop()

	waitCaughtUp(t, f, p)
	if got, want := topkBody(t, f, "clicks", 20), topkBody(t, p, "clicks", 20); got != want {
		t.Fatalf("follower top-k diverges after catch-up:\n  follower: %s\n  primary:  %s", got, want)
	}

	// Live tail: new primary writes appear on the follower.
	mustIngest(t, p, "clicks", "tail-item\ntail-item\n")
	waitCaughtUp(t, f, p)
	if got, want := topkBody(t, f, "clicks", 25), topkBody(t, p, "clicks", 25); got != want {
		t.Fatalf("follower top-k diverges after tailing:\n  follower: %s\n  primary:  %s", got, want)
	}

	// Followers reject mutations and serve reads.
	if code, _ := httpDo(t, "POST", f.ts.URL+"/v1/sketches/clicks/ingest", "x\n"); code != http.StatusServiceUnavailable {
		t.Fatalf("follower accepted an ingest: status %d", code)
	}
	if code, _ := httpDo(t, "POST", f.ts.URL+"/v1/sketches", `{"name":"x","kind":"unit","bins":8}`); code != http.StatusServiceUnavailable {
		t.Fatalf("follower accepted a create: status %d", code)
	}
	if code, _ := httpDo(t, "GET", f.ts.URL+"/readyz", ""); code != http.StatusOK {
		t.Fatalf("caught-up follower not ready: status %d", code)
	}
}

// TestPromoteAndRejoinMergesTail covers the failover round-trip: the
// follower loses the primary and auto-promotes; the old primary — which
// still holds acknowledged records the follower never saw — rejoins as
// a follower and reconciles by merging that tail, so row totals match a
// world where nothing was lost.
func TestPromoteAndRejoinMergesTail(t *testing.T) {
	pdir := t.TempDir()
	p := boot(t, pdir, false)

	code, body := httpDo(t, "POST", p.ts.URL+"/v1/sketches", `{"name":"clicks","kind":"unit","bins":64,"seed":7}`)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, body)
	}
	mustIngest(t, p, "clicks", strings.Repeat("shared\n", 50))

	fdir := t.TempDir()
	if err := PrepareDataDir(context.Background(), Options{Primary: p.ts.URL, DataDir: fdir}); err != nil {
		t.Fatal(err)
	}
	f := boot(t, fdir, true)
	defer f.stop(t)
	opts := followerOpts(f, p.ts.URL)
	opts.AutoPromote = true
	opts.HeartbeatTimeout = 300 * time.Millisecond
	fol, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f, p)

	// Freeze replication, then keep writing to the primary: these rows
	// are acknowledged but never replicated — the divergent tail.
	fol.Stop()
	mustIngest(t, p, "clicks", strings.Repeat("orphan\n", 30))

	// Primary dies; follower promotes (restart the loop so auto-promote
	// observes the death).
	p.stop(t)
	fol, err = Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-fol.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("follower never promoted")
	}
	if f.srv.Role() != server.RolePrimary {
		t.Fatalf("follower role after primary death: %s (err %v)", f.srv.Role(), fol.Err())
	}
	if f.srv.Epoch() != 1 {
		t.Fatalf("promoted epoch = %d, want 1", f.srv.Epoch())
	}

	// The new primary takes writes of its own before the old one returns.
	mustIngest(t, f, "clicks", strings.Repeat("fresh\n", 20))

	// Old primary rejoins as a follower: PrepareDataDir must merge the
	// orphaned tail into the new primary, then resync.
	if err := PrepareDataDir(context.Background(), Options{Primary: f.ts.URL, DataDir: pdir, Server: f.srv}); err != nil {
		t.Fatal(err)
	}
	p2 := boot(t, pdir, true)
	defer p2.stop(t)
	fol2, err := Start(followerOpts(p2, f.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer fol2.Stop()
	waitCaughtUp(t, p2, f)

	// Exact reconciliation: bins ≥ distinct items, so counts are exact.
	want := map[string]float64{"shared": 50, "orphan": 30, "fresh": 20}
	got := topkBody(t, f, "clicks", 10)
	for item, n := range want {
		probe := fmt.Sprintf(`{"item":%q,"count":%g}`, item, n)
		if !strings.Contains(got, probe) {
			t.Fatalf("new primary top-k missing %s after tail merge: %s", probe, got)
		}
	}
	if rejoined := topkBody(t, p2, "clicks", 10); rejoined != got {
		t.Fatalf("rejoined follower diverges:\n  rejoined: %s\n  primary:  %s", rejoined, got)
	}
	if f.srv.Epoch() != p2.srv.Epoch() {
		t.Fatalf("epochs diverge: primary %d, rejoined %d", f.srv.Epoch(), p2.srv.Epoch())
	}
}

// TestPrepareDataDirRefusesNewerLocalEpoch pins the guard against
// following a stale primary: a node whose timeline epoch is ahead of
// the target's must refuse rather than silently wipe itself.
func TestPrepareDataDirRefusesNewerLocalEpoch(t *testing.T) {
	p := boot(t, t.TempDir(), false)
	defer p.stop(t)

	dir := t.TempDir()
	if err := store.SaveTimeline(dir, store.Timeline{Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	err := PrepareDataDir(context.Background(), Options{Primary: p.ts.URL, DataDir: dir})
	if err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("PrepareDataDir = %v, want epoch refusal", err)
	}
}
