package replica

// Breaker is a per-peer circuit breaker shared by every outbound HTTP
// link in the repo (replication client, cluster fan/gather/anti-entropy).
// It exists so a dead peer costs one atomic load instead of a dial
// timeout: after Threshold consecutive transport failures the breaker
// opens for Cooldown, during which Allow refuses instantly; when the
// cooldown lapses exactly one caller is admitted as a half-open probe,
// and its outcome either closes the breaker or re-opens it for another
// cooldown.
//
// Only transport-level failures should be reported through Failure —
// an HTTP response, whatever its status, proves the peer is alive and
// application errors must not sever the link.

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is returned by callers that consult a Breaker and find
// the peer's circuit open — the fast-fail path, distinguishable from a
// real transport error.
var ErrBreakerOpen = errors.New("replica: circuit open")

// Breaker is the closed→open→half-open state machine for one peer link.
// The zero value is not usable; construct with NewBreaker.
type Breaker struct {
	threshold int32
	cooldown  time.Duration

	fails     atomic.Int32 // consecutive transport failures while closed
	openUntil atomic.Int64 // unix nanos the open state lapses; 0 = closed
	probing   atomic.Bool  // a half-open probe is in flight
	trips     atomic.Int64 // closed→open transitions
}

// NewBreaker returns a breaker opening after threshold consecutive
// failures (default 5) for cooldown per open period (default 2s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Breaker{threshold: int32(threshold), cooldown: cooldown}
}

// Allow reports whether a request may proceed: always while closed, and
// for exactly one probe per cooldown lapse while open. The steady-state
// cost (closed, or open mid-cooldown) is one atomic load.
func (b *Breaker) Allow() bool {
	until := b.openUntil.Load()
	if until == 0 {
		return true
	}
	if time.Now().UnixNano() < until {
		return false
	}
	// Cooldown lapsed: admit one half-open probe; everyone else keeps
	// failing fast until the probe reports.
	return b.probing.CompareAndSwap(false, true)
}

// Success reports a request that reached the peer; it closes the
// breaker and clears the failure run.
func (b *Breaker) Success() {
	b.fails.Store(0)
	b.openUntil.Store(0)
	b.probing.Store(false)
}

// Failure reports a transport-level failure. While closed it extends
// the consecutive-failure run and opens the breaker at the threshold;
// while half-open it re-opens for another cooldown.
func (b *Breaker) Failure() {
	if b.openUntil.Load() != 0 {
		// A failed half-open probe: push the open window out.
		b.openUntil.Store(time.Now().Add(b.cooldown).UnixNano())
		b.probing.Store(false)
		return
	}
	if b.fails.Add(1) >= b.threshold {
		b.fails.Store(0)
		b.openUntil.Store(time.Now().Add(b.cooldown).UnixNano())
		b.trips.Add(1)
	}
}

// State renders the breaker's current state for status endpoints:
// "closed", "open" or "half-open".
func (b *Breaker) State() string {
	until := b.openUntil.Load()
	if until == 0 {
		return "closed"
	}
	if b.probing.Load() || time.Now().UnixNano() >= until {
		return "half-open"
	}
	return "open"
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 { return b.trips.Load() }
