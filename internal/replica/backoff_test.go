package replica

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffNextWithinBounds checks every emitted delay lands inside
// the jitter envelope: [base/2, base], with the base doubling from Min
// and capping at Max.
func TestBackoffNextWithinBounds(t *testing.T) {
	const min, max = 100 * time.Millisecond, 800 * time.Millisecond
	b := NewBackoff(min, max)
	base := min
	for i := 0; i < 12; i++ {
		d := b.Next()
		if d < base/2 || d > base {
			t.Fatalf("step %d: delay %v outside [%v, %v]", i, d, base/2, base)
		}
		if base *= 2; base > max {
			base = max
		}
	}
}

// TestBackoffCapsAtMax checks the un-jittered base never exceeds Max:
// after enough doublings every delay is at most Max.
func TestBackoffCapsAtMax(t *testing.T) {
	b := NewBackoff(time.Millisecond, 8*time.Millisecond)
	for i := 0; i < 20; i++ {
		if d := b.Next(); d > 8*time.Millisecond {
			t.Fatalf("step %d: delay %v exceeds max", i, d)
		}
	}
}

// TestBackoffReset checks Reset drops the schedule back to Min: the
// next delay after a reset sits in the first step's envelope again.
func TestBackoffReset(t *testing.T) {
	const min, max = 100 * time.Millisecond, 10 * time.Second
	b := NewBackoff(min, max)
	for i := 0; i < 8; i++ {
		b.Next()
	}
	b.Reset()
	if d := b.Next(); d < min/2 || d > min {
		t.Fatalf("post-reset delay %v outside first-step envelope [%v, %v]", d, min/2, min)
	}
}

// TestBackoffDefaults checks NewBackoff's zero-value defaulting.
func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(0, 0)
	if b.Min != 100*time.Millisecond || b.Max != 10*time.Second {
		t.Fatalf("defaults: got Min=%v Max=%v", b.Min, b.Max)
	}
	b = NewBackoff(time.Minute, time.Second) // max below min: min wins
	if b.Max < b.Min {
		t.Fatalf("max %v below min %v", b.Max, b.Min)
	}
}

// TestRetrySucceedsAfterFailures checks Retry stops at the first
// success and reports how many attempts it consumed.
func TestRetrySucceedsAfterFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 5, time.Microsecond, time.Millisecond, func() error {
		if calls++; calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 {
		t.Fatalf("Retry ran fn %d times, want 3", calls)
	}
}

// TestRetryExhaustsAttempts checks the attempt budget is honored and
// the last error surfaces.
func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	sentinel := errors.New("always down")
	err := Retry(context.Background(), 4, time.Microsecond, time.Millisecond, func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Retry returned %v, want the last error", err)
	}
	if calls != 4 {
		t.Fatalf("Retry ran fn %d times, want 4", calls)
	}
}

// TestRetryHonorsContextMidSleep checks a context cancelled while Retry
// is sleeping between attempts aborts the loop promptly with the last
// fn error, instead of sleeping out the full backoff.
func TestRetryHonorsContextMidSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("peer down")
	calls := 0
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		// Unlimited attempts with a long backoff: only the cancel below
		// can end this loop.
		done <- Retry(ctx, 0, time.Hour, time.Hour, func() error {
			calls++
			return sentinel
		})
	}()
	time.Sleep(20 * time.Millisecond) // let Retry enter its backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, sentinel) {
			t.Fatalf("Retry returned %v, want the last fn error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retry did not observe cancellation mid-sleep")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Retry took %v to abort; it slept through the backoff", elapsed)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want exactly 1 before the cancelled sleep", calls)
	}
}

// TestRetryStopsWhenContextAlreadyDone checks a pre-cancelled context
// still runs fn once (the caller's first attempt is free) and then
// stops without sleeping.
func TestRetryStopsWhenContextAlreadyDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	sentinel := errors.New("nope")
	start := time.Now()
	err := Retry(ctx, 0, time.Hour, time.Hour, func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Retry returned %v, want the fn error", err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Retry slept despite a cancelled context")
	}
}
