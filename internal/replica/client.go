package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// ErrGone reports a WAL-stream position the primary has
// checkpoint-truncated away: the follower must catch up from a
// checkpoint bundle instead of the log.
var ErrGone = errors.New("replica: stream position truncated on primary")

// ErrDiverged reports a WAL-stream position past the primary's log end:
// the follower's log is from another timeline and needs reconciliation.
var ErrDiverged = errors.New("replica: follower log is ahead of primary")

// Client calls a primary's replication (and, for tail reconciliation,
// regular mutation) endpoints. Every RPC is bounded by the configured
// per-request timeout on top of the caller's context — a hung primary
// costs one deadline, never a stuck goroutine — and flows through a
// per-peer circuit breaker, so a dead primary costs one atomic load
// per call while the breaker is open.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	br      *Breaker
}

// NewClient returns a client for the primary at base (e.g.
// "http://10.0.0.1:8632"). timeout bounds each RPC (default 10s); the
// WAL stream's long-poll gets its wait added on top.
func NewClient(base string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{},
		timeout: timeout,
		br:      NewBreaker(0, 0),
	}
}

// Breaker exposes the client's circuit breaker for status reporting.
func (c *Client) Breaker() *Breaker { return c.br }

// get issues a GET with the client deadline and returns the response.
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	return c.do(ctx, http.MethodGet, path, "", nil, c.timeout)
}

// do issues one deadlined request. The caller must close the body on
// success.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, timeout time.Duration) (*http.Response, error) {
	if !c.br.Allow() {
		return nil, fmt.Errorf("%w: %s", ErrBreakerOpen, c.base)
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	obs.InjectTrace(ctx, req.Header)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport-level failure: the peer never answered. Responses of
		// any status count as success below — an alive peer returning
		// errors must not sever the link.
		c.br.Failure()
		return nil, err
	}
	c.br.Success()
	// The context is cancelled when this function returns, which would
	// kill the body mid-read; drain it here and hand back a detached
	// body.
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	return resp, nil
}

// errorFrom renders a non-2xx response as an error, decoding the
// server's {"error": ...} shape when present.
func errorFrom(resp *http.Response) error {
	data, _ := io.ReadAll(resp.Body)
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Errorf("replica: primary returned %d: %s", resp.StatusCode, body.Error)
	}
	return fmt.Errorf("replica: primary returned %d", resp.StatusCode)
}

// Status fetches the primary's replication status.
func (c *Client) Status(ctx context.Context) (server.ReplStatus, error) {
	var st server.ReplStatus
	resp, err := c.get(ctx, "/v1/replication/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, errorFrom(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("replica: decode status: %w", err)
	}
	return st, nil
}

// Checkpoint fetches the primary's newest checkpoint bundle. gen 0 with
// a nil bundle means the primary has no checkpoint yet.
func (c *Client) Checkpoint(ctx context.Context) (bundle []byte, gen uint64, err error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/replication/checkpoint", "", nil, c.timeout+time.Minute)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, 0, nil
	case http.StatusOK:
	default:
		return nil, 0, errorFrom(resp)
	}
	gen, _ = strconv.ParseUint(resp.Header.Get("X-Uss-Checkpoint-Gen"), 10, 64)
	bundle, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return bundle, gen, nil
}

// StreamResult is one WAL-stream response: the framed records plus the
// primary's position and timeline from the response headers.
type StreamResult struct {
	// Frames is the raw framed stream body (cut with
	// server.CutStreamFrame).
	Frames []byte
	// LastLSN is the primary's log end at response time.
	LastLSN uint64
	// Epoch and PromoteLSN are the primary's timeline.
	Epoch      uint64
	PromoteLSN uint64
}

// StreamWAL requests records from `from` onward, long-polling up to
// wait when the primary has nothing new. ErrGone means the position was
// checkpoint-truncated; ErrDiverged means the follower is ahead of the
// primary's log.
func (c *Client) StreamWAL(ctx context.Context, from uint64, wait time.Duration) (*StreamResult, error) {
	path := fmt.Sprintf("/v1/replication/wal?from=%d&wait_ms=%d", from, wait.Milliseconds())
	resp, err := c.do(ctx, http.MethodGet, path, "", nil, c.timeout+wait)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return nil, ErrGone
	case http.StatusConflict:
		return nil, ErrDiverged
	default:
		return nil, errorFrom(resp)
	}
	frames, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	res := &StreamResult{Frames: frames}
	res.LastLSN, _ = strconv.ParseUint(resp.Header.Get("X-Uss-Last-Lsn"), 10, 64)
	res.Epoch, _ = strconv.ParseUint(resp.Header.Get("X-Uss-Epoch"), 10, 64)
	res.PromoteLSN, _ = strconv.ParseUint(resp.Header.Get("X-Uss-Promote-Lsn"), 10, 64)
	return res, nil
}

// Promote asks the target to promote itself to primary.
func (c *Client) Promote(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodPost, "/v1/replication/promote", "", nil, c.timeout)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorFrom(resp)
	}
	return nil
}

// CreateSketch re-submits a create record's spec JSON as an ordinary
// create. A name the primary already has (shared history) is success.
func (c *Client) CreateSketch(ctx context.Context, specJSON []byte) error {
	resp, err := c.do(ctx, http.MethodPost, "/v1/sketches", "application/json", specJSON, c.timeout)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusConflict {
		return nil
	}
	return errorFrom(resp)
}

// DeleteSketch re-submits a delete. An already-missing sketch is
// success.
func (c *Client) DeleteSketch(ctx context.Context, name string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/sketches/"+name, "", nil, c.timeout)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusNotFound {
		return nil
	}
	return errorFrom(resp)
}

// ingestRow mirrors the server's JSON ingest row shape.
type ingestRow struct {
	Item   string  `json:"item"`
	Weight float64 `json:"weight,omitempty"`
	At     int64   `json:"at"`
}

// IngestSync re-submits an ingest record's rows synchronously (the
// primary acks after apply), so reconciliation totals are immediately
// visible.
func (c *Client) IngestSync(ctx context.Context, name string, items []string, ws []float64, ats []int64) error {
	rows := make([]ingestRow, len(items))
	for i, it := range items {
		rows[i].Item = it
		if i < len(ws) {
			rows[i].Weight = ws[i]
		}
		if i < len(ats) {
			rows[i].At = ats[i]
		}
	}
	body, err := json.Marshal(map[string]any{"rows": rows})
	if err != nil {
		return err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/sketches/"+name+"/ingest?sync=1", "application/json", body, c.timeout)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	return errorFrom(resp)
}

// reductionName maps a snapshot record's reduction byte to the
// ?reduction= parameter.
func reductionName(b byte) string {
	switch b {
	case 1:
		return "pivotal"
	case 2:
		return "misra-gries"
	default:
		return "pairwise"
	}
}

// PushSnapshot re-submits a snapshot record's blob with its original
// reduction.
func (c *Client) PushSnapshot(ctx context.Context, name string, reduction byte, blob []byte) error {
	path := "/v1/sketches/" + name + "/snapshot?reduction=" + reductionName(reduction)
	resp, err := c.do(ctx, http.MethodPost, path, "application/octet-stream", blob, c.timeout)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	return errorFrom(resp)
}
