package labelidx

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func bins(items ...string) []core.Bin {
	out := make([]core.Bin, len(items))
	for i, it := range items {
		out[i] = core.Bin{Item: it, Count: float64(i + 1)}
	}
	return out
}

func TestIndexParsesOnceAndSkipsMalformed(t *testing.T) {
	x := New(bins(
		"country=us|device=ios", // 1
		"country=de|device=ios", // 2
		"rawlabel",              // 3, malformed
		"country=us",            // 4
		"=bad|country=de",       // 5, malformed
		"",                      // 6, malformed
	))
	if x.NumBins() != 6 {
		t.Fatalf("NumBins = %d", x.NumBins())
	}
	if x.Skipped() != 3 {
		t.Fatalf("Skipped = %d, want 3", x.Skipped())
	}
}

func TestCompileAndRunGroupBy(t *testing.T) {
	x := New(bins(
		"c=us|d=ios",
		"c=us|d=android",
		"c=de|d=ios",
		"junk",
		"c=us|d=ios",
	))
	p, ok := x.Compile(nil, []string{"c"})
	if !ok {
		t.Fatal("Compile refused a 1-dim group-by")
	}
	aggs := p.Run()
	if len(aggs) != 2 {
		t.Fatalf("aggs = %+v", aggs)
	}
	got := map[string]float64{}
	hits := map[string]int32{}
	for _, a := range aggs {
		got[p.GroupValue(a.Key, 0)] = a.Sum
		hits[p.GroupValue(a.Key, 0)] = a.Hits
	}
	// counts are 1..5; bin 4 is malformed. us: 1+2+5=8, de: 3.
	if got["us"] != 8 || got["de"] != 3 {
		t.Errorf("sums = %v", got)
	}
	if hits["us"] != 3 || hits["de"] != 1 {
		t.Errorf("hits = %v", hits)
	}
}

func TestCompileFilters(t *testing.T) {
	x := New(bins(
		"c=us|d=ios",
		"c=us|d=android",
		"c=de|d=ios",
	))
	p, ok := x.Compile([]Filter{{Dim: "d", In: []string{"ios"}}}, nil)
	if !ok {
		t.Fatal("compile failed")
	}
	aggs := p.Run()
	if len(aggs) != 1 || aggs[0].Sum != 4 { // 1 + 3
		t.Fatalf("aggs = %+v", aggs)
	}
	// Unknown filter value matches nothing.
	p, _ = x.Compile([]Filter{{Dim: "d", In: []string{"webos"}}}, nil)
	if got := p.Run(); len(got) != 0 {
		t.Errorf("unknown value matched %+v", got)
	}
	// Unknown filter dimension matches nothing.
	p, _ = x.Compile([]Filter{{Dim: "browser", In: []string{"ff"}}}, nil)
	if got := p.Run(); len(got) != 0 {
		t.Errorf("unknown dim matched %+v", got)
	}
	// Unknown group dimension yields no groups.
	p, _ = x.Compile(nil, []string{"browser"})
	if got := p.Run(); len(got) != 0 {
		t.Errorf("unknown group dim produced %+v", got)
	}
}

func TestRowsMissingGroupDimDrop(t *testing.T) {
	x := New(bins("c=us|d=ios", "c=de"))
	p, _ := x.Compile(nil, []string{"d"})
	aggs := p.Run()
	if len(aggs) != 1 || aggs[0].Sum != 1 {
		t.Fatalf("aggs = %+v", aggs)
	}
}

func TestDuplicateDimLastWins(t *testing.T) {
	// query.ParseRow map semantics: the last occurrence of a duplicated
	// dimension wins.
	x := New(bins("a=1|a=2"))
	p, _ := x.Compile([]Filter{{Dim: "a", In: []string{"2"}}}, nil)
	if aggs := p.Run(); len(aggs) != 1 {
		t.Fatalf("last-wins lookup failed: %+v", aggs)
	}
	p, _ = x.Compile([]Filter{{Dim: "a", In: []string{"1"}}}, nil)
	if aggs := p.Run(); len(aggs) != 0 {
		t.Fatalf("first value should have been overwritten: %+v", aggs)
	}
}

func TestValueWithEquals(t *testing.T) {
	x := New(bins("k=x=y"))
	p, _ := x.Compile([]Filter{{Dim: "k", In: []string{"x=y"}}}, nil)
	if aggs := p.Run(); len(aggs) != 1 {
		t.Fatalf("value containing '=' lost: %+v", aggs)
	}
}

func TestCompileOverflowFallsBack(t *testing.T) {
	// Five dimensions with 8192 values each need 5×13 = 65 packed bits.
	n := 8192
	items := make([]core.Bin, n)
	for i := range items {
		items[i] = core.Bin{
			Item:  fmt.Sprintf("a=v%d|b=v%d|c=v%d|d=v%d|e=v%d", i, i, i, i, i),
			Count: 1,
		}
	}
	x := New(items)
	if _, ok := x.Compile(nil, []string{"a", "b", "c", "d", "e"}); ok {
		t.Fatal("Compile accepted a >64-bit group key")
	}
	// Four of them (52 bits) still fit.
	if _, ok := x.Compile(nil, []string{"a", "b", "c", "d"}); !ok {
		t.Fatal("Compile refused a 52-bit group key")
	}
}

func TestRepeatRunReusesScratch(t *testing.T) {
	x := New(bins("c=us|d=ios", "c=de|d=ios", "c=us|d=android"))
	p, _ := x.Compile([]Filter{{Dim: "d", In: []string{"ios"}}}, []string{"c"})
	p.Run()
	if avg := testing.AllocsPerRun(100, func() { p.Run() }); avg != 0 {
		t.Errorf("repeat Program.Run allocates %v/op, want 0", avg)
	}
}
