// Package labelidx builds a dictionary-encoded columnar index over a
// snapshot's bins for the §2 query template. Each bin label of the form
// "dim=value|dim=value" is parsed exactly once: every dimension becomes a
// column of int32 value ids (one slot per bin, -1 where the bin lacks the
// dimension) backed by a per-dimension value dictionary. Compiled queries
// then evaluate as integer comparisons — a WHERE filter is a bitmap probe
// on a column, a GROUP BY key is the group columns' ids packed into one
// uint64 — with no per-bin parsing, maps or string building.
//
// The index is immutable once built and safe for concurrent readers;
// Programs compiled from it carry mutable evaluation scratch and are
// single-owner.
package labelidx

import (
	"math/bits"
	"strings"

	"repro/internal/core"
)

// Index is the columnar view of one bin snapshot.
type Index struct {
	dims     []dimension
	dimID    map[string]int32
	compID   map[string]uint64 // whole "dim=value" component → dim id <<32 | value id
	counts   []float64         // per bin
	excluded []bool            // bins whose labels failed to parse
	skipped  int
	nbins    int
}

// dimension is one decoded column plus its value dictionary.
type dimension struct {
	name  string
	col   []int32 // per bin: value id, or -1 when the bin lacks the dim
	vals  []string
	valID map[string]int32
}

// New parses bins into a columnar index. Labels that fail to parse (same
// grammar as query.ParseRow: '|'-separated components, each with '=' after
// a non-empty dimension name) are excluded from every query and tallied in
// Skipped — foreign labels in a mixed sketch are not an error.
func New(bins []core.Bin) *Index {
	x := &Index{
		dimID:    make(map[string]int32),
		compID:   make(map[string]uint64),
		counts:   make([]float64, len(bins)),
		excluded: make([]bool, len(bins)),
		nbins:    len(bins),
	}
	for i, b := range bins {
		x.counts[i] = b.Count
		if !x.parseInto(i, b.Item) {
			x.excluded[i] = true
			x.skipped++
		}
	}
	return x
}

// NumBins returns the number of indexed bins (including excluded ones).
func (x *Index) NumBins() int { return x.nbins }

// Skipped returns the number of bins whose labels failed to parse.
func (x *Index) Skipped() int { return x.skipped }

// parseInto decodes one label into the bin's column slots, creating
// dimensions and dictionary entries on first sight. Returns false on a
// malformed label; earlier components of a label that fails midway may
// have been written, which is harmless because excluded bins are skipped
// before any column is read.
//
// The hot path is the packed component dictionary: whole "dim=value"
// substrings map to a u64 packing (dim id << 32 | value id), so a
// repeated component — the overwhelmingly common case across a
// snapshot's bins — costs one map probe instead of the two (dimension,
// then value) the create path pays, and skips the '=' scan entirely.
func (x *Index) parseInto(bin int, label string) bool {
	rest := label
	for {
		comp := rest
		sep := strings.IndexByte(rest, '|')
		if sep >= 0 {
			comp = rest[:sep]
		}
		if packed, ok := x.compID[comp]; ok {
			// Duplicate dims in one label: last occurrence wins,
			// matching query.ParseRow's map-overwrite semantics.
			x.dims[packed>>32].col[bin] = int32(uint32(packed))
		} else {
			eq := strings.IndexByte(comp, '=')
			if eq <= 0 {
				return false
			}
			x.set(bin, comp, comp[:eq], comp[eq+1:])
		}
		if sep < 0 {
			return true
		}
		rest = rest[sep+1:]
	}
}

// set is the component-create slow path: resolve (or create) the
// dimension and value dictionary entries, record the packed component id
// for next time, and write the bin's slot.
func (x *Index) set(bin int, comp, dim, val string) {
	di, ok := x.dimID[dim]
	if !ok {
		di = int32(len(x.dims))
		col := make([]int32, x.nbins)
		for i := range col {
			col[i] = -1
		}
		x.dims = append(x.dims, dimension{name: dim, col: col, valID: make(map[string]int32)})
		x.dimID[dim] = di
	}
	d := &x.dims[di]
	vi, ok := d.valID[val]
	if !ok {
		vi = int32(len(d.vals))
		d.vals = append(d.vals, val)
		d.valID[val] = vi
	}
	x.compID[comp] = uint64(di)<<32 | uint64(uint32(vi))
	d.col[bin] = vi
}

// Filter is one WHERE condition in index terms: the dimension must take
// one of the listed values. Filters AND together; values within one OR.
type Filter struct {
	Dim string
	In  []string
}

// Agg is one aggregated output group: the packed group key, the exact sum
// of matching bin counts and the number of contributing bins.
type Agg struct {
	Key  uint64
	Sum  float64
	Hits int32
}

// Program is a query compiled against one Index: filters resolved to
// column+bitmap pairs, group-by dimensions resolved to column+shift pairs.
// It owns reusable evaluation scratch, so repeated Run calls on an
// unchanged index allocate nothing. Not safe for concurrent use.
type Program struct {
	idx     *Index
	never   bool // some filter or group dim can never match
	filters []progFilter
	groups  []progGroup
	aggs    []Agg
	// Group slot lookup: when the packed key space is small the dense
	// table maps key → agg slot directly (one bounds-checked load per
	// bin); otherwise the map takes over.
	dense []int32
	slot  map[uint64]int32
}

// denseBits caps the packed key space routed to the dense slot table:
// 2^12 int32 slots is 16 KiB per Program, cheap to hold and to reset.
const denseBits = 12

type progFilter struct {
	col    []int32
	accept []bool // indexed by value id
}

type progGroup struct {
	col   []int32
	vals  []string
	shift uint
	mask  uint64
}

// Compile resolves a query against the index. The second result is false
// when the group-by key does not fit a packed uint64 (the sum of the group
// dictionaries' bit widths exceeds 64) — callers should fall back to a
// map-keyed evaluation. Filters or group dimensions the index has never
// seen yield a valid Program that matches nothing, mirroring SQL strict
// semantics for missing columns.
func (x *Index) Compile(where []Filter, groupBy []string) (*Program, bool) {
	p := &Program{idx: x}
	for _, f := range where {
		di, ok := x.dimID[f.Dim]
		if !ok {
			p.never = true
			continue
		}
		d := &x.dims[di]
		accept := make([]bool, len(d.vals))
		any := false
		for _, v := range f.In {
			if vi, ok := d.valID[v]; ok {
				accept[vi] = true
				any = true
			}
		}
		if !any {
			p.never = true
		}
		p.filters = append(p.filters, progFilter{col: d.col, accept: accept})
	}
	var shift uint
	for _, g := range groupBy {
		di, ok := x.dimID[g]
		if !ok {
			p.never = true
			continue
		}
		d := &x.dims[di]
		width := uint(bits.Len(uint(len(d.vals) - 1)))
		if shift+width > 64 {
			return nil, false
		}
		p.groups = append(p.groups, progGroup{
			col:   d.col,
			vals:  d.vals,
			shift: shift,
			mask:  uint64(1)<<width - 1,
		})
		shift += width
	}
	if shift <= denseBits {
		p.dense = make([]int32, 1<<shift)
		for i := range p.dense {
			p.dense[i] = -1
		}
	} else {
		p.slot = make(map[uint64]int32)
	}
	return p, true
}

// Run evaluates the program, returning one Agg per observed group in
// first-encounter order. The returned slice is the program's internal
// scratch: it is valid until the next Run and must not be retained.
func (p *Program) Run() []Agg {
	if p.dense != nil {
		// Reset only the slots the previous run touched.
		for i := range p.aggs {
			p.dense[p.aggs[i].Key] = -1
		}
	} else {
		clear(p.slot)
	}
	p.aggs = p.aggs[:0]
	if p.never {
		return p.aggs
	}
	counts := p.idx.counts
	excluded := p.idx.excluded
bins:
	for i := range counts {
		if excluded[i] {
			continue
		}
		for fi := range p.filters {
			f := &p.filters[fi]
			v := f.col[i]
			if v < 0 || !f.accept[v] {
				continue bins
			}
		}
		var key uint64
		for gi := range p.groups {
			g := &p.groups[gi]
			v := g.col[i]
			if v < 0 {
				// Rows lacking a group-by dimension fall out of the
				// result, mirroring SQL strict-mode semantics.
				continue bins
			}
			key |= uint64(v) << g.shift
		}
		var s int32
		if p.dense != nil {
			s = p.dense[key]
			if s < 0 {
				s = int32(len(p.aggs))
				p.aggs = append(p.aggs, Agg{Key: key})
				p.dense[key] = s
			}
		} else {
			got, ok := p.slot[key]
			if !ok {
				got = int32(len(p.aggs))
				p.aggs = append(p.aggs, Agg{Key: key})
				p.slot[key] = got
			}
			s = got
		}
		p.aggs[s].Sum += counts[i]
		p.aggs[s].Hits++
	}
	return p.aggs
}

// NumGroupDims returns the number of group-by dimensions the program
// resolved (0 when the program can never match).
func (p *Program) NumGroupDims() int { return len(p.groups) }

// GroupValue decodes the gi-th group-by dimension's value from a packed
// key produced by Run.
func (p *Program) GroupValue(key uint64, gi int) string {
	g := &p.groups[gi]
	return g.vals[(key>>g.shift)&g.mask]
}
