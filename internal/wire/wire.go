// Package wire implements the versioned binary snapshot format (v2) for
// sketches: the serialize → ship → merge pipeline's wire codec. It replaces
// the gob-based v1 format, which paid reflection, type-descriptor framing
// and one allocation per bin string on both ends of every network hop.
//
// A v2 frame is length-prefixed and laid out for one-pass decoding:
//
//	fixed 24-byte header (little-endian):
//	  [0:4]   magic "USSB"
//	  [4]     format version (2)
//	  [5]     flags: bit0 weighted counts, bit1 deterministic mode
//	  [6:8]   reserved, must be zero
//	  [8:12]  uint32 payload length (bytes following the header)
//	  [12:16] uint32 sketch capacity m
//	  [16:24] uint64 rows processed
//	payload:
//	  uvarint                      number of bins n
//	  counts   n × uvarint         (unit sketches: integral counts)
//	           n × 8-byte float64  (weighted sketches: IEEE-754 bits)
//	  lengths  n × uvarint         item byte lengths
//	  arena    concatenated item bytes, in bin order
//
// All item strings live in a single arena at the tail. The decoder converts
// the arena to one Go string and materializes every bin's Item as a
// zero-copy slice of it, so decoding n bins costs two allocations (the bin
// slice and the arena string) regardless of n. Encoding appends to a
// caller-supplied buffer and performs no allocations of its own, so a
// steady-state encoder that reuses its buffer runs at 0 allocs/op.
//
// The payload-length prefix makes frames self-delimiting: concatenated
// snapshots can be split with FrameLen without decoding them.
//
// Arena lifetime: because every decoded Item aliases the one arena
// string, retaining any single bin keeps the whole snapshot's item bytes
// alive. Consumers that keep only a few bins should clone those items.
// The decoder copies the arena out of the input buffer, so the encoded
// frame itself may be reused or freed as soon as Decode returns.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
)

// Version is the format version this package encodes.
const Version = 2

// headerLen is the size of the fixed header.
const headerLen = 24

// magic identifies a v2+ binary snapshot.
var magic = [4]byte{'U', 'S', 'S', 'B'}

const (
	flagWeighted      = 1 << 0
	flagDeterministic = 1 << 1
	flagsKnown        = flagWeighted | flagDeterministic
)

// Header carries the sketch-level metadata of a snapshot.
type Header struct {
	// Weighted marks real-valued counts (WeightedSketch); unit sketches
	// store integral counts as varints instead of float bits.
	Weighted bool
	// Deterministic marks classic (biased) Space Saving mode. Only
	// meaningful for unit sketches.
	Deterministic bool
	// Capacity is the sketch's bin budget m.
	Capacity int
	// Rows is the number of rows the sketch processed.
	Rows int64
	// NumBins is the number of encoded bins; populated on decode, ignored
	// on encode (the bins slice's length is used).
	NumBins int
}

// IsWire reports whether data begins with a v2+ binary snapshot header, as
// opposed to a v1 gob stream or garbage.
func IsWire(data []byte) bool {
	return len(data) >= 4 && data[0] == magic[0] && data[1] == magic[1] &&
		data[2] == magic[2] && data[3] == magic[3]
}

// FrameLen returns the total byte length of the frame starting at data
// (header + payload), without decoding it. data needs to hold at least the
// fixed header.
func FrameLen(data []byte) (int, error) {
	if len(data) < headerLen {
		return 0, fmt.Errorf("wire: truncated header: %d bytes", len(data))
	}
	if !IsWire(data) {
		return 0, fmt.Errorf("wire: bad magic")
	}
	payload := binary.LittleEndian.Uint32(data[8:12])
	return headerLen + int(payload), nil
}

// AppendSnapshot encodes one snapshot frame onto dst and returns the
// extended buffer. It validates counts on the way in: unit sketches must
// hold non-negative integral counts, weighted sketches non-negative finite
// counts. The encoder only appends — reusing dst across calls makes
// steady-state encoding allocation-free.
func AppendSnapshot(dst []byte, h Header, bins []core.Bin) ([]byte, error) {
	if h.Capacity <= 0 || uint64(h.Capacity) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: capacity %d out of range", h.Capacity)
	}
	if len(bins) > h.Capacity {
		return nil, fmt.Errorf("wire: %d bins exceed capacity %d", len(bins), h.Capacity)
	}
	if h.Rows < 0 {
		return nil, fmt.Errorf("wire: negative row count %d", h.Rows)
	}
	var flags byte
	if h.Weighted {
		flags |= flagWeighted
	}
	if h.Deterministic {
		flags |= flagDeterministic
	}

	start := len(dst)
	dst = append(dst, magic[0], magic[1], magic[2], magic[3], Version, flags, 0, 0)
	dst = append(dst, 0, 0, 0, 0) // payload length, patched below
	dst = binary.LittleEndian.AppendUint32(dst, uint32(h.Capacity))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(h.Rows))

	dst = binary.AppendUvarint(dst, uint64(len(bins)))
	if h.Weighted {
		for _, b := range bins {
			if math.IsNaN(b.Count) || math.IsInf(b.Count, 0) || b.Count < 0 {
				return nil, fmt.Errorf("wire: bin %q has non-encodable count %v", b.Item, b.Count)
			}
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.Count))
		}
	} else {
		for _, b := range bins {
			c := int64(b.Count)
			if b.Count < 0 || float64(c) != b.Count {
				return nil, fmt.Errorf("wire: bin %q has non-integral count %v", b.Item, b.Count)
			}
			dst = binary.AppendUvarint(dst, uint64(c))
		}
	}
	for _, b := range bins {
		dst = binary.AppendUvarint(dst, uint64(len(b.Item)))
	}
	for _, b := range bins {
		dst = append(dst, b.Item...)
	}

	payload := len(dst) - start - headerLen
	if int64(payload) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: payload %d bytes exceeds frame limit", payload)
	}
	binary.LittleEndian.PutUint32(dst[start+8:start+12], uint32(payload))
	return dst, nil
}

// Decode decodes one complete snapshot frame. The whole buffer must be
// consumed; trailing bytes are an error (use FrameLen to split concatenated
// frames first). Bins come back in encode order with Item strings sliced
// from one shared arena allocation.
func Decode(data []byte) (Header, []core.Bin, error) {
	return AppendDecodeBins(nil, data)
}

// DecodeHeader reads only the fixed header and the bin count — constant
// work and zero payload allocation, for callers that inspect snapshots
// without materializing them. The payload past the bin count is not
// validated.
func DecodeHeader(data []byte) (Header, error) {
	var h Header
	if len(data) < headerLen {
		return h, fmt.Errorf("wire: truncated header: %d bytes", len(data))
	}
	if !IsWire(data) {
		return h, fmt.Errorf("wire: bad magic")
	}
	if v := data[4]; v != Version {
		return h, fmt.Errorf("wire: snapshot version %d, want %d", v, Version)
	}
	flags := data[5]
	if flags&^byte(flagsKnown) != 0 {
		return h, fmt.Errorf("wire: unknown flags %#x", flags)
	}
	if data[6] != 0 || data[7] != 0 {
		return h, fmt.Errorf("wire: nonzero reserved bytes")
	}
	payload := int(binary.LittleEndian.Uint32(data[8:12]))
	if headerLen+payload != len(data) {
		return h, fmt.Errorf("wire: frame is %d bytes, buffer holds %d", headerLen+payload, len(data))
	}
	capacity := binary.LittleEndian.Uint32(data[12:16])
	rows := binary.LittleEndian.Uint64(data[16:24])
	if capacity == 0 {
		return h, fmt.Errorf("wire: snapshot capacity 0")
	}
	if rows > math.MaxInt64 {
		return h, fmt.Errorf("wire: row count %d overflows int64", rows)
	}
	n, off := binary.Uvarint(data[headerLen:])
	if off <= 0 {
		return h, fmt.Errorf("wire: bad bin count")
	}
	if n > uint64(capacity) {
		return h, fmt.Errorf("wire: %d bins exceed capacity %d", n, capacity)
	}
	h.Weighted = flags&flagWeighted != 0
	h.Deterministic = flags&flagDeterministic != 0
	h.Capacity = int(capacity)
	h.Rows = int64(rows)
	h.NumBins = int(n)
	return h, nil
}

// AppendDecodeBins is Decode appending into a caller-owned bins slice, for
// merge pipelines that decode many snapshots back to back: decode k frames
// into scratch, hand the lists to core.MergeBins, and no sketch is ever
// materialized. When dst is nil a fresh slice sized to the bin count is
// used.
func AppendDecodeBins(dst []core.Bin, data []byte) (Header, []core.Bin, error) {
	h, err := DecodeHeader(data)
	if err != nil {
		return h, dst, err
	}
	body := data[headerLen:]
	n, off := binary.Uvarint(body) // re-read past the count DecodeHeader validated
	if n > uint64(len(body)) {
		// Each bin costs at least one counts byte and one length byte, so
		// this rejects absurd counts before allocating anything.
		return h, dst, fmt.Errorf("wire: %d bins cannot fit %d payload bytes", n, len(body))
	}

	if dst == nil {
		dst = make([]core.Bin, 0, n)
	}
	first := len(dst)
	if h.Weighted {
		for i := uint64(0); i < n; i++ {
			if off+8 > len(body) {
				return h, dst[:first], fmt.Errorf("wire: truncated counts section")
			}
			c := math.Float64frombits(binary.LittleEndian.Uint64(body[off : off+8]))
			off += 8
			if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
				return h, dst[:first], fmt.Errorf("wire: bin %d has invalid count %v", i, c)
			}
			dst = append(dst, core.Bin{Count: c})
		}
	} else {
		for i := uint64(0); i < n; i++ {
			c, w := binary.Uvarint(body[off:])
			if w <= 0 {
				return h, dst[:first], fmt.Errorf("wire: truncated counts section")
			}
			off += w
			if c > math.MaxInt64 {
				return h, dst[:first], fmt.Errorf("wire: bin %d count %d overflows int64", i, c)
			}
			dst = append(dst, core.Bin{Count: float64(c)})
		}
	}
	// Lengths, then slice every Item out of one arena string: the lengths
	// are re-walked against the arena so each bin costs zero allocations.
	// The sum accumulates in uint64 so crafted lengths cannot wrap a
	// 32-bit int past the consistency check and panic the slicing pass.
	lensAt := off
	var total uint64
	for i := uint64(0); i < n; i++ {
		l, w := binary.Uvarint(body[off:])
		if w <= 0 {
			return h, dst[:first], fmt.Errorf("wire: truncated lengths section")
		}
		off += w
		if l > uint64(len(body)-off) {
			return h, dst[:first], fmt.Errorf("wire: item %d length %d exceeds arena", i, l)
		}
		total += l
	}
	if total != uint64(len(body)-off) {
		return h, dst[:first], fmt.Errorf("wire: arena holds %d bytes, lengths sum to %d", len(body)-off, total)
	}
	arena := string(body[off:])
	off = lensAt
	pos := 0
	for i := 0; i < int(n); i++ {
		l, w := binary.Uvarint(body[off:])
		off += w
		dst[first+i].Item = arena[pos : pos+int(l)]
		pos += int(l)
	}
	return h, dst, nil
}
