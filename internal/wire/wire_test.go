package wire

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
)

func unitBins(n int) []core.Bin {
	bins := make([]core.Bin, n)
	for i := range bins {
		bins[i] = core.Bin{Item: fmt.Sprintf("item-%d", i), Count: float64(i + 1)}
	}
	return bins
}

func TestRoundTripUnit(t *testing.T) {
	bins := unitBins(100)
	var rows int64
	for _, b := range bins {
		rows += int64(b.Count)
	}
	h := Header{Capacity: 128, Rows: rows, Deterministic: true}
	blob, err := AppendSnapshot(nil, h, bins)
	if err != nil {
		t.Fatal(err)
	}
	gh, got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if gh.Weighted || !gh.Deterministic || gh.Capacity != 128 || gh.Rows != rows || gh.NumBins != 100 {
		t.Fatalf("header = %+v", gh)
	}
	if len(got) != len(bins) {
		t.Fatalf("decoded %d bins, want %d", len(got), len(bins))
	}
	for i := range bins {
		if got[i] != bins[i] {
			t.Fatalf("bin %d = %+v, want %+v", i, got[i], bins[i])
		}
	}
	if fl, err := FrameLen(blob); err != nil || fl != len(blob) {
		t.Fatalf("FrameLen = %d,%v, want %d", fl, err, len(blob))
	}
}

func TestRoundTripWeighted(t *testing.T) {
	bins := []core.Bin{
		{Item: "", Count: 0},          // zero-count bin keeps its identity
		{Item: "π", Count: math.Pi},   // exact float bits survive
		{Item: "tiny", Count: 1e-300}, // subnormal-adjacent magnitude
		{Item: "big", Count: 1e300},
	}
	h := Header{Weighted: true, Capacity: 8, Rows: 4}
	blob, err := AppendSnapshot(nil, h, bins)
	if err != nil {
		t.Fatal(err)
	}
	gh, got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !gh.Weighted || gh.Capacity != 8 || gh.Rows != 4 {
		t.Fatalf("header = %+v", gh)
	}
	for i := range bins {
		if got[i] != bins[i] {
			t.Fatalf("bin %d = %+v, want %+v (bit-exact)", i, got[i], bins[i])
		}
	}
}

func TestEncodeAppendsInPlace(t *testing.T) {
	bins := unitBins(10)
	h := Header{Capacity: 16, Rows: 55}
	prefix := []byte("prefix")
	buf := append([]byte(nil), prefix...)
	out, err := AppendSnapshot(buf, h, bins)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendSnapshot clobbered existing bytes")
	}
	if _, _, err := Decode(out[len(prefix):]); err != nil {
		t.Fatalf("decode after prefix: %v", err)
	}
}

func TestEncodeDeterministicBytes(t *testing.T) {
	bins := unitBins(64)
	h := Header{Capacity: 64, Rows: 64 * 65 / 2}
	a, err := AppendSnapshot(nil, h, bins)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AppendSnapshot(nil, h, bins)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same snapshot encoded to different bytes")
	}
}

func TestEncodeRejects(t *testing.T) {
	ok := []core.Bin{{Item: "a", Count: 1}}
	cases := []struct {
		name string
		h    Header
		bins []core.Bin
	}{
		{"zero capacity", Header{Capacity: 0}, ok},
		{"negative rows", Header{Capacity: 4, Rows: -1}, ok},
		{"overfull", Header{Capacity: 1}, unitBins(2)},
		{"fractional unit count", Header{Capacity: 4}, []core.Bin{{Item: "a", Count: 1.5}}},
		{"negative unit count", Header{Capacity: 4}, []core.Bin{{Item: "a", Count: -1}}},
		{"negative weighted count", Header{Weighted: true, Capacity: 4}, []core.Bin{{Item: "a", Count: -0.5}}},
		{"NaN weighted count", Header{Weighted: true, Capacity: 4}, []core.Bin{{Item: "a", Count: math.NaN()}}},
		{"Inf weighted count", Header{Weighted: true, Capacity: 4}, []core.Bin{{Item: "a", Count: math.Inf(1)}}},
	}
	for _, c := range cases {
		if _, err := AppendSnapshot(nil, c.h, c.bins); err == nil {
			t.Errorf("%s: encoded without error", c.name)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	blob, err := AppendSnapshot(nil, Header{Capacity: 8, Rows: 3}, []core.Bin{
		{Item: "aa", Count: 1}, {Item: "bb", Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(b []byte)) []byte {
		m := append([]byte(nil), blob...)
		fn(m)
		return m
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", blob[:10]},
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' })},
		{"future version", mutate(func(b []byte) { b[4] = 3 })},
		{"unknown flag", mutate(func(b []byte) { b[5] |= 0x80 })},
		{"nonzero reserved", mutate(func(b []byte) { b[6] = 1 })},
		{"payload length lies", mutate(func(b []byte) { b[8]++ })},
		{"zero capacity", mutate(func(b []byte) { b[12], b[13], b[14], b[15] = 0, 0, 0, 0 })},
		{"trailing bytes", append(append([]byte(nil), blob...), 0)},
		{"truncated payload", blob[:len(blob)-1]},
	}
	for _, c := range cases {
		if c.name == "payload length lies" || c.name == "truncated payload" {
			// These change the frame/buffer length relation; both must fail.
		}
		if _, _, err := Decode(c.data); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		}
	}
	// Corrupt interior: bin count exceeding capacity.
	m := append([]byte(nil), blob...)
	m[headerLen] = 200 // uvarint bin count
	if _, _, err := Decode(m); err == nil {
		t.Error("bin count over capacity decoded without error")
	}
}

func TestAppendDecodeBinsReuse(t *testing.T) {
	a, err := AppendSnapshot(nil, Header{Capacity: 4, Rows: 1}, []core.Bin{{Item: "x", Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AppendSnapshot(nil, Header{Capacity: 4, Rows: 2}, []core.Bin{{Item: "y", Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]core.Bin, 0, 8)
	_, scratch, err = AppendDecodeBins(scratch, a)
	if err != nil {
		t.Fatal(err)
	}
	_, scratch, err = AppendDecodeBins(scratch, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Bin{{Item: "x", Count: 1}, {Item: "y", Count: 2}}
	if len(scratch) != 2 || scratch[0] != want[0] || scratch[1] != want[1] {
		t.Fatalf("accumulated bins = %+v", scratch)
	}
}

func TestDecodeSharesArena(t *testing.T) {
	// All decoded Item strings must come from one arena: total allocations
	// for a decode are the bins slice + the arena string, independent of n.
	bins := unitBins(512)
	blob, err := AppendSnapshot(nil, Header{Capacity: 512, Rows: 512 * 513 / 2}, bins)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]core.Bin, 0, 512)
	avg := testing.AllocsPerRun(50, func() {
		_, _, err := AppendDecodeBins(scratch[:0], blob)
		if err != nil {
			panic(err)
		}
	})
	if avg > 1.5 {
		t.Errorf("decode of 512 bins allocates %v objects, want ~1 (arena only)", avg)
	}
}

func FuzzDecode(f *testing.F) {
	good, _ := AppendSnapshot(nil, Header{Capacity: 8, Rows: 6}, []core.Bin{
		{Item: "alpha", Count: 1}, {Item: "beta", Count: 2}, {Item: "gamma", Count: 3},
	})
	f.Add(good)
	wgood, _ := AppendSnapshot(nil, Header{Weighted: true, Capacity: 8, Rows: 2}, []core.Bin{
		{Item: "w", Count: 0.5}, {Item: "v", Count: 0},
	})
	f.Add(wgood)
	f.Add([]byte("USSB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, bins, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must satisfy the format's invariants.
		if h.Capacity <= 0 || len(bins) > h.Capacity || h.Rows < 0 {
			t.Fatalf("invalid decoded state: %+v with %d bins", h, len(bins))
		}
		for _, b := range bins {
			if math.IsNaN(b.Count) || math.IsInf(b.Count, 0) || b.Count < 0 {
				t.Fatalf("invalid decoded count %v", b.Count)
			}
			if !h.Weighted && b.Count != math.Trunc(b.Count) {
				t.Fatalf("non-integral unit count %v", b.Count)
			}
		}
		// Re-encode → re-decode must be a fixed point.
		re, err := AppendSnapshot(nil, h, bins)
		if err != nil {
			t.Fatalf("re-encode of decoded snapshot failed: %v", err)
		}
		h2, bins2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		h.NumBins = len(bins) // encoder ignores NumBins
		h2.NumBins = len(bins2)
		if h2 != h || len(bins2) != len(bins) {
			t.Fatalf("round trip changed header: %+v vs %+v", h2, h)
		}
		for i := range bins {
			if bins2[i] != bins[i] {
				t.Fatalf("round trip changed bin %d: %+v vs %+v", i, bins2[i], bins[i])
			}
		}
	})
}
