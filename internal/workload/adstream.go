package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// This file generates a synthetic ad impression stream standing in for the
// Criteo Kaggle display-advertising dataset used in §7 (Figure 6).
//
// Substitution note (see DESIGN.md): the real dataset is a 45M-impression
// sample with 9-plus categorical features. The paper's experiment only
// exercises count aggregation over feature tuples — 1-way and 2-way
// marginals with arbitrary filters — so what matters statistically is (a)
// the skew of each feature's marginal distribution, (b) dependence between
// features so 2-way marginals are not products of 1-way ones, and (c)
// non-random arrival order. The generator reproduces all three: feature
// values are drawn from per-feature Zipf-like marginals whose cardinality
// varies per feature, values are correlated through a shared latent
// "campaign" variable, clicks are Bernoulli with a campaign-dependent rate,
// and rows arrive partially sorted by campaign (mimicking log partitioning
// by advertiser).

// AdConfig parameterizes the synthetic impression generator.
type AdConfig struct {
	// Features is the number of categorical features (paper subset: 9).
	Features int
	// Cardinalities gives each feature's number of distinct values; its
	// length must equal Features.
	Cardinalities []int
	// Skew is the Zipf exponent of each feature's marginal (≈1 is
	// Criteo-like: a few dominant values, a long tail).
	Skew float64
	// Campaigns is the number of latent campaigns inducing feature
	// dependence and arrival-order locality.
	Campaigns int
	// BaseCTR is the average click-through rate (Criteo ≈ 0.26 held-out,
	// ≈ 0.034 raw; any small value exercises the same code paths).
	BaseCTR float64
	// Rows is the number of impressions to generate.
	Rows int64
	// Sortedness in [0,1] is the fraction of rows that arrive grouped by
	// campaign (1 = fully partitioned, 0 = fully shuffled).
	Sortedness float64
}

// DefaultAdConfig mirrors the paper's setup at laptop scale: 9 features
// with mixed cardinalities and partially sorted arrival.
func DefaultAdConfig(rows int64) AdConfig {
	return AdConfig{
		Features:      9,
		Cardinalities: []int{50, 100, 20, 1000, 500, 10, 200, 2000, 5},
		Skew:          1.1,
		Campaigns:     64,
		BaseCTR:       0.034,
		Rows:          rows,
		Sortedness:    0.7,
	}
}

// Impression is one synthetic ad log row.
type Impression struct {
	// Features holds the categorical value index per feature.
	Features []int32
	// Clicked is the label.
	Clicked bool
	// Campaign is the latent group (exported so experiments can filter).
	Campaign int
}

// Key returns the unit-of-analysis key for a subset of feature positions,
// e.g. Key(3) for a 1-way marginal over feature 3 or Key(1,4) for a 2-way
// marginal. Keys are stable strings suitable as sketch items.
func (im Impression) Key(features ...int) string {
	var b strings.Builder
	for j, f := range features {
		if j > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.Itoa(f))
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(int(im.Features[f])))
	}
	return b.String()
}

// ParseMarginalKey splits a Key back into (feature, value) pairs.
func ParseMarginalKey(key string) ([][2]int, error) {
	parts := strings.Split(key, "|")
	out := make([][2]int, 0, len(parts))
	for _, p := range parts {
		fv := strings.SplitN(p, "=", 2)
		if len(fv) != 2 {
			return nil, fmt.Errorf("workload: bad marginal key %q", key)
		}
		f, err1 := strconv.Atoi(fv[0])
		v, err2 := strconv.Atoi(fv[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("workload: bad marginal key %q", key)
		}
		out = append(out, [2]int{f, v})
	}
	return out, nil
}

// AdStream generates impressions deterministically from the config and
// seed. It implements a pull iterator like Stream but yields structured
// rows.
type AdStream struct {
	cfg   AdConfig
	rng   *rand.Rand
	done  int64
	order []int // campaign visit order for the sorted fraction
	// zipf samplers per feature, conditioned via campaign offset
	cum [][]float64
	// campaign CTR multipliers
	ctr []float64
	// rows per campaign for the sorted phase
	perCampaign int64
	curCampaign int
	curServed   int64
}

// NewAdStream validates cfg and returns a generator.
func NewAdStream(cfg AdConfig, seed int64) (*AdStream, error) {
	if cfg.Features <= 0 || len(cfg.Cardinalities) != cfg.Features {
		return nil, fmt.Errorf("workload: config needs %d cardinalities, got %d", cfg.Features, len(cfg.Cardinalities))
	}
	if cfg.Campaigns <= 0 || cfg.Rows <= 0 || cfg.Skew <= 0 {
		return nil, fmt.Errorf("workload: invalid ad config %+v", cfg)
	}
	if cfg.Sortedness < 0 || cfg.Sortedness > 1 {
		return nil, fmt.Errorf("workload: sortedness %v outside [0,1]", cfg.Sortedness)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &AdStream{cfg: cfg, rng: rng}
	// Precompute per-feature Zipf CDFs.
	s.cum = make([][]float64, cfg.Features)
	for f, card := range cfg.Cardinalities {
		if card <= 0 {
			return nil, fmt.Errorf("workload: feature %d cardinality %d", f, card)
		}
		w := make([]float64, card)
		var tot float64
		for v := 0; v < card; v++ {
			w[v] = 1 / math.Pow(float64(v+1), cfg.Skew)
			tot += w[v]
		}
		run := 0.0
		for v := range w {
			run += w[v] / tot
			w[v] = run
		}
		s.cum[f] = w
	}
	// Campaign CTR multipliers in [0.25, 4] log-uniform.
	s.ctr = make([]float64, cfg.Campaigns)
	for c := range s.ctr {
		s.ctr[c] = math.Exp((rng.Float64()*2 - 1) * math.Ln2 * 2)
	}
	s.order = rng.Perm(cfg.Campaigns)
	s.perCampaign = cfg.Rows / int64(cfg.Campaigns)
	if s.perCampaign == 0 {
		s.perCampaign = 1
	}
	return s, nil
}

// Len returns the number of impressions the stream yields.
func (s *AdStream) Len() int64 { return s.cfg.Rows }

// Next yields the next impression, ok=false at end of stream.
func (s *AdStream) Next() (Impression, bool) {
	if s.done >= s.cfg.Rows {
		return Impression{}, false
	}
	s.done++

	// Choose the campaign: with probability Sortedness follow the
	// partitioned order, otherwise uniform (a shuffled interloper).
	var campaign int
	if s.rng.Float64() < s.cfg.Sortedness {
		campaign = s.order[s.curCampaign%len(s.order)]
		s.curServed++
		if s.curServed >= s.perCampaign {
			s.curServed = 0
			s.curCampaign++
		}
	} else {
		campaign = s.rng.Intn(s.cfg.Campaigns)
	}

	feats := make([]int32, s.cfg.Features)
	for f := range feats {
		// Campaign-conditioned draw: a fraction of rows rotate the Zipf
		// draw by a campaign-specific offset so features correlate
		// through the campaign; the rest draw from the global marginal
		// so the overall per-feature distribution keeps its Zipf head.
		u := s.rng.Float64()
		v := searchCDF(s.cum[f], u)
		card := s.cfg.Cardinalities[f]
		if s.rng.Float64() < 0.4 {
			offset := (campaign * 7919) % card
			v = (v + offset) % card
		}
		feats[f] = int32(v)
	}
	p := s.cfg.BaseCTR * s.ctr[campaign]
	if p > 1 {
		p = 1
	}
	return Impression{Features: feats, Clicked: s.rng.Float64() < p, Campaign: campaign}, true
}

// searchCDF returns the smallest index i with cum[i] > u.
func searchCDF(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// MarginalStream adapts an AdStream into a row Stream keyed by the given
// feature positions, so it can feed any sketch directly.
func MarginalStream(ads *AdStream, features ...int) Stream {
	return &marginalStream{ads: ads, features: features}
}

type marginalStream struct {
	ads      *AdStream
	features []int
}

func (m *marginalStream) Next() (string, bool) {
	im, ok := m.ads.Next()
	if !ok {
		return "", false
	}
	return im.Key(m.features...), true
}

func (m *marginalStream) Len() int64 { return m.ads.Len() }
