package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestLabelRoundTrip(t *testing.T) {
	for _, i := range []int{0, 7, 999, 123456} {
		if got := ParseLabel(Label(i)); got != i {
			t.Errorf("ParseLabel(Label(%d)) = %d", i, got)
		}
	}
	for _, bad := range []string{"", "item-", "item-x", "foo-3", "3"} {
		if got := ParseLabel(bad); got != -1 {
			t.Errorf("ParseLabel(%q) = %d, want -1", bad, got)
		}
	}
}

func TestDiscretizedWeibullShape(t *testing.T) {
	p := DiscretizedWeibull(1000, 5e5, 0.15)
	if len(p.Counts) != 1000 {
		t.Fatalf("len = %d", len(p.Counts))
	}
	// Ascending in the grid.
	for i := 1; i < len(p.Counts); i++ {
		if p.Counts[i] < p.Counts[i-1] {
			t.Fatalf("counts not ascending at %d", i)
		}
	}
	// Heavy skew: §6.2 says sd ≈ 30× mean for Weibull(5e5, 0.15).
	mean := float64(p.Total) / 1000
	var varr float64
	for _, c := range p.Counts {
		d := float64(c) - mean
		varr += d * d
	}
	sd := math.Sqrt(varr / 1000)
	if ratio := sd / mean; ratio < 10 || ratio > 60 {
		t.Errorf("sd/mean = %.1f, paper says ≈ 30", ratio)
	}
	if p.Total <= 0 {
		t.Error("total not positive")
	}
}

func TestDiscretizedGeometric(t *testing.T) {
	p := DiscretizedGeometric(1000, 0.03)
	// Mean of Geometric(0.03) on {0,1,...} is (1−p)/p ≈ 32.3.
	mean := float64(p.Total) / 1000
	if mean < 25 || mean < 0 || mean > 40 {
		t.Errorf("geometric mean count %.1f, want ≈ 32", mean)
	}
	for i := 1; i < len(p.Counts); i++ {
		if p.Counts[i] < p.Counts[i-1] {
			t.Fatalf("counts not ascending at %d", i)
		}
	}
}

func TestZipf(t *testing.T) {
	p := Zipf(100, 1.0, 1000)
	if p.Counts[99] != 1000 {
		t.Errorf("largest count = %d, want 1000", p.Counts[99])
	}
	if p.Counts[0] != 10 {
		t.Errorf("smallest count = %d, want 1000/100 = 10", p.Counts[0])
	}
}

func TestUniformPopulation(t *testing.T) {
	p := Uniform(10, 7)
	if p.Total != 70 {
		t.Errorf("Total = %d", p.Total)
	}
	if p.Count(3) != 7 || p.Count(-1) != 0 || p.Count(10) != 0 {
		t.Error("Count wrong")
	}
}

func TestSubsetSumAndRandomSubset(t *testing.T) {
	p := Uniform(100, 2)
	rng := newRng(1)
	pred, members := RandomSubset(p, 30, rng)
	if len(members) != 30 {
		t.Fatalf("members = %d", len(members))
	}
	if got := p.SubsetSum(pred); got != 60 {
		t.Errorf("SubsetSum = %d, want 60", got)
	}
	// Oversized subset truncates.
	_, all := RandomSubset(p, 500, rng)
	if len(all) != 100 {
		t.Errorf("oversized subset = %d members", len(all))
	}
	// LabelPred lifts correctly.
	lp := LabelPred(pred)
	hits := 0
	for i := 0; i < 100; i++ {
		if lp(Label(i)) {
			hits++
		}
	}
	if hits != 30 {
		t.Errorf("LabelPred hits = %d, want 30", hits)
	}
	if lp("not-an-item") {
		t.Error("LabelPred accepted foreign label")
	}
}

func checkStreamMatchesPopulation(t *testing.T, s Stream, p Population) {
	t.Helper()
	if s.Len() != p.Total {
		t.Fatalf("stream Len %d, population total %d", s.Len(), p.Total)
	}
	counts := map[string]int64{}
	n := int64(0)
	for {
		it, ok := s.Next()
		if !ok {
			break
		}
		counts[it]++
		n++
	}
	if n != p.Total {
		t.Fatalf("stream yielded %d rows, want %d", n, p.Total)
	}
	for i, c := range p.Counts {
		if c == 0 {
			continue
		}
		if got := counts[Label(i)]; got != c {
			t.Fatalf("item %d yielded %d times, want %d", i, got, c)
		}
	}
}

func TestShuffledStream(t *testing.T) {
	p := DiscretizedWeibull(50, 100, 0.5)
	checkStreamMatchesPopulation(t, Shuffled(p, newRng(2)), p)
}

func TestTwoHalvesStream(t *testing.T) {
	p := Uniform(20, 5)
	s := TwoHalves(p, 10, newRng(3))
	rows := Collect(s)
	if len(rows) != 100 {
		t.Fatalf("rows = %d", len(rows))
	}
	// First 50 rows only items < 10, last 50 only ≥ 10.
	for i, r := range rows {
		idx := ParseLabel(r)
		if i < 50 && idx >= 10 {
			t.Fatalf("row %d is item %d, want < 10", i, idx)
		}
		if i >= 50 && idx < 10 {
			t.Fatalf("row %d is item %d, want ≥ 10", i, idx)
		}
	}
	checkStreamMatchesPopulation(t, TwoHalves(p, 10, newRng(4)), p)
}

func TestSortedStreams(t *testing.T) {
	p := NewPopulation([]int64{3, 1, 2})
	asc := Collect(SortedAscending(p))
	want := []string{"item-1", "item-2", "item-2", "item-0", "item-0", "item-0"}
	if len(asc) != len(want) {
		t.Fatalf("asc = %v", asc)
	}
	for i := range want {
		if asc[i] != want[i] {
			t.Fatalf("asc[%d] = %s, want %s", i, asc[i], want[i])
		}
	}
	desc := Collect(SortedDescending(p))
	if desc[0] != "item-0" || desc[len(desc)-1] != "item-1" {
		t.Fatalf("desc = %v", desc)
	}
	checkStreamMatchesPopulation(t, SortedAscending(p), p)
}

func TestSortedSkipsZeroCounts(t *testing.T) {
	p := NewPopulation([]int64{0, 2, 0, 1})
	rows := Collect(SortedAscending(p))
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIIDStream(t *testing.T) {
	p := NewPopulation([]int64{100, 900})
	s := IID(p, 20000, newRng(5))
	counts := map[string]int64{}
	Drain(s, func(item string) { counts[item]++ })
	frac := float64(counts["item-1"]) / 20000
	if math.Abs(frac-0.9) > 0.02 {
		t.Errorf("item-1 frequency %.3f, want ≈ 0.9", frac)
	}
	if s.Len() != 20000 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestAdversarialDistinct(t *testing.T) {
	p := Uniform(10, 10)
	s := AdversarialDistinct(p)
	rows := Collect(s)
	if int64(len(rows)) != 2*p.Total {
		t.Fatalf("rows = %d, want %d", len(rows), 2*p.Total)
	}
	// First half: population items; second half: distinct noise.
	seen := map[string]bool{}
	for i, r := range rows {
		if i < 100 {
			if ParseLabel(r) == -1 {
				t.Fatalf("row %d = %q, want population item", i, r)
			}
		} else {
			if !strings.HasPrefix(r, "noise-") {
				t.Fatalf("row %d = %q, want noise", i, r)
			}
			if seen[r] {
				t.Fatalf("noise row %q repeated", r)
			}
			seen[r] = true
		}
	}
	if s.Len() != 200 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestPeriodicBursts(t *testing.T) {
	p := Uniform(10, 10)
	s := PeriodicBursts(p, 20, 5, newRng(6))
	rows := Collect(s)
	bursts := 0
	for _, r := range rows {
		if r == "burst" {
			bursts++
		}
	}
	if bursts != 25 { // 100 base rows / 20 × 5
		t.Errorf("burst rows = %d, want 25", bursts)
	}
}

func TestConcat(t *testing.T) {
	a := FromRows([]string{"x", "y"})
	b := FromRows([]string{"z"})
	c := Concat(a, b)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	got := Collect(c)
	if got[0] != "x" || got[2] != "z" {
		t.Fatalf("Concat order wrong: %v", got)
	}
}

func TestGeneratorsPanicOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { DiscretizedWeibull(0, 1, 1) },
		func() { DiscretizedWeibull(5, -1, 1) },
		func() { DiscretizedGeometric(5, 0) },
		func() { DiscretizedGeometric(5, 1) },
		func() { Zipf(0, 1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAdStreamDeterministicAndValid(t *testing.T) {
	cfg := DefaultAdConfig(5000)
	a1, err := NewAdStream(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := NewAdStream(cfg, 42)
	clicks := 0
	for i := 0; i < 5000; i++ {
		im1, ok1 := a1.Next()
		im2, ok2 := a2.Next()
		if !ok1 || !ok2 {
			t.Fatalf("stream ended early at %d", i)
		}
		if im1.Key(0, 1, 2, 3, 4, 5, 6, 7, 8) != im2.Key(0, 1, 2, 3, 4, 5, 6, 7, 8) || im1.Clicked != im2.Clicked {
			t.Fatal("same seed produced different impressions")
		}
		for f, v := range im1.Features {
			if int(v) < 0 || int(v) >= cfg.Cardinalities[f] {
				t.Fatalf("feature %d value %d out of range", f, v)
			}
		}
		if im1.Clicked {
			clicks++
		}
	}
	if _, ok := a1.Next(); ok {
		t.Error("stream yielded beyond Rows")
	}
	// CTR should be in a plausible band around BaseCTR.
	ctr := float64(clicks) / 5000
	if ctr < 0.005 || ctr > 0.2 {
		t.Errorf("ctr = %.4f, config base %.4f", ctr, cfg.BaseCTR)
	}
}

func TestAdStreamConfigValidation(t *testing.T) {
	bad := DefaultAdConfig(100)
	bad.Cardinalities = bad.Cardinalities[:3]
	if _, err := NewAdStream(bad, 1); err == nil {
		t.Error("mismatched cardinalities accepted")
	}
	bad2 := DefaultAdConfig(100)
	bad2.Sortedness = 2
	if _, err := NewAdStream(bad2, 1); err == nil {
		t.Error("sortedness > 1 accepted")
	}
	bad3 := DefaultAdConfig(0)
	if _, err := NewAdStream(bad3, 1); err == nil {
		t.Error("zero rows accepted")
	}
	bad4 := DefaultAdConfig(100)
	bad4.Cardinalities[2] = 0
	if _, err := NewAdStream(bad4, 1); err == nil {
		t.Error("zero cardinality accepted")
	}
}

func TestAdStreamSkewedMarginals(t *testing.T) {
	cfg := DefaultAdConfig(20000)
	ads, err := NewAdStream(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int32]int{}
	for {
		im, ok := ads.Next()
		if !ok {
			break
		}
		counts[im.Features[3]]++ // cardinality 1000
	}
	// Zipf skew: the top value should dwarf the median.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 20000/100 {
		t.Errorf("top feature value count %d — marginal not skewed", maxC)
	}
}

func TestMarginalKeys(t *testing.T) {
	im := Impression{Features: []int32{5, 7, 9}}
	key := im.Key(0, 2)
	if key != "0=5|2=9" {
		t.Fatalf("Key = %q", key)
	}
	pairs, err := ParseMarginalKey(key)
	if err != nil || len(pairs) != 2 || pairs[0] != [2]int{0, 5} || pairs[1] != [2]int{2, 9} {
		t.Fatalf("ParseMarginalKey = %v, %v", pairs, err)
	}
	if _, err := ParseMarginalKey("garbage"); err == nil {
		t.Error("garbage key parsed")
	}
	if _, err := ParseMarginalKey("a=b"); err == nil {
		t.Error("non-numeric key parsed")
	}
}

func TestMarginalStream(t *testing.T) {
	cfg := DefaultAdConfig(100)
	ads, _ := NewAdStream(cfg, 3)
	ms := MarginalStream(ads, 1, 4)
	if ms.Len() != 100 {
		t.Fatalf("Len = %d", ms.Len())
	}
	n := 0
	for {
		key, ok := ms.Next()
		if !ok {
			break
		}
		if _, err := ParseMarginalKey(key); err != nil {
			t.Fatalf("bad key %q", key)
		}
		n++
	}
	if n != 100 {
		t.Errorf("yielded %d rows", n)
	}
}
