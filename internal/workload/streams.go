package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// A Stream yields disaggregated rows one item label at a time. Next returns
// ok=false when the stream is exhausted. Streams are cheap, single-pass
// iterators so experiments can run billions-row-shaped workloads without
// materializing them.
type Stream interface {
	Next() (item string, ok bool)
	// Len returns the total number of rows the stream will yield.
	Len() int64
}

// sliceStream yields a materialized row list.
type sliceStream struct {
	rows []string
	pos  int
}

func (s *sliceStream) Next() (string, bool) {
	if s.pos >= len(s.rows) {
		return "", false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

func (s *sliceStream) Len() int64 { return int64(len(s.rows)) }

// FromRows wraps materialized rows as a Stream.
func FromRows(rows []string) Stream { return &sliceStream{rows: rows} }

// Collect drains a stream into a slice (test helper; avoid for huge streams).
func Collect(s Stream) []string {
	out := make([]string, 0, s.Len())
	for {
		it, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

// Drain feeds every row of s to fn.
func Drain(s Stream, fn func(item string)) {
	for {
		it, ok := s.Next()
		if !ok {
			return
		}
		fn(it)
	}
}

// Shuffled returns the population's rows in uniformly random order — an
// exchangeable sequence, which §7 notes is equivalent in the limit to an
// i.i.d. stream by de Finetti's theorem. The rows are materialized;
// populations at laptop scale (≤ ~10⁸ rows) fit comfortably.
func Shuffled(p Population, rng *rand.Rand) Stream {
	rows := make([]string, 0, p.Total)
	for i, c := range p.Counts {
		lbl := Label(i)
		for j := int64(0); j < c; j++ {
			rows = append(rows, lbl)
		}
	}
	rng.Shuffle(len(rows), func(a, b int) { rows[a], rows[b] = rows[b], rows[a] })
	return FromRows(rows)
}

// IID returns an i.i.d. stream of n rows where each row is item i with
// probability Counts[i]/Total. Unlike Shuffled it does not reproduce counts
// exactly — it is the literal i.i.d. model of §6.
func IID(p Population, n int64, rng *rand.Rand) Stream {
	// Build the cumulative distribution once; sample by binary search.
	cum := make([]int64, len(p.Counts))
	var run int64
	for i, c := range p.Counts {
		run += c
		cum[i] = run
	}
	return &iidStream{cum: cum, total: run, n: n, rng: rng}
}

type iidStream struct {
	cum   []int64
	total int64
	n     int64
	done  int64
	rng   *rand.Rand
}

func (s *iidStream) Next() (string, bool) {
	if s.done >= s.n {
		return "", false
	}
	s.done++
	target := s.rng.Int63n(s.total)
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] > target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return Label(lo), true
}

func (s *iidStream) Len() int64 { return s.n }

// TwoHalves builds the pathological-for-Deterministic-Space-Saving stream
// of §7.1: the first half contains only items [0, splitAt) and the second
// half only items [splitAt, n), each half independently shuffled. Items in
// the first half never reappear, so Deterministic Space Saving forgets
// them; an unbiased sketch must not.
func TwoHalves(p Population, splitAt int, rng *rand.Rand) Stream {
	var first, second []string
	for i, c := range p.Counts {
		lbl := Label(i)
		for j := int64(0); j < c; j++ {
			if i < splitAt {
				first = append(first, lbl)
			} else {
				second = append(second, lbl)
			}
		}
	}
	rng.Shuffle(len(first), func(a, b int) { first[a], first[b] = first[b], first[a] })
	rng.Shuffle(len(second), func(a, b int) { second[a], second[b] = second[b], second[a] })
	return FromRows(append(first, second...))
}

// SortedAscending yields every item's rows contiguously, items ordered by
// ascending count — the worst-case stream for Unbiased Space Saving used in
// the epoch experiments (Figures 8–10). (Descending order would be the
// optimal case.)
func SortedAscending(p Population) Stream {
	return &sortedStream{p: p}
}

// SortedDescending is the optimally favorable order: most frequent first.
func SortedDescending(p Population) Stream {
	return &sortedStream{p: p, desc: true}
}

type sortedStream struct {
	p     Population
	desc  bool
	order []int // item indices sorted by count
	pos   int   // index into order
	left  int64 // rows remaining for the current item
	init  bool
}

func (s *sortedStream) Next() (string, bool) {
	if !s.init {
		s.init = true
		s.order = sortedIndices(s.p, s.desc)
		s.pos = 0
		if len(s.order) > 0 {
			s.left = s.p.Counts[s.order[0]]
		}
	}
	for s.pos < len(s.order) && s.left == 0 {
		s.pos++
		if s.pos < len(s.order) {
			s.left = s.p.Counts[s.order[s.pos]]
		}
	}
	if s.pos >= len(s.order) {
		return "", false
	}
	s.left--
	return Label(s.order[s.pos]), true
}

func (s *sortedStream) Len() int64 { return s.p.Total }

func sortedIndices(p Population, desc bool) []int {
	order := make([]int, len(p.Counts))
	for i := range order {
		order[i] = i
	}
	// Insertion-free stable sort by count; use sort.SliceStable semantics
	// via a simple comparator.
	lessThan := func(a, b int) bool {
		if p.Counts[a] != p.Counts[b] {
			if desc {
				return p.Counts[a] > p.Counts[b]
			}
			return p.Counts[a] < p.Counts[b]
		}
		return a < b
	}
	sort.Slice(order, func(a, b int) bool { return lessThan(order[a], order[b]) })
	return order
}

// AdversarialDistinct builds the Theorem-11 adversarial stream: the
// population's rows sorted most-frequent-first, followed by extra distinct
// one-row items ("noise-<j>") numbering the population's total count. The
// theorem shows Deterministic Space Saving then estimates 0 for every real
// item (provided nᵢ < 2·ntot/m), while Unbiased Space Saving degrades only
// as if the sample size were halved.
func AdversarialDistinct(p Population) Stream {
	return &adversarialStream{p: p}
}

type adversarialStream struct {
	p      Population
	base   Stream
	noise  int64
	served int64
	init   bool
}

func (s *adversarialStream) Next() (string, bool) {
	if !s.init {
		s.init = true
		s.base = SortedDescending(s.p)
		s.noise = s.p.Total
	}
	if it, ok := s.base.Next(); ok {
		return it, true
	}
	if s.served < s.noise {
		s.served++
		return fmt.Sprintf("noise-%d", s.served), true
	}
	return "", false
}

func (s *adversarialStream) Len() int64 { return 2 * s.p.Total }

// PeriodicBursts interleaves a bursty item into a base shuffled stream:
// every period rows, the burst item occupies burstLen consecutive rows.
// This realizes the "periodic bursts ... followed by periods in which its
// frequency drops below the threshold of guaranteed inclusion" pathology of
// §6.3. The burst item's label is "burst".
func PeriodicBursts(p Population, period, burstLen int, rng *rand.Rand) Stream {
	base := Collect(Shuffled(p, rng))
	rows := make([]string, 0, len(base)+len(base)/max(1, period)*burstLen)
	for i, r := range base {
		rows = append(rows, r)
		if period > 0 && (i+1)%period == 0 {
			for j := 0; j < burstLen; j++ {
				rows = append(rows, "burst")
			}
		}
	}
	return FromRows(rows)
}

// Concat chains streams end to end.
func Concat(streams ...Stream) Stream { return &concatStream{streams: streams} }

type concatStream struct {
	streams []Stream
	idx     int
}

func (c *concatStream) Next() (string, bool) {
	for c.idx < len(c.streams) {
		if it, ok := c.streams[c.idx].Next(); ok {
			return it, true
		}
		c.idx++
	}
	return "", false
}

func (c *concatStream) Len() int64 {
	var n int64
	for _, s := range c.streams {
		n += s.Len()
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
