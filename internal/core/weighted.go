package core

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// WeightedSketch is the real-valued generalization of Unbiased Space Saving
// described in §5.3 of the paper: rows arrive with arbitrary positive
// weights, and the reduction step is a thresholded-PPS subsample of the
// minimum bin. A row (item, w) whose item is untracked bumps the minimum
// bin to Nmin+w and steals its label with probability w/(Nmin+w), which
// keeps every per-item estimate an unbiased martingale exactly as in the
// unit case.
//
// The price of real-valued counts is the loss of the O(1) bucket list:
// WeightedSketch keeps its bins in a min-heap, so updates cost O(log m).
// Exact count ties break arbitrarily rather than uniformly at random; with
// continuous weights ties have probability zero.
type WeightedSketch struct {
	m       int
	rng     *rand.Rand
	h       wheap
	index   map[string]*wbin
	total   float64
	rows    int64
	version uint64
}

// wbin is one heap entry.
type wbin struct {
	item  string
	count float64
	idx   int
}

// wheap is a min-heap of bins ordered by count.
type wheap []*wbin

func (h wheap) Len() int            { return len(h) }
func (h wheap) Less(i, j int) bool  { return h[i].count < h[j].count }
func (h wheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *wheap) Push(x interface{}) { b := x.(*wbin); b.idx = len(*h); *h = append(*h, b) }
func (h *wheap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	b := old[n]
	old[n] = nil
	*h = old[:n]
	return b
}

// NewWeighted returns a weighted Unbiased Space Saving sketch with m bins.
// rng must be non-nil.
func NewWeighted(m int, rng *rand.Rand) *WeightedSketch {
	if m <= 0 {
		panic(fmt.Sprintf("core: sketch size m = %d, want > 0", m))
	}
	if rng == nil {
		panic("core: weighted sketch requires a random source")
	}
	return &WeightedSketch{m: m, rng: rng, index: make(map[string]*wbin, m)}
}

// Capacity returns m.
func (s *WeightedSketch) Capacity() int { return s.m }

// Size returns the number of occupied bins.
func (s *WeightedSketch) Size() int { return len(s.h) }

// Rows returns the number of Update calls processed.
func (s *WeightedSketch) Rows() int64 { return s.rows }

// Version returns a counter that advances on every mutation (updates,
// scaling, resizing), letting readers revalidate cached derived structures.
// Not synchronized, like the sketch itself.
func (s *WeightedSketch) Version() uint64 { return s.version }

// Total returns the sum of all bin counts, which for positive weights
// equals the exact sum of all update weights.
func (s *WeightedSketch) Total() float64 { return s.total }

// MinCount returns the smallest bin count (0 with spare capacity).
func (s *WeightedSketch) MinCount() float64 {
	if len(s.h) < s.m {
		return 0
	}
	return s.h[0].count
}

// Update processes a row carrying weight w > 0 for item. It panics on
// non-positive weights; use UpdateSigned for the signed extension.
func (s *WeightedSketch) Update(item string, w float64) {
	if w <= 0 {
		panic(fmt.Sprintf("core: weighted update with weight %v, want > 0", w))
	}
	s.rows++
	s.version++
	s.total += w
	if b, ok := s.index[item]; ok {
		b.count += w
		heap.Fix(&s.h, b.idx)
		return
	}
	if len(s.h) < s.m {
		b := &wbin{item: item, count: w}
		heap.Push(&s.h, b)
		s.index[item] = b
		return
	}
	min := s.h[0]
	newCount := min.count + w
	// Thresholded-PPS reduction over {existing label, new item}:
	// the incoming row keeps the bin with probability w/(Nmin+w).
	if s.rng.Float64()*newCount < w {
		delete(s.index, min.item)
		min.item = item
		s.index[item] = min
	}
	min.count = newCount
	heap.Fix(&s.h, 0)
}

// UpdateSigned applies a signed weight to an item already in the sketch and
// returns true, or returns false (and applies nothing) when w < 0 and the
// item is untracked — a negative update to an untracked item has no
// unbiased single-bin treatment (§5.3 notes two-sided thresholding loses
// the theoretical analysis). Positive weights defer to Update. Counts may
// go negative; they are kept as-is so that further positive mass can cancel
// them, matching the two-sided shrinkage discussion in the paper.
func (s *WeightedSketch) UpdateSigned(item string, w float64) bool {
	if w >= 0 {
		if w > 0 {
			s.Update(item, w)
		}
		return true
	}
	b, ok := s.index[item]
	if !ok {
		return false
	}
	s.rows++
	s.version++
	s.total += w
	b.count += w
	heap.Fix(&s.h, b.idx)
	return true
}

// Contains reports whether item labels a bin.
func (s *WeightedSketch) Contains(item string) bool {
	_, ok := s.index[item]
	return ok
}

// Estimate returns item's estimated total weight (0 if untracked).
func (s *WeightedSketch) Estimate(item string) float64 {
	b, ok := s.index[item]
	if !ok {
		return 0
	}
	return b.count
}

// Bins returns the bins in heap (arbitrary) order.
func (s *WeightedSketch) Bins() []Bin {
	out := make([]Bin, len(s.h))
	for i, b := range s.h {
		out[i] = Bin{Item: b.item, Count: b.count}
	}
	return out
}

// AppendBins appends the bins to dst in heap (arbitrary) order and returns
// the extended slice. With a caller-reused dst this is the allocation-free
// variant of Bins, used by the steady-state wire encoder.
func (s *WeightedSketch) AppendBins(dst []Bin) []Bin {
	for _, b := range s.h {
		dst = append(dst, Bin{Item: b.item, Count: b.count})
	}
	return dst
}

// SubsetSum estimates the total weight of items satisfying pred, with the
// equation-5 variance estimate.
func (s *WeightedSketch) SubsetSum(pred func(item string) bool) Estimate {
	var sum float64
	var hits int
	for _, b := range s.h {
		if pred(b.item) {
			sum += b.count
			hits++
		}
	}
	return newEstimate(sum, hits, s.MinCount())
}

// Scale multiplies every bin count (and the running total) by c > 0. This
// is the primitive behind forward decay: scaling commutes with the update
// rule, so a decayed sketch is maintained by scaling before each query or
// epoch boundary.
func (s *WeightedSketch) Scale(c float64) {
	if c <= 0 {
		panic(fmt.Sprintf("core: scale factor %v, want > 0", c))
	}
	s.version++
	for _, b := range s.h {
		b.count *= c
	}
	s.total *= c
	// Order statistics are unchanged by a positive scaling; the heap
	// remains valid.
}

// CheckInvariants verifies heap ordering and index consistency.
func (s *WeightedSketch) CheckInvariants() error {
	if len(s.h) > s.m {
		return fmt.Errorf("weighted sketch holds %d bins, capacity %d", len(s.h), s.m)
	}
	if len(s.h) != len(s.index) {
		return fmt.Errorf("heap holds %d bins, index %d", len(s.h), len(s.index))
	}
	var sum float64
	for i, b := range s.h {
		if b.idx != i {
			return fmt.Errorf("bin %q has idx %d, want %d", b.item, b.idx, i)
		}
		if s.index[b.item] != b {
			return fmt.Errorf("index disagrees for %q", b.item)
		}
		left, right := 2*i+1, 2*i+2
		if left < len(s.h) && s.h[left].count < b.count {
			return fmt.Errorf("heap violation at %d", i)
		}
		if right < len(s.h) && s.h[right].count < b.count {
			return fmt.Errorf("heap violation at %d", i)
		}
		sum += b.count
	}
	const eps = 1e-6
	if diff := sum - s.total; diff > eps || diff < -eps {
		return fmt.Errorf("bin mass %v, running total %v", sum, s.total)
	}
	return nil
}
