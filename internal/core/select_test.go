package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// sortTop is the reference implementation SelectTop must agree with: full
// sort by descending count, ties by ascending item, truncated to k.
func sortTop(bins []Bin, k int) []Bin {
	cp := make([]Bin, len(bins))
	copy(cp, bins)
	sort.Slice(cp, func(i, j int) bool { return rankAbove(cp[i], cp[j]) })
	if k > len(cp) {
		k = len(cp)
	}
	return cp[:k]
}

func TestSelectTopMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		bins := make([]Bin, n)
		for i := range bins {
			// Few distinct counts so ties are common.
			bins[i] = Bin{Item: fmt.Sprintf("i%02d", rng.Intn(30)), Count: float64(rng.Intn(6))}
		}
		for _, k := range []int{0, 1, 2, n / 2, n, n + 3} {
			got := SelectTop(bins, k)
			want := sortTop(bins, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: len %d, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d: got %v, want %v", trial, k, got, want)
				}
			}
		}
	}
}

func TestSelectTopDoesNotMutateInput(t *testing.T) {
	bins := []Bin{{"c", 1}, {"a", 9}, {"b", 5}}
	orig := make([]Bin, len(bins))
	copy(orig, bins)
	SelectTop(bins, 2)
	if !reflect.DeepEqual(bins, orig) {
		t.Errorf("SelectTop mutated its input: %v", bins)
	}
}

func TestSelectTopEdgeCases(t *testing.T) {
	if got := SelectTop(nil, 5); len(got) != 0 {
		t.Errorf("SelectTop(nil, 5) = %v", got)
	}
	if got := SelectTop([]Bin{{"a", 1}}, 0); len(got) != 0 {
		t.Errorf("SelectTop(_, 0) = %v", got)
	}
	if got := SelectTop([]Bin{{"a", 1}}, -2); len(got) != 0 {
		t.Errorf("SelectTop(_, -2) = %v", got)
	}
}

// TestSketchTopKMatchesReference: the streaming selector behind
// (*Sketch).TopK must agree with sorting the full bin dump.
func TestSketchTopKMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sk := New(64, Unbiased, rng)
	for i := 0; i < 5000; i++ {
		sk.Update(fmt.Sprintf("item-%d", rng.Intn(200)))
	}
	for _, k := range []int{0, 1, 10, 64, 100} {
		got := sk.TopK(k)
		want := sortTop(sk.Bins(), k)
		if !reflect.DeepEqual(append([]Bin{}, got...), append([]Bin{}, want...)) {
			t.Fatalf("TopK(%d) = %v, want %v", k, got, want)
		}
	}
}
