package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewWeighted(0) did not panic")
			}
		}()
		NewWeighted(0, newRng(1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewWeighted(nil rng) did not panic")
			}
		}()
		NewWeighted(4, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Update(w<=0) did not panic")
			}
		}()
		s := NewWeighted(4, newRng(1))
		s.Update("a", 0)
	}()
}

func TestWeightedExactUnderCapacity(t *testing.T) {
	s := NewWeighted(10, newRng(1))
	s.Update("a", 1.5)
	s.Update("b", 2.25)
	s.Update("a", 0.5)
	if got := s.Estimate("a"); got != 2.0 {
		t.Errorf("Estimate(a) = %v, want 2", got)
	}
	if got := s.Estimate("b"); got != 2.25 {
		t.Errorf("Estimate(b) = %v, want 2.25", got)
	}
	if got := s.Estimate("zzz"); got != 0 {
		t.Errorf("Estimate(zzz) = %v, want 0", got)
	}
	if got := s.Total(); got != 4.25 {
		t.Errorf("Total = %v, want 4.25", got)
	}
	if s.MinCount() != 0 {
		t.Errorf("MinCount = %v with spare capacity", s.MinCount())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedTotalPreserved(t *testing.T) {
	rng := newRng(7)
	s := NewWeighted(8, rng)
	var want float64
	for i := 0; i < 3000; i++ {
		w := rng.Float64()*5 + 0.01
		s.Update(fmt.Sprintf("i%d", rng.Intn(200)), w)
		want += w
	}
	if got := s.Total(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if s.Size() != 8 {
		t.Errorf("Size = %d, want 8", s.Size())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedUnbiasedness checks Theorem 1 for the weighted update rule:
// repeated runs over a weight-carrying stream must average to the truth.
func TestWeightedUnbiasedness(t *testing.T) {
	type row struct {
		item string
		w    float64
	}
	var stream []row
	truth := map[string]float64{}
	for i := 0; i < 25; i++ {
		r := row{item: fmt.Sprintf("i%d", i), w: 1 + float64(i%5)}
		for j := 0; j < 3; j++ {
			stream = append(stream, r)
			truth[r.item] += r.w
		}
	}
	rng := newRng(21)
	const reps = 5000
	targets := []string{"i0", "i13", "i24"}
	sums := map[string]float64{}
	sumsq := map[string]float64{}
	for r := 0; r < reps; r++ {
		s := NewWeighted(6, rng)
		perm := rng.Perm(len(stream))
		for _, i := range perm {
			s.Update(stream[i].item, stream[i].w)
		}
		for _, item := range targets {
			e := s.Estimate(item)
			sums[item] += e
			sumsq[item] += e * e
		}
	}
	for _, item := range targets {
		mean := sums[item] / reps
		varr := sumsq[item]/reps - mean*mean
		se := math.Sqrt(varr / reps)
		if se == 0 {
			se = 1e-12
		}
		z := math.Abs(mean-truth[item]) / se
		if z > 4.5 {
			t.Errorf("weighted Estimate(%s): mean %.3f vs truth %.1f, |z| = %.1f", item, mean, truth[item], z)
		}
	}
}

func TestWeightedSubsetSum(t *testing.T) {
	rng := newRng(3)
	s := NewWeighted(16, rng)
	for i := 0; i < 500; i++ {
		s.Update(fmt.Sprintf("i%d", rng.Intn(50)), 1)
	}
	all := s.SubsetSum(func(string) bool { return true })
	if math.Abs(all.Value-s.Total()) > 1e-9 {
		t.Errorf("SubsetSum(all) = %v, Total = %v", all.Value, s.Total())
	}
}

func TestUpdateSigned(t *testing.T) {
	rng := newRng(3)
	s := NewWeighted(4, rng)
	s.Update("a", 5)
	if !s.UpdateSigned("a", -2) {
		t.Fatal("UpdateSigned on tracked item failed")
	}
	if got := s.Estimate("a"); got != 3 {
		t.Errorf("after signed update Estimate(a) = %v, want 3", got)
	}
	if s.UpdateSigned("ghost", -1) {
		t.Error("UpdateSigned on untracked negative succeeded")
	}
	if !s.UpdateSigned("b", 2) {
		t.Error("UpdateSigned positive failed")
	}
	if got := s.Estimate("b"); got != 2 {
		t.Errorf("Estimate(b) = %v, want 2", got)
	}
	// Zero weight is a no-op that reports success.
	if !s.UpdateSigned("a", 0) {
		t.Error("UpdateSigned(0) failed")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateSignedCanGoNegative(t *testing.T) {
	rng := newRng(3)
	s := NewWeighted(4, rng)
	s.Update("a", 1)
	s.UpdateSigned("a", -3)
	if got := s.Estimate("a"); got != -2 {
		t.Errorf("Estimate(a) = %v, want -2 (negative counts kept)", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	rng := newRng(3)
	s := NewWeighted(4, rng)
	s.Update("a", 2)
	s.Update("b", 6)
	s.Scale(0.5)
	if got := s.Estimate("a"); got != 1 {
		t.Errorf("after Scale Estimate(a) = %v, want 1", got)
	}
	if got := s.Total(); got != 4 {
		t.Errorf("after Scale Total = %v, want 4", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Scale(0) did not panic")
			}
		}()
		s.Scale(0)
	}()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMatchesUnitSketchDistribution(t *testing.T) {
	// With all weights 1 the weighted sketch solves the same problem as
	// the unit sketch; their estimates over replicates must agree in
	// mean for a fixed subset.
	var stream []string
	for i := 0; i < 12; i++ {
		for j := 0; j < i+1; j++ {
			stream = append(stream, fmt.Sprintf("i%d", i))
		}
	}
	pred := func(s string) bool { return s == "i3" || s == "i11" }
	truth := 4.0 + 12.0

	rng := newRng(55)
	const reps = 4000
	var sumUnit, sumWeighted float64
	for r := 0; r < reps; r++ {
		perm := rng.Perm(len(stream))
		su := New(4, Unbiased, rng)
		sw := NewWeighted(4, rng)
		for _, i := range perm {
			su.Update(stream[i])
			sw.Update(stream[i], 1)
		}
		sumUnit += su.SubsetSum(pred).Value
		sumWeighted += sw.SubsetSum(pred).Value
	}
	meanU, meanW := sumUnit/reps, sumWeighted/reps
	if math.Abs(meanU-truth) > 0.12*truth {
		t.Errorf("unit mean %v vs truth %v", meanU, truth)
	}
	if math.Abs(meanW-truth) > 0.12*truth {
		t.Errorf("weighted mean %v vs truth %v", meanW, truth)
	}
}

func TestQuickWeightedInvariants(t *testing.T) {
	f := func(seed int64, weights []float64) bool {
		s := NewWeighted(4, newRng(seed))
		var want float64
		for i, w := range weights {
			w = math.Abs(w)
			if w == 0 || math.IsNaN(w) || math.IsInf(w, 0) || w > 1e12 {
				continue
			}
			s.Update(fmt.Sprintf("i%d", i%16), w)
			want += w
		}
		if err := s.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		tol := 1e-9 * (1 + want)
		return math.Abs(s.Total()-want) < tol && s.Size() <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
